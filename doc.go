// Package rtseed is a from-scratch Go reproduction of "RT-Seed: Real-Time
// Middleware for Semi-Fixed-Priority Scheduling" (Chishiro, MIDDLEWARE
// 2014): the P-RMWP semi-fixed-priority scheduling algorithm for the
// parallel-extended imprecise computation model, implemented as user-space
// middleware over a deterministic simulation of the paper's platform
// (SCHED_FIFO on an Intel Xeon Phi 3120A), together with the schedulability
// analysis, the hardware-thread assignment policies, the three optional-
// part termination mechanisms, a real-time trading application, and the
// full overhead evaluation of the paper's Figures 10-13 and Table I.
//
// See README.md for an overview, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for the paper-versus-measured record.
// The benchmarks in bench_test.go regenerate every figure and table.
package rtseed
