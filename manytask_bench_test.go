package rtseed

// Many-task scale benchmarks: the per-event cost of the scheduling core as
// the task count grows. The paper evaluates one task on 228 hardware
// threads; these benches sweep n ∈ {1, 16, 128, 1024} tasks on the same
// simulated Xeon Phi to prove the O(1) core — the bitmap run queues and the
// hierarchical timing-wheel engine — keeps ns/event near-flat where the
// old 99-level scan + global binary heap grew with n.
//
// BENCH_PR3.json (make bench-json) records these alongside the pre-swap
// baseline; see README "Many-task benchmarks".

import (
	"fmt"
	"testing"
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/engine/oracle"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/sched"
)

// manyTaskNs is the task-count sweep shared by the scale benchmarks.
var manyTaskNs = []int{1, 16, 128, 1024}

// manyTaskKernelNs extends the sweep for the kernel benchmark: with
// continuation bodies a simulated thread is one struct, not a goroutine, so
// the kernel scales to task counts the handshake executor could never
// reach. n=131072 exceeds the simulated Xeon Phi's 228 hardware threads by
// 575× and must still run at 0 allocs/op steady state.
var manyTaskKernelNs = []int{1, 16, 128, 1024, 16384, 131072}

// BenchmarkManyTaskKernel measures the kernel's steady-state cost per
// engine event with n periodic tasks pinned round-robin over all 228
// hardware threads of the simulated Xeon Phi 3120A. Each op is one event
// (timer fire, dispatch, compute completion, ...); the acceptance bar is
// near-flat ns/op as n grows, at 0 allocs/op.
//
// The release variant runs sleep-only task bodies, so every event is
// scheduling-core work — timer arm and fire, dispatch, requeue — and the
// queue-structure swap dominates the number. The compute variant runs the
// full mandatory+wind-up job bodies. Bodies are continuation state machines
// stepped inline by the kernel (internal/kernel/body.go): running host code
// is a function call, so there is no goroutine-handshake floor under the
// per-event cost, and no goroutines regardless of n.
func BenchmarkManyTaskKernel(b *testing.B) {
	for _, mode := range []struct {
		name        string
		releaseOnly bool
	}{{"release", true}, {"compute", false}} {
		mode := mode
		for _, n := range manyTaskKernelNs {
			n := n
			b.Run(fmt.Sprintf("%s/n=%d", mode.name, n), func(b *testing.B) {
				mach := machine.MustNew(machine.XeonPhi3120A(), machine.NoLoad, noJitter(), 1)
				e := engine.New()
				k := kernel.New(e, mach)
				sys, err := sched.NewManyTask(k, sched.ManyTaskConfig{
					N:                  n,
					Seed:               0xbeef,
					UtilizationPerTask: 0.15,
					ReleaseOnly:        mode.releaseOnly,
				})
				if err != nil {
					b.Fatal(err)
				}
				sys.Start()
				// Reach steady state and warm the engine's node pool: every
				// task completes several jobs before measurement starts.
				for i := 0; i < 64*n; i++ {
					if !e.Step() {
						b.Fatal("engine ran dry during warm-up")
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if !e.Step() {
						b.Fatal("engine ran dry")
					}
				}
				b.StopTimer()
				k.Shutdown()
				if sys.Jobs() == 0 && n <= b.N {
					b.Fatal("no jobs completed")
				}
			})
		}
	}
}

// wheelVsHeapPeriod spreads n concurrent timers over distinct periods so
// the queue stays n deep while every step fires and re-arms one timer.
func wheelVsHeapPeriod(i int) time.Duration {
	return time.Duration(i*7919%1000+1) * time.Microsecond
}

// BenchmarkEngineWheelVsHeap compares the live engine (hierarchical timing
// wheel fronted by a near-horizon heap) against the reference single
// min-heap in internal/engine/oracle on the same workload: n outstanding
// periodic timers, one fire+re-arm per op. The heap's O(log n) sift shows
// up as ns/op growth with n; the wheel stays near-flat.
func BenchmarkEngineWheelVsHeap(b *testing.B) {
	for _, n := range manyTaskNs {
		n := n
		b.Run(fmt.Sprintf("wheel/n=%d", n), func(b *testing.B) {
			e := engine.New()
			var tick func()
			slot := 0
			tick = func() {
				i := slot
				slot = (slot + 1) % n
				e.After(wheelVsHeapPeriod(i), 0, tick)
			}
			for i := 0; i < n; i++ {
				e.Schedule(engine.At(wheelVsHeapPeriod(i)), 0, tick)
			}
			for i := 0; i < 4*n; i++ { // warm the pool and the wheel
				e.Step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
		b.Run(fmt.Sprintf("heap/n=%d", n), func(b *testing.B) {
			e := oracle.New()
			var tick func()
			slot := 0
			tick = func() {
				i := slot
				slot = (slot + 1) % n
				e.Schedule(e.Now().Add(wheelVsHeapPeriod(i)), 0, tick)
			}
			for i := 0; i < n; i++ {
				e.Schedule(engine.At(wheelVsHeapPeriod(i)), 0, tick)
			}
			for i := 0; i < 4*n; i++ {
				e.Step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}
