package report

import (
	"strings"
	"testing"
	"time"
)

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.AddRow("a", 1)
	tbl.AddRow("longer-name", 22)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want header+sep+2 rows", len(lines))
	}
	// All lines align to the same width.
	w := len(lines[0])
	for i, l := range lines {
		if len(strings.TrimRight(l, " ")) > w+2 {
			t.Fatalf("line %d wider than header: %q", i, l)
		}
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("separator missing: %q", lines[1])
	}
	if !strings.HasPrefix(lines[3], "longer-name") {
		t.Fatalf("row order wrong: %q", lines[3])
	}
}

func TestTableFormatsDurationsAndFloats(t *testing.T) {
	tbl := NewTable("d", "f")
	tbl.AddRow(1500*time.Microsecond, 0.12345)
	out := tbl.String()
	if !strings.Contains(out, "1.50ms") {
		t.Fatalf("duration not formatted: %q", out)
	}
	if !strings.Contains(out, "0.123") {
		t.Fatalf("float not formatted: %q", out)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "0"},
		{500 * time.Nanosecond, "0.5us"},
		{42 * time.Microsecond, "42.0us"},
		{1500 * time.Microsecond, "1.50ms"},
		{999 * time.Millisecond, "999.00ms"},
		{1200 * time.Millisecond, "1.200s"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}
