// Package report renders experiment results as aligned ASCII tables and
// series, the output format of the cmd/ binaries and EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
	"time"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case time.Duration:
			row[i] = FormatDuration(v)
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// FormatDuration renders a duration with the unit scheme of the paper's
// figures: microseconds below 1ms, milliseconds otherwise.
func FormatDuration(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fus", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}
