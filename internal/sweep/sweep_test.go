package sweep

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		got, err := Map(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: %d results, want 50", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d holds %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapMatchesSequential(t *testing.T) {
	fn := func(i int) (string, error) { return fmt.Sprintf("cell-%03d", i), nil }
	seq, err := Map(1, 33, fn)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Map(8, 33, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("slot %d: sequential %q vs parallel %q", i, seq[i], par[i])
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("got %v, %v; want nil, nil", got, err)
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 8} {
		_, err := Map(workers, 100, func(i int) (int, error) {
			if i == 17 {
				return 0, fmt.Errorf("cell %d: %w", i, boom)
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err %v, want wrapped boom", workers, err)
		}
	}
}

func TestMapErrorStopsEarly(t *testing.T) {
	var calls atomic.Int64
	_, err := Map(2, 10_000, func(i int) (int, error) {
		calls.Add(1)
		return 0, errors.New("always")
	})
	if err == nil {
		t.Fatal("want error")
	}
	if n := calls.Load(); n > 100 {
		t.Fatalf("%d cells ran after the first failure; the pool should stop early", n)
	}
}

func TestMapWorkerBound(t *testing.T) {
	var cur, peak atomic.Int64
	_, err := Map(3, 64, func(i int) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		defer cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent cells, want <= 3", p)
	}
}

func TestEach(t *testing.T) {
	out := make([]int, 20)
	if err := Each(4, 20, func(i int) error { out[i] = i + 1; return nil }); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("slot %d holds %d", i, v)
		}
	}
	if err := Each(4, 20, func(i int) error { return errors.New("x") }); err == nil {
		t.Fatal("want error")
	}
}
