// Package sweep runs embarrassingly-parallel design-space sweeps: every
// experiment in the repository (the Figs. 10-13 overhead sweep, the
// acceptance-ratio experiment, the QoS sweep) is a grid of independent,
// deterministic simulations, each owning its own engine and seed. The
// executor fans the cells out over a bounded worker pool and reassembles
// results in index order, so output is identical to a sequential run
// regardless of worker count.
//
// The cluster layer (internal/cluster) reuses the same pool as its epoch
// executor: each simulated machine is one cell, Each is called once per
// epoch, and the call's completion is the epoch barrier at which machines
// exchange utilization and deadline-miss signals.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count the -workers flags default to.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ValidateWorkers rejects non-positive explicit worker counts. The sweep
// executor itself tolerates workers <= 0 (it substitutes GOMAXPROCS), but a
// user who passes -workers 0 asked for something that doesn't exist, and
// silently reinterpreting it would hide the mistake.
func ValidateWorkers(n int) error {
	if n <= 0 {
		return fmt.Errorf("-workers must be positive, got %d (omit the flag to default to GOMAXPROCS, currently %d)",
			n, runtime.GOMAXPROCS(0))
	}
	return nil
}

// Map evaluates fn(i) for every i in [0, n) on up to workers goroutines and
// returns the results in index order. workers <= 0 selects
// runtime.GOMAXPROCS(0). The result is bit-identical to a sequential loop:
// cell i's value always lands in slot i, and fn must not share mutable state
// across calls.
//
// On error, in-flight cells finish, unstarted cells are abandoned, and the
// recorded error with the lowest index is returned (with workers == 1 that
// is exactly the first error, matching a sequential loop).
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := fn(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Each runs fn(i) for every i in [0, n) on up to workers goroutines; it is
// Map for cells that write their results through captured references.
func Each(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
