package machine

import (
	"testing"
	"testing/quick"
	"time"
)

func newNoJitter(load Load) *Machine {
	model := DefaultCostModel()
	model.JitterFrac = 0
	return MustNew(XeonPhi3120A(), load, model, 1)
}

func TestXeonPhiTopology(t *testing.T) {
	topo := XeonPhi3120A()
	if topo.Cores != 57 || topo.ThreadsPerCore != 4 {
		t.Fatalf("topology %+v, want 57 cores x 4 threads", topo)
	}
	if topo.NumHWThreads() != 228 {
		t.Fatalf("hw threads %d, want 228", topo.NumHWThreads())
	}
}

func TestHWThreadNumberingCoreMajor(t *testing.T) {
	topo := XeonPhi3120A()
	// Hardware thread 0 is SMT slot 0 of core 0; thread 57 is slot 1 of
	// core 0; thread 56 is slot 0 of core 56.
	cases := []struct {
		h       HWThread
		core    int
		sibling int
	}{
		{0, 0, 0},
		{56, 56, 0},
		{57, 0, 1},
		{113, 56, 1},
		{114, 0, 2},
		{227, 56, 3},
	}
	for _, c := range cases {
		if got := topo.CoreOf(c.h); got != c.core {
			t.Errorf("CoreOf(%d) = %d, want %d", c.h, got, c.core)
		}
		if got := topo.SiblingIndexOf(c.h); got != c.sibling {
			t.Errorf("SiblingIndexOf(%d) = %d, want %d", c.h, got, c.sibling)
		}
		if got := topo.HWThreadOf(c.core, c.sibling); got != c.h {
			t.Errorf("HWThreadOf(%d,%d) = %d, want %d", c.core, c.sibling, got, c.h)
		}
	}
}

func TestSiblings(t *testing.T) {
	topo := XeonPhi3120A()
	sib := topo.SiblingsOf(0)
	want := []HWThread{0, 57, 114, 171}
	if len(sib) != len(want) {
		t.Fatalf("siblings %v, want %v", sib, want)
	}
	for i := range want {
		if sib[i] != want[i] {
			t.Fatalf("siblings %v, want %v", sib, want)
		}
	}
}

func TestTopologyValidate(t *testing.T) {
	if err := (Topology{Cores: 0, ThreadsPerCore: 4}).Validate(); err == nil {
		t.Fatal("zero cores should be invalid")
	}
	if err := (Topology{Cores: 4, ThreadsPerCore: 0}).Validate(); err == nil {
		t.Fatal("zero threads per core should be invalid")
	}
	if err := XeonPhi3120A().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadStrings(t *testing.T) {
	if NoLoad.String() != "No load" || CPULoad.String() != "CPU load" || CPUMemoryLoad.String() != "CPU-Memory load" {
		t.Fatal("load labels must match the paper")
	}
	if Load(0).Valid() || Load(99).Valid() {
		t.Fatal("invalid loads must not validate")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Topology{}, NoLoad, DefaultCostModel(), 1); err == nil {
		t.Fatal("bad topology accepted")
	}
	if _, err := New(XeonPhi3120A(), Load(0), DefaultCostModel(), 1); err == nil {
		t.Fatal("bad load accepted")
	}
	if _, err := New(XeonPhi3120A(), NoLoad, CostModel{}, 1); err == nil {
		t.Fatal("empty cost model accepted")
	}
}

// The dispatch overhead (Δm's main component) must be ordered
// CPU-Memory load > CPU load > No load (paper Fig. 10).
func TestDispatchCostLoadOrdering(t *testing.T) {
	none := newNoJitter(NoLoad).Cost(OpDispatch, 0)
	cpu := newNoJitter(CPULoad).Cost(OpDispatch, 0)
	mem := newNoJitter(CPUMemoryLoad).Cost(OpDispatch, 0)
	if !(mem > cpu && cpu > none) {
		t.Fatalf("dispatch cost ordering: mem=%v cpu=%v none=%v", mem, cpu, none)
	}
}

// The cond_signal overhead (Δb's component) must be ordered
// CPU load > CPU-Memory load (branch-unit contention, paper Fig. 12).
func TestSignalCostBranchOrdering(t *testing.T) {
	cpu := newNoJitter(CPULoad).Cost(OpCondSignal, 0)
	mem := newNoJitter(CPUMemoryLoad).Cost(OpCondSignal, 0)
	none := newNoJitter(NoLoad).Cost(OpCondSignal, 0)
	if !(cpu > mem && mem > none) {
		t.Fatalf("signal cost ordering: cpu=%v mem=%v none=%v", cpu, mem, none)
	}
}

// Under no load, context-switch cost grows with the number of hardware
// threads running real-time work and rises sharply near saturation
// (paper Fig. 11a).
func TestSwitchCostTrafficGrowth(t *testing.T) {
	m := newNoJitter(NoLoad)
	// Mark `active` RT occupants on cores other than core 0, so the traffic
	// factor is isolated from core-0 SMT contention.
	costAt := func(active int) time.Duration {
		for h := 0; h < m.Topology().NumHWThreads(); h++ {
			m.SetOccupant(HWThread(h), OccupantIdle)
		}
		n := 0
		for h := 1; h < m.Topology().NumHWThreads() && n < active; h++ {
			if m.Topology().CoreOf(HWThread(h)) != 0 {
				m.SetOccupant(HWThread(h), OccupantRT)
				n++
			}
		}
		return m.Cost(OpContextSwitch, 0)
	}
	small := costAt(4)
	mid := costAt(114)
	big := costAt(220)
	if !(small < mid && mid < big) {
		t.Fatalf("no-load switch cost should grow: %v, %v, %v", small, mid, big)
	}
	// The near-saturation rise must be steeper than the initial rise.
	if big-mid <= mid-small {
		t.Fatalf("expected superlinear rise near saturation: %v, %v, %v", small, mid, big)
	}
}

// Under background load the context-switch cost must not depend on how many
// optional parts run (paper Fig. 11b,c).
func TestSwitchCostConstantUnderLoad(t *testing.T) {
	for _, load := range []Load{CPULoad, CPUMemoryLoad} {
		m := newNoJitter(load)
		before := m.Cost(OpContextSwitch, 0)
		for h := 1; h < 228; h++ {
			if m.Topology().CoreOf(HWThread(h)) != 0 {
				m.SetOccupant(HWThread(h), OccupantRT)
			}
		}
		after := m.Cost(OpContextSwitch, 0)
		if before != after {
			t.Fatalf("%v: switch cost changed with active RT: %v -> %v", load, before, after)
		}
	}
}

// SMT contention: under background load, an op on a hardware thread whose
// siblings still host the background load costs more than on one whose
// siblings have real-time threads bound (the Fig. 13 policy-ordering
// mechanism).
func TestSMTBackgroundContention(t *testing.T) {
	for _, load := range []Load{CPULoad, CPUMemoryLoad} {
		m := newNoJitter(load)
		alone := m.Cost(OpSigLongjmp, 5) // siblings all background
		for _, s := range m.Topology().SiblingsOf(5) {
			m.BindRT(s)
		}
		packed := m.Cost(OpSigLongjmp, 5) // siblings all RT-bound
		if packed >= alone {
			t.Fatalf("%v: RT siblings should contend less than background: packed=%v alone=%v", load, packed, alone)
		}
	}
}

// Under no load, sibling contention comes only from other RT threads and is
// mild.
func TestSMTNoLoadMild(t *testing.T) {
	m := newNoJitter(NoLoad)
	idle := m.Cost(OpSigLongjmp, 5)
	for _, s := range m.Topology().SiblingsOf(5) {
		m.BindRT(s)
	}
	packed := m.Cost(OpSigLongjmp, 5)
	if packed < idle {
		t.Fatalf("RT siblings should not reduce cost: packed=%v idle=%v", packed, idle)
	}
	if float64(packed) > 1.5*float64(idle) {
		t.Fatalf("no-load sibling contention should be mild: packed=%v idle=%v", packed, idle)
	}
}

func TestBindRTTracking(t *testing.T) {
	m := newNoJitter(CPULoad)
	m.BindRT(3)
	m.BindRT(3)
	if m.BoundRT(3) != 2 {
		t.Fatalf("bound %d, want 2", m.BoundRT(3))
	}
	m.UnbindRT(3)
	m.UnbindRT(3)
	if m.BoundRT(3) != 0 {
		t.Fatalf("bound %d, want 0", m.BoundRT(3))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unbind imbalance should panic")
		}
	}()
	m.UnbindRT(3)
}

func TestRemoteCostAddsCrossCorePenalty(t *testing.T) {
	m := newNoJitter(CPUMemoryLoad)
	local := m.RemoteCost(OpCondSignal, 0, 57) // same core (slot 1 of core 0)
	remote := m.RemoteCost(OpCondSignal, 0, 1) // different core
	if remote <= local {
		t.Fatalf("remote %v should exceed local %v", remote, local)
	}
}

func TestSetOccupantTracksActiveRT(t *testing.T) {
	m := newNoJitter(NoLoad)
	m.SetOccupant(3, OccupantRT)
	m.SetOccupant(3, OccupantRT) // idempotent
	if m.ActiveRT() != 1 {
		t.Fatalf("activeRT %d, want 1", m.ActiveRT())
	}
	if m.Occupant(3) != OccupantRT {
		t.Fatal("occupant not recorded")
	}
	m.SetOccupant(3, OccupantIdle)
	if m.ActiveRT() != 0 {
		t.Fatalf("activeRT %d, want 0", m.ActiveRT())
	}
}

func TestSetOccupantPanicsOutOfRange(t *testing.T) {
	m := newNoJitter(NoLoad)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.SetOccupant(HWThread(999), OccupantRT)
}

func TestJitterBoundedAndDeterministic(t *testing.T) {
	model := DefaultCostModel()
	m1 := MustNew(XeonPhi3120A(), NoLoad, model, 42)
	m2 := MustNew(XeonPhi3120A(), NoLoad, model, 42)
	base := model.Base[OpDispatch]
	for i := 0; i < 100; i++ {
		a := m1.Cost(OpDispatch, 0)
		b := m2.Cost(OpDispatch, 0)
		if a != b {
			t.Fatal("same seed must give same costs")
		}
		if a <= 0 || a > 2*base {
			t.Fatalf("jittered cost %v outside sane bounds of base %v", a, base)
		}
	}
}

// Property: every op cost is positive on every hardware thread under every
// load.
func TestPropertyCostsPositive(t *testing.T) {
	ops := []Op{OpDispatch, OpContextSwitch, OpCondSignal, OpCondWait,
		OpTimerProgram, OpTimerInterrupt, OpSigSetjmp, OpSigLongjmp, OpRemoteWake}
	f := func(hw uint8, opIdx uint8, loadIdx uint8) bool {
		load := Loads()[int(loadIdx)%3]
		m := newNoJitter(load)
		h := HWThread(int(hw) % m.Topology().NumHWThreads())
		op := ops[int(opIdx)%len(ops)]
		return m.Cost(op, h) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpStrings(t *testing.T) {
	for _, op := range []Op{OpDispatch, OpContextSwitch, OpCondSignal, OpCondWait,
		OpTimerProgram, OpTimerInterrupt, OpSigSetjmp, OpSigLongjmp, OpRemoteWake} {
		if op.String() == "unknown-op" {
			t.Fatalf("op %d missing a label", op)
		}
	}
	if Op(0).String() != "unknown-op" {
		t.Fatal("zero op should be unknown")
	}
}

// ThroughputFactor: a part's work rate suffers from bound RT siblings and
// (under load) from background hogs on unbound siblings.
func TestThroughputFactor(t *testing.T) {
	m := newNoJitter(NoLoad)
	if f := m.ThroughputFactor(5); f != 1.0 {
		t.Fatalf("idle siblings should give factor 1, got %v", f)
	}
	for _, s := range m.Topology().SiblingsOf(5) {
		if s != 5 {
			m.BindRT(s)
		}
	}
	packed := m.ThroughputFactor(5)
	if packed <= 1.0 {
		t.Fatalf("RT siblings should slow the part: %v", packed)
	}
	loaded := newNoJitter(CPUMemoryLoad)
	alone := loaded.ThroughputFactor(5)
	if alone <= packed {
		t.Fatalf("background siblings (%v) should slow more than RT siblings (%v)", alone, packed)
	}
}
