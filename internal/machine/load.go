package machine

// Load is the background load condition of the overhead experiments
// (paper §V-B): no background tasks, infinite CPU-bound loops on every
// hardware thread, or 512 KB (one L2's worth) read/write loops on every
// hardware thread that pollute the L1/L2 caches.
type Load int

const (
	// NoLoad runs no background tasks.
	NoLoad Load = iota + 1
	// CPULoad runs an infinite branch-heavy loop on every hardware thread.
	CPULoad
	// CPUMemoryLoad runs 512 KB read/write loops on every hardware thread,
	// sized to the Xeon Phi 3120A's per-core L2, so that real-time work
	// misses L1 and L2 and goes to memory.
	CPUMemoryLoad
)

// Loads lists the three load conditions in the order the paper plots them.
func Loads() []Load { return []Load{NoLoad, CPULoad, CPUMemoryLoad} }

// String implements fmt.Stringer with the paper's labels.
func (l Load) String() string {
	switch l {
	case NoLoad:
		return "No load"
	case CPULoad:
		return "CPU load"
	case CPUMemoryLoad:
		return "CPU-Memory load"
	default:
		return "unknown load"
	}
}

// Valid reports whether l is one of the three defined loads.
func (l Load) Valid() bool { return l >= NoLoad && l <= CPUMemoryLoad }
