// Package machine models the many-core hardware the paper evaluates on: the
// processor topology (cores × SMT hardware threads), per-hardware-thread
// timestamp counters (the rdtscp analogue), background load conditions, and
// a contention cost model that prices kernel/middleware primitives.
//
// This package is the substitution for the paper's Intel Xeon Phi 3120A
// (57 cores / 228 hardware threads); see DESIGN.md §2. The cost model is
// mechanistic, not curve-fitted: each primitive has a base cost scaled by
// (a) SMT sibling contention on its core, (b) a per-load × per-resource-class
// factor (compute / branch / memory), and (c) a cross-core transfer penalty
// for remote operations. The shapes of the paper's Figures 10-13 emerge from
// those mechanisms.
package machine

import "fmt"

// HWThread identifies a hardware thread (a Linux "CPU id"). Hardware threads
// are numbered core-major: thread h lives on core h % Cores and is SMT
// sibling index h / Cores. With 57 cores this makes HW thread IDs 0..56 the
// first sibling of each core, matching the paper's use of "CPU IDs 1-227"
// for isolcpus with the mandatory thread on hardware thread 0 of core 0.
type HWThread int

// Topology describes a symmetric many-core processor.
type Topology struct {
	// Cores is the number of physical cores.
	Cores int
	// ThreadsPerCore is the SMT width of each core.
	ThreadsPerCore int
}

// XeonPhi3120A is the evaluation platform of the paper: 57 cores with 4
// hardware threads each (228 hardware threads), 1.1 GHz, 512 KB L2 per core.
func XeonPhi3120A() Topology {
	return Topology{Cores: 57, ThreadsPerCore: 4}
}

// CommodityServer is the per-machine topology of the cluster layer: a
// 16-core, 2-way-SMT trading server — the box a fleet is actually built from,
// as opposed to the paper's single accelerator card. Cluster sweeps default
// to many of these rather than one Xeon Phi.
func CommodityServer() Topology {
	return Topology{Cores: 16, ThreadsPerCore: 2}
}

// Validate reports whether the topology is well formed.
func (t Topology) Validate() error {
	if t.Cores <= 0 {
		return fmt.Errorf("machine: topology needs at least one core, got %d", t.Cores)
	}
	if t.ThreadsPerCore <= 0 {
		return fmt.Errorf("machine: topology needs at least one thread per core, got %d", t.ThreadsPerCore)
	}
	return nil
}

// NumHWThreads returns the total number of hardware threads.
func (t Topology) NumHWThreads() int { return t.Cores * t.ThreadsPerCore }

// CoreOf returns the physical core of hardware thread h.
func (t Topology) CoreOf(h HWThread) int { return int(h) % t.Cores }

// SiblingIndexOf returns h's SMT slot within its core (0-based).
func (t Topology) SiblingIndexOf(h HWThread) int { return int(h) / t.Cores }

// HWThreadOf returns the hardware thread at SMT slot sibling of core.
func (t Topology) HWThreadOf(core, sibling int) HWThread {
	return HWThread(sibling*t.Cores + core)
}

// SiblingsOf returns all hardware threads on the same core as h, including h
// itself, in SMT slot order.
func (t Topology) SiblingsOf(h HWThread) []HWThread {
	core := t.CoreOf(h)
	out := make([]HWThread, t.ThreadsPerCore)
	for s := 0; s < t.ThreadsPerCore; s++ {
		out[s] = t.HWThreadOf(core, s)
	}
	return out
}

// Contains reports whether h is a valid hardware thread of the topology.
func (t Topology) Contains(h HWThread) bool {
	return h >= 0 && int(h) < t.NumHWThreads()
}
