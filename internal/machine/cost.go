package machine

import (
	"fmt"
	"time"

	"rtseed/internal/engine"
)

// Op is a primitive operation priced by the cost model. Each op corresponds
// to a kernel or middleware primitive the paper's overhead figures are built
// from (§V-B and Fig. 9).
type Op int

const (
	// OpDispatch is waking from clock_nanosleep plus job initialization;
	// the dominant component of Δm (release → mandatory start).
	OpDispatch Op = iota + 1
	// OpContextSwitch is switching the running thread of a hardware thread;
	// the dominant component of Δs (mandatory thread → optional thread).
	OpContextSwitch
	// OpCondSignal is one pthread_cond_signal call. Δb is np of these.
	OpCondSignal
	// OpCondWait is the bookkeeping of blocking on a condition variable.
	OpCondWait
	// OpTimerProgram is one timer_settime call (arming or disarming).
	OpTimerProgram
	// OpTimerInterrupt is SIGALRM delivery and handler entry.
	OpTimerInterrupt
	// OpSigSetjmp saves the stack context and signal mask.
	OpSigSetjmp
	// OpSigLongjmp restores the stack context and signal mask; part of
	// ending a terminated optional part (Δe).
	OpSigLongjmp
	// OpRemoteWake is the cross-core cost of waking a thread on another
	// core: IPI plus transfer of the shared task state's cache lines.
	OpRemoteWake
	// OpEndOptional is the serialized per-part cost of ending a parallel
	// optional part: timer-expiry processing under the process-wide
	// sighand lock plus the endOptionalPart bookkeeping on the shared
	// task state. All np parts terminate at the same optional deadline
	// and contend for it, which makes the ending overhead O(np)
	// (paper §V-B, Fig. 13).
	OpEndOptional
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpDispatch:
		return "dispatch"
	case OpContextSwitch:
		return "context-switch"
	case OpCondSignal:
		return "cond-signal"
	case OpCondWait:
		return "cond-wait"
	case OpTimerProgram:
		return "timer-program"
	case OpTimerInterrupt:
		return "timer-interrupt"
	case OpSigSetjmp:
		return "sigsetjmp"
	case OpSigLongjmp:
		return "siglongjmp"
	case OpRemoteWake:
		return "remote-wake"
	case OpEndOptional:
		return "end-optional"
	default:
		return "unknown-op"
	}
}

// resourceClass groups ops by the hardware resource they stress. The
// background loads hit the classes differently: the CPU load's infinite loop
// saturates the branch units (the paper's explanation for Fig. 12, where
// pthread_cond_signal — "uses many if statements" — suffers more under CPU
// load than under CPU-Memory load), while the CPU-Memory load pollutes the
// caches and saturates memory bandwidth (Figs. 10 and 13).
type resourceClass int

const (
	classCompute resourceClass = iota + 1
	classBranch
	classMemory
)

func classOf(op Op) resourceClass {
	//rtseed:partial-ok every op not named below is compute-class; the default arm is the classification
	switch op {
	case OpCondSignal, OpCondWait:
		return classBranch
	case OpDispatch, OpContextSwitch, OpSigSetjmp, OpSigLongjmp, OpRemoteWake, OpEndOptional:
		return classMemory
	default:
		return classCompute
	}
}

// CostModel holds the calibration constants of the machine model. Base costs
// are calibrated to the order of magnitude of the paper's Xeon Phi numbers;
// only orderings and curve shapes are asserted by the test suite.
type CostModel struct {
	// Base is the uncontended cost of each op.
	Base map[Op]time.Duration
	// ClassFactor scales an op's cost by load condition and resource class.
	ClassFactor map[Load]map[resourceClass]float64
	// SiblingWeightRT is the SMT contention added per busy sibling hardware
	// thread running real-time work (optional parts are pure CPU loops, so
	// this is small).
	SiblingWeightRT float64
	// SiblingWeightLoad is the SMT contention added per sibling occupied by
	// a background load task, per load kind.
	SiblingWeightLoad map[Load]float64
	// TrafficLinear and TrafficQuartic shape the no-load interconnect
	// traffic factor applied to context switches as a function of the
	// fraction of hardware threads concurrently running real-time work.
	// The quartic term produces the sharp rise the paper reports at 228
	// parallel optional parts (Fig. 11a).
	TrafficLinear, TrafficQuartic float64
	// TrafficSaturated is the constant traffic factor under background
	// load, where the interconnect is already saturated and the switch
	// overhead no longer depends on np (Fig. 11b,c).
	TrafficSaturated float64
	// JitterFrac is the relative standard deviation of per-operation
	// timing noise.
	JitterFrac float64
}

// DefaultCostModel returns the calibrated model used by the experiments.
func DefaultCostModel() CostModel {
	return CostModel{
		Base: map[Op]time.Duration{
			OpDispatch:       55 * time.Microsecond,
			OpContextSwitch:  14 * time.Microsecond,
			OpCondSignal:     20 * time.Microsecond,
			OpCondWait:       6 * time.Microsecond,
			OpTimerProgram:   4 * time.Microsecond,
			OpTimerInterrupt: 30 * time.Microsecond,
			OpSigSetjmp:      2 * time.Microsecond,
			OpSigLongjmp:     60 * time.Microsecond,
			OpRemoteWake:     12 * time.Microsecond,
			OpEndOptional:    95 * time.Microsecond,
		},
		ClassFactor: map[Load]map[resourceClass]float64{
			NoLoad:        {classCompute: 1.0, classBranch: 1.0, classMemory: 1.0},
			CPULoad:       {classCompute: 1.55, classBranch: 1.80, classMemory: 1.25},
			CPUMemoryLoad: {classCompute: 1.70, classBranch: 1.15, classMemory: 1.60},
		},
		SiblingWeightRT: 0.06,
		SiblingWeightLoad: map[Load]float64{
			NoLoad:        0,
			CPULoad:       0.18,
			CPUMemoryLoad: 0.28,
		},
		TrafficLinear:    1.8,
		TrafficQuartic:   3.5,
		TrafficSaturated: 2.3,
		JitterFrac:       0.03,
	}
}

// Validate reports whether the model has a base cost for every op.
func (c CostModel) Validate() error {
	ops := []Op{
		OpDispatch, OpContextSwitch, OpCondSignal, OpCondWait,
		OpTimerProgram, OpTimerInterrupt, OpSigSetjmp, OpSigLongjmp,
		OpRemoteWake, OpEndOptional,
	}
	for _, op := range ops {
		if c.Base[op] <= 0 {
			return fmt.Errorf("machine: cost model has no base cost for %v", op)
		}
	}
	for _, l := range Loads() {
		if c.ClassFactor[l] == nil {
			return fmt.Errorf("machine: cost model has no class factors for %v", l)
		}
	}
	return nil
}

// Occupant describes what a hardware thread is currently running, for SMT
// contention accounting.
type Occupant int

const (
	// OccupantIdle means nothing runs there (under background load, the
	// load task runs there instead and contends accordingly).
	OccupantIdle Occupant = iota
	// OccupantRT means a real-time thread runs there.
	OccupantRT
)

// Machine combines a topology, a load condition, a cost model and occupancy
// tracking. It prices primitives via Cost and RemoteCost; the simulated
// kernel reports occupancy changes via SetOccupant.
type Machine struct {
	topo  Topology
	load  Load
	model CostModel
	rng   *engine.Rand

	occupants []Occupant
	activeRT  int
	// rtBound counts real-time threads pinned to each hardware thread.
	// SMT contention uses the static binding: under background load, a
	// load task time-shares (and keeps polluting the caches of) every
	// hardware thread that has no real-time thread bound to it, whether or
	// not the bound thread happens to be running at this instant.
	rtBound []int

	// Pricing tables flattened from the model's maps at construction time:
	// Cost and RemoteCost sit on the simulated kernel's per-event path, and
	// the load condition is fixed for the machine's lifetime, so the map
	// lookups (Base[op], ClassFactor[load][class], SiblingWeightLoad[load])
	// reduce to array indexing. The factors are kept separate — not
	// pre-multiplied — so the arithmetic matches the map-based formula
	// bit-for-bit and simulation outputs stay byte-identical.
	baseF        [OpEndOptional + 1]float64
	classF       [OpEndOptional + 1]float64
	loadSiblingW float64
	// smtF caches the SMT contention factor per hardware thread. It only
	// changes when a real-time thread binds or unbinds (thread creation and
	// exit), so BindRT/UnbindRT recompute the affected core's entries and
	// the per-event Cost path reduces to an array read.
	smtF []float64
}

// New builds a machine. It returns an error if the topology or cost model is
// invalid.
func New(topo Topology, load Load, model CostModel, seed uint64) (*Machine, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if !load.Valid() {
		return nil, fmt.Errorf("machine: invalid load %d", load)
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		topo:      topo,
		load:      load,
		model:     model,
		rng:       engine.NewRand(seed),
		occupants: make([]Occupant, topo.NumHWThreads()),
		rtBound:   make([]int, topo.NumHWThreads()),
	}
	for op := OpDispatch; op <= OpEndOptional; op++ {
		m.baseF[op] = float64(model.Base[op])
		m.classF[op] = model.ClassFactor[load][classOf(op)]
	}
	m.loadSiblingW = model.SiblingWeightLoad[load]
	m.smtF = make([]float64, topo.NumHWThreads())
	for c := 0; c < topo.Cores; c++ {
		m.recomputeSMT(c)
	}
	return m, nil
}

// MustNew is New for known-good static configuration; it panics on error.
func MustNew(topo Topology, load Load, model CostModel, seed uint64) *Machine {
	m, err := New(topo, load, model, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// Topology returns the machine's topology.
func (m *Machine) Topology() Topology { return m.topo }

// Load returns the background load condition.
func (m *Machine) Load() Load { return m.load }

// SetOccupant records what hardware thread h is running.
func (m *Machine) SetOccupant(h HWThread, o Occupant) {
	if !m.topo.Contains(h) {
		panic(fmt.Sprintf("machine: SetOccupant on invalid hw thread %d", h))
	}
	prev := m.occupants[h]
	if prev == o {
		return
	}
	m.occupants[h] = o
	switch {
	case o == OccupantRT:
		m.activeRT++
	case prev == OccupantRT:
		m.activeRT--
	}
}

// Occupant returns what hardware thread h is running.
func (m *Machine) Occupant(h HWThread) Occupant { return m.occupants[h] }

// ActiveRT returns the number of hardware threads running real-time work.
func (m *Machine) ActiveRT() int { return m.activeRT }

// BindRT records that a real-time thread is pinned to h (sched_setaffinity
// at creation). Binding displaces the background load from the hardware
// thread for SMT-contention purposes: a background loop time-shares (and
// keeps polluting the caches of) every hardware thread without a bound
// real-time thread.
func (m *Machine) BindRT(h HWThread) {
	if !m.topo.Contains(h) {
		panic(fmt.Sprintf("machine: BindRT on invalid hw thread %d", h))
	}
	m.rtBound[h]++
	m.recomputeSMT(m.topo.CoreOf(h))
}

// UnbindRT undoes one BindRT (thread exit).
func (m *Machine) UnbindRT(h HWThread) {
	if !m.topo.Contains(h) || m.rtBound[h] <= 0 {
		panic(fmt.Sprintf("machine: UnbindRT imbalance on hw thread %d", h))
	}
	m.rtBound[h]--
	m.recomputeSMT(m.topo.CoreOf(h))
}

// BoundRT returns the number of real-time threads pinned to h.
func (m *Machine) BoundRT(h HWThread) int { return m.rtBound[h] }

// smtFactor prices the SMT sibling contention seen by hardware thread h.
// Siblings with a real-time thread bound add a small weight (optional parts
// are pure CPU-bound loops); siblings left to a background load task add
// the load's weight. This is the mechanism behind Fig. 13(b,c): the
// One-by-One policy leaves three background siblings per core next to each
// optional part, while All-by-All displaces the background entirely from
// the cores it uses.
//
//rtseed:noalloc
func (m *Machine) smtFactor(h HWThread) float64 {
	return m.smtF[h]
}

// recomputeSMT refreshes the cached SMT factor of every hardware thread on
// core after a binding change there.
func (m *Machine) recomputeSMT(core int) {
	for s := 0; s < m.topo.ThreadsPerCore; s++ {
		h := m.topo.HWThreadOf(core, s)
		f := 1.0
		for sb := 0; sb < m.topo.ThreadsPerCore; sb++ {
			sib := m.topo.HWThreadOf(core, sb)
			if sib == h {
				continue
			}
			if m.rtBound[sib] > 0 {
				f += m.model.SiblingWeightRT
			} else {
				f += m.loadSiblingW
			}
		}
		m.smtF[h] = f
	}
}

// trafficFactor prices interconnect traffic for context switches. Under no
// load it grows with the fraction of hardware threads concurrently running
// real-time work, with a quartic term for the near-saturation rise at 228
// parallel optional parts; under background load the interconnect is already
// saturated and the factor is constant.
func (m *Machine) trafficFactor() float64 {
	if m.load != NoLoad {
		return m.model.TrafficSaturated
	}
	r := float64(m.activeRT) / float64(m.topo.NumHWThreads())
	return 1 + m.model.TrafficLinear*r + m.model.TrafficQuartic*r*r*r*r
}

// ThroughputFactor returns how much slower CPU-bound work progresses on
// hardware thread h than on an uncontended core (>= 1): SMT siblings share
// the core's issue slots, so a part next to three background hogs does less
// nominal work per wall-clock second. The middleware uses it to discount
// the progress optional parts achieve before their optional deadline —
// wall-clock schedules are unaffected (the mandatory/wind-up WCETs already
// include contention, per the paper's §II-A convention).
func (m *Machine) ThroughputFactor(h HWThread) float64 {
	return m.smtFactor(h)
}

// Cost prices op executed on hardware thread h under the current load and
// occupancy, including deterministic jitter. It panics if op is not one of
// the model's primitives.
//
//rtseed:noalloc
func (m *Machine) Cost(op Op, h HWThread) time.Duration {
	base := m.baseF[op]
	f := m.classF[op]
	f *= m.smtFactor(h)
	if op == OpContextSwitch {
		f *= m.trafficFactor()
	}
	return m.jitter(time.Duration(base * f))
}

// RemoteCost prices op issued from hardware thread `from` toward `to`,
// adding the cross-core transfer penalty when the two are on different
// cores. The penalty scales with the same resource class as the op itself:
// a remote cond_signal is dominated by the signal path's branch-heavy code,
// not by bulk memory traffic (the paper's Fig. 12 explanation), while a
// remote memory-class op pays polluted-cache transfer prices.
//
//rtseed:noalloc
func (m *Machine) RemoteCost(op Op, from, to HWThread) time.Duration {
	c := m.Cost(op, from)
	if m.topo.CoreOf(from) != m.topo.CoreOf(to) {
		remote := m.baseF[OpRemoteWake]
		remote *= m.classF[op]
		remote *= m.smtFactor(to)
		c += m.jitter(time.Duration(remote))
	}
	return c
}

func (m *Machine) jitter(d time.Duration) time.Duration {
	if m.model.JitterFrac <= 0 {
		return d
	}
	n := m.rng.NormFloat64() * m.model.JitterFrac
	if n < -0.5 {
		n = -0.5
	}
	out := time.Duration(float64(d) * (1 + n))
	if out < 0 {
		out = 0
	}
	return out
}
