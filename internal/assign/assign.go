// Package assign implements the hardware-thread assignment policies for
// parallel optional parts evaluated in the paper (§V-A, Fig. 8): One by One,
// Two by Two, and All by All. Parallel optional parts are assigned to
// hardware threads offline, before execution, and do not migrate.
package assign

import (
	"fmt"

	"rtseed/internal/machine"
)

// Policy is an assignment policy for parallel optional parts.
type Policy int

const (
	// OneByOne assigns parts to one hardware thread on each core, round
	// robin over cores, then a second hardware thread on each core, and so
	// on: parts spread over as many distinct cores as possible.
	OneByOne Policy = iota + 1
	// TwoByTwo assigns parts two hardware threads per core at a time:
	// cores are filled to two SMT slots across all cores, then the
	// remaining slots two at a time.
	TwoByTwo
	// AllByAll fills every hardware thread of a core before moving to the
	// next core (four by four on the Xeon Phi 3120A): parts concentrate on
	// as few cores as possible.
	AllByAll
)

// Policies lists the three policies in the paper's order.
func Policies() []Policy { return []Policy{OneByOne, TwoByTwo, AllByAll} }

// String implements fmt.Stringer with the paper's labels.
func (p Policy) String() string {
	switch p {
	case OneByOne:
		return "One by One"
	case TwoByTwo:
		return "Two by Two"
	case AllByAll:
		return "All by All"
	default:
		return "unknown policy"
	}
}

// Valid reports whether p is a defined policy.
func (p Policy) Valid() bool { return p >= OneByOne && p <= AllByAll }

// HWThreads returns the hardware threads for np parallel optional parts
// under policy p on topology topo, in part order (part k runs on element k).
// The first part is always placed on hardware thread 0 — the paper requires
// the first parallel optional thread to execute on the processor that
// executes the mandatory thread.
//
// It returns an error if np exceeds the number of hardware threads or the
// policy is unknown.
func HWThreads(topo machine.Topology, p Policy, np int) ([]machine.HWThread, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if np < 0 || np > topo.NumHWThreads() {
		return nil, fmt.Errorf("assign: np=%d outside [0,%d]", np, topo.NumHWThreads())
	}
	var width int
	switch p {
	case OneByOne:
		width = 1
	case TwoByTwo:
		width = 2
	case AllByAll:
		width = topo.ThreadsPerCore
	default:
		return nil, fmt.Errorf("assign: unknown policy %d", p)
	}
	return byWidth(topo, width, np), nil
}

// byWidth generates the assignment for a policy that claims `width` SMT
// slots per core per pass: slots (pass*width .. pass*width+width-1) of core
// 0, then of core 1, ... then the next pass.
func byWidth(topo machine.Topology, width, np int) []machine.HWThread {
	out := make([]machine.HWThread, 0, np)
	for pass := 0; len(out) < np; pass++ {
		base := pass * width
		if base >= topo.ThreadsPerCore {
			break
		}
		for core := 0; core < topo.Cores && len(out) < np; core++ {
			for s := base; s < base+width && s < topo.ThreadsPerCore && len(out) < np; s++ {
				out = append(out, topo.HWThreadOf(core, s))
			}
		}
	}
	return out
}

// HWThreadsFrom is HWThreads with the assignment rotated so that it starts
// at firstCore's SMT slot 0: part 0 lands on hardware thread
// (firstCore, 0). A partitioned task whose mandatory thread is pinned to
// core c uses firstCore = c, preserving the paper's rule that the first
// parallel optional part shares the mandatory thread's processor.
func HWThreadsFrom(topo machine.Topology, p Policy, np, firstCore int) ([]machine.HWThread, error) {
	if firstCore < 0 || firstCore >= topo.Cores {
		return nil, fmt.Errorf("assign: first core %d outside [0,%d)", firstCore, topo.Cores)
	}
	base, err := HWThreads(topo, p, np)
	if err != nil {
		return nil, err
	}
	out := make([]machine.HWThread, len(base))
	for i, h := range base {
		core := (topo.CoreOf(h) + firstCore) % topo.Cores
		out[i] = topo.HWThreadOf(core, topo.SiblingIndexOf(h))
	}
	return out, nil
}

// CoreHistogram returns, for an assignment, how many parts landed on each
// core. It is the shape Fig. 8 draws.
func CoreHistogram(topo machine.Topology, hws []machine.HWThread) []int {
	hist := make([]int, topo.Cores)
	for _, h := range hws {
		hist[topo.CoreOf(h)]++
	}
	return hist
}

// DistinctCores returns the number of cores used by an assignment. Under
// background load, more distinct cores means more optional parts sharing a
// core with background tasks — the mechanism behind the One-by-One policy's
// high ending overhead (paper Fig. 13, §V-B).
func DistinctCores(topo machine.Topology, hws []machine.HWThread) int {
	n := 0
	for _, c := range CoreHistogram(topo, hws) {
		if c > 0 {
			n++
		}
	}
	return n
}
