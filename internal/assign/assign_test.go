package assign

import (
	"testing"
	"testing/quick"

	"rtseed/internal/machine"
)

var phi = machine.XeonPhi3120A()

// Fig. 8 of the paper: exact core histograms for 171 parallel optional parts
// on the Xeon Phi 3120A (57 cores x 4 hardware threads).
func TestFig8OneByOne171(t *testing.T) {
	hws, err := HWThreads(phi, OneByOne, 171)
	if err != nil {
		t.Fatal(err)
	}
	hist := CoreHistogram(phi, hws)
	// "three hardware threads are assigned to C0-C56 (all cores)"
	for c, n := range hist {
		if n != 3 {
			t.Fatalf("core %d has %d parts, want 3", c, n)
		}
	}
}

func TestFig8TwoByTwo171(t *testing.T) {
	hws, err := HWThreads(phi, TwoByTwo, 171)
	if err != nil {
		t.Fatal(err)
	}
	hist := CoreHistogram(phi, hws)
	// "four hardware threads are assigned to C0-C27, three hardware threads
	// are assigned to C28, and two hardware threads are assigned to
	// C29-C56"
	for c := 0; c <= 27; c++ {
		if hist[c] != 4 {
			t.Fatalf("core %d has %d, want 4", c, hist[c])
		}
	}
	if hist[28] != 3 {
		t.Fatalf("core 28 has %d, want 3", hist[28])
	}
	for c := 29; c <= 56; c++ {
		if hist[c] != 2 {
			t.Fatalf("core %d has %d, want 2", c, hist[c])
		}
	}
}

func TestFig8AllByAll171(t *testing.T) {
	hws, err := HWThreads(phi, AllByAll, 171)
	if err != nil {
		t.Fatal(err)
	}
	hist := CoreHistogram(phi, hws)
	// "four hardware threads assigned to C0-C41, three hardware threads
	// assigned to C42, and no hardware threads assigned to C43-C56"
	for c := 0; c <= 41; c++ {
		if hist[c] != 4 {
			t.Fatalf("core %d has %d, want 4", c, hist[c])
		}
	}
	if hist[42] != 3 {
		t.Fatalf("core 42 has %d, want 3", hist[42])
	}
	for c := 43; c <= 56; c++ {
		if hist[c] != 0 {
			t.Fatalf("core %d has %d, want 0", c, hist[c])
		}
	}
}

// The first parallel optional part must run on the hardware thread of the
// mandatory thread (hardware thread 0).
func TestFirstPartOnHWThread0(t *testing.T) {
	for _, p := range Policies() {
		for _, np := range []int{1, 4, 57, 228} {
			hws, err := HWThreads(phi, p, np)
			if err != nil {
				t.Fatal(err)
			}
			if hws[0] != 0 {
				t.Fatalf("%v np=%d: first part on %d, want 0", p, np, hws[0])
			}
		}
	}
}

func TestDistinctCoresOrdering(t *testing.T) {
	// One by One spreads over the most cores; All by All over the fewest.
	for _, np := range []int{8, 16, 32, 57, 114} {
		one, _ := HWThreads(phi, OneByOne, np)
		two, _ := HWThreads(phi, TwoByTwo, np)
		all, _ := HWThreads(phi, AllByAll, np)
		o, w, a := DistinctCores(phi, one), DistinctCores(phi, two), DistinctCores(phi, all)
		if !(o >= w && w >= a) {
			t.Fatalf("np=%d: distinct cores one=%d two=%d all=%d; want one>=two>=all", np, o, w, a)
		}
		if o <= a {
			t.Fatalf("np=%d: one-by-one (%d) should use strictly more cores than all-by-all (%d)", np, o, a)
		}
	}
}

func TestFullMachine228(t *testing.T) {
	for _, p := range Policies() {
		hws, err := HWThreads(phi, p, 228)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[machine.HWThread]bool, 228)
		for _, h := range hws {
			if seen[h] {
				t.Fatalf("%v: duplicate hw thread %d", p, h)
			}
			seen[h] = true
		}
		if len(seen) != 228 {
			t.Fatalf("%v: %d distinct threads, want 228", p, len(seen))
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := HWThreads(phi, OneByOne, 229); err == nil {
		t.Fatal("np beyond topology accepted")
	}
	if _, err := HWThreads(phi, OneByOne, -1); err == nil {
		t.Fatal("negative np accepted")
	}
	if _, err := HWThreads(phi, Policy(0), 4); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := HWThreads(machine.Topology{}, OneByOne, 0); err == nil {
		t.Fatal("invalid topology accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	if OneByOne.String() != "One by One" || TwoByTwo.String() != "Two by Two" || AllByAll.String() != "All by All" {
		t.Fatal("policy labels must match the paper")
	}
	if Policy(0).Valid() {
		t.Fatal("zero policy should be invalid")
	}
}

// Properties over arbitrary topologies and part counts: assignments have the
// requested length, no duplicates, and stay within the topology.
func TestPropertyAssignmentsWellFormed(t *testing.T) {
	f := func(cores, tpc uint8, npRaw uint16, pRaw uint8) bool {
		topo := machine.Topology{
			Cores:          int(cores%16) + 1,
			ThreadsPerCore: int(tpc%4) + 1,
		}
		p := Policies()[int(pRaw)%3]
		np := int(npRaw) % (topo.NumHWThreads() + 1)
		hws, err := HWThreads(topo, p, np)
		if err != nil {
			return false
		}
		if len(hws) != np {
			return false
		}
		seen := make(map[machine.HWThread]bool, np)
		for _, h := range hws {
			if !topo.Contains(h) || seen[h] {
				return false
			}
			seen[h] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: on a single-SMT-slot topology, all three policies coincide.
func TestPropertyPoliciesCoincideWithoutSMT(t *testing.T) {
	topo := machine.Topology{Cores: 8, ThreadsPerCore: 1}
	for np := 0; np <= 8; np++ {
		one, _ := HWThreads(topo, OneByOne, np)
		all, _ := HWThreads(topo, AllByAll, np)
		if len(one) != len(all) {
			t.Fatal("length mismatch")
		}
		for i := range one {
			if one[i] != all[i] {
				t.Fatalf("np=%d: policies diverge without SMT", np)
			}
		}
	}
}

func TestHWThreadsFromRotation(t *testing.T) {
	// Rotating to core 5 puts part 0 on (core 5, slot 0) and shifts the
	// whole layout by five cores, wrapping at the end.
	hws, err := HWThreadsFrom(phi, OneByOne, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if hws[0] != phi.HWThreadOf(5, 0) {
		t.Fatalf("first part on %d, want core 5 slot 0", hws[0])
	}
	// 60 parts One-by-One: 57 on slot 0 (all cores), 3 on slot 1 of cores
	// 5,6,7.
	hist := CoreHistogram(phi, hws)
	for c, n := range hist {
		want := 1
		if c >= 5 && c <= 7 {
			want = 2
		}
		if n != want {
			t.Fatalf("core %d has %d parts, want %d", c, n, want)
		}
	}
	// Wrap-around: rotation never leaves the topology.
	for _, h := range hws {
		if !phi.Contains(h) {
			t.Fatalf("hw thread %d outside topology", h)
		}
	}
	if _, err := HWThreadsFrom(phi, OneByOne, 4, -1); err == nil {
		t.Fatal("negative first core accepted")
	}
	if _, err := HWThreadsFrom(phi, OneByOne, 4, 57); err == nil {
		t.Fatal("out-of-range first core accepted")
	}
}
