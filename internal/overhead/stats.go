package overhead

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"rtseed/internal/machine"
)

// Distribution summarizes the per-job samples of one overhead kind.
type Distribution struct {
	Kind   Kind
	N      int
	Mean   time.Duration
	Min    time.Duration
	Max    time.Duration
	P50    time.Duration
	P95    time.Duration
	P99    time.Duration
	StdDev time.Duration
}

// Distribution computes the summary statistics of kind's samples.
func (m *Measurement) Distribution(kind Kind) Distribution {
	s := m.Samples[kind]
	d := Distribution{Kind: kind, N: len(s)}
	if len(s) == 0 {
		return d
	}
	sorted := make([]time.Duration, len(s))
	copy(sorted, s)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	d.Min = sorted[0]
	d.Max = sorted[len(sorted)-1]
	d.P50 = percentile(sorted, 0.50)
	d.P95 = percentile(sorted, 0.95)
	d.P99 = percentile(sorted, 0.99)
	var sum time.Duration
	for _, v := range sorted {
		sum += v
	}
	d.Mean = sum / time.Duration(len(sorted))
	var varSum float64
	for _, v := range sorted {
		diff := float64(v - d.Mean)
		varSum += diff * diff
	}
	d.StdDev = time.Duration(math.Sqrt(varSum / float64(len(sorted))))
	return d
}

// percentile returns the p-quantile of a sorted slice using the
// nearest-rank method.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String implements fmt.Stringer.
func (d Distribution) String() string {
	return fmt.Sprintf("%v{n=%d mean=%v p50=%v p95=%v p99=%v max=%v σ=%v}",
		d.Kind, d.N, d.Mean, d.P50, d.P95, d.P99, d.Max, d.StdDev)
}

// WriteCSV emits figure data as CSV rows
// (figure,kind,load,policy,np,mean_ns) suitable for external plotting.
func WriteCSV(w io.Writer, figs []FigureData) error {
	if _, err := fmt.Fprintln(w, "figure,kind,load,policy,np,mean_ns"); err != nil {
		return err
	}
	for _, f := range figs {
		for _, s := range f.Series {
			for _, p := range s.Points {
				if _, err := fmt.Fprintf(w, "%d,%s,%s,%s,%d,%d\n",
					f.Kind.Figure(), f.Kind, loadSlug(f.Load), policySlug(s.Policy),
					p.NumParts, p.Mean.Nanoseconds()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func loadSlug(l machine.Load) string {
	switch l {
	case machine.NoLoad:
		return "none"
	case machine.CPULoad:
		return "cpu"
	case machine.CPUMemoryLoad:
		return "cpumem"
	default:
		return "unknown"
	}
}

func policySlug(p interface{ String() string }) string {
	switch p.String() {
	case "One by One":
		return "one"
	case "Two by Two":
		return "two"
	case "All by All":
		return "all"
	default:
		return "unknown"
	}
}
