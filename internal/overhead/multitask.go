package overhead

import (
	"fmt"
	"time"

	"rtseed/internal/core"
	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/task"
)

// TaskCountPoint is one point of the Δm-versus-task-count experiment.
type TaskCountPoint struct {
	Tasks int
	// MeanDeltaM is the mean release→mandatory-start overhead across all
	// tasks and jobs.
	MeanDeltaM time.Duration
	// WorstDeltaM is the worst single-job Δm (the lowest-priority task at
	// a synchronous release).
	WorstDeltaM time.Duration
}

// DeltaMVsTaskCount measures how the beginning-of-mandatory overhead grows
// with the number of tasks sharing a processor. The paper states "the
// overheads of all assignment policies depend on the number of tasks" but
// evaluates only n = 1 (§V-B, Fig. 10); this extension experiment fills the
// sweep in: with n tasks released synchronously on one processor, the
// lowest-priority task's mandatory part waits behind n−1 higher-priority
// mandatory parts.
func DeltaMVsTaskCount(load machine.Load, counts []int, jobs int, seed uint64) ([]TaskCountPoint, error) {
	if !load.Valid() {
		return nil, fmt.Errorf("overhead: invalid load %d", load)
	}
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8}
	}
	if jobs <= 0 {
		jobs = 20
	}
	out := make([]TaskCountPoint, 0, len(counts))
	for _, n := range counts {
		if n < 1 || n > core.RTQMax-core.RTQMin+1 {
			return nil, fmt.Errorf("overhead: task count %d out of range", n)
		}
		mach, err := machine.New(machine.XeonPhi3120A(), load, machine.DefaultCostModel(), seed+uint64(n))
		if err != nil {
			return nil, err
		}
		k := kernel.New(engine.New(), mach)
		var sum, worst time.Duration
		samples := 0
		prios, err := core.RTQPriorities(n)
		if err != nil {
			return nil, err
		}
		procs := make([]*core.Process, 0, n)
		for i := 0; i < n; i++ {
			// Distinct RM periods; short mandatory parts so the set stays
			// schedulable on one processor up to n=49.
			period := time.Duration(100+10*i) * time.Millisecond
			tk := task.Uniform(fmt.Sprintf("t%d", i), time.Millisecond, time.Millisecond, 0, 0, period)
			p, err := core.NewProcess(k, core.Config{
				Task:              tk,
				MandatoryPriority: prios[i],
				MandatoryCPU:      0,
				OptionalCPUs:      nil,
				OptionalDeadline:  period / 2,
				Jobs:              jobs,
				Probes: core.Probes{OnRelease: func(job int, release, start engine.Time) {
					d := start.Sub(release)
					sum += d
					if d > worst {
						worst = d
					}
					samples++
				}},
			})
			if err != nil {
				return nil, err
			}
			procs = append(procs, p)
		}
		for _, p := range procs {
			p.Start()
		}
		k.Run()
		if samples == 0 {
			return nil, fmt.Errorf("overhead: no samples for n=%d", n)
		}
		out = append(out, TaskCountPoint{
			Tasks:       n,
			MeanDeltaM:  sum / time.Duration(samples),
			WorstDeltaM: worst,
		})
	}
	return out, nil
}
