// Package overhead reproduces the paper's experimental evaluation (§V,
// Figs. 9-13): it runs the parallel-extended imprecise task of §V-A on the
// simulated Xeon Phi 3120A under the three background loads and the three
// assignment policies, and measures the four overheads of Fig. 9 with the
// per-hardware-thread timestamp counter:
//
//	Δm — release time → beginning of the mandatory part (Fig. 10)
//	Δs — switching the mandatory thread to the optional thread (Fig. 11)
//	Δb — signalling all parallel optional threads (Fig. 12)
//	Δe — optional deadline → beginning of the wind-up part (Fig. 13)
package overhead

import (
	"fmt"
	"time"

	"rtseed/internal/assign"
	"rtseed/internal/core"
	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/task"
)

// Kind identifies one of the four measured overheads.
type Kind int

const (
	// DeltaM is the overhead of beginning the mandatory part.
	DeltaM Kind = iota + 1
	// DeltaS is the overhead of switching the mandatory thread to the
	// optional thread.
	DeltaS
	// DeltaB is the overhead of beginning the parallel optional threads
	// (the pthread_cond_signal loop).
	DeltaB
	// DeltaE is the overhead of ending the parallel optional threads.
	DeltaE
)

// Kinds lists the four overheads in figure order (10, 11, 12, 13).
func Kinds() []Kind { return []Kind{DeltaM, DeltaS, DeltaB, DeltaE} }

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case DeltaM:
		return "begin-mandatory"
	case DeltaS:
		return "switch-to-optional"
	case DeltaB:
		return "begin-optional"
	case DeltaE:
		return "end-optional"
	default:
		return "unknown-overhead"
	}
}

// Figure returns the paper figure number the overhead is plotted in.
func (k Kind) Figure() int {
	switch k {
	case DeltaM:
		return 10
	case DeltaS:
		return 11
	case DeltaB:
		return 12
	case DeltaE:
		return 13
	default:
		return 0
	}
}

// NumPartsSweep is the paper's np set (§V-A) on the 228-hardware-thread
// Xeon Phi.
func NumPartsSweep() []int { return []int{4, 8, 16, 32, 57, 114, 171, 228} }

// Config configures one measurement run.
type Config struct {
	// Topology is the machine (defaults to the Xeon Phi 3120A).
	Topology machine.Topology
	// Load is the background load condition.
	Load machine.Load
	// Policy assigns the parallel optional parts to hardware threads.
	Policy assign.Policy
	// NumParts is np, the number of parallel optional parts.
	NumParts int
	// Jobs is the number of jobs measured (the paper uses 100).
	Jobs int
	// Period is T1 = D1 (default 1s, the OANDA tick interval).
	Period time.Duration
	// Mandatory is the actual mandatory compute (default 250ms).
	Mandatory time.Duration
	// WindupBudget is w1 (default 250ms). The optional deadline is
	// OD = T − WindupBudget per the paper's Theorem 2 citation.
	WindupBudget time.Duration
	// WindupExec is the actual wind-up compute; the difference
	// WindupBudget − WindupExec is the overhead allowance the paper folds
	// into the WCET (§II-A). Default 150ms, leaving 100ms for Δe and Δm.
	WindupExec time.Duration
	// OptionalExec is each o_{1,k}; the default 1s always overruns the
	// optional deadline so every part is terminated — the paper's
	// worst-case overhead condition.
	OptionalExec time.Duration
	// Seed seeds the machine jitter.
	Seed uint64
}

func (c *Config) fillDefaults() {
	if c.Topology.Cores == 0 {
		c.Topology = machine.XeonPhi3120A()
	}
	if c.Jobs == 0 {
		c.Jobs = 100
	}
	if c.Period == 0 {
		c.Period = time.Second
	}
	if c.Mandatory == 0 {
		c.Mandatory = 250 * time.Millisecond
	}
	if c.WindupBudget == 0 {
		c.WindupBudget = 250 * time.Millisecond
	}
	if c.WindupExec == 0 {
		c.WindupExec = 150 * time.Millisecond
	}
	if c.OptionalExec == 0 {
		c.OptionalExec = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
}

func (c *Config) validate() error {
	if !c.Load.Valid() {
		return fmt.Errorf("overhead: invalid load %d", c.Load)
	}
	if !c.Policy.Valid() {
		return fmt.Errorf("overhead: invalid policy %d", c.Policy)
	}
	if c.NumParts <= 0 || c.NumParts > c.Topology.NumHWThreads() {
		return fmt.Errorf("overhead: np=%d outside [1,%d]", c.NumParts, c.Topology.NumHWThreads())
	}
	if c.WindupExec > c.WindupBudget {
		return fmt.Errorf("overhead: wind-up exec %v exceeds budget %v", c.WindupExec, c.WindupBudget)
	}
	return nil
}

// Measurement holds the per-job overhead samples of one run.
type Measurement struct {
	Config  Config
	Samples map[Kind][]time.Duration
}

// Mean returns the mean of the samples for kind (0 if none).
func (m *Measurement) Mean(kind Kind) time.Duration {
	s := m.Samples[kind]
	if len(s) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range s {
		sum += v
	}
	return sum / time.Duration(len(s))
}

// Max returns the maximum sample for kind.
func (m *Measurement) Max(kind Kind) time.Duration {
	var max time.Duration
	for _, v := range m.Samples[kind] {
		if v > max {
			max = v
		}
	}
	return max
}

// Run executes one measurement: Jobs jobs of the single evaluation task τ1
// with NumParts parallel optional parts assigned under Policy, on a machine
// under Load. It returns the per-job samples of all four overheads.
func Run(cfg Config) (*Measurement, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	mach, err := machine.New(cfg.Topology, cfg.Load, machine.DefaultCostModel(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	k := kernel.New(engine.New(), mach)

	tk := task.Uniform("tau1", cfg.Mandatory, cfg.WindupExec, cfg.OptionalExec, cfg.NumParts, cfg.Period)
	cpus, err := assign.HWThreads(cfg.Topology, cfg.Policy, cfg.NumParts)
	if err != nil {
		return nil, err
	}
	od := cfg.Period - cfg.WindupBudget

	meas := &Measurement{
		Config:  cfg,
		Samples: map[Kind][]time.Duration{},
	}
	// Per-job probe state: the switch overhead Δs spans two probes.
	var blockAt engine.Time
	probes := core.Probes{
		OnRelease: func(job int, release, start engine.Time) {
			meas.Samples[DeltaM] = append(meas.Samples[DeltaM], start.Sub(release))
		},
		OnSignalLoop: func(job int, start, end engine.Time) {
			meas.Samples[DeltaB] = append(meas.Samples[DeltaB], end.Sub(start))
		},
		OnMandatoryBlock: func(job int, at engine.Time) {
			blockAt = at
		},
		OnOptionalStart: func(job, part int, at engine.Time) {
			// The first parallel optional thread runs on the mandatory
			// thread's hardware thread; its start marks the switch.
			if part == 0 {
				meas.Samples[DeltaS] = append(meas.Samples[DeltaS], at.Sub(blockAt))
			}
		},
		OnWindupStart: func(job int, odAbs, start engine.Time) {
			meas.Samples[DeltaE] = append(meas.Samples[DeltaE], start.Sub(odAbs))
		},
	}

	p, err := core.NewProcess(k, core.Config{
		Task:              tk,
		MandatoryPriority: 90, // the paper's running example priority
		MandatoryCPU:      0,  // hardware thread 0 of core 0 (§V-A)
		OptionalCPUs:      cpus,
		OptionalDeadline:  od,
		Jobs:              cfg.Jobs,
		Probes:            probes,
	})
	if err != nil {
		return nil, err
	}
	p.Start()
	k.Run()

	for _, kind := range Kinds() {
		if got := len(meas.Samples[kind]); got != cfg.Jobs {
			return nil, fmt.Errorf("overhead: %v has %d samples, want %d", kind, got, cfg.Jobs)
		}
	}
	return meas, nil
}
