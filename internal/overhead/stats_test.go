package overhead

import (
	"strings"
	"testing"
	"time"

	"rtseed/internal/assign"
	"rtseed/internal/machine"
)

func TestDistribution(t *testing.T) {
	m := &Measurement{Samples: map[Kind][]time.Duration{
		DeltaM: {10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
	}}
	d := m.Distribution(DeltaM)
	if d.N != 10 {
		t.Fatalf("n %d", d.N)
	}
	if d.Mean != 55 {
		t.Fatalf("mean %v, want 55", d.Mean)
	}
	if d.Min != 10 || d.Max != 100 {
		t.Fatalf("min/max %v/%v", d.Min, d.Max)
	}
	if d.P50 != 50 {
		t.Fatalf("p50 %v, want 50", d.P50)
	}
	if d.P95 < 90 || d.P95 > 100 {
		t.Fatalf("p95 %v", d.P95)
	}
	if d.P99 != 100 {
		t.Fatalf("p99 %v, want 100", d.P99)
	}
	if d.StdDev <= 0 {
		t.Fatal("stddev should be positive")
	}
	if !strings.Contains(d.String(), "mean=") {
		t.Fatal("String output missing fields")
	}
}

func TestDistributionEmpty(t *testing.T) {
	m := &Measurement{Samples: map[Kind][]time.Duration{}}
	d := m.Distribution(DeltaE)
	if d.N != 0 || d.Mean != 0 || d.P99 != 0 {
		t.Fatalf("empty distribution %+v", d)
	}
}

func TestDistributionFromRealRun(t *testing.T) {
	meas, err := Run(Config{Load: machine.NoLoad, Policy: assign.OneByOne, NumParts: 8, Jobs: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range Kinds() {
		d := meas.Distribution(k)
		if d.N != 20 {
			t.Fatalf("%v: n=%d", k, d.N)
		}
		if !(d.Min <= d.P50 && d.P50 <= d.P95 && d.P95 <= d.P99 && d.P99 <= d.Max) {
			t.Fatalf("%v: percentiles out of order: %v", k, d)
		}
		if d.Mean < d.Min || d.Mean > d.Max {
			t.Fatalf("%v: mean outside range: %v", k, d)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	figs, err := SweepLoad(SweepConfig{NumParts: []int{4}, Jobs: 2}, machine.CPULoad)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteCSV(&b, figs); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// header + 4 kinds x 3 policies x 1 np
	if len(lines) != 1+12 {
		t.Fatalf("%d lines, want 13:\n%s", len(lines), out)
	}
	if lines[0] != "figure,kind,load,policy,np,mean_ns" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(out, "13,end-optional,cpu,one,4,") {
		t.Fatalf("expected fig13 row, got:\n%s", out)
	}
}

// The conclusion's trade-off: useful optional work grows with np while the
// decision latency also grows (the O(np) ending overhead delays the
// wind-up).
func TestQoSSweepTradeoff(t *testing.T) {
	points, err := QoSSweep(machine.CPUMemoryLoad, assign.OneByOne, []int{4, 57, 228}, 5, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	// Useful work scales with parallelism.
	if !(points[0].UsefulWork < points[1].UsefulWork && points[1].UsefulWork < points[2].UsefulWork) {
		t.Fatalf("useful work should grow with np: %+v", points)
	}
	// Decision latency grows with np (Δe is O(np)).
	if !(points[0].DecisionLatency < points[2].DecisionLatency) {
		t.Fatalf("decision latency should grow with np: %+v", points)
	}
	// The wind-up budget still absorbs the overhead: no misses.
	for _, p := range points {
		if p.DeadlineMisses != 0 {
			t.Fatalf("np=%d missed %d deadlines", p.NumParts, p.DeadlineMisses)
		}
	}
	// Under background load, adding parts *raises* per-part efficiency:
	// every bound RT thread displaces a background hog from its SMT slot,
	// so parts at np=228 run next to other optional parts instead of
	// cache-polluting load loops.
	eff4 := float64(points[0].UsefulWork) / 4
	eff228 := float64(points[2].UsefulWork) / 228
	if eff228 <= eff4 {
		t.Fatalf("per-part efficiency should rise under load (background displacement): %v vs %v", eff4, eff228)
	}

	// Under no load the effect reverses: at np=4 parts run on otherwise
	// idle cores at full speed, while at np=228 they share issue slots
	// with three sibling parts and lose the overhead-shrunk window too.
	clean, err := QoSSweep(machine.NoLoad, assign.OneByOne, []int{4, 228}, 5, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	cleanEff4 := float64(clean[0].UsefulWork) / 4
	cleanEff228 := float64(clean[1].UsefulWork) / 228
	if cleanEff228 >= cleanEff4 {
		t.Fatalf("per-part efficiency should fall without load: %v vs %v", cleanEff4, cleanEff228)
	}
}

func TestQoSSweepDefaults(t *testing.T) {
	points, err := QoSSweep(machine.NoLoad, assign.AllByAll, []int{4}, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].UsefulWork <= 0 {
		t.Fatalf("points %+v", points)
	}
}

// The paper's claim that Δm "depends on the number of tasks", measured:
// with more tasks on one processor, the worst-case beginning-of-mandatory
// overhead grows (lower-priority tasks wait behind higher-priority
// mandatory parts at synchronous releases).
func TestDeltaMGrowsWithTaskCount(t *testing.T) {
	points, err := DeltaMVsTaskCount(machine.NoLoad, []int{1, 4, 8}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	if !(points[0].WorstDeltaM < points[1].WorstDeltaM && points[1].WorstDeltaM < points[2].WorstDeltaM) {
		t.Fatalf("worst Δm should grow with task count: %+v", points)
	}
	if points[0].MeanDeltaM <= 0 {
		t.Fatal("n=1 Δm should be positive")
	}
	// With one task there is no blocking: worst is close to mean.
	if points[0].WorstDeltaM > 3*points[0].MeanDeltaM {
		t.Fatalf("n=1 worst/mean spread implausible: %+v", points[0])
	}
}

func TestDeltaMVsTaskCountValidation(t *testing.T) {
	if _, err := DeltaMVsTaskCount(machine.Load(0), nil, 5, 1); err == nil {
		t.Fatal("invalid load accepted")
	}
	if _, err := DeltaMVsTaskCount(machine.NoLoad, []int{0}, 5, 1); err == nil {
		t.Fatal("zero tasks accepted")
	}
	if _, err := DeltaMVsTaskCount(machine.NoLoad, []int{50}, 5, 1); err == nil {
		t.Fatal("more tasks than RTQ levels accepted")
	}
}
