package overhead

import (
	"testing"
	"time"

	"rtseed/internal/assign"
	"rtseed/internal/machine"
)

// testJobs keeps the suite fast; means are stable well below the paper's
// 100 jobs.
const testJobs = 10

func run(t *testing.T, load machine.Load, pol assign.Policy, np int) *Measurement {
	t.Helper()
	m, err := Run(Config{Load: load, Policy: pol, NumParts: np, Jobs: testJobs})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunProducesAllSamples(t *testing.T) {
	m := run(t, machine.NoLoad, assign.OneByOne, 4)
	for _, k := range Kinds() {
		if len(m.Samples[k]) != testJobs {
			t.Fatalf("%v: %d samples, want %d", k, len(m.Samples[k]), testJobs)
		}
		if m.Mean(k) <= 0 {
			t.Fatalf("%v: non-positive mean %v", k, m.Mean(k))
		}
		if m.Max(k) < m.Mean(k) {
			t.Fatalf("%v: max below mean", k)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Load: machine.Load(0), Policy: assign.OneByOne, NumParts: 4}); err == nil {
		t.Fatal("invalid load accepted")
	}
	if _, err := Run(Config{Load: machine.NoLoad, Policy: assign.Policy(0), NumParts: 4}); err == nil {
		t.Fatal("invalid policy accepted")
	}
	if _, err := Run(Config{Load: machine.NoLoad, Policy: assign.OneByOne, NumParts: 0}); err == nil {
		t.Fatal("np=0 accepted")
	}
	if _, err := Run(Config{Load: machine.NoLoad, Policy: assign.OneByOne, NumParts: 229}); err == nil {
		t.Fatal("np beyond topology accepted")
	}
	if _, err := Run(Config{Load: machine.NoLoad, Policy: assign.OneByOne, NumParts: 4,
		WindupBudget: time.Millisecond, WindupExec: time.Second}); err == nil {
		t.Fatal("wind-up exec above budget accepted")
	}
}

func TestKindMetadata(t *testing.T) {
	figs := map[Kind]int{DeltaM: 10, DeltaS: 11, DeltaB: 12, DeltaE: 13}
	for k, fig := range figs {
		if k.Figure() != fig {
			t.Errorf("%v: figure %d, want %d", k, k.Figure(), fig)
		}
		if k.String() == "unknown-overhead" {
			t.Errorf("kind %d missing label", k)
		}
	}
	if Kind(0).Figure() != 0 {
		t.Error("zero kind should map to no figure")
	}
}

func TestNumPartsSweepMatchesPaper(t *testing.T) {
	want := []int{4, 8, 16, 32, 57, 114, 171, 228}
	got := NumPartsSweep()
	if len(got) != len(want) {
		t.Fatalf("sweep %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep %v, want %v", got, want)
		}
	}
}

// Fig. 10: Δm is approximately constant in np and ordered
// CPU-Memory load > CPU load > No load.
func TestFig10BeginMandatoryShape(t *testing.T) {
	means := map[machine.Load][]time.Duration{}
	for _, load := range machine.Loads() {
		for _, np := range []int{4, 57} {
			means[load] = append(means[load], run(t, load, assign.OneByOne, np).Mean(DeltaM))
		}
	}
	for load, ms := range means {
		lo, hi := ms[0], ms[0]
		for _, v := range ms {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if float64(hi) > 1.5*float64(lo) {
			t.Errorf("%v: Δm not approximately constant: %v", load, ms)
		}
	}
	if !(means[machine.CPUMemoryLoad][0] > means[machine.CPULoad][0] &&
		means[machine.CPULoad][0] > means[machine.NoLoad][0]) {
		t.Errorf("Δm load ordering violated: mem=%v cpu=%v none=%v",
			means[machine.CPUMemoryLoad][0], means[machine.CPULoad][0], means[machine.NoLoad][0])
	}
	// Magnitude: tens to hundreds of microseconds, as in the paper.
	if m := means[machine.CPUMemoryLoad][0]; m < 50*time.Microsecond || m > time.Millisecond {
		t.Errorf("Δm magnitude %v outside the paper's order of magnitude", m)
	}
}

// Fig. 11: Δs grows with np under no load, with a sharp rise at 228; under
// background load it is approximately constant in np.
func TestFig11SwitchShape(t *testing.T) {
	var noLoad []time.Duration
	nps := []int{4, 57, 228}
	for _, np := range nps {
		noLoad = append(noLoad, run(t, machine.NoLoad, assign.OneByOne, np).Mean(DeltaS))
	}
	if !(noLoad[0] < noLoad[1] && noLoad[1] < noLoad[2]) {
		t.Errorf("no-load Δs should grow with np: %v", noLoad)
	}
	// The rise from 57 to 228 must dominate the rise from 4 to 57
	// (Fig. 11a's dramatic increase at 228).
	if noLoad[2]-noLoad[1] <= noLoad[1]-noLoad[0] {
		t.Errorf("no-load Δs should rise sharply near 228: %v", noLoad)
	}
	for _, load := range []machine.Load{machine.CPULoad, machine.CPUMemoryLoad} {
		var ms []time.Duration
		for _, np := range nps {
			ms = append(ms, run(t, load, assign.OneByOne, np).Mean(DeltaS))
		}
		lo, hi := ms[0], ms[0]
		for _, v := range ms {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if float64(hi) > 2.2*float64(lo) {
			t.Errorf("%v: Δs should be approximately constant, got %v", load, ms)
		}
	}
}

// Fig. 12: Δb is linear in np (O(np) cond_signal calls) and the CPU load
// hurts it more than the CPU-Memory load (branch-unit contention).
func TestFig12BeginOptionalShape(t *testing.T) {
	for _, load := range machine.Loads() {
		d57 := run(t, load, assign.OneByOne, 57).Mean(DeltaB)
		d228 := run(t, load, assign.OneByOne, 228).Mean(DeltaB)
		// Roughly linear in np (228/57 = 4); the slope flattens a little
		// at high np because optional threads displace background load
		// from the SMT siblings.
		ratio := float64(d228) / float64(d57)
		if ratio < 2.2 || ratio > 5.5 {
			t.Errorf("%v: Δb(228)/Δb(57) = %.2f, want ~3-5 (linear in np)", load, ratio)
		}
	}
	cpu := run(t, machine.CPULoad, assign.OneByOne, 228).Mean(DeltaB)
	mem := run(t, machine.CPUMemoryLoad, assign.OneByOne, 228).Mean(DeltaB)
	none := run(t, machine.NoLoad, assign.OneByOne, 228).Mean(DeltaB)
	if !(cpu > mem && mem > none) {
		t.Errorf("Δb ordering: cpu=%v mem=%v none=%v, want cpu > mem > none", cpu, mem, none)
	}
	// Magnitude: milliseconds at np=228, as in the paper.
	if cpu < 2*time.Millisecond || cpu > 60*time.Millisecond {
		t.Errorf("Δb magnitude %v outside the paper's order of magnitude", cpu)
	}
}

// Fig. 13: Δe is linear in np, the largest of all overheads, ordered
// CPU-Memory > CPU under load, and under load One-by-One is the most
// expensive policy while All-by-All is the cheapest.
func TestFig13EndOptionalShape(t *testing.T) {
	for _, load := range machine.Loads() {
		d57 := run(t, load, assign.OneByOne, 57).Mean(DeltaE)
		d228 := run(t, load, assign.OneByOne, 228).Mean(DeltaE)
		ratio := float64(d228) / float64(d57)
		if ratio < 2.5 || ratio > 6 {
			t.Errorf("%v: Δe(228)/Δe(57) = %.2f, want ~3-4 (linear in np)", load, ratio)
		}
	}
	cpu := run(t, machine.CPULoad, assign.OneByOne, 228)
	mem := run(t, machine.CPUMemoryLoad, assign.OneByOne, 228)
	if mem.Mean(DeltaE) <= cpu.Mean(DeltaE) {
		t.Errorf("Δe: CPU-Memory load (%v) should exceed CPU load (%v)",
			mem.Mean(DeltaE), cpu.Mean(DeltaE))
	}
	// Δe is the largest overhead (paper: "the overhead of ending the
	// parallel optional parts is the largest of all types of overhead").
	for _, k := range []Kind{DeltaM, DeltaS, DeltaB} {
		if mem.Mean(DeltaE) <= mem.Mean(k) {
			t.Errorf("Δe (%v) should exceed %v (%v)", mem.Mean(DeltaE), k, mem.Mean(k))
		}
	}
	// Policy ordering under load at an np where layouts differ.
	for _, load := range []machine.Load{machine.CPULoad, machine.CPUMemoryLoad} {
		one := run(t, load, assign.OneByOne, 57).Mean(DeltaE)
		two := run(t, load, assign.TwoByTwo, 57).Mean(DeltaE)
		all := run(t, load, assign.AllByAll, 57).Mean(DeltaE)
		if !(one > two && two > all) {
			t.Errorf("%v: Δe policy ordering one=%v two=%v all=%v, want one > two > all",
				load, one, two, all)
		}
	}
	// Under no load the policies are approximately the same.
	one := run(t, machine.NoLoad, assign.OneByOne, 57).Mean(DeltaE)
	all := run(t, machine.NoLoad, assign.AllByAll, 57).Mean(DeltaE)
	lo, hi := one, all
	if lo > hi {
		lo, hi = hi, lo
	}
	if float64(hi) > 1.4*float64(lo) {
		t.Errorf("no-load Δe policies should be close: one=%v all=%v", one, all)
	}
	// Magnitude: tens of milliseconds at np=228, as in the paper.
	if d := mem.Mean(DeltaE); d < 10*time.Millisecond || d > 200*time.Millisecond {
		t.Errorf("Δe magnitude %v outside the paper's order of magnitude", d)
	}
}

// Even with every optional part overrunning at every job, the wind-up part
// always completes by the deadline: the semi-fixed-priority guarantee under
// the worst-case overhead conditions of §V-A.
func TestNoDeadlineMissesUnderWorstCase(t *testing.T) {
	for _, load := range machine.Loads() {
		m := run(t, load, assign.OneByOne, 228)
		// Δm spilling past one period would show up as a release overhead
		// of milliseconds.
		if m.Max(DeltaM) > 10*time.Millisecond {
			t.Errorf("%v: Δm max %v suggests the previous job overran its period", load, m.Max(DeltaM))
		}
	}
}

func TestSweepLoadStructure(t *testing.T) {
	figs, err := SweepLoad(SweepConfig{
		NumParts: []int{4, 16},
		Jobs:     3,
	}, machine.NoLoad)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("%d figures, want 4", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) != 3 {
			t.Fatalf("fig %v: %d series, want 3 policies", f.Kind, len(f.Series))
		}
		for _, s := range f.Series {
			if len(s.Points) != 2 {
				t.Fatalf("fig %v %v: %d points, want 2", f.Kind, s.Policy, len(s.Points))
			}
			if s.MeanOver() <= 0 {
				t.Fatalf("fig %v %v: non-positive mean", f.Kind, s.Policy)
			}
		}
	}
	if ByKindLoad(figs, DeltaE, machine.NoLoad) == nil {
		t.Fatal("ByKindLoad lookup failed")
	}
	if ByKindLoad(figs, DeltaE, machine.CPULoad) != nil {
		t.Fatal("ByKindLoad found a figure for an unswept load")
	}
	if figs[0].SeriesFor(assign.OneByOne) == nil {
		t.Fatal("SeriesFor lookup failed")
	}
}

// Determinism: same seed, same measurements.
func TestMeasurementDeterministic(t *testing.T) {
	a := run(t, machine.CPUMemoryLoad, assign.TwoByTwo, 16)
	b := run(t, machine.CPUMemoryLoad, assign.TwoByTwo, 16)
	for _, k := range Kinds() {
		if a.Mean(k) != b.Mean(k) {
			t.Fatalf("%v: nondeterministic means %v vs %v", k, a.Mean(k), b.Mean(k))
		}
	}
}
