package overhead

import (
	"reflect"
	"testing"

	"rtseed/internal/assign"
	"rtseed/internal/machine"
)

// The load-bearing invariant of the parallel executor: every sweep cell is
// an independent deterministic simulation, so the assembled figures are
// deeply equal for any worker count.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	cfg := SweepConfig{NumParts: []int{4, 16, 57}, Jobs: 3}
	want, err := SweepAll(SweepConfig{NumParts: cfg.NumParts, Jobs: cfg.Jobs, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := SweepAll(SweepConfig{NumParts: cfg.NumParts, Jobs: cfg.Jobs, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("Workers=%d produced different figures than Workers=1", workers)
		}
	}
}

// SweepLoad and SweepAll must agree cell-for-cell: SweepAll is not a
// re-implementation, just the three-load enumeration.
func TestSweepAllMatchesSweepLoad(t *testing.T) {
	cfg := SweepConfig{NumParts: []int{4, 57}, Jobs: 2}
	all, err := SweepAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 12 {
		t.Fatalf("%d figures, want 12 (4 kinds x 3 loads)", len(all))
	}
	for _, load := range machine.Loads() {
		figs, err := SweepLoad(cfg, load)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range figs {
			got := ByKindLoad(all, f.Kind, load)
			if got == nil || !reflect.DeepEqual(*got, f) {
				t.Fatalf("SweepAll disagrees with SweepLoad for (%v, %v)", f.Kind, load)
			}
		}
	}
}

func TestQoSSweepDeterministicAcrossWorkers(t *testing.T) {
	nps := []int{4, 16, 57}
	want, err := QoSSweep(machine.NoLoad, assign.OneByOne, nps, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := QoSSweep(machine.NoLoad, assign.OneByOne, nps, 3, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("Workers=8 QoS curve differs from Workers=1:\n%+v\nvs\n%+v", got, want)
	}
}
