package overhead

import (
	"time"

	"rtseed/internal/assign"
	"rtseed/internal/machine"
)

// Point is one plotted point: mean overhead at a number of parallel
// optional parts.
type Point struct {
	NumParts int
	Mean     time.Duration
}

// Series is one curve of a figure: one assignment policy swept over np.
type Series struct {
	Policy assign.Policy
	Points []Point
}

// FigureData is one subfigure of the paper: a (overhead kind, load) pair
// with one series per assignment policy.
type FigureData struct {
	Kind   Kind
	Load   machine.Load
	Series []Series
}

// SweepConfig parameterizes a full figure regeneration.
type SweepConfig struct {
	// Topology defaults to the Xeon Phi 3120A.
	Topology machine.Topology
	// NumParts defaults to the paper's sweep {4,...,228}.
	NumParts []int
	// Policies defaults to all three.
	Policies []assign.Policy
	// Jobs per measurement (default 100; reduce for quick runs).
	Jobs int
	// Seed for machine jitter.
	Seed uint64
}

func (c *SweepConfig) fillDefaults() {
	if c.Topology.Cores == 0 {
		c.Topology = machine.XeonPhi3120A()
	}
	if len(c.NumParts) == 0 {
		c.NumParts = NumPartsSweep()
	}
	if len(c.Policies) == 0 {
		c.Policies = assign.Policies()
	}
	if c.Jobs == 0 {
		c.Jobs = 100
	}
}

// SweepLoad runs the full policy × np sweep under one load, returning every
// figure's data for that load. All four overheads are measured in the same
// runs, exactly as on the real testbed.
func SweepLoad(cfg SweepConfig, load machine.Load) ([]FigureData, error) {
	cfg.fillDefaults()
	figures := make([]FigureData, 0, 4)
	byKind := map[Kind]*FigureData{}
	for _, kind := range Kinds() {
		figures = append(figures, FigureData{Kind: kind, Load: load})
		byKind[kind] = &figures[len(figures)-1]
	}
	for _, pol := range cfg.Policies {
		series := map[Kind]*Series{}
		for _, kind := range Kinds() {
			fd := byKind[kind]
			fd.Series = append(fd.Series, Series{Policy: pol})
			series[kind] = &fd.Series[len(fd.Series)-1]
		}
		for _, np := range cfg.NumParts {
			m, err := Run(Config{
				Topology: cfg.Topology,
				Load:     load,
				Policy:   pol,
				NumParts: np,
				Jobs:     cfg.Jobs,
				Seed:     cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			for _, kind := range Kinds() {
				s := series[kind]
				s.Points = append(s.Points, Point{NumParts: np, Mean: m.Mean(kind)})
			}
		}
	}
	return figures, nil
}

// SweepAll regenerates every subfigure of Figs. 10-13: all four overheads
// under all three loads.
func SweepAll(cfg SweepConfig) ([]FigureData, error) {
	var out []FigureData
	for _, load := range machine.Loads() {
		figs, err := SweepLoad(cfg, load)
		if err != nil {
			return nil, err
		}
		out = append(out, figs...)
	}
	return out, nil
}

// ByKindLoad finds the figure data for a (kind, load) pair, or nil.
func ByKindLoad(figs []FigureData, kind Kind, load machine.Load) *FigureData {
	for i := range figs {
		if figs[i].Kind == kind && figs[i].Load == load {
			return &figs[i]
		}
	}
	return nil
}

// SeriesFor returns the series of a policy within a figure, or nil.
func (f *FigureData) SeriesFor(p assign.Policy) *Series {
	for i := range f.Series {
		if f.Series[i].Policy == p {
			return &f.Series[i]
		}
	}
	return nil
}

// MeanOver averages a series' points (the per-figure scalar used in shape
// assertions).
func (s *Series) MeanOver() time.Duration {
	if len(s.Points) == 0 {
		return 0
	}
	var sum time.Duration
	for _, p := range s.Points {
		sum += p.Mean
	}
	return sum / time.Duration(len(s.Points))
}
