package overhead

import (
	"time"

	"rtseed/internal/assign"
	"rtseed/internal/machine"
	"rtseed/internal/sweep"
)

// Point is one plotted point: mean overhead at a number of parallel
// optional parts.
type Point struct {
	NumParts int
	Mean     time.Duration
}

// Series is one curve of a figure: one assignment policy swept over np.
type Series struct {
	Policy assign.Policy
	Points []Point
}

// FigureData is one subfigure of the paper: a (overhead kind, load) pair
// with one series per assignment policy.
type FigureData struct {
	Kind   Kind
	Load   machine.Load
	Series []Series
}

// SweepConfig parameterizes a full figure regeneration.
type SweepConfig struct {
	// Topology defaults to the Xeon Phi 3120A.
	Topology machine.Topology
	// NumParts defaults to the paper's sweep {4,...,228}.
	NumParts []int
	// Policies defaults to all three.
	Policies []assign.Policy
	// Jobs per measurement (default 100; reduce for quick runs).
	Jobs int
	// Seed for machine jitter.
	Seed uint64
	// Workers bounds the number of sweep cells simulated concurrently
	// (default GOMAXPROCS). Every cell owns its engine and seed, so the
	// figures are bit-identical for any worker count.
	Workers int
}

func (c *SweepConfig) fillDefaults() {
	if c.Topology.Cores == 0 {
		c.Topology = machine.XeonPhi3120A()
	}
	if len(c.NumParts) == 0 {
		c.NumParts = NumPartsSweep()
	}
	if len(c.Policies) == 0 {
		c.Policies = assign.Policies()
	}
	if c.Jobs == 0 {
		c.Jobs = 100
	}
}

// SweepLoad runs the full policy × np sweep under one load, returning every
// figure's data for that load. All four overheads are measured in the same
// runs, exactly as on the real testbed.
func SweepLoad(cfg SweepConfig, load machine.Load) ([]FigureData, error) {
	return sweepLoads(cfg, []machine.Load{load})
}

// SweepAll regenerates every subfigure of Figs. 10-13: all four overheads
// under all three loads.
func SweepAll(cfg SweepConfig) ([]FigureData, error) {
	return sweepLoads(cfg, machine.Loads())
}

// sweepLoads fans every (load, policy, np) cell out over the worker pool —
// each cell is one deterministic overhead.Run measuring all four kinds —
// and reassembles the figures in canonical order: loads outer, then the
// four kinds, one series per policy, one point per np.
func sweepLoads(cfg SweepConfig, loads []machine.Load) ([]FigureData, error) {
	cfg.fillDefaults()
	type cell struct {
		load machine.Load
		pol  assign.Policy
		np   int
	}
	cells := make([]cell, 0, len(loads)*len(cfg.Policies)*len(cfg.NumParts))
	for _, load := range loads {
		for _, pol := range cfg.Policies {
			for _, np := range cfg.NumParts {
				cells = append(cells, cell{load: load, pol: pol, np: np})
			}
		}
	}
	meas, err := sweep.Map(cfg.Workers, len(cells), func(i int) (*Measurement, error) {
		c := cells[i]
		return Run(Config{
			Topology: cfg.Topology,
			Load:     c.load,
			Policy:   c.pol,
			NumParts: c.np,
			Jobs:     cfg.Jobs,
			Seed:     cfg.Seed,
		})
	})
	if err != nil {
		return nil, err
	}

	out := make([]FigureData, 0, len(loads)*len(Kinds()))
	idx := 0
	for _, load := range loads {
		base := len(out)
		for _, kind := range Kinds() {
			out = append(out, FigureData{Kind: kind, Load: load})
		}
		for _, pol := range cfg.Policies {
			points := make(map[Kind][]Point, len(Kinds()))
			for _, np := range cfg.NumParts {
				m := meas[idx]
				idx++
				for _, kind := range Kinds() {
					points[kind] = append(points[kind], Point{NumParts: np, Mean: m.Mean(kind)})
				}
			}
			for ki, kind := range Kinds() {
				out[base+ki].Series = append(out[base+ki].Series, Series{Policy: pol, Points: points[kind]})
			}
		}
	}
	return out, nil
}

// ByKindLoad finds the figure data for a (kind, load) pair, or nil.
func ByKindLoad(figs []FigureData, kind Kind, load machine.Load) *FigureData {
	for i := range figs {
		if figs[i].Kind == kind && figs[i].Load == load {
			return &figs[i]
		}
	}
	return nil
}

// SeriesFor returns the series of a policy within a figure, or nil.
func (f *FigureData) SeriesFor(p assign.Policy) *Series {
	for i := range f.Series {
		if f.Series[i].Policy == p {
			return &f.Series[i]
		}
	}
	return nil
}

// MeanOver averages a series' points (the per-figure scalar used in shape
// assertions).
func (s *Series) MeanOver() time.Duration {
	if len(s.Points) == 0 {
		return 0
	}
	var sum time.Duration
	for _, p := range s.Points {
		sum += p.Mean
	}
	return sum / time.Duration(len(s.Points))
}
