package overhead

import (
	"time"

	"rtseed/internal/assign"
	"rtseed/internal/core"
	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/sweep"
	"rtseed/internal/task"
)

// QoSPoint quantifies the trade-off the paper's conclusion describes:
// adding parallel optional parts buys more analysis work per job, but the
// O(np) beginning/ending overheads delay the trading decision.
type QoSPoint struct {
	NumParts int
	// UsefulWork is the mean optional execution time achieved per job,
	// summed over all parts — the QoS the trader actually gets.
	UsefulWork time.Duration
	// DecisionLatency is the mean wind-up completion time relative to the
	// release: how stale the trading decision is.
	DecisionLatency time.Duration
	// DeadlineMisses counts jobs that finished past the period.
	DeadlineMisses int
}

// QoSSweep runs the evaluation task over a set of np values under one load
// and policy, measuring useful optional work and decision latency per job.
// Every part overruns (the paper's worst case), so useful work grows with
// the parallelism while the O(np) overheads push the decision later — the
// knee is the "appropriate number of parallel optional parts".
//
// The np cells are independent simulations and run concurrently on up to
// workers goroutines (<= 0 selects GOMAXPROCS); the curve is identical for
// any worker count.
func QoSSweep(load machine.Load, policy assign.Policy, nps []int, jobs int, seed uint64, workers int) ([]QoSPoint, error) {
	if len(nps) == 0 {
		nps = NumPartsSweep()
	}
	if jobs <= 0 {
		jobs = 20
	}
	return sweep.Map(workers, len(nps), func(i int) (QoSPoint, error) {
		return qosCell(load, policy, nps[i], jobs, seed)
	})
}

// qosCell measures one np operating point.
func qosCell(load machine.Load, policy assign.Policy, np, jobs int, seed uint64) (QoSPoint, error) {
	cfg := Config{
		Load:     load,
		Policy:   policy,
		NumParts: np,
		Jobs:     jobs,
		Seed:     seed,
	}
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return QoSPoint{}, err
	}
	mach, err := machine.New(cfg.Topology, cfg.Load, machine.DefaultCostModel(), cfg.Seed)
	if err != nil {
		return QoSPoint{}, err
	}
	k := kernel.New(engine.New(), mach)
	tk := task.Uniform("tau1", cfg.Mandatory, cfg.WindupExec, cfg.OptionalExec, np, cfg.Period)
	cpus, err := assign.HWThreads(cfg.Topology, cfg.Policy, np)
	if err != nil {
		return QoSPoint{}, err
	}
	p, err := core.NewProcess(k, core.Config{
		Task:              tk,
		MandatoryPriority: 90,
		MandatoryCPU:      0,
		OptionalCPUs:      cpus,
		OptionalDeadline:  cfg.Period - cfg.WindupBudget,
		Jobs:              jobs,
	})
	if err != nil {
		return QoSPoint{}, err
	}
	p.Start()
	k.Run()

	var useful, latency time.Duration
	misses := 0
	recs := p.Records()
	for _, rec := range recs {
		for _, part := range rec.Parts {
			useful += part.Executed
		}
		latency += rec.Finish - rec.Release
		if !rec.Met() {
			misses++
		}
	}
	n := time.Duration(len(recs))
	return QoSPoint{
		NumParts:        np,
		UsefulWork:      useful / n,
		DecisionLatency: latency / n,
		DeadlineMisses:  misses,
	}, nil
}
