package analysis

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"rtseed/internal/task"
)

func TestLiuLaylandBound(t *testing.T) {
	if b := LiuLaylandBound(1); b != 1 {
		t.Fatalf("bound(1) = %v, want 1", b)
	}
	if b := LiuLaylandBound(2); math.Abs(b-0.8284) > 1e-3 {
		t.Fatalf("bound(2) = %v, want ~0.828", b)
	}
	// Monotone decreasing toward ln 2.
	prev := 2.0
	for n := 1; n <= 64; n *= 2 {
		b := LiuLaylandBound(n)
		if b >= prev {
			t.Fatalf("bound must decrease: n=%d b=%v prev=%v", n, b, prev)
		}
		prev = b
	}
	if prev < math.Ln2-1e-3 {
		t.Fatalf("bound fell below ln2: %v", prev)
	}
	if LiuLaylandBound(0) != 0 {
		t.Fatal("bound(0) should be 0")
	}
}

func TestRMUSThreshold(t *testing.T) {
	// M/(3M-2): 1 for M=1, 0.5 for M=2, -> 1/3 as M grows.
	if RMUSThreshold(1) != 1 {
		t.Fatalf("threshold(1) = %v", RMUSThreshold(1))
	}
	if RMUSThreshold(2) != 0.5 {
		t.Fatalf("threshold(2) = %v", RMUSThreshold(2))
	}
	if th := RMUSThreshold(1000); math.Abs(th-1.0/3) > 1e-3 {
		t.Fatalf("threshold(1000) = %v, want ~1/3", th)
	}
	if RMUSThreshold(0) != 0 {
		t.Fatal("threshold(0) should be 0")
	}
	heavy := task.Uniform("h", 400*time.Millisecond, 300*time.Millisecond, 0, 0, time.Second)
	if !NeedsHighestPriority(heavy, 57) {
		t.Fatal("U=0.7 task must take the HPQ slot on 57 processors")
	}
	light := task.Uniform("l", 10*time.Millisecond, 10*time.Millisecond, 0, 0, time.Second)
	if NeedsHighestPriority(light, 57) {
		t.Fatal("U=0.02 task must not take the HPQ slot")
	}
}

// The paper's single-task case (§V-A): OD_1 = D_1 − w_1.
func TestOptionalDeadlineSingleTask(t *testing.T) {
	s := task.MustNewSet(task.Uniform("tau1",
		250*time.Millisecond, 250*time.Millisecond, time.Second, 8, time.Second))
	ods, err := OptionalDeadlines(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := ods["tau1"]; got != 750*time.Millisecond {
		t.Fatalf("OD = %v, want 750ms (D1 - w1)", got)
	}
}

func TestRMWPTwoTasks(t *testing.T) {
	// τ1: m=1, w=1, T=10 (highest priority). τ2: m=2, w=2, T=20.
	s := task.MustNewSet(
		task.Uniform("t1", 1*time.Millisecond, 1*time.Millisecond, 0, 0, 10*time.Millisecond),
		task.Uniform("t2", 2*time.Millisecond, 2*time.Millisecond, 0, 0, 20*time.Millisecond),
	)
	res, err := RMWP(s)
	if err != nil {
		t.Fatal(err)
	}
	// τ1 sees no interference: OD = 10 - 1 = 9ms, R^m = 1ms.
	if res[0].OptionalDeadline != 9*time.Millisecond {
		t.Fatalf("t1 OD = %v, want 9ms", res[0].OptionalDeadline)
	}
	if res[0].MandatoryResponse != time.Millisecond {
		t.Fatalf("t1 R^m = %v, want 1ms", res[0].MandatoryResponse)
	}
	// τ2's wind-up (2ms) can be delayed by one τ1 job (2ms): R^w = 4ms,
	// OD = 20 - 4 = 16ms. R^m = 2 + 2 = 4ms <= 16ms: schedulable.
	if res[1].WindupResponse != 4*time.Millisecond {
		t.Fatalf("t2 R^w = %v, want 4ms", res[1].WindupResponse)
	}
	if res[1].OptionalDeadline != 16*time.Millisecond {
		t.Fatalf("t2 OD = %v, want 16ms", res[1].OptionalDeadline)
	}
	if !res[1].Schedulable {
		t.Fatal("t2 should be schedulable")
	}
}

func TestRMWPUnschedulable(t *testing.T) {
	// Two tasks each needing 60% of the processor.
	s := task.MustNewSet(
		task.Uniform("t1", 3*time.Millisecond, 3*time.Millisecond, 0, 0, 10*time.Millisecond),
		task.Uniform("t2", 6*time.Millisecond, 4*time.Millisecond, 0, 0, 16*time.Millisecond),
	)
	_, err := RMWP(s)
	if err == nil {
		t.Fatal("overloaded set accepted")
	}
	if !errors.Is(err, ErrUnschedulable) {
		t.Fatalf("error %v should wrap ErrUnschedulable", err)
	}
}

// Theorem 1/2 of the paper: optional deadlines and schedulability do not
// depend on the number (or length) of parallel optional parts, because
// optional parts never interfere with mandatory or wind-up parts.
func TestTheorem1OptionalPartsIrrelevant(t *testing.T) {
	base := []task.Task{
		task.Uniform("a", 2*time.Millisecond, 1*time.Millisecond, 0, 0, 10*time.Millisecond),
		task.Uniform("b", 3*time.Millisecond, 2*time.Millisecond, 0, 0, 25*time.Millisecond),
	}
	ref, err := RMWP(task.MustNewSet(base...))
	if err != nil {
		t.Fatal(err)
	}
	for _, np := range []int{1, 4, 57, 228} {
		variant := []task.Task{
			task.Uniform("a", 2*time.Millisecond, 1*time.Millisecond, 5*time.Second, np, 10*time.Millisecond),
			task.Uniform("b", 3*time.Millisecond, 2*time.Millisecond, time.Hour, np, 25*time.Millisecond),
		}
		got, err := RMWP(task.MustNewSet(variant...))
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i].OptionalDeadline != ref[i].OptionalDeadline {
				t.Fatalf("np=%d changed OD of %s: %v vs %v",
					np, ref[i].Task.Name, got[i].OptionalDeadline, ref[i].OptionalDeadline)
			}
			if got[i].Schedulable != ref[i].Schedulable {
				t.Fatalf("np=%d changed schedulability of %s", np, ref[i].Task.Name)
			}
		}
	}
}

func TestResponseTimes(t *testing.T) {
	s := task.MustNewSet(
		task.Uniform("t1", 2*time.Millisecond, 1*time.Millisecond, 0, 0, 10*time.Millisecond),
		task.Uniform("t2", 3*time.Millisecond, 1*time.Millisecond, 0, 0, 20*time.Millisecond),
	)
	rts, ok := ResponseTimes(s)
	if !ok {
		t.Fatal("set should be schedulable")
	}
	if rts[0] != 3*time.Millisecond {
		t.Fatalf("R1 = %v, want 3ms", rts[0])
	}
	// R2 = 4 + ceil(R2/10)*3 -> 7ms.
	if rts[1] != 7*time.Millisecond {
		t.Fatalf("R2 = %v, want 7ms", rts[1])
	}
}

func TestResponseTimesOverload(t *testing.T) {
	s := task.MustNewSet(
		task.Uniform("t1", 6*time.Millisecond, 0, 0, 0, 10*time.Millisecond),
		task.Uniform("t2", 6*time.Millisecond, 0, 0, 0, 10*time.Millisecond),
	)
	if _, ok := ResponseTimes(s); ok {
		t.Fatal("120% utilization cannot be schedulable")
	}
}

func TestUtilizationSchedulable(t *testing.T) {
	ok := task.MustNewSet(task.Uniform("a", 2, 2, 0, 0, 10))
	if !UtilizationSchedulable(ok) {
		t.Fatal("U=0.4 single task must pass the LL test")
	}
	full := task.MustNewSet(
		task.Uniform("a", 3, 2, 0, 0, 10),
		task.Uniform("b", 5, 2, 0, 0, 14),
	)
	if UtilizationSchedulable(full) {
		t.Fatal("U=1.0 pair must fail the LL test")
	}
}

func TestBreakdownUtilization(t *testing.T) {
	s := task.MustNewSet(task.Uniform("a", 100*time.Millisecond, 100*time.Millisecond, 0, 0, time.Second))
	// A single RMWP task is schedulable as long as m+w <= T, so breakdown
	// scale is ~5x (0.2 -> 1.0 utilization).
	b := BreakdownUtilization(s, 0.01)
	if b < 4.8 || b > 5.1 {
		t.Fatalf("breakdown scale %v, want ~5", b)
	}
	if BreakdownUtilization(nil, 0.01) != 0 {
		t.Fatal("nil set breakdown should be 0")
	}
}

func TestRMWPEmptySet(t *testing.T) {
	if _, err := RMWP(nil); err == nil {
		t.Fatal("nil set accepted")
	}
}

// Property: OD_i is always in [0, D_i − w_i] for schedulable tasks, and the
// single-task formula OD = D − w holds exactly.
func TestPropertyOptionalDeadlineBounds(t *testing.T) {
	f := func(m8, w8, t8 uint8) bool {
		m := time.Duration(m8%50+1) * time.Millisecond
		w := time.Duration(w8%50+1) * time.Millisecond
		period := time.Duration(t8)*time.Millisecond + m + w // always feasible
		tk := task.Task{Name: "t", Mandatory: m, Windup: w, Period: period}
		res, err := RMWP(task.MustNewSet(tk))
		if err != nil {
			return false
		}
		return res[0].OptionalDeadline == period-w && res[0].Schedulable
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a higher-priority task never increases a task's optional
// deadline.
func TestPropertyInterferenceShrinksOD(t *testing.T) {
	f := func(m8, w8 uint8) bool {
		low := task.Uniform("low", 10*time.Millisecond, 10*time.Millisecond, 0, 0, 100*time.Millisecond)
		alone, err := RMWP(task.MustNewSet(low))
		if err != nil {
			return false
		}
		hi := task.Uniform("hi",
			time.Duration(m8%5+1)*time.Millisecond,
			time.Duration(w8%5+1)*time.Millisecond,
			0, 0, 20*time.Millisecond)
		both, err := RMWP(task.MustNewSet(low, hi))
		if err != nil {
			return true // unschedulable combinations are out of scope
		}
		var lowOD time.Duration
		for _, r := range both {
			if r.Task.Name == "low" {
				lowOD = r.OptionalDeadline
			}
		}
		return lowOD <= alone[0].OptionalDeadline
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHyperbolicBound(t *testing.T) {
	// A set the LL bound rejects but the hyperbolic bound accepts:
	// two tasks at U=0.41 each: sum 0.82 > 0.828? No - pick 0.42:
	// sum 0.84 > 0.8284 (LL fails), product 1.42^2 = 2.0164 > 2 (fails
	// too); use asymmetric 0.5 and 0.33: sum 0.83 > 0.8284, product
	// 1.5*1.33 = 1.995 <= 2.
	s := task.MustNewSet(
		task.Uniform("a", 25*time.Millisecond, 25*time.Millisecond, 0, 0, 100*time.Millisecond), // U=0.5
		task.Uniform("b", 17*time.Millisecond, 16*time.Millisecond, 0, 0, 100*time.Millisecond), // U=0.33
	)
	if UtilizationSchedulable(s) {
		t.Fatalf("LL should reject ΣU=%v > %v", s.Utilization(), LiuLaylandBound(2))
	}
	if !HyperbolicBound(s) {
		t.Fatal("hyperbolic bound should accept Π(U+1)=1.995")
	}
	// Domination property on random sets: HB accepts whenever LL does.
	for seed := uint64(1); seed <= 30; seed++ {
		rs, err := task.Generate(task.GenConfig{N: 4, TotalUtilization: 0.7, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if UtilizationSchedulable(rs) && !HyperbolicBound(rs) {
			t.Fatalf("seed %d: hyperbolic bound must dominate LL", seed)
		}
	}
	if HyperbolicBound(nil) {
		t.Fatal("nil set accepted")
	}
}

// TestRMWPFitsAgreesWithRMWP cross-checks the incremental admission test
// against the full analysis on random sets: with lo = 0, RMWPFits must
// reproduce RMWP's verdict exactly.
func TestRMWPFitsAgreesWithRMWP(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		n := 1 + int(seed%5)
		u := 0.3 + 0.9*float64(seed%10)/10 // spans schedulable and not
		if u > float64(n) {
			u = 0.95 * float64(n)
		}
		set, err := task.Generate(task.GenConfig{
			N:                n,
			TotalUtilization: u,
			MinPeriod:        2 * time.Millisecond,
			MaxPeriod:        200 * time.Millisecond,
			Seed:             seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, rmwpErr := RMWP(set)
		if got, want := RMWPFits(set.SortedByRM(), 0), rmwpErr == nil; got != want {
			t.Fatalf("seed %d: RMWPFits=%v, RMWP err=%v", seed, got, rmwpErr)
		}
	}
}

// TestRMWPFitsIncremental checks the insertion-point shortcut: on a list
// known schedulable, re-checking from any lo agrees with a full check after
// inserting a task at that position.
func TestRMWPFitsIncremental(t *testing.T) {
	base, err := task.Generate(task.GenConfig{
		N: 4, TotalUtilization: 0.5,
		MinPeriod: 5 * time.Millisecond, MaxPeriod: 100 * time.Millisecond,
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	ordered := base.SortedByRM()
	if !RMWPFits(ordered, 0) {
		t.Fatal("base set should be schedulable at U=0.5")
	}
	add := task.Uniform("x", time.Millisecond, time.Millisecond, 0, 0, 30*time.Millisecond)
	for lo := 0; lo <= len(ordered); lo++ {
		cand := append(append(append([]task.Task(nil), ordered[:lo]...), add), ordered[lo:]...)
		if cand[len(cand)-1].Period < add.Period {
			continue // not an RM position for add; skip malformed orders
		}
		full := RMWPFits(cand, 0)
		incr := RMWPFits(cand, lo)
		if lo > 0 && cand[lo-1].Period > add.Period {
			continue
		}
		if full != incr {
			t.Errorf("lo=%d: incremental=%v full=%v", lo, incr, full)
		}
	}
}
