package analysis

import (
	"fmt"
	"math"
	"time"

	"rtseed/internal/sweep"
	"rtseed/internal/task"
	"rtseed/internal/workload"
)

// AcceptancePoint is one point of an acceptance-ratio curve: the fraction
// of randomly generated task sets that each test admits at a target
// utilization.
type AcceptancePoint struct {
	Utilization float64
	// RMWP is the exact semi-fixed-priority test's acceptance ratio.
	RMWP float64
	// GeneralRM is the exact response-time test for general scheduling of
	// the same task set (C = m + w, no optional deadline constraint).
	GeneralRM float64
	// LLBound is the Liu & Layland sufficient utilization test.
	LLBound float64
}

// AcceptanceConfig parameterizes an acceptance-ratio experiment.
type AcceptanceConfig struct {
	// N is the tasks per set.
	N int
	// SetsPerPoint is how many random sets are drawn per utilization.
	SetsPerPoint int
	// Utilizations lists the ΣU targets to sweep.
	Utilizations []float64
	// WindupFraction is w/C for the generated tasks (default 0.5).
	WindupFraction float64
	// Seed seeds the generator.
	Seed uint64
	// Workers bounds the number of utilization points evaluated
	// concurrently (default GOMAXPROCS). Each set's generator seed is a
	// pure function of (Seed, point, set), so the curves are identical for
	// any worker count.
	Workers int
	// Spec, when non-nil, switches set generation to the bursty workload
	// spec: each task rolls a cohort by weight and draws its period from
	// that cohort's range, so the curve reflects the heterogeneous (T, np)
	// mix of a market population instead of the uniform 10ms-1s default.
	// Utilizations stay UUniFast-distributed, so the ΣU target is exact
	// and points remain comparable with the legacy mode. When nil the
	// generator consumes exactly the legacy random stream.
	Spec *workload.Spec
}

// AcceptanceRatio sweeps random task sets over target utilizations and
// reports, per point, the acceptance ratios of the RMWP semi-fixed-priority
// test, the general-RM exact test, and the Liu & Layland bound. RMWP's
// acceptance can only be at or below general RM's: the optional deadline
// constraint (mandatory parts must finish by OD_i) is strictly stronger
// than plain deadline feasibility — the price of guaranteed wind-up parts.
func AcceptanceRatio(cfg AcceptanceConfig) ([]AcceptancePoint, error) {
	if cfg.N <= 0 || cfg.SetsPerPoint <= 0 || len(cfg.Utilizations) == 0 {
		return nil, fmt.Errorf("analysis: bad acceptance config %+v", cfg)
	}
	if cfg.Spec != nil {
		if err := cfg.Spec.Validate(); err != nil {
			return nil, err
		}
	}
	return sweep.Map(cfg.Workers, len(cfg.Utilizations), func(pi int) (AcceptancePoint, error) {
		u := cfg.Utilizations[pi]
		// Set j of point pi draws seed Seed + pi*SetsPerPoint + j + 1 —
		// the same stream the original sequential loop consumed.
		seedBase := cfg.Seed + uint64(pi*cfg.SetsPerPoint)
		var rmwp, rm, ll int
		for j := 0; j < cfg.SetsPerPoint; j++ {
			var set *task.Set
			var err error
			if cfg.Spec != nil {
				set, err = specSet(cfg.Spec, cfg.N, u, cfg.WindupFraction, seedBase+uint64(j)+1)
			} else {
				set, err = task.Generate(task.GenConfig{
					N:                cfg.N,
					TotalUtilization: u,
					WindupFraction:   cfg.WindupFraction,
					MinPeriod:        10 * time.Millisecond,
					MaxPeriod:        time.Second,
					Seed:             seedBase + uint64(j) + 1,
				})
			}
			if err != nil {
				return AcceptancePoint{}, err
			}
			if _, err := RMWP(set); err == nil {
				rmwp++
			}
			if _, ok := ResponseTimes(set); ok {
				rm++
			}
			if UtilizationSchedulable(set) {
				ll++
			}
		}
		n := float64(cfg.SetsPerPoint)
		return AcceptancePoint{
			Utilization: u,
			RMWP:        float64(rmwp) / n,
			GeneralRM:   float64(rm) / n,
			LLBound:     float64(ll) / n,
		}, nil
	})
}

// specSet draws one cohort-structured task set from a workload spec. Each
// task rolls its cohort by population weight and takes its period
// log-uniformly from that cohort's range and its parallel-part count from
// the cohort's parallelism range; the N utilizations are UUniFast over the
// target ΣU, exactly as the legacy generator distributes them. The draw is a
// pure function of (spec, n, total, windup, seed) on a stream disjoint from
// the legacy generator's.
func specSet(spec *workload.Spec, n int, total, windup float64, seed uint64) (*task.Set, error) {
	if total <= 0 || total > float64(n) {
		return nil, fmt.Errorf("analysis: total utilization %.3f outside (0, %d]", total, n)
	}
	if windup == 0 {
		windup = 0.5
	}
	s := workload.NewStream(seed, 0)
	// UUniFast (Bini & Buttazzo 2005) over the spec stream.
	utils := make([]float64, n)
	sum := total
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(s.Float64(), 1/float64(n-i-1))
		utils[i] = sum - next
		sum = next
	}
	utils[n-1] = sum
	totalWeight := 0.0
	for _, c := range spec.Cohorts {
		totalWeight += c.Weight
	}
	tasks := make([]task.Task, n)
	for i, u := range utils {
		roll := s.Float64() * totalWeight
		cohort := spec.Cohorts[len(spec.Cohorts)-1]
		for _, c := range spec.Cohorts {
			if roll < c.Weight {
				cohort = c
				break
			}
			roll -= c.Weight
		}
		period := s.LogUniformDur(time.Duration(cohort.Period[0]), time.Duration(cohort.Period[1]))
		np := s.IntRange(cohort.Parallel[0], cohort.Parallel[1])
		wcet := time.Duration(u * float64(period))
		if wcet < 2 {
			wcet = 2
		}
		if wcet > period {
			wcet = period
		}
		w := time.Duration(float64(wcet) * windup)
		if w < 1 {
			w = 1
		}
		m := wcet - w
		if m < 1 {
			m = 1
			w = wcet - m
		}
		var opt time.Duration
		if np > 0 {
			opt = period / 8
		}
		tasks[i] = task.Uniform(fmt.Sprintf("b%d", i), m, w, opt, np, period)
	}
	return task.NewSet(tasks...)
}
