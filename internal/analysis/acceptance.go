package analysis

import (
	"fmt"
	"time"

	"rtseed/internal/sweep"
	"rtseed/internal/task"
)

// AcceptancePoint is one point of an acceptance-ratio curve: the fraction
// of randomly generated task sets that each test admits at a target
// utilization.
type AcceptancePoint struct {
	Utilization float64
	// RMWP is the exact semi-fixed-priority test's acceptance ratio.
	RMWP float64
	// GeneralRM is the exact response-time test for general scheduling of
	// the same task set (C = m + w, no optional deadline constraint).
	GeneralRM float64
	// LLBound is the Liu & Layland sufficient utilization test.
	LLBound float64
}

// AcceptanceConfig parameterizes an acceptance-ratio experiment.
type AcceptanceConfig struct {
	// N is the tasks per set.
	N int
	// SetsPerPoint is how many random sets are drawn per utilization.
	SetsPerPoint int
	// Utilizations lists the ΣU targets to sweep.
	Utilizations []float64
	// WindupFraction is w/C for the generated tasks (default 0.5).
	WindupFraction float64
	// Seed seeds the generator.
	Seed uint64
	// Workers bounds the number of utilization points evaluated
	// concurrently (default GOMAXPROCS). Each set's generator seed is a
	// pure function of (Seed, point, set), so the curves are identical for
	// any worker count.
	Workers int
}

// AcceptanceRatio sweeps random task sets over target utilizations and
// reports, per point, the acceptance ratios of the RMWP semi-fixed-priority
// test, the general-RM exact test, and the Liu & Layland bound. RMWP's
// acceptance can only be at or below general RM's: the optional deadline
// constraint (mandatory parts must finish by OD_i) is strictly stronger
// than plain deadline feasibility — the price of guaranteed wind-up parts.
func AcceptanceRatio(cfg AcceptanceConfig) ([]AcceptancePoint, error) {
	if cfg.N <= 0 || cfg.SetsPerPoint <= 0 || len(cfg.Utilizations) == 0 {
		return nil, fmt.Errorf("analysis: bad acceptance config %+v", cfg)
	}
	return sweep.Map(cfg.Workers, len(cfg.Utilizations), func(pi int) (AcceptancePoint, error) {
		u := cfg.Utilizations[pi]
		// Set j of point pi draws seed Seed + pi*SetsPerPoint + j + 1 —
		// the same stream the original sequential loop consumed.
		seedBase := cfg.Seed + uint64(pi*cfg.SetsPerPoint)
		var rmwp, rm, ll int
		for j := 0; j < cfg.SetsPerPoint; j++ {
			set, err := task.Generate(task.GenConfig{
				N:                cfg.N,
				TotalUtilization: u,
				WindupFraction:   cfg.WindupFraction,
				MinPeriod:        10 * time.Millisecond,
				MaxPeriod:        time.Second,
				Seed:             seedBase + uint64(j) + 1,
			})
			if err != nil {
				return AcceptancePoint{}, err
			}
			if _, err := RMWP(set); err == nil {
				rmwp++
			}
			if _, ok := ResponseTimes(set); ok {
				rm++
			}
			if UtilizationSchedulable(set) {
				ll++
			}
		}
		n := float64(cfg.SetsPerPoint)
		return AcceptancePoint{
			Utilization: u,
			RMWP:        float64(rmwp) / n,
			GeneralRM:   float64(rm) / n,
			LLBound:     float64(ll) / n,
		}, nil
	})
}
