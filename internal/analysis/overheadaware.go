package analysis

import (
	"fmt"
	"time"

	"rtseed/internal/task"
)

// OverheadBudget models the middleware overheads the paper folds into the
// mandatory/wind-up WCETs (§II-A), parameterized by measurements from the
// overhead harness so the analysis and the measurements close the loop.
type OverheadBudget struct {
	// Release is the per-job release overhead (Δm).
	Release time.Duration
	// SignalPerPart is the per-optional-part beginning overhead
	// (Δb / np).
	SignalPerPart time.Duration
	// EndPerPart is the per-optional-part ending overhead (Δe / np).
	EndPerPart time.Duration
}

// Inflate returns a copy of the task with the measured overheads folded
// into its WCETs: the mandatory part absorbs the release and signalling
// overheads, the wind-up part absorbs the ending overhead. Feeding the
// inflated set to RMWP yields optional deadlines that remain valid on the
// measured platform.
func (b OverheadBudget) Inflate(t task.Task) (task.Task, error) {
	np := time.Duration(t.NumOptional())
	t.Mandatory += b.Release + np*b.SignalPerPart
	t.Windup += np * b.EndPerPart
	if err := t.Validate(); err != nil {
		return task.Task{}, fmt.Errorf("analysis: overheads exceed the period: %w", err)
	}
	return t, nil
}

// RMWPWithOverheads runs the RMWP analysis on the overhead-inflated task
// set: the resulting optional deadlines already leave room for the
// measured per-part costs, so a process configured with them needs no
// ad-hoc margin.
func RMWPWithOverheads(s *task.Set, b OverheadBudget) ([]Result, error) {
	if s == nil || s.Len() == 0 {
		return nil, task.ErrEmptyTaskSet
	}
	inflated := make([]task.Task, 0, s.Len())
	for _, t := range s.Tasks {
		it, err := b.Inflate(t)
		if err != nil {
			return nil, err
		}
		inflated = append(inflated, it)
	}
	set, err := task.NewSet(inflated...)
	if err != nil {
		return nil, err
	}
	return RMWP(set)
}
