// Package analysis implements the schedulability theory RT-Seed relies on:
// the Liu & Layland rate-monotonic utilization bound, exact response-time
// analysis, the RMWP optional-deadline calculation for semi-fixed-priority
// scheduling, and the RM-US utilization-separation rule the paper's HPQ
// priority level is reserved for.
//
// The paper cites "Theorem 2 of [5]" (Chishiro et al., RTCSA 2010) for the
// optional-deadline formula but restates only the single-task case
// OD_1 = D_1 − w_1 (§V-A). We therefore reconstruct the general formula in
// the standard response-time style, consistent with everything the paper
// states: OD_i = D_i − R^w_i, where R^w_i is the worst-case response time of
// the wind-up part w_i under interference from the mandatory and wind-up
// parts of higher-priority tasks; the task set is RMWP-schedulable iff, in
// addition, every mandatory part's worst-case response time is at most OD_i.
// For n = 1 this yields exactly OD_1 = D_1 − w_1. Optional parts never
// interfere: under semi-fixed-priority scheduling every mandatory and
// wind-up part has higher priority than every (parallel) optional part
// (Theorems 1-2 of the paper), so the analysis is identical in the extended
// and parallel-extended models.
package analysis

import (
	"errors"
	"fmt"
	"math"
	"time"

	"rtseed/internal/task"
)

// ErrUnschedulable is wrapped by the errors reported when a task set fails a
// schedulability test.
var ErrUnschedulable = errors.New("analysis: unschedulable")

// LiuLaylandBound returns the RM utilization bound n(2^{1/n} − 1).
func LiuLaylandBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	fn := float64(n)
	return fn * (math.Pow(2, 1/fn) - 1)
}

// RMUSThreshold returns the RM-US(M/(3M−2)) utilization separator of
// Andersson, Baruah & Jonsson: on M processors, a task with U_i above the
// threshold is assigned the highest priority (the paper's HPQ level 99).
func RMUSThreshold(m int) float64 {
	if m <= 0 {
		return 0
	}
	fm := float64(m)
	return fm / (3*fm - 2)
}

// NeedsHighestPriority reports whether τ gets the reserved HPQ slot under
// RM-US on m processors.
func NeedsHighestPriority(t task.Task, m int) bool {
	return t.Utilization() > RMUSThreshold(m)
}

// maxIterations caps response-time fixed-point iterations; the iteration is
// monotonically non-decreasing, so exceeding a job's deadline is already
// conclusive long before this bound.
const maxIterations = 1 << 16

// responseTime computes the smallest fixed point of
//
//	R = own + Σ_j ⌈R/T_j⌉ · C_j
//
// over the interfering tasks, or false if R would exceed limit.
func responseTime(own time.Duration, interferers []task.Task, limit time.Duration) (time.Duration, bool) {
	r := own
	for iter := 0; iter < maxIterations; iter++ {
		next := own
		for _, hp := range interferers {
			jobs := ceilDiv(int64(r), int64(hp.Period))
			next += time.Duration(jobs) * hp.WCET()
		}
		if next > limit {
			return next, false
		}
		if next == r {
			return r, true
		}
		r = next
	}
	return r, false
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("analysis: non-positive period")
	}
	return (a + b - 1) / b
}

// ResponseTimes runs exact RM response-time analysis on a uniprocessor for
// the full WCETs C_i = m_i + w_i, returning the worst-case response time of
// each task in RM order. The second result is false if any task can miss
// its deadline.
func ResponseTimes(s *task.Set) ([]time.Duration, bool) {
	ordered := s.SortedByRM()
	out := make([]time.Duration, len(ordered))
	ok := true
	for i, t := range ordered {
		r, fits := responseTime(t.WCET(), ordered[:i], t.Deadline())
		out[i] = r
		if !fits {
			ok = false
		}
	}
	return out, ok
}

// Result is the outcome of the RMWP analysis for one task, in RM order.
type Result struct {
	Task task.Task
	// OptionalDeadline is the relative optional deadline OD_i.
	OptionalDeadline time.Duration
	// MandatoryResponse is the worst-case response time of the mandatory
	// part under interference from higher-priority mandatory and wind-up
	// parts.
	MandatoryResponse time.Duration
	// WindupResponse is the worst-case response time of the wind-up part.
	WindupResponse time.Duration
	// Schedulable reports whether the task meets the RMWP condition
	// MandatoryResponse ≤ OD_i with OD_i ≥ 0.
	Schedulable bool
}

// RMWP computes optional deadlines and the schedulability verdict for a task
// set under uniprocessor RMWP semi-fixed-priority scheduling. The returned
// results are in RM order. An error wrapping ErrUnschedulable is returned
// when any task fails, alongside the full per-task results.
func RMWP(s *task.Set) ([]Result, error) {
	if s == nil || s.Len() == 0 {
		return nil, task.ErrEmptyTaskSet
	}
	ordered := s.SortedByRM()
	results := make([]Result, len(ordered))
	var firstErr error
	for i, t := range ordered {
		res := Result{Task: t}
		// Wind-up response time under higher-priority interference. Within
		// the window before D_i the wind-up part can be delayed by
		// higher-priority mandatory AND wind-up parts.
		rw, wOK := responseTime(t.Windup, ordered[:i], t.Deadline())
		res.WindupResponse = rw
		// Mandatory response time from the release, under the same
		// higher-priority interference.
		rm, mOK := responseTime(t.Mandatory, ordered[:i], t.Deadline())
		res.MandatoryResponse = rm

		od := t.Deadline() - rw
		res.OptionalDeadline = od
		res.Schedulable = wOK && mOK && od >= 0 && rm <= od
		results[i] = res
		if !res.Schedulable && firstErr == nil {
			firstErr = fmt.Errorf("task %s: R^m=%v OD=%v: %w",
				t.Name, rm, od, ErrUnschedulable)
		}
	}
	return results, firstErr
}

// RMWPFits is the incremental form of the RMWP test used by admission
// control: ordered is a rate-monotonically ordered task list (shortest period
// first) and the function reports whether every task at index >= lo satisfies
// the RMWP conditions (R^w within the deadline, OD_i >= 0, R^m_i <= OD_i).
//
// Inserting a task at RM position lo leaves the response times of the tasks
// before lo unchanged — interference flows only from higher-priority tasks —
// so an admission controller that already holds a schedulable list only needs
// to re-check from the insertion point down. Passing lo = 0 checks the whole
// list and agrees exactly with RMWP's verdict. Unlike RMWP it allocates
// nothing and builds no Result slice, so a cluster front-end can afford to
// run it once per candidate core on every admission attempt.
func RMWPFits(ordered []task.Task, lo int) bool {
	if lo < 0 {
		lo = 0
	}
	for i := lo; i < len(ordered); i++ {
		t := ordered[i]
		rw, wOK := responseTime(t.Windup, ordered[:i], t.Deadline())
		if !wOK {
			return false
		}
		rm, mOK := responseTime(t.Mandatory, ordered[:i], t.Deadline())
		if !mOK {
			return false
		}
		od := t.Deadline() - rw
		if od < 0 || rm > od {
			return false
		}
	}
	return true
}

// OptionalDeadlines is a convenience wrapper around RMWP returning only the
// per-task relative optional deadlines, keyed by task name.
func OptionalDeadlines(s *task.Set) (map[string]time.Duration, error) {
	results, err := RMWP(s)
	if err != nil {
		return nil, err
	}
	out := make(map[string]time.Duration, len(results))
	for _, r := range results {
		out[r.Task.Name] = r.OptionalDeadline
	}
	return out, nil
}

// UtilizationSchedulable applies the Liu & Layland sufficient test to the
// task set's real-time utilization (C_i = m_i + w_i) on a uniprocessor.
func UtilizationSchedulable(s *task.Set) bool {
	return s.Utilization() <= LiuLaylandBound(s.Len())
}

// BreakdownUtilization scales all mandatory and wind-up parts of the set by
// a common factor and returns the largest factor (to within eps) at which
// the set remains RMWP-schedulable. It is the standard metric for comparing
// scheduling algorithms' headroom.
func BreakdownUtilization(s *task.Set, eps float64) float64 {
	if s == nil || s.Len() == 0 {
		return 0
	}
	lo, hi := 0.0, 1.0
	// Grow hi until unschedulable (cap at 64x).
	for schedulableAtScale(s, hi) && hi < 64 {
		lo = hi
		hi *= 2
	}
	for hi-lo > eps {
		mid := (lo + hi) / 2
		if schedulableAtScale(s, mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

func schedulableAtScale(s *task.Set, scale float64) bool {
	scaled := make([]task.Task, 0, s.Len())
	for _, t := range s.Tasks {
		t.Mandatory = time.Duration(float64(t.Mandatory) * scale)
		t.Windup = time.Duration(float64(t.Windup) * scale)
		if t.Mandatory+t.Windup <= 0 || t.Mandatory+t.Windup > t.Period {
			return false
		}
		scaled = append(scaled, t)
	}
	set, err := task.NewSet(scaled...)
	if err != nil {
		return false
	}
	_, err = RMWP(set)
	return err == nil
}

// HyperbolicBound applies Bini & Buttazzo's hyperbolic RM test to the
// real-time utilizations: the set is schedulable under RM if
// Π (U_i + 1) <= 2. It dominates the Liu & Layland bound (accepts every
// set LL accepts, and more) while staying O(n).
func HyperbolicBound(s *task.Set) bool {
	if s == nil || s.Len() == 0 {
		return false
	}
	prod := 1.0
	for _, t := range s.Tasks {
		prod *= t.Utilization() + 1
	}
	return prod <= 2
}
