package analysis

import (
	"reflect"
	"testing"
)

// The acceptance-ratio curves must be identical for any worker count: each
// random set's generator seed is a pure function of (Seed, point, set), not
// of execution order.
func TestAcceptanceRatioDeterministicAcrossWorkers(t *testing.T) {
	cfg := AcceptanceConfig{
		N:            4,
		SetsPerPoint: 25,
		Utilizations: []float64{0.3, 0.5, 0.7, 0.9},
		Seed:         0xacce,
	}
	cfg.Workers = 1
	want, err := AcceptanceRatio(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		got, err := AcceptanceRatio(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("Workers=%d curve differs from Workers=1:\n%+v\nvs\n%+v", workers, got, want)
		}
	}
}
