package analysis

import (
	"reflect"
	"testing"
	"time"

	"rtseed/internal/task"
	"rtseed/internal/workload"
)

func TestGenerateUUniFast(t *testing.T) {
	set, err := task.Generate(task.GenConfig{N: 8, TotalUtilization: 0.6, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 8 {
		t.Fatalf("%d tasks, want 8", set.Len())
	}
	// ΣU close to target (duration rounding allows small error).
	if u := set.Utilization(); u < 0.55 || u > 0.65 {
		t.Fatalf("ΣU = %v, want ~0.6", u)
	}
	for _, tk := range set.Tasks {
		if err := tk.Validate(); err != nil {
			t.Fatal(err)
		}
		if tk.Windup <= 0 || tk.Mandatory <= 0 {
			t.Fatalf("degenerate split %+v", tk)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := task.Generate(task.GenConfig{N: 4, TotalUtilization: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := task.Generate(task.GenConfig{N: 4, TotalUtilization: 0.5, Seed: 7})
	for i := range a.Tasks {
		if a.Tasks[i].Period != b.Tasks[i].Period || a.Tasks[i].Mandatory != b.Tasks[i].Mandatory {
			t.Fatal("same seed must generate the same set")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []task.GenConfig{
		{N: 0, TotalUtilization: 0.5},
		{N: 2, TotalUtilization: 0},
		{N: 2, TotalUtilization: 3},
		{N: 2, TotalUtilization: 0.5, WindupFraction: 1.5},
	}
	for i, cfg := range bad {
		if _, err := task.Generate(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAcceptanceRatioShape(t *testing.T) {
	points, err := AcceptanceRatio(AcceptanceConfig{
		N:            4,
		SetsPerPoint: 40,
		Utilizations: []float64{0.3, 0.6, 0.9},
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	for _, p := range points {
		// RMWP is strictly stronger than general RM feasibility.
		if p.RMWP > p.GeneralRM+1e-9 {
			t.Fatalf("U=%.1f: RMWP ratio %.2f exceeds general RM %.2f", p.Utilization, p.RMWP, p.GeneralRM)
		}
		// The LL bound is sufficient for general RM.
		if p.LLBound > p.GeneralRM+1e-9 {
			t.Fatalf("U=%.1f: LL bound %.2f exceeds exact RM %.2f", p.Utilization, p.LLBound, p.GeneralRM)
		}
		if p.RMWP < 0 || p.RMWP > 1 {
			t.Fatalf("ratio out of range: %+v", p)
		}
	}
	// Acceptance falls with utilization.
	if points[0].RMWP < points[2].RMWP {
		t.Fatalf("acceptance should not rise with utilization: %+v", points)
	}
	// Low utilization is easy, high is hard.
	if points[0].RMWP < 0.9 {
		t.Fatalf("U=0.3 should be almost always schedulable, got %.2f", points[0].RMWP)
	}
	if points[2].GeneralRM > 0.9 {
		t.Fatalf("U=0.9 should not be almost always RM-schedulable, got %.2f", points[2].GeneralRM)
	}
}

func TestAcceptanceRatioValidation(t *testing.T) {
	if _, err := AcceptanceRatio(AcceptanceConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestSensitivities(t *testing.T) {
	s := task.MustNewSet(
		task.Uniform("hi", 1*time.Millisecond, 1*time.Millisecond, 0, 0, 10*time.Millisecond),
		task.Uniform("lo", 2*time.Millisecond, 2*time.Millisecond, 0, 0, 40*time.Millisecond),
	)
	sens, err := Sensitivities(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(sens) != 2 {
		t.Fatalf("%d sensitivities", len(sens))
	}
	for _, se := range sens {
		if se.MandatorySlack < 0 || se.WindupSlack < 0 {
			t.Fatalf("%s: negative slack %+v", se.Task, se)
		}
		if se.MaxMandatory <= 0 || se.MaxWindup <= 0 {
			t.Fatalf("%s: degenerate maxima %+v", se.Task, se)
		}
	}
	// Growing a task to its reported maximum must stay schedulable;
	// growing well past it must not.
	grown := task.MustNewSet(
		task.Uniform("hi", sens[0].MaxMandatory-time.Microsecond, 1*time.Millisecond, 0, 0, 10*time.Millisecond),
		task.Uniform("lo", 2*time.Millisecond, 2*time.Millisecond, 0, 0, 40*time.Millisecond),
	)
	if _, err := RMWP(grown); err != nil {
		t.Fatalf("set at reported maximum should be schedulable: %v", err)
	}
	over := sens[0].MaxMandatory + 2*time.Millisecond
	if over+1*time.Millisecond <= 10*time.Millisecond {
		tooBig := task.MustNewSet(
			task.Uniform("hi", over, 1*time.Millisecond, 0, 0, 10*time.Millisecond),
			task.Uniform("lo", 2*time.Millisecond, 2*time.Millisecond, 0, 0, 40*time.Millisecond),
		)
		if _, err := RMWP(tooBig); err == nil {
			t.Fatal("set past the maximum should be unschedulable")
		}
	}
}

func TestSensitivitiesRejectsUnschedulable(t *testing.T) {
	s := task.MustNewSet(
		task.Uniform("a", 6*time.Millisecond, 3*time.Millisecond, 0, 0, 10*time.Millisecond),
		task.Uniform("b", 6*time.Millisecond, 3*time.Millisecond, 0, 0, 10*time.Millisecond),
	)
	if _, err := Sensitivities(s); err == nil {
		t.Fatal("unschedulable base accepted")
	}
	if _, err := Sensitivities(nil); err == nil {
		t.Fatal("nil set accepted")
	}
}

func TestOverheadBudgetInflate(t *testing.T) {
	b := OverheadBudget{
		Release:       100 * time.Microsecond,
		SignalPerPart: 40 * time.Microsecond,
		EndPerPart:    120 * time.Microsecond,
	}
	tk := task.Uniform("t", 250*time.Millisecond, 250*time.Millisecond, time.Second, 100, time.Second)
	inflated, err := b.Inflate(tk)
	if err != nil {
		t.Fatal(err)
	}
	wantM := 250*time.Millisecond + 100*time.Microsecond + 100*40*time.Microsecond
	wantW := 250*time.Millisecond + 100*120*time.Microsecond
	if inflated.Mandatory != wantM {
		t.Fatalf("mandatory %v, want %v", inflated.Mandatory, wantM)
	}
	if inflated.Windup != wantW {
		t.Fatalf("windup %v, want %v", inflated.Windup, wantW)
	}
	// Overheads beyond the period are rejected.
	huge := OverheadBudget{EndPerPart: time.Second}
	if _, err := huge.Inflate(tk); err == nil {
		t.Fatal("impossible budget accepted")
	}
}

// The overhead-aware OD is earlier than the naive one, by exactly the
// wind-up inflation for a single task, and a process using it meets all
// deadlines without ad-hoc margins.
func TestRMWPWithOverheads(t *testing.T) {
	tk := task.Uniform("t", 250*time.Millisecond, 250*time.Millisecond, time.Second, 57, time.Second)
	s := task.MustNewSet(tk)
	naive, err := RMWP(s)
	if err != nil {
		t.Fatal(err)
	}
	b := OverheadBudget{
		Release:       100 * time.Microsecond,
		SignalPerPart: 40 * time.Microsecond,
		EndPerPart:    120 * time.Microsecond,
	}
	aware, err := RMWPWithOverheads(s, b)
	if err != nil {
		t.Fatal(err)
	}
	shift := 57 * 120 * time.Microsecond // wind-up inflation only (n=1)
	if got := naive[0].OptionalDeadline - aware[0].OptionalDeadline; got != shift {
		t.Fatalf("OD shift %v, want %v", got, shift)
	}
	if !aware[0].Schedulable {
		t.Fatal("inflated set should still be schedulable")
	}
	if _, err := RMWPWithOverheads(nil, b); err == nil {
		t.Fatal("nil set accepted")
	}
}

// TestAcceptanceRatioSpecMode checks the bursty-spec generator: the curve is
// a pure function of (spec, seed) for any worker count, differs from the
// legacy uniform generator, and preserves the RMWP <= general-RM ordering.
func TestAcceptanceRatioSpecMode(t *testing.T) {
	spec, ok := workload.BuiltinSpec("flash-crash")
	if !ok {
		t.Fatal("flash-crash builtin missing")
	}
	cfg := AcceptanceConfig{
		N:            4,
		SetsPerPoint: 30,
		Utilizations: []float64{0.3, 0.5, 0.7},
		Seed:         0xacce,
		Spec:         &spec,
		Workers:      1,
	}
	want, err := AcceptanceRatio(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	got, err := AcceptanceRatio(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("spec-mode curve depends on worker count:\n%+v\nvs\n%+v", got, want)
	}
	for _, p := range want {
		if p.RMWP > p.GeneralRM {
			t.Errorf("U=%.1f: RMWP %.2f above general RM %.2f", p.Utilization, p.RMWP, p.GeneralRM)
		}
	}

	legacy := cfg
	legacy.Spec = nil
	legacy.Workers = 1
	base, err := AcceptanceRatio(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(base, want) {
		t.Fatal("spec mode produced the legacy curve exactly; generator not switched")
	}

	bad := cfg
	bad.Spec = &workload.Spec{}
	if _, err := AcceptanceRatio(bad); err == nil {
		t.Fatal("invalid spec accepted")
	}
}
