package analysis

import (
	"fmt"
	"time"

	"rtseed/internal/task"
)

// Sensitivity reports, per task, how much one timing parameter can grow —
// all other tasks unchanged — before the set stops being RMWP-schedulable.
// It is the standard "how much margin does this task have" question a
// deployment asks before enabling a new analysis stage.
type Sensitivity struct {
	Task string
	// MaxMandatory is the largest m_i keeping the set schedulable.
	MaxMandatory time.Duration
	// MaxWindup is the largest w_i keeping the set schedulable.
	MaxWindup time.Duration
	// MandatorySlack and WindupSlack are the margins over the current
	// values.
	MandatorySlack time.Duration
	WindupSlack    time.Duration
}

// Sensitivities computes per-task parameter margins by binary search over
// the RMWP test. The input set must be schedulable.
func Sensitivities(s *task.Set) ([]Sensitivity, error) {
	if s == nil || s.Len() == 0 {
		return nil, task.ErrEmptyTaskSet
	}
	if _, err := RMWP(s); err != nil {
		return nil, fmt.Errorf("analysis: base set unschedulable: %w", err)
	}
	out := make([]Sensitivity, 0, s.Len())
	for i, t := range s.Tasks {
		maxM := searchMax(s, i, t.Mandatory, func(tk *task.Task, v time.Duration) {
			tk.Mandatory = v
		})
		maxW := searchMax(s, i, t.Windup, func(tk *task.Task, v time.Duration) {
			tk.Windup = v
		})
		out = append(out, Sensitivity{
			Task:           t.Name,
			MaxMandatory:   maxM,
			MaxWindup:      maxW,
			MandatorySlack: maxM - t.Mandatory,
			WindupSlack:    maxW - t.Windup,
		})
	}
	return out, nil
}

// searchMax binary-searches the largest value of one parameter of task i
// keeping the set RMWP-schedulable.
func searchMax(s *task.Set, i int, current time.Duration, set func(*task.Task, time.Duration)) time.Duration {
	ok := func(v time.Duration) bool {
		tasks := make([]task.Task, len(s.Tasks))
		copy(tasks, s.Tasks)
		set(&tasks[i], v)
		candidate, err := task.NewSet(tasks...)
		if err != nil {
			return false
		}
		_, err = RMWP(candidate)
		return err == nil
	}
	lo, hi := current, s.Tasks[i].Period
	if !ok(lo) {
		return current // degenerate: caller verified base schedulability
	}
	for hi-lo > time.Microsecond {
		mid := lo + (hi-lo)/2
		if ok(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
