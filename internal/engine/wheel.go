package engine

import "math/bits"

// Hierarchical timing wheel (Varghese & Lauck), specialized for the
// simulation engine.
//
// Virtual time is quantized into ticks of 2^tickShift ns. The wheel has
// wheelLevels levels of wheelSlots slots each; level l spans 2^(wheelBits*l)
// ticks per slot, so the whole wheel covers maxDelta ticks (~68.7 s of
// virtual time at the default sizing). Events further out than maxDelta are
// parked in the top level at the horizon and re-placed when they cascade —
// their true timestamp is kept in node.at, only the slot choice is clamped.
//
// The wheel orders events only down to tick granularity. Exact ordering —
// the engine's documented (timestamp, priority, sequence) total order — is
// resolved by the near-horizon heap in engine.go: ensureMin moves every
// wheel slot whose conservative lower bound is at or before the heap top's
// tick into the heap (flushing level 0, cascading higher levels) before any
// event fires, so same-tick events always meet in the heap where less()
// breaks ties.
//
// Invariants:
//
//  1. curTick only grows, and every wheel node satisfies
//     tickOf(n.at) > curTick at placement time (same-tick events go straight
//     to the heap in Schedule).
//  2. An occupied slot's base tick (the lower bound wheelNextSlot computes)
//     is never below curTick: ensureMin processes slots in lower-bound order
//     and Step only advances curTick to a tick that ensureMin has already
//     drained up to.
//  3. A placed slot index never collides with the level's current position:
//     wheelPlace detects the full-wrap case and pushes the event one level
//     up (or re-clamps inside the top level), so distance 0 in the rotated
//     occupancy bitmap always means "due now", never "one full revolution
//     away".
//  4. Cascading strictly descends levels (or re-clamps a horizon-parked
//     event to a strictly later top-level slot), so ensureMin terminates.
const (
	// tickShift sets the wheel's tick to 2^12 ns = 4.096 µs: finer than the
	// cheapest kernel primitive (OpSigSetjmp, 2 µs, is the only sub-tick
	// cost) so near events resolve in one or two cascades, coarse enough
	// that level 0 alone covers a quarter millisecond.
	tickShift = 12
	// wheelBits is the log2 of slots per level.
	wheelBits  = 6
	wheelSlots = 1 << wheelBits
	wheelMask  = wheelSlots - 1
	// wheelLevels levels cover 2^(6*4) = 16.7M ticks ≈ 68.7 s of virtual
	// time; rtseed experiment horizons are a few seconds.
	wheelLevels = 4
	// maxDelta is the furthest future distance, in ticks, the wheel can
	// represent; events beyond it park at the horizon and re-clamp on
	// cascade.
	maxDelta = 1<<(wheelBits*wheelLevels) - 1
)

// tick is a wheel tick: virtual time quantized to 2^tickShift ns. It is a
// distinct type from Time so the two units cannot be mixed silently — the
// timeunits analyzer treats tick↔Time conversions outside the declared
// helpers (tickOf, tick.start) as findings. Slot indices and slot bases
// stay in the tick domain; only node.at keeps nanosecond resolution.
type tick uint64

// tickOf quantizes a virtual instant to a wheel tick. It is the one
// sanctioned ns→tick conversion.
//
//rtseed:noalloc
func tickOf(t Time) tick { return tick(uint64(t) >> tickShift) }

// start returns the virtual instant at which a tick begins: the inverse of
// tickOf, exact for tick-aligned instants. It is the one sanctioned
// tick→ns conversion.
//
//rtseed:noalloc
func (tk tick) start() Time { return Time(int64(tk) << tickShift) }

// wheelPlace links n into the slot matching its timestamp. The caller
// guarantees tickOf(n.at) > curTick.
//
//rtseed:noalloc
//rtseed:kernelctx
func (e *Engine) wheelPlace(n *node) {
	tk := tickOf(n.at)
	delta := tk - e.curTick
	if delta > maxDelta {
		delta = maxDelta
		tk = e.curTick + maxDelta
	}
	l := 0
	for l < wheelLevels-1 && delta >= 1<<(uint(l+1)*wheelBits) {
		l++
	}
	shift := uint(l) * wheelBits
	// Full-wrap guard (invariant 3): delta < 64·2^shift still allows
	// tk>>shift to land exactly 64 past the current position, which would
	// alias the level's current slot. Push such events one level up — there
	// they sit exactly one slot ahead — or, at the top level, clamp to the
	// farthest non-aliasing slot (the event re-places itself on cascade).
	if (tk>>shift)-(e.curTick>>shift) >= wheelSlots {
		if l == wheelLevels-1 {
			tk = ((e.curTick >> shift) + wheelSlots - 1) << shift
		} else {
			l++
			shift += wheelBits
		}
	}
	s := int((tk >> shift) & wheelMask)
	n.index = idxWheel
	n.level = int16(l)
	n.slot = int16(s)
	n.prev = nil
	n.next = e.slots[l][s]
	if n.next != nil {
		n.next.prev = n
	}
	e.slots[l][s] = n
	e.occupied[l] |= 1 << uint(s)
	e.wheelCount++
	if base := (tk >> shift) << shift; e.wheelCount == 1 || base < e.wheelMinLB {
		e.wheelMinLB = base
	}
}

// wheelRemove unlinks n from its slot in O(1).
//
//rtseed:noalloc
//rtseed:kernelctx
func (e *Engine) wheelRemove(n *node) {
	l, s := int(n.level), int(n.slot)
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		e.slots[l][s] = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	if e.slots[l][s] == nil {
		e.occupied[l] &^= 1 << uint(s)
	}
	n.prev = nil
	n.next = nil
	e.wheelCount--
}

// wheelNextSlot returns the level and conservative lower-bound tick of the
// next wheel slot to process: across all levels, the occupied slot whose
// base tick is smallest (ties go to the lowest level, whose bound is exact).
// The caller guarantees wheelCount > 0. Rotating each level's occupancy
// bitmap by its current position turns "next occupied slot" into a single
// trailing-zeros count.
//
//rtseed:noalloc
func (e *Engine) wheelNextSlot() (level int, lb tick) {
	bestLevel := -1
	var bestLB tick
	for l := 0; l < wheelLevels; l++ {
		occ := e.occupied[l]
		if occ == 0 {
			continue
		}
		shift := uint(l) * wheelBits
		cur := e.curTick >> shift
		pos := int(cur & wheelMask)
		rot := bits.RotateLeft64(occ, -pos)
		d := tick(bits.TrailingZeros64(rot))
		slotLB := (cur + d) << shift
		if bestLevel < 0 || slotLB < bestLB {
			bestLevel, bestLB = l, slotLB
		}
	}
	return bestLevel, bestLB
}

// ensureMin establishes the engine's ordering guarantee before a pop: after
// it returns, the global minimum event (by the (at, priority, seq) order) is
// at the heap top. It drains wheel slots — flushing level 0 into the heap,
// cascading higher levels downward — until every remaining occupied slot's
// lower bound lies strictly after the heap top's tick. Slots equal to the
// heap top's tick are flushed too, so same-timestamp events meet in the heap
// and resolve by priority and sequence.
//
// Termination: each iteration empties one slot. Flushed nodes leave the
// wheel; cascaded nodes re-place at a strictly lower level (the processed
// slot's base is curTick, so their remaining delta fits below — see
// invariant 4), except horizon-parked nodes, which re-clamp to a top-level
// slot strictly later than the heap top's tick and then fail the loop
// condition.
//
//rtseed:noalloc
//rtseed:kernelctx
func (e *Engine) ensureMin() {
	for e.wheelCount > 0 {
		// Fast path: wheelMinLB never exceeds the true minimum slot base,
		// so if even it lies beyond the heap top's tick, no scan is needed.
		if len(e.queue) > 0 && e.wheelMinLB > tickOf(e.queue[0].at) {
			return
		}
		l, lb := e.wheelNextSlot()
		e.wheelMinLB = lb // tighten the cache to the true minimum
		if len(e.queue) > 0 && lb > tickOf(e.queue[0].at) {
			return
		}
		if lb > e.curTick {
			e.curTick = lb
		}
		shift := uint(l) * wheelBits
		s := int((lb >> shift) & wheelMask)
		head := e.slots[l][s]
		e.slots[l][s] = nil
		e.occupied[l] &^= 1 << uint(s)
		for n := head; n != nil; {
			next := n.next
			n.prev = nil
			n.next = nil
			e.wheelCount--
			// Only due events (tick <= curTick) enter the heap; everything
			// else cascades to a lower level, level-1 slots included. The
			// heap's (at, priority, seq) order makes the placement policy
			// unobservable either way, but cascading keeps the heap at
			// same-tick size: at many-task event rates a level-1 slot holds
			// hundreds of events spanning 260 µs, and parking those in the
			// heap turns every push and pop into a deep sift. An extra O(1)
			// wheelPlace hop per node is cheaper than that.
			if l == 0 || tickOf(n.at) <= e.curTick {
				e.heapPush(n)
			} else {
				e.wheelPlace(n)
			}
			n = next
		}
	}
}
