package engine

import (
	"testing"
	"time"
)

const tickNs = 1 << tickShift

// TestTickRoundTrip pins the two sanctioned unit conversions against each
// other: tick.start is the exact inverse of tickOf on tick-aligned
// instants, and tickOf floors everything inside a tick to its start.
func TestTickRoundTrip(t *testing.T) {
	for _, tk := range []tick{0, 1, 63, 64, 1 << 20} {
		if got := tickOf(tk.start()); got != tk {
			t.Fatalf("tickOf(tick(%d).start()) = %d, want %d", tk, got, tk)
		}
	}
	for _, at := range []Time{0, 1, tickNs - 1, tickNs, 3*tickNs + 17} {
		want := Time(at/tickNs) * tickNs
		if got := tickOf(at).start(); got != want {
			t.Fatalf("tickOf(%d).start() = %d, want %d", at, got, want)
		}
	}
}

// TestWheelLevelPlacement pins the slot-sizing rule: an event delta ticks
// out lands in the lowest level whose span covers delta.
func TestWheelLevelPlacement(t *testing.T) {
	cases := []struct {
		ticks uint64
		level int16
	}{
		{1, 0},
		{63, 0},
		{64, 1},
		{4095, 1}, // full-wrap guard bumps this only when curTick%64 != 0
		{4096, 2},
		{1 << 18, 3},
		{maxDelta, 3},
	}
	for _, c := range cases {
		e := New()
		ev := e.Schedule(Time(c.ticks*tickNs), 0, func() {})
		if ev.n.index != idxWheel {
			t.Fatalf("delta %d ticks: event not in wheel (index %d)", c.ticks, ev.n.index)
		}
		if ev.n.level != c.level {
			t.Fatalf("delta %d ticks: level %d, want %d", c.ticks, ev.n.level, c.level)
		}
	}
	// Same-tick events bypass the wheel entirely.
	e := New()
	ev := e.Schedule(Time(tickNs-1), 0, func() {})
	if ev.n.index < 0 {
		t.Fatalf("same-tick event not in the heap (index %d)", ev.n.index)
	}
}

// TestWheelFullWrapGuard forces the slot-aliasing corner: with the cursor
// mid-slot at a level, a delta just under the level's span lands exactly one
// revolution ahead and must be pushed up a level instead of aliasing the
// current position (which would make it look due immediately).
func TestWheelFullWrapGuard(t *testing.T) {
	e := New()
	fired := 0
	e.Schedule(Time(1*tickNs), 0, func() { fired++ })
	if !e.Step() || e.curTick != 1 {
		t.Fatalf("setup: curTick = %d, want 1", e.curTick)
	}
	// delta = 4095 ticks from curTick 1: (1+4095)>>6 - 1>>6 = 64 — a full
	// level-1 revolution. The guard must place it at level 2.
	ev := e.Schedule(Time((1+4095)*tickNs), 0, func() { fired++ })
	if ev.n.level != 2 {
		t.Fatalf("wrapped event at level %d, want 2", ev.n.level)
	}
	// It must still fire at its exact timestamp, after a nearer event.
	e.Schedule(Time(100*tickNs), 0, func() { fired++ })
	e.Run()
	if fired != 3 {
		t.Fatalf("fired %d events, want 3", fired)
	}
	if e.Now() != Time((1+4095)*tickNs) {
		t.Fatalf("clock %v after Run, want the wrapped event's timestamp", e.Now())
	}
}

// TestWheelHorizonClamp parks an event far past the wheel's span and checks
// it survives the cascade re-clamps with its exact timestamp intact.
func TestWheelHorizonClamp(t *testing.T) {
	e := New()
	far := Time(3 * (maxDelta + 1) * tickNs) // ~3 revolutions past the horizon
	var order []int
	e.Schedule(far, 0, func() { order = append(order, 2) })
	e.Schedule(far-1, 0, func() { order = append(order, 1) }) // 1ns earlier
	e.Schedule(Time(time.Second), 0, func() { order = append(order, 0) })
	e.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("firing order %v, want [0 1 2]", order)
	}
	if e.Now() != far {
		t.Fatalf("clock %v, want %v", e.Now(), far)
	}
}

// TestWheelSameTickTieBreak crowds one wheel tick with events at distinct
// nanosecond offsets, equal timestamps with distinct priorities, and equal
// (timestamp, priority) pairs: the flush into the near-horizon heap must
// resolve the full (at, priority, seq) order.
func TestWheelSameTickTieBreak(t *testing.T) {
	e := New()
	base := Time(1000 * tickNs)
	var order []int
	e.Schedule(base+5, 1, func() { order = append(order, 3) }) // same at, higher prio value
	e.Schedule(base+5, 0, func() { order = append(order, 1) }) // seq tie-break with next
	e.Schedule(base+5, 0, func() { order = append(order, 2) })
	e.Schedule(base+9, 0, func() { order = append(order, 4) })
	e.Schedule(base+1, 3, func() { order = append(order, 0) })
	e.Run()
	for i, want := range []int{0, 1, 2, 3, 4} {
		if order[i] != want {
			t.Fatalf("firing order %v, want [0 1 2 3 4]", order)
		}
	}
}

// TestWheelCancel unlinks events straight out of wheel slots: the slot
// bitmap must clear when the slot empties, Pending must count both
// structures, and cancelled events must never fire.
func TestWheelCancel(t *testing.T) {
	e := New()
	fired := 0
	a := e.Schedule(Time(50*tickNs), 0, func() { fired++ })
	b := e.Schedule(Time(50*tickNs)+1, 0, func() { fired++ }) // same level-0 slot
	c := e.Schedule(Time(30*tickNs), 0, func() { fired++ })
	if e.Pending() != 3 {
		t.Fatalf("pending %d, want 3", e.Pending())
	}
	e.Cancel(a)
	if a.Scheduled() || !b.Scheduled() {
		t.Fatal("cancel hit the wrong node in the slot list")
	}
	e.Cancel(b)
	if e.occupied[0] == 0 {
		t.Fatal("slot bitmap lost c's slot")
	}
	e.Cancel(c)
	if e.occupied[0] != 0 || e.wheelCount != 0 {
		t.Fatalf("wheel not empty after cancels: occupied=%b count=%d", e.occupied[0], e.wheelCount)
	}
	e.Run()
	if fired != 0 {
		t.Fatalf("%d cancelled events fired", fired)
	}
	// The cancelled nodes are recycled through the pool.
	if len(e.free) != 3 {
		t.Fatalf("free list has %d nodes, want 3", len(e.free))
	}
}

// TestWheelRunUntil stops the clock mid-wheel: due events fire, the rest
// stay parked, and scheduling relative to the advanced clock stays correct.
func TestWheelRunUntil(t *testing.T) {
	e := New()
	var fired []int
	e.Schedule(Time(10*time.Millisecond), 0, func() { fired = append(fired, 0) })
	e.Schedule(Time(30*time.Millisecond), 0, func() { fired = append(fired, 1) })
	e.RunUntil(Time(20 * time.Millisecond))
	if len(fired) != 1 || fired[0] != 0 {
		t.Fatalf("fired %v before the deadline, want [0]", fired)
	}
	if e.Now() != Time(20*time.Millisecond) {
		t.Fatalf("clock %v, want 20ms", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d, want 1", e.Pending())
	}
	e.Schedule(e.Now().Add(time.Millisecond), 0, func() { fired = append(fired, 2) })
	e.Run()
	if len(fired) != 3 || fired[1] != 2 || fired[2] != 1 {
		t.Fatalf("final order %v, want [0 2 1]", fired)
	}
}

// TestWheelFarScheduleZeroAlloc extends the pool guarantee to the wheel
// path: a warm cancel/re-schedule cycle against far-future slots allocates
// nothing.
func TestWheelFarScheduleZeroAlloc(t *testing.T) {
	e := New()
	fn := func() {}
	var ev Event
	for i := 0; i < 64; i++ {
		e.Cancel(ev)
		ev = e.Schedule(e.Now().Add(time.Duration(1+i)*time.Second), 0, fn)
	}
	avg := testing.AllocsPerRun(1_000, func() {
		e.Cancel(ev)
		ev = e.Schedule(e.Now().Add(5*time.Second), 0, fn)
	})
	if avg != 0 {
		t.Fatalf("steady-state wheel Cancel+Schedule allocates %.1f times per op, want 0", avg)
	}
}
