package oracle

import (
	"testing"
	"time"

	"rtseed/internal/engine"
)

func at(d time.Duration) engine.Time { return engine.At(d) }

func TestOracleOrdering(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(at(30*time.Millisecond), 0, func() { got = append(got, 3) })
	e.Schedule(at(10*time.Millisecond), 0, func() { got = append(got, 1) })
	e.Schedule(at(10*time.Millisecond), 1, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if e.Now() != at(30*time.Millisecond) {
		t.Fatalf("clock %v, want 30ms", e.Now())
	}
	if e.Steps() != 3 {
		t.Fatalf("steps %d, want 3", e.Steps())
	}
}

func TestOracleCancelAndRecycle(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(at(time.Millisecond), 0, func() { fired = true })
	if !ev.Scheduled() {
		t.Fatal("event should be scheduled")
	}
	e.Cancel(ev)
	if ev.Scheduled() {
		t.Fatal("event should be cancelled")
	}
	second := e.Schedule(at(2*time.Millisecond), 0, func() {})
	e.Cancel(ev) // stale handle must not touch the recycled node
	if !second.Scheduled() {
		t.Fatal("stale Cancel killed the recycled node's event")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending %d after Run", e.Pending())
	}
}

func TestOracleSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(at(time.Second), 0, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.Schedule(at(time.Millisecond), 0, func() {})
}
