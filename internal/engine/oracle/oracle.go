// Package oracle is a reference implementation of the engine's event queue:
// a single binary min-heap over pooled event nodes ordered by (timestamp,
// priority, insertion sequence) — the engine's documented total order, in
// its simplest possible form.
//
// It exists for verification and measurement, not for production use. The
// differential fuzz test in internal/engine drives this oracle and the
// hierarchical timing-wheel engine with identical Schedule/Cancel/Step
// sequences and asserts identical firing order, and
// BenchmarkEngineWheelVsHeap measures the wheel against this heap at
// growing event counts. The node pool and generation-counted handles are
// kept identical to the engine's so the comparison isolates the queue
// structure, not allocation behaviour.
package oracle

import (
	"fmt"

	"rtseed/internal/engine"
)

// node is the pooled representation of a scheduled callback.
type node struct {
	at       engine.Time
	priority int
	seq      uint64
	gen      uint64
	fn       func()
	index    int // heap index; -1 when not queued
}

// Event is a handle to a scheduled callback, with the same generation
// semantics as engine.Event.
type Event struct {
	n   *node
	gen uint64
}

// Scheduled reports whether the event is still queued.
func (e Event) Scheduled() bool { return e.n != nil && e.n.gen == e.gen && e.n.index >= 0 }

// Engine is the reference min-heap event queue.
type Engine struct {
	now   engine.Time
	queue []*node
	free  []*node
	seq   uint64
	steps uint64
}

// New returns an empty reference engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() engine.Time { return e.now }

// Steps returns the number of events processed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Schedule queues fn to run at instant at, with the engine's (at, priority,
// seq) ordering. It panics if at precedes the current time.
func (e *Engine) Schedule(at engine.Time, priority int, fn func()) Event {
	if at < e.now {
		panic(fmt.Sprintf("oracle: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	var n *node
	if len(e.free) > 0 {
		n = e.free[len(e.free)-1]
		e.free[len(e.free)-1] = nil
		e.free = e.free[:len(e.free)-1]
	} else {
		n = &node{}
	}
	n.at = at
	n.priority = priority
	n.seq = e.seq
	n.fn = fn
	n.index = len(e.queue)
	e.queue = append(e.queue, n)
	e.siftUp(n.index)
	return Event{n: n, gen: n.gen}
}

// Cancel removes a pending event; stale handles are a no-op.
func (e *Engine) Cancel(ev Event) {
	if !ev.Scheduled() {
		return
	}
	e.remove(ev.n.index)
}

// Step processes the next event, advancing the clock to its timestamp.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	n := e.queue[0]
	e.now = n.at
	e.steps++
	fn := n.fn
	e.remove(0)
	fn()
	return true
}

// Run processes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

func (e *Engine) remove(i int) {
	n := e.queue[i]
	last := len(e.queue) - 1
	if i != last {
		e.queue[i] = e.queue[last]
		e.queue[i].index = i
	}
	e.queue[last] = nil
	e.queue = e.queue[:last]
	if i < last {
		if !e.siftDown(i) {
			e.siftUp(i)
		}
	}
	n.index = -1
	n.gen++
	n.fn = nil
	e.free = append(e.free, n)
}

func (e *Engine) siftUp(i int) {
	q := e.queue
	n := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := q[parent]
		if !less(n, p) {
			break
		}
		q[i] = p
		p.index = i
		i = parent
	}
	q[i] = n
	n.index = i
}

func (e *Engine) siftDown(i int) bool {
	q := e.queue
	n := q[i]
	start := i
	half := len(q) / 2
	for i < half {
		child := 2*i + 1
		if right := child + 1; right < len(q) && less(q[right], q[child]) {
			child = right
		}
		c := q[child]
		if !less(c, n) {
			break
		}
		q[i] = c
		c.index = i
		i = child
	}
	q[i] = n
	n.index = i
	return i > start
}

// less orders nodes by (at, priority, seq) — the engine's documented order.
func less(a, b *node) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}
