package engine_test

// Differential testing of the timing-wheel engine against the reference
// min-heap in internal/engine/oracle: both are driven with identical
// Schedule/Cancel/Step sequences and must agree on every observable — which
// events fire, in what order, at what clock readings, with equal Pending
// counts and handle liveness throughout. The op stream is decoded from a
// byte string, so the same harness serves a seeded randomized test and a go
// fuzz target.

import (
	"testing"
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/engine/oracle"
)

// runDifferential decodes ops from data and drives both engines in lockstep.
//
// Encoding (one op per iteration, trailing bytes read as zero):
//   - selector byte % 8 ∈ {0..3}: schedule. Three bytes form a 24-bit delay
//     scaled to cover everything from same-instant ties to ~100 s — past the
//     wheel's ~68.7 s horizon, so clamped and re-clamped placements are
//     exercised — plus one byte for the tie-breaking priority.
//   - 4: cancel a pseudo-randomly chosen outstanding handle (possibly
//     already fired: both sides must treat stale handles as inert).
//   - 5, 6: step both engines.
//   - 7: probe invariants (Pending, Now).
func runDifferential(t *testing.T, data []byte) {
	t.Helper()
	live := engine.New()
	ref := oracle.New()
	var gotLive, gotRef []int
	type handlePair struct {
		le engine.Event
		re oracle.Event
	}
	var handles []handlePair
	nextID := 0
	i := 0
	next := func() byte {
		if i >= len(data) {
			return 0
		}
		b := data[i]
		i++
		return b
	}
	for i < len(data) {
		switch next() % 8 {
		case 0, 1, 2, 3:
			v := uint64(next()) | uint64(next())<<8 | uint64(next())<<16
			d := time.Duration(v)*6000 + time.Duration(v%13)
			prio := int(next() % 4)
			id := nextID
			nextID++
			le := live.After(d, prio, func() { gotLive = append(gotLive, id) })
			re := ref.Schedule(ref.Now().Add(d), prio, func() { gotRef = append(gotRef, id) })
			handles = append(handles, handlePair{le, re})
		case 4:
			if len(handles) == 0 {
				continue
			}
			j := int(next()) % len(handles)
			if handles[j].le.Scheduled() != handles[j].re.Scheduled() {
				t.Fatalf("op %d: handle %d liveness diverged: live=%v ref=%v",
					i, j, handles[j].le.Scheduled(), handles[j].re.Scheduled())
			}
			live.Cancel(handles[j].le)
			ref.Cancel(handles[j].re)
		case 5, 6:
			sl, sr := live.Step(), ref.Step()
			if sl != sr {
				t.Fatalf("op %d: live stepped=%v, ref stepped=%v", i, sl, sr)
			}
			if live.Now() != ref.Now() {
				t.Fatalf("op %d: clocks diverged: live=%v ref=%v", i, live.Now(), ref.Now())
			}
		default:
			if live.Pending() != ref.Pending() {
				t.Fatalf("op %d: pending diverged: live=%d ref=%d", i, live.Pending(), ref.Pending())
			}
		}
	}
	for {
		sl, sr := live.Step(), ref.Step()
		if sl != sr {
			t.Fatalf("drain: live stepped=%v, ref stepped=%v", sl, sr)
		}
		if !sl {
			break
		}
		if live.Now() != ref.Now() {
			t.Fatalf("drain: clocks diverged: live=%v ref=%v", live.Now(), ref.Now())
		}
	}
	if len(gotLive) != len(gotRef) {
		t.Fatalf("fired %d events on the wheel, %d on the heap", len(gotLive), len(gotRef))
	}
	for k := range gotLive {
		if gotLive[k] != gotRef[k] {
			t.Fatalf("firing order diverged at position %d: live fired %d, ref fired %d (live %v, ref %v)",
				k, gotLive[k], gotRef[k], gotLive, gotRef)
		}
	}
	if live.Steps() != ref.Steps() {
		t.Fatalf("steps diverged: live=%d ref=%d", live.Steps(), ref.Steps())
	}
	if live.Pending() != 0 {
		t.Fatalf("%d events pending on the wheel after drain", live.Pending())
	}
}

// FuzzEngineVsOracle is the fuzz entry point over the differential harness.
func FuzzEngineVsOracle(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0})                // same-instant ties
	f.Add([]byte{0, 255, 255, 255, 1, 3, 0, 0, 0, 0, 5, 5, 5}) // horizon clamp
	f.Add([]byte{1, 10, 0, 0, 2, 1, 10, 0, 0, 1, 4, 0, 5, 5})  // schedule/cancel/step
	f.Fuzz(func(t *testing.T, data []byte) {
		runDifferential(t, data)
	})
}

// TestEngineVsOracleRandom drives the differential harness with seeded
// random op streams: a broad mix, a tie-heavy short-delay mix, and a
// horizon-heavy mix that keeps events cascading from the top wheel level.
func TestEngineVsOracleRandom(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		r := engine.NewRand(seed)
		data := make([]byte, 6000)
		switch seed % 3 {
		case 0: // uniform ops, full delay range
			for i := range data {
				data[i] = byte(r.Intn(256))
			}
		case 1: // short delays: dense ties within and across ticks
			for i := 0; i+5 <= len(data); i += 5 {
				data[i] = byte(r.Intn(8)) // mostly schedules, some cancel/step
				data[i+1] = byte(r.Intn(4))
				data[i+2] = 0
				data[i+3] = 0
				data[i+4] = byte(r.Intn(256))
			}
		default: // long delays: top-level slots, clamping, re-clamping
			for i := 0; i+5 <= len(data); i += 5 {
				data[i] = byte(r.Intn(8))
				data[i+1] = byte(r.Intn(256))
				data[i+2] = byte(200 + r.Intn(56))
				data[i+3] = byte(200 + r.Intn(56))
				data[i+4] = byte(r.Intn(256))
			}
		}
		runDifferential(t, data)
	}
}
