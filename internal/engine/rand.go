package engine

// Rand is a small deterministic pseudo-random source (SplitMix64). The
// simulator uses it for calibrated per-job overhead jitter; determinism for a
// given seed is required so experiments are reproducible run to run.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next value in the sequence.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns an approximately standard-normal value using the sum of
// twelve uniforms (Irwin–Hall). The tails are truncated at ±6, which is fine
// for timing jitter.
func (r *Rand) NormFloat64() float64 {
	sum := 0.0
	for i := 0; i < 12; i++ {
		sum += r.Float64()
	}
	return sum - 6
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("engine: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}
