// Package engine implements a deterministic discrete-event simulation
// engine: a virtual clock and an ordered event queue.
//
// All simulated subsystems (the machine model, the SCHED_FIFO kernel, the
// RT-Seed middleware protocol) are driven by a single Engine. Events that
// share a timestamp are ordered by priority and then by insertion sequence,
// so a given program always produces the same schedule.
//
// The queue is a hierarchical timing wheel fronted by a small near-horizon
// binary heap (see wheel.go): far events sit in power-of-two wheel slots and
// cascade toward the present in O(1) amortized steps, while events at or
// before the wheel's current tick live in the heap, which resolves the exact
// (timestamp, priority, sequence) total order. Both structures share one
// pool of event nodes: fired and cancelled nodes return to a free list and
// are recycled by later Schedule calls, so the steady-state Schedule→Step
// cycle allocates nothing. Event handles are values carrying a generation
// counter; a handle left over from a fired event is inert even after its
// node has been recycled.
package engine

import (
	"errors"
	"fmt"
	"time"
)

// Time is an instant of virtual time, in nanoseconds since simulation start.
type Time int64

// Duration converts a virtual instant to the time.Duration elapsed since the
// simulation origin.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t - u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// String formats the instant as a duration since simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// At builds a Time from a duration since the simulation origin.
func At(d time.Duration) Time { return Time(d) }

const (
	// idxFree marks a node that is on the free list (or was never queued).
	idxFree = -1
	// idxWheel marks a node linked into a timing-wheel slot. Nodes in the
	// near-horizon heap use their non-negative heap index instead.
	idxWheel = -2
)

// node is the pooled representation of a scheduled callback. Nodes are owned
// by the engine: they live in the near-horizon heap, in a timing-wheel slot,
// or on the free list, and their generation counter is bumped every time they
// are released, invalidating any Event handles still pointing at them.
//
// The narrow field types keep the struct at exactly one 64-byte cache line:
// every Step touches the fired node plus the sift path, so at many-task scale
// (hundreds of cold pending nodes) each node costs one cache miss, not two.
type node struct {
	at  Time
	seq uint64
	gen uint64
	fn  func()

	// prev/next link the node into its wheel slot's doubly-linked list;
	// level/slot remember where, so Cancel can unlink in O(1).
	prev, next *node
	// priority mirrors Schedule's priority argument; simulation priorities
	// are single-digit engine bands and two-digit SCHED_FIFO levels.
	priority int32
	// index is the heap index when >= 0, idxWheel while the node hangs in a
	// wheel slot, and idxFree when the node is released.
	index       int32
	level, slot int16
}

// Event is a handle to a scheduled callback, returned by Engine.Schedule so
// the caller can cancel the event before it fires. The zero Event is valid
// and refers to nothing. Handles are values: holding one past the event's
// firing is safe — it simply stops matching the recycled node's generation.
type Event struct {
	n   *node
	gen uint64
}

// When returns the instant the event is scheduled for, or 0 if the handle no
// longer refers to a live event.
func (e Event) When() Time {
	if !e.Scheduled() {
		return 0
	}
	return e.n.at
}

// Scheduled reports whether the event is still queued (in the heap or in a
// wheel slot).
func (e Event) Scheduled() bool { return e.n != nil && e.n.gen == e.gen && e.n.index != idxFree }

// heapItem is one entry of the near-horizon heap: the node's sort key held
// inline next to the node pointer. Comparisons during a sift read only the
// queue slice — two 32-byte entries per cache line, children adjacent — and
// never dereference the scattered node structs, which at many-task scale
// turned every heap level into a cache miss.
type heapItem struct {
	at       Time
	seq      uint64
	n        *node
	priority int32
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with New.
type Engine struct {
	now   Time
	queue []heapItem // near-horizon min-heap over (at, priority, seq)
	free  []*node
	seq   uint64
	steps uint64

	// Hierarchical timing wheel; see wheel.go for the invariants.
	curTick    tick
	occupied   [wheelLevels]uint64
	slots      [wheelLevels][wheelSlots]*node
	wheelCount int
	// wheelMinLB is a conservative (never above the true value) cache of
	// the smallest occupied slot base, valid while wheelCount > 0. It lets
	// ensureMin's common case — heap top due before anything in the wheel —
	// skip the per-level bitmap scan entirely.
	wheelMinLB tick
}

// New returns an empty engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events processed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// ErrPast is returned by Schedule when asked to schedule an event before the
// current virtual time.
var ErrPast = errors.New("engine: event scheduled in the past")

// Schedule queues fn to run at instant at. Events at the same instant run in
// ascending priority order (lower value runs first) and then in insertion
// order. It panics if at precedes the current time: that is always a
// simulation bug, not a recoverable condition.
//
//rtseed:noalloc
//rtseed:kernelctx-entry public scheduling API; the engine is single-goroutine, so callers are serialized with the event loop
func (e *Engine) Schedule(at Time, priority int, fn func()) Event {
	if at < e.now {
		panic(fmt.Sprintf("engine: schedule at %v before now %v: %v", at, e.now, ErrPast))
	}
	e.seq++
	var n *node
	if len(e.free) > 0 {
		n = e.free[len(e.free)-1]
		e.free[len(e.free)-1] = nil
		e.free = e.free[:len(e.free)-1]
	} else {
		n = &node{} //rtseed:alloc-ok pool miss: nodes are recycled, so the steady state pays this only until the pool warms up
	}
	n.at = at
	n.priority = int32(priority)
	n.seq = e.seq
	n.fn = fn
	if tickOf(at) <= e.curTick {
		e.heapPush(n)
	} else {
		e.wheelPlace(n)
	}
	return Event{n: n, gen: n.gen}
}

// After queues fn to run d after the current time.
//
//rtseed:noalloc
func (e *Engine) After(d time.Duration, priority int, fn func()) Event {
	return e.Schedule(e.now.Add(d), priority, fn)
}

// Cancel removes a pending event. Cancelling an event that already fired,
// was already cancelled, or is the zero Event is a no-op.
//
//rtseed:noalloc
//rtseed:kernelctx-entry public cancellation API, serialized with the event loop like Schedule
func (e *Engine) Cancel(ev Event) {
	if !ev.Scheduled() {
		return
	}
	if ev.n.index == idxWheel {
		e.wheelRemove(ev.n)
		e.release(ev.n)
		return
	}
	e.remove(int(ev.n.index))
}

// Step processes the next event, advancing the clock to its timestamp.
// It reports whether an event was processed.
//
//rtseed:noalloc
//rtseed:kernelctx-entry the event-loop pump: every callback it fires runs in kernel context
func (e *Engine) Step() bool {
	e.ensureMin()
	if len(e.queue) == 0 {
		return false
	}
	n := e.queue[0].n
	e.now = n.at
	// ensureMin drained every wheel slot with a lower bound <= this tick,
	// so advancing the wheel's cursor here skips no occupied slot.
	if t := tickOf(n.at); t > e.curTick {
		e.curTick = t
	}
	e.steps++
	fn := n.fn
	e.remove(0)
	fn()
	return true
}

// Run processes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil processes events with timestamps <= deadline, then sets the clock
// to deadline. Events scheduled after deadline remain queued.
//
//rtseed:kernelctx-entry the bounded event-loop pump; peeks the wheel between steps
func (e *Engine) RunUntil(deadline Time) {
	for {
		e.ensureMin()
		if len(e.queue) == 0 || e.queue[0].at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) + e.wheelCount }

// heapPush appends n to the near-horizon heap and restores the heap order.
//
//rtseed:noalloc
//rtseed:kernelctx
func (e *Engine) heapPush(n *node) {
	n.index = int32(len(e.queue))
	e.queue = append(e.queue, heapItem{at: n.at, seq: n.seq, n: n, priority: n.priority}) //rtseed:alloc-ok amortized queue growth; the Schedule→Step cycle reuses capacity
	e.siftUp(int(n.index))
}

// remove detaches the entry at heap index i, restores the heap property, and
// releases its node to the free list.
//
//rtseed:noalloc
//rtseed:kernelctx
func (e *Engine) remove(i int) {
	n := e.queue[i].n
	last := len(e.queue) - 1
	if i != last {
		e.queue[i] = e.queue[last]
		e.queue[i].n.index = int32(i)
	}
	e.queue[last] = heapItem{}
	e.queue = e.queue[:last]
	if i < last {
		if !e.siftDown(i) {
			e.siftUp(i)
		}
	}
	e.release(n)
}

// release invalidates outstanding handles and returns n to the free list.
//
//rtseed:noalloc
//rtseed:kernelctx
func (e *Engine) release(n *node) {
	n.index = idxFree
	n.gen++ // invalidate outstanding handles before the node is recycled
	n.fn = nil
	e.free = append(e.free, n) //rtseed:alloc-ok amortized free-list growth; capacity is reused across recycles
}

// The heap is 4-ary: children of i are 4i+1..4i+4. With 32-byte inline-key
// entries the four children span two cache lines, and the tree is half the
// depth of a binary heap — pop-heavy event loops spend their time in
// siftDown, where depth is what costs.

//rtseed:noalloc
//rtseed:kernelctx
func (e *Engine) siftUp(i int) {
	q := e.queue
	it := q[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !less(&it, &q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].n.index = int32(i)
		i = parent
	}
	q[i] = it
	it.n.index = int32(i)
}

// siftDown restores the heap below i, reporting whether the entry moved.
//
//rtseed:noalloc
//rtseed:kernelctx
func (e *Engine) siftDown(i int) bool {
	q := e.queue
	it := q[i]
	start := i
	n := len(q)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if less(&q[c], &q[best]) {
				best = c
			}
		}
		if !less(&q[best], &it) {
			break
		}
		q[i] = q[best]
		q[i].n.index = int32(i)
		i = best
	}
	q[i] = it
	it.n.index = int32(i)
	return i > start
}

// less orders heap entries by (at, priority, seq).
//
//rtseed:noalloc
func less(a, b *heapItem) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}
