// Package engine implements a deterministic discrete-event simulation
// engine: a virtual clock and an ordered event queue.
//
// All simulated subsystems (the machine model, the SCHED_FIFO kernel, the
// RT-Seed middleware protocol) are driven by a single Engine. Events that
// share a timestamp are ordered by priority and then by insertion sequence,
// so a given program always produces the same schedule.
//
// The queue is a specialized min-heap over pooled event nodes: fired and
// cancelled nodes return to a free list and are recycled by later Schedule
// calls, so the steady-state Schedule→Step cycle allocates nothing. Event
// handles are values carrying a generation counter; a handle left over from
// a fired event is inert even after its node has been recycled.
package engine

import (
	"errors"
	"fmt"
	"time"
)

// Time is an instant of virtual time, in nanoseconds since simulation start.
type Time int64

// Duration converts a virtual instant to the time.Duration elapsed since the
// simulation origin.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t - u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// String formats the instant as a duration since simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// At builds a Time from a duration since the simulation origin.
func At(d time.Duration) Time { return Time(d) }

// node is the pooled representation of a scheduled callback. Nodes are owned
// by the engine: they live either in the queue or on the free list, and their
// generation counter is bumped every time they are released, invalidating any
// Event handles still pointing at them.
type node struct {
	at       Time
	priority int
	seq      uint64
	gen      uint64
	fn       func()
	index    int // heap index; -1 when not queued
}

// Event is a handle to a scheduled callback, returned by Engine.Schedule so
// the caller can cancel the event before it fires. The zero Event is valid
// and refers to nothing. Handles are values: holding one past the event's
// firing is safe — it simply stops matching the recycled node's generation.
type Event struct {
	n   *node
	gen uint64
}

// When returns the instant the event is scheduled for, or 0 if the handle no
// longer refers to a live event.
func (e Event) When() Time {
	if !e.Scheduled() {
		return 0
	}
	return e.n.at
}

// Scheduled reports whether the event is still queued.
func (e Event) Scheduled() bool { return e.n != nil && e.n.gen == e.gen && e.n.index >= 0 }

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with New.
type Engine struct {
	now   Time
	queue []*node
	free  []*node
	seq   uint64
	steps uint64
}

// New returns an empty engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events processed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// ErrPast is returned by Schedule when asked to schedule an event before the
// current virtual time.
var ErrPast = errors.New("engine: event scheduled in the past")

// Schedule queues fn to run at instant at. Events at the same instant run in
// ascending priority order (lower value runs first) and then in insertion
// order. It panics if at precedes the current time: that is always a
// simulation bug, not a recoverable condition.
//
//rtseed:noalloc
func (e *Engine) Schedule(at Time, priority int, fn func()) Event {
	if at < e.now {
		panic(fmt.Sprintf("engine: schedule at %v before now %v: %v", at, e.now, ErrPast)) //rtseed:alloc-ok cold panic path; never taken in a correct simulation
	}
	e.seq++
	var n *node
	if len(e.free) > 0 {
		n = e.free[len(e.free)-1]
		e.free[len(e.free)-1] = nil
		e.free = e.free[:len(e.free)-1]
	} else {
		n = &node{} //rtseed:alloc-ok pool miss: nodes are recycled, so the steady state pays this only until the pool warms up
	}
	n.at = at
	n.priority = priority
	n.seq = e.seq
	n.fn = fn
	n.index = len(e.queue)
	e.queue = append(e.queue, n) //rtseed:alloc-ok amortized queue growth; the Schedule→Step cycle reuses capacity
	e.siftUp(n.index)
	return Event{n: n, gen: n.gen}
}

// After queues fn to run d after the current time.
//
//rtseed:noalloc
func (e *Engine) After(d time.Duration, priority int, fn func()) Event {
	return e.Schedule(e.now.Add(d), priority, fn)
}

// Cancel removes a pending event. Cancelling an event that already fired,
// was already cancelled, or is the zero Event is a no-op.
//
//rtseed:noalloc
func (e *Engine) Cancel(ev Event) {
	if !ev.Scheduled() {
		return
	}
	e.remove(ev.n.index)
}

// Step processes the next event, advancing the clock to its timestamp.
// It reports whether an event was processed.
//
//rtseed:noalloc
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	n := e.queue[0]
	e.now = n.at
	e.steps++
	fn := n.fn
	e.remove(0)
	fn()
	return true
}

// Run processes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil processes events with timestamps <= deadline, then sets the clock
// to deadline. Events scheduled after deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// remove detaches the node at heap index i, restores the heap property, and
// releases the node to the free list.
//
//rtseed:noalloc
func (e *Engine) remove(i int) {
	n := e.queue[i]
	last := len(e.queue) - 1
	if i != last {
		e.queue[i] = e.queue[last]
		e.queue[i].index = i
	}
	e.queue[last] = nil
	e.queue = e.queue[:last]
	if i < last {
		if !e.siftDown(i) {
			e.siftUp(i)
		}
	}
	n.index = -1
	n.gen++ // invalidate outstanding handles before the node is recycled
	n.fn = nil
	e.free = append(e.free, n) //rtseed:alloc-ok amortized free-list growth; capacity is reused across recycles
}

//rtseed:noalloc
func (e *Engine) siftUp(i int) {
	q := e.queue
	n := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := q[parent]
		if !less(n, p) {
			break
		}
		q[i] = p
		p.index = i
		i = parent
	}
	q[i] = n
	n.index = i
}

// siftDown restores the heap below i, reporting whether the node moved.
//
//rtseed:noalloc
func (e *Engine) siftDown(i int) bool {
	q := e.queue
	n := q[i]
	start := i
	half := len(q) / 2
	for i < half {
		child := 2*i + 1
		if right := child + 1; right < len(q) && less(q[right], q[child]) {
			child = right
		}
		c := q[child]
		if !less(c, n) {
			break
		}
		q[i] = c
		c.index = i
		i = child
	}
	q[i] = n
	n.index = i
	return i > start
}

// less orders nodes by (at, priority, seq).
//
//rtseed:noalloc
func less(a, b *node) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}
