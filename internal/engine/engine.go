// Package engine implements a deterministic discrete-event simulation
// engine: a virtual clock and an ordered event queue.
//
// All simulated subsystems (the machine model, the SCHED_FIFO kernel, the
// RT-Seed middleware protocol) are driven by a single Engine. Events that
// share a timestamp are ordered by priority and then by insertion sequence,
// so a given program always produces the same schedule.
package engine

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Time is an instant of virtual time, in nanoseconds since simulation start.
type Time int64

// Duration converts a virtual instant to the time.Duration elapsed since the
// simulation origin.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t - u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// String formats the instant as a duration since simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// At builds a Time from a duration since the simulation origin.
func At(d time.Duration) Time { return Time(d) }

// Event is a scheduled callback. It is returned by Engine.Schedule so the
// caller can cancel it before it fires.
type Event struct {
	at       Time
	priority int
	seq      uint64
	fn       func()
	index    int // heap index; -1 when not queued
}

// When returns the instant the event is scheduled for.
func (e *Event) When() Time { return e.at }

// Scheduled reports whether the event is still queued.
func (e *Event) Scheduled() bool { return e != nil && e.index >= 0 }

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with New.
type Engine struct {
	now   Time
	queue eventQueue
	seq   uint64
	steps uint64
}

// New returns an empty engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events processed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// ErrPast is returned by Schedule when asked to schedule an event before the
// current virtual time.
var ErrPast = errors.New("engine: event scheduled in the past")

// Schedule queues fn to run at instant at. Events at the same instant run in
// ascending priority order (lower value runs first) and then in insertion
// order. It panics if at precedes the current time: that is always a
// simulation bug, not a recoverable condition.
func (e *Engine) Schedule(at Time, priority int, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("engine: schedule at %v before now %v: %v", at, e.now, ErrPast))
	}
	e.seq++
	ev := &Event{at: at, priority: priority, seq: e.seq, fn: fn, index: -1}
	heap.Push(&e.queue, ev)
	return ev
}

// After queues fn to run d after the current time.
func (e *Engine) After(d time.Duration, priority int, fn func()) *Event {
	return e.Schedule(e.now.Add(d), priority, fn)
}

// Cancel removes a pending event. Cancelling an event that already fired or
// was already cancelled is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Step processes the next event, advancing the clock to its timestamp.
// It reports whether an event was processed.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.at
	e.steps++
	ev.fn()
	return true
}

// Run processes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil processes events with timestamps <= deadline, then sets the clock
// to deadline. Events scheduled after deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	for e.queue.Len() > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }

// eventQueue is a min-heap ordered by (at, priority, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
