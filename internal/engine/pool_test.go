package engine

import (
	"testing"
	"time"
	"unsafe"
)

// A handle to an event that already fired must be inert: Scheduled reports
// false and Cancel is a no-op.
func TestCancelAfterFire(t *testing.T) {
	e := New()
	fired := 0
	ev := e.Schedule(At(time.Millisecond), 0, func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
	if ev.Scheduled() {
		t.Fatal("fired event still reports Scheduled")
	}
	if ev.When() != 0 {
		t.Fatalf("fired event When() = %v, want 0", ev.When())
	}
	e.Cancel(ev) // must not panic or disturb the queue
	later := e.Schedule(At(2*time.Millisecond), 0, func() { fired++ })
	e.Cancel(ev) // stale handle again, now that its node may be recycled
	e.Run()
	if fired != 2 {
		t.Fatalf("fired %d, want 2 (stale Cancel must not hit the new event)", fired)
	}
	_ = later
}

// The generation counter protects against the classic pool bug: a stale
// handle whose node was recycled into a new event must not cancel (or report
// the schedule of) the new event.
func TestCancelAfterRecycle(t *testing.T) {
	e := New()
	first := e.Schedule(At(time.Millisecond), 0, func() {})
	e.Run() // fires first; its node goes to the free list

	secondFired := false
	second := e.Schedule(At(2*time.Millisecond), 0, func() { secondFired = true })
	if first.Scheduled() {
		t.Fatal("stale handle reports Scheduled after its node was recycled")
	}
	e.Cancel(first) // must NOT cancel second, which reuses the node
	if !second.Scheduled() {
		t.Fatal("stale Cancel killed the recycled node's new event")
	}
	e.Run()
	if !secondFired {
		t.Fatal("second event never fired")
	}
}

// Cancelling from inside the event's own callback is inert: by the time fn
// runs, the node is already released.
func TestSelfCancelInsideCallback(t *testing.T) {
	e := New()
	var self Event
	ran := false
	self = e.Schedule(At(time.Millisecond), 0, func() {
		ran = true
		e.Cancel(self)
	})
	e.Schedule(At(2*time.Millisecond), 0, func() {})
	e.Run()
	if !ran {
		t.Fatal("callback never ran")
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events pending after Run", e.Pending())
	}
}

// A reschedule storm: repeatedly cancel-and-reschedule the same logical
// timer, as the kernel's timer_settime path does. Only the final schedule
// may fire, and the node pool must keep the engine's footprint flat.
func TestRescheduleStorm(t *testing.T) {
	e := New()
	fired := 0
	var timer Event
	for i := 0; i < 10_000; i++ {
		e.Cancel(timer)
		timer = e.Schedule(At(time.Duration(i+1)*time.Microsecond), 1, func() { fired++ })
	}
	if got := e.Pending(); got != 1 {
		t.Fatalf("pending %d after storm, want 1", got)
	}
	e.Run()
	if fired != 1 {
		t.Fatalf("fired %d, want exactly 1", fired)
	}
}

// Fuzz-style interleaving: a deterministic stream of schedule / cancel /
// step operations, checking that every event fires exactly once unless
// cancelled, that cancelled events never fire, and that firing times are
// monotonic.
func TestPoolInterleavingFuzz(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		e := New()
		r := NewRand(seed)
		type tracked struct {
			ev        Event
			fired     *bool
			cancelled bool
		}
		var live []tracked
		last := Time(-1)
		fires := 0
		for op := 0; op < 2_000; op++ {
			switch r.Intn(4) {
			case 0, 1: // schedule
				f := new(bool)
				ev := e.After(time.Duration(r.Intn(500))*time.Microsecond, r.Intn(3), func() {
					if *f {
						t.Fatal("event fired twice")
					}
					*f = true
				})
				live = append(live, tracked{ev: ev, fired: f})
			case 2: // cancel a random outstanding handle (possibly stale)
				if len(live) > 0 {
					i := r.Intn(len(live))
					if !*live[i].fired {
						live[i].cancelled = live[i].cancelled || live[i].ev.Scheduled()
						e.Cancel(live[i].ev)
					}
				}
			case 3: // step
				if e.Step() {
					fires++
					if e.Now() < last {
						t.Fatalf("clock went backwards: %v after %v", e.Now(), last)
					}
					last = e.Now()
				}
			}
		}
		e.Run()
		for i, tr := range live {
			if tr.cancelled && *tr.fired {
				t.Fatalf("seed %d: cancelled event %d fired", seed, i)
			}
			if !tr.cancelled && !*tr.fired {
				t.Fatalf("seed %d: live event %d never fired", seed, i)
			}
		}
		if e.Pending() != 0 {
			t.Fatalf("seed %d: %d events pending after Run", seed, e.Pending())
		}
	}
}

// The free list actually recycles: after a warm-up, a steady-state
// Schedule→Step cycle performs zero heap allocations.
func TestScheduleStepZeroAlloc(t *testing.T) {
	e := New()
	fn := func() {}
	for i := 0; i < 64; i++ { // warm the pool
		e.Schedule(e.Now(), 0, fn)
	}
	for e.Step() {
	}
	avg := testing.AllocsPerRun(1_000, func() {
		e.Schedule(e.Now(), 0, fn)
		e.Step()
	})
	if avg != 0 {
		t.Fatalf("steady-state Schedule+Step allocates %.1f times per op, want 0", avg)
	}
}

// Cancel must also feed the free list: cancel-heavy workloads (timer
// re-arming) stay allocation-free once warm.
func TestCancelRecyclesZeroAlloc(t *testing.T) {
	e := New()
	fn := func() {}
	var ev Event
	for i := 0; i < 64; i++ {
		e.Cancel(ev)
		ev = e.Schedule(e.Now().Add(time.Second), 0, fn)
	}
	avg := testing.AllocsPerRun(1_000, func() {
		e.Cancel(ev)
		ev = e.Schedule(e.Now().Add(time.Second), 0, fn)
	})
	if avg != 0 {
		t.Fatalf("steady-state Cancel+Schedule allocates %.1f times per op, want 0", avg)
	}
}

// TestNodeIsOneCacheLine pins the node layout: the narrow index/level/slot
// fields exist to keep one event node in exactly one 64-byte cache line.
func TestNodeIsOneCacheLine(t *testing.T) {
	if s := unsafe.Sizeof(node{}); s != 64 {
		t.Fatalf("node size = %d bytes, want exactly one 64-byte cache line", s)
	}
}
