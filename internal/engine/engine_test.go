package engine

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(At(30*time.Millisecond), 0, func() { got = append(got, 3) })
	e.Schedule(At(10*time.Millisecond), 0, func() { got = append(got, 1) })
	e.Schedule(At(20*time.Millisecond), 0, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if e.Now() != At(30*time.Millisecond) {
		t.Fatalf("clock at %v, want 30ms", e.Now())
	}
}

func TestSameInstantPriorityThenSequence(t *testing.T) {
	e := New()
	var got []string
	at := At(time.Second)
	e.Schedule(at, 2, func() { got = append(got, "p2") })
	e.Schedule(at, 1, func() { got = append(got, "p1-first") })
	e.Schedule(at, 1, func() { got = append(got, "p1-second") })
	e.Schedule(at, 0, func() { got = append(got, "p0") })
	e.Run()
	want := []string{"p0", "p1-first", "p1-second", "p2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(At(time.Millisecond), 0, func() { fired = true })
	if !ev.Scheduled() {
		t.Fatal("event should be scheduled")
	}
	e.Cancel(ev)
	if ev.Scheduled() {
		t.Fatal("event should be cancelled")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	e.Cancel(ev) // double cancel is a no-op
	e.Cancel(Event{})
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := New()
	var got []int
	evs := make([]Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.Schedule(At(time.Duration(i)*time.Millisecond), 0, func() { got = append(got, i) })
	}
	e.Cancel(evs[3])
	e.Cancel(evs[7])
	e.Run()
	if len(got) != 8 {
		t.Fatalf("got %d events, want 8", len(got))
	}
	for _, v := range got {
		if v == 3 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(At(time.Second), 0, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.Schedule(At(time.Millisecond), 0, func() {})
}

func TestRunUntil(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(At(1*time.Second), 0, func() { got = append(got, 1) })
	e.Schedule(At(3*time.Second), 0, func() { got = append(got, 3) })
	e.RunUntil(At(2 * time.Second))
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("got %v, want [1]", got)
	}
	if e.Now() != At(2*time.Second) {
		t.Fatalf("clock %v, want 2s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d, want 1", e.Pending())
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := New()
	var at Time
	e.Schedule(At(time.Second), 0, func() {
		e.After(500*time.Millisecond, 0, func() { at = e.Now() })
	})
	e.Run()
	if at != At(1500*time.Millisecond) {
		t.Fatalf("fired at %v, want 1.5s", at)
	}
}

func TestCascadingEvents(t *testing.T) {
	e := New()
	count := 0
	var step func()
	step = func() {
		count++
		if count < 100 {
			e.After(time.Millisecond, 0, step)
		}
	}
	e.Schedule(At(0), 0, step)
	e.Run()
	if count != 100 {
		t.Fatalf("count %d, want 100", count)
	}
	if e.Now() != At(99*time.Millisecond) {
		t.Fatalf("clock %v, want 99ms", e.Now())
	}
}

// Property: events always fire in non-decreasing time order, regardless of
// insertion order.
func TestPropertyMonotonicFiring(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := New()
		var fired []Time
		for _, o := range offsets {
			e.Schedule(At(time.Duration(o)*time.Microsecond), 0, func() {
				fired = append(fired, e.Now())
			})
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(offsets)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the engine is deterministic — two runs of the same program
// produce identical event counts and final clocks.
func TestPropertyDeterminism(t *testing.T) {
	run := func(seed uint64) (uint64, Time) {
		e := New()
		r := NewRand(seed)
		var rec func()
		n := 0
		rec = func() {
			n++
			if n < 200 {
				e.After(time.Duration(r.Intn(1000)+1)*time.Microsecond, r.Intn(3), rec)
			}
		}
		e.Schedule(At(0), 0, rec)
		e.Run()
		return e.Steps(), e.Now()
	}
	f := func(seed uint64) bool {
		s1, t1 := run(seed)
		s2, t2 := run(seed)
		return s1 == s2 && t1 == t2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	a := At(time.Second)
	if a.Add(time.Second) != At(2*time.Second) {
		t.Fatal("Add")
	}
	if a.Add(time.Second).Sub(a) != time.Second {
		t.Fatal("Sub")
	}
	if a.Duration() != time.Second {
		t.Fatal("Duration")
	}
	if a.String() != "1s" {
		t.Fatalf("String %q", a.String())
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same sequence")
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRandNormRoughlyCentred(t *testing.T) {
	r := NewRand(1)
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		sum += r.NormFloat64()
	}
	mean := sum / n
	if mean < -0.1 || mean > 0.1 {
		t.Fatalf("mean %v too far from 0", mean)
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRand(1).Intn(0)
}
