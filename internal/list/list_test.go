package list

import (
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var l List[int]
	l.PushBack(1)
	if l.Len() != 1 || l.Front().Value != 1 {
		t.Fatal("zero-value list should accept PushBack")
	}
}

func TestPushPopOrder(t *testing.T) {
	l := New[int]()
	for i := 1; i <= 5; i++ {
		l.PushBack(i)
	}
	for want := 1; want <= 5; want++ {
		n := l.PopFront()
		if n == nil || n.Value != want {
			t.Fatalf("PopFront = %v, want %d", n, want)
		}
	}
	if l.PopFront() != nil {
		t.Fatal("PopFront on empty list should be nil")
	}
}

func TestPushFront(t *testing.T) {
	l := New[string]()
	l.PushBack("b")
	l.PushFront("a")
	l.PushBack("c")
	got := l.Values()
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("values %v, want %v", got, want)
		}
	}
}

func TestRemoveMiddle(t *testing.T) {
	l := New[int]()
	var nodes []*Node[int]
	for i := 0; i < 5; i++ {
		nodes = append(nodes, l.PushBack(i))
	}
	l.Remove(nodes[2])
	if l.Len() != 4 {
		t.Fatalf("len %d, want 4", l.Len())
	}
	got := l.Values()
	want := []int{0, 1, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("values %v, want %v", got, want)
		}
	}
	if nodes[2].Attached() {
		t.Fatal("removed node should be detached")
	}
	l.Remove(nodes[2]) // removing a detached node is a no-op
	if l.Len() != 4 {
		t.Fatal("double remove changed the list")
	}
}

func TestPopBack(t *testing.T) {
	l := New[int]()
	l.PushBack(1)
	l.PushBack(2)
	if n := l.PopBack(); n.Value != 2 {
		t.Fatalf("PopBack = %d, want 2", n.Value)
	}
	if n := l.PopBack(); n.Value != 1 {
		t.Fatalf("PopBack = %d, want 1", n.Value)
	}
	if l.PopBack() != nil {
		t.Fatal("PopBack on empty should be nil")
	}
}

func TestNextPrev(t *testing.T) {
	l := New[int]()
	a := l.PushBack(1)
	b := l.PushBack(2)
	if a.Next() != b || b.Prev() != a {
		t.Fatal("Next/Prev linkage broken")
	}
	if a.Prev() != nil || b.Next() != nil {
		t.Fatal("ends should return nil")
	}
	var detached Node[int]
	if detached.Next() != nil || detached.Prev() != nil {
		t.Fatal("detached node Next/Prev should be nil")
	}
}

func TestReattachPanics(t *testing.T) {
	l := New[int]()
	n := l.PushBack(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double attach")
		}
	}()
	l.PushBackNode(n)
}

func TestCrossListRemovePanics(t *testing.T) {
	a, b := New[int](), New[int]()
	n := a.PushBack(1)
	b.PushBack(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic removing node from wrong list")
		}
	}()
	b.Remove(n)
}

func TestNodeReuseAfterRemove(t *testing.T) {
	l := New[int]()
	n := l.PushBack(1)
	l.Remove(n)
	l.PushFrontNode(n)
	if l.Len() != 1 || l.Front() != n {
		t.Fatal("detached node should be reusable")
	}
}

// Property: a sequence of pushes and pops behaves like a deque modelled by a
// slice.
func TestPropertyDequeEquivalence(t *testing.T) {
	f := func(ops []int8) bool {
		l := New[int]()
		var model []int
		next := 0
		for _, op := range ops {
			switch op % 4 {
			case 0:
				l.PushBack(next)
				model = append(model, next)
				next++
			case 1:
				l.PushFront(next)
				model = append([]int{next}, model...)
				next++
			case 2:
				n := l.PopFront()
				if len(model) == 0 {
					if n != nil {
						return false
					}
				} else {
					if n == nil || n.Value != model[0] {
						return false
					}
					model = model[1:]
				}
			case 3:
				n := l.PopBack()
				if len(model) == 0 {
					if n != nil {
						return false
					}
				} else {
					if n == nil || n.Value != model[len(model)-1] {
						return false
					}
					model = model[:len(model)-1]
				}
			}
			if l.Len() != len(model) {
				return false
			}
		}
		got := l.Values()
		for i := range model {
			if got[i] != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDo(t *testing.T) {
	l := New[int]()
	for i := 0; i < 3; i++ {
		l.PushBack(i)
	}
	sum := 0
	l.Do(func(v int) { sum += v })
	if sum != 3 {
		t.Fatalf("sum %d, want 3", sum)
	}
}
