// Package list implements a double circular linked list with a sentinel
// node. It mirrors the structure Linux uses for each SCHED_FIFO priority
// level ("Each FIFO queue manages threads using a double circular linked
// list", RT-Seed §IV-B / Fig. 5); the simulated kernel's run queues are
// built on it.
package list

// Node is an element of a List. The zero value is a detached node.
type Node[T any] struct {
	prev, next *Node[T]
	list       *List[T]

	// Value is the payload carried by the node.
	Value T
}

// Next returns the following list node, or nil at the back of the list.
func (n *Node[T]) Next() *Node[T] {
	if n.list == nil {
		return nil
	}
	if nx := n.next; nx != &n.list.root {
		return nx
	}
	return nil
}

// Prev returns the preceding list node, or nil at the front of the list.
func (n *Node[T]) Prev() *Node[T] {
	if n.list == nil {
		return nil
	}
	if pv := n.prev; pv != &n.list.root {
		return pv
	}
	return nil
}

// Attached reports whether the node is currently on a list.
func (n *Node[T]) Attached() bool { return n.list != nil }

// List is a double circular linked list. The zero value is an empty list
// ready to use.
type List[T any] struct {
	root Node[T] // sentinel; root.next is front, root.prev is back
	len  int
}

// New returns an initialized empty list.
func New[T any]() *List[T] {
	l := &List[T]{}
	l.lazyInit()
	return l
}

func (l *List[T]) lazyInit() {
	if l.root.next == nil {
		l.root.next = &l.root
		l.root.prev = &l.root
	}
}

// Len returns the number of elements.
func (l *List[T]) Len() int { return l.len }

// Front returns the first node, or nil if the list is empty.
func (l *List[T]) Front() *Node[T] {
	if l.len == 0 {
		return nil
	}
	return l.root.next
}

// Back returns the last node, or nil if the list is empty.
func (l *List[T]) Back() *Node[T] {
	if l.len == 0 {
		return nil
	}
	return l.root.prev
}

// PushBack appends v and returns its node.
func (l *List[T]) PushBack(v T) *Node[T] {
	n := &Node[T]{Value: v}
	l.PushBackNode(n)
	return n
}

// PushFront prepends v and returns its node.
func (l *List[T]) PushFront(v T) *Node[T] {
	n := &Node[T]{Value: v}
	l.PushFrontNode(n)
	return n
}

// PushBackNode appends an existing detached node. It panics if the node is
// already attached to a list: silently relinking would corrupt both lists.
func (l *List[T]) PushBackNode(n *Node[T]) {
	l.lazyInit()
	if n.list != nil {
		panic("list: node already attached")
	}
	l.insert(n, l.root.prev)
}

// PushFrontNode prepends an existing detached node. It panics if the node is
// already attached to a list.
func (l *List[T]) PushFrontNode(n *Node[T]) {
	l.lazyInit()
	if n.list != nil {
		panic("list: node already attached")
	}
	l.insert(n, &l.root)
}

// insert places n immediately after at.
func (l *List[T]) insert(n, at *Node[T]) {
	n.prev = at
	n.next = at.next
	n.prev.next = n
	n.next.prev = n
	n.list = l
	l.len++
}

// Remove detaches n from the list. It panics if n belongs to a different
// list; removing an already-detached node is a no-op.
func (l *List[T]) Remove(n *Node[T]) {
	if n.list == nil {
		return
	}
	if n.list != l {
		panic("list: node belongs to a different list")
	}
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev = nil
	n.next = nil
	n.list = nil
	l.len--
}

// PopFront removes and returns the first node, or nil if empty.
func (l *List[T]) PopFront() *Node[T] {
	n := l.Front()
	if n != nil {
		l.Remove(n)
	}
	return n
}

// PopBack removes and returns the last node, or nil if empty.
func (l *List[T]) PopBack() *Node[T] {
	n := l.Back()
	if n != nil {
		l.Remove(n)
	}
	return n
}

// Do calls fn for each value in front-to-back order. fn must not modify the
// list during iteration.
func (l *List[T]) Do(fn func(v T)) {
	for n := l.Front(); n != nil; n = n.Next() {
		fn(n.Value)
	}
}

// Values returns a fresh slice of the values in front-to-back order.
func (l *List[T]) Values() []T {
	out := make([]T, 0, l.len)
	l.Do(func(v T) { out = append(out, v) })
	return out
}
