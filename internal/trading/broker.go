package trading

import "fmt"

// Broker simulates the stock company's order endpoint: it fills bid orders
// at the ask and ask orders at the bid (paying the spread), tracks the
// position, marks profit and loss to the mid price, and enforces optional
// risk limits.
type Broker struct {
	// Unit is the quantity traded per order (default 1).
	Unit float64
	// MaxPosition caps |position|; orders that would breach it are
	// rejected (0 disables the cap).
	MaxPosition float64
	// MaxDrawdown halts all trading once equity falls below
	// -MaxDrawdown (0 disables the stop).
	MaxDrawdown float64

	cash     float64
	position float64
	lastMid  float64
	trades   int
	waits    int
	rejected int
	halted   bool
}

// NewBroker returns a flat broker with no risk limits.
func NewBroker() *Broker { return &Broker{Unit: 1} }

// Execute applies a decision at the quoted tick, subject to the risk
// limits. Rejected or halted orders count as rejections, not waits.
func (b *Broker) Execute(d Decision, t Tick) {
	b.lastMid = t.Mid()
	if b.MaxDrawdown > 0 && b.Equity() < -b.MaxDrawdown {
		b.halted = true
	}
	if d.Action != Bid && d.Action != Ask {
		b.waits++
		return
	}
	if b.halted {
		b.rejected++
		return
	}
	next := b.position
	if d.Action == Bid {
		next += b.Unit
	} else {
		next -= b.Unit
	}
	if b.MaxPosition > 0 && abs(next) > b.MaxPosition {
		b.rejected++
		return
	}
	//rtseed:partial-ok non-Bid/Ask actions counted as waits and returned above
	switch d.Action {
	case Bid:
		b.cash -= t.Ask * b.Unit
	case Ask:
		b.cash += t.Bid * b.Unit
	}
	b.position = next
	b.trades++
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Rejected returns how many orders the risk limits blocked.
func (b *Broker) Rejected() int { return b.rejected }

// Halted reports whether the drawdown stop has tripped.
func (b *Broker) Halted() bool { return b.halted }

// Position returns the current signed position.
func (b *Broker) Position() float64 { return b.position }

// Trades returns how many orders were filled.
func (b *Broker) Trades() int { return b.trades }

// Waits returns how many decisions were wait-and-see.
func (b *Broker) Waits() int { return b.waits }

// Equity returns cash plus the position marked to the last mid price.
func (b *Broker) Equity() float64 { return b.cash + b.position*b.lastMid }

// String implements fmt.Stringer.
func (b *Broker) String() string {
	return fmt.Sprintf("broker{trades=%d waits=%d pos=%.0f pnl=%+.5f}",
		b.trades, b.waits, b.position, b.Equity())
}
