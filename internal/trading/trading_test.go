package trading

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestFeedDeterministicAndSane(t *testing.T) {
	a, err := NewFeed(FeedConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewFeed(FeedConfig{Seed: 42})
	for i := 0; i < 500; i++ {
		ta, tb := a.Next(), b.Next()
		if ta != tb {
			t.Fatal("same seed must give the same tick stream")
		}
		if ta.Seq != i {
			t.Fatalf("seq %d, want %d", ta.Seq, i)
		}
		if ta.At != time.Duration(i)*time.Second {
			t.Fatalf("tick %d at %v, want 1s cadence", i, ta.At)
		}
		if ta.Ask <= ta.Bid {
			t.Fatalf("crossed quote: bid=%v ask=%v", ta.Bid, ta.Ask)
		}
		if ta.Mid() <= 0 {
			t.Fatalf("non-positive mid %v", ta.Mid())
		}
	}
}

func TestFeedValidation(t *testing.T) {
	if _, err := NewFeed(FeedConfig{Start: -1}); err == nil {
		t.Fatal("negative start accepted")
	}
	if _, err := NewFeed(FeedConfig{Volatility: -0.1}); err == nil {
		t.Fatal("negative volatility accepted")
	}
}

func TestFeedTake(t *testing.T) {
	f, _ := NewFeed(FeedConfig{Seed: 1})
	ticks := f.Take(10)
	if len(ticks) != 10 || ticks[9].Seq != 9 {
		t.Fatalf("Take(10) = %d ticks, last seq %d", len(ticks), ticks[len(ticks)-1].Seq)
	}
}

// A falling-knife price history makes Bollinger signal buy; a spike makes
// it signal sell.
func TestBollingerDirection(t *testing.T) {
	b := Bollinger{Window: 20, K: 2}
	prices := make([]float64, 30)
	for i := range prices {
		prices[i] = 100
	}
	prices[len(prices)-1] = 90 // crash below the band
	if adv := b.Evaluate(prices, 1); adv.Signal <= 0 {
		t.Fatalf("price below band should be a buy, got %+v", adv)
	}
	prices[len(prices)-1] = 110 // spike above the band
	if adv := b.Evaluate(prices, 1); adv.Signal >= 0 {
		t.Fatalf("price above band should be a sell, got %+v", adv)
	}
}

func TestRSIDirection(t *testing.T) {
	r := RSI{Window: 14}
	up := make([]float64, 20)
	down := make([]float64, 20)
	for i := range up {
		up[i] = 100 + float64(i)
		down[i] = 100 - float64(i)
	}
	if adv := r.Evaluate(up, 1); adv.Signal >= 0 {
		t.Fatalf("straight rally is overbought: want sell, got %+v", adv)
	}
	if adv := r.Evaluate(down, 1); adv.Signal <= 0 {
		t.Fatalf("straight slide is oversold: want buy, got %+v", adv)
	}
}

func TestTrendFollowersDirection(t *testing.T) {
	up := make([]float64, 60)
	for i := range up {
		up[i] = 100 * math.Exp(0.001*float64(i))
	}
	for _, ind := range []Indicator{SMACross{Fast: 5, Slow: 20}, EMACross{Fast: 12, Slow: 26}, MACD{Fast: 12, Slow: 26, Smooth: 9}} {
		if adv := ind.Evaluate(up, 1); adv.Signal <= 0 {
			t.Errorf("%s: uptrend should be a buy, got %+v", ind.Name(), adv)
		}
	}
}

// The anytime contract: confidence never exceeds progress, and zero/partial
// progress degrades gracefully rather than failing.
func TestPropertyAnytimeContract(t *testing.T) {
	indicators := append(DefaultTechnical(),
		Fundamental{Series: SyntheticMacro(50, 10, 7), Trend: 5})
	f := func(seed uint64, progress16 uint16, n8 uint8) bool {
		progress := float64(progress16) / math.MaxUint16
		n := int(n8)%100 + 2
		feed, err := NewFeed(FeedConfig{Seed: seed%1000 + 1})
		if err != nil {
			return false
		}
		prices := make([]float64, n)
		for i, tick := range feed.Take(n) {
			prices[i] = tick.Mid()
		}
		for _, ind := range indicators {
			adv := ind.Evaluate(prices, progress)
			if adv.Signal < -1 || adv.Signal > 1 {
				return false
			}
			if adv.Confidence < 0 || adv.Confidence > progress+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIndicatorDegenerateInputs(t *testing.T) {
	indicators := append(DefaultTechnical(),
		Fundamental{Series: SyntheticMacro(10, 10, 7), Trend: 5})
	cases := [][]float64{nil, {}, {1}, {1, 1}, {0, 0, 0}}
	for _, ind := range indicators {
		for _, prices := range cases {
			adv := ind.Evaluate(prices, 1)
			if math.IsNaN(adv.Signal) || math.IsInf(adv.Signal, 0) {
				t.Errorf("%s: NaN/Inf on %v", ind.Name(), prices)
			}
		}
		if ind.Name() == "" || ind.MinHistory() < 1 {
			t.Errorf("%s: bad metadata", ind.Name())
		}
	}
}

func TestMacroSeriesAt(t *testing.T) {
	m := MacroSeries{Values: []float64{1, 2, 3}, TicksPerValue: 10}
	if m.At(0) != 1 || m.At(9) != 1 || m.At(10) != 2 || m.At(25) != 3 || m.At(999) != 3 {
		t.Fatal("macro indexing broken")
	}
	var empty MacroSeries
	if empty.At(5) != 0 {
		t.Fatal("empty series should read 0")
	}
}

func TestDecisionEngine(t *testing.T) {
	e := NewEngine()
	buy := e.Decide([]Advice{{Signal: 1, Confidence: 1}, {Signal: 0.8, Confidence: 0.5}})
	if buy.Action != Bid {
		t.Fatalf("strong positive advice should bid, got %v", buy)
	}
	sell := e.Decide([]Advice{{Signal: -1, Confidence: 1}})
	if sell.Action != Ask {
		t.Fatalf("strong negative advice should ask, got %v", sell)
	}
	wait := e.Decide([]Advice{{Signal: 0.05, Confidence: 1}})
	if wait.Action != Wait {
		t.Fatalf("weak advice should wait, got %v", wait)
	}
	// Low-QoS jobs (all parts discarded) always wait: the wind-up part
	// still produces a correct, conservative decision.
	lowQoS := e.Decide([]Advice{{Signal: 1, Confidence: 0.01}})
	if lowQoS.Action != Wait {
		t.Fatalf("low-QoS advice should wait, got %v", lowQoS)
	}
	if none := e.Decide(nil); none.Action != Wait {
		t.Fatalf("no advice should wait, got %v", none)
	}
}

func TestBrokerAccounting(t *testing.T) {
	b := NewBroker()
	tick := Tick{Bid: 1.0999, Ask: 1.1001}
	b.Execute(Decision{Action: Bid}, tick)
	if b.Position() != 1 || b.Trades() != 1 {
		t.Fatalf("broker %v", b)
	}
	// Buying at the ask and marking to mid costs half the spread.
	if pnl := b.Equity(); math.Abs(pnl-(-0.0001)) > 1e-9 {
		t.Fatalf("pnl %v, want -0.0001 (half spread)", pnl)
	}
	b.Execute(Decision{Action: Ask}, tick)
	if b.Position() != 0 {
		t.Fatalf("round trip should flatten, position %v", b.Position())
	}
	if pnl := b.Equity(); math.Abs(pnl-(-0.0002)) > 1e-9 {
		t.Fatalf("round-trip pnl %v, want -spread", pnl)
	}
	b.Execute(Decision{Action: Wait}, tick)
	if b.Waits() != 1 {
		t.Fatalf("waits %d, want 1", b.Waits())
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	feed, _ := NewFeed(FeedConfig{Seed: 9, Volatility: 0.002})
	inds := DefaultTechnical()
	p, err := NewPipeline(feed, inds, NewEngine(), NewBroker(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumOptional() != len(inds) {
		t.Fatalf("NumOptional %d, want %d", p.NumOptional(), len(inds))
	}
	const jobs = 100
	for job := 0; job < jobs; job++ {
		p.OnMandatory(job)
		for k := 0; k < p.NumOptional(); k++ {
			p.OnOptional(job, k, 1.0)
		}
		p.OnWindup(job, nil)
	}
	if len(p.Decisions()) != jobs {
		t.Fatalf("%d decisions, want %d", len(p.Decisions()), jobs)
	}
	if p.MeanQoS() <= 0 {
		t.Fatal("full-progress runs should have positive QoS")
	}
	if p.Broker().Trades()+p.Broker().Waits() != jobs {
		t.Fatal("every decision must reach the broker")
	}
}

// QoS monotonicity at the pipeline level: full-progress evaluation yields
// at least the decision confidence of heavily-terminated evaluation.
func TestPipelineQoSImprovesWithProgress(t *testing.T) {
	runWith := func(progress float64) float64 {
		feed, _ := NewFeed(FeedConfig{Seed: 11, Volatility: 0.002})
		p, err := NewPipeline(feed, DefaultTechnical(), NewEngine(), NewBroker(), 0)
		if err != nil {
			t.Fatal(err)
		}
		for job := 0; job < 60; job++ {
			p.OnMandatory(job)
			for k := 0; k < p.NumOptional(); k++ {
				p.OnOptional(job, k, progress)
			}
			p.OnWindup(job, nil)
		}
		return p.MeanQoS()
	}
	low, high := runWith(0.1), runWith(1.0)
	if high <= low {
		t.Fatalf("QoS should improve with progress: low=%v high=%v", low, high)
	}
}

func TestPipelineValidation(t *testing.T) {
	feed, _ := NewFeed(FeedConfig{})
	if _, err := NewPipeline(nil, DefaultTechnical(), NewEngine(), NewBroker(), 0); err == nil {
		t.Fatal("nil feed accepted")
	}
	if _, err := NewPipeline(feed, nil, NewEngine(), NewBroker(), 0); err == nil {
		t.Fatal("no indicators accepted")
	}
}

func TestActionStrings(t *testing.T) {
	for _, a := range []Action{Wait, Bid, Ask} {
		if a.String() == "unknown-action" {
			t.Fatalf("action %d missing label", a)
		}
	}
}

func TestBrokerPositionLimit(t *testing.T) {
	b := NewBroker()
	b.MaxPosition = 2
	tick := Tick{Bid: 1.0, Ask: 1.0002}
	for i := 0; i < 5; i++ {
		b.Execute(Decision{Action: Bid}, tick)
	}
	if b.Position() != 2 {
		t.Fatalf("position %v, want capped at 2", b.Position())
	}
	if b.Rejected() != 3 {
		t.Fatalf("rejected %d, want 3", b.Rejected())
	}
	// Reducing the position is always allowed.
	b.Execute(Decision{Action: Ask}, tick)
	if b.Position() != 1 {
		t.Fatalf("position %v after reduce, want 1", b.Position())
	}
}

func TestBrokerDrawdownStop(t *testing.T) {
	b := NewBroker()
	b.MaxDrawdown = 0.0001
	// Pay the spread repeatedly until equity < -0.0001.
	wide := Tick{Bid: 1.0, Ask: 1.001}
	b.Execute(Decision{Action: Bid}, wide)
	b.Execute(Decision{Action: Ask}, wide) // round trip loses the spread
	// Next order trips the stop check.
	b.Execute(Decision{Action: Bid}, wide)
	if !b.Halted() {
		t.Fatalf("drawdown stop should have tripped, equity %v", b.Equity())
	}
	trades := b.Trades()
	b.Execute(Decision{Action: Bid}, wide)
	if b.Trades() != trades {
		t.Fatal("halted broker must not trade")
	}
	if b.Rejected() == 0 {
		t.Fatal("halted orders must count as rejections")
	}
}

func TestStochasticDirection(t *testing.T) {
	s := Stochastic{Window: 14}
	prices := make([]float64, 20)
	for i := range prices {
		prices[i] = 100 + float64(i%10)
	}
	prices[len(prices)-1] = 95 // bottom of the range -> oversold -> buy
	if adv := s.Evaluate(prices, 1); adv.Signal <= 0 {
		t.Fatalf("bottom of range should be a buy, got %+v", adv)
	}
	prices[len(prices)-1] = 115 // top of the range -> overbought -> sell
	if adv := s.Evaluate(prices, 1); adv.Signal >= 0 {
		t.Fatalf("top of range should be a sell, got %+v", adv)
	}
	flat := []float64{100, 100, 100}
	if adv := s.Evaluate(flat, 1); adv.Confidence != 0 {
		t.Fatalf("flat range has no information, got %+v", adv)
	}
}

func TestMomentumDirection(t *testing.T) {
	m := Momentum{Window: 10}
	up := make([]float64, 20)
	down := make([]float64, 20)
	for i := range up {
		up[i] = 100 + float64(i)
		down[i] = 100 - float64(i)*2
	}
	if adv := m.Evaluate(up, 1); adv.Signal <= 0 {
		t.Fatalf("rising momentum should be a buy, got %+v", adv)
	}
	if adv := m.Evaluate(down, 1); adv.Signal >= 0 {
		t.Fatalf("falling momentum should be a sell, got %+v", adv)
	}
}

func TestExtendedTechnicalContract(t *testing.T) {
	inds := ExtendedTechnical()
	if len(inds) != len(DefaultTechnical())+2 {
		t.Fatalf("%d extended indicators", len(inds))
	}
	feed, _ := NewFeed(FeedConfig{Seed: 3})
	prices := make([]float64, 60)
	for i, tick := range feed.Take(60) {
		prices[i] = tick.Mid()
	}
	for _, ind := range inds {
		for _, progress := range []float64{0, 0.3, 1} {
			adv := ind.Evaluate(prices, progress)
			if adv.Signal < -1 || adv.Signal > 1 {
				t.Errorf("%s: signal %v out of range", ind.Name(), adv.Signal)
			}
			if adv.Confidence < 0 || adv.Confidence > progress+1e-9 {
				t.Errorf("%s: confidence %v exceeds progress %v", ind.Name(), adv.Confidence, progress)
			}
		}
	}
}
