package trading

import (
	"fmt"
	"math"
)

// Metrics summarizes a trading run from its equity curve and decisions.
type Metrics struct {
	// FinalPnL is the last equity value.
	FinalPnL float64
	// MaxDrawdown is the largest peak-to-trough equity fall (>= 0).
	MaxDrawdown float64
	// Sharpe is the annualized-free Sharpe ratio of per-step equity
	// changes (mean/σ, 0 when σ is 0).
	Sharpe float64
	// HitRate is the fraction of closed round turns with positive PnL
	// contribution, approximated per equity step while in position.
	HitRate float64
	// Trades and Waits count the decisions.
	Trades, Waits int
}

// ComputeMetrics derives Metrics from an equity curve (one sample per job)
// and the decision history.
func ComputeMetrics(equity []float64, decisions []Decision) Metrics {
	var m Metrics
	for _, d := range decisions {
		if d.Action == Wait {
			m.Waits++
		} else {
			m.Trades++
		}
	}
	if len(equity) == 0 {
		return m
	}
	m.FinalPnL = equity[len(equity)-1]
	peak := equity[0]
	for _, e := range equity {
		if e > peak {
			peak = e
		}
		if dd := peak - e; dd > m.MaxDrawdown {
			m.MaxDrawdown = dd
		}
	}
	if len(equity) < 2 {
		return m
	}
	diffs := make([]float64, 0, len(equity)-1)
	wins, moves := 0, 0
	for i := 1; i < len(equity); i++ {
		d := equity[i] - equity[i-1]
		diffs = append(diffs, d)
		if d != 0 {
			moves++
			if d > 0 {
				wins++
			}
		}
	}
	mean := 0.0
	for _, d := range diffs {
		mean += d
	}
	mean /= float64(len(diffs))
	variance := 0.0
	for _, d := range diffs {
		variance += (d - mean) * (d - mean)
	}
	variance /= float64(len(diffs))
	if sd := math.Sqrt(variance); sd > 0 {
		m.Sharpe = mean / sd
	}
	if moves > 0 {
		m.HitRate = float64(wins) / float64(moves)
	}
	return m
}

// String implements fmt.Stringer.
func (m Metrics) String() string {
	return fmt.Sprintf("pnl=%+.5f maxDD=%.5f sharpe=%.3f hit=%.2f trades=%d waits=%d",
		m.FinalPnL, m.MaxDrawdown, m.Sharpe, m.HitRate, m.Trades, m.Waits)
}
