package trading

import (
	"net"
	"strings"
	"testing"
	"time"
)

func TestNetFeedOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	feed, _ := NewFeed(FeedConfig{Seed: 21})
	ref, _ := NewFeed(FeedConfig{Seed: 21})
	srv := NewFeedServer(feed)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln, 50) }()

	client, err := DialFeed(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	ticks, err := client.Take(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 50 {
		t.Fatalf("%d ticks", len(ticks))
	}
	want := ref.Take(50)
	for i := range ticks {
		if ticks[i] != want[i] {
			t.Fatalf("tick %d: %+v over the wire, want %+v", i, ticks[i], want[i])
		}
	}
	client.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestNetFeedPipelineIntegration(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	feed, _ := NewFeed(FeedConfig{Seed: 5, Volatility: 0.002})
	srv := NewFeedServer(feed)
	go srv.Serve(ln, 60)
	defer srv.Close()

	client, err := DialFeed(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Drive the pipeline's price history from the network instead of the
	// in-process feed: a local dummy feed supplies the pipeline object, but
	// prices come off the wire.
	dummy, _ := NewFeed(FeedConfig{Seed: 1})
	p, err := NewPipeline(dummy, DefaultTechnical(), NewEngine(), NewBroker(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ticks, err := client.Take(60)
	if err != nil {
		t.Fatal(err)
	}
	for job, tick := range ticks {
		p.prices = append(p.prices, tick.Mid())
		p.ticks = append(p.ticks, tick)
		for k := 0; k < p.NumOptional(); k++ {
			p.OnOptional(job, k, 1)
		}
		p.OnWindup(job, nil)
	}
	if len(p.Decisions()) != 60 {
		t.Fatalf("%d decisions", len(p.Decisions()))
	}
}

func TestNetFeedRejectsCrossedQuote(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	go func() {
		a.Write([]byte(`{"seq":0,"atNs":0,"bid":1.2,"ask":1.1}` + "\n"))
	}()
	nf := NewNetFeed(b)
	defer nf.Close()
	if _, err := nf.Next(); err == nil || !strings.Contains(err.Error(), "crossed") {
		t.Fatalf("crossed quote accepted: %v", err)
	}
}

func TestNetFeedEOF(t *testing.T) {
	a, b := net.Pipe()
	nf := NewNetFeed(b)
	go a.Close()
	deadline := time.After(2 * time.Second)
	errc := make(chan error, 1)
	go func() {
		_, err := nf.Next()
		errc <- err
	}()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("EOF should error")
		}
	case <-deadline:
		t.Fatal("Next hung on closed connection")
	}
}

func TestServeAfterCloseErrors(t *testing.T) {
	feed, _ := NewFeed(FeedConfig{Seed: 1})
	srv := NewFeedServer(feed)
	srv.Close()
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln.Close()
	if err := srv.Serve(ln, 1); err == nil {
		t.Fatal("serve after close accepted")
	}
}
