package trading

import "fmt"

// Pipeline is the end-to-end real-time trading application of the paper's
// motivation (§II-A), shaped to plug into the RT-Seed middleware callbacks:
//
//	mandatory part — OnMandatory ingests the next exchange-rate tick;
//	parallel optional part k — OnOptional runs indicator k with the
//	progress its optional part achieved before the optional deadline;
//	wind-up part — OnWindup aggregates the advice into a decision and
//	sends the order (or waits).
//
// The pipeline itself is middleware-agnostic: the callbacks can also be
// driven by the wall-clock runtime or called directly in tests.
type Pipeline struct {
	source     Source
	indicators []Indicator
	engine     *Engine
	broker     *Broker

	prices    []float64
	advice    []Advice
	ticks     []Tick
	decisions []Decision
	equity    []float64
	history   int

	sourceErrors int
}

// Source supplies ticks to a pipeline: the in-process Feed (via
// NewPipeline), a NetFeed, or anything else that can produce the next
// quote.
type Source interface {
	// NextTick returns the next quote. An error marks the source as
	// degraded: the pipeline reuses the last known tick for that job.
	NextTick() (Tick, error)
}

// NewPipeline wires a feed, an indicator battery, a decision engine and a
// broker together. history bounds the retained price window (0 means the
// largest indicator MinHistory, doubled).
func NewPipeline(feed *Feed, indicators []Indicator, engine *Engine, broker *Broker, history int) (*Pipeline, error) {
	if feed == nil {
		return nil, fmt.Errorf("trading: pipeline needs a feed")
	}
	return NewPipelineFrom(feedSource{feed}, indicators, engine, broker, history)
}

// feedSource adapts the in-process generator to the Source interface.
type feedSource struct{ f *Feed }

func (s feedSource) NextTick() (Tick, error) { return s.f.Next(), nil }

// NewPipelineFrom is NewPipeline for an arbitrary tick source (e.g. a
// NetFeed dialled to a remote quote server).
func NewPipelineFrom(source Source, indicators []Indicator, engine *Engine, broker *Broker, history int) (*Pipeline, error) {
	if source == nil || engine == nil || broker == nil {
		return nil, fmt.Errorf("trading: pipeline needs a source, engine and broker")
	}
	if len(indicators) == 0 {
		return nil, fmt.Errorf("trading: pipeline needs at least one indicator")
	}
	if history == 0 {
		for _, ind := range indicators {
			if h := ind.MinHistory() * 2; h > history {
				history = h
			}
		}
	}
	return &Pipeline{
		source:     source,
		indicators: indicators,
		engine:     engine,
		broker:     broker,
		advice:     make([]Advice, len(indicators)),
		history:    history,
	}, nil
}

// NumOptional returns the number of parallel optional parts the pipeline
// needs: one per indicator.
func (p *Pipeline) NumOptional() int { return len(p.indicators) }

// OnMandatory is the mandatory part's application work: ingest the tick.
// When the source errors (a dropped connection), the pipeline degrades by
// reusing the last tick; SourceErrors counts the incidents.
func (p *Pipeline) OnMandatory(job int) {
	t, err := p.source.NextTick()
	if err != nil {
		p.sourceErrors++
		if len(p.ticks) == 0 {
			return // nothing to degrade to yet
		}
		t = p.ticks[len(p.ticks)-1]
	}
	p.ticks = append(p.ticks, t)
	p.prices = append(p.prices, t.Mid())
	if len(p.prices) > p.history {
		p.prices = p.prices[len(p.prices)-p.history:]
	}
	// Reset the advice vector: parts that are discarded this job
	// contribute nothing.
	for i := range p.advice {
		p.advice[i] = Advice{}
	}
}

// OnOptional is parallel optional part k's application work: evaluate
// indicator k at the achieved progress.
func (p *Pipeline) OnOptional(job, k int, progress float64) {
	if k < 0 || k >= len(p.indicators) {
		return
	}
	p.advice[k] = p.indicators[k].Evaluate(p.prices, progress)
}

// OnWindup is the wind-up part's application work: decide and execute.
func (p *Pipeline) OnWindup(job int, progress []float64) {
	d := p.engine.Decide(p.advice)
	p.decisions = append(p.decisions, d)
	if len(p.ticks) > 0 {
		p.broker.Execute(d, p.ticks[len(p.ticks)-1])
	}
	p.equity = append(p.equity, p.broker.Equity())
}

// Decisions returns the decision history.
func (p *Pipeline) Decisions() []Decision {
	out := make([]Decision, len(p.decisions))
	copy(out, p.decisions)
	return out
}

// MeanQoS returns the mean decision QoS so far.
func (p *Pipeline) MeanQoS() float64 {
	if len(p.decisions) == 0 {
		return 0
	}
	sum := 0.0
	for _, d := range p.decisions {
		sum += d.QoS
	}
	return sum / float64(len(p.decisions))
}

// Broker returns the pipeline's broker.
func (p *Pipeline) Broker() *Broker { return p.broker }

// EquityCurve returns the mark-to-mid equity after each job.
func (p *Pipeline) EquityCurve() []float64 {
	out := make([]float64, len(p.equity))
	copy(out, p.equity)
	return out
}

// Metrics summarizes the run so far.
func (p *Pipeline) Metrics() Metrics {
	return ComputeMetrics(p.equity, p.decisions)
}

// SourceErrors counts ticks the source failed to deliver (the pipeline
// degraded to the previous quote).
func (p *Pipeline) SourceErrors() int { return p.sourceErrors }
