package trading

import "fmt"

// Stochastic is the stochastic oscillator %K over a window of closes: the
// position of the last price within the window's range. Above 80 is
// overbought (sell), below 20 oversold (buy).
type Stochastic struct {
	Window int
}

// Name implements Indicator.
func (s Stochastic) Name() string { return fmt.Sprintf("stochastic(%d)", s.Window) }

// MinHistory implements Indicator.
func (s Stochastic) MinHistory() int { return s.Window }

// Evaluate implements Indicator.
func (s Stochastic) Evaluate(prices []float64, progress float64) Advice {
	if s.Window < 2 || len(prices) < 2 {
		return Advice{}
	}
	n := effective(s.Window, progress)
	window := tail(prices, n)
	lo, hi := window[0], window[0]
	for _, p := range window {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	if hi == lo {
		return Advice{Confidence: 0}
	}
	k := (prices[len(prices)-1] - lo) / (hi - lo) // %K in [0,1]
	// Map %K to a signal: 0 (bottom of range) -> +1 buy, 1 -> -1 sell.
	return Advice{
		Signal:     clamp(1-2*k, -1, 1),
		Confidence: clamp(progress, 0, 1),
	}
}

// Momentum is the n-period rate of change: positive momentum signals buy.
type Momentum struct {
	Window int
}

// Name implements Indicator.
func (m Momentum) Name() string { return fmt.Sprintf("momentum(%d)", m.Window) }

// MinHistory implements Indicator.
func (m Momentum) MinHistory() int { return m.Window + 1 }

// Evaluate implements Indicator.
func (m Momentum) Evaluate(prices []float64, progress float64) Advice {
	if m.Window < 1 || len(prices) < 2 {
		return Advice{}
	}
	n := effective(m.Window, progress)
	if n >= len(prices) {
		n = len(prices) - 1
	}
	last := prices[len(prices)-1]
	ref := prices[len(prices)-1-n]
	if ref == 0 {
		return Advice{}
	}
	roc := (last - ref) / ref
	return Advice{
		Signal:     clamp(roc*1000, -1, 1),
		Confidence: clamp(progress, 0, 1),
	}
}

var (
	_ Indicator = Stochastic{}
	_ Indicator = Momentum{}
)

// ExtendedTechnical returns the default battery plus the stochastic
// oscillator and momentum indicators.
func ExtendedTechnical() []Indicator {
	return append(DefaultTechnical(),
		Stochastic{Window: 14},
		Momentum{Window: 10},
	)
}
