package trading

import (
	"fmt"
	"math"

	"rtseed/internal/engine"
)

// MacroSeries is a synthetic macroeconomic series (e.g. a GDP growth
// estimate, the paper's fundamental-analysis example in §II-A): a slowly
// varying signal sampled much less often than the price feed.
type MacroSeries struct {
	// Values are the period-by-period readings.
	Values []float64
	// TicksPerValue is how many price ticks elapse per macro reading.
	TicksPerValue int
}

// SyntheticMacro generates n readings of a smooth mean-reverting series.
func SyntheticMacro(n, ticksPerValue int, seed uint64) MacroSeries {
	rng := engine.NewRand(seed)
	vals := make([]float64, n)
	v := 0.0
	for i := range vals {
		// Mean-reverting walk in roughly [-3, 3] "growth percent" units.
		v = 0.95*v + 0.3*rng.NormFloat64()
		vals[i] = v
	}
	return MacroSeries{Values: vals, TicksPerValue: ticksPerValue}
}

// At returns the reading in effect at tick seq (the latest published one).
func (m MacroSeries) At(seq int) float64 {
	if len(m.Values) == 0 {
		return 0
	}
	i := 0
	if m.TicksPerValue > 0 {
		i = seq / m.TicksPerValue
	}
	if i >= len(m.Values) {
		i = len(m.Values) - 1
	}
	if i < 0 {
		i = 0
	}
	return m.Values[i]
}

// Fundamental scores macro readings against their recent trend: improving
// fundamentals signal buy. It is anytime in the number of readings the
// trend uses.
type Fundamental struct {
	// Series is the macro input.
	Series MacroSeries
	// Trend is how many readings the full evaluation compares (>= 2).
	Trend int
}

// Name implements Indicator.
func (f Fundamental) Name() string { return fmt.Sprintf("fundamental(%d)", f.Trend) }

// MinHistory implements Indicator. The fundamental analyzer keys off the
// tick count, not the price history, so any non-empty history suffices.
func (f Fundamental) MinHistory() int { return 1 }

// Evaluate implements Indicator. The tick sequence is inferred from the
// length of the price history (one price per tick from feed start).
func (f Fundamental) Evaluate(prices []float64, progress float64) Advice {
	if f.Trend < 2 || len(prices) == 0 || len(f.Series.Values) == 0 {
		return Advice{}
	}
	seq := len(prices) - 1
	latest := f.Series.At(seq)
	n := effective(f.Trend, progress)
	// Average of the n readings preceding the latest one.
	var sum float64
	count := 0
	for i := 1; i <= n; i++ {
		back := seq - i*max(1, f.Series.TicksPerValue)
		if back < 0 {
			break
		}
		sum += f.Series.At(back)
		count++
	}
	if count == 0 {
		return Advice{Confidence: 0}
	}
	trend := latest - sum/float64(count)
	return Advice{
		Signal:     clamp(math.Tanh(trend), -1, 1),
		Confidence: clamp(progress, 0, 1),
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

var _ Indicator = Fundamental{}
