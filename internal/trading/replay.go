package trading

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// ReplayFeed replays a recorded tick history — the bridge from the
// synthetic generator to real market data. It implements Source, so the
// pipeline consumes it exactly like the generator or the network feed.
type ReplayFeed struct {
	ticks []Tick
	next  int
	// Loop restarts the history when it is exhausted instead of erroring.
	Loop bool
}

// NewReplayFeed wraps a tick history.
func NewReplayFeed(ticks []Tick) (*ReplayFeed, error) {
	if len(ticks) == 0 {
		return nil, fmt.Errorf("trading: replay feed needs at least one tick")
	}
	out := make([]Tick, len(ticks))
	copy(out, ticks)
	return &ReplayFeed{ticks: out}, nil
}

// NextTick implements Source.
func (f *ReplayFeed) NextTick() (Tick, error) {
	if f.next >= len(f.ticks) {
		if !f.Loop {
			return Tick{}, io.EOF
		}
		f.next = 0
	}
	t := f.ticks[f.next]
	f.next++
	return t, nil
}

// Len returns the number of recorded ticks.
func (f *ReplayFeed) Len() int { return len(f.ticks) }

// ReadCSV parses a tick history in the format
//
//	seq,at_ns,bid,ask
//
// with an optional header row (detected by a non-numeric first field).
func ReadCSV(r io.Reader) ([]Tick, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	var out []Tick
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trading: csv row %d: %w", row, err)
		}
		row++
		seq, err := strconv.Atoi(rec[0])
		if err != nil {
			if row == 1 {
				continue // header
			}
			return nil, fmt.Errorf("trading: csv row %d: seq: %w", row, err)
		}
		atNs, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trading: csv row %d: at_ns: %w", row, err)
		}
		bid, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trading: csv row %d: bid: %w", row, err)
		}
		ask, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trading: csv row %d: ask: %w", row, err)
		}
		if ask <= bid {
			return nil, fmt.Errorf("trading: csv row %d: crossed quote", row)
		}
		out = append(out, Tick{Seq: seq, At: time.Duration(atNs), Bid: bid, Ask: ask})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("trading: csv contains no ticks")
	}
	return out, nil
}

// WriteCSV writes a tick history in the ReadCSV format, with a header.
func WriteCSV(w io.Writer, ticks []Tick) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seq", "at_ns", "bid", "ask"}); err != nil {
		return err
	}
	for _, t := range ticks {
		rec := []string{
			strconv.Itoa(t.Seq),
			strconv.FormatInt(int64(t.At), 10),
			strconv.FormatFloat(t.Bid, 'f', -1, 64),
			strconv.FormatFloat(t.Ask, 'f', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

var _ Source = (*ReplayFeed)(nil)
