package trading

import (
	"io"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	feed, _ := NewFeed(FeedConfig{Seed: 13})
	orig := feed.Take(25)
	var b strings.Builder
	if err := WriteCSV(&b, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("%d ticks, want %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i] != orig[i] {
			t.Fatalf("tick %d: %+v vs %+v", i, got[i], orig[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"seq,at_ns,bid,ask\n",                  // header only
		"0,0,1.2,1.1\n",                        // crossed
		"x,y\n",                                // wrong field count
		"0,zz,1.0,1.1\n",                       // bad at_ns
		"0,0,zz,1.1\n",                         // bad bid
		"0,0,1.0,zz\n",                         // bad ask
		"seq,at_ns,bid,ask\n1,notanum,1.0,1.1", // bad row after header
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestReplayFeed(t *testing.T) {
	feed, _ := NewFeed(FeedConfig{Seed: 3})
	ticks := feed.Take(5)
	rf, err := NewReplayFeed(ticks)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Len() != 5 {
		t.Fatalf("len %d", rf.Len())
	}
	for i := 0; i < 5; i++ {
		got, err := rf.NextTick()
		if err != nil || got != ticks[i] {
			t.Fatalf("tick %d: %+v, %v", i, got, err)
		}
	}
	if _, err := rf.NextTick(); err != io.EOF {
		t.Fatalf("exhausted replay should return EOF, got %v", err)
	}
	// Looping replay wraps around.
	rf2, _ := NewReplayFeed(ticks)
	rf2.Loop = true
	for i := 0; i < 12; i++ {
		got, err := rf2.NextTick()
		if err != nil || got != ticks[i%5] {
			t.Fatalf("loop tick %d: %+v, %v", i, got, err)
		}
	}
	if _, err := NewReplayFeed(nil); err == nil {
		t.Fatal("empty replay accepted")
	}
}

func TestReplayFeedDrivesPipeline(t *testing.T) {
	feed, _ := NewFeed(FeedConfig{Seed: 3, Volatility: 0.002})
	rf, err := NewReplayFeed(feed.Take(60))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipelineFrom(rf, DefaultTechnical(), NewEngine(), NewBroker(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for job := 0; job < 60; job++ {
		p.OnMandatory(job)
		for k := 0; k < p.NumOptional(); k++ {
			p.OnOptional(job, k, 1)
		}
		p.OnWindup(job, nil)
	}
	if len(p.Decisions()) != 60 || p.SourceErrors() != 0 {
		t.Fatalf("decisions %d, source errors %d", len(p.Decisions()), p.SourceErrors())
	}
	// Exhausted replay degrades gracefully.
	p.OnMandatory(60)
	if p.SourceErrors() != 1 {
		t.Fatalf("expected a source error after exhaustion, got %d", p.SourceErrors())
	}
}
