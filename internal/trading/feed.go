// Package trading implements the real-time trading substrate the paper
// motivates RT-Seed with (§I, §II-A): a market-data feed (the mandatory
// part's input), anytime technical and fundamental analyses (the parallel
// optional parts), and a decision engine plus broker (the wind-up part).
// The feed is a deterministic synthetic substitute for the OANDA Japan
// stream the paper uses — same 1 tick/second rate, same pipeline shape;
// see DESIGN.md §2.
package trading

import (
	"fmt"
	"math"
	"time"

	"rtseed/internal/engine"
)

// Tick is one exchange-rate quote.
type Tick struct {
	// Seq is the tick's sequence number, starting at 0.
	Seq int
	// At is the tick's timestamp since feed start.
	At time.Duration
	// Bid and Ask are the two-way quote; Ask > Bid.
	Bid, Ask float64
}

// Mid returns the mid price.
func (t Tick) Mid() float64 { return (t.Bid + t.Ask) / 2 }

// Spread returns the quoted spread.
func (t Tick) Spread() float64 { return t.Ask - t.Bid }

// FeedConfig parameterizes the synthetic EUR/USD generator.
type FeedConfig struct {
	// Start is the initial mid price (default 1.1000, a EUR/USD level).
	Start float64
	// Interval is the tick interval (default 1s — "this company usually
	// provides 1 exchange rate per second", §V-A).
	Interval time.Duration
	// Volatility is the per-tick log-return standard deviation
	// (default 0.0002).
	Volatility float64
	// Drift is the per-tick log-return drift (default 0).
	Drift float64
	// Spread is the quoted spread (default 0.0001, one pip).
	Spread float64
	// RegimeEvery flips the drift sign every this many ticks to create
	// trending and mean-reverting phases (default 500; 0 disables).
	RegimeEvery int
	// Seed seeds the generator.
	Seed uint64
}

func (c *FeedConfig) fillDefaults() {
	if c.Start == 0 {
		c.Start = 1.1
	}
	if c.Interval == 0 {
		c.Interval = time.Second
	}
	if c.Volatility == 0 {
		c.Volatility = 0.0002
	}
	if c.Spread == 0 {
		c.Spread = 0.0001
	}
	if c.RegimeEvery == 0 {
		c.RegimeEvery = 500
	}
	if c.Seed == 0 {
		c.Seed = 0xfeed
	}
}

// Feed is a deterministic geometric-Brownian-motion quote generator with
// drift regimes.
type Feed struct {
	cfg  FeedConfig
	rng  *engine.Rand
	mid  float64
	seq  int
	sign float64
}

// NewFeed builds a feed. It returns an error for nonsensical parameters.
func NewFeed(cfg FeedConfig) (*Feed, error) {
	cfg.fillDefaults()
	if cfg.Start <= 0 || cfg.Volatility < 0 || cfg.Spread < 0 || cfg.Interval <= 0 {
		return nil, fmt.Errorf("trading: invalid feed config %+v", cfg)
	}
	return &Feed{cfg: cfg, rng: engine.NewRand(cfg.Seed), mid: cfg.Start, sign: 1}, nil
}

// Next returns the next tick.
func (f *Feed) Next() Tick {
	if f.cfg.RegimeEvery > 0 && f.seq > 0 && f.seq%f.cfg.RegimeEvery == 0 {
		f.sign = -f.sign
	}
	ret := f.cfg.Drift*f.sign + f.cfg.Volatility*f.rng.NormFloat64()
	f.mid *= math.Exp(ret)
	t := Tick{
		Seq: f.seq,
		At:  time.Duration(f.seq) * f.cfg.Interval,
		Bid: f.mid - f.cfg.Spread/2,
		Ask: f.mid + f.cfg.Spread/2,
	}
	f.seq++
	return t
}

// Take returns the next n ticks.
func (f *Feed) Take(n int) []Tick {
	out := make([]Tick, n)
	for i := range out {
		out[i] = f.Next()
	}
	return out
}

// NextTick implements Source: the generator never errors.
func (f *Feed) NextTick() (Tick, error) { return f.Next(), nil }

var _ Source = (*Feed)(nil)
