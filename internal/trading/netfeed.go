package trading

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// The paper's mandatory part "obtains exchange data (e.g., EUR/USD) from a
// stock company" (§II-A) — a network ingest. FeedServer streams ticks as
// newline-delimited JSON over TCP, and NetFeed consumes them, so the
// trading pipeline can run against a remote quote source exactly as it runs
// against the in-process generator.

// FeedServer serves a tick Source to every connecting client — the
// in-process generator, a recorded replay, or any other Source. Each client
// receives the stream from its connection time onward.
type FeedServer struct {
	src Source

	mu      sync.Mutex
	ln      net.Listener
	closed  bool
	clients map[net.Conn]struct{}
	wg      sync.WaitGroup
}

// NewFeedServer wraps a tick source for serving.
func NewFeedServer(src Source) *FeedServer {
	return &FeedServer{src: src, clients: make(map[net.Conn]struct{})}
}

// Serve accepts clients on ln until Close is called. Each accepted client
// is handled on its own goroutine: it receives `count` ticks (the shared
// feed is advanced under the server lock so concurrent clients see a
// disjoint partition of the stream — suitable for tests and demos; a
// production server would fan the same stream out).
func (s *FeedServer) Serve(ln net.Listener, count int) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("trading: feed server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("feed server accept: %w", err)
		}
		s.mu.Lock()
		s.clients[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.stream(conn, count)
			s.mu.Lock()
			delete(s.clients, conn)
			s.mu.Unlock()
		}()
	}
}

// stream writes count ticks to the connection as JSON lines.
func (s *FeedServer) stream(w io.Writer, count int) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := 0; i < count; i++ {
		s.mu.Lock()
		t, err := s.src.NextTick()
		s.mu.Unlock()
		if err != nil {
			// Source exhausted (e.g. a finite replay): end the stream.
			return
		}
		if enc.Encode(tickWire{Seq: t.Seq, AtNs: int64(t.At), Bid: t.Bid, Ask: t.Ask}) != nil {
			return
		}
		if bw.Flush() != nil {
			return
		}
	}
}

// Close stops accepting and disconnects all clients.
func (s *FeedServer) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for conn := range s.clients {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// tickWire is the on-the-wire form of a Tick.
type tickWire struct {
	Seq  int     `json:"seq"`
	AtNs int64   `json:"atNs"`
	Bid  float64 `json:"bid"`
	Ask  float64 `json:"ask"`
}

// NetFeed reads ticks from a feed server connection. It satisfies the same
// Next/Take shape as Feed, so the pipeline's mandatory part can ingest from
// either.
type NetFeed struct {
	conn net.Conn
	dec  *json.Decoder
}

// DialFeed connects to a feed server.
func DialFeed(addr string) (*NetFeed, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial feed: %w", err)
	}
	return NewNetFeed(conn), nil
}

// NewNetFeed wraps an established connection (e.g. one side of net.Pipe in
// tests).
func NewNetFeed(conn net.Conn) *NetFeed {
	return &NetFeed{conn: conn, dec: json.NewDecoder(bufio.NewReader(conn))}
}

// Next reads the next tick, blocking until one arrives.
func (f *NetFeed) Next() (Tick, error) {
	var w tickWire
	if err := f.dec.Decode(&w); err != nil {
		return Tick{}, fmt.Errorf("read tick: %w", err)
	}
	if w.Ask <= w.Bid {
		return Tick{}, fmt.Errorf("read tick: crossed quote bid=%v ask=%v", w.Bid, w.Ask)
	}
	return Tick{Seq: w.Seq, At: time.Duration(w.AtNs), Bid: w.Bid, Ask: w.Ask}, nil
}

// Take reads the next n ticks.
func (f *NetFeed) Take(n int) ([]Tick, error) {
	out := make([]Tick, 0, n)
	for i := 0; i < n; i++ {
		t, err := f.Next()
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Close closes the connection.
func (f *NetFeed) Close() error { return f.conn.Close() }

// NextTick implements Source.
func (f *NetFeed) NextTick() (Tick, error) { return f.Next() }

var _ Source = (*NetFeed)(nil)
