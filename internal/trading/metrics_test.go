package trading

import (
	"math"
	"strings"
	"testing"
)

func TestComputeMetricsBasics(t *testing.T) {
	equity := []float64{0, 1, 2, 1.5, 3}
	decisions := []Decision{{Action: Bid}, {Action: Wait}, {Action: Ask}, {Action: Wait}, {Action: Bid}}
	m := ComputeMetrics(equity, decisions)
	if m.FinalPnL != 3 {
		t.Fatalf("final %v", m.FinalPnL)
	}
	if m.MaxDrawdown != 0.5 {
		t.Fatalf("drawdown %v, want 0.5 (peak 2 -> trough 1.5)", m.MaxDrawdown)
	}
	if m.Trades != 3 || m.Waits != 2 {
		t.Fatalf("trades/waits %d/%d", m.Trades, m.Waits)
	}
	// Steps: +1, +1, -0.5, +1.5 -> 3 wins of 4 moves.
	if m.HitRate != 0.75 {
		t.Fatalf("hit rate %v, want 0.75", m.HitRate)
	}
	if m.Sharpe <= 0 {
		t.Fatalf("positive-drift curve should have positive Sharpe, got %v", m.Sharpe)
	}
	if !strings.Contains(m.String(), "sharpe=") {
		t.Fatal("String missing fields")
	}
}

func TestComputeMetricsDegenerate(t *testing.T) {
	if m := ComputeMetrics(nil, nil); m.FinalPnL != 0 || m.Sharpe != 0 {
		t.Fatalf("empty metrics %+v", m)
	}
	if m := ComputeMetrics([]float64{5}, nil); m.FinalPnL != 5 || m.MaxDrawdown != 0 {
		t.Fatalf("single-point metrics %+v", m)
	}
	flat := ComputeMetrics([]float64{1, 1, 1}, nil)
	if flat.Sharpe != 0 || flat.HitRate != 0 {
		t.Fatalf("flat curve metrics %+v", flat)
	}
	if math.IsNaN(flat.Sharpe) {
		t.Fatal("NaN sharpe on flat curve")
	}
}

func TestPipelineEquityCurveAndMetrics(t *testing.T) {
	feed, _ := NewFeed(FeedConfig{Seed: 5, Volatility: 0.002})
	p, err := NewPipeline(feed, DefaultTechnical(), NewEngine(), NewBroker(), 0)
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 50
	for job := 0; job < jobs; job++ {
		p.OnMandatory(job)
		for k := 0; k < p.NumOptional(); k++ {
			p.OnOptional(job, k, 1.0)
		}
		p.OnWindup(job, nil)
	}
	curve := p.EquityCurve()
	if len(curve) != jobs {
		t.Fatalf("curve length %d, want %d", len(curve), jobs)
	}
	m := p.Metrics()
	if m.Trades+m.Waits != jobs {
		t.Fatalf("metrics decisions %d+%d != %d", m.Trades, m.Waits, jobs)
	}
	if m.FinalPnL != curve[len(curve)-1] {
		t.Fatal("final PnL must match the curve")
	}
	if m.MaxDrawdown < 0 {
		t.Fatal("negative drawdown")
	}
}
