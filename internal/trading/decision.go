package trading

import "fmt"

// Action is a trading decision: bid (buy), ask (sell), or the wait-and-see
// attitude (no trade) — the three outcomes of the paper's wind-up part
// (§II-A).
type Action int

const (
	// Wait takes no position.
	Wait Action = iota + 1
	// Bid buys at the ask.
	Bid
	// Ask sells at the bid.
	Ask
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case Wait:
		return "wait"
	case Bid:
		return "bid"
	case Ask:
		return "ask"
	default:
		return "unknown-action"
	}
}

// Decision is the wind-up part's output for one job.
type Decision struct {
	Action Action
	// Score is the aggregated confidence-weighted signal in [-1, 1].
	Score float64
	// QoS is the mean confidence of the advice used: the quality of
	// service the parallel optional parts achieved for this job.
	QoS float64
}

// Engine aggregates indicator advice into a trading decision. The wind-up
// part "collects the results from parallel optional parts to make a trading
// decision" (§II-A); advice from terminated parts arrives with reduced
// confidence and discarded parts contribute nothing.
type Engine struct {
	// Threshold is the minimum |score| to trade instead of waiting
	// (default 0.15).
	Threshold float64
	// MinQoS is the minimum mean confidence to trade at all; below it the
	// engine always waits — low-QoS jobs produce deliberately conservative
	// decisions (default 0.05).
	MinQoS float64
}

// NewEngine returns an engine with default thresholds.
func NewEngine() *Engine {
	return &Engine{Threshold: 0.15, MinQoS: 0.05}
}

// Decide aggregates the advice vector into a decision.
func (e *Engine) Decide(advice []Advice) Decision {
	if len(advice) == 0 {
		return Decision{Action: Wait}
	}
	var weighted, weight, conf float64
	for _, a := range advice {
		weighted += a.Signal * a.Confidence
		weight += a.Confidence
		conf += a.Confidence
	}
	qos := conf / float64(len(advice))
	score := 0.0
	if weight > 0 {
		score = weighted / weight
	}
	d := Decision{Score: score, QoS: qos, Action: Wait}
	if qos < e.MinQoS {
		return d
	}
	switch {
	case score >= e.Threshold:
		d.Action = Bid
	case score <= -e.Threshold:
		d.Action = Ask
	}
	return d
}

// String implements fmt.Stringer.
func (d Decision) String() string {
	return fmt.Sprintf("%v(score=%.3f,qos=%.2f)", d.Action, d.Score, d.QoS)
}
