package trading

import (
	"fmt"
	"math"
)

// Advice is an indicator's output: a signal in [-1, +1] (negative = sell,
// positive = buy) and the confidence the indicator assigns to it in [0, 1].
// Confidence scales with the progress an optional part achieved before its
// optional deadline: terminating an analysis early yields a usable but
// lower-QoS advice — exactly the imprecise-computation contract.
type Advice struct {
	Signal     float64
	Confidence float64
}

// Indicator is an anytime analysis over a price history. Evaluate must
// accept any progress in [0, 1] and degrade gracefully: progress 1 uses the
// full window, progress p uses a correspondingly reduced effective history,
// and the reported confidence never exceeds p.
type Indicator interface {
	// Name identifies the indicator.
	Name() string
	// MinHistory is the number of prices needed for a full evaluation.
	MinHistory() int
	// Evaluate analyses the most recent prices with the given progress.
	Evaluate(prices []float64, progress float64) Advice
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// effective returns how many of the most recent samples an anytime
// evaluation at `progress` may use, never fewer than min(2, full).
func effective(full int, progress float64) int {
	progress = clamp(progress, 0, 1)
	n := int(math.Ceil(float64(full) * progress))
	if n < 2 {
		n = 2
	}
	if n > full {
		n = full
	}
	return n
}

// tail returns the last n prices (or all of them).
func tail(prices []float64, n int) []float64 {
	if n >= len(prices) {
		return prices
	}
	return prices[len(prices)-n:]
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// Bollinger is the Bollinger Bands indicator the paper names as the
// technical analysis of the parallel optional parts (§II-A): price below
// the lower band signals buy, above the upper band signals sell.
type Bollinger struct {
	// Window is the moving-average window (default semantics: caller
	// passes 20).
	Window int
	// K is the band width in standard deviations (typically 2).
	K float64
}

// Name implements Indicator.
func (b Bollinger) Name() string { return fmt.Sprintf("bollinger(%d,%.1f)", b.Window, b.K) }

// MinHistory implements Indicator.
func (b Bollinger) MinHistory() int { return b.Window }

// Evaluate implements Indicator.
func (b Bollinger) Evaluate(prices []float64, progress float64) Advice {
	if len(prices) < 2 || b.Window < 2 || b.K <= 0 {
		return Advice{}
	}
	n := effective(b.Window, progress)
	window := tail(prices, n)
	mean, std := meanStd(window)
	if std == 0 {
		return Advice{Confidence: 0}
	}
	last := prices[len(prices)-1]
	// Normalized distance from the mean in band units: below the lower
	// band (z < -1) is a buy.
	z := (last - mean) / (b.K * std)
	return Advice{
		Signal:     clamp(-z, -1, 1),
		Confidence: clamp(progress, 0, 1) * clamp(float64(n)/float64(b.Window), 0, 1),
	}
}

// SMACross signals on the fast/slow simple-moving-average crossover.
type SMACross struct {
	Fast, Slow int
}

// Name implements Indicator.
func (s SMACross) Name() string { return fmt.Sprintf("sma(%d/%d)", s.Fast, s.Slow) }

// MinHistory implements Indicator.
func (s SMACross) MinHistory() int { return s.Slow }

// Evaluate implements Indicator.
func (s SMACross) Evaluate(prices []float64, progress float64) Advice {
	if s.Fast < 1 || s.Slow <= s.Fast || len(prices) < 2 {
		return Advice{}
	}
	slowN := effective(s.Slow, progress)
	fastN := effective(s.Fast, progress)
	slowMean, _ := meanStd(tail(prices, slowN))
	fastMean, _ := meanStd(tail(prices, fastN))
	if slowMean == 0 {
		return Advice{}
	}
	// Relative divergence of the averages, scaled into a signal.
	div := (fastMean - slowMean) / slowMean
	return Advice{
		Signal:     clamp(div*2000, -1, 1),
		Confidence: clamp(progress, 0, 1),
	}
}

// EMACross signals on the exponential-moving-average crossover (the MACD
// line without its signal smoothing).
type EMACross struct {
	Fast, Slow int
}

// Name implements Indicator.
func (e EMACross) Name() string { return fmt.Sprintf("ema(%d/%d)", e.Fast, e.Slow) }

// MinHistory implements Indicator.
func (e EMACross) MinHistory() int { return e.Slow * 2 }

func ema(prices []float64, n int) float64 {
	if len(prices) == 0 {
		return 0
	}
	alpha := 2 / (float64(n) + 1)
	v := prices[0]
	for _, p := range prices[1:] {
		v = alpha*p + (1-alpha)*v
	}
	return v
}

// Evaluate implements Indicator.
func (e EMACross) Evaluate(prices []float64, progress float64) Advice {
	if e.Fast < 1 || e.Slow <= e.Fast || len(prices) < 2 {
		return Advice{}
	}
	n := effective(e.MinHistory(), progress)
	window := tail(prices, n)
	fast := ema(window, e.Fast)
	slow := ema(window, e.Slow)
	if slow == 0 {
		return Advice{}
	}
	div := (fast - slow) / slow
	return Advice{
		Signal:     clamp(div*2000, -1, 1),
		Confidence: clamp(progress, 0, 1),
	}
}

// RSI is the relative strength index: overbought (RSI > 50) signals sell,
// oversold signals buy.
type RSI struct {
	Window int
}

// Name implements Indicator.
func (r RSI) Name() string { return fmt.Sprintf("rsi(%d)", r.Window) }

// MinHistory implements Indicator.
func (r RSI) MinHistory() int { return r.Window + 1 }

// Evaluate implements Indicator.
func (r RSI) Evaluate(prices []float64, progress float64) Advice {
	if r.Window < 2 || len(prices) < 3 {
		return Advice{}
	}
	n := effective(r.MinHistory(), progress)
	window := tail(prices, n)
	var gain, loss float64
	for i := 1; i < len(window); i++ {
		d := window[i] - window[i-1]
		if d > 0 {
			gain += d
		} else {
			loss -= d
		}
	}
	if gain+loss == 0 {
		return Advice{Confidence: 0}
	}
	rsi := 100 * gain / (gain + loss)
	return Advice{
		Signal:     clamp((50-rsi)/50, -1, 1),
		Confidence: clamp(progress, 0, 1),
	}
}

// MACD is the moving-average convergence/divergence histogram indicator.
type MACD struct {
	Fast, Slow, Smooth int
}

// Name implements Indicator.
func (m MACD) Name() string { return fmt.Sprintf("macd(%d,%d,%d)", m.Fast, m.Slow, m.Smooth) }

// MinHistory implements Indicator.
func (m MACD) MinHistory() int { return (m.Slow + m.Smooth) * 2 }

// Evaluate implements Indicator.
func (m MACD) Evaluate(prices []float64, progress float64) Advice {
	if m.Fast < 1 || m.Slow <= m.Fast || m.Smooth < 1 || len(prices) < 3 {
		return Advice{}
	}
	n := effective(m.MinHistory(), progress)
	window := tail(prices, n)
	if len(window) < 3 {
		return Advice{}
	}
	// MACD line over the window, then its smoothed signal line.
	line := make([]float64, 0, len(window))
	for i := 2; i <= len(window); i++ {
		line = append(line, ema(window[:i], m.Fast)-ema(window[:i], m.Slow))
	}
	signal := ema(line, m.Smooth)
	hist := line[len(line)-1] - signal
	ref := window[len(window)-1]
	if ref == 0 {
		return Advice{}
	}
	return Advice{
		Signal:     clamp(hist/ref*5000, -1, 1),
		Confidence: clamp(progress, 0, 1),
	}
}

var (
	_ Indicator = Bollinger{}
	_ Indicator = SMACross{}
	_ Indicator = EMACross{}
	_ Indicator = RSI{}
	_ Indicator = MACD{}
)

// DefaultTechnical returns the standard technical-analysis battery with
// conventional parameters, Bollinger Bands first (the paper's example).
func DefaultTechnical() []Indicator {
	return []Indicator{
		Bollinger{Window: 20, K: 2},
		SMACross{Fast: 5, Slow: 20},
		EMACross{Fast: 12, Slow: 26},
		RSI{Window: 14},
		MACD{Fast: 12, Slow: 26, Smooth: 9},
	}
}
