package core

import (
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
)

// Termination is a mechanism for ending a parallel optional part at its
// optional deadline in the user space (paper §IV-D, Fig. 7, Table I). A
// mechanism runs one optional part of up to `length` execution time, with
// the optional deadline at absolute time od, and reports whether the part
// completed along with the CPU time it consumed.
type Termination interface {
	// Name returns the mechanism's label as used in Table I.
	Name() string
	// AnyTime reports whether the mechanism can terminate the optional part
	// at any instant (Table I column "Any Time Termination").
	AnyTime() bool
	// RestoresSignalMask reports whether the mechanism restores the signal
	// mask after a termination, so the next job's optional-deadline timer
	// can fire (Table I column "Signal Mask Restoration").
	RestoresSignalMask() bool
	// RunOptional executes the part on the calling thread.
	RunOptional(c *kernel.TCB, od engine.Time, length time.Duration) (completed bool, ran time.Duration)
}

// SigjmpTermination is the paper's chosen mechanism: sigsetjmp saves the
// stack context and signal mask, a one-shot optional-deadline timer raises
// SIGALRM, and the handler siglongjmps back — restoring both the stack
// context and the signal mask. It terminates at any time and keeps the
// timer working for subsequent jobs.
type SigjmpTermination struct{}

// Name implements Termination.
func (SigjmpTermination) Name() string { return "sigsetjmp/siglongjmp" }

// AnyTime implements Termination.
func (SigjmpTermination) AnyTime() bool { return true }

// RestoresSignalMask implements Termination.
func (SigjmpTermination) RestoresSignalMask() bool { return true }

// RunOptional implements Termination, following Fig. 7: save context, arm
// the one-shot timer, execute; on completion disarm the timer, on SIGALRM
// pay the siglongjmp restore and clear the handler's signal mask.
func (SigjmpTermination) RunOptional(c *kernel.TCB, od engine.Time, length time.Duration) (bool, time.Duration) {
	c.ChargeOp(machine.OpSigSetjmp)
	c.TimerSet(od)
	completed, ran := c.ComputeInterruptible(length)
	if completed {
		c.TimerStop()
		return true, ran
	}
	// timer_handler ran siglongjmp: restore stack context AND signal mask.
	c.ChargeOp(machine.OpSigLongjmp)
	c.SetAlarmMask(false)
	return false, ran
}

// PeriodicCheckTermination polls the clock between fixed-size compute chunks
// and stops once the optional deadline has passed — no timer, no signals.
// It cannot terminate at any time: the part overruns its optional deadline
// by up to one check period, which "degrades the improvement of QoS"
// (paper §IV-D). In exchange it is safe for optional parts that must
// not be cut inside a critical section.
type PeriodicCheckTermination struct {
	// Period is the polling granularity. Zero defaults to 1ms.
	Period time.Duration
}

// Name implements Termination.
func (PeriodicCheckTermination) Name() string { return "Periodic Check" }

// AnyTime implements Termination.
func (PeriodicCheckTermination) AnyTime() bool { return false }

// RestoresSignalMask implements Termination. The mechanism uses no signals,
// so restoration is unnecessary (Table I).
func (PeriodicCheckTermination) RestoresSignalMask() bool { return true }

// RunOptional implements Termination.
func (p PeriodicCheckTermination) RunOptional(c *kernel.TCB, od engine.Time, length time.Duration) (bool, time.Duration) {
	period := p.Period
	if period <= 0 {
		period = time.Millisecond
	}
	var ran time.Duration
	for ran < length {
		if c.Now() >= od {
			return false, ran
		}
		chunk := period
		if rest := length - ran; rest < chunk {
			chunk = rest
		}
		c.Compute(chunk)
		ran += chunk
	}
	return true, ran
}

// TryCatchTermination models the C++ try/catch alternative of §IV-D: the
// SIGALRM handler throws, the exception unwinds the optional part at any
// time — but the signal mask saved at handler entry is never restored, so
// "the timer interrupt of the next job does not occur because the signal
// mask is not cleared". After the first termination every subsequent job's
// optional part runs to completion regardless of its optional deadline,
// jeopardizing the wind-up part.
type TryCatchTermination struct{}

// Name implements Termination.
func (TryCatchTermination) Name() string { return "try-catch" }

// AnyTime implements Termination.
func (TryCatchTermination) AnyTime() bool { return true }

// RestoresSignalMask implements Termination.
func (TryCatchTermination) RestoresSignalMask() bool { return false }

// RunOptional implements Termination.
func (TryCatchTermination) RunOptional(c *kernel.TCB, od engine.Time, length time.Duration) (bool, time.Duration) {
	c.TimerSet(od)
	completed, ran := c.ComputeInterruptible(length)
	if completed {
		c.TimerStop()
		return true, ran
	}
	// The exception unwinds the stack (priced like the longjmp restore),
	// but the signal mask is NOT cleared: SIGALRM stays blocked.
	c.ChargeOp(machine.OpSigLongjmp)
	return false, ran
}

var (
	_ Termination = SigjmpTermination{}
	_ Termination = PeriodicCheckTermination{}
	_ Termination = TryCatchTermination{}
)
