package core

import (
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
)

// Termination is a mechanism for ending a parallel optional part at its
// optional deadline in the user space (paper §IV-D, Fig. 7, Table I). A
// mechanism runs one optional part of up to `length` execution time, with
// the optional deadline at absolute time od, and reports whether the part
// completed along with the CPU time it consumed.
type Termination interface {
	// Name returns the mechanism's label as used in Table I.
	Name() string
	// AnyTime reports whether the mechanism can terminate the optional part
	// at any instant (Table I column "Any Time Termination").
	AnyTime() bool
	// RestoresSignalMask reports whether the mechanism restores the signal
	// mask after a termination, so the next job's optional-deadline timer
	// can fire (Table I column "Signal Mask Restoration").
	RestoresSignalMask() bool
	// RunOptional executes the part on the calling thread. This is the
	// blocking form for goroutine-executor bodies (PracticalProcess keeps
	// using it); continuation bodies drive StepOptional instead.
	RunOptional(c *kernel.TCB, od engine.Time, length time.Duration) (completed bool, ran time.Duration)
	// StepOptional advances the mechanism's continuation form by one kernel
	// action. The caller Resets st before the first call, then calls
	// StepOptional once per kernel resume, executing each returned action,
	// until done is reported; st.Completed and st.Ran then hold what
	// RunOptional would have returned (the returned Next is the zero value
	// and must not be executed). Both forms issue identical kernel request
	// sequences — that is what makes the executors trace-identical.
	StepOptional(st *TermState, c *kernel.TCB, r kernel.Resume) (next kernel.Next, done bool)
}

// TermState is the resumable state of one optional part run under a
// termination mechanism's continuation form. It lives in the optional
// thread's body (one per thread, reused across jobs), so steady-state
// stepping allocates nothing.
type TermState struct {
	// OD is the absolute optional deadline for this run.
	OD engine.Time
	// Length is the part's nominal execution time.
	Length time.Duration
	// Completed and Ran are the run's results, valid once StepOptional
	// reports done.
	Completed bool
	Ran       time.Duration

	pc    uint8
	chunk time.Duration // periodic check: in-flight chunk size
}

// Reset prepares st for a new optional part run.
func (st *TermState) Reset(od engine.Time, length time.Duration) {
	*st = TermState{OD: od, Length: length}
}

// SigjmpTermination is the paper's chosen mechanism: sigsetjmp saves the
// stack context and signal mask, a one-shot optional-deadline timer raises
// SIGALRM, and the handler siglongjmps back — restoring both the stack
// context and the signal mask. It terminates at any time and keeps the
// timer working for subsequent jobs.
type SigjmpTermination struct{}

// Name implements Termination.
func (SigjmpTermination) Name() string { return "sigsetjmp/siglongjmp" }

// AnyTime implements Termination.
func (SigjmpTermination) AnyTime() bool { return true }

// RestoresSignalMask implements Termination.
func (SigjmpTermination) RestoresSignalMask() bool { return true }

// RunOptional implements Termination, following Fig. 7: save context, arm
// the one-shot timer, execute; on completion disarm the timer, on SIGALRM
// pay the siglongjmp restore and clear the handler's signal mask.
func (SigjmpTermination) RunOptional(c *kernel.TCB, od engine.Time, length time.Duration) (bool, time.Duration) {
	c.ChargeOp(machine.OpSigSetjmp)
	c.TimerSet(od)
	completed, ran := c.ComputeInterruptible(length)
	if completed {
		c.TimerStop()
		return true, ran
	}
	// timer_handler ran siglongjmp: restore stack context AND signal mask.
	c.ChargeOp(machine.OpSigLongjmp)
	c.SetAlarmMask(false)
	return false, ran
}

// StepOptional implements Termination: the Fig. 7 sequence as a resumable
// state machine, one kernel action per step, mirroring RunOptional's request
// sequence exactly.
//
//rtseed:noalloc
//rtseed:kernelctx
func (SigjmpTermination) StepOptional(st *TermState, c *kernel.TCB, r kernel.Resume) (kernel.Next, bool) {
	switch st.pc {
	case 0:
		st.pc = 1
		return kernel.ChargeOp(machine.OpSigSetjmp), false
	case 1:
		st.pc = 2
		return kernel.TimerSet(st.OD), false
	case 2:
		st.pc = 3
		return kernel.ComputeInterruptible(st.Length), false
	case 3:
		st.Completed, st.Ran = r.Completed, r.Ran
		if st.Completed {
			st.pc = 5
			return kernel.TimerStop(), false
		}
		// timer_handler ran siglongjmp: restore stack context AND signal
		// mask.
		st.pc = 4
		return kernel.ChargeOp(machine.OpSigLongjmp), false
	case 4:
		st.pc = 5
		return kernel.SetAlarmMask(false), false
	}
	return kernel.Next{}, true
}

// PeriodicCheckTermination polls the clock between fixed-size compute chunks
// and stops once the optional deadline has passed — no timer, no signals.
// It cannot terminate at any time: the part overruns its optional deadline
// by up to one check period, which "degrades the improvement of QoS"
// (paper §IV-D). In exchange it is safe for optional parts that must
// not be cut inside a critical section.
type PeriodicCheckTermination struct {
	// Period is the polling granularity. Zero defaults to 1ms.
	Period time.Duration
}

// Name implements Termination.
func (PeriodicCheckTermination) Name() string { return "Periodic Check" }

// AnyTime implements Termination.
func (PeriodicCheckTermination) AnyTime() bool { return false }

// RestoresSignalMask implements Termination. The mechanism uses no signals,
// so restoration is unnecessary (Table I).
func (PeriodicCheckTermination) RestoresSignalMask() bool { return true }

// RunOptional implements Termination.
func (p PeriodicCheckTermination) RunOptional(c *kernel.TCB, od engine.Time, length time.Duration) (bool, time.Duration) {
	period := p.Period
	if period <= 0 {
		period = time.Millisecond
	}
	var ran time.Duration
	for ran < length {
		if c.Now() >= od {
			return false, ran
		}
		chunk := period
		if rest := length - ran; rest < chunk {
			chunk = rest
		}
		c.Compute(chunk)
		ran += chunk
	}
	return true, ran
}

// StepOptional implements Termination: the chunked polling loop as a
// resumable state machine. st.Ran accumulates across chunks; the loop-head
// checks run in host code between compute actions, exactly as in
// RunOptional.
//
//rtseed:noalloc
//rtseed:kernelctx
func (p PeriodicCheckTermination) StepOptional(st *TermState, c *kernel.TCB, r kernel.Resume) (kernel.Next, bool) {
	if st.pc == 1 {
		st.Ran += st.chunk
	}
	if st.Ran >= st.Length {
		st.Completed = true
		return kernel.Next{}, true
	}
	if c.Now() >= st.OD {
		st.Completed = false
		return kernel.Next{}, true
	}
	period := p.Period
	if period <= 0 {
		period = time.Millisecond
	}
	chunk := period
	if rest := st.Length - st.Ran; rest < chunk {
		chunk = rest
	}
	st.chunk = chunk
	st.pc = 1
	return kernel.Compute(chunk), false
}

// TryCatchTermination models the C++ try/catch alternative of §IV-D: the
// SIGALRM handler throws, the exception unwinds the optional part at any
// time — but the signal mask saved at handler entry is never restored, so
// "the timer interrupt of the next job does not occur because the signal
// mask is not cleared". After the first termination every subsequent job's
// optional part runs to completion regardless of its optional deadline,
// jeopardizing the wind-up part.
type TryCatchTermination struct{}

// Name implements Termination.
func (TryCatchTermination) Name() string { return "try-catch" }

// AnyTime implements Termination.
func (TryCatchTermination) AnyTime() bool { return true }

// RestoresSignalMask implements Termination.
func (TryCatchTermination) RestoresSignalMask() bool { return false }

// RunOptional implements Termination.
func (TryCatchTermination) RunOptional(c *kernel.TCB, od engine.Time, length time.Duration) (bool, time.Duration) {
	c.TimerSet(od)
	completed, ran := c.ComputeInterruptible(length)
	if completed {
		c.TimerStop()
		return true, ran
	}
	// The exception unwinds the stack (priced like the longjmp restore),
	// but the signal mask is NOT cleared: SIGALRM stays blocked.
	c.ChargeOp(machine.OpSigLongjmp)
	return false, ran
}

// StepOptional implements Termination: try/catch as a resumable state
// machine. Like RunOptional, it never issues SetAlarmMask — a terminated
// part leaves SIGALRM blocked, which is the defect §IV-D describes.
//
//rtseed:noalloc
//rtseed:kernelctx
func (TryCatchTermination) StepOptional(st *TermState, c *kernel.TCB, r kernel.Resume) (kernel.Next, bool) {
	switch st.pc {
	case 0:
		st.pc = 1
		return kernel.TimerSet(st.OD), false
	case 1:
		st.pc = 2
		return kernel.ComputeInterruptible(st.Length), false
	case 2:
		st.Completed, st.Ran = r.Completed, r.Ran
		if st.Completed {
			st.pc = 3
			return kernel.TimerStop(), false
		}
		// The exception unwinds the stack (priced like the longjmp
		// restore), but the signal mask is NOT cleared: SIGALRM stays
		// blocked.
		st.pc = 3
		return kernel.ChargeOp(machine.OpSigLongjmp), false
	}
	return kernel.Next{}, true
}

var (
	_ Termination = SigjmpTermination{}
	_ Termination = PeriodicCheckTermination{}
	_ Termination = TryCatchTermination{}
)
