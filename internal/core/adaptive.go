package core

import "time"

// Adaptive implements the paper's concluding guidance in code: "traders
// should choose an appropriate number of parallel optional parts by
// considering the overhead associated with beginning and ending the
// processes". The controller bounds the observed ending overhead (the
// wind-up start's lag behind the optional deadline) by adjusting how many
// parallel optional parts are signalled each job, AIMD-style: multiplicative
// decrease when the lag exceeds the budget, additive increase while there is
// headroom. Unsignalled parts are discarded, exactly as the protocol
// discards parts it has no time for.
type Adaptive struct {
	// EndingBudget is the largest acceptable wind-up lag behind the
	// optional deadline.
	EndingBudget time.Duration
	// MinParts floors the controller (default 1).
	MinParts int
	// Increase is the additive step when under budget (default 1).
	Increase int
}

func (a *Adaptive) min() int {
	if a.MinParts < 1 {
		return 1
	}
	return a.MinParts
}

func (a *Adaptive) step() int {
	if a.Increase < 1 {
		return 1
	}
	return a.Increase
}

// next returns the part count for the next job given the lag just observed.
func (a *Adaptive) next(current, max int, lag time.Duration) int {
	switch {
	case lag > a.EndingBudget:
		current = current * 3 / 4
	case lag < a.EndingBudget/2:
		current += a.step()
	}
	if current < a.min() {
		current = a.min()
	}
	if current > max {
		current = max
	}
	return current
}

// ActiveParts returns how many parallel optional parts the process is
// currently signalling per job (always NumOptional without a controller).
func (p *Process) ActiveParts() int { return p.activeParts }
