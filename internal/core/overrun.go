package core

// OverrunPolicy decides what happens when a job's entire period has already
// elapsed before it could be released — only possible when an earlier job
// overran (e.g. the try-catch termination pathology of Table I).
type OverrunPolicy int

const (
	// OverrunContinue releases the late job immediately, the
	// clock_nanosleep semantics of the paper's implementation (a past
	// absolute wake time returns at once). Backlog drains in order.
	OverrunContinue OverrunPolicy = iota
	// OverrunSkip drops releases whose whole window has passed
	// (skip-over): the task re-synchronizes with its period grid at the
	// cost of losing jobs, which Process.SkippedJobs counts.
	OverrunSkip
)

// String implements fmt.Stringer.
func (o OverrunPolicy) String() string {
	switch o {
	case OverrunContinue:
		return "continue"
	case OverrunSkip:
		return "skip"
	default:
		return "unknown-overrun-policy"
	}
}
