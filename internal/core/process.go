package core

import (
	"fmt"
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/task"
	"rtseed/internal/trace"
)

// App carries the application callbacks of a parallel-extended imprecise
// task: what the mandatory, optional, and wind-up parts actually compute
// (e.g. ingest a tick / refine an indicator / make a trading decision). All
// fields are optional. Callbacks run in host code at the corresponding
// protocol points and consume no virtual time — the parts' durations come
// from the task model.
type App struct {
	// OnMandatory runs when the mandatory part of a job completes.
	OnMandatory func(job int)
	// OnOptional runs when parallel optional part k of a job ends
	// (completed or terminated), with the achieved progress in [0,1].
	OnOptional func(job, k int, progress float64)
	// OnWindup runs when the wind-up part of a job completes, with the
	// per-part progress achieved this job (discarded parts report 0).
	OnWindup func(job int, progress []float64)
}

// Probes are measurement hooks at the protocol points of Fig. 9. All fields
// are optional; the overhead harness uses them to reproduce Figs. 10-13.
type Probes struct {
	// OnRelease fires when the mandatory part begins: Δm = start − release.
	OnRelease func(job int, release, start engine.Time)
	// OnSignalLoop brackets the pthread_cond_signal loop waking all
	// parallel optional threads: Δb = end − start.
	OnSignalLoop func(job int, start, end engine.Time)
	// OnMandatoryBlock fires when the mandatory thread blocks waiting for
	// the optional parts.
	OnMandatoryBlock func(job int, at engine.Time)
	// OnOptionalStart fires when parallel optional thread k begins its
	// part: Δs = start(k=0) − mandatory block time (part 0 shares the
	// mandatory thread's hardware thread).
	OnOptionalStart func(job, k int, at engine.Time)
	// OnWindupStart fires when the wind-up part begins:
	// Δe = start − optional deadline when the parts overran.
	OnWindupStart func(job int, od, start engine.Time)
}

// Config configures one parallel-extended imprecise task as an RT-Seed
// real-time process.
type Config struct {
	// Task is the task's timing model.
	Task task.Task
	// MandatoryPriority is the mandatory thread's RTQ priority in
	// [RTQMin, RTQMax]; the optional threads get MandatoryPriority −
	// PriorityGap.
	MandatoryPriority int
	// MandatoryCPU pins the mandatory thread (and wind-up part).
	MandatoryCPU machine.HWThread
	// OptionalCPUs pins parallel optional thread k to OptionalCPUs[k];
	// its length must equal Task.NumOptional(). Per the paper, the first
	// entry should equal MandatoryCPU (enforced when np > 0).
	OptionalCPUs []machine.HWThread
	// OptionalDeadline is the relative optional deadline OD (from
	// analysis.RMWP; for a single task, D − w).
	OptionalDeadline time.Duration
	// Jobs is how many jobs to execute.
	Jobs int
	// Termination is the optional-part termination mechanism; nil selects
	// SigjmpTermination, the paper's choice.
	Termination Termination
	// Adaptive, when set, bounds the ending overhead by adjusting how
	// many parallel optional parts are signalled per job (unsignalled
	// parts are discarded). See Adaptive.
	Adaptive *Adaptive
	// Overrun selects what happens when a job's entire period has already
	// passed by the time the mandatory thread could release it (a previous
	// job overran): OverrunContinue (default) releases it late,
	// OverrunSkip drops it (skip-over semantics) and counts it in
	// SkippedJobs.
	Overrun OverrunPolicy
	// ReleaseJitter delays each job's release by a deterministic
	// pseudo-random offset in [0, ReleaseJitter): the sporadic-arrival
	// extension for feeds that do not tick exactly once per period. Each
	// job's deadline and optional deadline shift with its release; the
	// minimum inter-arrival time stays the period.
	ReleaseJitter time.Duration
	// JitterSeed seeds the release jitter (0 = derived from the task
	// name length — set it explicitly for experiments).
	JitterSeed uint64
	// Migrate, when set, is consulted at every job release with the
	// mandatory thread's current hardware thread; returning a different
	// one migrates the mandatory thread there before the mandatory part
	// runs. P-RMWP leaves this nil — partitioned tasks never migrate
	// (§IV-B); the middleware-level G-RMWP runner uses it, paying the
	// migration overhead the paper's design discussion predicts.
	Migrate func(job int, current machine.HWThread) machine.HWThread
	// App and Probes hook application logic and measurements.
	App    App
	Probes Probes
}

func (cfg *Config) validate() error {
	if err := cfg.Task.Validate(); err != nil {
		return err
	}
	if cfg.MandatoryPriority != HPQPriority &&
		(cfg.MandatoryPriority < RTQMin || cfg.MandatoryPriority > RTQMax) {
		return fmt.Errorf("core: mandatory priority %d outside RTQ [%d,%d] (or HPQ %d)",
			cfg.MandatoryPriority, RTQMin, RTQMax, HPQPriority)
	}
	np := cfg.Task.NumOptional()
	if len(cfg.OptionalCPUs) != np {
		return fmt.Errorf("core: %d optional CPUs for %d optional parts",
			len(cfg.OptionalCPUs), np)
	}
	if np > 0 && cfg.OptionalCPUs[0] != cfg.MandatoryCPU {
		return fmt.Errorf("core: first optional part must share the mandatory thread's CPU %d, got %d",
			cfg.MandatoryCPU, cfg.OptionalCPUs[0])
	}
	if cfg.OptionalDeadline <= 0 || cfg.OptionalDeadline > cfg.Task.Deadline() {
		return fmt.Errorf("core: optional deadline %v outside (0, %v]",
			cfg.OptionalDeadline, cfg.Task.Deadline())
	}
	if cfg.Jobs <= 0 {
		return fmt.Errorf("core: jobs must be positive, got %d", cfg.Jobs)
	}
	return nil
}

// Process is a running parallel-extended imprecise task: one mandatory
// thread plus np parallel optional threads on a simulated kernel.
type Process struct {
	k    *kernel.Kernel
	cfg  Config
	term Termination

	mandatory *kernel.Thread
	optionals []*kernel.Thread

	mandCond *kernel.CondVar
	optConds []*kernel.CondVar
	// endLock serializes the per-part ending path: signal-delivery
	// processing under the process-wide sighand lock plus the
	// endOptionalPart bookkeeping on shared task state. All np parts
	// terminating at the same optional deadline drain through it one at a
	// time — the O(np) ending overhead of Fig. 13.
	endLock *kernel.Mutex

	// Protocol state. Host code is serialized by the kernel handshake, so
	// plain fields are safe; the happens-before edges come from the
	// resume/yield channels.
	running     bool
	activeParts int
	skipped     int
	partPending []bool
	remaining   int
	curJob      int
	curOD       engine.Time
	curParts    []task.PartRecord

	records []task.JobRecord
}

// NewProcess builds the process and its threads (sched_setscheduler +
// sched_setaffinity of Fig. 6). Threads start when Start is called.
func NewProcess(k *kernel.Kernel, cfg Config) (*Process, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	term := cfg.Termination
	if term == nil {
		term = SigjmpTermination{}
	}
	optPrio, err := OptionalPriority(cfg.MandatoryPriority)
	if err != nil {
		return nil, err
	}
	np := cfg.Task.NumOptional()
	p := &Process{
		k:           k,
		cfg:         cfg,
		term:        term,
		running:     true,
		activeParts: np,
		partPending: make([]bool, np),
		endLock:     k.NewMutex(cfg.Task.Name + ".end"),
		mandCond:    k.NewCondVar(cfg.Task.Name + ".mandatory"),
		optConds:    make([]*kernel.CondVar, np),
		optionals:   make([]*kernel.Thread, np),
	}
	p.mandatory, err = k.NewThread(kernel.ThreadConfig{
		Name:     cfg.Task.Name + ".mand",
		Priority: cfg.MandatoryPriority,
		CPU:      cfg.MandatoryCPU,
	}, p.mandatoryBody)
	if err != nil {
		return nil, err
	}
	for i := 0; i < np; i++ {
		i := i
		p.optConds[i] = k.NewCondVar(fmt.Sprintf("%s.opt%d", cfg.Task.Name, i))
		p.optionals[i], err = k.NewThread(kernel.ThreadConfig{
			Name:     fmt.Sprintf("%s.opt%d", cfg.Task.Name, i),
			Priority: optPrio,
			CPU:      cfg.OptionalCPUs[i],
		}, func(c *kernel.TCB) { p.optionalBody(c, i) })
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Start launches the process's threads.
func (p *Process) Start() {
	for _, t := range p.optionals {
		t.Start()
	}
	p.mandatory.Start()
}

// SkippedJobs returns how many releases the OverrunSkip policy dropped.
func (p *Process) SkippedJobs() int { return p.skipped }

// Records returns the per-job records accumulated so far.
func (p *Process) Records() []task.JobRecord {
	out := make([]task.JobRecord, len(p.records))
	copy(out, p.records)
	return out
}

// Stats summarizes the accumulated job records.
func (p *Process) Stats() task.Stats { return task.Summarize(p.records) }

// Termination returns the configured termination mechanism.
func (p *Process) Termination() Termination { return p.term }

// MandatoryThread returns the mandatory thread (for trace filtering).
func (p *Process) MandatoryThread() *kernel.Thread { return p.mandatory }

// OptionalThreads returns the parallel optional threads.
func (p *Process) OptionalThreads() []*kernel.Thread {
	out := make([]*kernel.Thread, len(p.optionals))
	copy(out, p.optionals)
	return out
}

// emit writes one middleware trace record at the current virtual time,
// attributed to the calling thread on its current CPU. It brackets the
// P-RMWP part boundaries (release, fork, termination, wind-up, deadline)
// that the kernel's own thread-state records cannot name.
//
//rtseed:noalloc
//rtseed:kernelctx-entry simulated-thread context: the kernel handshake runs one thread at a time, serialized with the event loop
func (p *Process) emit(c *kernel.TCB, kind trace.Kind, arg uint64) {
	if tr := p.k.Trace(); tr != nil {
		tr.Emit(c.Now(), uint16(c.HWThread()), uint32(c.Thread().ID()), kind, arg)
	}
}

// emitAt is emit with an explicit record timestamp (the nominal release
// instant of KindJobRelease, which precedes the emitting thread's wake-up).
//
//rtseed:noalloc
//rtseed:kernelctx-entry simulated-thread context: the kernel handshake runs one thread at a time, serialized with the event loop
func (p *Process) emitAt(c *kernel.TCB, at engine.Time, kind trace.Kind, arg uint64) {
	if tr := p.k.Trace(); tr != nil {
		tr.Emit(at, uint16(c.HWThread()), uint32(c.Thread().ID()), kind, arg)
	}
}

// mandatoryBody is the mandatory thread's program (Fig. 6, left column):
// sleep to the release, execute the mandatory part, wake the parallel
// optional threads, wait for them all to end, execute the wind-up part,
// sleep until the next release.
func (p *Process) mandatoryBody(c *kernel.TCB) {
	t := p.cfg.Task
	np := t.NumOptional()
	var jitterRng *engine.Rand
	if p.cfg.ReleaseJitter > 0 {
		seed := p.cfg.JitterSeed
		if seed == 0 {
			seed = uint64(len(t.Name)) + 1
		}
		jitterRng = engine.NewRand(seed)
	}
	for job := 0; job < p.cfg.Jobs; job++ {
		release := engine.At(time.Duration(job) * t.Period)
		if jitterRng != nil {
			release = release.Add(time.Duration(jitterRng.Uint64() % uint64(p.cfg.ReleaseJitter)))
		}
		if p.cfg.Overrun == OverrunSkip && c.Now() >= release.Add(t.Period) {
			// The whole window has passed: skip-over.
			p.skipped++
			continue
		}
		c.SleepUntil(release)
		if fn := p.cfg.Migrate; fn != nil {
			if target := fn(job, c.HWThread()); target != c.HWThread() {
				c.Migrate(target)
			}
		}
		mandStart := c.Now()
		p.emitAt(c, release, trace.KindJobRelease, uint64(job))
		p.emit(c, trace.KindMandStart, uint64(job))
		if fn := p.cfg.Probes.OnRelease; fn != nil {
			fn(job, release, mandStart)
		}
		c.Compute(t.Mandatory)
		if fn := p.cfg.App.OnMandatory; fn != nil {
			fn(job)
		}
		od := release.Add(p.cfg.OptionalDeadline)
		p.curJob = job
		p.curOD = od
		p.curParts = make([]task.PartRecord, np)

		active := np
		if p.cfg.Adaptive != nil {
			active = p.activeParts
		}
		if active > 0 && c.Now() < od {
			// Wake the active parallel optional threads (Δb is this
			// loop); the rest are discarded this job.
			p.remaining = active
			for k := 0; k < active; k++ {
				p.partPending[k] = true
			}
			for k := active; k < np; k++ {
				p.curParts[k] = task.PartRecord{
					Outcome: task.PartDiscarded,
					Length:  t.Optional[k],
				}
				p.emit(c, trace.KindOptDiscard, trace.PackJobPart(job, k))
			}
			bStart := c.Now()
			p.emit(c, trace.KindOptFork, uint64(job))
			for _, cv := range p.optConds[:active] {
				c.CondSignal(cv)
			}
			if fn := p.cfg.Probes.OnSignalLoop; fn != nil {
				fn(job, bStart, c.Now())
			}
			if fn := p.cfg.Probes.OnMandatoryBlock; fn != nil {
				fn(job, c.Now())
			}
			for p.remaining > 0 {
				c.CondWait(p.mandCond)
			}
		} else {
			// No time left before the optional deadline: the parts are
			// discarded — the optional threads never receive the wake-up
			// signal (Fig. 1).
			for k := 0; k < np; k++ {
				p.curParts[k] = task.PartRecord{
					Outcome: task.PartDiscarded,
					Length:  t.Optional[k],
				}
				p.emit(c, trace.KindOptDiscard, trace.PackJobPart(job, k))
			}
		}

		windupStart := c.Now()
		p.emit(c, trace.KindWindupStart, uint64(job))
		if fn := p.cfg.Probes.OnWindupStart; fn != nil {
			fn(job, od, windupStart)
		}
		if a := p.cfg.Adaptive; a != nil {
			p.activeParts = a.next(p.activeParts, np, windupStart.Sub(od))
		}
		c.Compute(t.Windup)
		if fn := p.cfg.App.OnWindup; fn != nil {
			progress := make([]float64, np)
			for k, pr := range p.curParts {
				progress[k] = pr.Progress()
			}
			fn(job, progress)
		}
		finish := c.Now().Duration()
		deadline := release.Add(t.Deadline()).Duration()
		p.emit(c, trace.KindJobEnd, uint64(job))
		if trace.MissedDeadline(finish, deadline) {
			p.emit(c, trace.KindDeadlineMiss, trace.PackMiss(job, finish-deadline))
		} else {
			p.emit(c, trace.KindDeadlineMet, uint64(job))
		}
		p.records = append(p.records, task.JobRecord{
			Job:            job,
			Release:        release.Duration(),
			MandatoryStart: mandStart.Duration(),
			WindupStart:    windupStart.Duration(),
			Finish:         finish,
			Deadline:       deadline,
			Parts:          p.curParts,
		})
	}
	// Deactivate and wake the optional threads so they can exit.
	p.running = false
	for _, cv := range p.optConds {
		c.CondSignal(cv)
	}
}

// optionalBody is parallel optional thread k's program (Fig. 7): wait for
// the wake-up signal, run the optional part under the termination mechanism
// with the one-shot optional-deadline timer, and when all parts have ended,
// send the wake-up signal back to the mandatory thread.
func (p *Process) optionalBody(c *kernel.TCB, k int) {
	t := p.cfg.Task
	for {
		for p.running && !p.partPending[k] {
			c.CondWait(p.optConds[k])
		}
		if !p.partPending[k] {
			return // deactivated
		}
		p.partPending[k] = false
		job, od := p.curJob, p.curOD
		p.emit(c, trace.KindOptStart, trace.PackJobPart(job, k))
		if fn := p.cfg.Probes.OnOptionalStart; fn != nil {
			fn(job, k, c.Now())
		}
		completed, ran := p.term.RunOptional(c, od, t.Optional[k])
		outcome := task.PartTerminated
		if completed {
			outcome = task.PartCompleted
			p.emit(c, trace.KindOptEnd, trace.PackJobPart(job, k))
		} else {
			p.emit(c, trace.KindOptTerm, trace.PackJobPart(job, k))
		}
		rec := task.PartRecord{Outcome: outcome, Executed: ran, Length: t.Optional[k]}
		p.curParts[k] = rec
		if fn := p.cfg.App.OnOptional; fn != nil {
			fn(job, k, rec.Progress())
		}
		// endOptionalPart: serialized per-part ending (sighand-lock
		// signal processing + shared-state bookkeeping); the last part to
		// end wakes the mandatory thread.
		c.MutexLock(p.endLock)
		c.ChargeOp(machine.OpEndOptional)
		p.remaining--
		last := p.remaining == 0
		c.MutexUnlock(p.endLock)
		if last {
			c.CondSignal(p.mandCond)
		}
	}
}
