package core

import (
	"fmt"
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/task"
	"rtseed/internal/trace"
)

// App carries the application callbacks of a parallel-extended imprecise
// task: what the mandatory, optional, and wind-up parts actually compute
// (e.g. ingest a tick / refine an indicator / make a trading decision). All
// fields are optional. Callbacks run in host code at the corresponding
// protocol points and consume no virtual time — the parts' durations come
// from the task model.
type App struct {
	// OnMandatory runs when the mandatory part of a job completes.
	OnMandatory func(job int)
	// OnOptional runs when parallel optional part k of a job ends
	// (completed or terminated), with the achieved progress in [0,1].
	OnOptional func(job, k int, progress float64)
	// OnWindup runs when the wind-up part of a job completes, with the
	// per-part progress achieved this job (discarded parts report 0).
	OnWindup func(job int, progress []float64)
}

// Probes are measurement hooks at the protocol points of Fig. 9. All fields
// are optional; the overhead harness uses them to reproduce Figs. 10-13.
type Probes struct {
	// OnRelease fires when the mandatory part begins: Δm = start − release.
	OnRelease func(job int, release, start engine.Time)
	// OnSignalLoop brackets the pthread_cond_signal loop waking all
	// parallel optional threads: Δb = end − start.
	OnSignalLoop func(job int, start, end engine.Time)
	// OnMandatoryBlock fires when the mandatory thread blocks waiting for
	// the optional parts.
	OnMandatoryBlock func(job int, at engine.Time)
	// OnOptionalStart fires when parallel optional thread k begins its
	// part: Δs = start(k=0) − mandatory block time (part 0 shares the
	// mandatory thread's hardware thread).
	OnOptionalStart func(job, k int, at engine.Time)
	// OnWindupStart fires when the wind-up part begins:
	// Δe = start − optional deadline when the parts overran.
	OnWindupStart func(job int, od, start engine.Time)
}

// Config configures one parallel-extended imprecise task as an RT-Seed
// real-time process.
type Config struct {
	// Task is the task's timing model.
	Task task.Task
	// MandatoryPriority is the mandatory thread's RTQ priority in
	// [RTQMin, RTQMax]; the optional threads get MandatoryPriority −
	// PriorityGap.
	MandatoryPriority int
	// MandatoryCPU pins the mandatory thread (and wind-up part).
	MandatoryCPU machine.HWThread
	// OptionalCPUs pins parallel optional thread k to OptionalCPUs[k];
	// its length must equal Task.NumOptional(). Per the paper, the first
	// entry should equal MandatoryCPU (enforced when np > 0).
	OptionalCPUs []machine.HWThread
	// OptionalDeadline is the relative optional deadline OD (from
	// analysis.RMWP; for a single task, D − w).
	OptionalDeadline time.Duration
	// Jobs is how many jobs to execute.
	Jobs int
	// Termination is the optional-part termination mechanism; nil selects
	// SigjmpTermination, the paper's choice.
	Termination Termination
	// Adaptive, when set, bounds the ending overhead by adjusting how
	// many parallel optional parts are signalled per job (unsignalled
	// parts are discarded). See Adaptive.
	Adaptive *Adaptive
	// Overrun selects what happens when a job's entire period has already
	// passed by the time the mandatory thread could release it (a previous
	// job overran): OverrunContinue (default) releases it late,
	// OverrunSkip drops it (skip-over semantics) and counts it in
	// SkippedJobs.
	Overrun OverrunPolicy
	// ReleaseJitter delays each job's release by a deterministic
	// pseudo-random offset in [0, ReleaseJitter): the sporadic-arrival
	// extension for feeds that do not tick exactly once per period. Each
	// job's deadline and optional deadline shift with its release; the
	// minimum inter-arrival time stays the period.
	ReleaseJitter time.Duration
	// JitterSeed seeds the release jitter (0 = derived from the task
	// name length — set it explicitly for experiments).
	JitterSeed uint64
	// Migrate, when set, is consulted at every job release with the
	// mandatory thread's current hardware thread; returning a different
	// one migrates the mandatory thread there before the mandatory part
	// runs. P-RMWP leaves this nil — partitioned tasks never migrate
	// (§IV-B); the middleware-level G-RMWP runner uses it, paying the
	// migration overhead the paper's design discussion predicts.
	Migrate func(job int, current machine.HWThread) machine.HWThread
	// App and Probes hook application logic and measurements.
	App    App
	Probes Probes
}

func (cfg *Config) validate() error {
	if err := cfg.Task.Validate(); err != nil {
		return err
	}
	if cfg.MandatoryPriority != HPQPriority &&
		(cfg.MandatoryPriority < RTQMin || cfg.MandatoryPriority > RTQMax) {
		return fmt.Errorf("core: mandatory priority %d outside RTQ [%d,%d] (or HPQ %d)",
			cfg.MandatoryPriority, RTQMin, RTQMax, HPQPriority)
	}
	np := cfg.Task.NumOptional()
	if len(cfg.OptionalCPUs) != np {
		return fmt.Errorf("core: %d optional CPUs for %d optional parts",
			len(cfg.OptionalCPUs), np)
	}
	if np > 0 && cfg.OptionalCPUs[0] != cfg.MandatoryCPU {
		return fmt.Errorf("core: first optional part must share the mandatory thread's CPU %d, got %d",
			cfg.MandatoryCPU, cfg.OptionalCPUs[0])
	}
	if cfg.OptionalDeadline <= 0 || cfg.OptionalDeadline > cfg.Task.Deadline() {
		return fmt.Errorf("core: optional deadline %v outside (0, %v]",
			cfg.OptionalDeadline, cfg.Task.Deadline())
	}
	if cfg.Jobs <= 0 {
		return fmt.Errorf("core: jobs must be positive, got %d", cfg.Jobs)
	}
	return nil
}

// Process is a running parallel-extended imprecise task: one mandatory
// thread plus np parallel optional threads on a simulated kernel.
type Process struct {
	k    *kernel.Kernel
	cfg  Config
	term Termination

	mandatory *kernel.Thread
	optionals []*kernel.Thread

	mandCond *kernel.CondVar
	optConds []*kernel.CondVar
	// endLock serializes the per-part ending path: signal-delivery
	// processing under the process-wide sighand lock plus the
	// endOptionalPart bookkeeping on shared task state. All np parts
	// terminating at the same optional deadline drain through it one at a
	// time — the O(np) ending overhead of Fig. 13.
	endLock *kernel.Mutex

	// Protocol state. Host code is serialized by the kernel handshake, so
	// plain fields are safe; the happens-before edges come from the
	// resume/yield channels.
	running     bool
	activeParts int
	skipped     int
	partPending []bool
	remaining   int
	curJob      int
	curOD       engine.Time
	curParts    []task.PartRecord

	records []task.JobRecord
}

// NewProcess builds the process and its threads (sched_setscheduler +
// sched_setaffinity of Fig. 6). Threads start when Start is called.
func NewProcess(k *kernel.Kernel, cfg Config) (*Process, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	term := cfg.Termination
	if term == nil {
		term = SigjmpTermination{}
	}
	optPrio, err := OptionalPriority(cfg.MandatoryPriority)
	if err != nil {
		return nil, err
	}
	np := cfg.Task.NumOptional()
	p := &Process{
		k:           k,
		cfg:         cfg,
		term:        term,
		running:     true,
		activeParts: np,
		partPending: make([]bool, np),
		endLock:     k.NewMutex(cfg.Task.Name + ".end"),
		mandCond:    k.NewCondVar(cfg.Task.Name + ".mandatory"),
		optConds:    make([]*kernel.CondVar, np),
		optionals:   make([]*kernel.Thread, np),
	}
	mb := &mandBody{p: p}
	if cfg.ReleaseJitter > 0 {
		seed := cfg.JitterSeed
		if seed == 0 {
			seed = uint64(len(cfg.Task.Name)) + 1
		}
		mb.jitterRng = engine.NewRand(seed)
	}
	p.mandatory, err = k.NewBodyThread(kernel.ThreadConfig{
		Name:     cfg.Task.Name + ".mand",
		Priority: cfg.MandatoryPriority,
		CPU:      cfg.MandatoryCPU,
	}, mb)
	if err != nil {
		return nil, err
	}
	for i := 0; i < np; i++ {
		p.optConds[i] = k.NewCondVar(fmt.Sprintf("%s.opt%d", cfg.Task.Name, i))
		p.optionals[i], err = k.NewBodyThread(kernel.ThreadConfig{
			Name:     fmt.Sprintf("%s.opt%d", cfg.Task.Name, i),
			Priority: optPrio,
			CPU:      cfg.OptionalCPUs[i],
		}, &optBody{p: p, k: i})
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Start launches the process's threads.
func (p *Process) Start() {
	for _, t := range p.optionals {
		t.Start()
	}
	p.mandatory.Start()
}

// SkippedJobs returns how many releases the OverrunSkip policy dropped.
func (p *Process) SkippedJobs() int { return p.skipped }

// Records returns the per-job records accumulated so far.
func (p *Process) Records() []task.JobRecord {
	out := make([]task.JobRecord, len(p.records))
	copy(out, p.records)
	return out
}

// Stats summarizes the accumulated job records.
func (p *Process) Stats() task.Stats { return task.Summarize(p.records) }

// Termination returns the configured termination mechanism.
func (p *Process) Termination() Termination { return p.term }

// MandatoryThread returns the mandatory thread (for trace filtering).
func (p *Process) MandatoryThread() *kernel.Thread { return p.mandatory }

// OptionalThreads returns the parallel optional threads.
func (p *Process) OptionalThreads() []*kernel.Thread {
	out := make([]*kernel.Thread, len(p.optionals))
	copy(out, p.optionals)
	return out
}

// emit writes one middleware trace record at the current virtual time,
// attributed to the calling thread on its current CPU. It brackets the
// P-RMWP part boundaries (release, fork, termination, wind-up, deadline)
// that the kernel's own thread-state records cannot name.
//
//rtseed:noalloc
//rtseed:kernelctx-entry simulated-thread context: the kernel handshake runs one thread at a time, serialized with the event loop
func (p *Process) emit(c *kernel.TCB, kind trace.Kind, arg uint64) {
	if tr := p.k.Trace(); tr != nil {
		tr.Emit(c.Now(), uint16(c.HWThread()), uint32(c.Thread().ID()), kind, arg)
	}
}

// emitAt is emit with an explicit record timestamp (the nominal release
// instant of KindJobRelease, which precedes the emitting thread's wake-up).
//
//rtseed:noalloc
//rtseed:kernelctx-entry simulated-thread context: the kernel handshake runs one thread at a time, serialized with the event loop
func (p *Process) emitAt(c *kernel.TCB, at engine.Time, kind trace.Kind, arg uint64) {
	if tr := p.k.Trace(); tr != nil {
		tr.Emit(at, uint16(c.HWThread()), uint32(c.Thread().ID()), kind, arg)
	}
}

// mandPC is the mandatory body's program counter: which kernel action the
// body is waiting on.
type mandPC uint8

const (
	// pmRelease: initial state; pick the next job and sleep to its release.
	pmRelease mandPC = iota
	// pmAwake: the release sleep returned; migrate if the policy asks, then
	// start the mandatory part.
	pmAwake
	// pmMigrated: the migration completed; start the mandatory part.
	pmMigrated
	// pmAfterMand: the mandatory burst completed; fork the optional parts.
	pmAfterMand
	// pmSignal: a pthread_cond_signal of the wake-up loop completed; signal
	// the next part or block for the parts to end.
	pmSignal
	// pmWait: a CondWait on the mandatory condvar returned; re-check
	// remaining (spurious-wakeup loop) or wind up.
	pmWait
	// pmAfterWind: the wind-up burst completed; record the job and loop.
	pmAfterWind
	// pmDrain: a deactivation signal completed; signal the next optional
	// thread or exit.
	pmDrain
)

// mandBody is the mandatory thread's program (Fig. 6, left column) in
// continuation form: sleep to the release, execute the mandatory part, wake
// the parallel optional threads, wait for them all to end, execute the
// wind-up part, sleep until the next release. Each blocking call of the
// goroutine form is one returned action here; everything between two actions
// is host code and runs inside one Step.
type mandBody struct {
	p         *Process
	jitterRng *engine.Rand

	pc        mandPC
	job       int
	release   engine.Time
	mandStart engine.Time
	bStart    engine.Time
	active    int
	sigIdx    int
}

//rtseed:kernelctx
func (b *mandBody) Step(c *kernel.TCB, r kernel.Resume) kernel.Next {
	switch b.pc {
	case pmRelease:
		return b.startJob(c)
	case pmAwake:
		if fn := b.p.cfg.Migrate; fn != nil {
			if target := fn(b.job, c.HWThread()); target != c.HWThread() {
				b.pc = pmMigrated
				return kernel.Migrate(target)
			}
		}
		return b.startMandatory(c)
	case pmMigrated:
		return b.startMandatory(c)
	case pmAfterMand:
		return b.fork(c)
	case pmSignal:
		b.sigIdx++
		if b.sigIdx < b.active {
			return kernel.CondSignal(b.p.optConds[b.sigIdx])
		}
		if fn := b.p.cfg.Probes.OnSignalLoop; fn != nil {
			fn(b.job, b.bStart, c.Now())
		}
		if fn := b.p.cfg.Probes.OnMandatoryBlock; fn != nil {
			fn(b.job, c.Now())
		}
		if b.p.remaining > 0 {
			b.pc = pmWait
			return kernel.CondWait(b.p.mandCond)
		}
		return b.windup(c)
	case pmWait:
		if b.p.remaining > 0 {
			return kernel.CondWait(b.p.mandCond)
		}
		return b.windup(c)
	case pmAfterWind:
		return b.finishJob(c)
	case pmDrain:
		b.sigIdx++
		if b.sigIdx < len(b.p.optConds) {
			return kernel.CondSignal(b.p.optConds[b.sigIdx])
		}
		return kernel.Done()
	}
	panic("core: corrupt mandatory body state")
}

// startJob picks the next job — applying release jitter and the
// OverrunSkip policy in host code — and sleeps to its release, or begins
// the deactivation drain when all jobs are done.
func (b *mandBody) startJob(c *kernel.TCB) kernel.Next {
	p, t := b.p, b.p.cfg.Task
	for {
		if b.job >= p.cfg.Jobs {
			// Deactivate and wake the optional threads so they can exit.
			p.running = false
			if len(p.optConds) == 0 {
				return kernel.Done()
			}
			b.sigIdx = 0
			b.pc = pmDrain
			return kernel.CondSignal(p.optConds[0])
		}
		release := engine.At(time.Duration(b.job) * t.Period)
		if b.jitterRng != nil {
			release = release.Add(time.Duration(b.jitterRng.Uint64() % uint64(p.cfg.ReleaseJitter)))
		}
		if p.cfg.Overrun == OverrunSkip && c.Now() >= release.Add(t.Period) {
			// The whole window has passed: skip-over.
			p.skipped++
			b.job++
			continue
		}
		b.release = release
		b.pc = pmAwake
		return kernel.SleepUntil(release)
	}
}

func (b *mandBody) startMandatory(c *kernel.TCB) kernel.Next {
	p := b.p
	b.mandStart = c.Now()
	p.emitAt(c, b.release, trace.KindJobRelease, uint64(b.job))
	p.emit(c, trace.KindMandStart, uint64(b.job))
	if fn := p.cfg.Probes.OnRelease; fn != nil {
		fn(b.job, b.release, b.mandStart)
	}
	b.pc = pmAfterMand
	return kernel.Compute(p.cfg.Task.Mandatory)
}

// fork runs after the mandatory part: wake the active parallel optional
// threads (Δb is the signal loop), or discard every part when the optional
// deadline has already passed.
func (b *mandBody) fork(c *kernel.TCB) kernel.Next {
	p, t := b.p, b.p.cfg.Task
	np := t.NumOptional()
	if fn := p.cfg.App.OnMandatory; fn != nil {
		fn(b.job)
	}
	od := b.release.Add(p.cfg.OptionalDeadline)
	p.curJob = b.job
	p.curOD = od
	p.curParts = make([]task.PartRecord, np)

	active := np
	if p.cfg.Adaptive != nil {
		active = p.activeParts
	}
	if active > 0 && c.Now() < od {
		// Wake the active parallel optional threads (Δb is this
		// loop); the rest are discarded this job.
		p.remaining = active
		for k := 0; k < active; k++ {
			p.partPending[k] = true
		}
		for k := active; k < np; k++ {
			p.curParts[k] = task.PartRecord{
				Outcome: task.PartDiscarded,
				Length:  t.Optional[k],
			}
			p.emit(c, trace.KindOptDiscard, trace.PackJobPart(b.job, k))
		}
		b.bStart = c.Now()
		p.emit(c, trace.KindOptFork, uint64(b.job))
		b.active = active
		b.sigIdx = 0
		b.pc = pmSignal
		return kernel.CondSignal(p.optConds[0])
	}
	// No time left before the optional deadline: the parts are
	// discarded — the optional threads never receive the wake-up
	// signal (Fig. 1).
	for k := 0; k < np; k++ {
		p.curParts[k] = task.PartRecord{
			Outcome: task.PartDiscarded,
			Length:  t.Optional[k],
		}
		p.emit(c, trace.KindOptDiscard, trace.PackJobPart(b.job, k))
	}
	return b.windup(c)
}

func (b *mandBody) windup(c *kernel.TCB) kernel.Next {
	p := b.p
	windupStart := c.Now()
	b.bStart = windupStart // reuse as windup start for finishJob
	p.emit(c, trace.KindWindupStart, uint64(b.job))
	if fn := p.cfg.Probes.OnWindupStart; fn != nil {
		fn(b.job, p.curOD, windupStart)
	}
	if a := p.cfg.Adaptive; a != nil {
		p.activeParts = a.next(p.activeParts, p.cfg.Task.NumOptional(), windupStart.Sub(p.curOD))
	}
	b.pc = pmAfterWind
	return kernel.Compute(p.cfg.Task.Windup)
}

func (b *mandBody) finishJob(c *kernel.TCB) kernel.Next {
	p, t := b.p, b.p.cfg.Task
	if fn := p.cfg.App.OnWindup; fn != nil {
		progress := make([]float64, t.NumOptional())
		for k, pr := range p.curParts {
			progress[k] = pr.Progress()
		}
		fn(b.job, progress)
	}
	finish := c.Now().Duration()
	deadline := b.release.Add(t.Deadline()).Duration()
	p.emit(c, trace.KindJobEnd, uint64(b.job))
	if trace.MissedDeadline(finish, deadline) {
		p.emit(c, trace.KindDeadlineMiss, trace.PackMiss(b.job, finish-deadline))
	} else {
		p.emit(c, trace.KindDeadlineMet, uint64(b.job))
	}
	p.records = append(p.records, task.JobRecord{
		Job:            b.job,
		Release:        b.release.Duration(),
		MandatoryStart: b.mandStart.Duration(),
		WindupStart:    b.bStart.Duration(),
		Finish:         finish,
		Deadline:       deadline,
		Parts:          p.curParts,
	})
	b.job++
	return b.startJob(c)
}

// optPC is a parallel optional body's program counter.
type optPC uint8

const (
	// poWait: a CondWait on the part's condvar returned; re-check the
	// wake-up predicate.
	poWait optPC = iota
	// poTerm: a termination-mechanism action completed; continue stepping
	// the mechanism or finish the part.
	poTerm
	// poLocked: the endLock acquisition completed; charge the ending
	// operation.
	poLocked
	// poCharged: the ending charge completed; release the lock.
	poCharged
	// poUnlocked: the lock release completed; wake the mandatory thread if
	// this was the last part, else wait for the next job.
	poUnlocked
	// poSignalled: the wake-up of the mandatory thread completed; wait for
	// the next job.
	poSignalled
)

// optBody is parallel optional thread k's program (Fig. 7) in continuation
// form: wait for the wake-up signal, run the optional part by stepping the
// termination mechanism's state machine, and when all parts have ended,
// send the wake-up signal back to the mandatory thread.
type optBody struct {
	p *Process
	k int

	pc   optPC
	job  int
	st   TermState
	last bool
}

//rtseed:kernelctx
func (b *optBody) Step(c *kernel.TCB, r kernel.Resume) kernel.Next {
	p := b.p
	switch b.pc {
	case poWait:
		return b.await(c, r)
	case poTerm:
		next, done := p.term.StepOptional(&b.st, c, r)
		if !done {
			return next
		}
		return b.endPart(c)
	case poLocked:
		b.pc = poCharged
		return kernel.ChargeOp(machine.OpEndOptional)
	case poCharged:
		p.remaining--
		b.last = p.remaining == 0
		b.pc = poUnlocked
		return kernel.MutexUnlock(p.endLock)
	case poUnlocked:
		if b.last {
			b.pc = poSignalled
			return kernel.CondSignal(p.mandCond)
		}
		return b.await(c, r)
	case poSignalled:
		return b.await(c, r)
	}
	panic("core: corrupt optional body state")
}

// await is the wake-up predicate loop: block until this part is pending or
// the process deactivates, then start the part under the termination
// mechanism.
func (b *optBody) await(c *kernel.TCB, r kernel.Resume) kernel.Next {
	p := b.p
	if p.running && !p.partPending[b.k] {
		b.pc = poWait
		return kernel.CondWait(p.optConds[b.k])
	}
	if !p.partPending[b.k] {
		return kernel.Done() // deactivated
	}
	p.partPending[b.k] = false
	b.job = p.curJob
	p.emit(c, trace.KindOptStart, trace.PackJobPart(b.job, b.k))
	if fn := p.cfg.Probes.OnOptionalStart; fn != nil {
		fn(b.job, b.k, c.Now())
	}
	b.st.Reset(p.curOD, p.cfg.Task.Optional[b.k])
	b.pc = poTerm
	next, _ := p.term.StepOptional(&b.st, c, r)
	return next
}

// endPart runs when the termination mechanism reports the part done:
// record the outcome, then enter the serialized ending path
// (endOptionalPart: sighand-lock signal processing + shared-state
// bookkeeping); the last part to end wakes the mandatory thread.
func (b *optBody) endPart(c *kernel.TCB) kernel.Next {
	p := b.p
	length := p.cfg.Task.Optional[b.k]
	outcome := task.PartTerminated
	if b.st.Completed {
		outcome = task.PartCompleted
		p.emit(c, trace.KindOptEnd, trace.PackJobPart(b.job, b.k))
	} else {
		p.emit(c, trace.KindOptTerm, trace.PackJobPart(b.job, b.k))
	}
	rec := task.PartRecord{Outcome: outcome, Executed: b.st.Ran, Length: length}
	p.curParts[b.k] = rec
	if fn := p.cfg.App.OnOptional; fn != nil {
		fn(b.job, b.k, rec.Progress())
	}
	b.pc = poLocked
	return kernel.MutexLock(p.endLock)
}
