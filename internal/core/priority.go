// Package core implements the RT-Seed real-time middleware (paper §IV): a
// parallel-extended imprecise task is a real-time process made of one
// mandatory thread (executing the mandatory and wind-up parts) and np
// parallel optional threads, scheduled with the P-RMWP semi-fixed-priority
// algorithm on SCHED_FIFO priorities. The package reproduces the paper's
// queue/priority design (Fig. 5), the execution protocol (Fig. 6), and the
// three optional-part termination mechanisms (Fig. 7, Table I) against the
// simulated kernel.
package core

import "fmt"

// The SCHED_FIFO priority map of RT-Seed (paper §IV-B, Fig. 5): level 99 is
// the Highest Priority Queue reserved for an RM-US highest-priority task;
// mandatory threads occupy the Real-Time Queue levels [50, 98]; parallel
// optional threads occupy the Non-Real-Time Queue levels [1, 49]. The
// difference between a task's mandatory and optional priorities is exactly
// PriorityGap = 49, so every RTQ thread outranks every NRTQ thread.
const (
	HPQPriority = 99
	RTQMax      = 98
	RTQMin      = 50
	NRTQMax     = 49
	NRTQMin     = 1
	PriorityGap = 49
)

// OptionalPriority returns the NRTQ priority of the parallel optional
// threads of a task whose mandatory thread has the given RTQ priority
// (paper: "when the priority of the mandatory thread is 90, the parallel
// optional threads have priorities of 41 (= 90 - 49)"). The HPQ task
// (priority 99, the RM-US separation of footnote 1) gets the top NRTQ
// level for its optional threads, since 99 − 49 = 50 would land in the RTQ.
func OptionalPriority(mandatory int) (int, error) {
	if mandatory == HPQPriority {
		return NRTQMax, nil
	}
	if mandatory < RTQMin || mandatory > RTQMax {
		return 0, fmt.Errorf("core: mandatory priority %d outside RTQ [%d,%d]",
			mandatory, RTQMin, RTQMax)
	}
	return mandatory - PriorityGap, nil
}

// RTQPriorities assigns RTQ priorities to n tasks in rate-monotonic order
// (index 0 = shortest period): 98, 97, ... downward. The RTQ holds at most
// RTQMax-RTQMin+1 = 49 distinct levels.
func RTQPriorities(n int) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: need at least one task, got %d", n)
	}
	if n > RTQMax-RTQMin+1 {
		return nil, fmt.Errorf("core: %d tasks exceed the %d RTQ levels", n, RTQMax-RTQMin+1)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = RTQMax - i
	}
	return out, nil
}
