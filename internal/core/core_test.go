package core

import (
	"testing"
	"time"

	"rtseed/internal/assign"
	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/task"
)

func ms(d int) time.Duration { return time.Duration(d) * time.Millisecond }

// newSim builds a kernel on a small Phi-like machine with zero jitter.
func newSim(t testing.TB, load machine.Load) *kernel.Kernel {
	t.Helper()
	model := machine.DefaultCostModel()
	model.JitterFrac = 0
	topo := machine.Topology{Cores: 8, ThreadsPerCore: 4}
	m, err := machine.New(topo, load, model, 7)
	if err != nil {
		t.Fatal(err)
	}
	return kernel.New(engine.New(), m)
}

// paperTask is a scaled-down version of the evaluation task: T=100ms,
// m=w=25ms, optional parts of `o` each.
func paperTask(np int, o time.Duration) task.Task {
	return task.Uniform("tau1", ms(25), ms(25), o, np, ms(100))
}

func newProcess(t testing.TB, k *kernel.Kernel, tk task.Task, jobs int, term Termination, probes Probes, app App) *Process {
	t.Helper()
	cpus, err := assign.HWThreads(k.Machine().Topology(), assign.OneByOne, tk.NumOptional())
	if err != nil {
		t.Fatal(err)
	}
	// The paper includes scheduling overheads in the mandatory/wind-up
	// WCETs (§II-A); the nominal compute here excludes them, so the
	// optional deadline leaves a 5ms overhead margin before the wind-up.
	p, err := NewProcess(k, Config{
		Task:              tk,
		MandatoryPriority: 90,
		MandatoryCPU:      0,
		OptionalCPUs:      cpus,
		OptionalDeadline:  tk.Period - tk.Windup - ms(5),
		Jobs:              jobs,
		Termination:       term,
		Probes:            probes,
		App:               app,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPriorityMapping(t *testing.T) {
	if p, err := OptionalPriority(90); err != nil || p != 41 {
		t.Fatalf("OptionalPriority(90) = %d, %v; want 41 (paper example)", p, err)
	}
	if p, err := OptionalPriority(50); err != nil || p != 1 {
		t.Fatalf("OptionalPriority(50) = %d, %v; want 1", p, err)
	}
	if p, err := OptionalPriority(HPQPriority); err != nil || p != NRTQMax {
		t.Fatalf("OptionalPriority(HPQ) = %d, %v; want top NRTQ level %d", p, err, NRTQMax)
	}
	if _, err := OptionalPriority(49); err == nil {
		t.Fatal("NRTQ priority must be rejected")
	}
	if _, err := OptionalPriority(100); err == nil {
		t.Fatal("out-of-range priority must be rejected")
	}
}

func TestRTQPriorities(t *testing.T) {
	ps, err := RTQPriorities(3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{98, 97, 96}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("priorities %v, want %v", ps, want)
		}
	}
	if _, err := RTQPriorities(0); err == nil {
		t.Fatal("zero tasks accepted")
	}
	if _, err := RTQPriorities(50); err == nil {
		t.Fatal("more tasks than RTQ levels accepted")
	}
	if _, err := RTQPriorities(49); err != nil {
		t.Fatal("49 tasks must fit the RTQ")
	}
}

// All jobs meet their deadlines and overrunning optional parts are
// terminated: the semi-fixed-priority guarantee.
func TestProcessMeetsDeadlinesWithOverrunningOptionals(t *testing.T) {
	k := newSim(t, machine.NoLoad)
	// Optional parts of 1s never finish within a 100ms period.
	p := newProcess(t, k, paperTask(4, time.Second), 5, nil, Probes{}, App{})
	p.Start()
	k.Run()
	stats := p.Stats()
	if stats.Jobs != 5 {
		t.Fatalf("jobs %d, want 5", stats.Jobs)
	}
	if stats.DeadlineMisses != 0 {
		t.Fatalf("misses %d, want 0", stats.DeadlineMisses)
	}
	if stats.TerminatedParts != 20 {
		t.Fatalf("terminated %d, want 20 (all parts overrun)", stats.TerminatedParts)
	}
	if stats.CompletedParts != 0 || stats.DiscardedParts != 0 {
		t.Fatalf("stats %+v", stats)
	}
}

// Short optional parts complete before the optional deadline and the timer
// is cancelled.
func TestProcessCompletesShortOptionals(t *testing.T) {
	k := newSim(t, machine.NoLoad)
	p := newProcess(t, k, paperTask(4, ms(5)), 3, nil, Probes{}, App{})
	p.Start()
	k.Run()
	stats := p.Stats()
	if stats.CompletedParts != 12 {
		t.Fatalf("completed %d, want 12", stats.CompletedParts)
	}
	if stats.MeanQoS != 1 {
		t.Fatalf("QoS %v, want 1", stats.MeanQoS)
	}
	if stats.DeadlineMisses != 0 {
		t.Fatalf("misses %d", stats.DeadlineMisses)
	}
}

// QoS increases with the optional deadline headroom: terminated parts report
// partial progress proportional to the time they ran.
func TestQoSReflectsProgress(t *testing.T) {
	k := newSim(t, machine.NoLoad)
	// m=25ms, OD at 75ms => ~50ms of optional execution out of 100ms parts
	// => progress ~0.5.
	p := newProcess(t, k, paperTask(2, ms(100)), 3, nil, Probes{}, App{})
	p.Start()
	k.Run()
	stats := p.Stats()
	if stats.MeanQoS < 0.4 || stats.MeanQoS > 0.6 {
		t.Fatalf("QoS %v, want ~0.5", stats.MeanQoS)
	}
}

// The wind-up part always starts after the optional deadline when parts
// overrun, and jobs still meet deadlines — Fig. 3's semi-fixed-priority
// behaviour.
func TestWindupStartsAtOptionalDeadline(t *testing.T) {
	k := newSim(t, machine.NoLoad)
	var windupStarts []time.Duration
	var ods []time.Duration
	probes := Probes{
		OnWindupStart: func(job int, od, start engine.Time) {
			ods = append(ods, od.Duration())
			windupStarts = append(windupStarts, start.Duration())
		},
	}
	p := newProcess(t, k, paperTask(4, time.Second), 3, nil, probes, App{})
	p.Start()
	k.Run()
	if len(windupStarts) != 3 {
		t.Fatalf("%d wind-ups, want 3", len(windupStarts))
	}
	for i := range windupStarts {
		delta := windupStarts[i] - ods[i]
		if delta < 0 {
			t.Fatalf("job %d: wind-up before optional deadline (%v)", i, delta)
		}
		if delta > ms(20) {
			t.Fatalf("job %d: ending overhead %v implausibly large", i, delta)
		}
	}
}

// Discard path: when the mandatory part finishes after the optional
// deadline, optional parts are never signalled (paper Fig. 1 / §IV-C).
func TestOptionalPartsDiscardedWhenNoTime(t *testing.T) {
	k := newSim(t, machine.NoLoad)
	// OD = 26ms, mandatory = 25ms: dispatch overheads push mandatory
	// completion past the OD on every job.
	tk := paperTask(4, time.Second)
	cpus, _ := assign.HWThreads(k.Machine().Topology(), assign.OneByOne, 4)
	p, err := NewProcess(k, Config{
		Task:              tk,
		MandatoryPriority: 90,
		MandatoryCPU:      0,
		OptionalCPUs:      cpus,
		OptionalDeadline:  ms(25),
		Jobs:              3,
		App: App{OnOptional: func(int, int, float64) {
			t.Error("optional callback must not fire for discarded parts")
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	k.Run()
	stats := p.Stats()
	if stats.DiscardedParts != 12 {
		t.Fatalf("discarded %d, want 12", stats.DiscardedParts)
	}
	if stats.MeanQoS != 0 {
		t.Fatalf("QoS %v, want 0 for all-discarded", stats.MeanQoS)
	}
}

// Table I, row 1: sigsetjmp/siglongjmp terminates at any time AND restores
// the signal mask, so every job's optional parts are terminated at the
// optional deadline.
func TestTableISigjmpEveryJobTerminates(t *testing.T) {
	k := newSim(t, machine.NoLoad)
	p := newProcess(t, k, paperTask(2, time.Second), 5, SigjmpTermination{}, Probes{}, App{})
	p.Start()
	k.Run()
	stats := p.Stats()
	if stats.TerminatedParts != 10 {
		t.Fatalf("terminated %d, want 10: mask restoration must keep the timer working", stats.TerminatedParts)
	}
	if stats.DeadlineMisses != 0 {
		t.Fatalf("misses %d", stats.DeadlineMisses)
	}
}

// Table I, row 3: try-catch terminates the first job, but the signal mask is
// never restored, so from the second job on the optional-deadline timer
// cannot fire: optional parts run to completion and wind-up parts miss
// deadlines.
func TestTableITryCatchLosesTimerAfterFirstJob(t *testing.T) {
	k := newSim(t, machine.NoLoad)
	p := newProcess(t, k, paperTask(2, time.Second), 3, TryCatchTermination{}, Probes{}, App{})
	p.Start()
	// Give the sim enough horizon: runaway optional parts make jobs late.
	k.RunUntil(engine.At(10 * time.Second))
	recs := p.Records()
	if len(recs) == 0 {
		t.Fatal("no jobs recorded")
	}
	// Job 0 behaves: parts terminated.
	for _, part := range recs[0].Parts {
		if part.Outcome != task.PartTerminated {
			t.Fatalf("job 0 part %v, want terminated", part.Outcome)
		}
	}
	if !recs[0].Met() {
		t.Fatal("job 0 should meet its deadline")
	}
	if len(recs) < 2 {
		t.Fatal("second job never finished")
	}
	// Job 1: the stuck signal mask lets the 1s optional parts run to
	// completion, so the job blows through its deadline.
	sawRunaway := false
	for _, part := range recs[1].Parts {
		if part.Outcome == task.PartCompleted {
			sawRunaway = true
		}
	}
	if !sawRunaway {
		t.Fatal("job 1 should have run an optional part to completion (timer lost)")
	}
	if recs[1].Met() {
		t.Fatal("job 1 should miss its deadline")
	}
}

// Table I, row 2: periodic check cannot terminate at any time — parts
// overrun the optional deadline by up to one check period; with a coarse
// period the overshoot is visible next to sigjmp's immediate cut.
func TestTableIPeriodicCheckOvershoots(t *testing.T) {
	measure := func(term Termination) time.Duration {
		k := newSim(t, machine.NoLoad)
		var worst time.Duration
		probes := Probes{OnWindupStart: func(job int, od, start engine.Time) {
			if d := start.Sub(od); d > worst {
				worst = d
			}
		}}
		p := newProcess(t, k, paperTask(2, time.Second), 3, term, probes, App{})
		p.Start()
		k.Run()
		return worst
	}
	sig := measure(SigjmpTermination{})
	periodic := measure(PeriodicCheckTermination{Period: 7 * time.Millisecond})
	if periodic <= sig {
		t.Fatalf("periodic check overshoot %v should exceed sigjmp %v", periodic, sig)
	}
	if periodic < 2*time.Millisecond || periodic > ms(10) {
		t.Fatalf("periodic overshoot %v should be on the order of the check period", periodic)
	}
}

// Table I as a feature matrix.
func TestTableIFeatureMatrix(t *testing.T) {
	cases := []struct {
		term     Termination
		anyTime  bool
		restores bool
	}{
		{SigjmpTermination{}, true, true},
		{PeriodicCheckTermination{}, false, true},
		{TryCatchTermination{}, true, false},
	}
	for _, c := range cases {
		if c.term.AnyTime() != c.anyTime {
			t.Errorf("%s: AnyTime = %v, want %v", c.term.Name(), c.term.AnyTime(), c.anyTime)
		}
		if c.term.RestoresSignalMask() != c.restores {
			t.Errorf("%s: RestoresSignalMask = %v, want %v", c.term.Name(), c.term.RestoresSignalMask(), c.restores)
		}
		if c.term.Name() == "" {
			t.Error("empty mechanism name")
		}
	}
}

// The overhead probes fire at every protocol point with sane ordering:
// release <= mandatory start <= signal loop <= mandatory block <= optional
// start <= windup start.
func TestProbeOrdering(t *testing.T) {
	k := newSim(t, machine.NoLoad)
	type jobProbe struct {
		release, mandStart, sigStart, sigEnd, block, opt0, windup engine.Time
	}
	probes := make(map[int]*jobProbe)
	get := func(job int) *jobProbe {
		if probes[job] == nil {
			probes[job] = &jobProbe{}
		}
		return probes[job]
	}
	pr := Probes{
		OnRelease: func(job int, release, start engine.Time) {
			get(job).release, get(job).mandStart = release, start
		},
		OnSignalLoop: func(job int, start, end engine.Time) {
			get(job).sigStart, get(job).sigEnd = start, end
		},
		OnMandatoryBlock: func(job int, at engine.Time) { get(job).block = at },
		OnOptionalStart: func(job, k int, at engine.Time) {
			if k == 0 {
				get(job).opt0 = at
			}
		},
		OnWindupStart: func(job int, od, start engine.Time) { get(job).windup = start },
	}
	p := newProcess(t, k, paperTask(4, time.Second), 2, nil, pr, App{})
	p.Start()
	k.Run()
	for job, jp := range probes {
		seq := []engine.Time{jp.release, jp.mandStart, jp.sigStart, jp.sigEnd, jp.block, jp.opt0, jp.windup}
		for i := 1; i < len(seq); i++ {
			if seq[i] < seq[i-1] {
				t.Fatalf("job %d: probe %d out of order: %v", job, i, seq)
			}
		}
		// Δm must be positive: waking from clock_nanosleep costs time.
		if jp.mandStart == jp.release {
			t.Fatalf("job %d: zero release overhead", job)
		}
	}
}

// Application callbacks fire with the right progress values.
func TestAppCallbacks(t *testing.T) {
	k := newSim(t, machine.NoLoad)
	var mandatory, windup int
	var optionalCalls int
	app := App{
		OnMandatory: func(job int) { mandatory++ },
		OnOptional: func(job, part int, progress float64) {
			optionalCalls++
			if progress <= 0 || progress > 1 {
				t.Errorf("progress %v out of (0,1]", progress)
			}
		},
		OnWindup: func(job int, progress []float64) {
			windup++
			if len(progress) != 2 {
				t.Errorf("progress vector length %d", len(progress))
			}
		},
	}
	p := newProcess(t, k, paperTask(2, time.Second), 3, nil, Probes{}, app)
	p.Start()
	k.Run()
	if mandatory != 3 || windup != 3 || optionalCalls != 6 {
		t.Fatalf("callbacks mand=%d windup=%d opt=%d", mandatory, windup, optionalCalls)
	}
}

func TestConfigValidation(t *testing.T) {
	k := newSim(t, machine.NoLoad)
	tk := paperTask(2, time.Second)
	cpus, _ := assign.HWThreads(k.Machine().Topology(), assign.OneByOne, 2)
	base := Config{
		Task: tk, MandatoryPriority: 90, MandatoryCPU: 0,
		OptionalCPUs: cpus, OptionalDeadline: ms(75), Jobs: 1,
	}
	bad := []func(*Config){
		func(c *Config) { c.MandatoryPriority = 100 },
		func(c *Config) { c.MandatoryPriority = 10 },
		func(c *Config) { c.OptionalCPUs = cpus[:1] },
		func(c *Config) { c.OptionalDeadline = 0 },
		func(c *Config) { c.OptionalDeadline = ms(1000) },
		func(c *Config) { c.Jobs = 0 },
		func(c *Config) { c.Task.Period = 0 },
		func(c *Config) { c.OptionalCPUs = []machine.HWThread{5, 1} },
	}
	for i, mutate := range bad {
		cfg := base
		cfg.OptionalCPUs = append([]machine.HWThread(nil), cpus...)
		mutate(&cfg)
		if _, err := NewProcess(k, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := NewProcess(k, base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// Theorem 1 in execution: optional parts never delay the mandatory or
// wind-up parts; wind-up timing is identical with 1 vs many optional parts.
func TestTheorem1NoOptionalInterference(t *testing.T) {
	windupStart := func(np int) time.Duration {
		k := newSim(t, machine.NoLoad)
		var start time.Duration
		probes := Probes{OnWindupStart: func(job int, od, s engine.Time) {
			if job == 0 {
				start = s.Duration()
			}
		}}
		p := newProcess(t, k, paperTask(np, time.Second), 1, nil, probes, App{})
		p.Start()
		k.Run()
		return start
	}
	one := windupStart(1)
	many := windupStart(8)
	// The wind-up start differs only by ending-overhead (more parts to
	// collect), never by optional-part interference: both must be right at
	// the 70ms optional deadline, within a few ms of protocol overhead.
	if one < ms(70) || many < ms(70) {
		t.Fatalf("wind-up before optional deadline: one=%v many=%v", one, many)
	}
	if many-one > ms(10) {
		t.Fatalf("np=8 delayed wind-up by %v vs np=1: optional parts must not interfere", many-one)
	}
}

// Determinism: identical configurations give identical schedules.
func TestProcessDeterministic(t *testing.T) {
	run := func() []task.JobRecord {
		k := newSim(t, machine.CPUMemoryLoad)
		p := newProcess(t, k, paperTask(6, time.Second), 4, nil, Probes{}, App{})
		p.Start()
		k.Run()
		return p.Records()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("job counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Finish != b[i].Finish || a[i].WindupStart != b[i].WindupStart {
			t.Fatalf("job %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// The paper's conclusion: the One-by-One policy "has the potential to
// improve QoS compared with other assignment policies, because it assigns
// parallel optional parts to cores in a uniform manner, thus reducing the
// contention of hardware resources". With no background load and np small
// enough that One-by-One gives each part its own core, its parts make more
// progress by the optional deadline than All-by-All's SMT-packed parts.
func TestQoSOneByOneBeatsAllByAllNoLoad(t *testing.T) {
	qosUnder := func(pol assign.Policy) float64 {
		model := machine.DefaultCostModel()
		model.JitterFrac = 0
		m, err := machine.New(machine.Topology{Cores: 8, ThreadsPerCore: 4}, machine.NoLoad, model, 3)
		if err != nil {
			t.Fatal(err)
		}
		k := kernel.New(engine.New(), m)
		tk := paperTask(8, ms(100)) // parts longer than the window: progress measures throughput
		cpus, err := assign.HWThreads(m.Topology(), pol, 8)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProcess(k, Config{
			Task: tk, MandatoryPriority: 90, MandatoryCPU: 0,
			OptionalCPUs: cpus, OptionalDeadline: ms(70), Jobs: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		k.Run()
		return p.Stats().MeanQoS
	}
	one := qosUnder(assign.OneByOne)
	all := qosUnder(assign.AllByAll)
	if one <= all {
		t.Fatalf("One-by-One QoS %v should beat All-by-All %v without load", one, all)
	}
}

// Under a full background load the relationship flips: packing parts
// displaces the load from their SMT siblings, so All-by-All's parts see
// less contention than One-by-One's (which sit next to three background
// hogs each). The paper never measures QoS under load; this documents what
// its own contention argument implies.
func TestQoSAllByAllBeatsOneByOneUnderLoad(t *testing.T) {
	qosUnder := func(pol assign.Policy) float64 {
		model := machine.DefaultCostModel()
		model.JitterFrac = 0
		m, err := machine.New(machine.Topology{Cores: 8, ThreadsPerCore: 4}, machine.CPUMemoryLoad, model, 3)
		if err != nil {
			t.Fatal(err)
		}
		k := kernel.New(engine.New(), m)
		tk := paperTask(8, ms(100))
		cpus, err := assign.HWThreads(m.Topology(), pol, 8)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProcess(k, Config{
			Task: tk, MandatoryPriority: 90, MandatoryCPU: 0,
			OptionalCPUs: cpus, OptionalDeadline: ms(70), Jobs: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		k.Run()
		return p.Stats().MeanQoS
	}
	one := qosUnder(assign.OneByOne)
	all := qosUnder(assign.AllByAll)
	if all <= one {
		t.Fatalf("All-by-All QoS %v should beat One-by-One %v under full load", all, one)
	}
}
