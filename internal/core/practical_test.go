package core

import (
	"testing"
	"time"

	"rtseed/internal/assign"
	"rtseed/internal/machine"
	"rtseed/internal/task"
)

// practicalTask builds a two-section practical task: T=100ms, sections
// (m=10ms, 2 parts) and (m=15ms, 1 part), wind-up 20ms.
func practicalTask(o time.Duration) task.PracticalTask {
	return task.PracticalTask{
		Name: "prac",
		Sections: []task.Section{
			{Mandatory: ms(10), Optional: []time.Duration{o, o}},
			{Mandatory: ms(15), Optional: []time.Duration{o}},
		},
		Windup: ms(20),
		Period: ms(100),
	}
}

func TestPracticalValidate(t *testing.T) {
	if err := practicalTask(time.Second).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []task.PracticalTask{
		{Name: "no-sections", Windup: 1, Period: 10},
		{Name: "zero-m", Sections: []task.Section{{Mandatory: 0}}, Period: 10},
		{Name: "overfull", Sections: []task.Section{{Mandatory: 9}}, Windup: 9, Period: 10},
		{Name: "neg-opt", Sections: []task.Section{{Mandatory: 1, Optional: []time.Duration{-1}}}, Period: 10},
	}
	for _, tk := range bad {
		if err := tk.Validate(); err == nil {
			t.Errorf("%s accepted", tk.Name)
		}
	}
}

func TestPracticalFlattenEquivalence(t *testing.T) {
	tk := practicalTask(time.Second)
	flat := tk.Flatten()
	if flat.Mandatory != ms(25) || flat.Windup != ms(20) || flat.Period != ms(100) {
		t.Fatalf("flattened %+v", flat)
	}
	if flat.NumOptional() != 3 {
		t.Fatalf("flattened np %d, want 3", flat.NumOptional())
	}
	if tk.WCET() != flat.WCET() || tk.Utilization() != flat.Utilization() {
		t.Fatal("flatten must preserve the real-time demand")
	}
	if err := flat.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSectionDeadlines(t *testing.T) {
	tk := practicalTask(time.Second) // equal optional lengths
	ods, err := tk.SectionDeadlines(ms(75))
	if err != nil {
		t.Fatal(err)
	}
	if len(ods) != 2 {
		t.Fatalf("%d deadlines", len(ods))
	}
	// Slack = 75 - 25 = 50ms, split 2:1 by optional workload:
	// OD_0 = 10 + 33.3 = 43.3ms, OD_1 = 75ms.
	if ods[1] != ms(75) {
		t.Fatalf("last section deadline %v, want 75ms", ods[1])
	}
	if ods[0] <= ms(10) || ods[0] >= ods[1] {
		t.Fatalf("section deadlines %v not strictly increasing within budget", ods)
	}
	want0 := ms(10) + time.Duration(float64(ms(50))*2.0/3.0)
	if diff := ods[0] - want0; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("OD_0 = %v, want ~%v (2/3 of slack)", ods[0], want0)
	}
	if _, err := tk.SectionDeadlines(ms(10)); err == nil {
		t.Fatal("OD below total mandatory accepted")
	}
	if _, err := tk.SectionDeadlines(ms(200)); err == nil {
		t.Fatal("OD beyond period accepted")
	}
}

func TestPracticalProcessRuns(t *testing.T) {
	k := newSim(t, machine.NoLoad)
	tk := practicalTask(time.Second) // all parts overrun
	cpus, err := assign.HWThreads(k.Machine().Topology(), assign.OneByOne, tk.NumOptional())
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPracticalProcess(k, PracticalConfig{
		Task:              tk,
		MandatoryPriority: 90,
		MandatoryCPU:      0,
		OptionalCPUs:      cpus,
		OptionalDeadline:  ms(70),
		Jobs:              4,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	k.Run()
	st := p.Stats()
	if st.Jobs != 4 {
		t.Fatalf("jobs %d, want 4", st.Jobs)
	}
	if st.DeadlineMisses != 0 {
		t.Fatalf("misses %d", st.DeadlineMisses)
	}
	// 3 parts per job, all overrunning -> all terminated.
	if st.TerminatedParts != 12 {
		t.Fatalf("terminated %d, want 12", st.TerminatedParts)
	}
	// Sections ran in order: every job's wind-up starts at the last
	// section's optional deadline (70ms) plus ending overhead.
	for _, rec := range p.Records() {
		lag := rec.WindupStart - rec.Release - ms(70)
		if lag < 0 || lag > ms(10) {
			t.Fatalf("job %d wind-up lag %v", rec.Job, lag)
		}
	}
}

func TestPracticalSectionsInterleave(t *testing.T) {
	k := newSim(t, machine.NoLoad)
	// Short optional parts complete within their section windows.
	tk := practicalTask(ms(2))
	cpus, _ := assign.HWThreads(k.Machine().Topology(), assign.OneByOne, tk.NumOptional())
	p, err := NewPracticalProcess(k, PracticalConfig{
		Task:              tk,
		MandatoryPriority: 90,
		MandatoryCPU:      0,
		OptionalCPUs:      cpus,
		OptionalDeadline:  ms(70),
		Jobs:              2,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	k.Run()
	st := p.Stats()
	if st.CompletedParts != 6 {
		t.Fatalf("completed %d, want 6", st.CompletedParts)
	}
	if st.MeanQoS != 1 {
		t.Fatalf("QoS %v", st.MeanQoS)
	}
}

func TestPracticalWithOneSectionMatchesParallelExtended(t *testing.T) {
	// With a single section the practical model reduces to the
	// parallel-extended model: same outcomes, same deadline behaviour.
	k1 := newSim(t, machine.NoLoad)
	single := task.PracticalTask{
		Name:     "one",
		Sections: []task.Section{{Mandatory: ms(25), Optional: []time.Duration{time.Second, time.Second}}},
		Windup:   ms(25),
		Period:   ms(100),
	}
	cpus, _ := assign.HWThreads(k1.Machine().Topology(), assign.OneByOne, 2)
	pp, err := NewPracticalProcess(k1, PracticalConfig{
		Task: single, MandatoryPriority: 90, MandatoryCPU: 0,
		OptionalCPUs: cpus, OptionalDeadline: ms(70), Jobs: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	pp.Start()
	k1.Run()

	k2 := newSim(t, machine.NoLoad)
	pe := newProcess(t, k2, paperTask(2, time.Second), 3, nil, Probes{}, App{})
	pe.Start()
	k2.Run()

	a, b := pp.Stats(), pe.Stats()
	if a.TerminatedParts != b.TerminatedParts || a.DeadlineMisses != b.DeadlineMisses {
		t.Fatalf("practical %+v vs parallel-extended %+v", a, b)
	}
}

func TestPracticalConfigValidation(t *testing.T) {
	k := newSim(t, machine.NoLoad)
	tk := practicalTask(time.Second)
	cpus, _ := assign.HWThreads(k.Machine().Topology(), assign.OneByOne, tk.NumOptional())
	base := PracticalConfig{
		Task: tk, MandatoryPriority: 90, MandatoryCPU: 0,
		OptionalCPUs: cpus, OptionalDeadline: ms(70), Jobs: 1,
	}
	bad := []func(*PracticalConfig){
		func(c *PracticalConfig) { c.MandatoryPriority = 10 },
		func(c *PracticalConfig) { c.Jobs = 0 },
		func(c *PracticalConfig) { c.OptionalCPUs = cpus[:1] },
		func(c *PracticalConfig) { c.OptionalDeadline = ms(5) },
		func(c *PracticalConfig) { c.SectionDeadlines = []time.Duration{ms(40)} },
		func(c *PracticalConfig) { c.SectionDeadlines = []time.Duration{ms(50), ms(40)} },
		func(c *PracticalConfig) { c.SectionDeadlines = []time.Duration{ms(40), ms(90)} },
	}
	for i, mutate := range bad {
		cfg := base
		mutate(&cfg)
		if _, err := NewPracticalProcess(k, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := NewPracticalProcess(k, base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}
