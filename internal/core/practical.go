package core

import (
	"fmt"
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/task"
)

// PracticalConfig configures a practical imprecise task (multiple mandatory
// parts, paper §VII future work) as an RT-Seed process.
type PracticalConfig struct {
	// Task is the multi-section timing model.
	Task task.PracticalTask
	// MandatoryPriority is the mandatory thread's RTQ priority.
	MandatoryPriority int
	// MandatoryCPU pins the mandatory thread.
	MandatoryCPU machine.HWThread
	// OptionalCPUs pins the optional threads, section-major (section 0's
	// parts first); its length must equal Task.NumOptional().
	OptionalCPUs []machine.HWThread
	// OptionalDeadline is the task-level relative OD (from the RMWP
	// analysis of Task.Flatten()); per-section deadlines are derived with
	// Task.SectionDeadlines unless SectionDeadlines is set explicitly.
	OptionalDeadline time.Duration
	// SectionDeadlines optionally overrides the per-section relative
	// optional deadlines (strictly increasing, last <= OptionalDeadline).
	SectionDeadlines []time.Duration
	// Jobs is how many jobs to execute.
	Jobs int
	// Termination selects the termination mechanism (default sigjmp).
	Termination Termination
	// OnWindup optionally receives each job's per-part progress,
	// section-major.
	OnWindup func(job int, progress []float64)
}

// PracticalProcess runs a practical imprecise task: within each job the
// sections execute in order — mandatory part, then that section's parallel
// optional parts until the section's optional deadline — and the single
// wind-up part closes the job.
type PracticalProcess struct {
	k    *kernel.Kernel
	cfg  PracticalConfig
	term Termination

	sectionODs []time.Duration // relative, one per section
	flat       []partRef       // section-major part index

	mandatory *kernel.Thread
	optionals []*kernel.Thread
	mandCond  *kernel.CondVar
	optConds  []*kernel.CondVar
	endLock   *kernel.Mutex

	running     bool
	partPending []bool
	remaining   int
	curJob      int
	curOD       engine.Time
	curParts    []task.PartRecord

	records []task.JobRecord
}

type partRef struct {
	section int
	length  time.Duration
}

// NewPracticalProcess validates and builds the process.
func NewPracticalProcess(k *kernel.Kernel, cfg PracticalConfig) (*PracticalProcess, error) {
	if err := cfg.Task.Validate(); err != nil {
		return nil, err
	}
	if cfg.MandatoryPriority < RTQMin || cfg.MandatoryPriority > RTQMax {
		return nil, fmt.Errorf("core: mandatory priority %d outside RTQ", cfg.MandatoryPriority)
	}
	if cfg.Jobs <= 0 {
		return nil, fmt.Errorf("core: jobs must be positive")
	}
	np := cfg.Task.NumOptional()
	if len(cfg.OptionalCPUs) != np {
		return nil, fmt.Errorf("core: %d optional CPUs for %d parts", len(cfg.OptionalCPUs), np)
	}
	ods := cfg.SectionDeadlines
	if ods == nil {
		var err error
		ods, err = cfg.Task.SectionDeadlines(cfg.OptionalDeadline)
		if err != nil {
			return nil, err
		}
	}
	if len(ods) != len(cfg.Task.Sections) {
		return nil, fmt.Errorf("core: %d section deadlines for %d sections", len(ods), len(cfg.Task.Sections))
	}
	for i := 1; i < len(ods); i++ {
		if ods[i] <= ods[i-1] {
			return nil, fmt.Errorf("core: section deadlines must increase, got %v", ods)
		}
	}
	if last := ods[len(ods)-1]; last > cfg.OptionalDeadline || cfg.OptionalDeadline > cfg.Task.Period {
		return nil, fmt.Errorf("core: section deadlines %v exceed optional deadline %v", ods, cfg.OptionalDeadline)
	}
	term := cfg.Termination
	if term == nil {
		term = SigjmpTermination{}
	}
	optPrio, err := OptionalPriority(cfg.MandatoryPriority)
	if err != nil {
		return nil, err
	}

	p := &PracticalProcess{
		k:           k,
		cfg:         cfg,
		term:        term,
		sectionODs:  ods,
		running:     true,
		partPending: make([]bool, np),
		mandCond:    k.NewCondVar(cfg.Task.Name + ".mandatory"),
		endLock:     k.NewMutex(cfg.Task.Name + ".end"),
		optConds:    make([]*kernel.CondVar, np),
		optionals:   make([]*kernel.Thread, np),
	}
	for si, s := range cfg.Task.Sections {
		for _, o := range s.Optional {
			p.flat = append(p.flat, partRef{section: si, length: o})
		}
	}
	p.mandatory, err = k.NewThread(kernel.ThreadConfig{
		Name:     cfg.Task.Name + ".mand",
		Priority: cfg.MandatoryPriority,
		CPU:      cfg.MandatoryCPU,
	}, p.mandatoryBody)
	if err != nil {
		return nil, err
	}
	for i := 0; i < np; i++ {
		i := i
		p.optConds[i] = k.NewCondVar(fmt.Sprintf("%s.opt%d", cfg.Task.Name, i))
		p.optionals[i], err = k.NewThread(kernel.ThreadConfig{
			Name:     fmt.Sprintf("%s.opt%d", cfg.Task.Name, i),
			Priority: optPrio,
			CPU:      cfg.OptionalCPUs[i],
		}, func(c *kernel.TCB) { p.optionalBody(c, i) })
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Start launches the process's threads.
func (p *PracticalProcess) Start() {
	for _, t := range p.optionals {
		t.Start()
	}
	p.mandatory.Start()
}

// Records returns the accumulated job records (parts section-major).
func (p *PracticalProcess) Records() []task.JobRecord {
	out := make([]task.JobRecord, len(p.records))
	copy(out, p.records)
	return out
}

// Stats summarizes the accumulated job records.
func (p *PracticalProcess) Stats() task.Stats { return task.Summarize(p.records) }

// SectionODs returns the per-section relative optional deadlines in use.
func (p *PracticalProcess) SectionODs() []time.Duration {
	out := make([]time.Duration, len(p.sectionODs))
	copy(out, p.sectionODs)
	return out
}

func (p *PracticalProcess) mandatoryBody(c *kernel.TCB) {
	t := p.cfg.Task
	np := t.NumOptional()
	for job := 0; job < p.cfg.Jobs; job++ {
		release := engine.At(time.Duration(job) * t.Period)
		c.SleepUntil(release)
		mandStart := c.Now()
		p.curJob = job
		p.curParts = make([]task.PartRecord, np)

		base := 0
		for si, s := range t.Sections {
			c.Compute(s.Mandatory)
			sectionOD := release.Add(p.sectionODs[si])
			p.curOD = sectionOD
			nparts := len(s.Optional)
			if nparts == 0 {
				continue
			}
			if c.Now() < sectionOD {
				p.remaining = nparts
				for k := 0; k < nparts; k++ {
					p.partPending[base+k] = true
				}
				for k := 0; k < nparts; k++ {
					c.CondSignal(p.optConds[base+k])
				}
				for p.remaining > 0 {
					c.CondWait(p.mandCond)
				}
			} else {
				for k := 0; k < nparts; k++ {
					p.curParts[base+k] = task.PartRecord{
						Outcome: task.PartDiscarded,
						Length:  s.Optional[k],
					}
				}
			}
			base += nparts
		}

		windupStart := c.Now()
		c.Compute(t.Windup)
		if fn := p.cfg.OnWindup; fn != nil {
			progress := make([]float64, np)
			for k, pr := range p.curParts {
				progress[k] = pr.Progress()
			}
			fn(job, progress)
		}
		p.records = append(p.records, task.JobRecord{
			Job:            job,
			Release:        release.Duration(),
			MandatoryStart: mandStart.Duration(),
			WindupStart:    windupStart.Duration(),
			Finish:         c.Now().Duration(),
			Deadline:       release.Add(t.Period).Duration(),
			Parts:          p.curParts,
		})
	}
	p.running = false
	for _, cv := range p.optConds {
		c.CondSignal(cv)
	}
}

func (p *PracticalProcess) optionalBody(c *kernel.TCB, idx int) {
	ref := p.flat[idx]
	for {
		for p.running && !p.partPending[idx] {
			c.CondWait(p.optConds[idx])
		}
		if !p.partPending[idx] {
			return
		}
		p.partPending[idx] = false
		od := p.curOD
		completed, ran := p.term.RunOptional(c, od, ref.length)
		outcome := task.PartTerminated
		if completed {
			outcome = task.PartCompleted
		}
		p.curParts[idx] = task.PartRecord{Outcome: outcome, Executed: ran, Length: ref.length}
		c.MutexLock(p.endLock)
		c.ChargeOp(machine.OpEndOptional)
		p.remaining--
		last := p.remaining == 0
		c.MutexUnlock(p.endLock)
		if last {
			c.CondSignal(p.mandCond)
		}
	}
}
