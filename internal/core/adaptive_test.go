package core

import (
	"testing"
	"time"

	"rtseed/internal/assign"
	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/task"
)

func TestAdaptiveNextAIMD(t *testing.T) {
	a := &Adaptive{EndingBudget: time.Millisecond}
	// Over budget: multiplicative decrease.
	if got := a.next(16, 32, 2*time.Millisecond); got != 12 {
		t.Fatalf("decrease: %d, want 12", got)
	}
	// Under half budget: additive increase.
	if got := a.next(16, 32, 100*time.Microsecond); got != 17 {
		t.Fatalf("increase: %d, want 17", got)
	}
	// In the comfort band: hold.
	if got := a.next(16, 32, 700*time.Microsecond); got != 16 {
		t.Fatalf("hold: %d, want 16", got)
	}
	// Floors and caps.
	if got := a.next(1, 32, time.Hour); got != 1 {
		t.Fatalf("floor: %d, want 1", got)
	}
	if got := a.next(32, 32, 0); got != 32 {
		t.Fatalf("cap: %d, want 32", got)
	}
	b := &Adaptive{EndingBudget: time.Millisecond, MinParts: 4, Increase: 3}
	if got := b.next(4, 32, time.Hour); got != 4 {
		t.Fatalf("custom floor: %d, want 4", got)
	}
	if got := b.next(10, 32, 0); got != 13 {
		t.Fatalf("custom step: %d, want 13", got)
	}
}

// Under heavy load with many parts, the controller backs off until the
// ending overhead fits its budget; without it, the full part count runs
// every job.
func TestAdaptiveControllerConverges(t *testing.T) {
	const np = 32
	runWith := func(adaptive *Adaptive) (*Process, *kernel.Kernel) {
		model := machine.DefaultCostModel()
		model.JitterFrac = 0
		mach, err := machine.New(machine.XeonPhi3120A(), machine.CPUMemoryLoad, model, 9)
		if err != nil {
			t.Fatal(err)
		}
		k := kernel.New(engine.New(), mach)
		tk := task.Uniform("a", 25*time.Millisecond, 25*time.Millisecond, time.Second, np, 100*time.Millisecond)
		cpus, err := assign.HWThreads(mach.Topology(), assign.OneByOne, np)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProcess(k, Config{
			Task:              tk,
			MandatoryPriority: 90,
			MandatoryCPU:      0,
			OptionalCPUs:      cpus,
			OptionalDeadline:  65 * time.Millisecond,
			Jobs:              20,
			Adaptive:          adaptive,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		k.Run()
		return p, k
	}

	// At np=32 under CPU-Memory load the ending overhead is several ms;
	// budget it to 2ms and the controller must shed parts.
	adaptive := &Adaptive{EndingBudget: 2 * time.Millisecond}
	p, _ := runWith(adaptive)
	if got := p.ActiveParts(); got >= np {
		t.Fatalf("controller did not back off: active=%d", got)
	}
	if got := p.ActiveParts(); got < 1 {
		t.Fatalf("controller under floor: %d", got)
	}
	// Discarded parts appear in the records once the controller sheds.
	if st := p.Stats(); st.DiscardedParts == 0 {
		t.Fatalf("expected shed parts to be discarded: %+v", st)
	}
	// The last jobs' ending lag respects the budget (with protocol slack).
	recs := p.Records()
	last := recs[len(recs)-1]
	lag := time.Duration(last.WindupStart) - time.Duration(last.Release) - 65*time.Millisecond
	if lag > 3*time.Millisecond {
		t.Fatalf("converged lag %v exceeds budget", lag)
	}

	// Without the controller every part runs every job.
	free, _ := runWith(nil)
	if free.ActiveParts() != np {
		t.Fatalf("uncontrolled process should keep all %d parts, got %d", np, free.ActiveParts())
	}
	if st := free.Stats(); st.DiscardedParts != 0 {
		t.Fatalf("uncontrolled process discarded parts: %+v", st)
	}
}

// With a generous budget the controller keeps (or climbs back to) the full
// part count.
func TestAdaptiveGenerousBudgetKeepsAllParts(t *testing.T) {
	model := machine.DefaultCostModel()
	model.JitterFrac = 0
	mach, err := machine.New(machine.Topology{Cores: 8, ThreadsPerCore: 4}, machine.NoLoad, model, 9)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(engine.New(), mach)
	tk := task.Uniform("a", 20*time.Millisecond, 20*time.Millisecond, time.Second, 4, 100*time.Millisecond)
	cpus, _ := assign.HWThreads(mach.Topology(), assign.OneByOne, 4)
	p, err := NewProcess(k, Config{
		Task:              tk,
		MandatoryPriority: 90,
		MandatoryCPU:      0,
		OptionalCPUs:      cpus,
		OptionalDeadline:  70 * time.Millisecond,
		Jobs:              10,
		Adaptive:          &Adaptive{EndingBudget: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	k.Run()
	if p.ActiveParts() != 4 {
		t.Fatalf("active parts %d, want 4", p.ActiveParts())
	}
	if st := p.Stats(); st.DiscardedParts != 0 {
		t.Fatalf("generous budget discarded parts: %+v", st)
	}
}

// Sporadic releases: with jitter, releases stay at least a period apart in
// expectation and every job's deadline shifts with its release, so a
// well-budgeted task still never misses.
func TestReleaseJitter(t *testing.T) {
	k := newSim(t, machine.NoLoad)
	tk := task.Uniform("j", ms(20), ms(20), time.Second, 2, ms(100))
	cpus, _ := assign.HWThreads(k.Machine().Topology(), assign.OneByOne, 2)
	p, err := NewProcess(k, Config{
		Task:              tk,
		MandatoryPriority: 90,
		MandatoryCPU:      0,
		OptionalCPUs:      cpus,
		OptionalDeadline:  ms(70),
		Jobs:              10,
		ReleaseJitter:     ms(20),
		JitterSeed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	k.Run()
	recs := p.Records()
	if len(recs) != 10 {
		t.Fatalf("%d jobs", len(recs))
	}
	jittered := false
	for _, rec := range recs {
		base := time.Duration(rec.Job) * tk.Period
		off := rec.Release - base
		if off < 0 || off >= ms(20) {
			t.Fatalf("job %d jitter %v outside [0,20ms)", rec.Job, off)
		}
		if off > 0 {
			jittered = true
		}
		// Deadline shifted with the release.
		if rec.Deadline != rec.Release+tk.Period {
			t.Fatalf("job %d deadline %v not release+T", rec.Job, rec.Deadline)
		}
		if !rec.Met() {
			t.Fatalf("job %d missed under jitter", rec.Job)
		}
	}
	if !jittered {
		t.Fatal("no job was actually jittered")
	}
	// Determinism: same seed, same releases.
	k2 := newSim(t, machine.NoLoad)
	cpus2, _ := assign.HWThreads(k2.Machine().Topology(), assign.OneByOne, 2)
	p2, err := NewProcess(k2, Config{
		Task: tk, MandatoryPriority: 90, MandatoryCPU: 0,
		OptionalCPUs: cpus2, OptionalDeadline: ms(70), Jobs: 10,
		ReleaseJitter: ms(20), JitterSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	p2.Start()
	k2.Run()
	for i, rec := range p2.Records() {
		if rec.Release != recs[i].Release {
			t.Fatal("jitter must be deterministic per seed")
		}
	}
}

// Skip-over: when the try-catch pathology makes jobs overrun whole periods,
// the skip policy drops the dead windows and re-synchronizes each executed
// job with the period grid, while the default policy drains the backlog
// late.
func TestOverrunSkipPolicy(t *testing.T) {
	runPolicy := func(policy OverrunPolicy) *Process {
		k := newSim(t, machine.NoLoad)
		tk := task.Uniform("o", ms(20), ms(20), time.Second, 2, ms(100))
		cpus, _ := assign.HWThreads(k.Machine().Topology(), assign.OneByOne, 2)
		p, err := NewProcess(k, Config{
			Task:              tk,
			MandatoryPriority: 90,
			MandatoryCPU:      0,
			OptionalCPUs:      cpus,
			OptionalDeadline:  ms(70),
			Jobs:              12,
			Termination:       TryCatchTermination{}, // loses the timer after job 0
			Overrun:           policy,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		k.RunUntil(engine.At(20 * time.Second))
		return p
	}
	skip := runPolicy(OverrunSkip)
	if skip.SkippedJobs() == 0 {
		t.Fatal("the try-catch pathology should force skipped windows")
	}
	// Every executed job started within its own period window.
	for _, rec := range skip.Records() {
		if rec.MandatoryStart >= rec.Release+ms(100) {
			t.Fatalf("job %d started at %v, outside its window from %v", rec.Job, rec.MandatoryStart, rec.Release)
		}
	}
	cont := runPolicy(OverrunContinue)
	if cont.SkippedJobs() != 0 {
		t.Fatal("continue policy must not skip")
	}
	// The backlog drains: some job starts after its whole window passed.
	late := false
	for _, rec := range cont.Records() {
		if rec.MandatoryStart >= rec.Release+ms(100) {
			late = true
		}
	}
	if !late {
		t.Fatal("continue policy should run windows late under overrun")
	}
	if OverrunSkip.String() != "skip" || OverrunContinue.String() != "continue" {
		t.Fatal("policy labels")
	}
}
