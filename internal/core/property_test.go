package core

import (
	"testing"
	"testing/quick"
	"time"

	"rtseed/internal/assign"
	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/task"
)

// Property suite over randomized single-task configurations: the middleware
// must uphold the model's invariants for any feasible parameters.
func TestPropertyProcessInvariants(t *testing.T) {
	f := func(np8, oLen8, load8, pol8, seed uint8) bool {
		np := int(np8)%6 + 1
		optLen := time.Duration(oLen8%120+1) * time.Millisecond
		load := machine.Loads()[int(load8)%3]
		pol := assign.Policies()[int(pol8)%3]

		model := machine.DefaultCostModel()
		m, err := machine.New(machine.Topology{Cores: 8, ThreadsPerCore: 4}, load, model, uint64(seed)+1)
		if err != nil {
			return false
		}
		k := kernel.New(engine.New(), m)
		tk := task.Uniform("p", 20*time.Millisecond, 20*time.Millisecond, optLen, np, 100*time.Millisecond)
		cpus, err := assign.HWThreads(m.Topology(), pol, np)
		if err != nil {
			return false
		}
		const jobs = 3
		p, err := NewProcess(k, Config{
			Task:              tk,
			MandatoryPriority: 90,
			MandatoryCPU:      0,
			OptionalCPUs:      cpus,
			OptionalDeadline:  70 * time.Millisecond,
			Jobs:              jobs,
		})
		if err != nil {
			return false
		}
		p.Start()
		k.RunUntil(engine.At(time.Second))

		recs := p.Records()
		if len(recs) != jobs {
			return false
		}
		for _, rec := range recs {
			// Timestamps are ordered within a job.
			if !(rec.Release <= rec.MandatoryStart &&
				rec.MandatoryStart <= rec.WindupStart &&
				rec.WindupStart <= rec.Finish) {
				return false
			}
			if len(rec.Parts) != np {
				return false
			}
			for _, part := range rec.Parts {
				switch part.Outcome {
				case task.PartCompleted:
					// A completed part executed its full length.
					if part.Executed < part.Length {
						return false
					}
				case task.PartTerminated:
					// A terminated part executed strictly less.
					if part.Executed >= part.Length {
						return false
					}
				case task.PartDiscarded:
					if part.Executed != 0 {
						return false
					}
				default:
					return false
				}
				if part.Progress() < 0 || part.Progress() > 1 {
					return false
				}
			}
			// The wind-up never starts before a terminated part's optional
			// deadline (70ms after release).
			terminated := false
			for _, part := range rec.Parts {
				if part.Outcome == task.PartTerminated {
					terminated = true
				}
			}
			if terminated && rec.WindupStart < rec.Release+70*time.Millisecond {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// A task with no optional parts degenerates to plain periodic execution:
// the wind-up follows the mandatory part immediately.
func TestProcessWithoutOptionalParts(t *testing.T) {
	k := newSim(t, machine.NoLoad)
	tk := task.Uniform("pure", ms(20), ms(20), 0, 0, ms(100))
	p, err := NewProcess(k, Config{
		Task:              tk,
		MandatoryPriority: 90,
		MandatoryCPU:      0,
		OptionalCPUs:      nil,
		OptionalDeadline:  ms(70),
		Jobs:              3,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	k.Run()
	st := p.Stats()
	if st.Jobs != 3 || st.DeadlineMisses != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.MeanQoS != 1 {
		t.Fatalf("no optional parts means full QoS, got %v", st.MeanQoS)
	}
	for _, rec := range p.Records() {
		// Wind-up right after mandatory, not at the optional deadline.
		if rec.WindupStart-rec.MandatoryStart > ms(25) {
			t.Fatalf("wind-up waited: %+v", rec)
		}
	}
}

// Zero-length optional parts complete instantly.
func TestProcessZeroLengthOptionals(t *testing.T) {
	k := newSim(t, machine.NoLoad)
	tk := task.Uniform("z", ms(20), ms(20), 0, 2, ms(100))
	cpus, _ := assign.HWThreads(k.Machine().Topology(), assign.OneByOne, 2)
	p, err := NewProcess(k, Config{
		Task:              tk,
		MandatoryPriority: 90,
		MandatoryCPU:      0,
		OptionalCPUs:      cpus,
		OptionalDeadline:  ms(70),
		Jobs:              2,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	k.Run()
	st := p.Stats()
	if st.CompletedParts != 4 {
		t.Fatalf("completed %d, want 4", st.CompletedParts)
	}
	if st.DeadlineMisses != 0 {
		t.Fatalf("misses %d", st.DeadlineMisses)
	}
}

// Truncating the simulation mid-run (RunUntil) leaves a consistent partial
// record and leaks no goroutines (Shutdown unwinds the parked threads).
func TestProcessTruncatedRun(t *testing.T) {
	k := newSim(t, machine.NoLoad)
	p := newProcess(t, k, paperTask(4, time.Second), 100, nil, Probes{}, App{})
	p.Start()
	k.RunUntil(engine.At(250 * time.Millisecond)) // ~2.5 jobs
	recs := p.Records()
	if len(recs) < 2 || len(recs) > 3 {
		t.Fatalf("%d complete jobs recorded after truncation, want 2-3", len(recs))
	}
	for _, th := range k.Threads() {
		if th.State() != kernel.StateExited {
			t.Fatalf("thread %v not unwound after shutdown", th)
		}
	}
}

// The same process configuration with jitter enabled still meets all
// deadlines — the overhead margin absorbs the noise.
func TestProcessWithJitter(t *testing.T) {
	model := machine.DefaultCostModel() // default jitter
	m, err := machine.New(machine.Topology{Cores: 8, ThreadsPerCore: 4}, machine.CPUMemoryLoad, model, 99)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(engine.New(), m)
	tk := paperTask(4, time.Second)
	cpus, _ := assign.HWThreads(m.Topology(), assign.OneByOne, 4)
	p, err := NewProcess(k, Config{
		Task:              tk,
		MandatoryPriority: 90,
		MandatoryCPU:      0,
		OptionalCPUs:      cpus,
		OptionalDeadline:  ms(70),
		Jobs:              10,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	k.Run()
	if st := p.Stats(); st.DeadlineMisses != 0 {
		t.Fatalf("misses under jitter: %+v", st)
	}
}
