// Package kernel is a deterministic discrete-event simulation of the Linux
// facilities RT-Seed is built on (paper §IV): per-CPU SCHED_FIFO run queues
// with 99 priority levels implemented as double circular linked lists,
// fixed-priority preemptive dispatch, clock_nanosleep, condition variables,
// one-shot POSIX timers with SIGALRM delivery and per-thread signal masks,
// and CPU affinity.
//
// Simulated thread bodies come in two forms behind one API. The
// continuation executor (NewBodyThread) is the production path: a body is a
// resumable state machine whose Step the kernel calls inline from its
// dispatch path, so a context switch is a function call and a simulation
// needs no goroutines regardless of thread count. The goroutine executor
// (NewThread) models a body as an ordinary blocking Go function on its own
// goroutine, hand-shaken with the kernel through unbuffered channels; it is
// retained as the differential oracle (both executors produce byte-identical
// traces for the same program) and for tests where a blocking script reads
// better. Either way exactly one simulated thread executes host code at a
// time, so simulations are fully deterministic. Virtual time passes only
// inside kernel primitives, priced by the machine cost model.
package kernel

import (
	"fmt"
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/machine"
	"rtseed/internal/trace"
)

// Event priorities: at equal timestamps, releases fire before timer
// expiries, which fire before service completions and dispatches.
const (
	prioRelease = iota
	prioTimer
	prioService
	prioDispatch
)

// Kernel simulates a multiprocessor fixed-priority kernel on top of an
// engine and a machine model.
type Kernel struct {
	eng  *engine.Engine
	mach *machine.Machine
	cpus []*cpu

	nextTID int
	threads []*Thread

	tr *trace.Tracer
}

// New builds a kernel for every hardware thread of the machine.
func New(eng *engine.Engine, mach *machine.Machine) *Kernel {
	k := &Kernel{eng: eng, mach: mach}
	n := mach.Topology().NumHWThreads()
	k.cpus = make([]*cpu, n)
	for i := range k.cpus {
		c := newCPU(machine.HWThread(i))
		// The per-CPU engine callbacks run inside Step's event dispatch.
		//rtseed:kernelctx
		c.dispatchFn = func() { k.finishDispatch(c) }
		//rtseed:kernelctx
		c.serviceFn = func() { k.finishService(c) }
		k.cpus[i] = c
	}
	return k
}

// Engine returns the underlying discrete-event engine.
func (k *Kernel) Engine() *engine.Engine { return k.eng }

// Machine returns the underlying machine model.
func (k *Kernel) Machine() *machine.Machine { return k.mach }

// Now returns the current virtual time.
func (k *Kernel) Now() engine.Time { return k.eng.Now() }

// SetTrace attaches a tracer: every thread state transition and timer
// action is emitted into it as a trace.Record. Pass nil to disable tracing.
func (k *Kernel) SetTrace(tr *trace.Tracer) { k.tr = tr }

// Trace returns the attached tracer, or nil.
func (k *Kernel) Trace() *trace.Tracer { return k.tr }

// emit writes one trace record for t at the current virtual time. This sits
// on every scheduling hot path, so with no tracer attached it must cost one
// nil check and nothing else.
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) emit(t *Thread, kind trace.Kind, arg uint64) {
	if k.tr != nil {
		k.tr.Emit(k.eng.Now(), uint16(t.cpuID), uint32(t.id), kind, arg)
	}
}

// ThreadInfos returns the trace metadata of every thread ever created, in
// creation order — the thread table written alongside a trace file.
func (k *Kernel) ThreadInfos() []trace.ThreadInfo {
	out := make([]trace.ThreadInfo, len(k.threads))
	for i, t := range k.threads {
		out[i] = trace.ThreadInfo{
			TID:      uint32(t.id),
			CPU:      uint16(t.cpuID),
			Priority: uint16(t.prio),
			Name:     t.name,
		}
	}
	return out
}

// Run processes simulation events until none remain, then shuts down any
// still-parked simulated threads so no goroutines leak.
func (k *Kernel) Run() {
	k.eng.Run()
	k.Shutdown()
}

// RunUntil processes simulation events up to the deadline, then shuts down
// remaining simulated threads.
func (k *Kernel) RunUntil(deadline engine.Time) {
	k.eng.RunUntil(deadline)
	k.Shutdown()
}

// Shutdown force-terminates every simulated thread that has not exited.
// Blocked or sleeping threads are unwound at their current kernel call:
// continuation threads are simply marked exited (there is nothing to
// unwind), goroutine threads have their parked goroutines released. The
// kernel must be quiescent (no thread mid-handoff), which is always the case
// between engine events. After Shutdown no goroutine created by either
// executor remains.
func (k *Kernel) Shutdown() {
	for _, t := range k.threads {
		t.kill()
	}
	for _, c := range k.cpus {
		if c.current != nil {
			c.current = nil
		}
		k.mach.SetOccupant(c.id, machine.OccupantIdle)
	}
}

// Threads returns all threads ever created, in creation order.
func (k *Kernel) Threads() []*Thread {
	out := make([]*Thread, len(k.threads))
	copy(out, k.threads)
	return out
}

//rtseed:noalloc
func (k *Kernel) cpu(h machine.HWThread) *cpu {
	if int(h) < 0 || int(h) >= len(k.cpus) {
		badHWThread(h) // cold path split out so cpu() stays inlinable
	}
	return k.cpus[h]
}

func badHWThread(h machine.HWThread) {
	panic(fmt.Sprintf("kernel: invalid hw thread %d", h))
}

// makeReady places t on its CPU's run queue and triggers dispatch or
// preemption as needed. atFront enqueues at the head of t's priority level
// (SCHED_FIFO semantics for preempted threads).
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) makeReady(t *Thread, atFront bool) {
	c := k.cpu(t.cpuID)
	t.state = StateReady
	c.runq.enqueue(t, atFront)
	k.emit(t, trace.KindReady, 0)
	k.considerCPU(c)
}

// considerCPU kicks dispatch or preemption on c after its run queue changed.
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) considerCPU(c *cpu) {
	top := c.runq.topPriority()
	if top < 0 {
		return
	}
	switch {
	case c.current == nil && !c.busy:
		k.scheduleDispatch(c)
	case c.current != nil && !c.busy && c.current.preemptible() && top > c.current.prio:
		k.preempt(c)
	}
}

// preempt stops the current (computing) thread of c and requeues it at the
// front of its priority level, then dispatches the higher-priority thread.
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) preempt(c *cpu) {
	t := c.current
	if t == nil || t.state != StateComputing {
		panic("kernel: preempt of non-computing thread")
	}
	// Account for the compute time consumed so far: wall time for CPU
	// accounting, nominal work for the burst's remaining demand.
	consumed := k.eng.Now().Sub(t.computeStart)
	done := nominal(consumed, t.computeFactor)
	t.computeRemaining -= done
	if t.computeRemaining < 0 {
		t.computeRemaining = 0
	}
	t.computeRan += done
	k.accountRun(c, t, consumed)
	k.eng.Cancel(t.computeDone)
	t.computeDone = engine.Event{}
	k.setCurrent(c, nil)
	t.state = StateReady
	t.dispatchOp = machine.OpContextSwitch
	k.emit(t, trace.KindPreempt, 0)
	c.runq.enqueue(t, true)
	k.scheduleDispatch(c)
}

// scheduleDispatch begins a context switch on c: it picks the
// highest-priority ready thread, charges the switch cost, and then runs it.
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) scheduleDispatch(c *cpu) {
	if c.busy || c.current != nil {
		return
	}
	t := c.runq.pop()
	if t == nil {
		return
	}
	c.busy = true
	c.dispatchT = t
	cost := k.mach.Cost(t.dispatchOp, c.id)
	k.eng.After(cost, prioDispatch, c.dispatchFn)
}

// finishDispatch completes the context switch scheduled by scheduleDispatch.
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) finishDispatch(c *cpu) {
	t := c.dispatchT
	c.dispatchT = nil
	c.busy = false
	// A higher-priority thread may have become ready during the
	// switch window; honour it before running t.
	if top := c.runq.topPriority(); top > t.prio {
		t.dispatchOp = machine.OpContextSwitch
		c.runq.enqueue(t, true)
		k.scheduleDispatch(c)
		return
	}
	k.setCurrent(c, t)
	k.emit(t, trace.KindDispatch, 0)
	k.resumeOnCPU(t)
}

// resumeOnCPU continues a thread that has just been given its CPU: either it
// resumes an in-progress compute burst, or it returns from the kernel call
// it was parked in.
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) resumeOnCPU(t *Thread) {
	if t.computeRemaining > 0 || t.inCompute {
		k.startCompute(t)
		return
	}
	k.resumeThread(t, t.pendingReply)
}

// setCurrent installs t (or nil) as the running thread of c and updates the
// machine occupancy used for SMT contention pricing.
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) setCurrent(c *cpu, t *Thread) {
	c.current = t
	if t != nil {
		t.state = StateRunning
		k.mach.SetOccupant(c.id, machine.OccupantRT)
	} else {
		k.mach.SetOccupant(c.id, machine.OccupantIdle)
	}
}

// resumeThread hands the CPU to t's host code and handles the next kernel
// request it issues. Exactly one thread runs host code at a time. On the
// continuation executor the "context switch" is a plain call into the
// body's Step; on the goroutine executor it is a channel round-trip with
// the thread's parked goroutine.
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) resumeThread(t *Thread, reply replyMsg) {
	if t.stepBody != nil {
		k.stepThread(t, reply)
		return
	}
	t.reply = reply
	t.run <- resumeMsg{}
	<-t.yielded
	k.handleRequest(t)
}

// startCompute begins or resumes a compute burst for the running thread t.
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) startCompute(t *Thread) {
	c := k.cpu(t.cpuID)
	if c.current != t {
		panic("kernel: startCompute for non-current thread")
	}
	t.state = StateComputing
	t.inCompute = true
	// A pending SIGALRM is delivered as soon as the thread enters (or
	// re-enters) an interruptible burst with the signal unmasked.
	if t.interruptible && t.pendingAlarm && !t.alarmMasked {
		k.interruptCompute(t)
		return
	}
	t.computeStart = k.eng.Now()
	// computeRemaining is nominal work. Uninterruptible bursts (mandatory
	// and wind-up parts) run at WCET semantics — their durations already
	// include contention (paper §II-A). Interruptible bursts (optional
	// parts) share their core's issue slots: SMT contention stretches the
	// wall time a unit of work takes, which is how the assignment policy
	// affects the QoS achieved by the optional deadline.
	t.computeFactor = 1
	if t.interruptible {
		t.computeFactor = k.mach.ThroughputFactor(t.cpuID)
	}
	wall := time.Duration(float64(t.computeRemaining) * t.computeFactor)
	t.computeWall = wall
	t.computeDone = k.eng.After(wall, prioService, t.computeDoneFn)
}

// finishCompute completes the burst armed by startCompute.
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) finishCompute(t *Thread) {
	t.computeDone = engine.Event{}
	t.computeRan += t.computeRemaining
	k.accountRun(k.cpu(t.cpuID), t, t.computeWall)
	t.computeRemaining = 0
	t.inCompute = false
	t.state = StateRunning
	k.resumeThread(t, replyMsg{completed: true, ran: t.computeRan})
}

// interruptCompute terminates the running interruptible burst of t with a
// SIGALRM: the handler-entry cost is charged, the signal is consumed, and —
// as POSIX does — SIGALRM is masked for the duration of the handler. The
// middleware's termination mechanism decides whether the mask is ever
// restored (Table I).
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) interruptCompute(t *Thread) {
	if t.computeDone.Scheduled() {
		consumed := k.eng.Now().Sub(t.computeStart)
		done := nominal(consumed, t.computeFactor)
		t.computeRan += done
		t.computeRemaining -= done
		if t.computeRemaining < 0 {
			t.computeRemaining = 0
		}
		k.accountRun(k.cpu(t.cpuID), t, consumed)
		k.eng.Cancel(t.computeDone)
		t.computeDone = engine.Event{}
	}
	t.pendingAlarm = false
	t.alarmMasked = true // handler entry blocks the signal
	t.inCompute = false
	t.state = StateRunning
	cost := k.mach.Cost(machine.OpTimerInterrupt, t.cpuID)
	k.service(t, cost, t.interruptDoneFn)
}

// service occupies t's CPU for cost (non-preemptible) and then runs then.
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) service(t *Thread, cost time.Duration, then func()) {
	c := k.cpu(t.cpuID)
	if c.current != t {
		panic("kernel: service for non-current thread")
	}
	c.busy = true
	c.serviceCost = cost
	c.serviceThen = then
	k.eng.After(cost, prioService, c.serviceFn)
}

// finishService completes the costed kernel service armed by service.
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) finishService(c *cpu) {
	c.busy = false
	then := c.serviceThen
	c.serviceThen = nil
	k.accountRun(c, nil, c.serviceCost)
	then()
}

// nominal converts wall-clock execution into accomplished work under the
// SMT throughput factor sampled at the segment's start.
//
//rtseed:noalloc
func nominal(wall time.Duration, factor float64) time.Duration {
	if factor <= 1 {
		return wall
	}
	return time.Duration(float64(wall) / factor)
}

// handleYield implements sched_yield: the caller goes to the BACK of its
// priority level and the CPU re-dispatches.
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) handleYield(t *Thread) {
	c := k.cpu(t.cpuID)
	k.setCurrent(c, nil)
	t.state = StateReady
	t.dispatchOp = machine.OpContextSwitch
	t.pendingReply = replyMsg{completed: true}
	c.runq.enqueue(t, false)
	k.emit(t, trace.KindReady, 0)
	k.scheduleDispatch(c)
}

// releaseCPU detaches t from its CPU (it blocked, slept, or exited) and
// dispatches the next ready thread, if any.
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) releaseCPU(t *Thread) {
	c := k.cpu(t.cpuID)
	if c.current != t {
		panic("kernel: releaseCPU for non-current thread")
	}
	k.setCurrent(c, nil)
	k.scheduleDispatch(c)
}
