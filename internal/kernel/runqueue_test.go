package kernel

import (
	"math/rand"
	"testing"
)

// rqThread builds a bare thread suitable for run-queue tests: only the
// priority matters to the queue; the intrusive links start detached.
func rqThread(prio int) *Thread {
	return &Thread{prio: prio}
}

func TestRunQueueEmpty(t *testing.T) {
	q := &runQueue{}
	if got := q.pop(); got != nil {
		t.Fatalf("pop on empty queue returned %v", got)
	}
	if got := q.topPriority(); got != -1 {
		t.Fatalf("topPriority on empty queue = %d, want -1", got)
	}
	if q.len() != 0 {
		t.Fatalf("len on empty queue = %d", q.len())
	}
}

func TestRunQueueStrictPriorityAcrossLevels(t *testing.T) {
	q := &runQueue{}
	prios := []int{7, 99, 1, 64, 63, 65, 42, 2}
	for _, p := range prios {
		q.enqueue(rqThread(p), false)
	}
	want := []int{99, 65, 64, 63, 42, 7, 2, 1}
	for i, wp := range want {
		if got := q.topPriority(); got != wp {
			t.Fatalf("step %d: topPriority = %d, want %d", i, got, wp)
		}
		th := q.pop()
		if th == nil || th.prio != wp {
			t.Fatalf("step %d: popped %v, want priority %d", i, th, wp)
		}
	}
	if q.pop() != nil || q.topPriority() != -1 {
		t.Fatal("queue not empty after draining")
	}
}

func TestRunQueueFIFOWithinLevel(t *testing.T) {
	q := &runQueue{}
	a, b, c := rqThread(50), rqThread(50), rqThread(50)
	q.enqueue(a, false)
	q.enqueue(b, false)
	q.enqueue(c, true) // preempted thread goes back to the head
	for i, want := range []*Thread{c, a, b} {
		if got := q.pop(); got != want {
			t.Fatalf("pop %d returned the wrong thread", i)
		}
	}
}

func TestRunQueueRemoveMidQueue(t *testing.T) {
	q := &runQueue{}
	a, b, c := rqThread(10), rqThread(10), rqThread(10)
	hi := rqThread(90)
	for _, th := range []*Thread{a, b, c, hi} {
		q.enqueue(th, false)
	}
	q.remove(b)
	q.remove(b) // removing an unqueued thread is a no-op
	if q.len() != 3 {
		t.Fatalf("len = %d after remove, want 3", q.len())
	}
	q.remove(hi) // level 90 empties: the bitmap bit must clear
	if got := q.topPriority(); got != 10 {
		t.Fatalf("topPriority = %d after emptying level 90, want 10", got)
	}
	for i, want := range []*Thread{a, c} {
		if got := q.pop(); got != want {
			t.Fatalf("pop %d returned the wrong thread", i)
		}
	}
	if q.pop() != nil {
		t.Fatal("queue should be empty")
	}
	// A removed thread's node is detached and can be enqueued again.
	q.enqueue(b, false)
	if got := q.pop(); got != b {
		t.Fatal("re-enqueue after remove failed")
	}
}

func TestRunQueueEnqueueOutOfRangePanics(t *testing.T) {
	for _, prio := range []int{MinPriority - 1, MaxPriority + 1, -5, 1000} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("enqueue with priority %d did not panic", prio)
				}
				msg, ok := r.(string)
				if !ok || msg != "kernel: enqueue priority outside [MinPriority, MaxPriority]" {
					t.Fatalf("enqueue with priority %d panicked with %v, want the descriptive message", prio, r)
				}
			}()
			q := &runQueue{}
			q.enqueue(rqThread(prio), false)
		}()
	}
}

// TestRunQueueAgainstModel drives the bitmap run queue and a trivially
// correct reference (a slice per priority level) with the same random
// operation sequence and asserts identical observable behaviour: the two
// invariants under test are strict priority across levels and FIFO order
// within a level, with remove allowed at any position.
func TestRunQueueAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	q := &runQueue{}
	model := make(map[int][]*Thread)
	var live []*Thread // threads currently enqueued, for random removal

	modelTop := func() int {
		for p := MaxPriority; p >= MinPriority; p-- {
			if len(model[p]) > 0 {
				return p
			}
		}
		return -1
	}
	modelPop := func() *Thread {
		p := modelTop()
		if p < 0 {
			return nil
		}
		th := model[p][0]
		model[p] = model[p][1:]
		return th
	}
	modelRemove := func(th *Thread) {
		lvl := model[th.prio]
		for i, x := range lvl {
			if x == th {
				model[th.prio] = append(lvl[:i:i], lvl[i+1:]...)
				return
			}
		}
	}
	dropLive := func(th *Thread) {
		for i, x := range live {
			if x == th {
				live = append(live[:i], live[i+1:]...)
				return
			}
		}
	}

	for step := 0; step < 20000; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // enqueue
			th := rqThread(MinPriority + rng.Intn(MaxPriority-MinPriority+1))
			atFront := rng.Intn(2) == 0
			q.enqueue(th, atFront)
			if atFront {
				model[th.prio] = append([]*Thread{th}, model[th.prio]...)
			} else {
				model[th.prio] = append(model[th.prio], th)
			}
			live = append(live, th)
		case op < 8: // pop
			got, want := q.pop(), modelPop()
			if got != want {
				t.Fatalf("step %d: pop mismatch", step)
			}
			if want != nil {
				dropLive(want)
			}
		default: // remove a random live thread
			if len(live) == 0 {
				continue
			}
			th := live[rng.Intn(len(live))]
			q.remove(th)
			modelRemove(th)
			dropLive(th)
		}
		if got, want := q.topPriority(), modelTop(); got != want {
			t.Fatalf("step %d: topPriority = %d, model says %d", step, got, want)
		}
		if q.len() != len(live) {
			t.Fatalf("step %d: len = %d, model says %d", step, q.len(), len(live))
		}
	}
}
