package kernel

import (
	"rtseed/internal/list"
	"rtseed/internal/machine"
	"rtseed/internal/trace"
)

// Mutex is a simulated blocking mutex with FIFO hand-off. RT-Seed's ending
// path uses one per process to model the serialization real POSIX imposes
// on simultaneous optional-part terminations: timer-expiry signal delivery
// takes the process-wide sighand lock and endOptionalPart updates shared
// task state, so np parts terminating at the same optional deadline drain
// one at a time (the O(np) ending overhead of Fig. 13).
type Mutex struct {
	name    string
	owner   *Thread
	waiters *list.List[*Thread]
	// inherit enables priority inheritance (see NewPIMutex).
	inherit bool
}

// NewMutex returns an unlocked mutex. The name appears in diagnostics.
func (k *Kernel) NewMutex(name string) *Mutex {
	return &Mutex{name: name, waiters: list.New[*Thread]()}
}

// Name returns the mutex's name.
func (m *Mutex) Name() string { return m.name }

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.owner != nil }

// Waiters returns the number of blocked contenders.
func (m *Mutex) Waiters() int { return m.waiters.Len() }

// MutexLock acquires m, blocking in FIFO order while it is held.
func (c *TCB) MutexLock(m *Mutex) {
	c.t.syscall(request{kind: reqMutexLock, mutex: m})
}

// MutexUnlock releases m and hands it to the longest-waiting contender, if
// any. It panics if the caller does not hold m: unlocking someone else's
// mutex is always a program bug.
func (c *TCB) MutexUnlock(m *Mutex) {
	c.t.syscall(request{kind: reqMutexUnlock, mutex: m})
}

//rtseed:kernelctx
func (k *Kernel) handleMutexLock(t *Thread, req request) {
	m := req.mutex
	if m.owner == nil {
		m.owner = t
		k.resumeThread(t, replyMsg{completed: true})
		return
	}
	if m.owner == t {
		panic("kernel: recursive mutex lock")
	}
	t.state = StateBlocked
	m.waiters.PushBackNode(t.cvNode)
	k.emit(t, trace.KindBlock, 0)
	t.pendingReply = replyMsg{completed: true}
	k.boostOwner(m)
	k.releaseCPU(t)
}

//rtseed:kernelctx
func (k *Kernel) handleMutexUnlock(t *Thread, req request) {
	m := req.mutex
	if m.owner != t {
		panic("kernel: unlock of mutex not held by caller")
	}
	if m.inherit {
		k.restoreOwner(t)
	}
	if n := m.waiters.PopFront(); n != nil {
		w := n.Value
		m.owner = w
		w.dispatchOp = machine.OpContextSwitch
		k.makeReady(w, false)
		k.boostOwner(m)
	} else {
		m.owner = nil
	}
	k.resumeThread(t, replyMsg{completed: true})
}
