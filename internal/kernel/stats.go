package kernel

import (
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/machine"
)

// CPUTime returns the total compute time the thread has consumed across all
// of its bursts so far (preempted time excluded). Kernel service costs are
// not attributed to the thread — like the paper's model, those overheads
// live outside the task's execution time and are what the harness measures.
func (t *Thread) CPUTime() time.Duration { return t.cpuConsumed }

// Utilization returns the fraction of virtual time [from, now] that
// hardware thread h spent running a real-time thread's compute or service.
func (k *Kernel) Utilization(h machine.HWThread, from engine.Time) float64 {
	span := k.eng.Now().Sub(from)
	if span <= 0 {
		return 0
	}
	busy := k.cpu(h).busyTime
	f := float64(busy) / float64(span)
	if f > 1 {
		f = 1
	}
	return f
}

// accountRun credits d of busy time to c and compute time to t.
//
//rtseed:kernelctx
func (k *Kernel) accountRun(c *cpu, t *Thread, d time.Duration) {
	c.busyTime += d
	if t != nil {
		t.cpuConsumed += d
	}
}
