package kernel

import (
	"fmt"
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/machine"
)

// This file is the continuation executor: task bodies as resumable state
// machines driven inline by the kernel's dispatch path. The goroutine
// executor (thread.go) models host code as a blocked goroutine and pays a
// channel round-trip per context switch; here a context switch is a plain
// function call into Body.Step, so the per-event cost is the scheduling work
// itself and n=100k+ thread simulations need no goroutines at all. Both
// executors sit behind the same kernel API and produce byte-identical
// traces for the same program (fuzz-proven by sched.FuzzBodyVsGoroutine);
// the goroutine path is retained as the differential oracle.

// Body is a resumable task body. The kernel calls Step every time the
// thread would run host code: Step performs any amount of host work
// (bookkeeping, callbacks — all of it consumes no virtual time) and returns
// the next kernel action as a Next. The kernel executes the action,
// suspends the thread in virtual time accordingly, and calls Step again
// with a Resume describing the action's outcome.
//
// A Body's Step runs inside the kernel's event dispatch (it IS the thread's
// host code), so implementations are annotated //rtseed:kernelctx: nothing
// outside the kernel may call Step directly, and Step must never be spawned
// onto a goroutine. Steady-state Step implementations on benchmarked hot
// paths should also be allocation-free — a continuation that captures fresh
// state per step defeats the point of removing the handshake.
type Body interface {
	Step(c *TCB, r Resume) Next
}

// StepFunc adapts a plain function to the Body interface for stateless or
// closure-state bodies.
type StepFunc func(c *TCB, r Resume) Next

// Step implements Body.
//
//rtseed:kernelctx
func (f StepFunc) Step(c *TCB, r Resume) Next { return f(c, r) }

// Resume carries the outcome of the previous action into the next Step.
type Resume struct {
	// First is true on a thread's very first step, before any action.
	First bool
	// Completed reports whether the previous action ran to completion.
	// It is false only for a ComputeInterruptible burst terminated by
	// SIGALRM.
	Completed bool
	// Ran is the CPU time the previous compute action consumed.
	Ran time.Duration
	// Unran is the nominal work a terminated interruptible burst did not
	// perform.
	Unran time.Duration
}

// Next is the action a continuation body requests from the kernel. The zero
// Next is invalid; construct one with the action constructors below, which
// mirror the blocking TCB methods one-for-one (old signature → new form is
// a mechanical rewrite: c.Compute(d) becomes `return kernel.Compute(d)`
// plus a program-counter transition).
type Next struct {
	req request
}

// Compute burns d of CPU time (TCB.Compute). d <= 0 completes immediately.
func Compute(d time.Duration) Next {
	return Next{req: request{kind: reqCompute, dur: d}}
}

// ComputeInterruptible burns up to d of CPU time; SIGALRM terminates the
// burst early (TCB.ComputeInterruptible). The following Resume reports
// Completed and Ran.
func ComputeInterruptible(d time.Duration) Next {
	return Next{req: request{kind: reqCompute, dur: d, interruptible: true}}
}

// SleepUntil blocks until the absolute virtual time at (TCB.SleepUntil).
func SleepUntil(at engine.Time) Next {
	return Next{req: request{kind: reqSleepUntil, at: at}}
}

// Sleep blocks for the duration d, measured from the instant the action is
// executed (TCB.Sleep).
func Sleep(d time.Duration) Next {
	return Next{req: request{kind: reqSleepUntil, dur: d, rel: true}}
}

// CondWait blocks on cv until signalled (TCB.CondWait).
func CondWait(cv *CondVar) Next {
	return Next{req: request{kind: reqCondWait, cv: cv}}
}

// CondSignal wakes the longest-waiting thread blocked on cv (TCB.CondSignal).
func CondSignal(cv *CondVar) Next {
	return Next{req: request{kind: reqCondSignal, cv: cv}}
}

// CondBroadcast wakes every thread blocked on cv (TCB.CondBroadcast).
func CondBroadcast(cv *CondVar) Next {
	return Next{req: request{kind: reqCondBroadcast, cv: cv}}
}

// TimerSet arms the thread's one-shot SIGALRM timer at absolute time at
// (TCB.TimerSet).
func TimerSet(at engine.Time) Next {
	return Next{req: request{kind: reqTimerSet, at: at}}
}

// TimerStop disarms the timer and discards a pending SIGALRM (TCB.TimerStop).
func TimerStop() Next {
	return Next{req: request{kind: reqTimerStop}}
}

// SetAlarmMask blocks (true) or unblocks (false) SIGALRM (TCB.SetAlarmMask).
func SetAlarmMask(masked bool) Next {
	return Next{req: request{kind: reqSetAlarmMask, mask: masked}}
}

// Yield relinquishes the CPU to the back of the caller's priority level
// (TCB.Yield).
func Yield() Next {
	return Next{req: request{kind: reqYield}}
}

// ChargeOp burns the cost of one machine primitive (TCB.ChargeOp).
func ChargeOp(op machine.Op) Next {
	return Next{req: request{kind: reqChargeOp, op: op}}
}

// ChargeOpRemote burns the cost of op directed at hardware thread to
// (TCB.ChargeOpRemote).
func ChargeOpRemote(op machine.Op, to machine.HWThread) Next {
	return Next{req: request{kind: reqChargeOpRemote, op: op, remote: to}}
}

// MutexLock acquires m, blocking in FIFO order while it is held
// (TCB.MutexLock).
func MutexLock(m *Mutex) Next {
	return Next{req: request{kind: reqMutexLock, mutex: m}}
}

// MutexUnlock releases m (TCB.MutexUnlock).
func MutexUnlock(m *Mutex) Next {
	return Next{req: request{kind: reqMutexUnlock, mutex: m}}
}

// Migrate re-pins the calling thread to cpu (TCB.Migrate). Migrating to the
// current CPU is a no-op that completes immediately.
func Migrate(cpu machine.HWThread) Next {
	return Next{req: request{kind: reqMigrate, remote: cpu}}
}

// Done ends the body: the thread exits (a goroutine body returning).
func Done() Next {
	return Next{req: request{kind: reqExit}}
}

// NewBodyThread creates a simulated thread whose body is a resumable
// continuation executed inline by the kernel — no goroutine is ever
// created for it. It is the continuation-executor counterpart of NewThread
// and returns the same errors for out-of-range configuration.
func (k *Kernel) NewBodyThread(cfg ThreadConfig, body Body) (*Thread, error) {
	if body == nil {
		return nil, fmt.Errorf("kernel: nil continuation body")
	}
	t, err := k.newThread(cfg)
	if err != nil {
		return nil, err
	}
	t.stepBody = body
	t.stepFirst = true
	return t, nil
}

// MustNewBodyThread is NewBodyThread for statically-valid configuration.
func (k *Kernel) MustNewBodyThread(cfg ThreadConfig, body Body) *Thread {
	t, err := k.NewBodyThread(cfg, body)
	if err != nil {
		panic(err)
	}
	return t
}

// stepThread drives a continuation body: deliver the previous action's
// outcome, obtain the next action, and execute it. The loop is a
// trampoline: actions that resolve without suspending the thread
// (uncontended MutexLock, SetAlarmMask, a sleep already in the past, a
// zero-length compute) re-enter via resumeThread, which only marks
// stepPending here instead of recursing, so the stack never grows with the
// body's program.
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) stepThread(t *Thread, reply replyMsg) {
	t.stepReply = reply
	t.stepPending = true
	if t.stepping {
		return
	}
	t.stepping = true
	for t.stepPending && t.state != StateExited {
		t.stepPending = false
		r := Resume{
			First:     t.stepFirst,
			Completed: t.stepReply.completed,
			Ran:       t.stepReply.ran,
			Unran:     t.stepReply.unran,
		}
		t.stepFirst = false
		next := t.stepBody.Step(&t.tcb, r)
		k.applyNext(t, next)
	}
	t.stepping = false
}

// applyNext executes the action a continuation body returned. Degenerate
// actions that the blocking TCB wrappers short-circuit without a kernel
// request (zero-length computes, same-CPU migrations) complete immediately
// here too, so both executors issue identical request sequences — the
// invariant the differential fuzzer locks in.
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) applyNext(t *Thread, n Next) {
	req := n.req
	switch {
	case req.kind == 0:
		badNext(t) // cold path split out so applyNext stays lean
	case req.kind == reqCompute && req.dur <= 0:
		k.resumeThread(t, replyMsg{completed: true})
		return
	case req.kind == reqMigrate && req.remote == t.cpuID:
		k.resumeThread(t, replyMsg{completed: true})
		return
	case req.rel:
		req.rel = false
		req.at = k.eng.Now().Add(req.dur)
		req.dur = 0
	}
	t.req = req
	k.handleRequest(t)
}

func badNext(t *Thread) {
	panic(fmt.Sprintf("kernel: thread %v returned the zero Next; bodies must return an action constructor (Compute, Sleep, ..., Done)", t))
}
