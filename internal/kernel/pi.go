package kernel

// Priority inheritance for mutexes (PTHREAD_PRIO_INHERIT): while a thread
// holds a PI mutex that a higher-priority thread is blocked on, the holder
// runs at the blocked thread's priority, bounding priority inversion. The
// RT-Seed ending path does not need it (the critical section runs at the
// optional threads' common NRTQ priority), but a substrate claiming
// SCHED_FIFO fidelity should offer it, and the tests demonstrate the
// unbounded-inversion hazard it removes.

// NewPIMutex returns a mutex with priority inheritance enabled.
func (k *Kernel) NewPIMutex(name string) *Mutex {
	m := k.NewMutex(name)
	m.inherit = true
	return m
}

// boostOwner raises the owner's effective priority to the highest blocked
// waiter's, requeueing it if it sits on a run queue.
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) boostOwner(m *Mutex) {
	if !m.inherit || m.owner == nil {
		return
	}
	top := m.owner.basePrio()
	// Walk the waiter nodes directly: a Do closure would capture top and
	// allocate on the mutex hand-off path.
	for n := m.waiters.Front(); n != nil; n = n.Next() {
		if n.Value.prio > top {
			top = n.Value.prio
		}
	}
	if top == m.owner.prio {
		return
	}
	if m.owner.base == 0 {
		m.owner.base = m.owner.prio
	}
	k.setEffectivePriority(m.owner, top)
}

// restoreOwner drops t back to its base priority after it releases a PI
// mutex.
//
//rtseed:kernelctx
func (k *Kernel) restoreOwner(t *Thread) {
	if t.base == 0 {
		return
	}
	base := t.base
	t.base = 0
	k.setEffectivePriority(t, base)
}

// setEffectivePriority changes a thread's scheduling priority in place,
// fixing up the run queue when the thread is ready.
//
//rtseed:kernelctx
func (k *Kernel) setEffectivePriority(t *Thread, prio int) {
	if t.prio == prio {
		return
	}
	c := k.cpu(t.cpuID)
	queued := t.queued
	if queued {
		c.runq.remove(t)
	}
	t.prio = prio
	if queued {
		c.runq.enqueue(t, false)
		k.considerCPU(c)
	}
}

func (t *Thread) basePrio() int {
	if t.base == 0 {
		return t.prio
	}
	return t.base
}
