package kernel

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/machine"
	"rtseed/internal/trace"
)

// seq is a test helper: a continuation body that runs a fixed sequence of
// steps, one kernel action each, then exits. It makes porting a blocking
// test script mechanical — each blocking call becomes one element.
type seq struct {
	steps []func(c *TCB, r Resume) Next
	i     int
}

func (s *seq) Step(c *TCB, r Resume) Next {
	if s.i >= len(s.steps) {
		return Done()
	}
	f := s.steps[s.i]
	s.i++
	return f(c, r)
}

// act adapts a bare action to a seq step.
func act(n Next) func(*TCB, Resume) Next {
	return func(*TCB, Resume) Next { return n }
}

func TestBodyThreadRunsToExit(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	ran := false
	th := k.MustNewBodyThread(ThreadConfig{Name: "t", Priority: 50, CPU: 0}, &seq{steps: []func(*TCB, Resume) Next{
		act(Compute(time.Millisecond)),
		func(c *TCB, r Resume) Next {
			ran = r.Completed
			return Done()
		},
	}})
	th.Start()
	k.Run()
	if !ran {
		t.Fatal("continuation body did not run to the post-compute step")
	}
	if th.State() != StateExited {
		t.Fatalf("state %v, want exited", th.State())
	}
}

func TestBodyComputeAdvancesVirtualTime(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var end engine.Time
	th := k.MustNewBodyThread(ThreadConfig{Name: "t", Priority: 50, CPU: 0}, &seq{steps: []func(*TCB, Resume) Next{
		act(Compute(10 * time.Millisecond)),
		func(c *TCB, r Resume) Next {
			end = c.Now()
			return Done()
		},
	}})
	th.Start()
	k.Run()
	if end < engine.At(10*time.Millisecond) || end > engine.At(11*time.Millisecond) {
		t.Fatalf("end %v, want 10ms + dispatch overhead", end)
	}
}

func TestBodyHigherPriorityPreempts(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var loEnd, hiEnd engine.Time
	lo := k.MustNewBodyThread(ThreadConfig{Name: "lo", Priority: 50, CPU: 0}, &seq{steps: []func(*TCB, Resume) Next{
		act(Compute(10 * time.Millisecond)),
		func(c *TCB, r Resume) Next {
			loEnd = c.Now()
			return Done()
		},
	}})
	hi := k.MustNewBodyThread(ThreadConfig{Name: "hi", Priority: 60, CPU: 0}, &seq{steps: []func(*TCB, Resume) Next{
		act(SleepUntil(engine.At(2 * time.Millisecond))),
		act(Compute(5 * time.Millisecond)),
		func(c *TCB, r Resume) Next {
			hiEnd = c.Now()
			return Done()
		},
	}})
	lo.Start()
	hi.Start()
	k.Run()
	if hiEnd >= loEnd {
		t.Fatalf("high-priority thread should finish first: hi=%v lo=%v", hiEnd, loEnd)
	}
	if loEnd < engine.At(15*time.Millisecond) {
		t.Fatalf("lo finished at %v; preemption lost compute time", loEnd)
	}
}

func TestBodyEqualPriorityFIFO(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var order []string
	mk := func(name string, d time.Duration) *Thread {
		return k.MustNewBodyThread(ThreadConfig{Name: name, Priority: 50, CPU: 0}, &seq{steps: []func(*TCB, Resume) Next{
			act(Compute(d)),
			func(c *TCB, r Resume) Next {
				order = append(order, name)
				return Done()
			},
		}})
	}
	a := mk("a", 5*time.Millisecond)
	b := mk("b", time.Millisecond)
	a.Start()
	b.Start()
	k.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("SCHED_FIFO order %v, want [a b]", order)
	}
}

func TestBodyCondVarHandshake(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	cv := k.NewCondVar("cv")
	got := false
	consumer := k.MustNewBodyThread(ThreadConfig{Name: "c", Priority: 60, CPU: 1}, &seq{steps: []func(*TCB, Resume) Next{
		act(CondWait(cv)),
		func(c *TCB, r Resume) Next {
			got = true
			return Done()
		},
	}})
	producer := k.MustNewBodyThread(ThreadConfig{Name: "p", Priority: 50, CPU: 0}, &seq{steps: []func(*TCB, Resume) Next{
		act(Compute(time.Millisecond)),
		act(CondSignal(cv)),
	}})
	consumer.Start()
	producer.Start()
	k.Run()
	if !got {
		t.Fatal("consumer never woke from CondWait")
	}
}

func TestBodyMutexSerializes(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	mu := k.NewMutex("mu")
	var order []string
	mk := func(name string, cpu machine.HWThread) *Thread {
		return k.MustNewBodyThread(ThreadConfig{Name: name, Priority: 50, CPU: cpu}, &seq{steps: []func(*TCB, Resume) Next{
			act(MutexLock(mu)),
			act(Compute(2 * time.Millisecond)),
			func(c *TCB, r Resume) Next {
				order = append(order, name)
				return MutexUnlock(mu)
			},
		}})
	}
	a := mk("a", 0)
	b := mk("b", 1)
	a.Start()
	b.Start()
	k.Run()
	if len(order) != 2 {
		t.Fatalf("order %v, want both threads through the critical section", order)
	}
	if mu.Locked() {
		t.Fatal("mutex still held after run")
	}
}

// TestBodyTimerTerminatesInterruptibleBurst is the sigjmp-termination shape
// on the continuation executor: arm the one-shot timer, start an
// interruptible burst, and observe the termination through Resume.
func TestBodyTimerTerminatesInterruptibleBurst(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var completed bool
	var ran time.Duration
	th := k.MustNewBodyThread(ThreadConfig{Name: "t", Priority: 50, CPU: 0}, &seq{steps: []func(*TCB, Resume) Next{
		func(c *TCB, r Resume) Next { return TimerSet(c.Now().Add(5 * time.Millisecond)) },
		act(ComputeInterruptible(50 * time.Millisecond)),
		func(c *TCB, r Resume) Next {
			completed, ran = r.Completed, r.Ran
			return SetAlarmMask(false)
		},
	}})
	th.Start()
	k.Run()
	if completed {
		t.Fatal("burst should have been terminated by the timer")
	}
	if ran <= 0 || ran >= 50*time.Millisecond {
		t.Fatalf("ran %v, want a partial burst", ran)
	}
}

func TestBodyRelativeSleepResolvesAtExecution(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var afterCompute, woke engine.Time
	th := k.MustNewBodyThread(ThreadConfig{Name: "t", Priority: 50, CPU: 0}, &seq{steps: []func(*TCB, Resume) Next{
		act(Compute(3 * time.Millisecond)),
		func(c *TCB, r Resume) Next {
			afterCompute = c.Now()
			return Sleep(7 * time.Millisecond)
		},
		func(c *TCB, r Resume) Next {
			woke = c.Now()
			return Done()
		},
	}})
	th.Start()
	k.Run()
	if want := afterCompute.Add(7 * time.Millisecond); woke < want {
		t.Fatalf("woke at %v, want >= %v (sleep must be relative to its execution instant)", woke, want)
	}
}

func TestBodyMigrateMovesThread(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var before, after machine.HWThread
	th := k.MustNewBodyThread(ThreadConfig{Name: "t", Priority: 50, CPU: 0}, &seq{steps: []func(*TCB, Resume) Next{
		func(c *TCB, r Resume) Next {
			before = c.HWThread()
			return Migrate(3)
		},
		func(c *TCB, r Resume) Next {
			after = c.HWThread()
			return Compute(time.Millisecond)
		},
	}})
	th.Start()
	k.Run()
	if before != 0 || after != 3 {
		t.Fatalf("migrate moved %d -> %d, want 0 -> 3", before, after)
	}
	if th.Migrations() != 1 {
		t.Fatalf("migrations %d, want 1", th.Migrations())
	}
}

// TestBodyImmediateActionsTrampoline drives a long chain of actions that
// resolve without suspending the thread — zero-length computes, same-CPU
// migrations, mask toggles, sleeps already in the past. The trampoline in
// stepThread must flatten the chain instead of recursing, so the run
// completes without growing the stack with the body's program length.
func TestBodyImmediateActionsTrampoline(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	const rounds = 200000
	n := 0
	body := StepFunc(func(c *TCB, r Resume) Next {
		n++
		switch {
		case n > rounds:
			return Done()
		case n%4 == 0:
			return Compute(0)
		case n%4 == 1:
			return Migrate(c.HWThread())
		case n%4 == 2:
			return SetAlarmMask(n%8 == 2)
		default:
			return SleepUntil(engine.At(0))
		}
	})
	th := k.MustNewBodyThread(ThreadConfig{Name: "t", Priority: 50, CPU: 0}, body)
	th.Start()
	k.Run()
	if n <= rounds {
		t.Fatalf("body stepped %d times, want > %d", n, rounds)
	}
}

func TestBodyZeroNextPanics(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	th := k.MustNewBodyThread(ThreadConfig{Name: "t", Priority: 50, CPU: 0},
		StepFunc(func(c *TCB, r Resume) Next { return Next{} }))
	th.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("zero Next must panic")
		}
	}()
	k.Run()
}

func TestNewBodyThreadValidation(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	ok := StepFunc(func(c *TCB, r Resume) Next { return Done() })
	if _, err := k.NewBodyThread(ThreadConfig{Priority: 0, CPU: 0}, ok); err == nil {
		t.Fatal("priority 0 must be rejected")
	}
	if _, err := k.NewBodyThread(ThreadConfig{Priority: 100, CPU: 0}, ok); err == nil {
		t.Fatal("priority 100 must be rejected")
	}
	if _, err := k.NewBodyThread(ThreadConfig{Priority: 50, CPU: 99}, ok); err == nil {
		t.Fatal("out-of-topology CPU must be rejected")
	}
	if _, err := k.NewBodyThread(ThreadConfig{Priority: 50, CPU: 0}, nil); err == nil {
		t.Fatal("nil body must be rejected")
	}
}

// TestShutdownLeavesNoGoroutines is the leak check for both executors: after
// Run (which shuts the kernel down), no goroutine created for a simulated
// thread may remain — continuation threads never create one, goroutine
// threads are unwound by kill.
func TestShutdownLeavesNoGoroutines(t *testing.T) {
	for _, mode := range []string{"continuation", "goroutine", "mixed"} {
		t.Run(mode, func(t *testing.T) {
			before := runtime.NumGoroutine()
			k := testKernel(t, machine.NoLoad)
			cv := k.NewCondVar("never")
			for i := 0; i < 16; i++ {
				cfg := ThreadConfig{Name: "t", Priority: 50, CPU: machine.HWThread(i % 8)}
				goroutineForm := mode == "goroutine" || (mode == "mixed" && i%2 == 1)
				if i%4 == 0 {
					// Parked forever on a condition variable: unwound only
					// by Shutdown.
					if goroutineForm {
						k.MustNewThread(cfg, func(c *TCB) { c.CondWait(cv) }).Start()
					} else {
						k.MustNewBodyThread(cfg, &seq{steps: []func(*TCB, Resume) Next{
							act(CondWait(cv)),
						}}).Start()
					}
					continue
				}
				if goroutineForm {
					k.MustNewThread(cfg, func(c *TCB) { c.Compute(time.Millisecond) }).Start()
				} else {
					k.MustNewBodyThread(cfg, &seq{steps: []func(*TCB, Resume) Next{
						act(Compute(time.Millisecond)),
					}}).Start()
				}
			}
			k.Run()
			for _, th := range k.Threads() {
				if th.State() != StateExited {
					t.Fatalf("thread %v still %v after shutdown", th, th.State())
				}
			}
			// Goroutine teardown after kill's done-channel receive is
			// asynchronous by a scheduler tick; poll briefly.
			deadline := time.Now().Add(2 * time.Second)
			for {
				runtime.Gosched()
				if runtime.NumGoroutine() <= before {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("goroutines leaked: %d before, %d after shutdown", before, runtime.NumGoroutine())
				}
				time.Sleep(time.Millisecond)
			}
		})
	}
}

// TestBodyVsGoroutineIdenticalTrace runs one mixed scenario — sleeps,
// computes, an interruptible burst with a timer, condvar traffic, a mutex
// section, a yield and a migration — through both executors and requires
// byte-identical trace files. The sched package fuzzes the same property
// over random task sets (FuzzBodyVsGoroutine); this is the deterministic
// in-kernel anchor.
func TestBodyVsGoroutineIdenticalTrace(t *testing.T) {
	run := func(continuation bool) []byte {
		model := machine.DefaultCostModel()
		model.JitterFrac = 0
		m, err := machine.New(machine.Topology{Cores: 4, ThreadsPerCore: 2}, machine.NoLoad, model, 1)
		if err != nil {
			t.Fatal(err)
		}
		k := New(engine.New(), m)
		var buf bytes.Buffer
		k.SetTrace(trace.New(trace.Config{CPUs: m.Topology().NumHWThreads(), Sink: &buf}))
		cv := k.NewCondVar("cv")
		mu := k.NewMutex("mu")

		if continuation {
			k.MustNewBodyThread(ThreadConfig{Name: "w", Priority: 60, CPU: 1}, &seq{steps: []func(*TCB, Resume) Next{
				act(CondWait(cv)),
				act(MutexLock(mu)),
				act(Compute(2 * time.Millisecond)),
				act(MutexUnlock(mu)),
			}}).Start()
			k.MustNewBodyThread(ThreadConfig{Name: "m", Priority: 50, CPU: 0}, &seq{steps: []func(*TCB, Resume) Next{
				act(SleepUntil(engine.At(time.Millisecond))),
				act(MutexLock(mu)),
				act(CondSignal(cv)),
				act(Compute(time.Millisecond)),
				act(MutexUnlock(mu)),
				func(c *TCB, r Resume) Next { return TimerSet(c.Now().Add(time.Millisecond)) },
				act(ComputeInterruptible(10 * time.Millisecond)),
				act(SetAlarmMask(false)),
				act(Yield()),
				act(Migrate(2)),
				act(Compute(time.Millisecond)),
			}}).Start()
		} else {
			k.MustNewThread(ThreadConfig{Name: "w", Priority: 60, CPU: 1}, func(c *TCB) {
				c.CondWait(cv)
				c.MutexLock(mu)
				c.Compute(2 * time.Millisecond)
				c.MutexUnlock(mu)
			}).Start()
			k.MustNewThread(ThreadConfig{Name: "m", Priority: 50, CPU: 0}, func(c *TCB) {
				c.SleepUntil(engine.At(time.Millisecond))
				c.MutexLock(mu)
				c.CondSignal(cv)
				c.Compute(time.Millisecond)
				c.MutexUnlock(mu)
				c.TimerSet(c.Now().Add(time.Millisecond))
				c.ComputeInterruptible(10 * time.Millisecond)
				c.SetAlarmMask(false)
				c.Yield()
				c.Migrate(2)
				c.Compute(time.Millisecond)
			}).Start()
		}
		k.Run()
		if err := k.Trace().Close(k.ThreadInfos()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cont := run(true)
	gor := run(false)
	if !bytes.Equal(cont, gor) {
		t.Fatalf("trace bytes differ between executors: continuation %d bytes, goroutine %d bytes", len(cont), len(gor))
	}
}
