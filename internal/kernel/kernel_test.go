package kernel

import (
	"testing"
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/machine"
	"rtseed/internal/trace"
)

// testKernel builds a kernel on a small machine with zero-jitter costs so
// timing assertions are exact.
func testKernel(t *testing.T, load machine.Load) *Kernel {
	t.Helper()
	model := machine.DefaultCostModel()
	model.JitterFrac = 0
	topo := machine.Topology{Cores: 4, ThreadsPerCore: 2}
	m, err := machine.New(topo, load, model, 1)
	if err != nil {
		t.Fatal(err)
	}
	return New(engine.New(), m)
}

func TestThreadRunsBody(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	ran := false
	th := k.MustNewThread(ThreadConfig{Name: "t", Priority: 50, CPU: 0}, func(c *TCB) {
		c.Compute(time.Millisecond)
		ran = true
	})
	th.Start()
	k.Run()
	if !ran {
		t.Fatal("thread body did not run")
	}
	if th.State() != StateExited {
		t.Fatalf("state %v, want exited", th.State())
	}
}

func TestComputeAdvancesVirtualTime(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var end engine.Time
	th := k.MustNewThread(ThreadConfig{Name: "t", Priority: 50, CPU: 0}, func(c *TCB) {
		c.Compute(10 * time.Millisecond)
		end = c.Now()
	})
	th.Start()
	k.Run()
	// End time = dispatch cost + 10ms compute.
	if end < engine.At(10*time.Millisecond) {
		t.Fatalf("end %v, want >= 10ms", end)
	}
	if end > engine.At(11*time.Millisecond) {
		t.Fatalf("end %v, dispatch overhead implausibly large", end)
	}
}

func TestHigherPriorityPreempts(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var loEnd, hiEnd engine.Time
	lo := k.MustNewThread(ThreadConfig{Name: "lo", Priority: 50, CPU: 0}, func(c *TCB) {
		c.Compute(10 * time.Millisecond)
		loEnd = c.Now()
	})
	hi := k.MustNewThread(ThreadConfig{Name: "hi", Priority: 60, CPU: 0}, func(c *TCB) {
		c.SleepUntil(engine.At(2 * time.Millisecond))
		c.Compute(5 * time.Millisecond)
		hiEnd = c.Now()
	})
	lo.Start()
	hi.Start()
	k.Run()
	if hiEnd >= loEnd {
		t.Fatalf("high-priority thread should finish first: hi=%v lo=%v", hiEnd, loEnd)
	}
	// lo must resume and complete its full 10ms of compute: total runtime
	// >= 15ms of compute plus overheads.
	if loEnd < engine.At(15*time.Millisecond) {
		t.Fatalf("lo finished at %v; preemption lost compute time", loEnd)
	}
}

func TestEqualPriorityFIFONoPreemption(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var order []string
	a := k.MustNewThread(ThreadConfig{Name: "a", Priority: 50, CPU: 0}, func(c *TCB) {
		c.Compute(5 * time.Millisecond)
		order = append(order, "a")
	})
	b := k.MustNewThread(ThreadConfig{Name: "b", Priority: 50, CPU: 0}, func(c *TCB) {
		c.Compute(time.Millisecond)
		order = append(order, "b")
	})
	a.Start()
	b.Start()
	k.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("SCHED_FIFO order %v, want [a b]", order)
	}
}

func TestThreadsOnDifferentCPUsRunConcurrently(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var aEnd, bEnd engine.Time
	a := k.MustNewThread(ThreadConfig{Name: "a", Priority: 50, CPU: 0}, func(c *TCB) {
		c.Compute(10 * time.Millisecond)
		aEnd = c.Now()
	})
	b := k.MustNewThread(ThreadConfig{Name: "b", Priority: 50, CPU: 1}, func(c *TCB) {
		c.Compute(10 * time.Millisecond)
		bEnd = c.Now()
	})
	a.Start()
	b.Start()
	k.Run()
	if aEnd > engine.At(11*time.Millisecond) || bEnd > engine.At(11*time.Millisecond) {
		t.Fatalf("parallel threads serialized: a=%v b=%v", aEnd, bEnd)
	}
}

func TestSleepUntilWakesAtAbsoluteTime(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var woke engine.Time
	th := k.MustNewThread(ThreadConfig{Name: "t", Priority: 50, CPU: 0}, func(c *TCB) {
		c.SleepUntil(engine.At(100 * time.Millisecond))
		woke = c.Now()
	})
	th.Start()
	k.Run()
	if woke < engine.At(100*time.Millisecond) {
		t.Fatalf("woke at %v, before the absolute deadline", woke)
	}
	if woke > engine.At(101*time.Millisecond) {
		t.Fatalf("woke at %v, dispatch latency implausible", woke)
	}
}

func TestSleepUntilPastReturnsImmediately(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var first, second engine.Time
	th := k.MustNewThread(ThreadConfig{Name: "t", Priority: 50, CPU: 0}, func(c *TCB) {
		c.Compute(5 * time.Millisecond)
		first = c.Now()
		c.SleepUntil(engine.At(time.Millisecond)) // already past
		second = c.Now()
	})
	th.Start()
	k.Run()
	if second != first {
		t.Fatalf("past sleep should be immediate: %v -> %v", first, second)
	}
}

func TestCondSignalWakesWaiter(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	cv := k.NewCondVar("cv")
	var consumerRan engine.Time
	consumer := k.MustNewThread(ThreadConfig{Name: "consumer", Priority: 60, CPU: 1}, func(c *TCB) {
		c.CondWait(cv)
		consumerRan = c.Now()
	})
	producer := k.MustNewThread(ThreadConfig{Name: "producer", Priority: 50, CPU: 0}, func(c *TCB) {
		c.Compute(10 * time.Millisecond)
		c.CondSignal(cv)
	})
	consumer.Start()
	producer.Start()
	k.Run()
	if consumerRan == 0 {
		t.Fatal("consumer never woke")
	}
	if consumerRan < engine.At(10*time.Millisecond) {
		t.Fatalf("consumer woke at %v, before the signal", consumerRan)
	}
}

func TestCondSignalWithoutWaiterIsLost(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	cv := k.NewCondVar("cv")
	woke := false
	producer := k.MustNewThread(ThreadConfig{Name: "p", Priority: 50, CPU: 0}, func(c *TCB) {
		c.CondSignal(cv) // nobody waiting; pthread semantics lose it
	})
	consumer := k.MustNewThread(ThreadConfig{Name: "c", Priority: 50, CPU: 1}, func(c *TCB) {
		c.SleepUntil(engine.At(time.Millisecond))
		c.CondWait(cv)
		woke = true
	})
	producer.Start()
	consumer.Start()
	k.Run()
	if woke {
		t.Fatal("signal before wait must be lost")
	}
	if consumer.State() != StateExited {
		// The consumer is still blocked at shutdown, which is the expected
		// outcome; Shutdown force-unwound it.
		if consumer.State() != StateBlocked {
			t.Fatalf("consumer state %v", consumer.State())
		}
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	cv := k.NewCondVar("cv")
	woken := 0
	for i := 0; i < 3; i++ {
		cpu := machine.HWThread(i + 1)
		th := k.MustNewThread(ThreadConfig{Name: "w", Priority: 60, CPU: cpu}, func(c *TCB) {
			c.CondWait(cv)
			woken++
		})
		th.Start()
	}
	p := k.MustNewThread(ThreadConfig{Name: "p", Priority: 50, CPU: 0}, func(c *TCB) {
		c.Compute(time.Millisecond)
		c.CondBroadcast(cv)
	})
	p.Start()
	k.Run()
	if woken != 3 {
		t.Fatalf("broadcast woke %d, want 3", woken)
	}
}

func TestTimerTerminatesInterruptibleCompute(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var completed bool
	var ran time.Duration
	th := k.MustNewThread(ThreadConfig{Name: "t", Priority: 50, CPU: 0}, func(c *TCB) {
		c.TimerSet(engine.At(5 * time.Millisecond))
		completed, ran = c.ComputeInterruptible(time.Second)
	})
	th.Start()
	k.Run()
	if completed {
		t.Fatal("burst should have been terminated")
	}
	if ran <= 0 || ran > 6*time.Millisecond {
		t.Fatalf("ran %v, want ~5ms", ran)
	}
}

func TestTimerDoesNotTerminateUninterruptibleCompute(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var end engine.Time
	th := k.MustNewThread(ThreadConfig{Name: "t", Priority: 50, CPU: 0}, func(c *TCB) {
		c.TimerSet(engine.At(time.Millisecond))
		c.Compute(10 * time.Millisecond)
		end = c.Now()
	})
	th.Start()
	k.Run()
	if end < engine.At(10*time.Millisecond) {
		t.Fatalf("uninterruptible burst cut short at %v", end)
	}
	if !th.pendingAlarm {
		t.Fatal("alarm should be pending after an uninterruptible burst")
	}
}

func TestTimerStopCancelsAndClearsPending(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var completed bool
	th := k.MustNewThread(ThreadConfig{Name: "t", Priority: 50, CPU: 0}, func(c *TCB) {
		c.TimerSet(engine.At(time.Hour))
		c.TimerStop()
		completed, _ = c.ComputeInterruptible(5 * time.Millisecond)
	})
	th.Start()
	k.Run()
	if !completed {
		t.Fatal("burst should complete after TimerStop")
	}
}

// The POSIX handler-entry semantics: after a SIGALRM termination the signal
// stays masked, and a second timer cannot terminate the next burst until the
// mask is cleared. This is the mechanism behind Table I's try/catch row.
func TestAlarmMaskedAfterTermination(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var second bool
	th := k.MustNewThread(ThreadConfig{Name: "t", Priority: 50, CPU: 0}, func(c *TCB) {
		c.TimerSet(engine.At(2 * time.Millisecond))
		first, _ := c.ComputeInterruptible(time.Second)
		if first {
			t.Error("first burst should be terminated")
		}
		if !c.AlarmMasked() {
			t.Error("SIGALRM should be masked after handler entry")
		}
		// Arm again WITHOUT restoring the mask: the next burst must run to
		// completion because the signal stays blocked.
		c.TimerSet(c.Now().Add(2 * time.Millisecond))
		second, _ = c.ComputeInterruptible(10 * time.Millisecond)
	})
	th.Start()
	k.Run()
	if !second {
		t.Fatal("second burst should complete: SIGALRM was still masked")
	}
}

// Restoring the mask (as siglongjmp does) re-enables termination.
func TestAlarmUnmaskedTerminatesAgain(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var second bool
	th := k.MustNewThread(ThreadConfig{Name: "t", Priority: 50, CPU: 0}, func(c *TCB) {
		c.TimerSet(engine.At(2 * time.Millisecond))
		c.ComputeInterruptible(time.Second)
		c.SetAlarmMask(false) // siglongjmp restores the mask
		c.TimerSet(c.Now().Add(2 * time.Millisecond))
		second, _ = c.ComputeInterruptible(10 * time.Second)
	})
	th.Start()
	k.Run()
	if second {
		t.Fatal("second burst should have been terminated after unmasking")
	}
}

// A pending alarm that arrives while masked is delivered as soon as an
// interruptible burst starts with the mask cleared.
func TestPendingAlarmDeliveredOnNextBurst(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var completed bool
	var ran time.Duration
	th := k.MustNewThread(ThreadConfig{Name: "t", Priority: 50, CPU: 0}, func(c *TCB) {
		c.SetAlarmMask(true)
		c.TimerSet(engine.At(time.Millisecond))
		c.Compute(5 * time.Millisecond) // alarm fires during this, stays pending
		c.SetAlarmMask(false)
		completed, ran = c.ComputeInterruptible(time.Second)
	})
	th.Start()
	k.Run()
	if completed {
		t.Fatal("pending alarm should terminate the burst immediately")
	}
	if ran != 0 {
		t.Fatalf("burst ran %v, want 0 (terminated at entry)", ran)
	}
}

// Preemption must preserve a terminated burst's consumed-time accounting.
func TestPreemptedInterruptibleBurstAccounting(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var ran time.Duration
	lo := k.MustNewThread(ThreadConfig{Name: "lo", Priority: 50, CPU: 0}, func(c *TCB) {
		c.TimerSet(engine.At(20 * time.Millisecond))
		_, ran = c.ComputeInterruptible(time.Second)
	})
	hi := k.MustNewThread(ThreadConfig{Name: "hi", Priority: 60, CPU: 0}, func(c *TCB) {
		c.SleepUntil(engine.At(5 * time.Millisecond))
		c.Compute(5 * time.Millisecond)
	})
	lo.Start()
	hi.Start()
	k.Run()
	// lo computed ~5ms before preemption, resumed ~10ms, terminated at
	// ~20ms: it consumed roughly 15ms of CPU, never 20.
	if ran < 12*time.Millisecond || ran > 18*time.Millisecond {
		t.Fatalf("terminated burst consumed %v, want ~15ms", ran)
	}
}

func TestTracerSeesLifecycle(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	tr := trace.New(trace.Config{CPUs: 1})
	k.SetTrace(tr)
	var kinds []trace.Kind
	tr.Tap(func(rec trace.Record) { kinds = append(kinds, rec.Kind) })
	th := k.MustNewThread(ThreadConfig{Name: "t", Priority: 50, CPU: 0}, func(c *TCB) {
		c.Compute(time.Millisecond)
	})
	th.Start()
	k.Run()
	want := []trace.Kind{trace.KindReady, trace.KindDispatch, trace.KindExit}
	if len(kinds) != len(want) {
		t.Fatalf("trace %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("trace %v, want %v", kinds, want)
		}
	}
	if got := tr.Emitted(); got != uint64(len(want)) {
		t.Fatalf("Emitted() = %d, want %d", got, len(want))
	}
}

func TestNewThreadValidation(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	if _, err := k.NewThread(ThreadConfig{Priority: 0, CPU: 0}, func(*TCB) {}); err == nil {
		t.Fatal("priority 0 accepted")
	}
	if _, err := k.NewThread(ThreadConfig{Priority: 100, CPU: 0}, func(*TCB) {}); err == nil {
		t.Fatal("priority 100 accepted")
	}
	if _, err := k.NewThread(ThreadConfig{Priority: 50, CPU: 99}, func(*TCB) {}); err == nil {
		t.Fatal("out-of-range cpu accepted")
	}
}

func TestShutdownUnwindsBlockedThreads(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	cv := k.NewCondVar("never")
	cleanedUp := false
	th := k.MustNewThread(ThreadConfig{Name: "t", Priority: 50, CPU: 0}, func(c *TCB) {
		defer func() { cleanedUp = true }()
		c.CondWait(cv) // never signalled
	})
	th.Start()
	k.Run() // Run calls Shutdown when the event queue drains
	if th.State() != StateExited {
		t.Fatalf("state %v, want exited after shutdown", th.State())
	}
	if cleanedUp {
		// The kill unwinds via panic, so deferred cleanup DOES run; assert
		// that it did.
		return
	}
	t.Fatal("deferred cleanup did not run during shutdown unwind")
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() engine.Time {
		k := testKernel(t, machine.CPUMemoryLoad)
		cv := k.NewCondVar("cv")
		for i := 0; i < 4; i++ {
			cpu := machine.HWThread(i % 8)
			prio := 40 + i
			th := k.MustNewThread(ThreadConfig{Name: "w", Priority: prio, CPU: cpu}, func(c *TCB) {
				c.Compute(time.Duration(prio) * time.Millisecond)
				c.CondSignal(cv)
			})
			th.Start()
		}
		m := k.MustNewThread(ThreadConfig{Name: "m", Priority: 60, CPU: 0}, func(c *TCB) {
			for i := 0; i < 4; i++ {
				c.CondWait(cv)
			}
		})
		m.Start()
		k.Run()
		return k.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic schedule: %v vs %v", a, b)
	}
}

func TestChargeOpConsumesTime(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var before, after engine.Time
	th := k.MustNewThread(ThreadConfig{Name: "t", Priority: 50, CPU: 0}, func(c *TCB) {
		before = c.Now()
		c.ChargeOp(machine.OpSigLongjmp)
		after = c.Now()
	})
	th.Start()
	k.Run()
	if after <= before {
		t.Fatal("ChargeOp should consume virtual time")
	}
}
