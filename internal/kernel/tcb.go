package kernel

import (
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/machine"
)

// TCB is the kernel API available to a simulated thread's body. All methods
// must be called from the thread's own body function; each one suspends the
// thread in virtual time according to the machine cost model.
type TCB struct {
	t *Thread
}

// Thread returns the thread the TCB belongs to.
func (c *TCB) Thread() *Thread { return c.t }

// Now returns the current virtual time. It is also the thread's rdtscp
// analogue: per-hardware-thread timestamp counters read the same virtual
// clock.
func (c *TCB) Now() engine.Time { return c.t.k.eng.Now() }

// HWThread returns the hardware thread the caller is pinned to.
func (c *TCB) HWThread() machine.HWThread { return c.t.cpuID }

// Compute burns d of CPU time. The burst is preemptible by higher-priority
// threads but cannot be terminated by SIGALRM.
func (c *TCB) Compute(d time.Duration) {
	if d <= 0 {
		return
	}
	c.t.syscall(request{kind: reqCompute, dur: d})
}

// ComputeInterruptible burns up to d of CPU time; a SIGALRM (from the
// optional-deadline timer) terminates the burst early. It reports whether
// the burst completed, along with the CPU time actually consumed. When the
// burst is terminated, the SIGALRM handler-entry cost has already been
// charged and — as POSIX does — SIGALRM is left masked, as if executing
// inside the signal handler; the caller's termination mechanism decides how
// (and whether) to restore the mask.
func (c *TCB) ComputeInterruptible(d time.Duration) (completed bool, ran time.Duration) {
	if d <= 0 {
		return true, 0
	}
	r := c.t.syscall(request{kind: reqCompute, dur: d, interruptible: true})
	return r.completed, r.ran
}

// SleepUntil blocks until the absolute virtual time at (clock_nanosleep
// with TIMER_ABSTIME). A wake-up from sleep is priced as a job-release
// dispatch.
func (c *TCB) SleepUntil(at engine.Time) {
	c.t.syscall(request{kind: reqSleepUntil, at: at})
}

// Sleep blocks for the duration d.
func (c *TCB) Sleep(d time.Duration) {
	c.SleepUntil(c.Now().Add(d))
}

// CondWait blocks on cv until signalled (pthread_cond_wait).
func (c *TCB) CondWait(cv *CondVar) {
	c.t.syscall(request{kind: reqCondWait, cv: cv})
}

// CondSignal wakes the longest-waiting thread blocked on cv, if any
// (pthread_cond_signal). Waking a thread on another core additionally pays
// the cross-core transfer penalty.
func (c *TCB) CondSignal(cv *CondVar) {
	c.t.syscall(request{kind: reqCondSignal, cv: cv})
}

// CondBroadcast wakes every thread blocked on cv (pthread_cond_broadcast).
// RT-Seed deliberately does not use broadcast for optional parts — signals
// go to specific threads as their jobs are dispatched — but the primitive
// exists for completeness and for the ablation benchmarks.
func (c *TCB) CondBroadcast(cv *CondVar) {
	c.t.syscall(request{kind: reqCondBroadcast, cv: cv})
}

// TimerSet arms the thread's one-shot SIGALRM timer at absolute time at
// (timer_settime, TIMER_ABSTIME), replacing any armed timer.
func (c *TCB) TimerSet(at engine.Time) {
	c.t.syscall(request{kind: reqTimerSet, at: at})
}

// TimerStop disarms the timer and discards a pending SIGALRM.
func (c *TCB) TimerStop() {
	c.t.syscall(request{kind: reqTimerStop})
}

// SetAlarmMask blocks (true) or unblocks (false) SIGALRM for the thread.
func (c *TCB) SetAlarmMask(masked bool) {
	c.t.syscall(request{kind: reqSetAlarmMask, mask: masked})
}

// AlarmMasked reports whether SIGALRM is currently blocked.
func (c *TCB) AlarmMasked() bool { return c.t.alarmMasked }

// AlarmPending reports whether a SIGALRM is pending, undelivered.
func (c *TCB) AlarmPending() bool { return c.t.pendingAlarm }

// Yield relinquishes the CPU to the back of the caller's priority level
// (sched_yield under SCHED_FIFO). With no equal-or-higher-priority thread
// ready, the caller continues after the switch cost.
func (c *TCB) Yield() {
	c.t.syscall(request{kind: reqYield})
}

// ChargeOp burns the cost of one machine primitive on the calling CPU; used
// for explicitly-modelled middleware work such as sigsetjmp/siglongjmp.
func (c *TCB) ChargeOp(op machine.Op) {
	c.t.syscall(request{kind: reqChargeOp, op: op})
}

// ChargeOpRemote burns the cost of op directed at hardware thread `to`,
// including the cross-core penalty when to is on a different core.
func (c *TCB) ChargeOpRemote(op machine.Op, to machine.HWThread) {
	c.t.syscall(request{kind: reqChargeOpRemote, op: op, remote: to})
}
