package kernel

import (
	"testing"
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/machine"
)

func TestMutexExcludesAndServesFIFO(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	m := k.NewMutex("m")
	var order []string
	var inside int
	worker := func(name string, cpu machine.HWThread, start time.Duration) {
		th := k.MustNewThread(ThreadConfig{Name: name, Priority: 50, CPU: cpu}, func(c *TCB) {
			c.SleepUntil(engine.At(start))
			c.MutexLock(m)
			inside++
			if inside != 1 {
				t.Errorf("%s: mutual exclusion violated", name)
			}
			c.Compute(10 * time.Millisecond)
			order = append(order, name)
			inside--
			c.MutexUnlock(m)
		})
		th.Start()
	}
	// a grabs the lock first; b and c queue in arrival order.
	worker("a", 0, 0)
	worker("b", 1, time.Millisecond)
	worker("c", 2, 2*time.Millisecond)
	k.Run()
	want := []string{"a", "b", "c"}
	if len(order) != 3 {
		t.Fatalf("order %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("FIFO order %v, want %v", order, want)
		}
	}
	if m.Locked() || m.Waiters() != 0 {
		t.Fatal("mutex should be free at the end")
	}
}

// np contenders serialize: total time is np x critical-section length.
func TestMutexSerializesWork(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	m := k.NewMutex("m")
	const np = 6
	const section = 10 * time.Millisecond
	var last engine.Time
	for i := 0; i < np; i++ {
		cpu := machine.HWThread(i % 8)
		th := k.MustNewThread(ThreadConfig{Name: "w", Priority: 50, CPU: cpu}, func(c *TCB) {
			c.MutexLock(m)
			c.Compute(section)
			c.MutexUnlock(m)
			if c.Now() > last {
				last = c.Now()
			}
		})
		th.Start()
	}
	k.Run()
	if last < engine.At(np*section) {
		t.Fatalf("finished at %v: critical sections overlapped", last)
	}
	if last > engine.At(np*section+5*time.Millisecond) {
		t.Fatalf("finished at %v: serialization overhead implausible", last)
	}
}

func TestMutexUnlockByNonOwnerPanics(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	m := k.NewMutex("m")
	owner := k.MustNewThread(ThreadConfig{Name: "owner", Priority: 50, CPU: 0}, func(c *TCB) {
		c.MutexLock(m)
		c.Sleep(time.Hour)
	})
	thief := k.MustNewThread(ThreadConfig{Name: "thief", Priority: 50, CPU: 1}, func(c *TCB) {
		c.Sleep(time.Millisecond)
		c.MutexUnlock(m)
	})
	owner.Start()
	thief.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("unlock by non-owner should panic")
		}
	}()
	k.Run()
}

func TestMutexRecursiveLockPanics(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	m := k.NewMutex("m")
	th := k.MustNewThread(ThreadConfig{Name: "t", Priority: 50, CPU: 0}, func(c *TCB) {
		c.MutexLock(m)
		c.MutexLock(m)
	})
	th.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("recursive lock should panic")
		}
	}()
	k.Run()
}

func TestMutexName(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	if k.NewMutex("end").Name() != "end" {
		t.Fatal("name lost")
	}
}

func TestCPUTimeAccounting(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	lo := k.MustNewThread(ThreadConfig{Name: "lo", Priority: 50, CPU: 0}, func(c *TCB) {
		c.Compute(20 * time.Millisecond)
	})
	hi := k.MustNewThread(ThreadConfig{Name: "hi", Priority: 60, CPU: 0}, func(c *TCB) {
		c.SleepUntil(engine.At(5 * time.Millisecond))
		c.Compute(10 * time.Millisecond)
	})
	lo.Start()
	hi.Start()
	k.Run()
	// Each thread's CPU time equals its requested compute, despite the
	// preemption in the middle of lo's burst.
	if got := lo.CPUTime(); got != 20*time.Millisecond {
		t.Fatalf("lo CPU time %v, want 20ms", got)
	}
	if got := hi.CPUTime(); got != 10*time.Millisecond {
		t.Fatalf("hi CPU time %v, want 10ms", got)
	}
	// CPU 0 utilization over the run is dominated by the 30ms of compute
	// plus switch/dispatch services.
	u := k.Utilization(0, engine.At(0))
	if u < 0.9 || u > 1.0 {
		t.Fatalf("cpu0 utilization %v, want ~0.95+", u)
	}
	if k.Utilization(1, engine.At(0)) != 0 {
		t.Fatal("idle cpu should have zero utilization")
	}
	if k.Utilization(0, k.Now()) != 0 {
		t.Fatal("zero span should report zero utilization")
	}
}

func TestInterruptedBurstCPUTime(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	th := k.MustNewThread(ThreadConfig{Name: "t", Priority: 50, CPU: 0}, func(c *TCB) {
		c.TimerSet(engine.At(5 * time.Millisecond))
		c.ComputeInterruptible(time.Second)
	})
	th.Start()
	k.Run()
	got := th.CPUTime()
	if got < 4*time.Millisecond || got > 6*time.Millisecond {
		t.Fatalf("terminated burst CPU time %v, want ~5ms", got)
	}
}

func TestMigrateMovesThread(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var cpuBefore, cpuAfter machine.HWThread
	th := k.MustNewThread(ThreadConfig{Name: "m", Priority: 50, CPU: 0}, func(c *TCB) {
		cpuBefore = c.HWThread()
		c.Migrate(3)
		cpuAfter = c.HWThread()
		c.Compute(time.Millisecond)
	})
	th.Start()
	k.Run()
	if cpuBefore != 0 || cpuAfter != 3 {
		t.Fatalf("migration %d -> %d, want 0 -> 3", cpuBefore, cpuAfter)
	}
	if th.Migrations() != 1 {
		t.Fatalf("migrations %d, want 1", th.Migrations())
	}
	if th.CPU() != 3 {
		t.Fatalf("thread CPU %d, want 3", th.CPU())
	}
}

func TestMigrateToSameCPUIsFree(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var before, after engine.Time
	th := k.MustNewThread(ThreadConfig{Name: "m", Priority: 50, CPU: 2}, func(c *TCB) {
		before = c.Now()
		c.Migrate(2)
		after = c.Now()
	})
	th.Start()
	k.Run()
	if before != after {
		t.Fatal("same-CPU migration should be a no-op")
	}
	if th.Migrations() != 0 {
		t.Fatal("same-CPU migration must not count")
	}
}

func TestMigrateCostsMoreThanLocalSwitch(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var migrateCost time.Duration
	th := k.MustNewThread(ThreadConfig{Name: "m", Priority: 50, CPU: 0}, func(c *TCB) {
		start := c.Now()
		c.Migrate(1)
		migrateCost = c.Now().Sub(start)
	})
	th.Start()
	k.Run()
	// Migration = departure service (remote switch) + arrival dispatch;
	// it must exceed a plain local context switch cost.
	local := k.Machine().Cost(machine.OpContextSwitch, 0)
	if migrateCost <= local {
		t.Fatalf("migration cost %v should exceed a local switch %v", migrateCost, local)
	}
}

func TestMigrationFreesOldCPU(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var waiterRan bool
	mover := k.MustNewThread(ThreadConfig{Name: "mover", Priority: 60, CPU: 0}, func(c *TCB) {
		c.Migrate(1)
		c.Compute(50 * time.Millisecond)
	})
	waiter := k.MustNewThread(ThreadConfig{Name: "waiter", Priority: 50, CPU: 0}, func(c *TCB) {
		c.Compute(time.Millisecond)
		waiterRan = true
	})
	mover.Start()
	waiter.Start()
	k.Run()
	if !waiterRan {
		t.Fatal("old CPU should run the lower-priority thread after the migration")
	}
}

// sched_yield: the caller moves behind an equal-priority ready thread.
func TestYieldRotatesEqualPriority(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	var order []string
	a := k.MustNewThread(ThreadConfig{Name: "a", Priority: 50, CPU: 0}, func(c *TCB) {
		c.Compute(time.Millisecond)
		c.Yield() // b gets the CPU before a's second burst
		c.Compute(time.Millisecond)
		order = append(order, "a")
	})
	b := k.MustNewThread(ThreadConfig{Name: "b", Priority: 50, CPU: 0}, func(c *TCB) {
		c.Compute(time.Millisecond)
		order = append(order, "b")
	})
	a.Start()
	b.Start()
	k.Run()
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("order %v, want [b a]", order)
	}
}

// Yield with an empty queue just continues.
func TestYieldAloneContinues(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	done := false
	th := k.MustNewThread(ThreadConfig{Name: "t", Priority: 50, CPU: 0}, func(c *TCB) {
		c.Yield()
		c.Compute(time.Millisecond)
		done = true
	})
	th.Start()
	k.Run()
	if !done {
		t.Fatal("yield alone should continue")
	}
}
