package kernel

import (
	"testing"
	"testing/quick"
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/machine"
)

// Randomized robustness: a handful of threads run random programs of
// computes, sleeps, condvar traffic, mutex sections, timers and
// interruptible bursts. Whatever the interleaving, the simulation must
// terminate, stay deterministic, and leave every thread exited.
func TestPropertyRandomPrograms(t *testing.T) {
	run := func(seed uint64) (engine.Time, uint64) {
		model := machine.DefaultCostModel()
		model.JitterFrac = 0
		mach, err := machine.New(machine.Topology{Cores: 4, ThreadsPerCore: 2}, machine.CPULoad, model, 1)
		if err != nil {
			t.Fatal(err)
		}
		eng := engine.New()
		k := New(eng, mach)
		rng := engine.NewRand(seed)
		cv := k.NewCondVar("cv")
		mu := k.NewMutex("mu")

		const nThreads = 5
		for i := 0; i < nThreads; i++ {
			prio := 40 + rng.Intn(20)
			cpu := machine.HWThread(rng.Intn(8))
			ops := make([]int, 12)
			for j := range ops {
				ops[j] = rng.Intn(8)
			}
			durs := make([]time.Duration, len(ops))
			for j := range durs {
				durs[j] = time.Duration(rng.Intn(5)+1) * time.Millisecond
			}
			th := k.MustNewThread(ThreadConfig{Name: "f", Priority: prio, CPU: cpu}, func(c *TCB) {
				for j, op := range ops {
					switch op {
					case 0:
						c.Compute(durs[j])
					case 1:
						c.Sleep(durs[j])
					case 2:
						c.CondSignal(cv)
					case 3:
						// Wait only when someone is bound to signal later:
						// signal unconditionally first to avoid guaranteed
						// deadlock, then do a timed compute instead of an
						// unbounded wait.
						c.CondSignal(cv)
						c.Compute(durs[j] / 2)
					case 4:
						c.MutexLock(mu)
						c.Compute(durs[j])
						c.MutexUnlock(mu)
					case 5:
						c.TimerSet(c.Now().Add(durs[j] / 2))
						c.ComputeInterruptible(durs[j])
						c.TimerStop()
						c.SetAlarmMask(false)
					case 6:
						c.ChargeOp(machine.OpSigSetjmp)
					case 7:
						c.TimerSet(c.Now().Add(durs[j]))
						c.Compute(durs[j] / 2)
						c.TimerStop()
					}
				}
			})
			th.Start()
		}
		k.Run()
		return eng.Now(), eng.Steps()
	}
	f := func(seed uint64) bool {
		t1, s1 := run(seed)
		t2, s2 := run(seed)
		return t1 == t2 && s1 == s2 && t1 > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// All threads exited after a random run (no stuck states survive Shutdown).
func TestRandomProgramsAllExit(t *testing.T) {
	model := machine.DefaultCostModel()
	model.JitterFrac = 0
	mach, _ := machine.New(machine.Topology{Cores: 4, ThreadsPerCore: 2}, machine.NoLoad, model, 1)
	k := New(engine.New(), mach)
	cv := k.NewCondVar("cv")
	for i := 0; i < 4; i++ {
		i := i
		th := k.MustNewThread(ThreadConfig{Name: "x", Priority: 50 + i, CPU: machine.HWThread(i % 8)}, func(c *TCB) {
			if i == 0 {
				c.CondWait(cv) // never signalled: unwound at shutdown
				return
			}
			c.Compute(time.Millisecond)
		})
		th.Start()
	}
	k.Run()
	for _, th := range k.Threads() {
		if th.State() != StateExited {
			t.Fatalf("thread %v still %v after shutdown", th, th.State())
		}
	}
}
