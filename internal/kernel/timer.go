package kernel

import (
	"rtseed/internal/engine"
	"rtseed/internal/machine"
	"rtseed/internal/trace"
)

// handleTimerSet arms the thread's one-shot SIGALRM timer at an absolute
// virtual time (timer_settime with TIMER_ABSTIME), replacing any armed
// timer.
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) handleTimerSet(t *Thread, req request) {
	cost := k.mach.Cost(machine.OpTimerProgram, t.cpuID)
	k.service(t, cost, t.timerSetFn)
}

// finishTimerSet completes timer_settime after its service cost elapsed. The
// requested expiry is read from t.req, which cannot change while t is parked
// in the call.
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) finishTimerSet(t *Thread) {
	k.eng.Cancel(t.timer)
	at := t.req.at
	if at < k.eng.Now() {
		at = k.eng.Now()
	}
	t.timer = k.eng.Schedule(at, prioTimer, t.alarmFireFn)
	k.emit(t, trace.KindTimerArm, uint64(at))
	k.resumeThread(t, replyMsg{completed: true})
}

// handleTimerStop disarms the timer (timer_settime with a zero value) and
// clears any pending, undelivered SIGALRM from it.
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) handleTimerStop(t *Thread) {
	cost := k.mach.Cost(machine.OpTimerProgram, t.cpuID)
	k.service(t, cost, t.timerStopFn)
}

// finishTimerStop completes the disarm after its service cost elapsed.
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) finishTimerStop(t *Thread) {
	k.eng.Cancel(t.timer)
	t.timer = engine.Event{}
	t.pendingAlarm = false
	k.resumeThread(t, replyMsg{completed: true})
}

// deliverAlarm raises SIGALRM for t. If t is in an interruptible compute
// burst with the signal unmasked, the burst is terminated immediately;
// otherwise the signal stays pending and is delivered when the thread next
// enters an interruptible burst with the signal unmasked — or never, if the
// mask is never cleared (the try/catch pathology of Table I).
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) deliverAlarm(t *Thread) {
	t.pendingAlarm = true
	k.emit(t, trace.KindTimerFire, 0)
	k.checkAlarm(t)
}

// checkAlarm delivers a pending SIGALRM if t is currently interruptible.
//
//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) checkAlarm(t *Thread) {
	if !t.pendingAlarm || t.alarmMasked || !t.interruptible {
		return
	}
	if t.state != StateComputing {
		// Preempted mid-burst or between bursts: delivery happens when the
		// burst resumes (startCompute re-checks).
		return
	}
	k.interruptCompute(t)
}

// handleSetAlarmMask blocks or unblocks SIGALRM for the thread
// (pthread_sigmask). Unblocking with a signal pending delivers it at the
// thread's next interruptible burst.
//
//rtseed:kernelctx
func (k *Kernel) handleSetAlarmMask(t *Thread, req request) {
	t.alarmMasked = req.mask
	k.resumeThread(t, replyMsg{completed: true})
}
