package kernel

import (
	"fmt"

	"rtseed/internal/machine"
)

// Migrate re-pins the calling thread to cpu (sched_setaffinity at runtime)
// and reschedules it there. The thread pays the cross-core migration cost —
// a context switch plus the transfer of its working set — which is exactly
// the overhead the paper's §IV-B design discussion holds against global
// scheduling. Migrating to the current CPU is a no-op.
func (c *TCB) Migrate(cpu machine.HWThread) {
	if cpu == c.t.cpuID {
		return
	}
	c.t.syscall(request{kind: reqMigrate, remote: cpu})
}

//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) handleMigrate(t *Thread, req request) {
	target := req.remote
	if !k.mach.Topology().Contains(target) {
		panic(fmt.Sprintf("kernel: migrate to invalid hw thread %d", target))
	}
	// Departure cost on the old CPU: deschedule plus cache-line flush
	// toward the destination core. The move itself happens in the thread's
	// pre-allocated migrateFn callback, with the destination stashed in
	// t.svcCPU until the service fires.
	cost := k.mach.RemoteCost(machine.OpContextSwitch, t.cpuID, target)
	t.svcCPU = target
	k.service(t, cost, t.migrateFn)
}

// Migrations returns how many times the thread has migrated between
// hardware threads.
func (t *Thread) Migrations() int { return t.migrations }
