package kernel

import (
	"fmt"

	"rtseed/internal/machine"
)

// Migrate re-pins the calling thread to cpu (sched_setaffinity at runtime)
// and reschedules it there. The thread pays the cross-core migration cost —
// a context switch plus the transfer of its working set — which is exactly
// the overhead the paper's §IV-B design discussion holds against global
// scheduling. Migrating to the current CPU is a no-op.
func (c *TCB) Migrate(cpu machine.HWThread) {
	if cpu == c.t.cpuID {
		return
	}
	c.t.syscall(request{kind: reqMigrate, remote: cpu})
}

//rtseed:kernelctx
func (k *Kernel) handleMigrate(t *Thread, req request) {
	target := req.remote
	if !k.mach.Topology().Contains(target) {
		panic(fmt.Sprintf("kernel: migrate to invalid hw thread %d", target))
	}
	// Departure cost on the old CPU: deschedule plus cache-line flush
	// toward the destination core.
	cost := k.mach.RemoteCost(machine.OpContextSwitch, t.cpuID, target)
	k.service(t, cost, func() {
		old := t.cpuID
		k.setCurrent(k.cpu(old), nil)
		k.mach.UnbindRT(old)
		t.cpuID = target
		k.mach.BindRT(target)
		t.migrations++
		t.dispatchOp = machine.OpContextSwitch
		t.pendingReply = replyMsg{completed: true}
		k.makeReady(t, false)
		// The old CPU is free; let it pick its next thread.
		k.scheduleDispatch(k.cpu(old))
	})
}

// Migrations returns how many times the thread has migrated between
// hardware threads.
func (t *Thread) Migrations() int { return t.migrations }
