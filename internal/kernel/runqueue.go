package kernel

import (
	"time"

	"rtseed/internal/list"
	"rtseed/internal/machine"
)

// runQueue is one CPU's SCHED_FIFO ready queue: 99 FIFO levels, each a
// double circular linked list, larger priority values first (paper Fig. 5).
type runQueue struct {
	levels [MaxPriority + 1]list.List[*Thread]
	count  int
}

// enqueue adds t to its priority level, at the head when atFront is set
// (SCHED_FIFO places preempted threads back at the head of their level).
//
//rtseed:noalloc
func (q *runQueue) enqueue(t *Thread, atFront bool) {
	if t.queueNode != nil && t.queueNode.Attached() {
		panic("kernel: thread already enqueued")
	}
	lvl := &q.levels[t.prio]
	if atFront {
		t.queueNode = lvl.PushFront(t)
	} else {
		t.queueNode = lvl.PushBack(t)
	}
	q.count++
}

// pop removes and returns the highest-priority thread, or nil when empty.
//
//rtseed:noalloc
func (q *runQueue) pop() *Thread {
	for p := MaxPriority; p >= MinPriority; p-- {
		if n := q.levels[p].PopFront(); n != nil {
			q.count--
			n.Value.queueNode = nil
			return n.Value
		}
	}
	return nil
}

// remove detaches t from the queue; no-op if it is not queued.
//
//rtseed:noalloc
func (q *runQueue) remove(t *Thread) {
	if t.queueNode == nil || !t.queueNode.Attached() {
		return
	}
	q.levels[t.prio].Remove(t.queueNode)
	t.queueNode = nil
	q.count--
}

// topPriority returns the highest priority with a ready thread, or -1.
//
//rtseed:noalloc
func (q *runQueue) topPriority() int {
	if q.count == 0 {
		return -1
	}
	for p := MaxPriority; p >= MinPriority; p-- {
		if q.levels[p].Len() > 0 {
			return p
		}
	}
	return -1
}

// len returns the number of queued threads.
func (q *runQueue) len() int { return q.count }

// cpu is the per-hardware-thread scheduling state.
type cpu struct {
	id      machine.HWThread
	runq    *runQueue
	current *Thread
	// busy marks a non-preemptible window: a context switch in progress or
	// a kernel service executing on behalf of current.
	busy bool
	// busyTime accumulates time spent running compute or services.
	busyTime time.Duration

	// Pre-allocated engine callbacks. At most one dispatch and one kernel
	// service are in flight per CPU (both guarded by busy), so their
	// parameters live in fields and the closures are built once in New —
	// the engine's steady-state event cycle then allocates nothing.
	dispatchT   *Thread
	dispatchFn  func()
	serviceCost time.Duration
	serviceThen func()
	serviceFn   func()
}

func newCPU(id machine.HWThread) *cpu {
	return &cpu{id: id, runq: &runQueue{}}
}
