package kernel

import (
	"math/bits"
	"time"

	"rtseed/internal/machine"
)

// runQueue is one CPU's SCHED_FIFO ready queue: 99 FIFO levels, each a
// doubly-linked list threaded through the Threads themselves, larger
// priority values first (paper Fig. 5).
//
// A two-word occupancy bitmap mirrors the lists — bit p is set exactly when
// levels[p] is non-empty — so finding the highest ready priority is one
// find-first-set per word (Linux's sched_find_first_bit technique) instead
// of a scan over 99 list heads. Every operation is O(1): enqueue and remove
// maintain the bitmap as their level transitions empty↔non-empty, and pop /
// topPriority locate the top level with bits.Len64.
//
// The links are intrusive (Thread.qnext/qprev): a thread is in at most one
// ready queue, so carrying the links in the Thread itself avoids both a
// per-enqueue allocation and a separate list-node cache line on every
// scheduling operation.
type runQueue struct {
	// bitmap has bit p of word p/64 set iff levels[p] is non-empty.
	// Priorities span [MinPriority, MaxPriority] = [1, 99], so two words
	// cover every level with room to spare.
	bitmap [2]uint64
	levels [MaxPriority + 1]fifoLevel
	count  int
}

// fifoLevel is one priority level's FIFO of ready threads.
type fifoLevel struct {
	head, tail *Thread
}

// enqueue adds t to its priority level, at the head when atFront is set
// (SCHED_FIFO places preempted threads back at the head of their level).
// It panics with a descriptive message if t's priority is outside the
// scheduler's [MinPriority, MaxPriority] band rather than faulting on a
// bare array index.
//
//rtseed:noalloc
//rtseed:kernelctx
func (q *runQueue) enqueue(t *Thread, atFront bool) {
	if t.prio < MinPriority || t.prio > MaxPriority {
		panic("kernel: enqueue priority outside [MinPriority, MaxPriority]")
	}
	if t.queued {
		panic("kernel: thread already enqueued")
	}
	t.queued = true
	lvl := &q.levels[t.prio]
	if atFront {
		t.qnext = lvl.head
		if lvl.head != nil {
			lvl.head.qprev = t
		} else {
			lvl.tail = t
		}
		lvl.head = t
	} else {
		t.qprev = lvl.tail
		if lvl.tail != nil {
			lvl.tail.qnext = t
		} else {
			lvl.head = t
		}
		lvl.tail = t
	}
	q.bitmap[uint(t.prio)>>6] |= 1 << (uint(t.prio) & 63)
	q.count++
}

// pop removes and returns the highest-priority thread, or nil when empty.
//
//rtseed:noalloc
//rtseed:kernelctx
func (q *runQueue) pop() *Thread {
	if q.count == 0 {
		return nil
	}
	p := q.top()
	lvl := &q.levels[p]
	t := lvl.head
	lvl.head = t.qnext
	if lvl.head != nil {
		lvl.head.qprev = nil
	} else {
		lvl.tail = nil
		q.bitmap[uint(p)>>6] &^= 1 << (uint(p) & 63)
	}
	t.qnext = nil
	t.queued = false
	q.count--
	return t
}

// remove detaches t from the queue; no-op if it is not queued.
//
//rtseed:noalloc
//rtseed:kernelctx
func (q *runQueue) remove(t *Thread) {
	if !t.queued {
		return
	}
	lvl := &q.levels[t.prio]
	if t.qprev != nil {
		t.qprev.qnext = t.qnext
	} else {
		lvl.head = t.qnext
	}
	if t.qnext != nil {
		t.qnext.qprev = t.qprev
	} else {
		lvl.tail = t.qprev
	}
	if lvl.head == nil {
		q.bitmap[uint(t.prio)>>6] &^= 1 << (uint(t.prio) & 63)
	}
	t.qnext = nil
	t.qprev = nil
	t.queued = false
	q.count--
}

// top returns the highest occupied priority level. The queue must be
// non-empty; callers guard on count.
//
//rtseed:noalloc
func (q *runQueue) top() int {
	if w := q.bitmap[1]; w != 0 {
		return bits.Len64(w) + 63
	}
	return bits.Len64(q.bitmap[0]) - 1
}

// topPriority returns the highest priority with a ready thread, or -1 when
// the queue is empty.
//
//rtseed:noalloc
func (q *runQueue) topPriority() int {
	if q.count == 0 {
		return -1
	}
	return q.top()
}

// len returns the number of queued threads.
func (q *runQueue) len() int { return q.count }

// cpu is the per-hardware-thread scheduling state.
type cpu struct {
	id      machine.HWThread
	runq    *runQueue
	current *Thread
	// busy marks a non-preemptible window: a context switch in progress or
	// a kernel service executing on behalf of current.
	busy bool
	// busyTime accumulates time spent running compute or services.
	busyTime time.Duration

	// Pre-allocated engine callbacks. At most one dispatch and one kernel
	// service are in flight per CPU (both guarded by busy), so their
	// parameters live in fields and the closures are built once in New —
	// the engine's steady-state event cycle then allocates nothing.
	dispatchT   *Thread
	dispatchFn  func()
	serviceCost time.Duration
	serviceThen func()
	serviceFn   func()
}

func newCPU(id machine.HWThread) *cpu {
	return &cpu{id: id, runq: &runQueue{}}
}
