package kernel

import (
	"testing"
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/machine"
)

// inversionScenario is the classic three-thread priority inversion: a
// low-priority thread takes the lock, a high-priority thread blocks on it,
// and a medium-priority CPU hog on the same processor preempts the
// low-priority holder. Without priority inheritance the hog runs for its
// full burst before the holder can release; with it, the holder is boosted
// above the hog and the high-priority thread's blocking stays bounded by
// the critical section.
func inversionScenario(t *testing.T, pi bool) (hiDone engine.Time) {
	t.Helper()
	k := testKernel(t, machine.NoLoad)
	var m *Mutex
	if pi {
		m = k.NewPIMutex("m")
	} else {
		m = k.NewMutex("m")
	}
	lo := k.MustNewThread(ThreadConfig{Name: "lo", Priority: 40, CPU: 0}, func(c *TCB) {
		c.MutexLock(m)
		c.Compute(5 * time.Millisecond) // critical section
		c.MutexUnlock(m)
	})
	mid := k.MustNewThread(ThreadConfig{Name: "mid", Priority: 50, CPU: 0}, func(c *TCB) {
		c.SleepUntil(engine.At(2 * time.Millisecond))
		c.Compute(100 * time.Millisecond) // the hog
	})
	hi := k.MustNewThread(ThreadConfig{Name: "hi", Priority: 60, CPU: 0}, func(c *TCB) {
		c.SleepUntil(engine.At(1 * time.Millisecond))
		c.MutexLock(m)
		c.MutexUnlock(m)
		hiDone = c.Now()
	})
	lo.Start()
	mid.Start()
	hi.Start()
	k.Run()
	return hiDone
}

func TestPriorityInversionWithoutPI(t *testing.T) {
	done := inversionScenario(t, false)
	// hi cannot finish before the 100ms hog releases the CPU for lo.
	if done < engine.At(100*time.Millisecond) {
		t.Fatalf("hi finished at %v; expected unbounded inversion behind the hog", done)
	}
}

func TestPriorityInheritanceBoundsInversion(t *testing.T) {
	done := inversionScenario(t, true)
	// hi's blocking is bounded by lo's ~5ms critical section.
	if done > engine.At(10*time.Millisecond) {
		t.Fatalf("hi finished at %v; priority inheritance should bound blocking to the critical section", done)
	}
}

// The boosted owner returns to its base priority after unlock.
func TestPIBoostIsTemporary(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	m := k.NewPIMutex("m")
	var prioDuring, prioAfter int
	lo := k.MustNewThread(ThreadConfig{Name: "lo", Priority: 40, CPU: 0}, func(c *TCB) {
		c.MutexLock(m)
		c.Compute(5 * time.Millisecond)
		prioDuring = c.Thread().Priority()
		c.MutexUnlock(m)
		prioAfter = c.Thread().Priority()
	})
	hi := k.MustNewThread(ThreadConfig{Name: "hi", Priority: 70, CPU: 1}, func(c *TCB) {
		c.SleepUntil(engine.At(time.Millisecond))
		c.MutexLock(m)
		c.MutexUnlock(m)
	})
	lo.Start()
	hi.Start()
	k.Run()
	if prioDuring != 70 {
		t.Fatalf("owner priority during contention %d, want boosted 70", prioDuring)
	}
	if prioAfter != 40 {
		t.Fatalf("owner priority after unlock %d, want base 40", prioAfter)
	}
}

// A plain mutex never boosts.
func TestPlainMutexNoBoost(t *testing.T) {
	k := testKernel(t, machine.NoLoad)
	m := k.NewMutex("m")
	var prioDuring int
	lo := k.MustNewThread(ThreadConfig{Name: "lo", Priority: 40, CPU: 0}, func(c *TCB) {
		c.MutexLock(m)
		c.Compute(5 * time.Millisecond)
		prioDuring = c.Thread().Priority()
		c.MutexUnlock(m)
	})
	hi := k.MustNewThread(ThreadConfig{Name: "hi", Priority: 70, CPU: 1}, func(c *TCB) {
		c.SleepUntil(engine.At(time.Millisecond))
		c.MutexLock(m)
		c.MutexUnlock(m)
	})
	lo.Start()
	hi.Start()
	k.Run()
	if prioDuring != 40 {
		t.Fatalf("plain mutex boosted the owner to %d", prioDuring)
	}
}
