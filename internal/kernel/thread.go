package kernel

import (
	"fmt"
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/list"
	"rtseed/internal/machine"
	"rtseed/internal/trace"
)

// Priority bounds of SCHED_FIFO: larger values denote higher priority.
const (
	MinPriority = 1
	MaxPriority = 99
)

// State is a simulated thread's scheduling state.
type State int

// Thread states.
const (
	StateNew State = iota + 1
	StateReady
	StateRunning   // on CPU, inside a kernel service
	StateComputing // on CPU, burning a compute burst
	StateBlocked   // waiting on a condition variable
	StateSleeping  // in clock_nanosleep
	StateExited
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateComputing:
		return "computing"
	case StateBlocked:
		return "blocked"
	case StateSleeping:
		return "sleeping"
	case StateExited:
		return "exited"
	default:
		return "unknown"
	}
}

// ThreadConfig configures a new simulated thread.
type ThreadConfig struct {
	// Name identifies the thread in traces.
	Name string
	// Priority is the SCHED_FIFO priority, in [MinPriority, MaxPriority].
	Priority int
	// CPU pins the thread to a hardware thread (sched_setaffinity with a
	// single CPU, as RT-Seed does).
	CPU machine.HWThread
}

// Thread is a simulated SCHED_FIFO thread.
type Thread struct {
	id    int
	name  string
	prio  int
	cpuID machine.HWThread
	k     *Kernel
	state State

	body func(*TCB)

	// Goroutine handshake (goroutine executor only). The kernel sends on
	// run to let the thread's host code execute; the thread sends on
	// yielded after recording its next request. done is closed when the
	// goroutine ends. Continuation threads leave all three nil.
	run     chan resumeMsg
	yielded chan struct{}
	done    chan struct{}
	started bool
	killed  bool
	unbound bool

	// Continuation executor (body.go). stepBody non-nil selects it: the
	// kernel drives the body's state machine inline from its dispatch path
	// and the channels above are never created. tcb is the pre-allocated
	// TCB handed to every Step, stepReply/stepFirst the pending Resume, and
	// stepping/stepPending the trampoline state of stepThread.
	stepBody    Body
	tcb         TCB
	stepReply   replyMsg
	stepFirst   bool
	stepping    bool
	stepPending bool

	req   request
	reply replyMsg
	// pendingReply is delivered when the thread is next dispatched after
	// being woken from a blocking call.
	pendingReply replyMsg

	// qnext/qprev link the thread into its run-queue priority level, and
	// queued marks membership. A thread is in at most one ready queue, so
	// the links live in the Thread itself: enqueueing touches no extra
	// cache line and allocates nothing.
	qnext, qprev *Thread
	queued       bool
	// cvNode links the thread into a mutex or condition variable waiter
	// list; it is pre-allocated in NewThread and reused.
	cvNode *list.Node[*Thread]

	// dispatchOp prices the next dispatch of this thread: OpDispatch for a
	// wake-up from sleep (job release), OpContextSwitch otherwise.
	dispatchOp machine.Op

	// Compute burst bookkeeping. computeRemaining and computeRan are
	// nominal work; computeFactor is the SMT throughput factor sampled at
	// the current segment's start (interruptible bursts only), stretching
	// the wall time a unit of work takes.
	inCompute        bool
	interruptible    bool
	computeRemaining time.Duration
	computeRan       time.Duration
	computeFactor    float64
	computeStart     engine.Time
	computeWall      time.Duration
	computeDone      engine.Event //rtseed:handle-ok cleared or re-armed on every burst transition; interruptCompute gates on Scheduled

	// cpuConsumed accumulates compute time across bursts (see CPUTime).
	cpuConsumed time.Duration
	// migrations counts runtime re-pinnings (see Migrations).
	migrations int
	// base is the thread's base priority while boosted by priority
	// inheritance (0 = not boosted).
	base int

	// SIGALRM state.
	alarmMasked  bool
	pendingAlarm bool
	timer        engine.Event //rtseed:handle-ok re-armed under Cancel by finishTimerSet and zeroed on disarm/exit

	// Pre-allocated engine and service callbacks for the per-job hot paths
	// (timer fire, wake-up, compute completion, alarm interrupt return,
	// timer_settime service). Each reads its parameters from the thread's
	// fields at fire time — safe because the thread is parked in the kernel
	// call until the callback resumes it — so arming an event allocates no
	// closure.
	computeDoneFn   func()
	alarmFireFn     func()
	wakeFn          func()
	interruptDoneFn func()
	timerSetFn      func()
	timerStopFn     func()
	resumeOKFn      func()
	condWaitFn      func()
	condSignalFn    func()
	condBroadcastFn func()
	migrateFn       func()

	// Scratch parameters for the pre-allocated service callbacks above: the
	// condition variable or destination CPU of the thread's in-flight kernel
	// request, stashed by the handler and read back at fire time. Exactly one
	// request per thread is in flight, so a single slot each suffices.
	svcCV  *CondVar
	svcCPU machine.HWThread
}

// ID returns the thread's creation-order identifier.
func (t *Thread) ID() int { return t.id }

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// Priority returns the thread's fixed priority.
func (t *Thread) Priority() int { return t.prio }

// CPU returns the hardware thread the thread is pinned to.
func (t *Thread) CPU() machine.HWThread { return t.cpuID }

// State returns the thread's current scheduling state.
func (t *Thread) State() State { return t.state }

// String implements fmt.Stringer.
func (t *Thread) String() string {
	return fmt.Sprintf("%s(prio=%d,cpu=%d)", t.name, t.prio, t.cpuID)
}

func (t *Thread) preemptible() bool { return t.state == StateComputing }

// NewThread creates a simulated thread on the goroutine executor: the body
// is a blocking function hand-shaken with the kernel over channels. The
// body runs when the thread is started and first dispatched. NewThread
// returns an error for out-of-range priorities or CPUs. New code should
// prefer the continuation executor (NewBodyThread); the goroutine form is
// retained as the differential oracle and for test scenarios where a
// blocking script reads better.
func (k *Kernel) NewThread(cfg ThreadConfig, body func(*TCB)) (*Thread, error) {
	t, err := k.newThread(cfg)
	if err != nil {
		return nil, err
	}
	t.body = body
	t.run = make(chan resumeMsg)
	t.yielded = make(chan struct{})
	t.done = make(chan struct{})
	return t, nil
}

// newThread builds and registers a thread with no body; the caller attaches
// either the goroutine or the continuation form.
func (k *Kernel) newThread(cfg ThreadConfig) (*Thread, error) {
	if cfg.Priority < MinPriority || cfg.Priority > MaxPriority {
		return nil, fmt.Errorf("kernel: priority %d out of range [%d,%d]", cfg.Priority, MinPriority, MaxPriority)
	}
	if !k.mach.Topology().Contains(cfg.CPU) {
		return nil, fmt.Errorf("kernel: cpu %d outside topology", cfg.CPU)
	}
	k.nextTID++
	t := &Thread{
		id:         k.nextTID,
		name:       cfg.Name,
		prio:       cfg.Priority,
		cpuID:      cfg.CPU,
		k:          k,
		state:      StateNew,
		dispatchOp: machine.OpContextSwitch,
	}
	t.tcb = TCB{t: t}
	// The thread owns its waiter-list node for its whole lifetime:
	// enqueueing links this pre-allocated node, so waiter lists never
	// allocate on the scheduling path. (The ready queues use the intrusive
	// qnext/qprev links and need no node at all.)
	t.cvNode = &list.Node[*Thread]{Value: t}
	// The pre-allocated per-thread callbacks below all run inside the
	// engine's event dispatch.
	//rtseed:kernelctx
	t.computeDoneFn = func() { k.finishCompute(t) }
	//rtseed:kernelctx
	t.alarmFireFn = func() {
		t.timer = engine.Event{}
		k.deliverAlarm(t)
	}
	//rtseed:kernelctx
	t.wakeFn = func() {
		if t.state != StateSleeping {
			return
		}
		t.dispatchOp = machine.OpDispatch
		k.makeReady(t, false)
	}
	//rtseed:kernelctx
	t.interruptDoneFn = func() {
		remaining := t.computeRemaining
		t.computeRemaining = 0
		k.resumeThread(t, replyMsg{completed: false, ran: t.computeRan, unran: remaining})
	}
	//rtseed:kernelctx
	t.timerSetFn = func() { k.finishTimerSet(t) }
	//rtseed:kernelctx
	t.timerStopFn = func() { k.finishTimerStop(t) }
	//rtseed:kernelctx
	t.resumeOKFn = func() { k.resumeThread(t, replyMsg{completed: true}) }
	//rtseed:kernelctx
	t.condWaitFn = func() {
		cv := t.svcCV
		t.svcCV = nil
		t.state = StateBlocked
		cv.waiters.PushBackNode(t.cvNode)
		k.emit(t, trace.KindBlock, 0)
		t.pendingReply = replyMsg{completed: true}
		k.releaseCPU(t)
	}
	//rtseed:kernelctx
	t.condSignalFn = func() {
		cv := t.svcCV
		t.svcCV = nil
		k.wakeOne(cv)
		k.resumeThread(t, replyMsg{completed: true})
	}
	//rtseed:kernelctx
	t.condBroadcastFn = func() {
		cv := t.svcCV
		t.svcCV = nil
		for cv.waiters.Len() > 0 {
			k.wakeOne(cv)
		}
		k.resumeThread(t, replyMsg{completed: true})
	}
	//rtseed:kernelctx
	t.migrateFn = func() {
		target := t.svcCPU
		old := t.cpuID
		k.setCurrent(k.cpu(old), nil)
		k.mach.UnbindRT(old)
		t.cpuID = target
		k.mach.BindRT(target)
		t.migrations++
		t.dispatchOp = machine.OpContextSwitch
		t.pendingReply = replyMsg{completed: true}
		k.makeReady(t, false)
		// The old CPU is free; let it pick its next thread.
		k.scheduleDispatch(k.cpu(old))
	}
	k.threads = append(k.threads, t)
	k.mach.BindRT(t.cpuID)
	return t, nil
}

// MustNewThread is NewThread for statically-valid configuration.
func (k *Kernel) MustNewThread(cfg ThreadConfig, body func(*TCB)) *Thread {
	t, err := k.NewThread(cfg, body)
	if err != nil {
		panic(err)
	}
	return t
}

// Start makes the thread ready at the current virtual time. A goroutine
// body gets its host goroutine here; a continuation body needs none — its
// first Step runs inline at the first dispatch.
//
//rtseed:kernelctx-entry quiescent setup: runs while the engine is stopped, serialized with the event loop
func (t *Thread) Start() {
	if t.started {
		panic("kernel: thread started twice")
	}
	t.started = true
	if t.stepBody == nil {
		go t.main()
	}
	t.k.makeReady(t, false)
}

// killSentinel unwinds a simulated thread's goroutine during Shutdown.
type killSentinel struct{}

func (t *Thread) main() {
	defer close(t.done)
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSentinel); ok {
				t.state = StateExited
				return
			}
			panic(r)
		}
	}()
	// Wait for first dispatch.
	msg := <-t.run
	if msg.kill {
		panic(killSentinel{})
	}
	t.body(&TCB{t: t})
	// Normal exit: report it to the kernel, which is waiting in
	// resumeThread.
	t.req = request{kind: reqExit}
	t.yielded <- struct{}{}
}

// kill force-terminates a thread parked in a kernel call. A continuation
// thread has no goroutine to unwind: marking it exited is the whole job.
// A goroutine thread's host goroutine is parked in syscall and must be
// resumed with the kill flag so it panics out through killSentinel.
func (t *Thread) kill() {
	if t.stepBody != nil || !t.started || t.state == StateExited {
		t.state = StateExited
		t.k.unbind(t)
		return
	}
	t.killed = true
	t.run <- resumeMsg{kill: true}
	<-t.done
	t.state = StateExited
	t.k.unbind(t)
}

// unbind releases the thread's machine binding exactly once.
func (k *Kernel) unbind(t *Thread) {
	if t.unbound {
		return
	}
	t.unbound = true
	k.mach.UnbindRT(t.cpuID)
}

type resumeMsg struct {
	kill bool
}

type replyMsg struct {
	completed bool
	ran       time.Duration
	unran     time.Duration
}

type requestKind int

const (
	reqCompute requestKind = iota + 1
	reqSleepUntil
	reqCondWait
	reqCondSignal
	reqCondBroadcast
	reqTimerSet
	reqTimerStop
	reqSetAlarmMask
	reqChargeOp
	reqChargeOpRemote
	reqMutexLock
	reqMutexUnlock
	reqMigrate
	reqYield
	reqExit
)

// String implements fmt.Stringer, naming the syscall a request models.
func (k requestKind) String() string {
	switch k {
	case reqCompute:
		return "compute"
	case reqSleepUntil:
		return "sleep-until"
	case reqCondWait:
		return "cond-wait"
	case reqCondSignal:
		return "cond-signal"
	case reqCondBroadcast:
		return "cond-broadcast"
	case reqTimerSet:
		return "timer-set"
	case reqTimerStop:
		return "timer-stop"
	case reqSetAlarmMask:
		return "set-alarm-mask"
	case reqChargeOp:
		return "charge-op"
	case reqChargeOpRemote:
		return "charge-op-remote"
	case reqMutexLock:
		return "mutex-lock"
	case reqMutexUnlock:
		return "mutex-unlock"
	case reqMigrate:
		return "migrate"
	case reqYield:
		return "yield"
	case reqExit:
		return "exit"
	default:
		return "unknown"
	}
}

type request struct {
	kind          requestKind
	dur           time.Duration
	at            engine.Time
	cv            *CondVar
	interruptible bool
	mask          bool
	// rel marks a continuation Sleep whose absolute wake time is resolved
	// when the action executes (applyNext); the blocking TCB.Sleep resolves
	// it at call time instead, which is the same virtual instant.
	rel    bool
	op     machine.Op
	remote machine.HWThread
	mutex  *Mutex
}

// syscall parks the calling thread goroutine, hands control to the kernel,
// and returns the kernel's reply when the thread is resumed.
func (t *Thread) syscall(req request) replyMsg {
	t.req = req
	t.yielded <- struct{}{}
	msg := <-t.run
	if msg.kill {
		panic(killSentinel{})
	}
	return t.reply
}

// handleRequest processes the kernel request recorded by the thread that
// just yielded. Exactly one of the branches either resumes the thread
// (directly or via a costed service) or blocks it and releases its CPU.
//
//rtseed:kernelctx
func (k *Kernel) handleRequest(t *Thread) {
	req := t.req
	switch req.kind {
	case reqCompute:
		k.handleCompute(t, req)
	case reqSleepUntil:
		k.handleSleep(t, req)
	case reqCondWait:
		k.handleCondWait(t, req)
	case reqCondSignal:
		k.handleCondSignal(t, req)
	case reqCondBroadcast:
		k.handleCondBroadcast(t, req)
	case reqTimerSet:
		k.handleTimerSet(t, req)
	case reqTimerStop:
		k.handleTimerStop(t)
	case reqSetAlarmMask:
		k.handleSetAlarmMask(t, req)
	case reqChargeOp:
		cost := k.mach.Cost(req.op, t.cpuID)
		k.service(t, cost, t.resumeOKFn)
	case reqChargeOpRemote:
		cost := k.mach.RemoteCost(req.op, t.cpuID, req.remote)
		k.service(t, cost, t.resumeOKFn)
	case reqMutexLock:
		k.handleMutexLock(t, req)
	case reqMutexUnlock:
		k.handleMutexUnlock(t, req)
	case reqMigrate:
		k.handleMigrate(t, req)
	case reqYield:
		k.handleYield(t)
	case reqExit:
		k.handleExit(t)
	default:
		panic(fmt.Sprintf("kernel: unknown request %d", req.kind))
	}
}

//rtseed:kernelctx
func (k *Kernel) handleCompute(t *Thread, req request) {
	t.computeRemaining = req.dur
	t.computeRan = 0
	t.computeFactor = 1
	t.interruptible = req.interruptible
	c := k.cpu(t.cpuID)
	// Yield to a higher-priority ready thread before starting the burst.
	if top := c.runq.topPriority(); top > t.prio {
		t.state = StateReady
		t.inCompute = true
		t.dispatchOp = machine.OpContextSwitch
		k.emit(t, trace.KindPreempt, 0)
		k.setCurrent(c, nil)
		c.runq.enqueue(t, true)
		k.scheduleDispatch(c)
		return
	}
	k.startCompute(t)
}

//rtseed:kernelctx
func (k *Kernel) handleSleep(t *Thread, req request) {
	if req.at <= k.eng.Now() {
		k.resumeThread(t, replyMsg{completed: true})
		return
	}
	t.state = StateSleeping
	k.emit(t, trace.KindSleep, 0)
	k.releaseCPU(t)
	t.pendingReply = replyMsg{completed: true}
	k.eng.Schedule(req.at, prioRelease, t.wakeFn)
}

//rtseed:kernelctx
func (k *Kernel) handleExit(t *Thread) {
	t.state = StateExited
	k.emit(t, trace.KindExit, 0)
	k.eng.Cancel(t.timer)
	t.timer = engine.Event{}
	k.unbind(t)
	k.releaseCPU(t)
}
