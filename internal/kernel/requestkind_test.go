package kernel

import "testing"

func TestRequestKindString(t *testing.T) {
	cases := []struct {
		kind requestKind
		want string
	}{
		{reqCompute, "compute"},
		{reqSleepUntil, "sleep-until"},
		{reqCondWait, "cond-wait"},
		{reqCondSignal, "cond-signal"},
		{reqCondBroadcast, "cond-broadcast"},
		{reqTimerSet, "timer-set"},
		{reqTimerStop, "timer-stop"},
		{reqSetAlarmMask, "set-alarm-mask"},
		{reqChargeOp, "charge-op"},
		{reqChargeOpRemote, "charge-op-remote"},
		{reqMutexLock, "mutex-lock"},
		{reqMutexUnlock, "mutex-unlock"},
		{reqMigrate, "migrate"},
		{reqYield, "yield"},
		{reqExit, "exit"},
		{requestKind(0), "unknown"},
		{requestKind(99), "unknown"},
	}
	seen := make(map[string]requestKind)
	for _, c := range cases {
		got := c.kind.String()
		if got != c.want {
			t.Errorf("requestKind(%d).String() = %q, want %q", int(c.kind), got, c.want)
		}
		if got == "unknown" {
			continue
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("requestKind(%d) and requestKind(%d) share the name %q", int(prev), int(c.kind), got)
		}
		seen[got] = c.kind
	}
	if len(seen) != 15 {
		t.Errorf("covered %d named request kinds, want 15", len(seen))
	}
}
