package kernel

import (
	"rtseed/internal/list"
	"rtseed/internal/machine"
)

// CondVar is a simulated condition variable in the style of pthread_cond_t.
// The simulation serializes all host code, so the associated mutex of the
// POSIX API is implicit; Wait atomically blocks and Signal wakes the
// longest-waiting thread, exactly as RT-Seed uses per-optional-thread
// condition variables (paper Fig. 6/7).
type CondVar struct {
	name    string
	waiters *list.List[*Thread]
}

// NewCondVar returns a condition variable. The name appears in diagnostics.
func (k *Kernel) NewCondVar(name string) *CondVar {
	return &CondVar{name: name, waiters: list.New[*Thread]()}
}

// Name returns the condition variable's name.
func (cv *CondVar) Name() string { return cv.name }

// Waiters returns the number of blocked threads.
func (cv *CondVar) Waiters() int { return cv.waiters.Len() }

// The condvar handlers complete through the thread's pre-allocated
// condWaitFn/condSignalFn/condBroadcastFn callbacks, with the condition
// variable stashed in t.svcCV until the service fires — arming the costed
// service must not allocate a closure on the kernel path.

//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) handleCondWait(t *Thread, req request) {
	cost := k.mach.Cost(machine.OpCondWait, t.cpuID)
	t.svcCV = req.cv
	k.service(t, cost, t.condWaitFn)
}

//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) handleCondSignal(t *Thread, req request) {
	// Price the signal with the cross-core transfer penalty when the woken
	// thread lives on another core.
	target := req.cv.waiters.Front()
	var cost = k.mach.Cost(machine.OpCondSignal, t.cpuID)
	if target != nil {
		cost = k.mach.RemoteCost(machine.OpCondSignal, t.cpuID, target.Value.cpuID)
	}
	t.svcCV = req.cv
	k.service(t, cost, t.condSignalFn)
}

//rtseed:noalloc
//rtseed:kernelctx
func (k *Kernel) handleCondBroadcast(t *Thread, req request) {
	cost := k.mach.Cost(machine.OpCondSignal, t.cpuID)
	// Each additional waiter adds another signal's worth of work.
	for i := 1; i < req.cv.waiters.Len(); i++ {
		cost += k.mach.Cost(machine.OpCondSignal, t.cpuID)
	}
	t.svcCV = req.cv
	k.service(t, cost, t.condBroadcastFn)
}

// wakeOne unblocks the front waiter of cv, if any.
//
//rtseed:kernelctx
func (k *Kernel) wakeOne(cv *CondVar) {
	n := cv.waiters.PopFront()
	if n == nil {
		return
	}
	w := n.Value
	w.dispatchOp = machine.OpContextSwitch
	k.makeReady(w, false)
}
