package trace

import (
	"bytes"
	"testing"
	"time"

	"rtseed/internal/engine"
)

func at(d time.Duration) engine.Time { return engine.At(d) }

func TestKindStringAndValid(t *testing.T) {
	for k := KindReady; k < kindMax; k++ {
		if !k.Valid() {
			t.Fatalf("kind %d should be valid", k)
		}
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	for _, k := range []Kind{0, kindMax, 255} {
		if k.Valid() {
			t.Fatalf("kind %d should be invalid", k)
		}
		if k.String() != "unknown" {
			t.Fatalf("invalid kind %d renders %q", k, k.String())
		}
	}
}

func TestPackJobPartRoundTrip(t *testing.T) {
	cases := []struct{ job, part int }{
		{0, 0}, {1, 2}, {12345, 0xffff}, {1 << 30, 7},
	}
	for _, c := range cases {
		job, part := UnpackJobPart(PackJobPart(c.job, c.part))
		if job != c.job || part != c.part {
			t.Fatalf("pack(%d,%d) unpacked to (%d,%d)", c.job, c.part, job, part)
		}
	}
}

func TestPackMissRoundTripAndSaturation(t *testing.T) {
	job, late := UnpackMiss(PackMiss(42, 1500*time.Microsecond))
	if job != 42 || late != 1500*time.Microsecond {
		t.Fatalf("unpacked (%d, %v)", job, late)
	}
	// Lateness saturates at ~4.29s instead of corrupting the job index.
	job, late = UnpackMiss(PackMiss(7, time.Hour))
	if job != 7 || late != 0xffffffff {
		t.Fatalf("saturated unpack (%d, %v)", job, late)
	}
	// Negative lateness clamps to zero.
	if _, late = UnpackMiss(PackMiss(1, -time.Second)); late != 0 {
		t.Fatalf("negative lateness kept: %v", late)
	}
}

func TestMissedDeadline(t *testing.T) {
	if MissedDeadline(10*time.Millisecond, 10*time.Millisecond) {
		t.Fatal("finishing exactly at the deadline is a hit")
	}
	if !MissedDeadline(10*time.Millisecond+1, 10*time.Millisecond) {
		t.Fatal("finishing after the deadline is a miss")
	}
}

func TestEmitAndRecordsOrder(t *testing.T) {
	tr := New(Config{CPUs: 2, Capacity: 16})
	// Interleave two CPUs; Records must come back in emission order.
	tr.Emit(at(1), 0, 1, KindReady, 0)
	tr.Emit(at(2), 1, 2, KindReady, 0)
	tr.Emit(at(3), 0, 1, KindDispatch, 0)
	tr.Emit(at(4), 1, 2, KindDispatch, 0)
	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("%d records, want 4", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
	}
	if recs[1].CPU != 1 || recs[1].TID != 2 {
		t.Fatalf("merge broke attribution: %+v", recs[1])
	}
	if tr.Emitted() != 4 {
		t.Fatalf("Emitted() = %d", tr.Emitted())
	}
}

func TestFlightRecorderOverflowCountsLost(t *testing.T) {
	tr := New(Config{CPUs: 1, Capacity: 4})
	for i := 0; i < 10; i++ {
		tr.Emit(at(time.Duration(i)), 0, 1, KindReady, uint64(i))
	}
	if lost := tr.TotalLost(); lost != 6 {
		t.Fatalf("lost %d, want 6", lost)
	}
	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("retained %d, want 4", len(recs))
	}
	// The survivors are the newest four, still in emission order.
	for i, rec := range recs {
		if want := uint64(7 + i); rec.Seq != want {
			t.Fatalf("survivor %d has seq %d, want %d", i, rec.Seq, want)
		}
	}
	perCPU := tr.Lost()
	if len(perCPU) != 1 || perCPU[0] != 6 {
		t.Fatalf("per-CPU lost %v", perCPU)
	}
}

func TestEmitBeyondConfiguredCPUsPanics(t *testing.T) {
	// Rings are sized once, from the machine topology, at New; an emit on a
	// CPU beyond that is a construction bug, not a growth event.
	tr := New(Config{CPUs: 1, Capacity: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("Emit beyond the configured CPU count must panic")
		}
	}()
	tr.Emit(at(1), 5, 1, KindReady, 0)
}

func TestTapSeesOverwrittenRecords(t *testing.T) {
	tr := New(Config{CPUs: 1, Capacity: 2})
	var seen []uint64
	tr.Tap(func(rec Record) { seen = append(seen, rec.Seq) })
	for i := 0; i < 5; i++ {
		tr.Emit(at(time.Duration(i)), 0, 1, KindReady, 0)
	}
	if len(seen) != 5 {
		t.Fatalf("tap saw %d records, want all 5", len(seen))
	}
	if len(tr.Records()) != 2 {
		t.Fatalf("ring retained %d, want 2", len(tr.Records()))
	}
}

func TestFileBackedSpillLosesNothing(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Config{CPUs: 2, Capacity: 4, Sink: &buf})
	const n = 23
	for i := 0; i < n; i++ {
		tr.Emit(at(time.Duration(i)), uint16(i%2), uint32(1+i%2), KindReady, uint64(i))
	}
	if lost := tr.TotalLost(); lost != 0 {
		t.Fatalf("file-backed tracer lost %d records", lost)
	}
	threads := []ThreadInfo{{TID: 1, CPU: 0, Priority: 50, Name: "a"}, {TID: 2, CPU: 1, Priority: 60, Name: "b"}}
	if err := tr.Close(threads); err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded.Records) != n {
		t.Fatalf("decoded %d records, want %d", len(decoded.Records), n)
	}
	for i, rec := range decoded.Records {
		if rec.Seq != uint64(i+1) || rec.Arg != uint64(i) {
			t.Fatalf("record %d: %+v", i, rec)
		}
	}
	if decoded.TotalLost() != 0 {
		t.Fatalf("decoded lost %d", decoded.TotalLost())
	}
	if len(decoded.Threads) != 2 || decoded.ThreadByTID(2).Name != "b" {
		t.Fatalf("threads %+v", decoded.Threads)
	}
}

func TestCloseWithoutSinkErrors(t *testing.T) {
	tr := New(Config{})
	if err := tr.Close(nil); err == nil {
		t.Fatal("Close on a flight recorder must error")
	}
}

// The emit hot path must not allocate: rings are pre-sized, the record is a
// value, and the observer call boxes nothing.
func TestEmitZeroAlloc(t *testing.T) {
	tr := New(Config{CPUs: 1, Capacity: 1024})
	var count int
	tr.Tap(func(rec Record) { count++ })
	tr.Emit(at(0), 0, 1, KindReady, 0) // warm: allocates the ring
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(at(time.Millisecond), 0, 1, KindDispatch, 7)
	})
	if allocs != 0 {
		t.Fatalf("Emit allocates %.1f per op, want 0", allocs)
	}
	if count == 0 {
		t.Fatal("tap not invoked")
	}
}

func BenchmarkTraceEmit(b *testing.B) {
	tr := New(Config{CPUs: 1, Capacity: 4096})
	tr.Emit(at(0), 0, 1, KindReady, 0) // warm the ring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(at(time.Duration(i)), 0, 1, KindDispatch, uint64(i))
	}
}
