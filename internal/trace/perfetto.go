package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// PerfettoEvent is one Chrome trace_event entry
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// "X" complete events carry the run segments, "i" instants the middleware
// part boundaries, "M" metadata the thread names. Timestamps and durations
// are microseconds; pid is the CPU so Perfetto groups tracks per processor.
type PerfettoEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Cat   string         `json:"cat,omitempty"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   uint32         `json:"pid"`
	TID   uint32         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// PerfettoFile is the JSON object format of a trace_event file.
type PerfettoFile struct {
	TraceEvents     []PerfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// usec converts nanoseconds of virtual time to trace_event microseconds.
func usec(ns int64) float64 { return float64(ns) / 1e3 }

// BuildPerfetto converts a decoded trace into trace_event form.
func BuildPerfetto(t *Trace) *PerfettoFile {
	f := &PerfettoFile{DisplayTimeUnit: "ns"}

	names := make(map[uint32]string)
	for _, th := range t.Threads {
		names[th.TID] = th.Name
		f.TraceEvents = append(f.TraceEvents, PerfettoEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   uint32(th.CPU),
			TID:   th.TID,
			Args:  map[string]any{"name": th.Name},
		})
	}
	name := func(tid uint32) string {
		if n, ok := names[tid]; ok {
			return n
		}
		return fmt.Sprintf("tid%d", tid)
	}

	type runStart struct {
		at  int64
		cpu uint16
	}
	running := make(map[uint32]runStart)
	for _, rec := range t.Records {
		switch rec.Kind {
		case KindDispatch:
			running[rec.TID] = runStart{at: int64(rec.At), cpu: rec.CPU}
		case KindPreempt, KindBlock, KindSleep, KindExit:
			start, ok := running[rec.TID]
			if !ok {
				continue
			}
			delete(running, rec.TID)
			if int64(rec.At) <= start.at {
				continue
			}
			f.TraceEvents = append(f.TraceEvents, PerfettoEvent{
				Name:  name(rec.TID),
				Phase: "X",
				Cat:   "run",
				TS:    usec(start.at),
				Dur:   usec(int64(rec.At) - start.at),
				PID:   uint32(start.cpu),
				TID:   rec.TID,
			})
		case KindJobRelease, KindMandStart, KindOptFork, KindOptStart,
			KindOptEnd, KindOptTerm, KindOptDiscard, KindWindupStart,
			KindJobEnd, KindDeadlineMet, KindDeadlineMiss, KindTimerArm,
			KindTimerFire:
			f.TraceEvents = append(f.TraceEvents, PerfettoEvent{
				Name:  rec.Kind.String(),
				Phase: "i",
				Cat:   "middleware",
				TS:    usec(int64(rec.At)),
				PID:   uint32(rec.CPU),
				TID:   rec.TID,
				Scope: "t",
				Args:  map[string]any{"arg": rec.Arg},
			})
		case KindReady:
			// Ready is implied by the start of the next dispatch slice; an
			// instant event per wakeup would only clutter the timeline.
			// Listed explicitly so a new Kind fails the exhaustive check
			// until this decoder decides how to render it.
		}
	}
	return f
}

// WritePerfetto writes the trace as Perfetto-loadable Chrome trace_event
// JSON.
func WritePerfetto(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	return enc.Encode(BuildPerfetto(t))
}
