package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rtseed/internal/engine"
)

// randomRecords drives the tracer with a reproducible random event sequence
// and returns what was emitted, in order.
func randomRecords(rng *rand.Rand, tr *Tracer, n int) []Record {
	var out []Record
	tr.Tap(func(rec Record) { out = append(out, rec) })
	now := time.Duration(0)
	for i := 0; i < n; i++ {
		now += time.Duration(rng.Intn(1_000_000))
		kind := Kind(1 + rng.Intn(int(kindMax)-1))
		cpu := uint16(rng.Intn(4))
		tid := uint32(1 + rng.Intn(8))
		arg := rng.Uint64()
		tr.Emit(engine.At(now), cpu, tid, kind, arg)
	}
	return out
}

// Round-trip property: for random event sequences, WriteTo → Decode returns
// exactly the retained records, threads, and lost counters.
func TestRoundTripProperty(t *testing.T) {
	threads := []ThreadInfo{
		{TID: 1, CPU: 0, Priority: 90, Name: "a.mand"},
		{TID: 2, CPU: 1, Priority: 80, Name: "a.opt0"},
		{TID: 3, CPU: 2, Priority: 70, Name: "solo"},
	}
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		capacity := 8 << rng.Intn(6) // 8..256
		n := rng.Intn(600)
		tr := New(Config{CPUs: 4, Capacity: capacity})
		emitted := randomRecords(rng, tr, n)

		var buf bytes.Buffer
		if err := tr.WriteTo(&buf, threads); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		decoded, err := Decode(buf.Bytes())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := tr.Records()
		if len(decoded.Records) != len(want) {
			t.Fatalf("seed %d: decoded %d records, want %d", seed, len(decoded.Records), len(want))
		}
		for i := range want {
			if decoded.Records[i] != want[i] {
				t.Fatalf("seed %d: record %d = %+v, want %+v", seed, i, decoded.Records[i], want[i])
			}
		}
		if int(tr.Emitted()) != len(emitted) {
			t.Fatalf("seed %d: emitted %d, tap saw %d", seed, tr.Emitted(), len(emitted))
		}
		wantLost := tr.Lost()
		if len(decoded.Lost) != len(wantLost) {
			t.Fatalf("seed %d: lost table %v, want %v", seed, decoded.Lost, wantLost)
		}
		for i := range wantLost {
			if decoded.Lost[i] != wantLost[i] {
				t.Fatalf("seed %d: lost %v, want %v", seed, decoded.Lost, wantLost)
			}
		}
		// Retention invariant: retained + lost = emitted.
		if uint64(len(want))+decoded.TotalLost() != tr.Emitted() {
			t.Fatalf("seed %d: %d retained + %d lost != %d emitted",
				seed, len(want), decoded.TotalLost(), tr.Emitted())
		}
		if len(decoded.Threads) != len(threads) {
			t.Fatalf("seed %d: threads %+v", seed, decoded.Threads)
		}
		for i := range threads {
			if decoded.Threads[i] != threads[i] {
				t.Fatalf("seed %d: thread %d = %+v, want %+v", seed, i, decoded.Threads[i], threads[i])
			}
		}
	}
}

// File-backed round trip: spills produce multiple record sections that the
// reader merges back into one ordered stream.
func TestRoundTripFileBackedSpills(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var buf bytes.Buffer
	tr := New(Config{CPUs: 4, Capacity: 8, Sink: &buf})
	emitted := randomRecords(rng, tr, 500)
	if err := tr.Close(nil); err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded.Records) != len(emitted) {
		t.Fatalf("decoded %d, want %d (no record may be lost with a sink)", len(decoded.Records), len(emitted))
	}
	for i := range emitted {
		if decoded.Records[i] != emitted[i] {
			t.Fatalf("record %d = %+v, want %+v", i, decoded.Records[i], emitted[i])
		}
	}
	if decoded.TotalLost() != 0 {
		t.Fatalf("lost %d", decoded.TotalLost())
	}
}

func TestReadFile(t *testing.T) {
	tr := New(Config{CPUs: 1, Capacity: 8})
	tr.Emit(engine.At(time.Millisecond), 0, 1, KindReady, 0)
	var buf bytes.Buffer
	if err := tr.WriteTo(&buf, nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.rtt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded.Records) != 1 {
		t.Fatalf("records %v", decoded.Records)
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.rtt")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestDecodeRejectsMalformedInput(t *testing.T) {
	valid := validFileBytes(t)
	mutate := func(fn func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return fn(b)
	}
	cases := map[string][]byte{
		"empty":           {},
		"short header":    valid[:8],
		"bad magic":       mutate(func(b []byte) []byte { b[0] = 'X'; return b }),
		"bad version":     mutate(func(b []byte) []byte { b[8] = 99; return b }),
		"truncated body":  valid[:len(valid)-3],
		"unknown tag":     mutate(func(b []byte) []byte { b[12] = 'Z'; return b }),
		"overrun length":  mutate(func(b []byte) []byte { binary.LittleEndian.PutUint64(b[13:], 1<<40); return b }),
		"bad kind":        mutate(func(b []byte) []byte { b[12+9+30] = 255; return b }),
		"nonzero reserve": mutate(func(b []byte) []byte { b[12+9+31] = 1; return b }),
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		} else if !errors.Is(err, ErrBadFormat) && name != "empty" {
			t.Errorf("%s: error %v does not wrap ErrBadFormat", name, err)
		}
	}
	if _, err := Decode(valid); err != nil {
		t.Fatalf("valid bytes rejected: %v", err)
	}
}

func TestDecodeRejectsDuplicateSections(t *testing.T) {
	tr := New(Config{CPUs: 1, Capacity: 8})
	tr.Emit(engine.At(1), 0, 1, KindReady, 0)
	var buf bytes.Buffer
	if err := tr.WriteTo(&buf, nil); err != nil {
		t.Fatal(err)
	}
	// Append a second lost section; the reader must refuse it.
	var dup bytes.Buffer
	if err := writeLost(&dup, []uint64{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(buf.Bytes(), dup.Bytes()...)); err == nil {
		t.Fatal("duplicate lost section accepted")
	}
}

// validFileBytes builds a minimal one-record file: header, then one 'R'
// section at offset 12 whose first record starts at offset 21.
func validFileBytes(t *testing.T) []byte {
	t.Helper()
	tr := New(Config{CPUs: 1, Capacity: 8})
	tr.Emit(engine.At(time.Millisecond), 0, 1, KindDispatch, 42)
	var buf bytes.Buffer
	if err := tr.WriteTo(&buf, []ThreadInfo{{TID: 1, Name: "t"}}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
