package trace

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"time"

	"rtseed/internal/engine"
)

// Histogram is a power-of-two-bucketed latency histogram: bucket i (i ≥ 1)
// counts durations in [2^(i-1), 2^i) ns, bucket 0 counts non-positive ones.
type Histogram struct {
	Buckets [65]uint64
	N       uint64
	Sum     time.Duration
	Min     time.Duration
	Max     time.Duration
}

// Add records one duration.
func (h *Histogram) Add(d time.Duration) {
	h.Buckets[bucketIndex(d)]++
	if h.N == 0 || d < h.Min {
		h.Min = d
	}
	if h.N == 0 || d > h.Max {
		h.Max = d
	}
	h.N++
	h.Sum += d
}

func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d))
}

// BucketBounds returns the [lo, hi) range of bucket i.
func BucketBounds(i int) (lo, hi time.Duration) {
	if i == 0 {
		return 0, 0
	}
	return 1 << (i - 1), 1 << i
}

// Mean returns the average recorded duration.
func (h *Histogram) Mean() time.Duration {
	if h.N == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.N)
}

// Format writes the non-empty buckets, one per line with the given indent.
func (h *Histogram) Format(b *strings.Builder, indent string) {
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		fmt.Fprintf(b, "%s[%11v, %11v) %6d %s\n", indent, lo, hi, n, strings.Repeat("#", barLen(n, h.N)))
	}
}

func barLen(n, total uint64) int {
	if total == 0 {
		return 0
	}
	return int(n * 40 / total)
}

// TaskStat aggregates one task's records: job and part counts that mirror
// task.Stats, plus response-time (finish − release) and release-latency
// (mandatory start − release, the paper's Δm) histograms.
type TaskStat struct {
	Name       string
	Jobs       int
	Completed  int
	Terminated int
	Discarded  int
	Misses     int
	Response   Histogram
	ReleaseLat Histogram
}

// Miss attributes one deadline miss: which optional parts overran (were
// terminated at OD), how often the task's threads were preempted inside the
// job window, and which thread took the CPU at the last such preemption.
type Miss struct {
	Task     string
	Job      int
	At       engine.Time
	Lateness time.Duration
	// OverranParts lists the parallel optional parts terminated at the
	// optional deadline in this job — the parts that ate the slack.
	OverranParts []int
	// Preemptions counts preemptions of the task's threads in the job
	// window [release, finish].
	Preemptions int
	// Preemptor names the thread that took the CPU at the last preemption
	// in the window, or "" if the task was never preempted.
	Preemptor string
}

// Interval is a half-open busy interval [From, To).
type Interval struct {
	From, To engine.Time
}

// CPUTimeline is one CPU's busy intervals in time order.
type CPUTimeline struct {
	CPU  uint16
	Busy []Interval
}

// Utilization buckets the timeline's busy time into n equal slices of
// [0, span), returning the busy fraction of each slice.
func (c *CPUTimeline) Utilization(n int, span engine.Time) []float64 {
	out := make([]float64, n)
	if n == 0 || span <= 0 {
		return out
	}
	width := span.Duration() / time.Duration(n)
	if width <= 0 {
		return out
	}
	for _, iv := range c.Busy {
		for b := 0; b < n; b++ {
			lo := engine.At(time.Duration(b) * width)
			hi := lo.Add(width)
			from, to := iv.From, iv.To
			if from < lo {
				from = lo
			}
			if to > hi {
				to = hi
			}
			if to > from {
				out[b] += float64(to.Sub(from)) / float64(width)
			}
		}
	}
	return out
}

// Analysis is the post-hoc view of one trace: per-task statistics, deadline
// misses with attribution, and per-CPU busy timelines.
type Analysis struct {
	// Tasks is sorted by task name. A task is the common prefix of its
	// threads' names ("a.mand", "a.opt0" → task "a"); threads without the
	// middleware suffix form single-thread tasks under their own name.
	Tasks []TaskStat
	// Misses lists every KindDeadlineMiss in trace order.
	Misses []Miss
	// CPUs is sorted by CPU id; busy time is dispatch → preempt/block/
	// sleep/exit per thread, attributed to the record's CPU.
	CPUs []CPUTimeline
	// Span is the largest record timestamp: the traced horizon.
	Span engine.Time
	// Lost is the trace's total overwritten-record count; a nonzero value
	// means every count below is a lower bound.
	Lost uint64
}

// TaskByName returns the statistics of the named task, or nil.
func (a *Analysis) TaskByName(name string) *TaskStat {
	for i := range a.Tasks {
		if a.Tasks[i].Name == name {
			return &a.Tasks[i]
		}
	}
	return nil
}

// NonEmpty reports whether the analysis saw at least one job with a
// response-time sample — the trace-smoke gate.
func (a *Analysis) NonEmpty() bool {
	for i := range a.Tasks {
		if a.Tasks[i].Response.N > 0 {
			return true
		}
	}
	return false
}

// MergedSummary is the cross-file aggregate of several analyses. The cluster
// layer records one trace file per simulated machine; merging their analyses
// gives one deterministic fleet-wide summary (sums and maxima are insensitive
// to the order the per-machine files are visited in).
type MergedSummary struct {
	// Files is how many analyses were merged.
	Files int
	// Tasks, Jobs and Misses are summed over every file's task statistics.
	Tasks  int
	Jobs   int
	Misses int
	// Span is the largest traced horizon of any file.
	Span engine.Time
	// Lost is the total overwritten-record count across files.
	Lost uint64
}

// Merge aggregates per-machine analyses into one fleet summary.
func Merge(as ...*Analysis) MergedSummary {
	var m MergedSummary
	for _, a := range as {
		if a == nil {
			continue
		}
		m.Files++
		m.Tasks += len(a.Tasks)
		for i := range a.Tasks {
			m.Jobs += a.Tasks[i].Jobs
			m.Misses += a.Tasks[i].Misses
		}
		if a.Span > m.Span {
			m.Span = a.Span
		}
		m.Lost += a.Lost
	}
	return m
}

// taskName maps a thread name to its task: the middleware names threads
// "<task>.mand" and "<task>.opt<k>", anything else is its own task.
func taskName(thread string) string {
	i := strings.LastIndexByte(thread, '.')
	if i < 0 {
		return thread
	}
	suffix := thread[i+1:]
	if suffix == "mand" || isOptSuffix(suffix) {
		return thread[:i]
	}
	return thread
}

func isOptSuffix(s string) bool {
	if !strings.HasPrefix(s, "opt") || len(s) == 3 {
		return false
	}
	for _, r := range s[3:] {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// Analyze computes the full analysis of a decoded trace.
func Analyze(t *Trace) *Analysis {
	a := &Analysis{Lost: t.TotalLost()}

	tidThread := make(map[uint32]string) // TID → thread name
	tidTask := make(map[uint32]string)   // TID → task name
	for _, th := range t.Threads {
		tidThread[th.TID] = th.Name
		tidTask[th.TID] = taskName(th.Name)
	}
	task := func(tid uint32) string {
		if name, ok := tidTask[tid]; ok {
			return name
		}
		return fmt.Sprintf("tid%d", tid)
	}

	stats := make(map[string]*TaskStat)
	stat := func(name string) *TaskStat {
		s, ok := stats[name]
		if !ok {
			s = &TaskStat{Name: name}
			stats[name] = s
		}
		return s
	}

	type jobKey struct {
		task string
		job  int
	}
	releases := make(map[jobKey]engine.Time)
	overran := make(map[jobKey][]int)
	running := make(map[uint32]engine.Time) // TID → dispatch time
	runCPU := make(map[uint32]uint16)       // TID → dispatch CPU
	cpuBusy := make(map[uint16][]Interval)
	var missAt []int // record indexes of KindDeadlineMiss

	for i, rec := range t.Records {
		if rec.At > a.Span {
			a.Span = rec.At
		}
		switch rec.Kind {
		case KindDispatch:
			running[rec.TID] = rec.At
			runCPU[rec.TID] = rec.CPU
		case KindPreempt, KindBlock, KindSleep, KindExit:
			if from, ok := running[rec.TID]; ok {
				delete(running, rec.TID)
				cpu := runCPU[rec.TID]
				if rec.At > from {
					cpuBusy[cpu] = append(cpuBusy[cpu], Interval{From: from, To: rec.At})
				}
			}
		case KindJobRelease:
			releases[jobKey{task(rec.TID), int(rec.Arg)}] = rec.At
		case KindMandStart:
			s := stat(task(rec.TID))
			if rel, ok := releases[jobKey{s.Name, int(rec.Arg)}]; ok {
				s.ReleaseLat.Add(rec.At.Sub(rel))
			}
		case KindJobEnd:
			s := stat(task(rec.TID))
			s.Jobs++
			if rel, ok := releases[jobKey{s.Name, int(rec.Arg)}]; ok {
				s.Response.Add(rec.At.Sub(rel))
			}
		case KindOptEnd:
			stat(task(rec.TID)).Completed++
		case KindOptTerm:
			s := stat(task(rec.TID))
			s.Terminated++
			job, part := UnpackJobPart(rec.Arg)
			key := jobKey{s.Name, job}
			overran[key] = append(overran[key], part)
		case KindOptDiscard:
			stat(task(rec.TID)).Discarded++
		case KindDeadlineMiss:
			stat(task(rec.TID)).Misses++
			missAt = append(missAt, i)
		case KindReady, KindOptFork, KindOptStart, KindWindupStart,
			KindTimerArm, KindTimerFire, KindDeadlineMet:
			// No aggregate statistic depends on these kinds; listed
			// explicitly so a new Kind fails the exhaustive check and gets a
			// deliberate decision here instead of a silent drop.
		}
	}

	for _, i := range missAt {
		rec := t.Records[i]
		name := task(rec.TID)
		job, lateness := UnpackMiss(rec.Arg)
		m := Miss{Task: name, Job: job, At: rec.At, Lateness: lateness}
		if parts := overran[jobKey{name, job}]; parts != nil {
			m.OverranParts = append([]int(nil), parts...)
			sort.Ints(m.OverranParts)
		}
		release, haveRelease := releases[jobKey{name, job}]
		// Attribution pass over the job window: count preemptions of the
		// task's threads and name the thread dispatched in place of the
		// last one.
		for j := 0; j <= i; j++ {
			r := t.Records[j]
			if r.Kind != KindPreempt || task(r.TID) != name {
				continue
			}
			if haveRelease && r.At < release {
				continue
			}
			m.Preemptions++
			for n := j + 1; n <= i; n++ {
				next := t.Records[n]
				if next.Kind == KindDispatch && next.CPU == r.CPU && next.TID != r.TID {
					if thName, ok := tidThread[next.TID]; ok {
						m.Preemptor = thName
					} else {
						m.Preemptor = fmt.Sprintf("tid%d", next.TID)
					}
					break
				}
			}
		}
		a.Misses = append(a.Misses, m)
	}

	for name := range stats {
		a.Tasks = append(a.Tasks, *stats[name])
	}
	sort.Slice(a.Tasks, func(i, j int) bool { return a.Tasks[i].Name < a.Tasks[j].Name })
	for cpu := range cpuBusy {
		a.CPUs = append(a.CPUs, CPUTimeline{CPU: cpu, Busy: cpuBusy[cpu]})
	}
	sort.Slice(a.CPUs, func(i, j int) bool { return a.CPUs[i].CPU < a.CPUs[j].CPU })
	return a
}
