// Binary trace file format, version 1 (".rtt").
//
// Layout (all integers little-endian):
//
//	header   magic "RTSEEDTR" (8 bytes) | version u16 | reserved u16
//	section* tag u8 | length u64 | payload[length]
//
// Sections:
//
//	'R' records: length/32 packed 32-byte records, one flushed ring chunk
//	             per section; chunks from different CPUs are merged by
//	             sorting on the records' sequence numbers at read time.
//	'T' threads: u32 count, then per thread
//	             u32 tid | u16 cpu | u16 priority | u16 namelen | name
//	'L' lost:    u16 cpus, then cpus × u64 overwritten-record counts
//	             (the overflow markers of flight-recorder rings).
//
// A record is
//
//	u64 seq | i64 at | u64 arg | u32 tid | u16 cpu | u8 kind | u8 reserved
//
// The reader rejects unknown magic, versions, tags and kinds, nonzero
// reserved bytes, section lengths that overrun the file, and duplicate
// sequence numbers; it never panics on hostile input (FuzzTraceCodec).

package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"rtseed/internal/engine"
)

const (
	// recordSize is the packed size of one Record.
	recordSize = 32
	// Version is the current trace file format version.
	Version = 1
)

// magic identifies a trace file.
var magic = [8]byte{'R', 'T', 'S', 'E', 'E', 'D', 'T', 'R'}

const (
	secRecords = 'R'
	secThreads = 'T'
	secLost    = 'L'
)

// ErrBadFormat is wrapped by every decode error.
var ErrBadFormat = errors.New("trace: bad file format")

func formatErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadFormat, fmt.Sprintf(format, args...))
}

// putRecord packs rec into buf[:recordSize].
func putRecord(buf []byte, rec Record) {
	binary.LittleEndian.PutUint64(buf[0:], rec.Seq)
	binary.LittleEndian.PutUint64(buf[8:], uint64(rec.At))
	binary.LittleEndian.PutUint64(buf[16:], rec.Arg)
	binary.LittleEndian.PutUint32(buf[24:], rec.TID)
	binary.LittleEndian.PutUint16(buf[28:], rec.CPU)
	buf[30] = byte(rec.Kind)
	buf[31] = 0
}

// getRecord unpacks buf[:recordSize], validating the kind and the reserved
// byte.
func getRecord(buf []byte) (Record, error) {
	rec := Record{
		Seq:  binary.LittleEndian.Uint64(buf[0:]),
		At:   engine.Time(binary.LittleEndian.Uint64(buf[8:])),
		Arg:  binary.LittleEndian.Uint64(buf[16:]),
		TID:  binary.LittleEndian.Uint32(buf[24:]),
		CPU:  binary.LittleEndian.Uint16(buf[28:]),
		Kind: Kind(buf[30]),
	}
	if !rec.Kind.Valid() {
		return Record{}, formatErr("record seq %d has unknown kind %d", rec.Seq, buf[30])
	}
	if buf[31] != 0 {
		return Record{}, formatErr("record seq %d has nonzero reserved byte", rec.Seq)
	}
	return rec, nil
}

// writeHeader writes the file header to the tracer's sink (once).
func (tr *Tracer) writeHeader() {
	if tr.headerDone || tr.err != nil {
		return
	}
	tr.headerDone = true
	var hdr [12]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint16(hdr[8:], Version)
	_, err := tr.sink.Write(hdr[:])
	tr.err = err
}

// flushRing spills every record of the full ring r to the sink as one 'R'
// section and resets the ring. Cold path: runs once per Capacity records
// per CPU; the encode buffer is pre-allocated at New.
//
//rtseed:noalloc
func (tr *Tracer) flushRing(r *cpuRing) {
	tr.writeHeader()
	n := r.w
	r.w = 0
	r.spilled += uint64(n)
	if tr.err != nil || n == 0 {
		return
	}
	var sec [9]byte
	sec[0] = secRecords
	binary.LittleEndian.PutUint64(sec[1:], uint64(n*recordSize))
	if _, err := tr.sink.Write(sec[:]); err != nil {
		tr.err = err
		return
	}
	for i := 0; i < n; i++ {
		putRecord(tr.encBuf[i*recordSize:], r.buf[i])
	}
	tr.flushed += uint64(n)
	if _, err := tr.sink.Write(tr.encBuf[:n*recordSize]); err != nil {
		tr.err = err
	}
}

// Close finishes a file-backed tracer: remaining ring contents are spilled,
// followed by the thread and lost sections. It reports the first sink error
// encountered anywhere on the write path. Close is not needed in
// flight-recorder mode (use WriteTo instead).
func (tr *Tracer) Close(threads []ThreadInfo) error {
	if tr.sink == nil {
		return errors.New("trace: Close on a tracer without a sink")
	}
	tr.writeHeader()
	for i := range tr.rings {
		tr.flushRing(&tr.rings[i])
	}
	if tr.err != nil {
		return tr.err
	}
	if err := writeThreads(tr.sink, threads); err != nil {
		return err
	}
	return writeLost(tr.sink, tr.Lost())
}

// WriteTo serializes a flight-recorder tracer's retained records, thread
// table, and lost counters as one complete trace file.
func (tr *Tracer) WriteTo(w io.Writer, threads []ThreadInfo) error {
	var hdr [12]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint16(hdr[8:], Version)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	recs := tr.Records()
	if len(recs) > 0 {
		var sec [9]byte
		sec[0] = secRecords
		binary.LittleEndian.PutUint64(sec[1:], uint64(len(recs)*recordSize))
		if _, err := w.Write(sec[:]); err != nil {
			return err
		}
		buf := make([]byte, len(recs)*recordSize)
		for i, rec := range recs {
			putRecord(buf[i*recordSize:], rec)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	if err := writeThreads(w, threads); err != nil {
		return err
	}
	return writeLost(w, tr.Lost())
}

// writeThreads writes the 'T' section.
func writeThreads(w io.Writer, threads []ThreadInfo) error {
	size := 4
	for _, t := range threads {
		size += 10 + len(t.Name)
	}
	buf := make([]byte, 9+size)
	buf[0] = secThreads
	binary.LittleEndian.PutUint64(buf[1:], uint64(size))
	binary.LittleEndian.PutUint32(buf[9:], uint32(len(threads)))
	off := 13
	for _, t := range threads {
		if len(t.Name) > 0xffff {
			return fmt.Errorf("trace: thread name %.16q... exceeds 64 KiB", t.Name)
		}
		binary.LittleEndian.PutUint32(buf[off:], t.TID)
		binary.LittleEndian.PutUint16(buf[off+4:], t.CPU)
		binary.LittleEndian.PutUint16(buf[off+6:], t.Priority)
		binary.LittleEndian.PutUint16(buf[off+8:], uint16(len(t.Name)))
		off += 10
		off += copy(buf[off:], t.Name)
	}
	_, err := w.Write(buf)
	return err
}

// writeLost writes the 'L' section.
func writeLost(w io.Writer, lost []uint64) error {
	size := 2 + 8*len(lost)
	buf := make([]byte, 9+size)
	buf[0] = secLost
	binary.LittleEndian.PutUint64(buf[1:], uint64(size))
	binary.LittleEndian.PutUint16(buf[9:], uint16(len(lost)))
	for i, n := range lost {
		binary.LittleEndian.PutUint64(buf[11+8*i:], n)
	}
	_, err := w.Write(buf)
	return err
}

// Trace is a decoded trace file.
type Trace struct {
	// Records is the merged record stream in global emission order.
	Records []Record
	// Threads is the thread metadata table.
	Threads []ThreadInfo
	// Lost holds the per-CPU overwritten-record counts.
	Lost []uint64
}

// TotalLost sums Lost over all CPUs.
func (t *Trace) TotalLost() uint64 {
	var sum uint64
	for _, n := range t.Lost {
		sum += n
	}
	return sum
}

// ThreadByTID returns the metadata for tid, or nil.
func (t *Trace) ThreadByTID(tid uint32) *ThreadInfo {
	for i := range t.Threads {
		if t.Threads[i].TID == tid {
			return &t.Threads[i]
		}
	}
	return nil
}

// Decode parses a complete trace file image. It validates the header, every
// section frame, and every record, and returns a descriptive error — never
// a panic — on malformed input.
func Decode(data []byte) (*Trace, error) {
	if len(data) < 12 {
		return nil, formatErr("file too short for header (%d bytes)", len(data))
	}
	if string(data[:8]) != string(magic[:]) {
		return nil, formatErr("bad magic %q", data[:8])
	}
	if v := binary.LittleEndian.Uint16(data[8:]); v != Version {
		return nil, formatErr("unsupported version %d (have %d)", v, Version)
	}
	tr := &Trace{}
	sawThreads, sawLost := false, false
	rest := data[12:]
	for len(rest) > 0 {
		if len(rest) < 9 {
			return nil, formatErr("truncated section header (%d trailing bytes)", len(rest))
		}
		tag := rest[0]
		length := binary.LittleEndian.Uint64(rest[1:])
		rest = rest[9:]
		if length > uint64(len(rest)) {
			return nil, formatErr("section %q length %d overruns file (%d bytes left)", tag, length, len(rest))
		}
		payload := rest[:length]
		rest = rest[length:]
		var err error
		switch tag {
		case secRecords:
			err = tr.decodeRecords(payload)
		case secThreads:
			if sawThreads {
				return nil, formatErr("duplicate thread section")
			}
			sawThreads = true
			err = tr.decodeThreads(payload)
		case secLost:
			if sawLost {
				return nil, formatErr("duplicate lost section")
			}
			sawLost = true
			err = tr.decodeLost(payload)
		default:
			err = formatErr("unknown section tag %q", tag)
		}
		if err != nil {
			return nil, err
		}
	}
	sortRecords(tr.Records)
	for i := 1; i < len(tr.Records); i++ {
		if tr.Records[i].Seq == tr.Records[i-1].Seq {
			return nil, formatErr("duplicate record sequence number %d", tr.Records[i].Seq)
		}
	}
	return tr, nil
}

func (t *Trace) decodeRecords(payload []byte) error {
	if len(payload)%recordSize != 0 {
		return formatErr("record section length %d is not a multiple of %d", len(payload), recordSize)
	}
	for off := 0; off < len(payload); off += recordSize {
		rec, err := getRecord(payload[off:])
		if err != nil {
			return err
		}
		t.Records = append(t.Records, rec)
	}
	return nil
}

func (t *Trace) decodeThreads(payload []byte) error {
	if len(payload) < 4 {
		return formatErr("thread section too short (%d bytes)", len(payload))
	}
	count := binary.LittleEndian.Uint32(payload)
	payload = payload[4:]
	for i := uint32(0); i < count; i++ {
		if len(payload) < 10 {
			return formatErr("truncated thread entry %d", i)
		}
		info := ThreadInfo{
			TID:      binary.LittleEndian.Uint32(payload),
			CPU:      binary.LittleEndian.Uint16(payload[4:]),
			Priority: binary.LittleEndian.Uint16(payload[6:]),
		}
		nameLen := int(binary.LittleEndian.Uint16(payload[8:]))
		payload = payload[10:]
		if len(payload) < nameLen {
			return formatErr("truncated thread name in entry %d", i)
		}
		info.Name = string(payload[:nameLen])
		payload = payload[nameLen:]
		t.Threads = append(t.Threads, info)
	}
	if len(payload) != 0 {
		return formatErr("%d trailing bytes after thread table", len(payload))
	}
	return nil
}

func (t *Trace) decodeLost(payload []byte) error {
	if len(payload) < 2 {
		return formatErr("lost section too short (%d bytes)", len(payload))
	}
	cpus := int(binary.LittleEndian.Uint16(payload))
	payload = payload[2:]
	if len(payload) != 8*cpus {
		return formatErr("lost section has %d bytes for %d cpus", len(payload), cpus)
	}
	t.Lost = make([]uint64, cpus)
	for i := 0; i < cpus; i++ {
		t.Lost[i] = binary.LittleEndian.Uint64(payload[8*i:])
	}
	return nil
}

// ReadFile loads and decodes a trace file from disk.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
