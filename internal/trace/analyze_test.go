package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rtseed/internal/engine"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Add(0)
	h.Add(1)                // bucket 1: [1, 2)
	h.Add(3)                // bucket 2: [2, 4)
	h.Add(1024)             // bucket 11: [1024, 2048)
	h.Add(time.Millisecond) // 1e6 ns → bucket 20
	if h.N != 5 {
		t.Fatalf("N = %d", h.N)
	}
	for i, want := range map[int]uint64{0: 1, 1: 1, 2: 1, 11: 1, 20: 1} {
		if h.Buckets[i] != want {
			t.Fatalf("bucket %d = %d, want %d", i, h.Buckets[i], want)
		}
	}
	if h.Min != 0 || h.Max != time.Millisecond {
		t.Fatalf("min %v max %v", h.Min, h.Max)
	}
	if lo, hi := BucketBounds(11); lo != 1024 || hi != 2048 {
		t.Fatalf("bounds of bucket 11: [%v, %v)", lo, hi)
	}
	if want := (1 + 3 + 1024 + time.Millisecond) / 5; h.Mean() != want {
		t.Fatalf("mean %v, want %v", h.Mean(), want)
	}
	var b strings.Builder
	h.Format(&b, "  ")
	if strings.Count(b.String(), "\n") != 5 {
		t.Fatalf("format rendered:\n%s", b.String())
	}
}

func TestTaskNameStripping(t *testing.T) {
	cases := map[string]string{
		"a.mand":    "a",
		"a.opt0":    "a",
		"tau.opt12": "tau",
		"b.c.opt3":  "b.c",
		"solo":      "solo",
		"x.option":  "x.option", // not a part suffix
		"y.opt":     "y.opt",    // no index digits
		"z.mandy":   "z.mandy",
	}
	for in, want := range cases {
		if got := taskName(in); got != want {
			t.Fatalf("taskName(%q) = %q, want %q", in, got, want)
		}
	}
}

// synthTrace scripts one task "a" (threads a.mand tid 1 on cpu 0, a.opt0
// tid 2 on cpu 1) plus an interloper "hog" (tid 3): job 0 meets its
// deadline; job 1 is preempted by hog, its part is terminated at OD, and it
// misses by 2ms.
func synthTrace(t *testing.T) *Trace {
	t.Helper()
	tr := New(Config{CPUs: 2, Capacity: 256})
	ms := func(d int) engine.Time { return engine.At(time.Duration(d) * time.Millisecond) }

	// Job 0: release 0, mand 0→5, opt completes, windup 8→10, deadline 20.
	tr.Emit(ms(0), 0, 1, KindJobRelease, 0)
	tr.Emit(ms(1), 0, 1, KindMandStart, 0)
	tr.Emit(ms(1), 0, 1, KindDispatch, 0)
	tr.Emit(ms(5), 0, 1, KindOptFork, 0)
	tr.Emit(ms(5), 1, 2, KindOptStart, PackJobPart(0, 0))
	tr.Emit(ms(5), 1, 2, KindDispatch, 0)
	tr.Emit(ms(7), 1, 2, KindOptEnd, PackJobPart(0, 0))
	tr.Emit(ms(7), 1, 2, KindBlock, 0)
	tr.Emit(ms(8), 0, 1, KindWindupStart, 0)
	tr.Emit(ms(10), 0, 1, KindJobEnd, 0)
	tr.Emit(ms(10), 0, 1, KindDeadlineMet, 0)
	tr.Emit(ms(10), 0, 1, KindSleep, 0)

	// Job 1: release 20, hog preempts the mandatory thread, part terminated
	// at OD, finish 42 vs deadline 40 → miss by 2ms.
	tr.Emit(ms(20), 0, 1, KindJobRelease, 1)
	tr.Emit(ms(21), 0, 1, KindMandStart, 1)
	tr.Emit(ms(21), 0, 1, KindDispatch, 0)
	tr.Emit(ms(23), 0, 1, KindPreempt, 0)
	tr.Emit(ms(23), 0, 3, KindDispatch, 0)
	tr.Emit(ms(27), 0, 3, KindSleep, 0)
	tr.Emit(ms(27), 0, 1, KindDispatch, 0)
	tr.Emit(ms(30), 0, 1, KindOptFork, 1)
	tr.Emit(ms(30), 1, 2, KindOptStart, PackJobPart(1, 0))
	tr.Emit(ms(35), 1, 2, KindTimerFire, 0)
	tr.Emit(ms(35), 1, 2, KindOptTerm, PackJobPart(1, 0))
	tr.Emit(ms(40), 0, 1, KindWindupStart, 1)
	tr.Emit(ms(42), 0, 1, KindJobEnd, 1)
	tr.Emit(ms(42), 0, 1, KindDeadlineMiss, PackMiss(1, 2*time.Millisecond))
	tr.Emit(ms(42), 0, 1, KindExit, 0)

	var buf bytes.Buffer
	threads := []ThreadInfo{
		{TID: 1, CPU: 0, Priority: 90, Name: "a.mand"},
		{TID: 2, CPU: 1, Priority: 80, Name: "a.opt0"},
		{TID: 3, CPU: 0, Priority: 95, Name: "hog"},
	}
	if err := tr.WriteTo(&buf, threads); err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return decoded
}

func TestAnalyzeTaskStats(t *testing.T) {
	a := Analyze(synthTrace(t))
	s := a.TaskByName("a")
	if s == nil {
		t.Fatalf("task a missing: %+v", a.Tasks)
	}
	if s.Jobs != 2 || s.Completed != 1 || s.Terminated != 1 || s.Discarded != 0 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.Response.N != 2 {
		t.Fatalf("response samples %d", s.Response.N)
	}
	// Job 0 response 10ms, job 1 response 22ms.
	if s.Response.Min != 10*time.Millisecond || s.Response.Max != 22*time.Millisecond {
		t.Fatalf("response min %v max %v", s.Response.Min, s.Response.Max)
	}
	// Release latency is 1ms for both jobs.
	if s.ReleaseLat.N != 2 || s.ReleaseLat.Max != time.Millisecond {
		t.Fatalf("release latency %+v", s.ReleaseLat)
	}
	if !a.NonEmpty() {
		t.Fatal("analysis should be non-empty")
	}
}

func TestAnalyzeMissAttribution(t *testing.T) {
	a := Analyze(synthTrace(t))
	if len(a.Misses) != 1 {
		t.Fatalf("misses %+v", a.Misses)
	}
	m := a.Misses[0]
	if m.Task != "a" || m.Job != 1 || m.Lateness != 2*time.Millisecond {
		t.Fatalf("miss %+v", m)
	}
	if len(m.OverranParts) != 1 || m.OverranParts[0] != 0 {
		t.Fatalf("overran parts %v", m.OverranParts)
	}
	if m.Preemptions != 1 {
		t.Fatalf("preemptions %d, want 1", m.Preemptions)
	}
	if m.Preemptor != "hog" {
		t.Fatalf("preemptor %q, want hog", m.Preemptor)
	}
}

func TestAnalyzeUtilization(t *testing.T) {
	a := Analyze(synthTrace(t))
	if len(a.CPUs) != 2 {
		t.Fatalf("cpu timelines %+v", a.CPUs)
	}
	if a.Span != engine.At(42*time.Millisecond) {
		t.Fatalf("span %v", a.Span)
	}
	cpu0 := a.CPUs[0]
	if cpu0.CPU != 0 {
		t.Fatalf("first timeline is cpu %d", cpu0.CPU)
	}
	// CPU0 busy: [1,10) [21,23) [23,27) [27,42) = 30ms of 42ms.
	var busy time.Duration
	for _, iv := range cpu0.Busy {
		busy += iv.To.Sub(iv.From)
	}
	if busy != 30*time.Millisecond {
		t.Fatalf("cpu0 busy %v, want 30ms", busy)
	}
	util := cpu0.Utilization(1, a.Span)
	if len(util) != 1 || util[0] < 0.70 || util[0] > 0.73 {
		t.Fatalf("utilization %v, want ~30/42", util)
	}
	// Degenerate inputs return zeros, not panics.
	if got := cpu0.Utilization(0, a.Span); len(got) != 0 {
		t.Fatalf("zero buckets -> %v", got)
	}
	if got := cpu0.Utilization(3, 0); got[0] != 0 {
		t.Fatalf("zero span -> %v", got)
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	a := Analyze(&Trace{})
	if a.NonEmpty() {
		t.Fatal("empty trace reported non-empty")
	}
	if len(a.Tasks) != 0 || len(a.Misses) != 0 || len(a.CPUs) != 0 {
		t.Fatalf("analysis %+v", a)
	}
}
