package trace

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"rtseed/internal/engine"
)

// FuzzTraceCodec: Decode must never panic on arbitrary input — truncated
// files, bad versions, corrupted sections all error cleanly — and anything
// it does accept must re-encode and decode to the same trace.
func FuzzTraceCodec(f *testing.F) {
	// Seed corpus: a real file, its truncations, and targeted corruptions.
	tr := New(Config{CPUs: 2, Capacity: 8})
	for i := 0; i < 20; i++ {
		tr.Emit(engine.At(time.Duration(i)*time.Microsecond), uint16(i%2), uint32(1+i%3),
			Kind(1+i%int(kindMax-1)), uint64(i))
	}
	var buf bytes.Buffer
	if err := tr.WriteTo(&buf, []ThreadInfo{{TID: 1, CPU: 0, Priority: 50, Name: "a.mand"}}); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:12])
	f.Add([]byte{})
	f.Add([]byte("RTSEEDTR"))
	badVersion := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(badVersion[8:], 0xffff)
	f.Add(badVersion)
	badKind := append([]byte(nil), valid...)
	badKind[12+9+30] = 200
	f.Add(badKind)
	hugeLen := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(hugeLen[13:], 1<<62)
	f.Add(hugeLen)

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted input must survive a rewrite round trip.
		var out bytes.Buffer
		rt := New(Config{CPUs: len(decoded.Lost), Capacity: max(len(decoded.Records), 1)})
		for _, rec := range decoded.Records {
			rt.Emit(rec.At, rec.CPU, rec.TID, rec.Kind, rec.Arg)
		}
		if err := rt.WriteTo(&out, decoded.Threads); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := Decode(out.Bytes())
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(again.Records) != len(decoded.Records) {
			t.Fatalf("round trip changed record count %d -> %d", len(decoded.Records), len(again.Records))
		}
		// Analyze and the Perfetto exporter must also hold up on anything
		// the reader accepts.
		a := Analyze(decoded)
		_ = a.NonEmpty()
		if err := WritePerfetto(&bytes.Buffer{}, decoded); err != nil {
			t.Fatalf("perfetto: %v", err)
		}
	})
}
