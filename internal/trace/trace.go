// Package trace is the simulator's ftrace/LTTng-style tracing subsystem:
// per-CPU fixed-capacity ring buffers of packed 32-byte records emitted from
// the kernel's dispatch/release/timer/sleep/termination paths and from the
// middleware's P-RMWP part boundaries, plus a versioned binary file format
// (file.go), post-hoc analyses (analyze.go), and a Chrome trace_event
// exporter (perfetto.go).
//
// The emit path is allocation-free (//rtseed:noalloc, enforced by
// rtseed-vet): a record is a value write into a pre-sized per-CPU ring. A
// ring that fills up never blocks the simulation — in flight-recorder mode
// it overwrites its oldest records and counts them as lost; with a file sink
// attached it spills the full ring to the sink instead (the only write path
// that touches I/O, and only every Capacity events per CPU).
//
// Records are stamped with a tracer-global sequence number, so the merged
// stream of all CPUs has a total order that is a pure function of the
// simulation — byte-identical across runs and worker counts.
package trace

import (
	"fmt"
	"io"
	"sort"
	"time"

	"rtseed/internal/engine"
)

// Kind classifies one trace record. The zero Kind is invalid so a zeroed
// record is never mistaken for a real one.
type Kind uint8

// Record kinds. The first block mirrors the kernel's thread state
// transitions; the second block is the timer path; the third block is the
// middleware's P-RMWP part boundaries (Fig. 6/7 protocol points).
const (
	// KindReady: the thread entered a run queue (arg unused).
	KindReady Kind = iota + 1
	// KindDispatch: the thread was given its CPU after a context switch.
	KindDispatch
	// KindPreempt: a higher-priority thread took the CPU away.
	KindPreempt
	// KindBlock: the thread blocked on a condition variable or mutex.
	KindBlock
	// KindSleep: the thread entered clock_nanosleep.
	KindSleep
	// KindExit: the thread exited.
	KindExit
	// KindTimerArm: timer_settime armed the one-shot SIGALRM timer;
	// arg is the absolute expiry in ns of virtual time.
	KindTimerArm
	// KindTimerFire: the timer expired and SIGALRM was raised.
	KindTimerFire
	// KindJobRelease: a job was released; At is the nominal release
	// instant, arg the job index.
	KindJobRelease
	// KindMandStart: the mandatory part began (arg = job); the release
	// latency Δm is MandStart.At − JobRelease.At.
	KindMandStart
	// KindOptFork: the mandatory thread began waking the parallel optional
	// threads (arg = job) — the mandatory→optional fork.
	KindOptFork
	// KindOptStart: parallel optional part k began (arg = PackJobPart).
	KindOptStart
	// KindOptEnd: an optional part ran to completion (arg = PackJobPart).
	KindOptEnd
	// KindOptTerm: the optional-deadline timer terminated the part via
	// siglongjmp (arg = PackJobPart).
	KindOptTerm
	// KindOptDiscard: the part was discarded without running
	// (arg = PackJobPart).
	KindOptDiscard
	// KindWindupStart: the wind-up part began (arg = job).
	KindWindupStart
	// KindJobEnd: the job finished its wind-up part (arg = job).
	KindJobEnd
	// KindDeadlineMet: the job finished by its deadline (arg = job).
	KindDeadlineMet
	// KindDeadlineMiss: the job finished late; arg = PackMiss(job,
	// lateness).
	KindDeadlineMiss

	kindMax
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindReady:
		return "ready"
	case KindDispatch:
		return "dispatch"
	case KindPreempt:
		return "preempt"
	case KindBlock:
		return "block"
	case KindSleep:
		return "sleep"
	case KindExit:
		return "exit"
	case KindTimerArm:
		return "timer-arm"
	case KindTimerFire:
		return "timer-fire"
	case KindJobRelease:
		return "job-release"
	case KindMandStart:
		return "mand-start"
	case KindOptFork:
		return "opt-fork"
	case KindOptStart:
		return "opt-start"
	case KindOptEnd:
		return "opt-end"
	case KindOptTerm:
		return "opt-term"
	case KindOptDiscard:
		return "opt-discard"
	case KindWindupStart:
		return "windup-start"
	case KindJobEnd:
		return "job-end"
	case KindDeadlineMet:
		return "deadline-met"
	case KindDeadlineMiss:
		return "deadline-miss"
	default:
		return "unknown"
	}
}

// Valid reports whether k is a defined record kind.
func (k Kind) Valid() bool { return k >= KindReady && k < kindMax }

// Record is one packed trace record. Its binary form is exactly 32 bytes
// (recordSize in file.go); the struct mirrors that layout field for field.
type Record struct {
	// Seq is the tracer-global emission sequence number, starting at 1.
	// Sorting the merged per-CPU streams by Seq recovers the total order.
	Seq uint64
	// At is the virtual-time instant the record describes.
	At engine.Time
	// Arg is the kind-specific payload (job index, PackJobPart, expiry...).
	Arg uint64
	// TID is the emitting thread's kernel id.
	TID uint32
	// CPU is the hardware thread the record was emitted on.
	CPU uint16
	// Kind classifies the record.
	Kind Kind
}

// PackJobPart packs a job index and a parallel-optional-part index into a
// record argument: part in the low 16 bits, job above.
func PackJobPart(job, part int) uint64 {
	return uint64(job)<<16 | uint64(part)&0xffff
}

// UnpackJobPart is the inverse of PackJobPart.
func UnpackJobPart(arg uint64) (job, part int) {
	return int(arg >> 16), int(arg & 0xffff)
}

// PackMiss packs a job index and its deadline lateness into a
// KindDeadlineMiss argument: lateness (ns, saturating at ~4.29s) in the low
// 32 bits, job above.
func PackMiss(job int, lateness time.Duration) uint64 {
	ns := uint64(lateness)
	if lateness < 0 {
		ns = 0
	} else if ns > 0xffffffff {
		ns = 0xffffffff
	}
	return uint64(job)<<32 | ns
}

// UnpackMiss is the inverse of PackMiss.
func UnpackMiss(arg uint64) (job int, lateness time.Duration) {
	return int(arg >> 32), time.Duration(arg & 0xffffffff)
}

// MissedDeadline is the single definition of a deadline miss shared by the
// middleware (task.JobRecord.Met), the quantum-driven EDF and G-RMWP
// simulators, and the trace analyzer: a job that finishes at finish with
// absolute deadline deadline misses iff it finishes strictly after it. All
// policies attribute misses through this predicate so their counts are
// comparable.
func MissedDeadline(finish, deadline time.Duration) bool { return finish > deadline }

// ThreadInfo is the per-thread metadata written alongside the records so
// analyzers can resolve TIDs to names, priorities, and home CPUs.
type ThreadInfo struct {
	TID      uint32
	CPU      uint16
	Priority uint16
	Name     string
}

// DefaultCapacity is the per-CPU ring capacity (records) used when Config
// leaves it zero: 4096 records = 128 KiB per active CPU.
const DefaultCapacity = 4096

// Config configures a Tracer.
type Config struct {
	// CPUs pre-sizes the per-CPU ring table. Emitting on a CPU beyond it
	// grows the table; rings themselves are allocated on each CPU's first
	// record either way, so idle CPUs cost nothing.
	CPUs int
	// Capacity is the per-CPU ring capacity in records (DefaultCapacity
	// when zero).
	Capacity int
	// Sink, when non-nil, makes the tracer file-backed: a ring that fills
	// spills its records to the sink and keeps going, so no record is ever
	// lost. When nil the tracer is a flight recorder: a full ring
	// overwrites its oldest records and counts them in Lost.
	Sink io.Writer
}

// cpuRing is one CPU's ring buffer. count is the number of records ever
// stored and spilled the number handed to a file sink; the ring holds the
// most recent min(count-spilled, len(buf)) records ending at index w.
type cpuRing struct {
	buf     []Record
	w       int // next write index
	count   uint64
	spilled uint64
}

// Tracer collects trace records. All methods must be called from the
// simulation's single host-code thread (the kernel handshake already
// guarantees this); the tracer does no locking.
type Tracer struct {
	rings     []cpuRing
	capacity  int
	seq       uint64
	observers []func(Record)

	// File-backed state. headerDone latches after the header bytes are
	// written; err holds the first sink error and stops further writes.
	sink       io.Writer
	encBuf     []byte
	headerDone bool
	err        error
	flushed    uint64
}

// New builds a tracer.
func New(cfg Config) *Tracer {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	tr := &Tracer{
		rings:    make([]cpuRing, cfg.CPUs),
		capacity: capacity,
		sink:     cfg.Sink,
	}
	// Ring buffers are allocated eagerly so Emit is allocation-free from the
	// first record: every construction site sizes CPUs from the machine
	// topology, and a simulated CPU that never runs costs one idle ring.
	for i := range tr.rings {
		tr.rings[i].buf = make([]Record, capacity)
	}
	if cfg.Sink != nil {
		tr.encBuf = make([]byte, capacity*recordSize)
	}
	return tr
}

// Tap registers a live observer called with every emitted record, including
// records the rings later overwrite. The sched.Recorder uses this to build
// run segments without bounding history to the ring capacity.
func (tr *Tracer) Tap(fn func(Record)) { tr.observers = append(tr.observers, fn) }

// Emit appends one record to cpu's ring. This is the hot path: it never
// blocks and never allocates — rings are sized and allocated at New from
// the machine topology. Emitting on a CPU beyond the configured count is a
// construction bug, not a growth event, and panics.
//
//rtseed:noalloc
//rtseed:kernelctx
func (tr *Tracer) Emit(at engine.Time, cpu uint16, tid uint32, kind Kind, arg uint64) {
	if int(cpu) >= len(tr.rings) {
		panic(fmt.Sprintf("trace: Emit on CPU %d, but the tracer was built for %d CPUs", cpu, len(tr.rings)))
	}
	r := &tr.rings[cpu]
	tr.seq++
	rec := Record{Seq: tr.seq, At: at, Arg: arg, TID: tid, CPU: cpu, Kind: kind}
	for _, fn := range tr.observers {
		fn(rec)
	}
	if r.w == len(r.buf) {
		if tr.sink != nil {
			tr.flushRing(r) // spill the full ring; keeps every record
		} else {
			r.w = 0 // flight recorder: wrap, overwriting the oldest
		}
	}
	r.buf[r.w] = rec
	r.w++
	r.count++
}

// Lost returns the per-CPU counts of records overwritten by ring wraparound
// (flight-recorder mode; always zero per CPU when a sink is attached).
func (tr *Tracer) Lost() []uint64 {
	lost := make([]uint64, len(tr.rings))
	for i := range tr.rings {
		lost[i] = tr.rings[i].lost()
	}
	return lost
}

// TotalLost sums Lost over all CPUs.
func (tr *Tracer) TotalLost() uint64 {
	var sum uint64
	for i := range tr.rings {
		sum += tr.rings[i].lost()
	}
	return sum
}

// Emitted returns how many records have been emitted in total, including
// any the rings have overwritten.
func (tr *Tracer) Emitted() uint64 { return tr.seq }

// lost is how many of the ring's records have been overwritten. Records
// spilled to a sink are persisted, not lost, so a file-backed ring always
// reports zero.
func (r *cpuRing) lost() uint64 {
	live := r.count - r.spilled
	if n := uint64(len(r.buf)); live > n {
		return live - n
	}
	return 0
}

// retained returns the ring's surviving (unspilled) records in emission
// order.
func (r *cpuRing) retained() []Record {
	live := r.count - r.spilled
	if r.buf == nil || live == 0 {
		return nil
	}
	if live <= uint64(len(r.buf)) {
		return r.buf[:r.w]
	}
	// Wrapped: oldest surviving record is at w.
	out := make([]Record, 0, len(r.buf))
	out = append(out, r.buf[r.w:]...)
	out = append(out, r.buf[:r.w]...)
	return out
}

// Records returns the retained records of every CPU merged into emission
// (sequence) order. In flight-recorder mode this is the tracer's whole
// surviving history; with a sink attached it is only what has not yet been
// spilled — use the sink's file for the full stream.
func (tr *Tracer) Records() []Record {
	var out []Record
	for i := range tr.rings {
		out = append(out, tr.rings[i].retained()...)
	}
	sortRecords(out)
	return out
}

// sortRecords orders records by sequence number. Used by Records and the
// file reader to merge the per-CPU streams into the global emission order.
func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
}
