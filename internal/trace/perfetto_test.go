package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestPerfettoSchema validates the export against the Chrome trace_event
// schema: every event has a known phase, a non-empty name, non-negative
// microsecond timestamps, metadata events carry args.name, and complete
// events carry a positive duration.
func TestPerfettoSchema(t *testing.T) {
	tr := synthTrace(t)
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, tr); err != nil {
		t.Fatal(err)
	}

	// Decode through generic JSON, not our own structs, so the assertions
	// check the bytes on the wire rather than the Go types.
	var file struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("no events exported")
	}

	var meta, complete, instant int
	for i, ev := range file.TraceEvents {
		name, _ := ev["name"].(string)
		if name == "" {
			t.Fatalf("event %d has no name: %v", i, ev)
		}
		ts, ok := ev["ts"].(float64)
		if !ok || ts < 0 {
			t.Fatalf("event %d has bad ts: %v", i, ev)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event %d has no pid: %v", i, ev)
		}
		if _, ok := ev["tid"].(float64); !ok {
			t.Fatalf("event %d has no tid: %v", i, ev)
		}
		switch ph, _ := ev["ph"].(string); ph {
		case "M":
			meta++
			if name != "thread_name" {
				t.Fatalf("metadata event %d named %q", i, name)
			}
			args, _ := ev["args"].(map[string]any)
			if s, _ := args["name"].(string); s == "" {
				t.Fatalf("metadata event %d lacks args.name: %v", i, ev)
			}
		case "X":
			complete++
			if dur, ok := ev["dur"].(float64); !ok || dur <= 0 {
				t.Fatalf("complete event %d has bad dur: %v", i, ev)
			}
			if cat, _ := ev["cat"].(string); cat != "run" {
				t.Fatalf("complete event %d has cat %q", i, ev["cat"])
			}
		case "i":
			instant++
			if s, _ := ev["s"].(string); s != "t" {
				t.Fatalf("instant event %d has scope %q", i, ev["s"])
			}
			if cat, _ := ev["cat"].(string); cat != "middleware" {
				t.Fatalf("instant event %d has cat %q", i, ev["cat"])
			}
		default:
			t.Fatalf("event %d has unknown phase %q", i, ph)
		}
	}
	// synthTrace has 3 threads, 5 run segments, and 17 middleware/timer
	// instants.
	if meta != 3 || complete != 5 || instant != 17 {
		t.Fatalf("meta %d complete %d instant %d", meta, complete, instant)
	}
}

func TestPerfettoRunSegments(t *testing.T) {
	f := BuildPerfetto(synthTrace(t))
	// The hog's preempting run [23ms, 27ms) must appear on CPU 0.
	var found bool
	for _, ev := range f.TraceEvents {
		if ev.Phase == "X" && ev.Name == "hog" {
			found = true
			if ev.TS != 23000 || ev.Dur != 4000 || ev.PID != 0 {
				t.Fatalf("hog segment %+v", ev)
			}
		}
	}
	if !found {
		t.Fatal("hog run segment missing")
	}
}

func TestPerfettoEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, &Trace{}); err != nil {
		t.Fatal(err)
	}
	var file PerfettoFile
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	if len(file.TraceEvents) != 0 {
		t.Fatalf("events from empty trace: %+v", file.TraceEvents)
	}
}
