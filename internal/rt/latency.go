package rt

import (
	"context"
	"sort"
	"time"
)

// WakeLatency summarizes how late the Go runtime actually wakes a periodic
// task relative to its absolute release times — the wall-clock counterpart
// of the paper's Δm, and the empirical basis for this package's "soft
// deadlines only" caveat (Go's timer granularity, scheduler, and GC all
// contribute).
type WakeLatency struct {
	N    int
	Mean time.Duration
	P50  time.Duration
	P99  time.Duration
	Max  time.Duration
}

// MeasureWakeLatency runs n periodic wakes at the given period and measures
// each wake's lag behind its absolute release time. It honours ctx for
// cancellation; the returned summary covers the wakes that ran.
func MeasureWakeLatency(ctx context.Context, n int, period time.Duration) (WakeLatency, error) {
	if n <= 0 || period <= 0 {
		n = 0
	}
	start := time.Now()
	lags := make([]time.Duration, 0, n)
	for i := 1; i <= n; i++ {
		release := start.Add(time.Duration(i) * period)
		if err := sleepUntil(ctx, release); err != nil {
			return summarize(lags), err
		}
		lag := time.Since(release)
		if lag < 0 {
			lag = 0
		}
		lags = append(lags, lag)
	}
	return summarize(lags), nil
}

func summarize(lags []time.Duration) WakeLatency {
	out := WakeLatency{N: len(lags)}
	if len(lags) == 0 {
		return out
	}
	sorted := make([]time.Duration, len(lags))
	copy(sorted, lags)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, l := range sorted {
		sum += l
	}
	out.Mean = sum / time.Duration(len(sorted))
	out.P50 = sorted[len(sorted)/2]
	idx99 := len(sorted) * 99 / 100
	if idx99 >= len(sorted) {
		idx99 = len(sorted) - 1
	}
	out.P99 = sorted[idx99]
	out.Max = sorted[len(sorted)-1]
	return out
}
