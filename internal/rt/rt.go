// Package rt runs parallel-extended imprecise tasks in wall-clock time on
// the Go runtime. It mirrors the RT-Seed protocol — periodic release,
// mandatory part, parallel optional parts terminated at an optional
// deadline, wind-up part — with Go-native mechanisms: goroutines instead of
// SCHED_FIFO threads and context cancellation instead of
// sigsetjmp/siglongjmp.
//
// Fidelity caveats (the reason the paper's evaluation runs on the
// simulator, see DESIGN.md): the Go scheduler provides no fixed priorities,
// the garbage collector can preempt at unfortunate moments, and optional
// parts terminate cooperatively at their next context check rather than at
// any instruction. In the paper's taxonomy (Table I) this runtime is a
// "periodic check" terminator: it cannot cut a part at any time, but it
// needs no signal-mask handling. Treat its deadlines as soft.
package rt

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// OptionalFunc is one parallel optional part: an anytime computation that
// must observe ctx and return promptly after cancellation, reporting the
// progress it achieved in [0, 1].
type OptionalFunc func(ctx context.Context) float64

// Config configures a wall-clock parallel-extended imprecise task.
type Config struct {
	// Name identifies the task.
	Name string
	// Period is T (= D).
	Period time.Duration
	// OptionalDeadline is the relative OD; optional parts are cancelled
	// at release + OptionalDeadline.
	OptionalDeadline time.Duration
	// Jobs is how many jobs to run.
	Jobs int
	// Mandatory runs first in each job (e.g. ingest a tick).
	Mandatory func(job int)
	// Optional holds the parallel optional parts.
	Optional []OptionalFunc
	// Windup runs last, with the per-part progress (discarded parts
	// report 0).
	Windup func(job int, progress []float64)
}

func (c *Config) validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("rt: period must be positive, got %v", c.Period)
	}
	if c.OptionalDeadline <= 0 || c.OptionalDeadline > c.Period {
		return fmt.Errorf("rt: optional deadline %v outside (0, %v]", c.OptionalDeadline, c.Period)
	}
	if c.Jobs <= 0 {
		return fmt.Errorf("rt: jobs must be positive, got %d", c.Jobs)
	}
	return nil
}

// JobReport records one job's wall-clock execution.
type JobReport struct {
	Job int
	// Release, WindupStart and Finish are offsets from the runner start.
	Release     time.Duration
	WindupStart time.Duration
	Finish      time.Duration
	// Progress holds each optional part's achieved progress.
	Progress []float64
	// Met reports whether the job finished within its period.
	Met bool
}

// Runner executes a Config.
type Runner struct {
	cfg Config
}

// NewRunner validates the config and returns a runner.
func NewRunner(cfg Config) (*Runner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg}, nil
}

// Run executes the configured jobs, blocking until they finish or ctx is
// cancelled. It returns the reports of the completed jobs (all of them
// unless cancelled early).
func (r *Runner) Run(ctx context.Context) ([]JobReport, error) {
	start := time.Now()
	reports := make([]JobReport, 0, r.cfg.Jobs)
	np := len(r.cfg.Optional)
	for job := 0; job < r.cfg.Jobs; job++ {
		release := time.Duration(job) * r.cfg.Period
		if err := sleepUntil(ctx, start.Add(release)); err != nil {
			return reports, err
		}
		if r.cfg.Mandatory != nil {
			r.cfg.Mandatory(job)
		}
		progress := make([]float64, np)
		odAbs := start.Add(release + r.cfg.OptionalDeadline)
		if np > 0 && time.Now().Before(odAbs) {
			// Run the parallel optional parts, cancelled at the optional
			// deadline. Parts are terminated cooperatively: each must poll
			// its context.
			optCtx, cancel := context.WithDeadline(ctx, odAbs)
			var wg sync.WaitGroup
			for k := 0; k < np; k++ {
				k := k
				wg.Add(1)
				go func() {
					defer wg.Done()
					progress[k] = clamp01(r.cfg.Optional[k](optCtx))
				}()
			}
			wg.Wait()
			cancel()
		}
		// No time before the optional deadline: the parts are discarded
		// (progress stays 0), and the wind-up runs immediately.
		windupStart := time.Since(start)
		if r.cfg.Windup != nil {
			r.cfg.Windup(job, progress)
		}
		finish := time.Since(start)
		reports = append(reports, JobReport{
			Job:         job,
			Release:     release,
			WindupStart: windupStart,
			Finish:      finish,
			Progress:    progress,
			Met:         finish <= release+r.cfg.Period,
		})
	}
	return reports, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// sleepUntil sleeps until the absolute instant at, honouring cancellation.
func sleepUntil(ctx context.Context, at time.Time) error {
	d := time.Until(at)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SpinOptional builds an OptionalFunc that performs `steps` fixed-size
// chunks of CPU-bound work, checking for termination between chunks, and
// reports the fraction completed — a ready-made anytime optional part for
// examples and tests. The work function receives the chunk index.
func SpinOptional(steps int, chunk time.Duration, work func(step int)) OptionalFunc {
	return func(ctx context.Context) float64 {
		for i := 0; i < steps; i++ {
			select {
			case <-ctx.Done():
				return float64(i) / float64(steps)
			default:
			}
			spinFor(chunk)
			if work != nil {
				work(i)
			}
		}
		return 1
	}
}

// spinFor busy-loops for roughly d — optional parts in the paper's model
// are pure CPU-bound loops that reserve no resources (§IV-D). The clock
// values stay local, so no determinism waiver is needed: the detflow
// analyzer sees that nothing escapes.
func spinFor(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}
