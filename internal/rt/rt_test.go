package rt

import (
	"context"
	"testing"
	"time"
)

func TestValidation(t *testing.T) {
	bad := []Config{
		{Period: 0, OptionalDeadline: 1, Jobs: 1},
		{Period: 10, OptionalDeadline: 0, Jobs: 1},
		{Period: 10, OptionalDeadline: 20, Jobs: 1},
		{Period: 10, OptionalDeadline: 5, Jobs: 0},
	}
	for i, cfg := range bad {
		if _, err := NewRunner(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestPeriodicExecution(t *testing.T) {
	var mandatory, windup int
	r, err := NewRunner(Config{
		Name:             "t",
		Period:           40 * time.Millisecond,
		OptionalDeadline: 30 * time.Millisecond,
		Jobs:             3,
		Mandatory:        func(job int) { mandatory++ },
		Windup:           func(job int, progress []float64) { windup++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	reports, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if mandatory != 3 || windup != 3 || len(reports) != 3 {
		t.Fatalf("mandatory=%d windup=%d reports=%d", mandatory, windup, len(reports))
	}
	// Three 40ms periods: the run occupies [80ms, ~200ms] of wall clock.
	if elapsed < 80*time.Millisecond || elapsed > 500*time.Millisecond {
		t.Fatalf("elapsed %v implausible for 3 x 40ms jobs", elapsed)
	}
	for _, rep := range reports {
		if rep.Release != time.Duration(rep.Job)*40*time.Millisecond {
			t.Fatalf("job %d released at %v", rep.Job, rep.Release)
		}
	}
}

func TestOverrunningOptionalTerminated(t *testing.T) {
	// The optional part would run ~10x past the optional deadline; it must
	// be cut off with partial progress and the job must still meet its
	// (soft) deadline.
	opt := SpinOptional(100, 2*time.Millisecond, nil)
	r, err := NewRunner(Config{
		Period:           60 * time.Millisecond,
		OptionalDeadline: 30 * time.Millisecond,
		Jobs:             2,
		Optional:         []OptionalFunc{opt},
	})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if rep.Progress[0] <= 0 || rep.Progress[0] >= 1 {
			t.Fatalf("job %d: progress %v, want partial", rep.Job, rep.Progress[0])
		}
		// Cooperative termination overshoots by ~one chunk plus scheduler
		// noise. Under a fully loaded test machine the goroutine can be
		// descheduled for tens of milliseconds, so the bound only asserts
		// the part was cut far short of the ~200ms it wanted.
		if rep.WindupStart > rep.Release+100*time.Millisecond {
			t.Fatalf("job %d: wind-up at %v, far past the 30ms optional deadline", rep.Job, rep.WindupStart)
		}
	}
}

func TestQuickOptionalCompletes(t *testing.T) {
	opt := SpinOptional(2, time.Millisecond, nil)
	r, err := NewRunner(Config{
		Period:           50 * time.Millisecond,
		OptionalDeadline: 40 * time.Millisecond,
		Jobs:             1,
		Optional:         []OptionalFunc{opt, opt},
	})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for k, p := range reports[0].Progress {
		if p != 1 {
			t.Fatalf("part %d progress %v, want 1", k, p)
		}
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r, err := NewRunner(Config{
		Period:           time.Hour, // would block forever
		OptionalDeadline: time.Minute,
		Jobs:             2,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var reports []JobReport
	go func() {
		defer close(done)
		reports, _ = r.Run(ctx)
	}()
	// First job runs immediately (release 0); the second sleeps an hour.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not honour cancellation")
	}
	if len(reports) != 1 {
		t.Fatalf("%d reports before cancel, want 1", len(reports))
	}
}

func TestParallelOptionalsRunConcurrently(t *testing.T) {
	// Four optional parts of ~20ms each: executed serially they need 80ms,
	// but the optional deadline is 40ms. If they run in parallel they all
	// complete.
	opt := func(ctx context.Context) float64 {
		deadline, _ := ctx.Deadline()
		for time.Now().Add(5 * time.Millisecond).Before(deadline) {
			select {
			case <-ctx.Done():
				return 0.5
			default:
			}
			time.Sleep(time.Millisecond)
		}
		return 1
	}
	r, err := NewRunner(Config{
		Period:           80 * time.Millisecond,
		OptionalDeadline: 40 * time.Millisecond,
		Jobs:             1,
		Optional:         []OptionalFunc{opt, opt, opt, opt},
	})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for k, p := range reports[0].Progress {
		if p != 1 {
			t.Fatalf("part %d progress %v: parts did not run in parallel", k, p)
		}
	}
}

func TestMeasureWakeLatency(t *testing.T) {
	lat, err := MeasureWakeLatency(context.Background(), 20, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if lat.N != 20 {
		t.Fatalf("n %d", lat.N)
	}
	// Ordering of the summary statistics; absolute values depend on the
	// host, so keep the bound very generous (a loaded CI box can be late
	// by many milliseconds, but not by a second).
	if !(lat.P50 <= lat.P99 && lat.P99 <= lat.Max) {
		t.Fatalf("percentiles out of order: %+v", lat)
	}
	if lat.Max > time.Second {
		t.Fatalf("wake latency %v implausible", lat.Max)
	}
}

func TestMeasureWakeLatencyCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	lat, err := MeasureWakeLatency(ctx, 5, time.Hour)
	if err == nil {
		t.Fatal("cancelled measurement should error")
	}
	if lat.N != 0 {
		t.Fatalf("no wakes should have run, got %d", lat.N)
	}
}

func TestMeasureWakeLatencyDegenerate(t *testing.T) {
	lat, err := MeasureWakeLatency(context.Background(), 0, time.Millisecond)
	if err != nil || lat.N != 0 {
		t.Fatalf("degenerate call: %+v, %v", lat, err)
	}
}
