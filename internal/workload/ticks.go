package workload

import "math"

// SynthTicks synthesizes a deterministic market tick stream for the compiled
// spec: count quotes placed by the rate profile's inverse mass-CDF (so
// high-rate windows are tick-dense, matching the arrival warping), each
// assigned a symbol and a price from per-tick SplitMix64 streams under the
// domainTick key. Prices follow a per-symbol geometric random walk whose
// step variance scales with the window rate in force — spike windows are
// volatile — and whose drift turns negative while the rate exceeds 1, so a
// flash-crash window shows falling prints. Every tick is a pure function of
// (spec, seed, tick index): symbol walks are reconstructed from per-index
// streams, never from shared mutable state.
func (s *SpecSource) SynthTicks(count int) []Tick {
	if count <= 0 {
		return nil
	}
	ticks := make([]Tick, count)
	// walkStep tracks each symbol's accumulated log-price so the walk is
	// continuous per symbol while each step still comes from the tick's own
	// stream.
	logPrice := make(map[uint32]float64, 64)
	for i := 0; i < count; i++ {
		st := NewStream(Mix64(s.seed, domainTick), uint64(i))
		at := s.profile.at((float64(i) + 0.5) / float64(count))
		// Concentrate ticks on a small hot set of symbols (quotes cluster on
		// liquid names) while covering the universe's low end.
		sym := uint32(st.Intn(minInt(s.spec.Symbols, 64)))
		rate := s.profile.rateAt(at)
		// Volatility scales with sqrt(rate); drift is pulled down by the
		// excess rate so bursts print lower.
		sigma := 0.0008 * math.Sqrt(rate)
		drift := -0.0004 * (rate - 1)
		logPrice[sym] += drift + sigma*st.Norm()
		mid := 100 * math.Exp(logPrice[sym])
		// Spread widens with volatility, floored at one tenth of a cent.
		spread := math.Max(0.001, mid*0.0002*rate)
		ticks[i] = Tick{
			Symbol: sym,
			At:     at,
			Bid:    mid - spread/2,
			Ask:    mid + spread/2,
		}
	}
	return ticks
}

// Trace records the compiled population plus a synthesized tick stream as a
// replayable trace.
func (s *SpecSource) Trace(tickCount int) *Trace {
	tr := &Trace{
		Meta: Meta{
			Name:    s.spec.Name,
			Seed:    s.seed,
			Horizon: s.horizon,
			Clients: len(s.params),
			Symbols: s.spec.Symbols,
			Windows: s.profile.windows,
		},
		Clients: append([]ClientParams(nil), s.params...),
		Ticks:   s.SynthTicks(tickCount),
	}
	return tr
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
