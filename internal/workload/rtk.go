// Binary workload trace format, version 1 (".rtk").
//
// Layout (all integers little-endian), following internal/trace v1's
// strict-decode discipline:
//
//	header   magic "RTSEEDWK" (8 bytes) | version u16 | reserved u16
//	section* tag u8 | length u64 | payload[length]
//
// Sections (each at most once; 'M' is required):
//
//	'M' meta:    u16 namelen | name | u64 seed | i64 horizon |
//	             u32 clients | u32 symbols | u16 windows, then per window
//	             u16 namelen | name | i64 start | i64 end | f64 rate
//	'C' clients: u32 count, then count 64-byte client-parameter records
//	'K' ticks:   u32 count, then count 32-byte tick records
//
// A client record is
//
//	u32 id | u32 symbol | u8 class | u8 cohort | u8 ntasks | u8 parallel |
//	u32 reserved | i64 arrival | i64 lifetime | i64 period_min |
//	i64 period_max | f64 util | u64 genseed
//
// and a tick record is
//
//	u32 symbol | u32 reserved | i64 at | f64 bid | f64 ask
//
// The reader rejects unknown magic, versions and tags, duplicate sections,
// section lengths that overrun the file, nonzero reserved fields,
// non-sequential client ids, out-of-range classes, counts, utilizations and
// instants, non-finite floats, crossed quotes, and time-disordered ticks; it
// never panics on hostile input (FuzzWorkloadCodec). Because the client
// records carry every ClientParams field bit-exactly, replaying a trace
// reproduces the generating run's admission funnel and miss rates verbatim.
package workload

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"time"
)

const (
	// Version is the current .rtk format version.
	Version = 1
	// clientRecordSize is the packed size of one client-parameter record.
	clientRecordSize = 64
	// tickRecordSize is the packed size of one tick record.
	tickRecordSize = 32
	// maxSectionName bounds decoded name lengths (u16 on the wire).
	maxSectionName = 1 << 12
)

// rtkMagic identifies a workload trace file.
var rtkMagic = [8]byte{'R', 'T', 'S', 'E', 'E', 'D', 'W', 'K'}

const (
	secMeta    = 'M'
	secClients = 'C'
	secTicks   = 'K'
)

// ErrBadFormat is wrapped by every decode error.
var ErrBadFormat = errors.New("workload: bad file format")

func formatErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadFormat, fmt.Sprintf(format, args...))
}

// Tick is one market quote of one symbol.
type Tick struct {
	Symbol uint32
	At     time.Duration
	Bid    float64
	Ask    float64
}

// Meta describes a recorded workload: the compile inputs a replay needs to
// reproduce the generating run (seed and horizon included — a cluster
// -replay run takes them from here, not from its own flags).
type Meta struct {
	Name    string
	Seed    uint64
	Horizon time.Duration
	Clients int
	Symbols int
	Windows []ResolvedWindow
}

// Trace is a decoded workload trace: the client population and the market
// tick stream.
type Trace struct {
	Meta    Meta
	Clients []ClientParams
	Ticks   []Tick
}

// Write serializes the trace.
func Write(w io.Writer, tr *Trace) error {
	var hdr [12]byte
	copy(hdr[:8], rtkMagic[:])
	binary.LittleEndian.PutUint16(hdr[8:], Version)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if err := writeMeta(w, tr.Meta); err != nil {
		return err
	}
	if err := writeClients(w, tr.Clients); err != nil {
		return err
	}
	return writeTicks(w, tr.Ticks)
}

// WriteFile serializes the trace to path.
func WriteFile(path string, tr *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeName(buf []byte, name string) ([]byte, error) {
	if len(name) > maxSectionName {
		return nil, fmt.Errorf("workload: name %.16q... exceeds %d bytes", name, maxSectionName)
	}
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], uint16(len(name)))
	return append(append(buf, n[:]...), name...), nil
}

func writeSection(w io.Writer, tag byte, payload []byte) error {
	var sec [9]byte
	sec[0] = tag
	binary.LittleEndian.PutUint64(sec[1:], uint64(len(payload)))
	if _, err := w.Write(sec[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func writeMeta(w io.Writer, m Meta) error {
	buf, err := writeName(nil, m.Name)
	if err != nil {
		return err
	}
	var fixed [26]byte
	binary.LittleEndian.PutUint64(fixed[0:], m.Seed)
	binary.LittleEndian.PutUint64(fixed[8:], uint64(m.Horizon))
	binary.LittleEndian.PutUint32(fixed[16:], uint32(m.Clients))
	binary.LittleEndian.PutUint32(fixed[20:], uint32(m.Symbols))
	binary.LittleEndian.PutUint16(fixed[24:], uint16(len(m.Windows)))
	buf = append(buf, fixed[:]...)
	for _, win := range m.Windows {
		if buf, err = writeName(buf, win.Name); err != nil {
			return err
		}
		var wb [24]byte
		binary.LittleEndian.PutUint64(wb[0:], uint64(win.Start))
		binary.LittleEndian.PutUint64(wb[8:], uint64(win.End))
		binary.LittleEndian.PutUint64(wb[16:], math.Float64bits(win.Rate))
		buf = append(buf, wb[:]...)
	}
	return writeSection(w, secMeta, buf)
}

func writeClients(w io.Writer, clients []ClientParams) error {
	buf := make([]byte, 4+len(clients)*clientRecordSize)
	binary.LittleEndian.PutUint32(buf, uint32(len(clients)))
	for i, p := range clients {
		rec := buf[4+i*clientRecordSize:]
		binary.LittleEndian.PutUint32(rec[0:], uint32(p.ID))
		binary.LittleEndian.PutUint32(rec[4:], p.Symbol)
		rec[8] = byte(p.Class)
		rec[9] = p.Cohort
		rec[10] = byte(p.NTasks)
		rec[11] = byte(p.Parallel)
		binary.LittleEndian.PutUint64(rec[16:], uint64(p.Arrival))
		binary.LittleEndian.PutUint64(rec[24:], uint64(p.Lifetime))
		binary.LittleEndian.PutUint64(rec[32:], uint64(p.PeriodMin))
		binary.LittleEndian.PutUint64(rec[40:], uint64(p.PeriodMax))
		binary.LittleEndian.PutUint64(rec[48:], math.Float64bits(p.Util))
		binary.LittleEndian.PutUint64(rec[56:], p.GenSeed)
	}
	return writeSection(w, secClients, buf)
}

func writeTicks(w io.Writer, ticks []Tick) error {
	buf := make([]byte, 4+len(ticks)*tickRecordSize)
	binary.LittleEndian.PutUint32(buf, uint32(len(ticks)))
	for i, t := range ticks {
		rec := buf[4+i*tickRecordSize:]
		binary.LittleEndian.PutUint32(rec[0:], t.Symbol)
		binary.LittleEndian.PutUint64(rec[8:], uint64(t.At))
		binary.LittleEndian.PutUint64(rec[16:], math.Float64bits(t.Bid))
		binary.LittleEndian.PutUint64(rec[24:], math.Float64bits(t.Ask))
	}
	return writeSection(w, secTicks, buf)
}

// Decode parses a complete workload trace image. It validates the header,
// every section frame, and every record, and returns a descriptive error —
// never a panic — on malformed input.
func Decode(data []byte) (*Trace, error) {
	if len(data) < 12 {
		return nil, formatErr("file too short for header (%d bytes)", len(data))
	}
	if string(data[:8]) != string(rtkMagic[:]) {
		return nil, formatErr("bad magic %q", data[:8])
	}
	if v := binary.LittleEndian.Uint16(data[8:]); v != Version {
		return nil, formatErr("unsupported version %d (have %d)", v, Version)
	}
	if r := binary.LittleEndian.Uint16(data[10:]); r != 0 {
		return nil, formatErr("nonzero reserved header field %d", r)
	}
	tr := &Trace{}
	sawMeta, sawClients, sawTicks := false, false, false
	rest := data[12:]
	for len(rest) > 0 {
		if len(rest) < 9 {
			return nil, formatErr("truncated section header (%d trailing bytes)", len(rest))
		}
		tag := rest[0]
		length := binary.LittleEndian.Uint64(rest[1:])
		rest = rest[9:]
		if length > uint64(len(rest)) {
			return nil, formatErr("section %q length %d overruns file (%d bytes left)", tag, length, len(rest))
		}
		payload := rest[:length]
		rest = rest[length:]
		var err error
		switch tag {
		case secMeta:
			if sawMeta {
				return nil, formatErr("duplicate meta section")
			}
			sawMeta = true
			err = tr.decodeMeta(payload)
		case secClients:
			if sawClients {
				return nil, formatErr("duplicate client section")
			}
			sawClients = true
			err = tr.decodeClients(payload)
		case secTicks:
			if sawTicks {
				return nil, formatErr("duplicate tick section")
			}
			sawTicks = true
			err = tr.decodeTicks(payload)
		default:
			err = formatErr("unknown section tag %q", tag)
		}
		if err != nil {
			return nil, err
		}
	}
	if !sawMeta {
		return nil, formatErr("missing meta section")
	}
	return tr, tr.validate()
}

func readName(payload []byte, what string) (string, []byte, error) {
	if len(payload) < 2 {
		return "", nil, formatErr("truncated %s name length", what)
	}
	n := int(binary.LittleEndian.Uint16(payload))
	payload = payload[2:]
	if n > maxSectionName {
		return "", nil, formatErr("%s name length %d exceeds %d", what, n, maxSectionName)
	}
	if len(payload) < n {
		return "", nil, formatErr("truncated %s name", what)
	}
	return string(payload[:n]), payload[n:], nil
}

func (tr *Trace) decodeMeta(payload []byte) error {
	name, payload, err := readName(payload, "trace")
	if err != nil {
		return err
	}
	if len(payload) < 26 {
		return formatErr("meta section too short (%d bytes after name)", len(payload))
	}
	m := Meta{
		Name:    name,
		Seed:    binary.LittleEndian.Uint64(payload[0:]),
		Horizon: time.Duration(binary.LittleEndian.Uint64(payload[8:])),
		Clients: int(binary.LittleEndian.Uint32(payload[16:])),
		Symbols: int(binary.LittleEndian.Uint32(payload[20:])),
	}
	nwin := int(binary.LittleEndian.Uint16(payload[24:]))
	payload = payload[26:]
	for i := 0; i < nwin; i++ {
		var wname string
		wname, payload, err = readName(payload, "window")
		if err != nil {
			return err
		}
		if len(payload) < 24 {
			return formatErr("truncated window entry %d", i)
		}
		m.Windows = append(m.Windows, ResolvedWindow{
			Name:  wname,
			Start: time.Duration(binary.LittleEndian.Uint64(payload[0:])),
			End:   time.Duration(binary.LittleEndian.Uint64(payload[8:])),
			Rate:  math.Float64frombits(binary.LittleEndian.Uint64(payload[16:])),
		})
		payload = payload[24:]
	}
	if len(payload) != 0 {
		return formatErr("%d trailing bytes after meta section", len(payload))
	}
	tr.Meta = m
	return nil
}

func (tr *Trace) decodeClients(payload []byte) error {
	if len(payload) < 4 {
		return formatErr("client section too short (%d bytes)", len(payload))
	}
	count := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	if len(payload) != count*clientRecordSize {
		return formatErr("client section has %d payload bytes for %d records", len(payload), count)
	}
	tr.Clients = make([]ClientParams, count)
	for i := 0; i < count; i++ {
		rec := payload[i*clientRecordSize:]
		if r := binary.LittleEndian.Uint32(rec[12:]); r != 0 {
			return formatErr("client record %d has nonzero reserved field", i)
		}
		p := ClientParams{
			ID:        int(binary.LittleEndian.Uint32(rec[0:])),
			Symbol:    binary.LittleEndian.Uint32(rec[4:]),
			Class:     Class(rec[8]),
			Cohort:    rec[9],
			NTasks:    int(rec[10]),
			Parallel:  int(rec[11]),
			Arrival:   time.Duration(binary.LittleEndian.Uint64(rec[16:])),
			Lifetime:  time.Duration(binary.LittleEndian.Uint64(rec[24:])),
			PeriodMin: time.Duration(binary.LittleEndian.Uint64(rec[32:])),
			PeriodMax: time.Duration(binary.LittleEndian.Uint64(rec[40:])),
			Util:      math.Float64frombits(binary.LittleEndian.Uint64(rec[48:])),
			GenSeed:   binary.LittleEndian.Uint64(rec[56:]),
		}
		if p.ID != i {
			return formatErr("client record %d has id %d (ids must be sequential)", i, p.ID)
		}
		if int(p.Class) >= NumClasses {
			return formatErr("client %d has unknown class %d", i, p.Class)
		}
		if p.NTasks < 1 || p.NTasks > 64 {
			return formatErr("client %d has task count %d outside [1, 64]", i, p.NTasks)
		}
		if p.Parallel > 64 {
			return formatErr("client %d has parallelism %d above 64", i, p.Parallel)
		}
		if !(p.Util > 0) || p.Util > 1024 || math.IsNaN(p.Util) {
			return formatErr("client %d has utilization %v outside (0, 1024]", i, p.Util)
		}
		if p.Arrival < 0 || p.Lifetime < 0 {
			return formatErr("client %d has negative arrival or lifetime", i)
		}
		if p.PeriodMin <= 0 || p.PeriodMax < p.PeriodMin {
			return formatErr("client %d has bad period range [%v, %v]", i, p.PeriodMin, p.PeriodMax)
		}
		tr.Clients[i] = p
	}
	return nil
}

func (tr *Trace) decodeTicks(payload []byte) error {
	if len(payload) < 4 {
		return formatErr("tick section too short (%d bytes)", len(payload))
	}
	count := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	if len(payload) != count*tickRecordSize {
		return formatErr("tick section has %d payload bytes for %d records", len(payload), count)
	}
	tr.Ticks = make([]Tick, count)
	var prev time.Duration
	for i := 0; i < count; i++ {
		rec := payload[i*tickRecordSize:]
		if r := binary.LittleEndian.Uint32(rec[4:]); r != 0 {
			return formatErr("tick record %d has nonzero reserved field", i)
		}
		t := Tick{
			Symbol: binary.LittleEndian.Uint32(rec[0:]),
			At:     time.Duration(binary.LittleEndian.Uint64(rec[8:])),
			Bid:    math.Float64frombits(binary.LittleEndian.Uint64(rec[16:])),
			Ask:    math.Float64frombits(binary.LittleEndian.Uint64(rec[24:])),
		}
		if t.At < 0 || t.At < prev {
			return formatErr("tick record %d at %v is before its predecessor", i, t.At)
		}
		if !(t.Bid > 0) || !(t.Ask > t.Bid) || math.IsInf(t.Ask, 0) {
			return formatErr("tick record %d has bad quote bid=%v ask=%v", i, t.Bid, t.Ask)
		}
		prev = t.At
		tr.Ticks[i] = t
	}
	return nil
}

// validate cross-checks the decoded sections against the meta section.
func (tr *Trace) validate() error {
	m := tr.Meta
	if m.Horizon <= 0 {
		return formatErr("non-positive horizon %v", m.Horizon)
	}
	if m.Symbols < 1 || m.Symbols > maxSymbols {
		return formatErr("symbol count %d outside [1, %d]", m.Symbols, maxSymbols)
	}
	if m.Clients != len(tr.Clients) {
		return formatErr("meta declares %d clients, client section has %d", m.Clients, len(tr.Clients))
	}
	prevEnd := time.Duration(0)
	for _, w := range m.Windows {
		if w.Name == "" {
			return formatErr("window with empty name")
		}
		if w.Start != prevEnd || w.End <= w.Start || w.End > m.Horizon {
			return formatErr("window %q spans [%v, %v], must tile [0, %v]", w.Name, w.Start, w.End, m.Horizon)
		}
		if !(w.Rate > 0) || math.IsInf(w.Rate, 0) {
			return formatErr("window %q has bad rate %v", w.Name, w.Rate)
		}
		prevEnd = w.End
	}
	if len(m.Windows) > 0 && prevEnd != m.Horizon {
		return formatErr("windows end at %v, must tile [0, %v]", prevEnd, m.Horizon)
	}
	for i, p := range tr.Clients {
		if p.Arrival > m.Horizon {
			return formatErr("client %d arrives at %v, after the horizon %v", i, p.Arrival, m.Horizon)
		}
		if int(p.Symbol) >= m.Symbols {
			return formatErr("client %d trades symbol %d outside the universe of %d", i, p.Symbol, m.Symbols)
		}
	}
	for i, t := range tr.Ticks {
		if t.At > m.Horizon {
			return formatErr("tick %d at %v, after the horizon %v", i, t.At, m.Horizon)
		}
		if int(t.Symbol) >= m.Symbols {
			return formatErr("tick %d quotes symbol %d outside the universe of %d", i, t.Symbol, m.Symbols)
		}
	}
	return nil
}

// ReadFile loads and decodes a workload trace from disk.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// SymbolTicks returns the trace's ticks for one symbol, in time order.
func (tr *Trace) SymbolTicks(symbol uint32) []Tick {
	var out []Tick
	for _, t := range tr.Ticks {
		if t.Symbol == symbol {
			out = append(out, t)
		}
	}
	return out
}

// Replay is a Source backed by a decoded trace: the recorded client
// parameters drive the same admission and simulation path the generating
// run took.
type Replay struct {
	tr *Trace
}

// NewReplay wraps a decoded trace as a Source.
func NewReplay(tr *Trace) *Replay { return &Replay{tr: tr} }

// Name implements Source with the recorded spec name.
func (r *Replay) Name() string { return r.tr.Meta.Name }

// Len implements Source.
func (r *Replay) Len() int { return len(r.tr.Clients) }

// Params implements Source.
func (r *Replay) Params(id int) ClientParams { return r.tr.Clients[id] }

// Materialize implements Source.
func (r *Replay) Materialize(p ClientParams) (Client, error) { return Materialize(p) }

// Windows implements Source.
func (r *Replay) Windows() []ResolvedWindow { return r.tr.Meta.Windows }

// Meta returns the recorded metadata.
func (r *Replay) Meta() Meta { return r.tr.Meta }
