package workload

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestSpecJSONRoundTrip checks the builtin specs survive WriteSpec/ParseSpec
// unchanged.
func TestSpecJSONRoundTrip(t *testing.T) {
	for _, name := range BuiltinSpecNames() {
		spec, ok := BuiltinSpec(name)
		if !ok {
			t.Fatalf("builtin %q missing", name)
		}
		var buf bytes.Buffer
		if err := WriteSpec(&buf, spec); err != nil {
			t.Fatal(err)
		}
		back, err := ParseSpec(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a, _ := json.Marshal(spec)
		b, _ := json.Marshal(back)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: spec changed across JSON round trip:\n%s\n%s", name, a, b)
		}
	}
}

// TestSpecValidate exercises the validator's rejection paths.
func TestSpecValidate(t *testing.T) {
	base := func() Spec {
		s, _ := BuiltinSpec("flash-crash")
		return s
	}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no name", func(s *Spec) { s.Name = "" }, "needs a name"},
		{"no cohorts", func(s *Spec) { s.Cohorts = nil }, "at least one cohort"},
		{"bad weight", func(s *Spec) { s.Cohorts[0].Weight = -1 }, "weight"},
		{"bad shape", func(s *Spec) { s.Cohorts[0].Arrival.Shape = -2 }, "shape"},
		{"bad tasks", func(s *Spec) { s.Cohorts[0].Tasks = [2]int{0, 3} }, "tasks range"},
		{"bad util", func(s *Spec) { s.Cohorts[0].Util = [2]float64{0.5, 0.2} }, "util range"},
		{"bad period", func(s *Spec) { s.Cohorts[0].Period = [2]Duration{0, 0} }, "period range"},
		{"bad window tile", func(s *Spec) { s.Windows[1].Start = 0.5 }, "tile"},
		{"bad window rate", func(s *Spec) { s.Windows[0].Rate = 0 }, "rate"},
		{"short windows", func(s *Spec) { s.Windows = s.Windows[:2] }, "tile [0, 1]"},
		{"bad symbols", func(s *Spec) { s.Symbols = -4 }, "symbols"},
	}
	for _, c := range cases {
		s := base()
		c.mut(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("flash-crash builtin invalid: %v", err)
	}
}

// TestBuiltinSourceMatchesGenerateClient pins the Builtin source to the
// population the cluster layer shipped with (the byte-identity contract of
// the default path rides on these draws).
func TestBuiltinSourceMatchesGenerateClient(t *testing.T) {
	src := NewBuiltin(42, 100)
	counts := [NumClasses]int{}
	for id := 0; id < 100; id++ {
		p := src.Params(id)
		if p.ID != id {
			t.Fatalf("client %d: id %d", id, p.ID)
		}
		counts[p.Class]++
		lo, hi := ClassUtilRange(p.Class)
		if p.Util < lo || p.Util >= hi {
			t.Errorf("client %d: util %v outside [%v, %v)", id, p.Util, lo, hi)
		}
		plo, phi := ClassPeriodRange(p.Class)
		if p.PeriodMin != plo || p.PeriodMax != phi {
			t.Errorf("client %d: period range [%v, %v]", id, p.PeriodMin, p.PeriodMax)
		}
		if p.NTasks < 1 || p.NTasks > 3 {
			t.Errorf("client %d: %d tasks", id, p.NTasks)
		}
		if p.Arrival != 0 || p.Lifetime != 0 || p.Parallel != 0 {
			t.Errorf("client %d: builtin clients are always-on, got %+v", id, p)
		}
		c, err := src.Materialize(p)
		if err != nil {
			t.Fatal(err)
		}
		if c.Set.Len() != p.NTasks {
			t.Errorf("client %d: %d tasks materialized, want %d", id, c.Set.Len(), p.NTasks)
		}
		if !strings.HasPrefix(c.Set.Tasks[0].Name, "c") {
			t.Errorf("client %d: task name %q", id, c.Set.Tasks[0].Name)
		}
	}
	for class, n := range counts {
		if n == 0 {
			t.Errorf("class %v never drawn in 100 clients", Class(class))
		}
	}
}

// TestMaterializePure checks Materialize is a pure function of the params:
// the property replay identity rides on.
func TestMaterializePure(t *testing.T) {
	spec, _ := BuiltinSpec("flash-crash")
	src, err := Compile(spec, CompileConfig{Clients: 50, Seed: 9, Horizon: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < src.Len(); id++ {
		p := src.Params(id)
		a, err := Materialize(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Materialize(p)
		if err != nil {
			t.Fatal(err)
		}
		if a.Set.Len() != b.Set.Len() {
			t.Fatalf("client %d: set size differs across identical params", id)
		}
		for i := range a.Set.Tasks {
			if !reflect.DeepEqual(a.Set.Tasks[i], b.Set.Tasks[i]) {
				t.Fatalf("client %d task %d differs across identical params", id, i)
			}
		}
	}
}

// TestCompileDeterministic checks compilation is a pure function of
// (spec, seed, clients, horizon) and that seeds decorrelate populations.
func TestCompileDeterministic(t *testing.T) {
	spec, _ := BuiltinSpec("open-close")
	cfg := CompileConfig{Clients: 300, Seed: 7, Horizon: 2 * time.Second}
	a, err := Compile(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < cfg.Clients; id++ {
		if a.Params(id) != b.Params(id) {
			t.Fatalf("client %d differs across identical compiles", id)
		}
	}
	cfg.Seed = 8
	c, err := Compile(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for id := 0; id < cfg.Clients; id++ {
		if a.Params(id) == c.Params(id) {
			same++
		}
	}
	if same == cfg.Clients {
		t.Fatal("different seeds produced identical populations")
	}
}

// TestArrivalsFollowWindows checks the rate warping: windows receive client
// arrivals in proportion to rate x span, and arrivals are nondecreasing per
// cohort fold yet always inside the horizon.
func TestArrivalsFollowWindows(t *testing.T) {
	spec, _ := BuiltinSpec("flash-crash")
	horizon := time.Second
	src, err := Compile(spec, CompileConfig{Clients: 4000, Seed: 3, Horizon: horizon})
	if err != nil {
		t.Fatal(err)
	}
	wins := src.Windows()
	counts := make([]float64, len(wins))
	for id := 0; id < src.Len(); id++ {
		at := src.Params(id).Arrival
		if at < 0 || at > horizon {
			t.Fatalf("client %d arrives at %v, outside [0, %v]", id, at, horizon)
		}
		for i := len(wins) - 1; i >= 0; i-- {
			if at >= wins[i].Start {
				counts[i]++
				break
			}
		}
	}
	mass := 0.0
	for _, w := range wins {
		mass += w.Rate * float64(w.End-w.Start)
	}
	for i, w := range wins {
		want := w.Rate * float64(w.End-w.Start) / mass * float64(src.Len())
		if got := counts[i]; math.Abs(got-want) > 0.15*want+10 {
			t.Errorf("window %q: %v arrivals, want about %.0f", w.Name, got, want)
		}
	}
}

// distMoments draws n samples and returns the empirical mean and CV.
func distMoments(t *testing.T, d Dist, n int) (mean, cv float64) {
	t.Helper()
	s := NewStream(1234, 99)
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Gap(d)
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("%v sample %d: %v", d, i, x)
		}
		sum += x
		sumSq += x * x
	}
	mean = sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	return mean, math.Sqrt(math.Max(variance, 0)) / mean
}

// TestDistributionMoments pins each inter-arrival process to its analytical
// mean (1 by construction) and coefficient of variation: CV 1 for Poisson,
// 1/sqrt(k) for Gamma(k), sqrt(Gamma(1+2/k)/Gamma(1+1/k)^2 - 1) for
// Weibull(k). Tolerances absorb the Irwin-Hall normal approximation inside
// the Gamma sampler and plain sampling error.
func TestDistributionMoments(t *testing.T) {
	const n = 200000
	weibullCV := func(k float64) float64 {
		g1 := math.Gamma(1 + 1/k)
		g2 := math.Gamma(1 + 2/k)
		return math.Sqrt(g2/(g1*g1) - 1)
	}
	cases := []struct {
		d      Dist
		wantCV float64
		tol    float64
	}{
		{Dist{Process: ProcPoisson}, 1, 0.02},
		{Dist{Process: ProcGamma, Shape: 0.5}, 1 / math.Sqrt(0.5), 0.05},
		{Dist{Process: ProcGamma, Shape: 4}, 0.5, 0.05},
		{Dist{Process: ProcWeibull, Shape: 0.6}, weibullCV(0.6), 0.05},
		{Dist{Process: ProcWeibull, Shape: 2}, weibullCV(2), 0.02},
	}
	for _, c := range cases {
		mean, cv := distMoments(t, c.d, n)
		if math.Abs(mean-1) > 0.03 {
			t.Errorf("%v %v: mean %.4f, want 1", c.d.Process, c.d.Shape, mean)
		}
		if math.Abs(cv-c.wantCV) > c.tol*c.wantCV+0.01 {
			t.Errorf("%v %v: CV %.4f, want %.4f", c.d.Process, c.d.Shape, cv, c.wantCV)
		}
	}
}

// TestRateProfileInverse checks profile.at is the inverse of the mass CDF:
// monotone, hits window boundaries at the cumulative mass fractions, and
// clamps at the ends.
func TestRateProfileInverse(t *testing.T) {
	windows := []Window{
		{Name: "a", Start: 0, End: 0.5, Rate: 1},
		{Name: "b", Start: 0.5, End: 0.75, Rate: 8},
		{Name: "c", Start: 0.75, End: 1, Rate: 1},
	}
	horizon := time.Second
	p := newRateProfile(windows, horizon)
	// Total mass: 0.5 + 2.0 + 0.25 = 2.75.
	if got := p.at(0); got != 0 {
		t.Errorf("at(0) = %v", got)
	}
	if got := p.at(1); got != horizon {
		t.Errorf("at(1) = %v", got)
	}
	if got, want := p.at(0.5/2.75), 500*time.Millisecond; durApart(got, want) > time.Millisecond {
		t.Errorf("at(boundary a/b) = %v, want %v", got, want)
	}
	if got, want := p.at(2.5/2.75), 750*time.Millisecond; durApart(got, want) > time.Millisecond {
		t.Errorf("at(boundary b/c) = %v, want %v", got, want)
	}
	prev := time.Duration(-1)
	for i := 0; i <= 1000; i++ {
		at := p.at(float64(i) / 1000)
		if at < prev {
			t.Fatalf("at not monotone at step %d: %v < %v", i, at, prev)
		}
		prev = at
	}
	if r := p.rateAt(600 * time.Millisecond); r != 8 {
		t.Errorf("rateAt(600ms) = %v, want 8", r)
	}
	if r := p.rateAt(100 * time.Millisecond); r != 1 {
		t.Errorf("rateAt(100ms) = %v, want 1", r)
	}
}

func durApart(a, b time.Duration) time.Duration {
	if a > b {
		return a - b
	}
	return b - a
}
