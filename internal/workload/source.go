package workload

import (
	"fmt"
	"time"

	"rtseed/internal/task"
)

// ClientParams are the cheap-to-draw parameters of one client — everything
// admission routing, the rejection watermark, and per-window reporting need
// before paying for task-set generation, and everything Materialize needs to
// rebuild the exact task set. The fields round-trip bit-exactly through the
// .rtk client section, which is what makes a replayed trace reproduce the
// generating run's admission funnel verbatim.
type ClientParams struct {
	ID     int
	Class  Class
	Cohort uint8
	Symbol uint32
	NTasks int
	// Parallel is the parallel optional parts per task (np).
	Parallel int
	// Util is the client's total target utilization.
	Util float64
	// Arrival is when the client's tasks start releasing jobs; zero means
	// active from the start of the run.
	Arrival time.Duration
	// Lifetime bounds how long the client stays active after Arrival; zero
	// means active until the horizon.
	Lifetime time.Duration
	// PeriodMin and PeriodMax bound the log-uniform period draw inside
	// Materialize.
	PeriodMin, PeriodMax time.Duration
	// GenSeed seeds the task-set generator.
	GenSeed uint64
}

// Client is one materialized tenant: its parameters plus the generated
// periodic task set.
type Client struct {
	ClientParams
	Set *task.Set
}

// ResolvedWindow is one spec window with the horizon applied — the unit of
// the per-window report tables.
type ResolvedWindow struct {
	Name       string
	Start, End time.Duration
	Rate       float64
}

// Source is a deterministic client population: the cluster admission loop
// draws cheap parameters per id, materializes only the clients the
// rejection watermark lets through, and reports service per window.
type Source interface {
	// Name labels the population in reports.
	Name() string
	// Len is the number of offered clients.
	Len() int
	// Params returns client id's parameters. Calls must be cheap; the
	// admission watermark consults Util before Materialize is paid for.
	Params(id int) ClientParams
	// Materialize generates the client's task set. It is a pure function
	// of p, so a replayed parameter record rebuilds the identical client.
	Materialize(p ClientParams) (Client, error)
	// Windows returns the population's rate windows in time order, or nil
	// for an unwindowed population.
	Windows() []ResolvedWindow
}

// Materialize generates a client's task set from its parameters. Task names
// carry the client id ("c12.0"), keeping names unique fleet-wide.
func Materialize(p ClientParams) (Client, error) {
	optLen := time.Duration(0)
	if p.Parallel > 0 {
		// Parallel optional parts sized to an eighth of the shortest
		// period: enough to shape the profile, derived from the params
		// alone so replay regenerates the identical set.
		optLen = p.PeriodMin / 8
	}
	set, err := task.Generate(task.GenConfig{
		N:                p.NTasks,
		TotalUtilization: p.Util,
		MinPeriod:        p.PeriodMin,
		MaxPeriod:        p.PeriodMax,
		NumOptional:      p.Parallel,
		OptionalLength:   optLen,
		Seed:             p.GenSeed,
		NamePrefix:       fmt.Sprintf("c%d.", p.ID),
	})
	if err != nil {
		return Client{}, err
	}
	return Client{ClientParams: p, Set: set}, nil
}

// ClassPeriodRange bounds the builtin population's log-uniform period
// distribution per class.
func ClassPeriodRange(c Class) (lo, hi time.Duration) {
	switch c {
	case ClassHFT:
		return 5 * time.Millisecond, 20 * time.Millisecond
	case ClassAlgo:
		return 20 * time.Millisecond, 100 * time.Millisecond
	case ClassRetail:
		return 100 * time.Millisecond, time.Second
	}
	panic("workload: invalid class")
}

// ClassUtilRange bounds the builtin population's total-utilization draw per
// class.
func ClassUtilRange(c Class) (lo, hi float64) {
	switch c {
	case ClassHFT:
		return 0.08, 0.45
	case ClassAlgo:
		return 0.05, 0.35
	case ClassRetail:
		return 0.02, 0.25
	}
	panic("workload: invalid class")
}

// Builtin is the default steady population the cluster layer shipped with:
// 20% HFT / 30% algo / 50% retail, class-banded periods and utilizations,
// 1-3 tasks per client, 4096 symbols, every client active from time zero.
// Params reproduces the historical drawClient stream draw-for-draw, so the
// default cluster population is byte-identical to the pre-workload layer.
type Builtin struct {
	seed uint64
	n    int
}

// NewBuiltin returns the builtin population of n clients under seed.
func NewBuiltin(seed uint64, n int) *Builtin { return &Builtin{seed: seed, n: n} }

// Name implements Source.
func (b *Builtin) Name() string { return "builtin" }

// Len implements Source.
func (b *Builtin) Len() int { return b.n }

// Windows implements Source: the builtin population is unwindowed.
func (b *Builtin) Windows() []ResolvedWindow { return nil }

// Params implements Source. The draw order (class roll, symbol, task count,
// utilization, generator seed) is the legacy drawClient sequence over the
// stream seeded by Mix64(seed, id).
func (b *Builtin) Params(id int) ClientParams {
	s := NewStream(b.seed, uint64(id))
	p := ClientParams{ID: id}
	roll := s.Float64()
	switch {
	case roll < 0.2:
		p.Class = ClassHFT
	case roll < 0.5:
		p.Class = ClassAlgo
	default:
		p.Class = ClassRetail
	}
	p.Cohort = uint8(p.Class)
	p.Symbol = uint32(s.Intn(DefaultSymbols))
	p.NTasks = 1 + s.Intn(3)
	lo, hi := ClassUtilRange(p.Class)
	p.Util = s.Uniform(lo, hi)
	p.GenSeed = s.Uint64()
	p.PeriodMin, p.PeriodMax = ClassPeriodRange(p.Class)
	return p
}

// Materialize implements Source.
func (b *Builtin) Materialize(p ClientParams) (Client, error) { return Materialize(p) }

// SpecSource is a compiled spec: the full parameter table of every client,
// with window-warped arrival instants. Compiling is one sequential pass —
// each client's samples come from its own stream, and the arrival fold
// consumes them in id order.
type SpecSource struct {
	spec    Spec
	seed    uint64
	horizon time.Duration
	params  []ClientParams
	profile *rateProfile
}

// CompileConfig parameterizes spec compilation.
type CompileConfig struct {
	// Clients is the population size.
	Clients int
	// Seed keys every sample stream.
	Seed uint64
	// Horizon resolves the spec's fractional windows to instants.
	Horizon time.Duration
}

// Compile validates the spec and generates the client parameter table.
func Compile(spec Spec, cfg CompileConfig) (*SpecSource, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.withDefaults()
	if cfg.Clients < 0 {
		return nil, fmt.Errorf("workload: negative client count %d", cfg.Clients)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("workload: non-positive horizon %v", cfg.Horizon)
	}
	src := &SpecSource{
		spec:    spec,
		seed:    cfg.Seed,
		horizon: cfg.Horizon,
		params:  make([]ClientParams, cfg.Clients),
		profile: newRateProfile(spec.Windows, cfg.Horizon),
	}

	totalWeight := 0.0
	for _, c := range spec.Cohorts {
		totalWeight += c.Weight
	}

	// Pass 1: draw every client's parameters and its cohort-local gap.
	gaps := make([]float64, cfg.Clients)
	sums := make([]float64, len(spec.Cohorts))
	for id := 0; id < cfg.Clients; id++ {
		s := NewStream(Mix64(cfg.Seed, domainClient), uint64(id))
		roll := s.Float64() * totalWeight
		ci := len(spec.Cohorts) - 1
		acc := 0.0
		for i, c := range spec.Cohorts {
			acc += c.Weight
			if roll < acc {
				ci = i
				break
			}
		}
		c := spec.Cohorts[ci]
		p := ClientParams{
			ID:        id,
			Class:     c.Class,
			Cohort:    uint8(ci),
			Symbol:    uint32(s.Intn(spec.Symbols)),
			NTasks:    s.IntRange(c.Tasks[0], c.Tasks[1]),
			Parallel:  s.IntRange(c.Parallel[0], c.Parallel[1]),
			Util:      s.Uniform(c.Util[0], c.Util[1]),
			PeriodMin: time.Duration(c.Period[0]),
			PeriodMax: time.Duration(c.Period[1]),
			Lifetime:  s.DurRange(time.Duration(c.Lifetime[0]), time.Duration(c.Lifetime[1])),
		}
		gaps[id] = s.Gap(c.Arrival)
		sums[ci] += gaps[id]
		p.GenSeed = s.Uint64()
		src.params[id] = p
	}

	// Pass 2: fold gaps into arrival instants. Within each cohort the
	// prefix sum of gaps, normalized by the cohort's total, is the client's
	// mass fraction; the rate profile's inverse CDF warps mass into time,
	// so high-rate windows receive proportionally more arrivals while the
	// gap distribution's CV sets the clustering between neighbors.
	counts := make([]int, len(spec.Cohorts))
	for id := range src.params {
		counts[src.params[id].Cohort]++
	}
	prefix := make([]float64, len(spec.Cohorts))
	for id := range src.params {
		ci := src.params[id].Cohort
		prefix[ci] += gaps[id]
		if sums[ci] > 0 {
			n := float64(counts[ci])
			x := prefix[ci] / sums[ci] * n / (n + 1)
			src.params[id].Arrival = src.profile.at(x)
		}
	}
	return src, nil
}

// Name implements Source.
func (s *SpecSource) Name() string { return s.spec.Name }

// Len implements Source.
func (s *SpecSource) Len() int { return len(s.params) }

// Params implements Source.
func (s *SpecSource) Params(id int) ClientParams { return s.params[id] }

// Materialize implements Source.
func (s *SpecSource) Materialize(p ClientParams) (Client, error) { return Materialize(p) }

// Windows implements Source.
func (s *SpecSource) Windows() []ResolvedWindow { return s.profile.windows }

// Spec returns the compiled spec (defaults resolved).
func (s *SpecSource) Spec() Spec { return s.spec }

// Seed returns the compilation seed.
func (s *SpecSource) Seed() uint64 { return s.seed }

// Horizon returns the compilation horizon.
func (s *SpecSource) Horizon() time.Duration { return s.horizon }
