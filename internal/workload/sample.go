package workload

import (
	"math"
	"time"

	"rtseed/internal/engine"
)

// Mix64 derives an independent stream seed from (seed, n): SplitMix64's
// output function over the golden-ratio sequence, the same construction
// engine.Rand uses internally. Streams for distinct n never share state, so
// every draw is a pure function of (seed, n, draw index).
func Mix64(seed, n uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(n+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream domains keep the per-purpose sample streams of one (seed, id) pair
// independent: the client-parameter stream of client 7 and the tick stream
// of tick 7 come from different SplitMix64 sequences.
const (
	domainClient uint64 = 0x636c69656e740000 // "client"
	domainTick   uint64 = 0x7469636b00000000 // "tick"
)

// Stream is one deterministic sample stream: a SplitMix64 generator plus
// the inverse-CDF and rejection samplers the spec model draws from. All
// distribution samplers are mean-normalized to 1 so the rate warping alone
// sets the time scale.
type Stream struct {
	rng *engine.Rand
}

// NewStream returns the stream seeded by Mix64(seed, n).
func NewStream(seed, n uint64) *Stream {
	return &Stream{rng: engine.NewRand(Mix64(seed, n))}
}

// Uint64 returns the next raw value.
func (s *Stream) Uint64() uint64 { return s.rng.Uint64() }

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform value in [0, n); it panics if n <= 0.
func (s *Stream) Intn(n int) int { return s.rng.Intn(n) }

// IntRange returns a uniform value in [lo, hi].
func (s *Stream) IntRange(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + s.rng.Intn(hi-lo+1)
}

// Uniform returns a uniform value in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + s.rng.Float64()*(hi-lo)
}

// DurRange returns a uniform duration in [lo, hi].
func (s *Stream) DurRange(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(s.rng.Float64()*float64(hi-lo))
}

// Norm returns an approximately standard-normal value (engine.Rand's
// Irwin-Hall twelve-uniform sum, tails truncated at ±6).
func (s *Stream) Norm() float64 { return s.rng.NormFloat64() }

// Exp returns a mean-1 exponential value by inverse CDF: -ln(1-U).
func (s *Stream) Exp() float64 {
	return -math.Log1p(-s.rng.Float64())
}

// Weibull returns a mean-1 Weibull(shape) value by inverse CDF:
// (-ln(1-U))^(1/shape) divided by the raw mean Γ(1 + 1/shape). Shapes below
// 1 give a heavy right tail (rare very long gaps — burst clustering).
func (s *Stream) Weibull(shape float64) float64 {
	raw := math.Pow(-math.Log1p(-s.rng.Float64()), 1/shape)
	return raw / math.Gamma(1+1/shape)
}

// Gamma returns a mean-1 Gamma(shape) value (Marsaglia-Tsang for shape >= 1,
// boosted by U^(1/shape) below 1), divided by the raw mean shape. The
// rejection loop draws only from this stream, so the sample is still a pure
// function of the stream's seed.
func (s *Stream) Gamma(shape float64) float64 {
	return s.gammaRaw(shape) / shape
}

func (s *Stream) gammaRaw(k float64) float64 {
	if k < 1 {
		// Gamma(k) = Gamma(k+1) * U^(1/k) (Marsaglia & Tsang's boost).
		u := s.rng.Float64()
		return s.gammaRaw(k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := s.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Gap draws one mean-1 inter-arrival gap from the distribution.
func (s *Stream) Gap(d Dist) float64 {
	switch d.Process {
	case ProcPoisson:
		return s.Exp()
	case ProcGamma:
		return s.Gamma(d.shape())
	case ProcWeibull:
		return s.Weibull(d.shape())
	}
	panic("workload: invalid process")
}

// LogUniformDur returns a log-uniform duration in [lo, hi].
func (s *Stream) LogUniformDur(lo, hi time.Duration) time.Duration {
	if lo >= hi {
		return lo
	}
	r := s.rng.Float64()
	logLo, logHi := math.Log(float64(lo)), math.Log(float64(hi))
	return time.Duration(math.Exp(logLo + r*(logHi-logLo)))
}

// rateProfile is a compiled window rate profile: the piecewise-linear
// cumulative-mass CDF over the horizon, inverted in closed form. Arrivals
// and ticks are placed by mass fraction, so high-rate windows are dense.
type rateProfile struct {
	windows []ResolvedWindow
	// cum[i] is the mass accumulated before window i; cum[len] is the total.
	cum []float64
}

// newRateProfile compiles the spec windows against a horizon.
func newRateProfile(windows []Window, horizon time.Duration) *rateProfile {
	p := &rateProfile{
		windows: make([]ResolvedWindow, len(windows)),
		cum:     make([]float64, len(windows)+1),
	}
	for i, w := range windows {
		p.windows[i] = ResolvedWindow{
			Name:  w.Name,
			Start: time.Duration(w.Start * float64(horizon)),
			End:   time.Duration(w.End * float64(horizon)),
			Rate:  w.Rate,
		}
		p.cum[i+1] = p.cum[i] + w.Rate*(w.End-w.Start)
	}
	return p
}

// at returns the instant at mass fraction x in [0, 1], clamped at the ends.
func (p *rateProfile) at(x float64) time.Duration {
	if x <= 0 {
		return p.windows[0].Start
	}
	total := p.cum[len(p.windows)]
	target := x * total
	for i, w := range p.windows {
		if target <= p.cum[i+1] || i == len(p.windows)-1 {
			span := float64(w.End - w.Start)
			frac := (target - p.cum[i]) / (p.cum[i+1] - p.cum[i])
			if frac > 1 {
				frac = 1
			}
			return w.Start + time.Duration(frac*span)
		}
	}
	return p.windows[len(p.windows)-1].End
}

// rateAt returns the window rate multiplier in force at t.
func (p *rateProfile) rateAt(t time.Duration) float64 {
	for i := len(p.windows) - 1; i > 0; i-- {
		if t >= p.windows[i].Start {
			return p.windows[i].Rate
		}
	}
	return p.windows[0].Rate
}
