package workload

import (
	"bytes"
	"testing"
	"time"
)

// BenchmarkWorkloadGen measures spec compilation: drawing the full client
// parameter table (per-client streams, distribution sampling, the arrival
// fold) for a bursty spec.
func BenchmarkWorkloadGen(b *testing.B) {
	spec, _ := BuiltinSpec("flash-crash")
	const clients = 10000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src, err := Compile(spec, CompileConfig{Clients: clients, Seed: uint64(i + 1), Horizon: time.Second})
		if err != nil {
			b.Fatal(err)
		}
		if src.Len() != clients {
			b.Fatal("bad population")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/clients, "ns/client")
}

// BenchmarkWorkloadReplay measures the record/replay path: encoding a
// compiled trace and decoding it back with full validation.
func BenchmarkWorkloadReplay(b *testing.B) {
	spec, _ := BuiltinSpec("flash-crash")
	src, err := Compile(spec, CompileConfig{Clients: 10000, Seed: 1, Horizon: time.Second})
	if err != nil {
		b.Fatal(err)
	}
	tr := src.Trace(10000)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		back, err := Decode(data)
		if err != nil {
			b.Fatal(err)
		}
		if len(back.Clients) != len(tr.Clients) {
			b.Fatal("bad decode")
		}
	}
}
