package workload

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
	"time"
)

// testTrace builds a small compiled trace for codec tests.
func testTrace(t *testing.T, builtin string, clients, ticks int) *Trace {
	t.Helper()
	spec, ok := BuiltinSpec(builtin)
	if !ok {
		t.Fatalf("builtin %q missing", builtin)
	}
	src, err := Compile(spec, CompileConfig{Clients: clients, Seed: 77, Horizon: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return src.Trace(ticks)
}

// TestRTKRoundTrip checks Write/Decode is the identity on every builtin
// spec's trace — including float bit patterns, which replay identity needs.
func TestRTKRoundTrip(t *testing.T) {
	for _, name := range BuiltinSpecNames() {
		tr := testTrace(t, name, 64, 200)
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatal(err)
		}
		back, err := Decode(buf.Bytes())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(tr.Meta, back.Meta) {
			t.Errorf("%s: meta differs:\n%+v\n%+v", name, tr.Meta, back.Meta)
		}
		if !reflect.DeepEqual(tr.Clients, back.Clients) {
			t.Errorf("%s: clients differ", name)
		}
		if !reflect.DeepEqual(tr.Ticks, back.Ticks) {
			t.Errorf("%s: ticks differ", name)
		}
		// Re-encoding the decoded trace must be byte-identical.
		var buf2 bytes.Buffer
		if err := Write(&buf2, back); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Errorf("%s: re-encode not byte-identical", name)
		}
	}
}

// TestRTKFileRoundTrip checks the file-level helpers.
func TestRTKFileRoundTrip(t *testing.T) {
	tr := testTrace(t, "flash-crash", 32, 100)
	path := t.TempDir() + "/trace.rtk"
	if err := WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatal("file round trip changed the trace")
	}
}

// TestReplaySourceMatchesSpecSource checks the replay Source serves exactly
// the compiled population: same params, same materialized sets, same
// windows.
func TestReplaySourceMatchesSpecSource(t *testing.T) {
	spec, _ := BuiltinSpec("flash-crash")
	src, err := Compile(spec, CompileConfig{Clients: 40, Seed: 5, Horizon: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, src.Trace(0)); err != nil {
		t.Fatal(err)
	}
	tr, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReplay(tr)
	if rep.Name() != src.Name() || rep.Len() != src.Len() {
		t.Fatalf("replay identity: %s/%d vs %s/%d", rep.Name(), rep.Len(), src.Name(), src.Len())
	}
	if !reflect.DeepEqual(rep.Windows(), src.Windows()) {
		t.Fatal("replay windows differ")
	}
	for id := 0; id < src.Len(); id++ {
		if rep.Params(id) != src.Params(id) {
			t.Fatalf("client %d params differ through the codec", id)
		}
		a, err := src.Materialize(src.Params(id))
		if err != nil {
			t.Fatal(err)
		}
		b, err := rep.Materialize(rep.Params(id))
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Set.Tasks {
			if !reflect.DeepEqual(a.Set.Tasks[i], b.Set.Tasks[i]) {
				t.Fatalf("client %d task %d differs through the codec", id, i)
			}
		}
	}
}

// corrupt returns a copy of data with one mutation applied.
func corrupt(data []byte, mut func([]byte)) []byte {
	c := append([]byte(nil), data...)
	mut(c)
	return c
}

// TestRTKDecodeRejects drives the decoder's validation paths: every
// corruption must produce an ErrBadFormat-wrapped error, never a panic or a
// silent success.
func TestRTKDecodeRejects(t *testing.T) {
	tr := testTrace(t, "open-close", 16, 50)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", good[:8]},
		{"bad magic", corrupt(good, func(b []byte) { b[0] = 'X' })},
		{"bad version", corrupt(good, func(b []byte) { b[8] = 99 })},
		{"reserved header", corrupt(good, func(b []byte) { b[10] = 1 })},
		{"unknown tag", corrupt(good, func(b []byte) { b[12] = 'Z' })},
		{"overrun length", corrupt(good, func(b []byte) {
			binary.LittleEndian.PutUint64(b[13:], uint64(len(b)))
		})},
		{"truncated section", good[:len(good)-7]},
		{"missing meta", good[:12]},
	}
	for _, c := range cases {
		if _, err := Decode(c.data); !errors.Is(err, ErrBadFormat) {
			t.Errorf("%s: got %v, want ErrBadFormat", c.name, err)
		}
	}

	// Field-level corruption inside the meta section (horizon at offset
	// 12+9+2+namelen+8).
	nameLen := int(binary.LittleEndian.Uint16(good[21:]))
	horizonOff := 12 + 9 + 2 + nameLen + 8
	bad := corrupt(good, func(b []byte) {
		binary.LittleEndian.PutUint64(b[horizonOff:], 0)
	})
	if _, err := Decode(bad); !errors.Is(err, ErrBadFormat) {
		t.Errorf("zero horizon: got %v, want ErrBadFormat", err)
	}
}

// FuzzWorkloadCodec feeds arbitrary bytes to the decoder: it must never
// panic, and anything it accepts must re-encode decodably.
func FuzzWorkloadCodec(f *testing.F) {
	for _, name := range BuiltinSpecNames() {
		spec, _ := BuiltinSpec(name)
		src, err := Compile(spec, CompileConfig{Clients: 8, Seed: 2, Horizon: 100 * time.Millisecond})
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, src.Trace(20)); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("RTSEEDWK"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("decode error not wrapping ErrBadFormat: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		if _, err := Decode(buf.Bytes()); err != nil {
			t.Fatalf("re-encoded trace rejected: %v", err)
		}
	})
}

// TestSynthTicksDeterministic checks the tick stream is a pure function of
// (spec, seed) and shapes itself to the rate profile.
func TestSynthTicksDeterministic(t *testing.T) {
	spec, _ := BuiltinSpec("flash-crash")
	mk := func(seed uint64) []Tick {
		src, err := Compile(spec, CompileConfig{Clients: 1, Seed: seed, Horizon: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		return src.SynthTicks(2000)
	}
	a, b := mk(11), mk(11)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("tick synthesis not deterministic")
	}
	c := mk(12)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical tick streams")
	}
	var prev time.Duration
	dense := 0
	for _, tk := range a {
		if tk.At < prev || tk.At > time.Second {
			t.Fatalf("tick at %v out of order or range", tk.At)
		}
		if !(tk.Ask > tk.Bid) || !(tk.Bid > 0) {
			t.Fatalf("bad quote %+v", tk)
		}
		prev = tk.At
		if tk.At >= 400*time.Millisecond && tk.At < 550*time.Millisecond {
			dense++
		}
	}
	// The crash window holds 12x rate over 15% of the horizon: expect far
	// more than its 15% share of ticks.
	if frac := float64(dense) / float64(len(a)); frac < 0.4 {
		t.Errorf("crash window got %.2f of ticks, want dense (> 0.4)", frac)
	}
}
