// Package workload generates client populations and market tick streams for
// the cluster simulation from declarative cohort specs, and records them in
// a versioned binary trace format (".rtk") for deterministic replay.
//
// The paper evaluates RT-Seed on a steady synthetic grid; real trading load
// is bursty, heavy-tailed, and regime-shifting. A Spec describes that load
// declaratively: client cohorts (latency class, population weight, an
// inter-arrival process — Poisson, Gamma, or Weibull — whose shape sets the
// burstiness, and heterogeneous (tasks, utilization, period, parallelism)
// profiles) and rate windows over the horizon (market open/close bursts,
// regime shifts, flash-crash spikes).
//
// Determinism contract: every sample is a pure function of (spec, seed,
// client-id) — each client owns a SplitMix64 stream seeded by Mix64 over
// (seed, id) and consumes it in a fixed order, so generation is detflow-clean
// and byte-identical for any worker count. Arrival instants are prefix sums
// of the per-client gap samples folded in id order and warped through the
// window rate profile's inverse CDF; the fold is sequential but consumes no
// state outside the spec, the seed, and the ids.
package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"
)

// Class buckets clients by the latency profile of their order flow. The
// values mirror internal/cluster's reporting classes one-for-one so the
// cluster can convert by value.
type Class uint8

const (
	// ClassHFT is high-frequency flow: 5-20ms periods in the builtin
	// population, the heaviest per-client utilization.
	ClassHFT Class = iota
	// ClassAlgo is algorithmic execution: 20-100ms periods.
	ClassAlgo
	// ClassRetail is retail order routing: 100ms-1s periods.
	ClassRetail
)

// NumClasses sizes arrays indexed by Class.
const NumClasses = int(ClassRetail) + 1

// String implements fmt.Stringer with the report labels.
func (c Class) String() string {
	switch c {
	case ClassHFT:
		return "hft"
	case ClassAlgo:
		return "algo"
	case ClassRetail:
		return "retail"
	}
	return fmt.Sprintf("class%d", uint8(c))
}

// parseClass inverts String for the JSON spec form.
func parseClass(s string) (Class, error) {
	switch s {
	case "hft":
		return ClassHFT, nil
	case "algo":
		return ClassAlgo, nil
	case "retail":
		return ClassRetail, nil
	}
	return 0, fmt.Errorf("workload: unknown class %q (want hft, algo, retail)", s)
}

// MarshalJSON encodes the class as its report label.
func (c Class) MarshalJSON() ([]byte, error) { return json.Marshal(c.String()) }

// UnmarshalJSON decodes a report label.
func (c *Class) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := parseClass(s)
	if err != nil {
		return err
	}
	*c = parsed
	return nil
}

// Process selects a cohort's inter-arrival gap distribution. All three are
// sampled mean-normalized to 1; the shape parameter sets the coefficient of
// variation — Gamma and Weibull shapes below 1 give bursty, heavy-tailed
// arrivals, shapes above 1 are smoother than Poisson.
type Process uint8

const (
	// ProcPoisson draws exponential gaps (CV 1).
	ProcPoisson Process = iota
	// ProcGamma draws Gamma(shape) gaps (CV 1/sqrt(shape)).
	ProcGamma
	// ProcWeibull draws Weibull(shape) gaps (heavy right tail for shape < 1).
	ProcWeibull
)

// String implements fmt.Stringer with the spec-file labels.
func (p Process) String() string {
	switch p {
	case ProcPoisson:
		return "poisson"
	case ProcGamma:
		return "gamma"
	case ProcWeibull:
		return "weibull"
	}
	return fmt.Sprintf("process%d", uint8(p))
}

func parseProcess(s string) (Process, error) {
	switch s {
	case "poisson":
		return ProcPoisson, nil
	case "gamma":
		return ProcGamma, nil
	case "weibull":
		return ProcWeibull, nil
	}
	return 0, fmt.Errorf("workload: unknown process %q (want poisson, gamma, weibull)", s)
}

// Dist is an inter-arrival process with its shape parameter.
type Dist struct {
	Process Process
	// Shape parameterizes Gamma/Weibull; Poisson ignores it. Zero defaults
	// to 1 (which makes all three processes Poisson-like in CV).
	Shape float64
}

// distJSON is the spec-file form of Dist.
type distJSON struct {
	Process string  `json:"process"`
	Shape   float64 `json:"shape,omitempty"`
}

// MarshalJSON encodes the process by label.
func (d Dist) MarshalJSON() ([]byte, error) {
	return json.Marshal(distJSON{Process: d.Process.String(), Shape: d.Shape})
}

// UnmarshalJSON decodes the labeled form.
func (d *Dist) UnmarshalJSON(data []byte) error {
	var j distJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	p, err := parseProcess(j.Process)
	if err != nil {
		return err
	}
	d.Process, d.Shape = p, j.Shape
	return nil
}

// shape returns the effective shape with the zero default applied.
func (d Dist) shape() float64 {
	if d.Shape == 0 {
		return 1
	}
	return d.Shape
}

// Duration is a time.Duration that marshals as a parseable string ("20ms")
// in spec files.
type Duration time.Duration

// MarshalJSON encodes the duration as its String form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts either a duration string or a bare nanosecond count.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("workload: bad duration %q: %w", s, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(data, &ns); err != nil {
		return fmt.Errorf("workload: duration must be a string or nanoseconds: %w", err)
	}
	*d = Duration(ns)
	return nil
}

// Cohort is one client class population within a spec. Ranges are inclusive
// two-element [lo, hi] arrays in the JSON form.
type Cohort struct {
	// Name labels the cohort in reports.
	Name string `json:"name"`
	// Class is the latency class admission reports the cohort under.
	Class Class `json:"class"`
	// Weight is the cohort's share of the client population, relative to
	// the other cohorts' weights.
	Weight float64 `json:"weight"`
	// Arrival is the inter-arrival gap process; the gaps are warped through
	// the spec's window rate profile.
	Arrival Dist `json:"arrival"`
	// Tasks bounds the tasks per client.
	Tasks [2]int `json:"tasks"`
	// Util bounds each client's total utilization (uniform draw).
	Util [2]float64 `json:"util"`
	// Period bounds the log-uniform task period distribution.
	Period [2]Duration `json:"period"`
	// Parallel bounds the parallel optional parts per task (np). The
	// cluster simulation runs mandatory and wind-up parts only; np still
	// shapes the task profile the admission analysis prices.
	Parallel [2]int `json:"parallel,omitempty"`
	// Lifetime bounds how long a client stays active after arrival
	// (uniform draw). [0, 0] means active until the horizon.
	Lifetime [2]Duration `json:"lifetime,omitempty"`
}

// Window is one rate regime over a fraction of the horizon. Windows must
// tile [0, 1] contiguously in order.
type Window struct {
	// Name labels the window in per-window report tables.
	Name string `json:"name"`
	// Start and End are fractions of the horizon in [0, 1].
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Rate is the window's relative arrival-rate multiplier (> 0). Client
	// arrivals and synthesized ticks concentrate in high-rate windows.
	Rate float64 `json:"rate"`
}

// Spec declares a workload: cohorts over a windowed rate profile. A Spec is
// horizon-free — windows are fractions — so one spec drives any -horizon.
type Spec struct {
	Name string `json:"name"`
	// Symbols is the symbol-universe size (default 4096, matching the
	// builtin population).
	Symbols int      `json:"symbols,omitempty"`
	Cohorts []Cohort `json:"cohorts"`
	// Windows is the rate profile; empty means one flat window.
	Windows []Window `json:"windows,omitempty"`
}

// DefaultSymbols is the symbol-universe size when a spec leaves it zero,
// equal to the builtin population's universe.
const DefaultSymbols = 4096

// maxSymbols bounds Symbols so replay-file validation can reject garbage.
const maxSymbols = 1 << 24

// withDefaults returns the spec with zero fields resolved.
func (s Spec) withDefaults() Spec {
	if s.Symbols == 0 {
		s.Symbols = DefaultSymbols
	}
	if len(s.Windows) == 0 {
		s.Windows = []Window{{Name: "all", Start: 0, End: 1, Rate: 1}}
	}
	return s
}

// Validate reports the first problem with the spec, after defaults.
func (s Spec) Validate() error {
	s = s.withDefaults()
	if s.Name == "" {
		return fmt.Errorf("workload: spec needs a name")
	}
	if s.Symbols < 1 || s.Symbols > maxSymbols {
		return fmt.Errorf("workload: symbols %d outside [1, %d]", s.Symbols, maxSymbols)
	}
	if len(s.Cohorts) == 0 {
		return fmt.Errorf("workload: spec needs at least one cohort")
	}
	totalWeight := 0.0
	for i, c := range s.Cohorts {
		if c.Name == "" {
			return fmt.Errorf("workload: cohort %d needs a name", i)
		}
		if int(c.Class) >= NumClasses {
			return fmt.Errorf("workload: cohort %q: invalid class %d", c.Name, c.Class)
		}
		if c.Weight <= 0 || math.IsInf(c.Weight, 0) || math.IsNaN(c.Weight) {
			return fmt.Errorf("workload: cohort %q: weight %v must be positive and finite", c.Name, c.Weight)
		}
		totalWeight += c.Weight
		if c.Arrival.Process > ProcWeibull {
			return fmt.Errorf("workload: cohort %q: invalid process %d", c.Name, c.Arrival.Process)
		}
		if sh := c.Arrival.Shape; sh < 0 || sh > 64 || math.IsNaN(sh) {
			return fmt.Errorf("workload: cohort %q: shape %v outside [0, 64]", c.Name, sh)
		}
		if c.Tasks[0] < 1 || c.Tasks[1] < c.Tasks[0] || c.Tasks[1] > 64 {
			return fmt.Errorf("workload: cohort %q: tasks range %v outside [1, 64]", c.Name, c.Tasks)
		}
		if !(c.Util[0] > 0) || c.Util[1] < c.Util[0] || c.Util[1] > 16 || math.IsNaN(c.Util[1]) {
			return fmt.Errorf("workload: cohort %q: util range %v outside (0, 16]", c.Name, c.Util)
		}
		if c.Period[0] <= 0 || c.Period[1] < c.Period[0] {
			return fmt.Errorf("workload: cohort %q: bad period range [%v, %v]",
				c.Name, time.Duration(c.Period[0]), time.Duration(c.Period[1]))
		}
		if c.Parallel[0] < 0 || c.Parallel[1] < c.Parallel[0] || c.Parallel[1] > 64 {
			return fmt.Errorf("workload: cohort %q: parallel range %v outside [0, 64]", c.Name, c.Parallel)
		}
		if c.Lifetime[0] < 0 || c.Lifetime[1] < c.Lifetime[0] {
			return fmt.Errorf("workload: cohort %q: bad lifetime range [%v, %v]",
				c.Name, time.Duration(c.Lifetime[0]), time.Duration(c.Lifetime[1]))
		}
	}
	if totalWeight <= 0 || math.IsInf(totalWeight, 0) {
		return fmt.Errorf("workload: cohort weights sum to %v", totalWeight)
	}
	prevEnd := 0.0
	for i, w := range s.Windows {
		if w.Name == "" {
			return fmt.Errorf("workload: window %d needs a name", i)
		}
		if w.Start != prevEnd {
			return fmt.Errorf("workload: window %q starts at %v, want %v (windows must tile [0, 1])",
				w.Name, w.Start, prevEnd)
		}
		if !(w.End > w.Start) || w.End > 1 {
			return fmt.Errorf("workload: window %q spans [%v, %v], want ascending within [0, 1]",
				w.Name, w.Start, w.End)
		}
		if !(w.Rate > 0) || math.IsInf(w.Rate, 0) || w.Rate > 1e6 {
			return fmt.Errorf("workload: window %q rate %v outside (0, 1e6]", w.Name, w.Rate)
		}
		prevEnd = w.End
	}
	if prevEnd != 1 {
		return fmt.Errorf("workload: windows end at %v, must tile [0, 1] exactly", prevEnd)
	}
	return nil
}

// ParseSpec decodes and validates a JSON spec.
func ParseSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("workload: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s.withDefaults(), nil
}

// WriteSpec encodes the spec as indented JSON.
func WriteSpec(w io.Writer, s Spec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(s)
}
