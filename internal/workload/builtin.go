package workload

// BuiltinSpecNames lists the specs shipped in code, in listing order.
func BuiltinSpecNames() []string { return []string{"steady", "flash-crash", "open-close"} }

// BuiltinSpec returns a shipped spec by name. "steady" is the declarative
// form of the builtin population (Poisson arrivals, flat rate); the other
// two are the bursty regimes the steady grid can't discriminate policies
// on: "flash-crash" concentrates a 12x spike of short-lived heavy HFT flow
// mid-horizon, "open-close" books the day's volume into the open and close
// windows.
func BuiltinSpec(name string) (Spec, bool) {
	switch name {
	case "steady":
		return steadySpec(), true
	case "flash-crash":
		return flashCrashSpec(), true
	case "open-close":
		return openCloseSpec(), true
	}
	return Spec{}, false
}

// builtinCohort is the spec form of one builtin class population.
func builtinCohort(name string, class Class, weight float64) Cohort {
	plo, phi := ClassPeriodRange(class)
	ulo, uhi := ClassUtilRange(class)
	return Cohort{
		Name:    name,
		Class:   class,
		Weight:  weight,
		Arrival: Dist{Process: ProcPoisson},
		Tasks:   [2]int{1, 3},
		Util:    [2]float64{ulo, uhi},
		Period:  [2]Duration{Duration(plo), Duration(phi)},
	}
}

func steadySpec() Spec {
	return Spec{
		Name: "steady",
		Cohorts: []Cohort{
			builtinCohort("hft", ClassHFT, 0.2),
			builtinCohort("algo", ClassAlgo, 0.3),
			builtinCohort("retail", ClassRetail, 0.5),
		},
	}.withDefaults()
}

func flashCrashSpec() Spec {
	// The crash cohort: heavy, short-lived HFT flow with Weibull(0.6)
	// clustering — clients pile up inside the spike window and drain out
	// ~15% of the horizon later, so the miss-rate table isolates the
	// spike. The base cohorts trade through the whole session.
	crash := Cohort{
		Name:     "crash-hft",
		Class:    ClassHFT,
		Weight:   0.35,
		Arrival:  Dist{Process: ProcWeibull, Shape: 0.6},
		Tasks:    [2]int{2, 4},
		Util:     [2]float64{0.25, 0.6},
		Period:   [2]Duration{Duration(5e6), Duration(15e6)}, // 5-15ms
		Parallel: [2]int{0, 2},
		Lifetime: [2]Duration{Duration(3e7), Duration(9e7)}, // 30-90ms at 1s horizon scale
	}
	base := []Cohort{
		builtinCohort("hft", ClassHFT, 0.1),
		builtinCohort("algo", ClassAlgo, 0.2),
		builtinCohort("retail", ClassRetail, 0.35),
	}
	return Spec{
		Name:    "flash-crash",
		Cohorts: append(base, crash),
		Windows: []Window{
			{Name: "calm", Start: 0, End: 0.4, Rate: 1},
			{Name: "crash", Start: 0.4, End: 0.55, Rate: 12},
			{Name: "aftershock", Start: 0.55, End: 0.7, Rate: 3},
			{Name: "recovery", Start: 0.7, End: 1, Rate: 1},
		},
	}.withDefaults()
}

func openCloseSpec() Spec {
	algo := builtinCohort("algo", ClassAlgo, 0.35)
	algo.Arrival = Dist{Process: ProcGamma, Shape: 0.5}
	return Spec{
		Name: "open-close",
		Cohorts: []Cohort{
			builtinCohort("hft", ClassHFT, 0.2),
			algo,
			builtinCohort("retail", ClassRetail, 0.45),
		},
		Windows: []Window{
			{Name: "open", Start: 0, End: 0.15, Rate: 6},
			{Name: "session", Start: 0.15, End: 0.85, Rate: 1},
			{Name: "close", Start: 0.85, End: 1, Rate: 8},
		},
	}.withDefaults()
}
