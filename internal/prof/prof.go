// Package prof wires the command-line tools' -cpuprofile/-memprofile flags
// to runtime/pprof, so hot-path work on the simulator always starts from a
// profile of the real sweep workload rather than a synthetic benchmark.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the two file paths, either of which may be
// empty. It returns a stop function that finishes the CPU profile and writes
// the heap profile; the caller must invoke it once, after the measured work,
// even when both paths are empty (it is then a no-op).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // capture the live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
