package sched

import (
	"fmt"
	"time"

	"rtseed/internal/analysis"
	"rtseed/internal/assign"
	"rtseed/internal/core"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/task"
)

// GRMWPConfig configures a middleware-level G-RMWP run: global RM priorities
// with per-release migration of mandatory threads. The paper rejects this
// design for RT-Seed ("global scheduling requires fine-grained processor
// control, but middleware sits atop an operating system", §IV-B); this
// runner implements the closest middleware-level approximation — each
// mandatory thread migrates at every release to the processor with the
// least accumulated real-time CPU time — so the rejected design's overheads
// can be measured rather than assumed.
type GRMWPConfig struct {
	// Set is the task set; priorities are global RM over the whole set.
	Set *task.Set
	// Horizon is how long to run; each task executes Horizon/T_i jobs.
	Horizon time.Duration
	// Policy assigns parallel optional parts to hardware threads.
	Policy assign.Policy
	// Processors caps how many SMT-slot-0 processors the mandatory threads
	// balance across (0 = all cores).
	Processors int
	// OverheadMargin shortens optional deadlines as in PRMWPConfig.
	OverheadMargin time.Duration
}

// GRMWPSystem is an instantiated middleware-level G-RMWP run.
type GRMWPSystem struct {
	Processes map[string]*core.Process

	k       *kernel.Kernel
	ordered []*core.Process
}

// NewGRMWP builds the system: global RM priorities (98 downward over the
// whole set) and a least-loaded migration policy for mandatory threads.
// Optional deadlines come from the single-processor RMWP analysis of the
// whole set — an optimistic bound for global scheduling, which is exactly
// why migration overheads show up as deadline pressure.
func NewGRMWP(k *kernel.Kernel, cfg GRMWPConfig) (*GRMWPSystem, error) {
	if cfg.Set == nil || cfg.Set.Len() == 0 {
		return nil, task.ErrEmptyTaskSet
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("sched: horizon must be positive, got %v", cfg.Horizon)
	}
	if !cfg.Policy.Valid() {
		return nil, fmt.Errorf("sched: invalid assignment policy %d", cfg.Policy)
	}
	topo := k.Machine().Topology()
	m := cfg.Processors
	if m <= 0 || m > topo.Cores {
		m = topo.Cores
	}
	results, err := analysis.RMWP(cfg.Set)
	if err != nil {
		return nil, err
	}
	prios, err := core.RTQPriorities(len(results))
	if err != nil {
		return nil, err
	}
	sys := &GRMWPSystem{
		Processes: make(map[string]*core.Process, cfg.Set.Len()),
		k:         k,
	}
	for i, res := range results {
		tk := res.Task
		od := res.OptionalDeadline - cfg.OverheadMargin
		if od <= 0 {
			return nil, fmt.Errorf("task %s: margin exhausts optional deadline", tk.Name)
		}
		optCPUs, err := assign.HWThreads(topo, cfg.Policy, tk.NumOptional())
		if err != nil {
			return nil, err
		}
		jobs := int(cfg.Horizon / tk.Period)
		if jobs < 1 {
			jobs = 1
		}
		p, err := core.NewProcess(k, core.Config{
			Task:              tk,
			MandatoryPriority: prios[i],
			MandatoryCPU:      0,
			OptionalCPUs:      optCPUs,
			OptionalDeadline:  od,
			Jobs:              jobs,
			Migrate:           sys.leastLoaded(m),
		})
		if err != nil {
			return nil, fmt.Errorf("task %s: %w", tk.Name, err)
		}
		sys.Processes[tk.Name] = p
		sys.ordered = append(sys.ordered, p)
	}
	return sys, nil
}

// leastLoaded returns a migration policy that moves a mandatory thread to
// the SMT-slot-0 hardware thread (among the first m cores) with the least
// accumulated busy time.
func (s *GRMWPSystem) leastLoaded(m int) func(job int, current machine.HWThread) machine.HWThread {
	return func(job int, current machine.HWThread) machine.HWThread {
		best := current
		var bestBusy time.Duration = -1
		for proc := 0; proc < m; proc++ {
			h := machine.HWThread(proc)
			busy := time.Duration(float64(s.k.Now().Duration()) * s.k.Utilization(h, 0))
			if bestBusy < 0 || busy < bestBusy {
				best, bestBusy = h, busy
			}
		}
		return best
	}
}

// Start launches every process in creation order.
func (s *GRMWPSystem) Start() {
	for _, p := range s.ordered {
		p.Start()
	}
}

// Stats aggregates per-task statistics by task name.
func (s *GRMWPSystem) Stats() map[string]task.Stats {
	out := make(map[string]task.Stats, len(s.Processes))
	for name, p := range s.Processes {
		out[name] = p.Stats()
	}
	return out
}

// Migrations sums the mandatory threads' migration counts.
func (s *GRMWPSystem) Migrations() int {
	n := 0
	for _, p := range s.ordered {
		n += p.MandatoryThread().Migrations()
	}
	return n
}
