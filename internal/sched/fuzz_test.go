package sched

import (
	"bytes"
	"testing"

	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/trace"
)

// FuzzBodyVsGoroutine is the differential oracle for the continuation
// executor: the same UUniFast-generated task set runs once with continuation
// bodies and once with the legacy goroutine bodies, and the two trace files
// must be byte-identical. The executors share every kernel handler, so any
// divergence — an extra request, a missing degenerate-op short-circuit, a
// reordered wake — shows up as a differing trace byte. Wired into
// `make fuzz-smoke` for 30s per CI run.
func FuzzBodyVsGoroutine(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(60), false)
	f.Add(uint64(0xbeef), uint8(17), uint8(15), true)
	f.Add(uint64(42), uint8(32), uint8(3), false)
	f.Add(uint64(7), uint8(1), uint8(90), true)
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, utilRaw uint8, releaseOnly bool) {
		n := int(nRaw)%32 + 1
		util := float64(utilRaw%100+1) / 200 // (0, 0.5] per task
		run := func(goroutineOracle bool) ([]byte, int) {
			mach, err := machine.New(machine.Topology{Cores: 4, ThreadsPerCore: 2},
				machine.NoLoad, machine.DefaultCostModel(), seed)
			if err != nil {
				t.Fatal(err)
			}
			e := engine.New()
			k := kernel.New(e, mach)
			var buf bytes.Buffer
			k.SetTrace(trace.New(trace.Config{
				CPUs: mach.Topology().NumHWThreads(),
				Sink: &buf,
			}))
			sys, err := NewManyTask(k, ManyTaskConfig{
				N:                  n,
				Seed:               seed,
				UtilizationPerTask: util,
				ReleaseOnly:        releaseOnly,
				GoroutineOracle:    goroutineOracle,
			})
			if err != nil {
				t.Skip(err) // generator rejected the parameters; same for both runs
			}
			sys.Start()
			// The periodic bodies never exit; run a bounded slice of virtual
			// time and cut both executors off at the same point.
			for i := 0; i < 20000; i++ {
				if !e.Step() {
					break
				}
			}
			k.Shutdown()
			if err := k.Trace().Close(k.ThreadInfos()); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes(), sys.Jobs()
		}
		contTrace, contJobs := run(false)
		gorTrace, gorJobs := run(true)
		if contJobs != gorJobs {
			t.Fatalf("job counts diverge: continuation %d, goroutine oracle %d", contJobs, gorJobs)
		}
		if !bytes.Equal(contTrace, gorTrace) {
			i := 0
			for i < len(contTrace) && i < len(gorTrace) && contTrace[i] == gorTrace[i] {
				i++
			}
			t.Fatalf("traces diverge at byte %d (continuation %d bytes, goroutine oracle %d bytes; seed=%#x n=%d util=%.3f releaseOnly=%v)",
				i, len(contTrace), len(gorTrace), seed, n, util, releaseOnly)
		}
	})
}
