package sched

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"rtseed/internal/analysis"
	"rtseed/internal/assign"
	"rtseed/internal/core"
	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/partition"
	"rtseed/internal/task"
)

func ms(d int) time.Duration { return time.Duration(d) * time.Millisecond }

func newSim(t testing.TB) *kernel.Kernel {
	t.Helper()
	model := machine.DefaultCostModel()
	model.JitterFrac = 0
	m, err := machine.New(machine.Topology{Cores: 8, ThreadsPerCore: 4}, machine.NoLoad, model, 3)
	if err != nil {
		t.Fatal(err)
	}
	return kernel.New(engine.New(), m)
}

func TestGeneralProcessRunsJobs(t *testing.T) {
	k := newSim(t)
	tk := task.Uniform("g", ms(20), ms(20), 0, 0, ms(100))
	g, err := NewGeneralProcess(k, tk, 90, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	k.Run()
	stats := g.Stats()
	if stats.Jobs != 3 || stats.DeadlineMisses != 0 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestGeneralProcessValidation(t *testing.T) {
	k := newSim(t)
	tk := task.Uniform("g", ms(20), ms(20), 0, 0, ms(100))
	if _, err := NewGeneralProcess(k, tk, 90, 0, 0); err == nil {
		t.Fatal("zero jobs accepted")
	}
	if _, err := NewGeneralProcess(k, task.Task{}, 90, 0, 1); err == nil {
		t.Fatal("invalid task accepted")
	}
}

// Fig. 3: under general scheduling, R(t) starts at m+w and drains in one
// block. Under semi-fixed-priority scheduling the mandatory part drains m,
// the task sleeps until OD, then the wind-up part drains w.
func TestFig3Shapes(t *testing.T) {
	// General scheduling trace.
	kg := newSim(t)
	rec := NewRecorder(kg)
	tk := task.Uniform("tau", ms(20), ms(20), 0, 0, ms(100))
	g, err := NewGeneralProcess(kg, tk, 90, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	kg.Run()
	gen := rec.RemainingTime(g.Thread(), engine.At(0), engine.At(ms(100)), tk.WCET())
	if len(gen) < 3 {
		t.Fatalf("trace too short: %v", gen)
	}
	if gen[0].R != ms(40) {
		t.Fatalf("general R(0) = %v, want m+w = 40ms", gen[0].R)
	}
	last := gen[len(gen)-1]
	if last.R != 0 {
		t.Fatalf("general trace must drain to 0, got %v", last.R)
	}
	// All execution is contiguous: drained by ~m+w+overhead.
	if last.T > ms(45) {
		t.Fatalf("general drained at %v, want ~40ms", last.T)
	}

	// Semi-fixed-priority trace: mandatory and wind-up phases of an
	// RT-Seed process with an overrunning optional part.
	ks := newSim(t)
	recS := NewRecorder(ks)
	stk := task.Uniform("tau", ms(20), ms(20), time.Second, 1, ms(100))
	cpus, _ := assign.HWThreads(ks.Machine().Topology(), assign.OneByOne, 1)
	var odAbs, windupStart engine.Time
	p, err := core.NewProcess(ks, core.Config{
		Task: stk, MandatoryPriority: 90, MandatoryCPU: 0,
		OptionalCPUs: cpus, OptionalDeadline: ms(70), Jobs: 1,
		Probes: core.Probes{OnWindupStart: func(job int, od, s engine.Time) {
			odAbs, windupStart = od, s
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	ks.Run()
	// Mandatory phase: R drains from m to 0 before OD.
	mand := recS.RemainingTime(p.MandatoryThread(), engine.At(0), odAbs, stk.Mandatory)
	if mand[0].R != ms(20) {
		t.Fatalf("semi-fixed mandatory R(0) = %v, want 20ms", mand[0].R)
	}
	if mand[len(mand)-1].R != 0 {
		t.Fatalf("mandatory phase must drain before OD: %v", mand)
	}
	if mand[len(mand)-1].T > ms(25) {
		t.Fatalf("mandatory drained at %v, want ~20ms", mand[len(mand)-1].T)
	}
	// Wind-up phase: R drains from w to 0 starting at OD.
	wind := recS.RemainingTime(p.MandatoryThread(), windupStart, engine.At(ms(100)), stk.Windup)
	if wind[len(wind)-1].R != 0 {
		t.Fatalf("wind-up must drain to 0: %v", wind)
	}
	if windupStart.Duration() < ms(70) {
		t.Fatalf("wind-up started at %v, before OD", windupStart)
	}
}

func TestRecorderExecuted(t *testing.T) {
	k := newSim(t)
	rec := NewRecorder(k)
	th := k.MustNewThread(kernel.ThreadConfig{Name: "t", Priority: 50, CPU: 0}, func(c *kernel.TCB) {
		c.Compute(ms(10))
		c.Sleep(ms(10))
		c.Compute(ms(10))
	})
	th.Start()
	k.Run()
	total := rec.Executed(th, engine.At(0), engine.At(time.Hour))
	if total < ms(20) || total > ms(21) {
		t.Fatalf("executed %v, want ~20ms", total)
	}
	segs := rec.Segments(th)
	if len(segs) != 2 {
		t.Fatalf("%d segments, want 2 (split by the sleep)", len(segs))
	}
}

func TestPRMWPSystemMultiTask(t *testing.T) {
	k := newSim(t)
	set := task.MustNewSet(
		task.Uniform("fast", ms(5), ms(5), ms(500), 2, ms(50)),
		task.Uniform("slow", ms(10), ms(10), ms(500), 2, ms(100)),
	)
	// Worst-fit spreads the two tasks over two processors and All-by-All
	// keeps each task's optional parts on its own core, so the tasks'
	// optional threads never share a hardware thread (see
	// TestCrossTaskOptionalStarvation for what sharing does).
	sys, err := NewPRMWP(k, PRMWPConfig{
		Set:            set,
		Horizon:        ms(300),
		Policy:         assign.AllByAll,
		Heuristic:      partition.WorstFit,
		OverheadMargin: ms(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	k.Run()
	stats := sys.Stats()
	if stats["fast"].Jobs != 6 {
		t.Fatalf("fast ran %d jobs, want 6", stats["fast"].Jobs)
	}
	if stats["slow"].Jobs != 3 {
		t.Fatalf("slow ran %d jobs, want 3", stats["slow"].Jobs)
	}
	for name, st := range stats {
		if st.DeadlineMisses != 0 {
			t.Fatalf("%s missed %d deadlines", name, st.DeadlineMisses)
		}
		if st.TerminatedParts == 0 {
			t.Fatalf("%s: overrunning parts should be terminated", name)
		}
	}
}

// Reproduction finding (outside the paper's n=1 evaluation): RT-Seed's
// protocol gates the wind-up on a wake-up from every parallel optional
// thread (Fig. 6). A POSIX timer's SIGALRM only runs its handler when the
// target thread is scheduled — so when two tasks' optional threads share a
// hardware thread, the lower-priority task's optional threads are starved by
// the higher-priority task's overrunning optional parts, its termination
// acknowledgements arrive late, and its wind-up part can slip past the
// deadline even though the RMWP analysis admits the set. The paper's
// evaluation (one task, fewer tasks than processors, §V-A) never exercises
// this coupling.
func TestCrossTaskOptionalStarvation(t *testing.T) {
	k := newSim(t)
	set := task.MustNewSet(
		task.Uniform("fast", ms(5), ms(5), ms(500), 2, ms(50)),
		task.Uniform("slow", ms(10), ms(10), ms(500), 2, ms(100)),
	)
	// First-fit packs both tasks on processor 0; One-by-One overlays both
	// tasks' optional parts on hardware threads 0 and 1.
	sys, err := NewPRMWP(k, PRMWPConfig{
		Set:            set,
		Horizon:        ms(300),
		Policy:         assign.OneByOne,
		Heuristic:      partition.FirstFit,
		OverheadMargin: ms(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	k.Run()
	stats := sys.Stats()
	if stats["fast"].DeadlineMisses != 0 {
		t.Fatalf("fast (highest priority) missed %d deadlines", stats["fast"].DeadlineMisses)
	}
	if stats["slow"].DeadlineMisses == 0 {
		t.Fatal("expected the starvation coupling to delay slow's wind-up past its deadline; " +
			"if this now passes, the middleware changed behaviour — update the docs")
	}
}

func TestPRMWPValidation(t *testing.T) {
	k := newSim(t)
	set := task.MustNewSet(task.Uniform("a", ms(5), ms(5), 0, 0, ms(50)))
	if _, err := NewPRMWP(k, PRMWPConfig{Set: nil, Horizon: ms(100), Policy: assign.OneByOne}); err == nil {
		t.Fatal("nil set accepted")
	}
	if _, err := NewPRMWP(k, PRMWPConfig{Set: set, Horizon: 0, Policy: assign.OneByOne}); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := NewPRMWP(k, PRMWPConfig{Set: set, Horizon: ms(100), Policy: assign.Policy(0)}); err == nil {
		t.Fatal("invalid policy accepted")
	}
	if _, err := NewPRMWP(k, PRMWPConfig{Set: set, Horizon: ms(100), Policy: assign.OneByOne, OverheadMargin: time.Hour}); err == nil {
		t.Fatal("margin larger than OD accepted")
	}
}

// Partitioned scheduling never migrates; the idealized global simulator
// migrates under multi-task interference — the §IV-B design argument.
func TestGlobalVsPartitionedMigrations(t *testing.T) {
	set := task.MustNewSet(
		task.Uniform("a", ms(10), ms(5), 0, 0, ms(40)),
		task.Uniform("b", ms(10), ms(5), 0, 0, ms(50)),
		task.Uniform("c", ms(10), ms(5), 0, 0, ms(60)),
	)
	g, err := SimulateGRMWP(set, 2, 600*time.Millisecond, ms(1), 100*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if g.Jobs == 0 {
		t.Fatal("no jobs simulated")
	}
	if g.Migrations == 0 {
		t.Fatal("three tasks on two processors must migrate under global scheduling")
	}
	if p := SimulatePRMWPMigrations(); p.Migrations != 0 {
		t.Fatal("partitioned scheduling must not migrate")
	}
}

func TestGlobalSimValidation(t *testing.T) {
	set := task.MustNewSet(task.Uniform("a", ms(10), ms(5), 0, 0, ms(40)))
	if _, err := SimulateGRMWP(nil, 2, ms(100), ms(1), 0); err == nil {
		t.Fatal("nil set accepted")
	}
	if _, err := SimulateGRMWP(set, 0, ms(100), ms(1), 0); err == nil {
		t.Fatal("zero processors accepted")
	}
	if _, err := SimulateGRMWP(set, 1, 0, ms(1), 0); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := SimulateGRMWP(set, 1, ms(100), 0, 0); err == nil {
		t.Fatal("zero quantum accepted")
	}
}

// A single task on one processor meets all deadlines under the global
// simulator too (sanity against the RMWP structure).
func TestGlobalSingleTaskMeetsDeadlines(t *testing.T) {
	set := task.MustNewSet(task.Uniform("a", ms(10), ms(10), 0, 0, ms(50)))
	g, err := SimulateGRMWP(set, 1, 500*time.Millisecond, ms(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.DeadlineMisses != 0 {
		t.Fatalf("misses %d, want 0", g.DeadlineMisses)
	}
	if g.Migrations != 0 {
		t.Fatalf("single processor cannot migrate, got %d", g.Migrations)
	}
}

// RM-US (footnote 1): a task whose utilization exceeds M/(3M-2) takes the
// reserved HPQ priority 99 and still runs correctly.
func TestPRMWPWithRMUS(t *testing.T) {
	k := newSim(t)
	// On 8 cores the RM-US threshold is 8/22 ~ 0.364; "heavy" (U=0.6)
	// exceeds it, "light" (U=0.2) does not.
	set := task.MustNewSet(
		task.Uniform("heavy", ms(30), ms(30), ms(500), 2, ms(100)),
		task.Uniform("light", ms(10), ms(10), 0, 0, ms(100)),
	)
	sys, err := NewPRMWP(k, PRMWPConfig{
		Set:            set,
		Horizon:        ms(300),
		Policy:         assign.AllByAll,
		Heuristic:      partition.WorstFit,
		OverheadMargin: ms(3),
		UseRMUS:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Processes["heavy"].MandatoryThread().Priority(); got != core.HPQPriority {
		t.Fatalf("heavy task priority %d, want HPQ %d", got, core.HPQPriority)
	}
	if got := sys.Processes["light"].MandatoryThread().Priority(); got == core.HPQPriority {
		t.Fatal("light task must not take the HPQ slot")
	}
	sys.Start()
	k.Run()
	for name, st := range sys.Stats() {
		if st.DeadlineMisses != 0 {
			t.Fatalf("%s missed %d deadlines", name, st.DeadlineMisses)
		}
	}
}

// Two RM-US-heavy tasks cannot share one processor's HPQ slot.
func TestPRMWPRMUSOverflow(t *testing.T) {
	k := newSim(t)
	// Both tasks exceed the RM-US threshold (8/22 ~ 0.364) yet are jointly
	// RMWP-admissible on one processor, so first-fit packs them together
	// and the HPQ overflows.
	set := task.MustNewSet(
		task.Uniform("h1", ms(2), ms(2), 0, 0, ms(10)),
		task.Uniform("h2", ms(39), ms(2), 0, 0, ms(100)),
	)
	_, err := NewPRMWP(k, PRMWPConfig{
		Set:       set,
		Horizon:   ms(100),
		Policy:    assign.OneByOne,
		Heuristic: partition.FirstFit, // packs both on processor 0
		UseRMUS:   true,
	})
	if err == nil {
		t.Fatal("two HPQ tasks on one processor accepted")
	}
}

func TestGanttRendersSchedule(t *testing.T) {
	k := newSim(t)
	rec := NewRecorder(k)
	// Two threads on one CPU: hi runs [0,10ms), lo runs [10ms,20ms).
	hi := k.MustNewThread(kernel.ThreadConfig{Name: "hi", Priority: 60, CPU: 0}, func(c *kernel.TCB) {
		c.Compute(ms(10))
	})
	lo := k.MustNewThread(kernel.ThreadConfig{Name: "lo", Priority: 50, CPU: 0}, func(c *kernel.TCB) {
		c.Compute(ms(10))
	})
	hi.Start()
	lo.Start()
	k.Run()
	out := Gantt(rec, []*kernel.Thread{hi, lo}, engine.At(0), engine.At(ms(20)), 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("gantt lines:\n%s", out)
	}
	hiRow := lines[1][strings.Index(lines[1], " ")+1:]
	loRow := lines[2][strings.Index(lines[2], " ")+1:]
	// hi occupies the first half, lo the second.
	if !strings.HasPrefix(hiRow, "##") || !strings.HasSuffix(hiRow, "..") {
		t.Fatalf("hi row %q", hiRow)
	}
	if !strings.HasPrefix(loRow, "..") || !strings.HasSuffix(loRow, "##") {
		t.Fatalf("lo row %q", loRow)
	}
	if Gantt(rec, nil, engine.At(10), engine.At(10), 5) != "" {
		t.Fatal("empty span should render nothing")
	}
}

// Middleware-level G-RMWP: mandatory threads migrate to the least-loaded
// processor at every release. The §IV-B trade-off is measurable: migrations
// happen (unlike P-RMWP's zero) and each one costs cross-core overhead.
func TestGRMWPMigratesAndRuns(t *testing.T) {
	k := newSim(t)
	set := task.MustNewSet(
		task.Uniform("a", ms(10), ms(5), 0, 0, ms(50)),
		task.Uniform("b", ms(10), ms(5), 0, 0, ms(60)),
		task.Uniform("c", ms(10), ms(5), 0, 0, ms(80)),
	)
	sys, err := NewGRMWP(k, GRMWPConfig{
		Set:            set,
		Horizon:        600 * time.Millisecond,
		Policy:         assign.OneByOne,
		Processors:     2,
		OverheadMargin: ms(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	k.Run()
	stats := sys.Stats()
	totalJobs := 0
	for name, st := range stats {
		if st.Jobs == 0 {
			t.Fatalf("%s ran no jobs", name)
		}
		totalJobs += st.Jobs
	}
	if sys.Migrations() == 0 {
		t.Fatal("three tasks balancing over two processors should migrate")
	}
	if sys.Migrations() > totalJobs {
		t.Fatalf("at most one migration per release: %d migrations, %d jobs",
			sys.Migrations(), totalJobs)
	}
}

func TestGRMWPValidation(t *testing.T) {
	k := newSim(t)
	set := task.MustNewSet(task.Uniform("a", ms(5), ms(5), 0, 0, ms(50)))
	if _, err := NewGRMWP(k, GRMWPConfig{Set: nil, Horizon: ms(100), Policy: assign.OneByOne}); err == nil {
		t.Fatal("nil set accepted")
	}
	if _, err := NewGRMWP(k, GRMWPConfig{Set: set, Horizon: 0, Policy: assign.OneByOne}); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := NewGRMWP(k, GRMWPConfig{Set: set, Horizon: ms(100), Policy: assign.Policy(9)}); err == nil {
		t.Fatal("invalid policy accepted")
	}
}

// The migration overhead shows up in Δm: the same task set under G-RMWP has
// a larger mean release-to-mandatory-start latency than under P-RMWP.
func TestGRMWPReleaseLatencyExceedsPRMWP(t *testing.T) {
	set := task.MustNewSet(
		task.Uniform("a", ms(10), ms(5), 0, 0, ms(50)),
		task.Uniform("b", ms(10), ms(5), 0, 0, ms(60)),
		task.Uniform("c", ms(10), ms(5), 0, 0, ms(80)),
	)
	meanStartLag := func(stats map[string]task.Stats, recsOf func(name string) []task.JobRecord) time.Duration {
		var sum time.Duration
		n := 0
		for name := range stats {
			for _, rec := range recsOf(name) {
				sum += rec.MandatoryStart - rec.Release
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / time.Duration(n)
	}

	kg := newSim(t)
	g, err := NewGRMWP(kg, GRMWPConfig{
		Set: set, Horizon: 600 * time.Millisecond, Policy: assign.OneByOne,
		Processors: 2, OverheadMargin: ms(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	kg.Run()
	gLag := meanStartLag(g.Stats(), func(name string) []task.JobRecord { return g.Processes[name].Records() })

	kp := newSim(t)
	p, err := NewPRMWP(kp, PRMWPConfig{
		Set: set, Horizon: 600 * time.Millisecond, Policy: assign.OneByOne,
		Heuristic: partition.WorstFit, OverheadMargin: ms(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	kp.Run()
	pLag := meanStartLag(p.Stats(), func(name string) []task.JobRecord { return p.Processes[name].Records() })

	if gLag <= pLag {
		t.Fatalf("G-RMWP release latency %v should exceed P-RMWP %v (migration overhead)", gLag, pLag)
	}
}

func TestExportJSON(t *testing.T) {
	k := newSim(t)
	rec := NewRecorder(k)
	th := k.MustNewThread(kernel.ThreadConfig{Name: "t", Priority: 55, CPU: 2}, func(c *kernel.TCB) {
		c.Compute(ms(10))
		c.Sleep(ms(5))
		c.Compute(ms(5))
	})
	th.Start()
	k.Run()
	var buf bytes.Buffer
	if err := ExportJSON(&buf, rec, []*kernel.Thread{th}, engine.At(0), engine.At(ms(30))); err != nil {
		t.Fatal(err)
	}
	var out TraceJSON
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.HorizonNs != int64(ms(30)) {
		t.Fatalf("horizon %d", out.HorizonNs)
	}
	if len(out.Segments) != 2 {
		t.Fatalf("%d segments, want 2", len(out.Segments))
	}
	for _, s := range out.Segments {
		if s.Thread != "t" || s.CPU != 2 || s.Priority != 55 {
			t.Fatalf("segment metadata %+v", s)
		}
		if s.FromNs < 0 || s.ToNs <= s.FromNs || s.ToNs > out.HorizonNs {
			t.Fatalf("segment bounds %+v", s)
		}
	}
}

// The independent validator finds no violations in a standard P-RMWP run —
// overrunning, completing and discarded parts alike.
func TestValidateCleanRun(t *testing.T) {
	for _, optLen := range []time.Duration{time.Second, ms(5)} {
		k := newSim(t)
		rec := NewRecorder(k)
		tk := task.Uniform("v", ms(20), ms(20), optLen, 4, ms(100))
		cpus, _ := assign.HWThreads(k.Machine().Topology(), assign.OneByOne, 4)
		p, err := core.NewProcess(k, core.Config{
			Task: tk, MandatoryPriority: 90, MandatoryCPU: 0,
			OptionalCPUs: cpus, OptionalDeadline: ms(70), Jobs: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		k.Run()
		MustValidate(t, rec, p, tk, ms(70))
	}
}

// The validator catches a genuinely broken schedule: the try-catch
// mechanism's lost timer makes optional parts run to completion and the
// next job overlap, which rule `ordering` and the part records expose as a
// deadline pathology — but crucially the run still satisfies the structural
// rules, so Validate stays quiet; instead, corrupt a record artificially.
func TestValidateDetectsCorruption(t *testing.T) {
	k := newSim(t)
	rec := NewRecorder(k)
	tk := task.Uniform("v", ms(20), ms(20), time.Second, 2, ms(100))
	cpus, _ := assign.HWThreads(k.Machine().Topology(), assign.OneByOne, 2)
	p, err := core.NewProcess(k, core.Config{
		Task: tk, MandatoryPriority: 90, MandatoryCPU: 0,
		OptionalCPUs: cpus, OptionalDeadline: ms(70), Jobs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	k.Run()
	// Lie about the optional deadline: claim it was later than it was, so
	// the recorded wind-up starts "too early".
	vs := Validate(rec, p, tk, ms(95))
	if len(vs) == 0 {
		t.Fatal("validator missed the windup-after-od breach")
	}
	found := false
	for _, v := range vs {
		if v.Rule == "windup-after-od" {
			found = true
		}
		if v.String() == "" {
			t.Fatal("empty violation string")
		}
	}
	if !found {
		t.Fatalf("wrong rules: %v", vs)
	}
}

// Cross-validation of theory against execution: for random RMWP-schedulable
// task sets, every job measured on the simulator meets its deadline, and
// every task's wind-up completes within the analysis' response-time bound
// plus the overhead margin. This ties analysis.RMWP to what the middleware
// actually does.
func TestAnalysisBoundsHoldInExecution(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		set, err := task.Generate(task.GenConfig{
			N:                3,
			TotalUtilization: 0.4,
			MinPeriod:        80 * time.Millisecond,
			MaxPeriod:        400 * time.Millisecond,
			Seed:             seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := analysis.RMWP(set); err != nil {
			continue // only schedulable sets are in scope
		}
		k := newSim(t)
		margin := 10 * time.Millisecond
		sys, err := NewPRMWP(k, PRMWPConfig{
			Set:            set,
			Horizon:        time.Second,
			Policy:         assign.AllByAll,
			Heuristic:      partition.WorstFit,
			OverheadMargin: margin,
		})
		if err != nil {
			// A margin can exhaust a tight optional deadline; skip those.
			continue
		}
		sys.Start()
		k.Run()
		for name, p := range sys.Processes {
			for _, rec := range p.Records() {
				if !rec.Met() {
					t.Fatalf("seed %d: task %s job %d missed (%v > %v) despite passing analysis",
						seed, name, rec.Job, rec.Finish, rec.Deadline)
				}
			}
		}
	}
}

// Dynamic-priority baseline (§I): EDF with wind-up parts computes the
// optional window online. For a single task it grants the same window as
// RMWP's offline OD — but pays one O(active) computation per job, the cost
// semi-fixed-priority scheduling eliminates.
func TestEDFWPSingleTaskMatchesOfflineOD(t *testing.T) {
	set := task.MustNewSet(task.Uniform("a", ms(20), ms(20), 0, 0, ms(100)))
	res, err := SimulateEDFWP(set, 500*time.Millisecond, ms(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 5 || res.DeadlineMisses != 0 {
		t.Fatalf("result %+v", res)
	}
	if res.OnlineCalcs != 5 {
		t.Fatalf("online calcs %d, want one per job", res.OnlineCalcs)
	}
	// RMWP: OD = D - w = 80ms; mandatory done at 20ms; window = 60ms.
	if res.MeanOptionalWindow != 60*time.Millisecond {
		t.Fatalf("optional window %v, want 60ms (OD - mandatory completion)", res.MeanOptionalWindow)
	}
}

// Multi-task: EDF meets deadlines at moderate utilization and the online
// work grows with the number of concurrently active jobs.
func TestEDFWPMultiTask(t *testing.T) {
	set := task.MustNewSet(
		task.Uniform("a", ms(10), ms(10), 0, 0, ms(50)),
		task.Uniform("b", ms(10), ms(10), 0, 0, ms(80)),
		task.Uniform("c", ms(10), ms(10), 0, 0, ms(100)),
	)
	res, err := SimulateEDFWP(set, time.Second, ms(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("misses %d at U=%.2f", res.DeadlineMisses, set.Utilization())
	}
	if res.OnlineCalcs == 0 || res.OnlineWork <= res.OnlineCalcs {
		t.Fatalf("expected multi-job online scans: calcs=%d work=%d", res.OnlineCalcs, res.OnlineWork)
	}
}

func TestEDFWPValidation(t *testing.T) {
	set := task.MustNewSet(task.Uniform("a", ms(10), ms(10), 0, 0, ms(50)))
	if _, err := SimulateEDFWP(nil, time.Second, ms(1)); err == nil {
		t.Fatal("nil set accepted")
	}
	if _, err := SimulateEDFWP(set, 0, ms(1)); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := SimulateEDFWP(set, time.Second, 0); err == nil {
		t.Fatal("zero quantum accepted")
	}
}
