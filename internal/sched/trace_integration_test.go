package sched

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"rtseed/internal/assign"
	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/partition"
	"rtseed/internal/task"
	"rtseed/internal/trace"
)

// Ground truth: the per-task counts the trace analyzer derives from a
// file-backed trace must exactly match the simulator's own Stats — jobs,
// completed/terminated/discarded parts, and deadline misses. The
// starvation config is used on purpose: it produces nonzero misses, so the
// miss path is exercised, not just asserted zero.
func TestTraceCountsMatchStats(t *testing.T) {
	k := newSim(t)
	var buf bytes.Buffer
	// A small ring forces mid-run spills; file-backed mode must still
	// retain every record.
	k.SetTrace(trace.New(trace.Config{
		CPUs:     k.Machine().Topology().NumHWThreads(),
		Capacity: 64,
		Sink:     &buf,
	}))
	set := task.MustNewSet(
		task.Uniform("fast", ms(5), ms(5), ms(500), 2, ms(50)),
		task.Uniform("slow", ms(10), ms(10), ms(500), 2, ms(100)),
	)
	sys, err := NewPRMWP(k, PRMWPConfig{
		Set:            set,
		Horizon:        ms(300),
		Policy:         assign.OneByOne,
		Heuristic:      partition.FirstFit,
		OverheadMargin: ms(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	k.Run()
	if err := k.Trace().Close(k.ThreadInfos()); err != nil {
		t.Fatal(err)
	}

	decoded, err := trace.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if decoded.TotalLost() != 0 {
		t.Fatalf("file-backed trace lost %d records", decoded.TotalLost())
	}
	a := trace.Analyze(decoded)
	if !a.NonEmpty() {
		t.Fatal("analysis is empty")
	}

	stats := sys.Stats()
	var missTotal int
	for name, st := range stats {
		ts := a.TaskByName(name)
		if ts == nil {
			t.Fatalf("task %s missing from trace: %+v", name, a.Tasks)
		}
		if ts.Jobs != st.Jobs {
			t.Errorf("%s: trace jobs %d, stats %d", name, ts.Jobs, st.Jobs)
		}
		if ts.Completed != st.CompletedParts {
			t.Errorf("%s: trace completed %d, stats %d", name, ts.Completed, st.CompletedParts)
		}
		if ts.Terminated != st.TerminatedParts {
			t.Errorf("%s: trace terminated %d, stats %d", name, ts.Terminated, st.TerminatedParts)
		}
		if ts.Discarded != st.DiscardedParts {
			t.Errorf("%s: trace discarded %d, stats %d", name, ts.Discarded, st.DiscardedParts)
		}
		if ts.Misses != st.DeadlineMisses {
			t.Errorf("%s: trace misses %d, stats %d", name, ts.Misses, st.DeadlineMisses)
		}
		missTotal += st.DeadlineMisses
	}
	if missTotal == 0 {
		t.Fatal("starvation config should produce misses; the miss path went untested")
	}
	if len(a.Misses) != missTotal {
		t.Fatalf("attributed %d misses, stats say %d", len(a.Misses), missTotal)
	}
	for _, m := range a.Misses {
		if m.Lateness <= 0 {
			t.Fatalf("miss with non-positive lateness: %+v", m)
		}
	}
}

// A Recorder replayed over a decoded trace file reconstructs the same
// segments as the live tap.
func TestRecorderReplayFromFile(t *testing.T) {
	k := newSim(t)
	live := NewRecorder(k)
	th := k.MustNewThread(kernel.ThreadConfig{Name: "t", Priority: 50, CPU: 0}, func(c *kernel.TCB) {
		c.Compute(ms(10))
		c.Sleep(ms(10))
		c.Compute(ms(10))
	})
	th.Start()
	k.Run()

	var buf bytes.Buffer
	if err := k.Trace().WriteTo(&buf, k.ThreadInfos()); err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	replay := &Recorder{
		running:  make(map[uint32]engine.Time),
		segments: make(map[uint32][]Segment),
	}
	for _, rec := range decoded.Records {
		replay.Observe(rec)
	}
	want := live.Segments(th)
	got := replay.Segments(th)
	if len(got) != len(want) {
		t.Fatalf("replayed %d segments, live saw %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("segment %d: replay %+v, live %+v", i, got[i], want[i])
		}
	}
}

// Golden guard for the Recorder→trace migration: the Gantt chart and raw
// segments of a fixed P-RMWP scenario, captured before the Recorder was
// rebuilt on the trace stream, must stay byte-identical.
const goldenGantt = `       0s ... 120ms (2.5ms per column)
a.mand ####+...........+##.####+...........+##.........
a.opt0 ....############+.......############+...........
a.opt1 ......###########.............#######...........
b.mand ######+.................######+.................
a.mand 28µs 10.074ms
a.mand 42.232575ms 47.232575ms
a.mand 50.055ms 60.113ms
a.mand 92.232575ms 97.284575ms
a.opt0 10.089575ms 40.200575ms
a.opt0 60.128575ms 90.239575ms
a.opt1 15.043575ms 42.223ms
a.opt1 75.070575ms 92.223ms
b.mand 28µs 15.028ms
b.mand 60.055ms 75.055ms
`

func TestGanttGoldenUnchanged(t *testing.T) {
	model := machine.DefaultCostModel()
	model.JitterFrac = 0
	m, err := machine.New(machine.Topology{Cores: 4, ThreadsPerCore: 4}, machine.NoLoad, model, 3)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(engine.New(), m)
	rec := NewRecorder(k)
	set := task.MustNewSet(
		task.Uniform("a", ms(10), ms(5), ms(30), 2, ms(50)),
		task.Uniform("b", ms(10), ms(5), 0, 0, ms(60)),
	)
	sys, err := NewPRMWP(k, PRMWPConfig{
		Set:            set,
		Horizon:        ms(120),
		Policy:         assign.OneByOne,
		Heuristic:      partition.WorstFit,
		OverheadMargin: ms(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	k.Run()

	pa, pb := sys.Processes["a"], sys.Processes["b"]
	threads := append([]*kernel.Thread{pa.MandatoryThread()}, pa.OptionalThreads()...)
	threads = append(threads, pb.MandatoryThread())

	var b strings.Builder
	b.WriteString(Gantt(rec, threads, engine.At(0), engine.At(ms(120)), 48))
	for _, th := range threads {
		for _, s := range rec.Segments(th) {
			fmt.Fprintf(&b, "%s %v %v\n", th.Name(), s.From, s.To)
		}
	}
	if got := b.String(); got != goldenGantt {
		t.Fatalf("schedule diverged from the pre-migration golden.\ngot:\n%s\nwant:\n%s", got, goldenGantt)
	}
}
