package sched

import (
	"fmt"
	"time"

	"rtseed/internal/core"
	"rtseed/internal/task"
)

// Violation is one breach of the semi-fixed-priority execution rules found
// by Validate.
type Violation struct {
	Rule string
	Job  int
	At   time.Duration
	Msg  string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("job %d @%v: %s: %s", v.Job, v.At, v.Rule, v.Msg)
}

// Validate independently cross-checks a finished process against the
// model's execution rules, using only the recorded schedule (run segments
// and job records) — not the middleware's own bookkeeping. The rules are
// the paper's §II/§III semantics:
//
//  1. ordering — within each job: release ≤ mandatory start ≤ wind-up
//     start ≤ finish, and the next job's mandatory never starts before
//     this job finishes.
//  2. windup-after-od — when any optional part was terminated, the wind-up
//     part starts at or after the optional deadline.
//  3. no-optional-during-mandatory — no optional thread runs on the
//     mandatory thread's hardware thread while the mandatory thread runs
//     there (they share a CPU, and NRTQ < RTQ priorities).
//  4. part-accounting — every part's executed time is consistent with its
//     outcome, and the per-job part count equals np.
//
// It returns all violations found (empty means the execution conforms).
func Validate(rec *Recorder, p *core.Process, tk task.Task, od time.Duration) []Violation {
	var out []Violation
	records := p.Records()
	mand := p.MandatoryThread()
	opts := p.OptionalThreads()

	var prevFinish time.Duration
	for _, jr := range records {
		at := jr.Release
		check := func(rule string, ok bool, format string, args ...any) {
			if !ok {
				out = append(out, Violation{
					Rule: rule, Job: jr.Job, At: at,
					Msg: fmt.Sprintf(format, args...),
				})
			}
		}
		// Rule 1: ordering.
		check("ordering", jr.Release <= jr.MandatoryStart,
			"mandatory start %v before release %v", jr.MandatoryStart, jr.Release)
		check("ordering", jr.MandatoryStart <= jr.WindupStart,
			"wind-up start %v before mandatory start %v", jr.WindupStart, jr.MandatoryStart)
		check("ordering", jr.WindupStart <= jr.Finish,
			"finish %v before wind-up start %v", jr.Finish, jr.WindupStart)
		check("ordering", jr.Job == 0 || jr.MandatoryStart >= prevFinish,
			"job overlaps previous job finishing at %v", prevFinish)
		prevFinish = jr.Finish

		// Rule 2: wind-up never preempts a live optional window.
		terminated := false
		for _, part := range jr.Parts {
			if part.Outcome == task.PartTerminated {
				terminated = true
			}
		}
		if terminated {
			check("windup-after-od", jr.WindupStart >= jr.Release+od,
				"wind-up at %v before optional deadline %v", jr.WindupStart, jr.Release+od)
		}

		// Rule 4: part accounting.
		check("part-accounting", len(jr.Parts) == tk.NumOptional(),
			"%d parts recorded, want %d", len(jr.Parts), tk.NumOptional())
		for k, part := range jr.Parts {
			switch part.Outcome {
			case task.PartCompleted:
				check("part-accounting", part.Executed >= part.Length,
					"part %d completed with %v of %v executed", k, part.Executed, part.Length)
			case task.PartTerminated:
				check("part-accounting", part.Executed < part.Length,
					"part %d terminated after full execution", k)
			case task.PartDiscarded:
				check("part-accounting", part.Executed == 0,
					"part %d discarded but executed %v", k, part.Executed)
			default:
				check("part-accounting", false, "part %d has unknown outcome", k)
			}
		}
	}

	// Rule 3: mandatory-thread CPU exclusivity. Optional segments on the
	// mandatory CPU must not overlap mandatory segments.
	mandSegs := rec.Segments(mand)
	for _, opt := range opts {
		if opt.CPU() != mand.CPU() {
			continue
		}
		for _, os := range rec.Segments(opt) {
			for _, ms := range mandSegs {
				if os.From < ms.To && ms.From < os.To {
					out = append(out, Violation{
						Rule: "no-optional-during-mandatory",
						At:   os.From.Duration(),
						Msg: fmt.Sprintf("optional %s ran [%v,%v) overlapping mandatory [%v,%v)",
							opt.Name(), os.From, os.To, ms.From, ms.To),
					})
				}
			}
		}
	}
	return out
}

// MustValidate is Validate for tests: it fails the provided reporter on any
// violation.
func MustValidate(t interface{ Fatalf(string, ...any) }, rec *Recorder, p *core.Process, tk task.Task, od time.Duration) {
	if vs := Validate(rec, p, tk, od); len(vs) > 0 {
		t.Fatalf("schedule violates the model: %v (and %d more)", vs[0], len(vs)-1)
	}
}
