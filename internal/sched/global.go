package sched

import (
	"fmt"
	"sort"
	"time"

	"rtseed/internal/task"
	"rtseed/internal/trace"
)

// GlobalResult summarizes an idealized global semi-fixed-priority (G-RMWP)
// simulation. The paper rejects global scheduling for middleware because
// task migration causes high overheads and middleware lacks fine-grained
// processor control (§IV-B); this simulator quantifies the migration count
// that argument rests on.
type GlobalResult struct {
	// Migrations counts how often a job resumed on a different processor
	// than it last ran on.
	Migrations int
	// Preemptions counts job preemptions.
	Preemptions int
	// DeadlineMisses counts jobs that finished after their deadline,
	// accounting for the per-migration penalty.
	DeadlineMisses int
	// Jobs is the number of jobs simulated.
	Jobs int
}

// globalJob is one job instance in the quantum-driven global simulator.
type globalJob struct {
	taskIdx   int
	release   time.Duration
	deadline  time.Duration
	remaining time.Duration // current phase's remaining execution
	phase     int           // 0 = mandatory, 1 = wind-up
	windup    time.Duration
	od        time.Duration // absolute optional deadline
	lastCPU   int
	ranBefore bool
}

// SimulateGRMWP runs an idealized global RMWP simulation of the task set on
// m processors for the given horizon, using a fixed scheduling quantum. At
// every quantum boundary the m highest-priority ready jobs run; a job that
// resumes on a different processor pays migrationPenalty of extra execution
// time — the mechanism behind global scheduling's overhead. Mandatory parts
// run from release; between mandatory completion and the optional deadline
// the job is off the run queue (its optional parts are not modelled — by
// Theorem 1 they never interfere); wind-up parts run from the optional
// deadline.
func SimulateGRMWP(s *task.Set, m int, horizon, quantum, migrationPenalty time.Duration) (GlobalResult, error) {
	if s == nil || s.Len() == 0 {
		return GlobalResult{}, task.ErrEmptyTaskSet
	}
	if m <= 0 || horizon <= 0 || quantum <= 0 {
		return GlobalResult{}, fmt.Errorf("sched: invalid global simulation parameters m=%d horizon=%v quantum=%v", m, horizon, quantum)
	}
	ordered := s.SortedByRM()
	ods := make([]time.Duration, len(ordered))
	for i, t := range ordered {
		// Idealized per-task optional deadline D − w (interference on the
		// wind-up is simulated directly).
		ods[i] = t.Deadline() - t.Windup
	}

	var res GlobalResult
	var active []*globalJob
	for now := time.Duration(0); now < horizon; now += quantum {
		// Release new jobs and start wind-up phases.
		for i, t := range ordered {
			if now%t.Period == 0 {
				res.Jobs++
				active = append(active, &globalJob{
					taskIdx:   i,
					release:   now,
					deadline:  now + t.Deadline(),
					remaining: t.Mandatory,
					phase:     0,
					windup:    t.Windup,
					od:        now + ods[i],
					lastCPU:   -1,
				})
			}
		}
		// Jobs whose optional deadline passed enter their wind-up phase.
		ready := ready(active, now)
		// RM priority: shorter period (lower taskIdx) first; FIFO by
		// release within a task.
		sort.SliceStable(ready, func(a, b int) bool {
			return ready[a].taskIdx < ready[b].taskIdx
		})
		// Run the top m jobs for one quantum.
		for cpu := 0; cpu < m && cpu < len(ready); cpu++ {
			j := ready[cpu]
			if j.ranBefore && j.lastCPU != cpu {
				res.Migrations++
				j.remaining += migrationPenalty
			}
			j.lastCPU = cpu
			j.ranBefore = true
			j.remaining -= quantum
			if j.remaining <= 0 {
				j.remaining = 0
				if j.phase == 0 {
					j.phase = 1 // waits for its optional deadline
				} else {
					j.phase = 2 // done
					if trace.MissedDeadline(now+quantum, j.deadline) {
						res.DeadlineMisses++
					}
				}
			}
		}
		// Preemption accounting: ready jobs beyond the top m that had run
		// before were preempted.
		for i := m; i < len(ready); i++ {
			if ready[i].ranBefore {
				res.Preemptions++
				ready[i].ranBefore = false // count once per preemption episode
			}
		}
		// Drop finished jobs.
		live := active[:0]
		for _, j := range active {
			if j.phase != 2 {
				live = append(live, j)
			}
		}
		active = live
	}
	return res, nil
}

// ready selects jobs eligible to run at time now: mandatory phases always,
// wind-up phases once their optional deadline passed (and transitions
// phase-1 jobs whose wind-up budget has not been loaded yet).
func ready(active []*globalJob, now time.Duration) []*globalJob {
	out := make([]*globalJob, 0, len(active))
	for _, j := range active {
		switch j.phase {
		case 0:
			if j.remaining > 0 {
				out = append(out, j)
			}
		case 1:
			if now >= j.od {
				if j.remaining == 0 && j.windup > 0 {
					j.remaining = j.windup
					j.windup = 0
				}
				if j.remaining > 0 {
					out = append(out, j)
				}
			}
		}
	}
	return out
}

// SimulatePRMWPMigrations returns the migration count of partitioned
// scheduling, which is zero by construction (tasks never migrate); it
// exists so the ablation benchmark reads symmetrically.
func SimulatePRMWPMigrations() GlobalResult { return GlobalResult{} }
