package sched

import (
	"fmt"
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/task"
)

// GeneralProcess runs a task under general scheduling in Liu & Layland's
// model (paper Fig. 3, left): each job executes the whole WCET m+w as one
// block at a single fixed priority, with no optional part and no optional
// deadline. It is the baseline semi-fixed-priority scheduling is compared
// against.
type GeneralProcess struct {
	k      *kernel.Kernel
	tk     task.Task
	jobs   int
	thread *kernel.Thread

	records []task.JobRecord
}

// NewGeneralProcess builds the baseline process.
func NewGeneralProcess(k *kernel.Kernel, tk task.Task, priority int, cpu machine.HWThread, jobs int) (*GeneralProcess, error) {
	if err := tk.Validate(); err != nil {
		return nil, err
	}
	if jobs <= 0 {
		return nil, fmt.Errorf("sched: jobs must be positive, got %d", jobs)
	}
	g := &GeneralProcess{k: k, tk: tk, jobs: jobs}
	var err error
	g.thread, err = k.NewBodyThread(kernel.ThreadConfig{
		Name:     tk.Name + ".general",
		Priority: priority,
		CPU:      cpu,
	}, &generalBody{p: g})
	if err != nil {
		return nil, err
	}
	return g, nil
}

// Start launches the process.
func (g *GeneralProcess) Start() { g.thread.Start() }

// Thread returns the process's single thread.
func (g *GeneralProcess) Thread() *kernel.Thread { return g.thread }

// Records returns the accumulated job records.
func (g *GeneralProcess) Records() []task.JobRecord {
	out := make([]task.JobRecord, len(g.records))
	copy(out, g.records)
	return out
}

// Stats summarizes the accumulated job records.
func (g *GeneralProcess) Stats() task.Stats { return task.Summarize(g.records) }

// generalPC is the program counter of the baseline continuation body.
type generalPC uint8

const (
	// gpRelease: sleep until the next job's release, or exit when all jobs
	// are done.
	gpRelease generalPC = iota
	// gpCompute: the release sleep returned; record the start and run the
	// whole WCET as one block.
	gpCompute
	// gpFinish: the block completed; append the job record and loop.
	gpFinish
)

// generalBody is the continuation form of the baseline job loop.
type generalBody struct {
	p       *GeneralProcess
	job     int
	release engine.Time
	start   engine.Time
	pc      generalPC
}

//rtseed:kernelctx
func (b *generalBody) Step(c *kernel.TCB, r kernel.Resume) kernel.Next {
	switch b.pc {
	case gpRelease:
		// Handled below; split out so gpFinish can fall through into it
		// without issuing a no-op action.
	case gpCompute:
		b.start = c.Now()
		b.pc = gpFinish
		return kernel.Compute(b.p.tk.WCET())
	case gpFinish:
		b.p.records = append(b.p.records, task.JobRecord{
			Job:            b.job,
			Release:        b.release.Duration(),
			MandatoryStart: b.start.Duration(),
			WindupStart:    b.start.Duration(),
			Finish:         c.Now().Duration(),
			Deadline:       b.release.Add(b.p.tk.Deadline()).Duration(),
		})
		b.job++
		b.pc = gpRelease
	}
	if b.job >= b.p.jobs {
		return kernel.Done()
	}
	b.release = engine.At(time.Duration(b.job) * b.p.tk.Period)
	b.pc = gpCompute
	return kernel.SleepUntil(b.release)
}
