package sched

import (
	"fmt"
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/task"
)

// GeneralProcess runs a task under general scheduling in Liu & Layland's
// model (paper Fig. 3, left): each job executes the whole WCET m+w as one
// block at a single fixed priority, with no optional part and no optional
// deadline. It is the baseline semi-fixed-priority scheduling is compared
// against.
type GeneralProcess struct {
	k      *kernel.Kernel
	tk     task.Task
	jobs   int
	thread *kernel.Thread

	records []task.JobRecord
}

// NewGeneralProcess builds the baseline process.
func NewGeneralProcess(k *kernel.Kernel, tk task.Task, priority int, cpu machine.HWThread, jobs int) (*GeneralProcess, error) {
	if err := tk.Validate(); err != nil {
		return nil, err
	}
	if jobs <= 0 {
		return nil, fmt.Errorf("sched: jobs must be positive, got %d", jobs)
	}
	g := &GeneralProcess{k: k, tk: tk, jobs: jobs}
	var err error
	g.thread, err = k.NewThread(kernel.ThreadConfig{
		Name:     tk.Name + ".general",
		Priority: priority,
		CPU:      cpu,
	}, g.body)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// Start launches the process.
func (g *GeneralProcess) Start() { g.thread.Start() }

// Thread returns the process's single thread.
func (g *GeneralProcess) Thread() *kernel.Thread { return g.thread }

// Records returns the accumulated job records.
func (g *GeneralProcess) Records() []task.JobRecord {
	out := make([]task.JobRecord, len(g.records))
	copy(out, g.records)
	return out
}

// Stats summarizes the accumulated job records.
func (g *GeneralProcess) Stats() task.Stats { return task.Summarize(g.records) }

func (g *GeneralProcess) body(c *kernel.TCB) {
	for job := 0; job < g.jobs; job++ {
		release := engine.At(time.Duration(job) * g.tk.Period)
		c.SleepUntil(release)
		start := c.Now()
		c.Compute(g.tk.WCET())
		g.records = append(g.records, task.JobRecord{
			Job:            job,
			Release:        release.Duration(),
			MandatoryStart: start.Duration(),
			WindupStart:    start.Duration(),
			Finish:         c.Now().Duration(),
			Deadline:       release.Add(g.tk.Deadline()).Duration(),
		})
	}
}
