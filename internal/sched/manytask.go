package sched

import (
	"fmt"
	"time"

	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/task"
)

// ManyTaskConfig parameterizes a many-task kernel workload: n periodic
// tasks generated with UUniFast, RM-banded priorities, pinned round-robin
// over the machine's hardware threads. This is the scale regime of
// semi-federated multiprocessor scheduling — thousands of tasks on hundreds
// of hardware threads — used by the scaling benchmarks to prove the
// scheduling core's per-event cost stays flat as n grows.
type ManyTaskConfig struct {
	// N is the number of periodic tasks.
	N int
	// Seed seeds the task-set generator.
	Seed uint64
	// UtilizationPerTask is each task's mean utilization (default 0.05;
	// total utilization is spread over all hardware threads).
	UtilizationPerTask float64
	// MinPeriod and MaxPeriod bound the generator's log-uniform period
	// distribution (defaults 1ms and 100ms).
	MinPeriod, MaxPeriod time.Duration
	// ReleaseOnly makes each task body sleep until its next release and
	// nothing else. Every simulated event is then kernel scheduling work —
	// timer arm, timer fire, dispatch, requeue — with no compute bursts in
	// between, which isolates the scheduling core's per-event cost from the
	// cost of running task host code. The scaling benchmarks use this mode
	// to compare queue implementations; compute mode to measure end-to-end.
	ReleaseOnly bool
}

// ManyTaskSystem is a built many-task workload: one kernel thread per task,
// each running periodic mandatory+wind-up compute bursts.
type ManyTaskSystem struct {
	Set     *task.Set
	Threads []*kernel.Thread

	jobs int
}

// Jobs returns the number of completed jobs across all tasks.
func (s *ManyTaskSystem) Jobs() int { return s.jobs }

// NewManyTask generates the task set and creates (but does not start) one
// thread per task on k. Task i is pinned to hardware thread i mod NumHWThreads
// and runs at its RM band priority; each job computes the mandatory part,
// then the wind-up part, then sleeps until the next release.
func NewManyTask(k *kernel.Kernel, cfg ManyTaskConfig) (*ManyTaskSystem, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("sched: many-task workload needs N > 0, got %d", cfg.N)
	}
	perTask := cfg.UtilizationPerTask
	if perTask == 0 {
		perTask = 0.05
	}
	minT, maxT := cfg.MinPeriod, cfg.MaxPeriod
	if minT == 0 {
		minT = time.Millisecond
	}
	if maxT == 0 {
		maxT = 100 * time.Millisecond
	}
	set, err := task.Generate(task.GenConfig{
		N:                cfg.N,
		TotalUtilization: perTask * float64(cfg.N),
		MinPeriod:        minT,
		MaxPeriod:        maxT,
		Seed:             cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	prios, err := task.RMBandPriorities(set, kernel.MinPriority, kernel.MaxPriority-1)
	if err != nil {
		return nil, err
	}
	sys := &ManyTaskSystem{Set: set}
	nhw := k.Machine().Topology().NumHWThreads()
	for i, tk := range set.Tasks {
		tk := tk
		body := func(c *kernel.TCB) {
			for release := c.Now(); ; release = release.Add(tk.Period) {
				c.SleepUntil(release)
				c.Compute(tk.Mandatory)
				c.Compute(tk.Windup)
				sys.jobs++
			}
		}
		if cfg.ReleaseOnly {
			body = func(c *kernel.TCB) {
				for release := c.Now(); ; release = release.Add(tk.Period) {
					c.SleepUntil(release)
					sys.jobs++
				}
			}
		}
		th, err := k.NewThread(kernel.ThreadConfig{
			Name:     tk.Name,
			Priority: prios[i],
			CPU:      machine.HWThread(i % nhw),
		}, body)
		if err != nil {
			return nil, err
		}
		sys.Threads = append(sys.Threads, th)
	}
	return sys, nil
}

// Start makes every task thread ready at the current virtual time.
func (s *ManyTaskSystem) Start() {
	for _, th := range s.Threads {
		th.Start()
	}
}
