package sched

import (
	"fmt"
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/task"
)

// ManyTaskConfig parameterizes a many-task kernel workload: n periodic
// tasks generated with UUniFast, RM-banded priorities, pinned round-robin
// over the machine's hardware threads. This is the scale regime of
// semi-federated multiprocessor scheduling — thousands of tasks on hundreds
// of hardware threads — used by the scaling benchmarks to prove the
// scheduling core's per-event cost stays flat as n grows.
type ManyTaskConfig struct {
	// N is the number of periodic tasks.
	N int
	// Seed seeds the task-set generator.
	Seed uint64
	// UtilizationPerTask is each task's mean utilization (default 0.05;
	// total utilization is spread over all hardware threads).
	UtilizationPerTask float64
	// MinPeriod and MaxPeriod bound the generator's log-uniform period
	// distribution (defaults 1ms and 100ms).
	MinPeriod, MaxPeriod time.Duration
	// ReleaseOnly makes each task body sleep until its next release and
	// nothing else. Every simulated event is then kernel scheduling work —
	// timer arm, timer fire, dispatch, requeue — with no compute bursts in
	// between, which isolates the scheduling core's per-event cost from the
	// cost of running task host code. The scaling benchmarks use this mode
	// to compare queue implementations; compute mode to measure end-to-end.
	ReleaseOnly bool
	// GoroutineOracle runs each task body on the legacy goroutine executor
	// (one goroutine per task, channel handshake per context switch) instead
	// of the continuation executor. The workload is identical — the
	// differential fuzzer runs the same task set in both modes and requires
	// byte-identical traces. Production and benchmarks leave this false.
	GoroutineOracle bool
}

// ManyTaskSystem is a built many-task workload: one kernel thread per task,
// each running periodic mandatory+wind-up compute bursts.
type ManyTaskSystem struct {
	Set     *task.Set
	Threads []*kernel.Thread

	jobs int
}

// Jobs returns the number of completed jobs across all tasks.
func (s *ManyTaskSystem) Jobs() int { return s.jobs }

// manyTaskPC is the program counter of a many-task continuation body.
type manyTaskPC uint8

const (
	// mtRelease: account the finished job (except on the first step) and
	// sleep until the next release.
	mtRelease manyTaskPC = iota
	// mtMandatory: the release sleep returned; run the mandatory part.
	mtMandatory
	// mtWindup: the mandatory burst returned; run the wind-up part.
	mtWindup
)

// manyTaskBody is the continuation form of a periodic task: sleep until
// release, compute mandatory, compute wind-up, repeat. One value per task,
// allocated once at workload construction; Step allocates nothing, so the
// steady-state scaling benchmarks run at 0 allocs/op.
type manyTaskBody struct {
	sys         *ManyTaskSystem
	period      time.Duration
	mandatory   time.Duration
	windup      time.Duration
	release     engine.Time
	pc          manyTaskPC
	releaseOnly bool
}

//rtseed:noalloc
//rtseed:kernelctx
func (b *manyTaskBody) Step(c *kernel.TCB, r kernel.Resume) kernel.Next {
	switch b.pc {
	case mtRelease:
		if r.First {
			b.release = c.Now()
		} else {
			b.sys.jobs++
			b.release = b.release.Add(b.period)
		}
		if !b.releaseOnly {
			b.pc = mtMandatory
		}
		return kernel.SleepUntil(b.release)
	case mtMandatory:
		b.pc = mtWindup
		return kernel.Compute(b.mandatory)
	case mtWindup:
		b.pc = mtRelease
		return kernel.Compute(b.windup)
	}
	panic("sched: corrupt many-task body state")
}

// NewManyTask generates the task set and creates (but does not start) one
// thread per task on k. Task i is pinned to hardware thread i mod NumHWThreads
// and runs at its RM band priority; each job computes the mandatory part,
// then the wind-up part, then sleeps until the next release.
func NewManyTask(k *kernel.Kernel, cfg ManyTaskConfig) (*ManyTaskSystem, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("sched: many-task workload needs N > 0, got %d", cfg.N)
	}
	perTask := cfg.UtilizationPerTask
	if perTask == 0 {
		perTask = 0.05
	}
	minT, maxT := cfg.MinPeriod, cfg.MaxPeriod
	if minT == 0 {
		minT = time.Millisecond
	}
	if maxT == 0 {
		maxT = 100 * time.Millisecond
	}
	set, err := task.Generate(task.GenConfig{
		N:                cfg.N,
		TotalUtilization: perTask * float64(cfg.N),
		MinPeriod:        minT,
		MaxPeriod:        maxT,
		Seed:             cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	prios, err := task.RMBandPriorities(set, kernel.MinPriority, kernel.MaxPriority-1)
	if err != nil {
		return nil, err
	}
	sys := &ManyTaskSystem{Set: set}
	nhw := k.Machine().Topology().NumHWThreads()
	for i, tk := range set.Tasks {
		tk := tk
		tcfg := kernel.ThreadConfig{
			Name:     tk.Name,
			Priority: prios[i],
			CPU:      machine.HWThread(i % nhw),
		}
		var th *kernel.Thread
		var err error
		if cfg.GoroutineOracle {
			th, err = k.NewThread(tcfg, sys.goroutineBody(tk, cfg.ReleaseOnly))
		} else {
			th, err = k.NewBodyThread(tcfg, &manyTaskBody{
				sys:         sys,
				period:      tk.Period,
				mandatory:   tk.Mandatory,
				windup:      tk.Windup,
				releaseOnly: cfg.ReleaseOnly,
			})
		}
		if err != nil {
			return nil, err
		}
		sys.Threads = append(sys.Threads, th)
	}
	return sys, nil
}

// goroutineBody is the legacy blocking form of the task body, retained as
// the differential oracle for the continuation executor.
func (s *ManyTaskSystem) goroutineBody(tk task.Task, releaseOnly bool) func(*kernel.TCB) {
	if releaseOnly {
		return func(c *kernel.TCB) {
			for release := c.Now(); ; release = release.Add(tk.Period) {
				c.SleepUntil(release)
				s.jobs++
			}
		}
	}
	return func(c *kernel.TCB) {
		for release := c.Now(); ; release = release.Add(tk.Period) {
			c.SleepUntil(release)
			c.Compute(tk.Mandatory)
			c.Compute(tk.Windup)
			s.jobs++
		}
	}
}

// Start makes every task thread ready at the current virtual time.
func (s *ManyTaskSystem) Start() {
	for _, th := range s.Threads {
		th.Start()
	}
}
