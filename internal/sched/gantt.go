package sched

import (
	"fmt"
	"strings"
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/kernel"
)

// Gantt renders the recorded run segments of the given threads as an ASCII
// Gantt chart over [from, to), one row per thread, width columns wide. A
// column is drawn '#' when the thread ran for more than half of the
// column's time slice, '+' when it ran for less, and '.' when it did not
// run. The chart is the visual counterpart of the paper's Fig. 3/Fig. 6
// schedules.
func Gantt(rec *Recorder, threads []*kernel.Thread, from, to engine.Time, width int) string {
	if width < 1 {
		width = 60
	}
	span := to.Sub(from)
	if span <= 0 {
		return ""
	}
	nameW := 0
	for _, t := range threads {
		if len(t.Name()) > nameW {
			nameW = len(t.Name())
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s %v ... %v (%v per column)\n",
		nameW, "", from, to, span/time.Duration(width))
	for _, t := range threads {
		fmt.Fprintf(&b, "%-*s ", nameW, t.Name())
		for col := 0; col < width; col++ {
			lo := from.Add(span * time.Duration(col) / time.Duration(width))
			hi := from.Add(span * time.Duration(col+1) / time.Duration(width))
			ran := rec.Executed(t, lo, hi)
			slice := hi.Sub(lo)
			switch {
			case ran > slice/2:
				b.WriteByte('#')
			case ran > 0:
				b.WriteByte('+')
			default:
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
