// Package sched drives scheduling algorithms over the simulated kernel and
// records their behaviour: the General (Liu & Layland) baseline, the P-RMWP
// semi-fixed-priority runner built on the RT-Seed middleware, execution
// trace recording for the paper's Fig. 3 remaining-execution-time curves,
// and an idealized global-scheduling (G-RMWP) simulator for the
// partitioned-versus-global ablation of §IV-B.
package sched

import (
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/kernel"
)

// Segment is a half-open interval [From, To) during which a thread ran.
type Segment struct {
	From, To engine.Time
}

// Duration returns the segment length.
func (s Segment) Duration() time.Duration { return s.To.Sub(s.From) }

// Recorder collects per-thread run segments from the kernel tracer.
type Recorder struct {
	running  map[*kernel.Thread]engine.Time
	segments map[*kernel.Thread][]Segment
}

// NewRecorder attaches a recorder to the kernel. It replaces any existing
// tracer.
func NewRecorder(k *kernel.Kernel) *Recorder {
	r := &Recorder{
		running:  make(map[*kernel.Thread]engine.Time),
		segments: make(map[*kernel.Thread][]Segment),
	}
	k.SetTracer(r.observe)
	return r
}

func (r *Recorder) observe(ev kernel.TraceEvent) {
	switch ev.Kind {
	case kernel.TraceDispatched:
		r.running[ev.Thread] = ev.At
	case kernel.TracePreempted, kernel.TraceBlocked, kernel.TraceSleeping, kernel.TraceExited:
		if from, ok := r.running[ev.Thread]; ok {
			delete(r.running, ev.Thread)
			if ev.At > from {
				r.segments[ev.Thread] = append(r.segments[ev.Thread], Segment{From: from, To: ev.At})
			}
		}
	}
}

// Segments returns the recorded run segments of t in time order.
func (r *Recorder) Segments(t *kernel.Thread) []Segment {
	out := make([]Segment, len(r.segments[t]))
	copy(out, r.segments[t])
	return out
}

// Executed returns the CPU time t consumed within [from, to).
func (r *Recorder) Executed(t *kernel.Thread, from, to engine.Time) time.Duration {
	var sum time.Duration
	for _, s := range r.segments[t] {
		lo, hi := s.From, s.To
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			sum += hi.Sub(lo)
		}
	}
	return sum
}

// TracePoint is one breakpoint of a remaining-execution-time curve R_i(t)
// (paper Fig. 3): at time T the task has R remaining.
type TracePoint struct {
	T time.Duration
	R time.Duration
}

// RemainingTime builds the R_i(t) curve for a budget that starts at `budget`
// at time `from` and is drained by the thread's execution until exhausted or
// until `to`. Each run segment contributes a linear decrease; the curve is
// emitted as its breakpoints.
func (r *Recorder) RemainingTime(t *kernel.Thread, from, to engine.Time, budget time.Duration) []TracePoint {
	points := []TracePoint{{T: from.Duration(), R: budget}}
	remaining := budget
	for _, s := range r.segments[t] {
		if s.To <= from || s.From >= to || remaining <= 0 {
			continue
		}
		lo, hi := s.From, s.To
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		run := hi.Sub(lo)
		if run > remaining {
			hi = lo.Add(remaining)
			run = remaining
		}
		// Flat until the segment starts, then linear decrease.
		points = append(points, TracePoint{T: lo.Duration(), R: remaining})
		remaining -= run
		points = append(points, TracePoint{T: hi.Duration(), R: remaining})
		if remaining <= 0 {
			break
		}
	}
	return points
}
