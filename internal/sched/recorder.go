// Package sched drives scheduling algorithms over the simulated kernel and
// records their behaviour: the General (Liu & Layland) baseline, the P-RMWP
// semi-fixed-priority runner built on the RT-Seed middleware, execution
// trace recording for the paper's Fig. 3 remaining-execution-time curves,
// and an idealized global-scheduling (G-RMWP) simulator for the
// partitioned-versus-global ablation of §IV-B.
package sched

import (
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/kernel"
	"rtseed/internal/trace"
)

// Segment is a half-open interval [From, To) during which a thread ran.
type Segment struct {
	From, To engine.Time
}

// Duration returns the segment length.
func (s Segment) Duration() time.Duration { return s.To.Sub(s.From) }

// Recorder collects per-thread run segments by tapping the kernel's trace
// stream. It keys by trace TID, so it works identically whether it observes
// the tracer live or replays records from a decoded trace file.
type Recorder struct {
	running  map[uint32]engine.Time
	segments map[uint32][]Segment
}

// NewRecorder attaches a recorder to the kernel's tracer, installing a
// flight-recorder tracer if the kernel has none. The recorder observes every
// record live (trace.Tap), so its history is not bounded by the tracer's
// ring capacity.
func NewRecorder(k *kernel.Kernel) *Recorder {
	tr := k.Trace()
	if tr == nil {
		tr = trace.New(trace.Config{CPUs: k.Machine().Topology().NumHWThreads()})
		k.SetTrace(tr)
	}
	r := &Recorder{
		running:  make(map[uint32]engine.Time),
		segments: make(map[uint32][]Segment),
	}
	tr.Tap(r.Observe)
	return r
}

// Observe consumes one trace record. It is exported so a recorder can also
// be replayed over the records of a decoded trace file.
func (r *Recorder) Observe(rec trace.Record) {
	//rtseed:partial-ok the recorder tracks run segments only; middleware and timer kinds are irrelevant here
	switch rec.Kind {
	case trace.KindDispatch:
		r.running[rec.TID] = rec.At
	case trace.KindPreempt, trace.KindBlock, trace.KindSleep, trace.KindExit:
		if from, ok := r.running[rec.TID]; ok {
			delete(r.running, rec.TID)
			if rec.At > from {
				r.segments[rec.TID] = append(r.segments[rec.TID], Segment{From: from, To: rec.At})
			}
		}
	}
}

// Segments returns the recorded run segments of t in time order.
func (r *Recorder) Segments(t *kernel.Thread) []Segment {
	segs := r.segments[uint32(t.ID())]
	out := make([]Segment, len(segs))
	copy(out, segs)
	return out
}

// Executed returns the CPU time t consumed within [from, to).
func (r *Recorder) Executed(t *kernel.Thread, from, to engine.Time) time.Duration {
	var sum time.Duration
	for _, s := range r.segments[uint32(t.ID())] {
		lo, hi := s.From, s.To
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			sum += hi.Sub(lo)
		}
	}
	return sum
}

// TracePoint is one breakpoint of a remaining-execution-time curve R_i(t)
// (paper Fig. 3): at time T the task has R remaining.
type TracePoint struct {
	T time.Duration
	R time.Duration
}

// RemainingTime builds the R_i(t) curve for a budget that starts at `budget`
// at time `from` and is drained by the thread's execution until exhausted or
// until `to`. Each run segment contributes a linear decrease; the curve is
// emitted as its breakpoints.
func (r *Recorder) RemainingTime(t *kernel.Thread, from, to engine.Time, budget time.Duration) []TracePoint {
	points := []TracePoint{{T: from.Duration(), R: budget}}
	remaining := budget
	for _, s := range r.segments[uint32(t.ID())] {
		if s.To <= from || s.From >= to || remaining <= 0 {
			continue
		}
		lo, hi := s.From, s.To
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		run := hi.Sub(lo)
		if run > remaining {
			hi = lo.Add(remaining)
			run = remaining
		}
		// Flat until the segment starts, then linear decrease.
		points = append(points, TracePoint{T: lo.Duration(), R: remaining})
		remaining -= run
		points = append(points, TracePoint{T: hi.Duration(), R: remaining})
		if remaining <= 0 {
			break
		}
	}
	return points
}
