package sched

import (
	"fmt"
	"sort"
	"time"

	"rtseed/internal/task"
	"rtseed/internal/trace"
)

// EDFResult summarizes the dynamic-priority baseline: EDF over mandatory
// and wind-up parts with the optional window computed ONLINE at each
// mandatory completion. The paper's §I motivation for semi-fixed-priority
// scheduling is precisely that this online calculation is what makes
// dynamic-priority imprecise scheduling "difficult on multi-/many-core
// processors"; OnlineCalcs and OnlineWork quantify the cost RMWP's offline
// optional deadline removes.
type EDFResult struct {
	Jobs           int
	DeadlineMisses int
	// OnlineCalcs counts the per-job online slack computations.
	OnlineCalcs int
	// OnlineWork sums the active-job-set sizes scanned by those
	// computations: the O(n)-per-job work RMWP does not pay at runtime.
	OnlineWork int
	// MeanOptionalWindow is the average optional execution window granted.
	MeanOptionalWindow time.Duration
}

// edfJob is one job in the quantum-driven EDF simulator.
type edfJob struct {
	taskIdx   int
	release   time.Duration
	deadline  time.Duration
	remaining time.Duration
	phase     int // 0 mandatory, 1 optional window, 2 wind-up, 3 done
	windup    time.Duration
	windupAt  time.Duration // computed online at mandatory completion
}

// SimulateEDFWP runs the uniprocessor dynamic-priority baseline on the task
// set: mandatory and wind-up parts are scheduled EDF; when a job's
// mandatory part completes, the scheduler computes — online — the latest
// wind-up start that still leaves room for every other active job's
// remaining demand with an earlier-or-equal deadline, and lets the optional
// part use the slack until then.
func SimulateEDFWP(s *task.Set, horizon, quantum time.Duration) (EDFResult, error) {
	if s == nil || s.Len() == 0 {
		return EDFResult{}, task.ErrEmptyTaskSet
	}
	if horizon <= 0 || quantum <= 0 {
		return EDFResult{}, fmt.Errorf("sched: invalid EDF parameters horizon=%v quantum=%v", horizon, quantum)
	}
	ordered := s.SortedByRM()
	var res EDFResult
	var windowSum time.Duration
	var active []*edfJob
	for now := time.Duration(0); now < horizon; now += quantum {
		for i, t := range ordered {
			if now%t.Period == 0 {
				res.Jobs++
				active = append(active, &edfJob{
					taskIdx:   i,
					release:   now,
					deadline:  now + t.Deadline(),
					remaining: t.Mandatory,
					windup:    t.Windup,
				})
			}
		}
		// Jobs whose online wind-up start has arrived enter the wind-up.
		for _, j := range active {
			if j.phase == 1 && now >= j.windupAt {
				j.phase = 2
				j.remaining = j.windup
			}
		}
		// EDF pick among runnable phases (mandatory and wind-up).
		runnable := make([]*edfJob, 0, len(active))
		for _, j := range active {
			if (j.phase == 0 || j.phase == 2) && j.remaining > 0 {
				runnable = append(runnable, j)
			}
		}
		if len(runnable) > 0 {
			sort.SliceStable(runnable, func(a, b int) bool {
				return runnable[a].deadline < runnable[b].deadline
			})
			j := runnable[0]
			j.remaining -= quantum
			if j.remaining <= 0 {
				j.remaining = 0
				switch j.phase {
				case 0:
					// Mandatory done: compute the optional window ONLINE.
					j.windupAt = onlineWindupStart(j, active, now+quantum, &res)
					if w := j.windupAt - (now + quantum); w > 0 {
						windowSum += w
					}
					j.phase = 1
				case 2:
					j.phase = 3
					if trace.MissedDeadline(now+quantum, j.deadline) {
						res.DeadlineMisses++
					}
				}
			}
		}
		// Drop finished jobs.
		live := active[:0]
		for _, j := range active {
			if j.phase != 3 {
				live = append(live, j)
			}
		}
		active = live
	}
	done := res.OnlineCalcs
	if done > 0 {
		res.MeanOptionalWindow = windowSum / time.Duration(done)
	}
	return res, nil
}

// onlineWindupStart computes, at time now, the latest wind-up start for j
// that leaves room for j's wind-up plus every other active job's remaining
// demand with an earlier-or-equal deadline — the per-job online calculation
// semi-fixed-priority scheduling replaces with the offline OD.
func onlineWindupStart(j *edfJob, active []*edfJob, now time.Duration, res *EDFResult) time.Duration {
	res.OnlineCalcs++
	reserve := j.windup
	for _, other := range active {
		res.OnlineWork++
		if other == j || other.phase == 3 {
			continue
		}
		if other.deadline <= j.deadline {
			reserve += other.remaining
			if other.phase == 0 || other.phase == 1 {
				reserve += other.windup
			}
		}
	}
	at := j.deadline - reserve
	if at < now {
		at = now
	}
	return at
}
