package sched

import (
	"fmt"
	"time"

	"rtseed/internal/analysis"
	"rtseed/internal/assign"
	"rtseed/internal/core"
	"rtseed/internal/kernel"
	"rtseed/internal/machine"
	"rtseed/internal/partition"
	"rtseed/internal/task"
)

// PRMWPConfig configures a full P-RMWP system over a task set.
type PRMWPConfig struct {
	// Set is the task set.
	Set *task.Set
	// Horizon is how long to run; each task executes Horizon/T_i jobs.
	Horizon time.Duration
	// Policy assigns parallel optional parts to hardware threads.
	Policy assign.Policy
	// Heuristic partitions tasks over processors (default FirstFit).
	Heuristic partition.Heuristic
	// Termination selects the optional-part termination mechanism
	// (default sigsetjmp/siglongjmp).
	Termination core.Termination
	// OverheadMargin shortens each optional deadline to budget the
	// scheduling overheads the paper folds into the WCETs (§II-A).
	// Zero uses the analytical optional deadline unchanged.
	OverheadMargin time.Duration
	// UseRMUS applies the RM-US(M/(3M-2)) utilization separation of the
	// paper's footnote 1: a task whose utilization exceeds the threshold
	// takes the reserved HPQ priority 99 on its processor. At most one
	// such task may land on each processor.
	UseRMUS bool
	// Apps optionally maps task name to its application callbacks.
	Apps map[string]core.App
}

// PRMWPSystem is an instantiated P-RMWP run: one RT-Seed process per task,
// partitioned over the first SMT slot of each core.
type PRMWPSystem struct {
	Processes  map[string]*core.Process
	Assignment *partition.Assignment
	Analysis   []analysis.Result

	// ordered preserves creation order so Start is deterministic.
	ordered []*core.Process
}

// NewPRMWP partitions the task set, computes optional deadlines with the
// per-processor RMWP analysis, assigns RM priorities within each processor,
// lays out optional parts under the policy, and builds the processes.
// Mandatory threads are pinned to SMT slot 0 of their processor's core.
func NewPRMWP(k *kernel.Kernel, cfg PRMWPConfig) (*PRMWPSystem, error) {
	if cfg.Set == nil || cfg.Set.Len() == 0 {
		return nil, task.ErrEmptyTaskSet
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("sched: horizon must be positive, got %v", cfg.Horizon)
	}
	if !cfg.Policy.Valid() {
		return nil, fmt.Errorf("sched: invalid assignment policy %d", cfg.Policy)
	}
	heur := cfg.Heuristic
	if heur == 0 {
		heur = partition.FirstFit
	}
	topo := k.Machine().Topology()
	asg, err := partition.Partition(cfg.Set, topo.Cores, heur)
	if err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}

	sys := &PRMWPSystem{
		Processes:  make(map[string]*core.Process, cfg.Set.Len()),
		Assignment: asg,
	}
	for proc, tasks := range asg.PerProcessor {
		if len(tasks) == 0 {
			continue
		}
		sub := task.MustNewSet(tasks...)
		results, err := analysis.RMWP(sub)
		if err != nil {
			return nil, fmt.Errorf("processor %d: %w", proc, err)
		}
		sys.Analysis = append(sys.Analysis, results...)
		prios, err := core.RTQPriorities(len(results))
		if err != nil {
			return nil, err
		}
		if cfg.UseRMUS {
			if err := applyRMUS(results, prios, topo.Cores); err != nil {
				return nil, fmt.Errorf("processor %d: %w", proc, err)
			}
		}
		for i, res := range results {
			tk := res.Task
			od := res.OptionalDeadline - cfg.OverheadMargin
			if od <= 0 {
				return nil, fmt.Errorf("task %s: overhead margin %v exhausts optional deadline %v",
					tk.Name, cfg.OverheadMargin, res.OptionalDeadline)
			}
			optCPUs, err := assign.HWThreadsFrom(topo, cfg.Policy, tk.NumOptional(), proc)
			if err != nil {
				return nil, fmt.Errorf("task %s: %w", tk.Name, err)
			}
			jobs := int(cfg.Horizon / tk.Period)
			if jobs < 1 {
				jobs = 1
			}
			p, err := core.NewProcess(k, core.Config{
				Task:              tk,
				MandatoryPriority: prios[i],
				MandatoryCPU:      machine.HWThread(proc),
				OptionalCPUs:      optCPUs,
				OptionalDeadline:  od,
				Jobs:              jobs,
				Termination:       cfg.Termination,
				App:               cfg.Apps[tk.Name],
			})
			if err != nil {
				return nil, fmt.Errorf("task %s: %w", tk.Name, err)
			}
			sys.Processes[tk.Name] = p
			sys.ordered = append(sys.ordered, p)
		}
	}
	return sys, nil
}

// applyRMUS promotes the task(s) exceeding the RM-US threshold to the HPQ
// priority; the prios slice (parallel to results) is edited in place.
func applyRMUS(results []analysis.Result, prios []int, m int) error {
	promoted := 0
	for i, res := range results {
		if analysis.NeedsHighestPriority(res.Task, m) {
			prios[i] = core.HPQPriority
			promoted++
		}
	}
	if promoted > 1 {
		return fmt.Errorf("sched: %d tasks exceed the RM-US threshold on one processor; the HPQ holds one", promoted)
	}
	return nil
}

// Start launches every process in creation order.
func (s *PRMWPSystem) Start() {
	for _, p := range s.ordered {
		p.Start()
	}
}

// Stats aggregates per-task statistics by task name.
func (s *PRMWPSystem) Stats() map[string]task.Stats {
	out := make(map[string]task.Stats, len(s.Processes))
	for name, p := range s.Processes {
		out[name] = p.Stats()
	}
	return out
}
