package sched

import (
	"encoding/json"
	"io"

	"rtseed/internal/engine"
	"rtseed/internal/kernel"
)

// SegmentJSON is the serialized form of one run segment.
type SegmentJSON struct {
	Thread   string `json:"thread"`
	CPU      int    `json:"cpu"`
	Priority int    `json:"priority"`
	FromNs   int64  `json:"fromNs"`
	ToNs     int64  `json:"toNs"`
}

// TraceJSON is the serialized form of a recorded schedule, consumable by
// external timeline viewers.
type TraceJSON struct {
	HorizonNs int64         `json:"horizonNs"`
	Segments  []SegmentJSON `json:"segments"`
}

// ExportJSON writes the recorded run segments of the given threads within
// [from, to) as JSON.
func ExportJSON(w io.Writer, rec *Recorder, threads []*kernel.Thread, from, to engine.Time) error {
	out := TraceJSON{HorizonNs: int64(to.Sub(from))}
	for _, t := range threads {
		for _, s := range rec.Segments(t) {
			if s.To <= from || s.From >= to {
				continue
			}
			lo, hi := s.From, s.To
			if lo < from {
				lo = from
			}
			if hi > to {
				hi = to
			}
			out.Segments = append(out.Segments, SegmentJSON{
				Thread:   t.Name(),
				CPU:      int(t.CPU()),
				Priority: t.Priority(),
				FromNs:   int64(lo.Sub(from)),
				ToNs:     int64(hi.Sub(from)),
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
