// Package partition assigns tasks to processors offline for P-RMWP
// (paper §IV-B: "partitioned scheduling assigns tasks to processors offline
// and they do not migrate among processors online"). Each processor's
// assignment must independently pass the uniprocessor RMWP admission test.
package partition

import (
	"errors"
	"fmt"
	"sort"

	"rtseed/internal/analysis"
	"rtseed/internal/task"
)

// Heuristic is a bin-packing heuristic for partitioned assignment.
type Heuristic int

const (
	// FirstFit places each task on the lowest-indexed processor that admits
	// it.
	FirstFit Heuristic = iota + 1
	// BestFit places each task on the admitting processor with the highest
	// current utilization (tightest fit).
	BestFit
	// WorstFit places each task on the admitting processor with the lowest
	// current utilization (load balancing).
	WorstFit
)

// String implements fmt.Stringer.
func (h Heuristic) String() string {
	switch h {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case WorstFit:
		return "worst-fit"
	default:
		return "unknown-heuristic"
	}
}

// ErrNoFit is wrapped by Partition's error when a task fits on no processor.
var ErrNoFit = errors.New("partition: task fits on no processor")

// Assignment maps each processor index to the tasks assigned to it.
type Assignment struct {
	// PerProcessor[p] lists the tasks of processor p, in assignment order.
	PerProcessor [][]task.Task
	// Processor maps task name to processor index.
	Processor map[string]int
}

// Utilization returns processor p's assigned utilization.
func (a *Assignment) Utilization(p int) float64 {
	u := 0.0
	for _, t := range a.PerProcessor[p] {
		u += t.Utilization()
	}
	return u
}

// UsedProcessors returns how many processors received at least one task.
func (a *Assignment) UsedProcessors() int {
	n := 0
	for _, ts := range a.PerProcessor {
		if len(ts) > 0 {
			n++
		}
	}
	return n
}

// Partition assigns the tasks of s to m processors using heuristic h,
// considering tasks in decreasing-utilization order (the "-decreasing"
// variants, which dominate their plain counterparts). Admission on each
// processor is the uniprocessor RMWP test, so a successful partition is
// RMWP-schedulable by construction.
func Partition(s *task.Set, m int, h Heuristic) (*Assignment, error) {
	if s == nil || s.Len() == 0 {
		return nil, task.ErrEmptyTaskSet
	}
	if m <= 0 {
		return nil, fmt.Errorf("partition: need at least one processor, got %d", m)
	}
	ordered := make([]task.Task, s.Len())
	copy(ordered, s.Tasks)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].Utilization() > ordered[j].Utilization()
	})

	a := &Assignment{
		PerProcessor: make([][]task.Task, m),
		Processor:    make(map[string]int, s.Len()),
	}
	for _, t := range ordered {
		p, err := place(a, t, m, h)
		if err != nil {
			return nil, fmt.Errorf("task %s (U=%.3f): %w", t.Name, t.Utilization(), err)
		}
		a.PerProcessor[p] = append(a.PerProcessor[p], t)
		a.Processor[t.Name] = p
	}
	return a, nil
}

func place(a *Assignment, t task.Task, m int, h Heuristic) (int, error) {
	best := -1
	var bestU float64
	for p := 0; p < m; p++ {
		if !admits(a.PerProcessor[p], t) {
			continue
		}
		u := a.Utilization(p)
		switch h {
		case FirstFit:
			return p, nil
		case BestFit:
			if best < 0 || u > bestU {
				best, bestU = p, u
			}
		case WorstFit:
			if best < 0 || u < bestU {
				best, bestU = p, u
			}
		default:
			return 0, fmt.Errorf("partition: unknown heuristic %d", h)
		}
	}
	if best < 0 {
		return 0, ErrNoFit
	}
	return best, nil
}

// admits reports whether processor contents plus t pass the RMWP test.
func admits(existing []task.Task, t task.Task) bool {
	all := make([]task.Task, 0, len(existing)+1)
	all = append(all, existing...)
	all = append(all, t)
	set, err := task.NewSet(all...)
	if err != nil {
		return false
	}
	_, err = analysis.RMWP(set)
	return err == nil
}
