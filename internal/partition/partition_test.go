package partition

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"rtseed/internal/analysis"
	"rtseed/internal/task"
)

func ms(d int) time.Duration { return time.Duration(d) * time.Millisecond }

func set(us ...float64) *task.Set {
	tasks := make([]task.Task, len(us))
	for i, u := range us {
		c := time.Duration(u * float64(100*time.Millisecond))
		tasks[i] = task.Uniform("t"+string(rune('a'+i)), c/2, c-c/2, 0, 0, ms(100))
	}
	return task.MustNewSet(tasks...)
}

func TestFirstFitPacksLow(t *testing.T) {
	a, err := Partition(set(0.3, 0.3, 0.3), 4, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	// Three tasks of U=0.3 fit... first-fit packs the first processor as
	// long as admission passes. RMWP on a uniprocessor admits these
	// (utilization 0.9 > LL bound, so exact RTA decides).
	if a.UsedProcessors() > 2 {
		t.Fatalf("first-fit used %d processors, expected tight packing", a.UsedProcessors())
	}
	total := 0
	for _, ts := range a.PerProcessor {
		total += len(ts)
	}
	if total != 3 {
		t.Fatalf("assigned %d tasks, want 3", total)
	}
}

func TestWorstFitBalances(t *testing.T) {
	a, err := Partition(set(0.3, 0.3, 0.3, 0.3), 4, WorstFit)
	if err != nil {
		t.Fatal(err)
	}
	if a.UsedProcessors() != 4 {
		t.Fatalf("worst-fit used %d processors, want 4 (one task each)", a.UsedProcessors())
	}
}

func TestBestFitTightens(t *testing.T) {
	a, err := Partition(set(0.5, 0.3, 0.1), 3, BestFit)
	if err != nil {
		t.Fatal(err)
	}
	// Best-fit favours the fullest admitting processor, so it should not
	// spread over all three processors.
	if a.UsedProcessors() == 3 {
		t.Fatal("best-fit spread tasks over all processors")
	}
}

func TestEachProcessorRMWPSchedulable(t *testing.T) {
	s := set(0.6, 0.5, 0.4, 0.3, 0.2, 0.2)
	a, err := Partition(s, 4, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	for p, ts := range a.PerProcessor {
		if len(ts) == 0 {
			continue
		}
		sub := task.MustNewSet(ts...)
		if _, err := analysis.RMWP(sub); err != nil {
			t.Fatalf("processor %d assignment not RMWP-schedulable: %v", p, err)
		}
	}
}

func TestNoFit(t *testing.T) {
	// Two tasks that each need a whole processor, one processor.
	_, err := Partition(set(0.9, 0.9), 1, FirstFit)
	if err == nil {
		t.Fatal("impossible partition accepted")
	}
	if !errors.Is(err, ErrNoFit) {
		t.Fatalf("error %v should wrap ErrNoFit", err)
	}
}

func TestArgumentValidation(t *testing.T) {
	if _, err := Partition(nil, 2, FirstFit); err == nil {
		t.Fatal("nil set accepted")
	}
	if _, err := Partition(set(0.1), 0, FirstFit); err == nil {
		t.Fatal("zero processors accepted")
	}
	if _, err := Partition(set(0.1), 1, Heuristic(0)); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
}

func TestHeuristicStrings(t *testing.T) {
	for _, h := range []Heuristic{FirstFit, BestFit, WorstFit} {
		if h.String() == "unknown-heuristic" {
			t.Fatalf("heuristic %d missing label", h)
		}
	}
}

// Property: every successful partition assigns every task exactly once, to a
// valid processor, and every processor passes RMWP admission.
func TestPropertyPartitionSound(t *testing.T) {
	f := func(seed []uint8, hIdx uint8, mRaw uint8) bool {
		if len(seed) == 0 {
			return true
		}
		if len(seed) > 12 {
			seed = seed[:12]
		}
		m := int(mRaw%8) + 1
		h := []Heuristic{FirstFit, BestFit, WorstFit}[int(hIdx)%3]
		tasks := make([]task.Task, len(seed))
		for i, b := range seed {
			c := time.Duration(b%40+10) * time.Millisecond // U in [0.1, 0.5]
			tasks[i] = task.Task{
				Name:      "t" + string(rune('A'+i)),
				Mandatory: c / 2,
				Windup:    c - c/2,
				Period:    ms(100),
			}
		}
		s := task.MustNewSet(tasks...)
		a, err := Partition(s, m, h)
		if err != nil {
			return true // infeasible inputs are out of scope
		}
		if len(a.Processor) != len(tasks) {
			return false
		}
		count := 0
		for p, ts := range a.PerProcessor {
			count += len(ts)
			if len(ts) == 0 {
				continue
			}
			if _, err := analysis.RMWP(task.MustNewSet(ts...)); err != nil {
				return false
			}
			for _, tk := range ts {
				if a.Processor[tk.Name] != p {
					return false
				}
			}
		}
		return count == len(tasks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
