package task

import (
	"fmt"
	"time"

	"rtseed/internal/trace"
)

// PartOutcome is the fate of one parallel optional part in one job
// (paper Fig. 1: completed, terminated, or discarded independently).
type PartOutcome int

const (
	// PartCompleted means the optional part ran to completion before the
	// optional deadline.
	PartCompleted PartOutcome = iota + 1
	// PartTerminated means the optional deadline expired mid-execution and
	// the part was cut off.
	PartTerminated
	// PartDiscarded means the part never started: there was no time to
	// execute it, so it was never signalled.
	PartDiscarded
)

// String implements fmt.Stringer.
func (p PartOutcome) String() string {
	switch p {
	case PartCompleted:
		return "completed"
	case PartTerminated:
		return "terminated"
	case PartDiscarded:
		return "discarded"
	default:
		return "unknown"
	}
}

// PartRecord is the per-job accounting for one parallel optional part.
type PartRecord struct {
	Outcome PartOutcome
	// Executed is how much of the part's execution time actually ran.
	Executed time.Duration
	// Length is the part's full execution time o_{i,k}.
	Length time.Duration
}

// Progress returns the executed fraction in [0,1]: the QoS contribution of
// this part ("the longer the optional part of each task takes to execute,
// the higher its QoS is", paper §II-A).
func (p PartRecord) Progress() float64 {
	if p.Length <= 0 {
		return 1
	}
	f := float64(p.Executed) / float64(p.Length)
	if f > 1 {
		f = 1
	}
	return f
}

// JobRecord is the per-job accounting for one task.
type JobRecord struct {
	// Job is the job index, starting at 0.
	Job int
	// Release, MandatoryStart, WindupStart and Finish are the job's
	// protocol timestamps in virtual time since simulation start.
	Release        time.Duration
	MandatoryStart time.Duration
	WindupStart    time.Duration
	Finish         time.Duration
	// Deadline is the job's absolute deadline.
	Deadline time.Duration
	// Parts holds one record per parallel optional part.
	Parts []PartRecord
}

// Met reports whether the job finished by its deadline, via the shared
// trace.MissedDeadline predicate so every policy counts misses identically.
func (j JobRecord) Met() bool { return !trace.MissedDeadline(j.Finish, j.Deadline) }

// QoS returns the job's quality of service: the mean progress of its
// parallel optional parts (1 if the task has none — the result is then
// always precise).
func (j JobRecord) QoS() float64 {
	if len(j.Parts) == 0 {
		return 1
	}
	sum := 0.0
	for _, p := range j.Parts {
		sum += p.Progress()
	}
	return sum / float64(len(j.Parts))
}

// Stats aggregates job records for one task.
type Stats struct {
	Jobs            int
	DeadlineMisses  int
	MeanQoS         float64
	CompletedParts  int
	TerminatedParts int
	DiscardedParts  int
}

// Summarize aggregates a slice of job records.
func Summarize(jobs []JobRecord) Stats {
	var s Stats
	s.Jobs = len(jobs)
	qosSum := 0.0
	for _, j := range jobs {
		if !j.Met() {
			s.DeadlineMisses++
		}
		qosSum += j.QoS()
		for _, p := range j.Parts {
			switch p.Outcome {
			case PartCompleted:
				s.CompletedParts++
			case PartTerminated:
				s.TerminatedParts++
			case PartDiscarded:
				s.DiscardedParts++
			}
		}
	}
	if s.Jobs > 0 {
		s.MeanQoS = qosSum / float64(s.Jobs)
	}
	return s
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("jobs=%d misses=%d qos=%.3f parts{done=%d cut=%d drop=%d}",
		s.Jobs, s.DeadlineMisses, s.MeanQoS,
		s.CompletedParts, s.TerminatedParts, s.DiscardedParts)
}
