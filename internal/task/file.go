package task

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// taskJSON is the on-disk form of a Task: durations as Go duration strings
// so configs stay human-editable.
type taskJSON struct {
	Name      string `json:"name"`
	Mandatory string `json:"mandatory"`
	Windup    string `json:"windup"`
	Period    string `json:"period"`
	Optional  string `json:"optional,omitempty"`
	NumOpt    int    `json:"numOptional,omitempty"`
}

// setJSON is the on-disk form of a Set.
type setJSON struct {
	Tasks []taskJSON `json:"tasks"`
}

// WriteJSON serializes the set as indented JSON with human-readable
// durations. Tasks with non-uniform optional parts are rejected — the file
// format stores one length plus a count, matching Uniform.
func (s *Set) WriteJSON(w io.Writer) error {
	out := setJSON{Tasks: make([]taskJSON, 0, s.Len())}
	for _, t := range s.Tasks {
		tj := taskJSON{
			Name:      t.Name,
			Mandatory: t.Mandatory.String(),
			Windup:    t.Windup.String(),
			Period:    t.Period.String(),
			NumOpt:    t.NumOptional(),
		}
		if len(t.Optional) > 0 {
			first := t.Optional[0]
			for k, o := range t.Optional {
				if o != first {
					return fmt.Errorf("task %s: optional part %d differs; the JSON format stores uniform parts", t.Name, k)
				}
			}
			tj.Optional = first.String()
		}
		out.Tasks = append(out.Tasks, tj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a set written by WriteJSON (or hand-authored in the same
// shape) and validates it.
func ReadJSON(r io.Reader) (*Set, error) {
	var in setJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("task: parse json: %w", err)
	}
	tasks := make([]Task, 0, len(in.Tasks))
	for _, tj := range in.Tasks {
		m, err := parseDur(tj.Name, "mandatory", tj.Mandatory)
		if err != nil {
			return nil, err
		}
		w, err := parseDur(tj.Name, "windup", tj.Windup)
		if err != nil {
			return nil, err
		}
		period, err := parseDur(tj.Name, "period", tj.Period)
		if err != nil {
			return nil, err
		}
		var opt time.Duration
		if tj.Optional != "" {
			opt, err = parseDur(tj.Name, "optional", tj.Optional)
			if err != nil {
				return nil, err
			}
		}
		if tj.NumOpt > 0 && opt <= 0 {
			return nil, fmt.Errorf("task %s: numOptional=%d requires optional duration", tj.Name, tj.NumOpt)
		}
		tasks = append(tasks, Uniform(tj.Name, m, w, opt, tj.NumOpt, period))
	}
	return NewSet(tasks...)
}

func parseDur(task, field, v string) (time.Duration, error) {
	if v == "" {
		return 0, fmt.Errorf("task %s: missing %s", task, field)
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("task %s: %s: %w", task, field, err)
	}
	return d, nil
}

// LoadFile reads a task-set JSON file.
func LoadFile(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}

// SaveFile writes the set as a task-set JSON file.
func (s *Set) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.WriteJSON(f)
}
