package task

import (
	"fmt"
	"math"
	"time"

	"rtseed/internal/engine"
)

// GenConfig parameterizes random task-set generation for schedulability
// experiments (acceptance-ratio curves and the breakdown comparisons).
type GenConfig struct {
	// N is the number of tasks per set.
	N int
	// TotalUtilization is the target ΣU_i, distributed with UUniFast.
	TotalUtilization float64
	// MinPeriod and MaxPeriod bound the log-uniform period distribution.
	MinPeriod, MaxPeriod time.Duration
	// WindupFraction is w_i / C_i (default 0.5 when zero).
	WindupFraction float64
	// NumOptional and OptionalLength configure each task's parallel
	// optional parts (np defaults to 0).
	NumOptional    int
	OptionalLength time.Duration
	// Seed seeds the generator.
	Seed uint64
	// NamePrefix prefixes generated task names ("g" when empty, yielding
	// g0, g1, ...). Callers that pool sets from many generator draws — the
	// cluster front-end admits thousands of client sets onto one machine —
	// use it to keep task names globally unique.
	NamePrefix string
}

func (c *GenConfig) fillDefaults() {
	if c.MinPeriod == 0 {
		c.MinPeriod = 10 * time.Millisecond
	}
	if c.MaxPeriod == 0 {
		c.MaxPeriod = time.Second
	}
	if c.WindupFraction == 0 {
		c.WindupFraction = 0.5
	}
	if c.NamePrefix == "" {
		c.NamePrefix = "g"
	}
}

// Generate draws one random task set with the UUniFast utilization
// distribution (Bini & Buttazzo): N utilizations summing exactly to
// TotalUtilization, each in (0, TotalUtilization).
func Generate(cfg GenConfig) (*Set, error) {
	cfg.fillDefaults()
	if cfg.N <= 0 {
		return nil, fmt.Errorf("task: generator needs N > 0, got %d", cfg.N)
	}
	if cfg.TotalUtilization <= 0 || cfg.TotalUtilization > float64(cfg.N) {
		return nil, fmt.Errorf("task: total utilization %.3f outside (0, %d]",
			cfg.TotalUtilization, cfg.N)
	}
	if cfg.WindupFraction <= 0 || cfg.WindupFraction >= 1 {
		return nil, fmt.Errorf("task: wind-up fraction %.3f outside (0, 1)", cfg.WindupFraction)
	}
	if cfg.MinPeriod <= 0 || cfg.MaxPeriod < cfg.MinPeriod {
		return nil, fmt.Errorf("task: bad period range [%v, %v]", cfg.MinPeriod, cfg.MaxPeriod)
	}
	rng := engine.NewRand(cfg.Seed + 1)
	utils := uuniFast(rng, cfg.N, cfg.TotalUtilization)
	tasks := make([]Task, cfg.N)
	for i, u := range utils {
		period := logUniform(rng, cfg.MinPeriod, cfg.MaxPeriod)
		wcet := time.Duration(u * float64(period))
		if wcet < 2 {
			wcet = 2
		}
		if wcet > period {
			wcet = period
		}
		w := time.Duration(float64(wcet) * cfg.WindupFraction)
		if w < 1 {
			w = 1
		}
		m := wcet - w
		if m < 1 {
			m = 1
			w = wcet - m
		}
		tasks[i] = Uniform(fmt.Sprintf("%s%d", cfg.NamePrefix, i), m, w, cfg.OptionalLength, cfg.NumOptional, period)
	}
	return NewSet(tasks...)
}

// uuniFast draws n utilizations summing to total (Bini & Buttazzo 2005).
func uuniFast(rng *engine.Rand, n int, total float64) []float64 {
	out := make([]float64, n)
	sum := total
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(rng.Float64(), 1/float64(n-i-1))
		out[i] = sum - next
		sum = next
	}
	out[n-1] = sum
	return out
}

// logUniform draws a period log-uniformly in [lo, hi].
func logUniform(rng *engine.Rand, lo, hi time.Duration) time.Duration {
	if lo == hi {
		return lo
	}
	r := rng.Float64()
	logLo, logHi := math.Log(float64(lo)), math.Log(float64(hi))
	return time.Duration(math.Exp(logLo + r*(logHi-logLo)))
}
