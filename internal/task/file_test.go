package task

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestJSONRoundTrip(t *testing.T) {
	s := MustNewSet(
		Uniform("tau1", 250*time.Millisecond, 250*time.Millisecond, time.Second, 8, time.Second),
		Uniform("pure", 5*time.Millisecond, 5*time.Millisecond, 0, 0, 50*time.Millisecond),
	)
	path := filepath.Join(t.TempDir(), "set.json")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("%d tasks", got.Len())
	}
	for i := range s.Tasks {
		a, b := s.Tasks[i], got.Tasks[i]
		if a.Name != b.Name || a.Mandatory != b.Mandatory || a.Windup != b.Windup ||
			a.Period != b.Period || a.NumOptional() != b.NumOptional() {
			t.Fatalf("task %d changed: %+v vs %+v", i, a, b)
		}
		for k := range a.Optional {
			if a.Optional[k] != b.Optional[k] {
				t.Fatalf("optional %d changed", k)
			}
		}
	}
}

func TestWriteJSONRejectsNonUniform(t *testing.T) {
	s := MustNewSet(Task{
		Name:      "mixed",
		Mandatory: time.Millisecond,
		Windup:    time.Millisecond,
		Optional:  []time.Duration{time.Second, 2 * time.Second},
		Period:    time.Second,
	})
	var b strings.Builder
	if err := s.WriteJSON(&b); err == nil {
		t.Fatal("non-uniform optional parts serialized")
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"tasks":[{"name":"a","mandatory":"1ms","windup":"1ms"}]}`,                               // missing period
		`{"tasks":[{"name":"a","mandatory":"x","windup":"1ms","period":"1s"}]}`,                   // bad duration
		`{"tasks":[{"name":"a","mandatory":"1ms","windup":"1ms","period":"1s","numOptional":2}]}`, // np without o
		`{"tasks":[],"bogus":1}`, // unknown field
		`{"tasks":[]}`,           // empty set
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
