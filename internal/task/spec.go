package task

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses a compact task-set description used by the command-line
// tools. The grammar is a semicolon-separated list of tasks, each
//
//	name:m=<dur>,w=<dur>,T=<dur>[,o=<dur>][,np=<int>]
//
// for example:
//
//	tau1:m=250ms,w=250ms,T=1s,o=1s,np=8; tau2:m=10ms,w=5ms,T=100ms
//
// Durations use Go syntax (ms, s, ...). np defaults to 0 (no optional
// parts); o is required when np > 0.
func ParseSpec(spec string) (*Set, error) {
	var tasks []Task
	for _, chunk := range strings.Split(spec, ";") {
		chunk = strings.TrimSpace(chunk)
		if chunk == "" {
			continue
		}
		t, err := parseTask(chunk)
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, t)
	}
	return NewSet(tasks...)
}

func parseTask(chunk string) (Task, error) {
	name, rest, ok := strings.Cut(chunk, ":")
	if !ok {
		return Task{}, fmt.Errorf("task: spec %q missing name separator ':'", chunk)
	}
	name = strings.TrimSpace(name)
	if name == "" {
		return Task{}, fmt.Errorf("task: spec %q has an empty name", chunk)
	}
	t := Task{Name: name}
	var optLen time.Duration
	np := 0
	for _, field := range strings.Split(rest, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Task{}, fmt.Errorf("task %s: field %q is not key=value", name, field)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "np":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Task{}, fmt.Errorf("task %s: np: %w", name, err)
			}
			np = n
		case "m", "w", "T", "o":
			d, err := time.ParseDuration(val)
			if err != nil {
				return Task{}, fmt.Errorf("task %s: %s: %w", name, key, err)
			}
			switch key {
			case "m":
				t.Mandatory = d
			case "w":
				t.Windup = d
			case "T":
				t.Period = d
			case "o":
				optLen = d
			}
		default:
			return Task{}, fmt.Errorf("task %s: unknown field %q", name, key)
		}
	}
	if np < 0 {
		return Task{}, fmt.Errorf("task %s: np must be non-negative, got %d", name, np)
	}
	if np > 0 && optLen <= 0 {
		return Task{}, fmt.Errorf("task %s: np=%d requires o=<duration>", name, np)
	}
	t.Optional = make([]time.Duration, np)
	for i := range t.Optional {
		t.Optional[i] = optLen
	}
	if err := t.Validate(); err != nil {
		return Task{}, err
	}
	return t, nil
}
