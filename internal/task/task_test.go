package task

import (
	"testing"
	"testing/quick"
	"time"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		task Task
		ok   bool
	}{
		{"valid", Task{Name: "a", Mandatory: 250 * time.Millisecond, Windup: 250 * time.Millisecond, Period: time.Second}, true},
		{"zero period", Task{Name: "a", Mandatory: 1, Windup: 1}, false},
		{"negative mandatory", Task{Name: "a", Mandatory: -1, Windup: 1, Period: 10}, false},
		{"zero wcet", Task{Name: "a", Period: 10}, false},
		{"wcet exceeds period", Task{Name: "a", Mandatory: 6, Windup: 6, Period: 10}, false},
		{"negative optional", Task{Name: "a", Mandatory: 1, Windup: 1, Period: 10, Optional: []time.Duration{-1}}, false},
		{"mandatory only", Task{Name: "a", Mandatory: 5, Period: 10}, true},
	}
	for _, c := range cases {
		if err := c.task.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestWCETExcludesOptional(t *testing.T) {
	// "U_i is not included in the execution time of the parallel optional
	// parts" — WCET is m+w only (paper §II-A).
	tk := Uniform("t", 250*time.Millisecond, 250*time.Millisecond, time.Second, 8, time.Second)
	if tk.WCET() != 500*time.Millisecond {
		t.Fatalf("WCET %v, want 500ms", tk.WCET())
	}
	if tk.Utilization() != 0.5 {
		t.Fatalf("U %v, want 0.5", tk.Utilization())
	}
	if tk.OptionalUtilization() != 8.0 {
		t.Fatalf("U^o %v, want 8.0", tk.OptionalUtilization())
	}
	if tk.NumOptional() != 8 {
		t.Fatalf("np %d, want 8", tk.NumOptional())
	}
}

func TestUniformBuildsPaperTask(t *testing.T) {
	// The paper's evaluation task: T=1s, m=250ms, w=250ms, o=1s.
	tk := Uniform("tau1", 250*time.Millisecond, 250*time.Millisecond, time.Second, 228, time.Second)
	if err := tk.Validate(); err != nil {
		t.Fatal(err)
	}
	if tk.Deadline() != tk.Period {
		t.Fatal("implicit deadline must equal period")
	}
	for _, o := range tk.Optional {
		if o != time.Second {
			t.Fatal("uniform optional lengths expected")
		}
	}
}

func TestNewSetValidates(t *testing.T) {
	if _, err := NewSet(); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := NewSet(Task{Name: "bad"}); err == nil {
		t.Fatal("invalid task accepted")
	}
	s, err := NewSet(Uniform("a", 1, 1, 0, 0, 10))
	if err != nil || s.Len() != 1 {
		t.Fatalf("valid set rejected: %v", err)
	}
}

func TestSetIsolatedFromCaller(t *testing.T) {
	tasks := []Task{Uniform("a", 1, 1, 0, 0, 10)}
	s := MustNewSet(tasks...)
	tasks[0].Name = "mutated"
	if s.Tasks[0].Name != "a" {
		t.Fatal("set must copy its input")
	}
}

func TestSortedByRM(t *testing.T) {
	s := MustNewSet(
		Uniform("slow", 1, 1, 0, 0, 100),
		Uniform("fast", 1, 1, 0, 0, 10),
		Uniform("mid", 1, 1, 0, 0, 50),
		Uniform("fast2", 1, 1, 0, 0, 10), // tie: declaration order
	)
	got := s.SortedByRM()
	want := []string{"fast", "fast2", "mid", "slow"}
	for i, w := range want {
		if got[i].Name != w {
			t.Fatalf("RM order %v, want %v", names(got), want)
		}
	}
	// Receiver unchanged.
	if s.Tasks[0].Name != "slow" {
		t.Fatal("SortedByRM must not mutate the set")
	}
}

func names(ts []Task) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}

func TestUtilizations(t *testing.T) {
	s := MustNewSet(
		Uniform("a", 2, 2, 0, 0, 10), // U=0.4
		Uniform("b", 1, 1, 0, 0, 10), // U=0.2
	)
	if u := s.Utilization(); u < 0.599 || u > 0.601 {
		t.Fatalf("U=%v, want 0.6", u)
	}
	if u := s.SystemUtilization(2); u < 0.299 || u > 0.301 {
		t.Fatalf("system U=%v, want 0.3", u)
	}
	if s.SystemUtilization(0) != 0 {
		t.Fatal("system U on zero processors should be 0")
	}
}

func TestHyperperiod(t *testing.T) {
	s := MustNewSet(
		Uniform("a", 1, 1, 0, 0, 4*time.Millisecond),
		Uniform("b", 1, 1, 0, 0, 6*time.Millisecond),
	)
	if hp := s.Hyperperiod(); hp != 12*time.Millisecond {
		t.Fatalf("hyperperiod %v, want 12ms", hp)
	}
}

func TestPartRecordProgress(t *testing.T) {
	p := PartRecord{Outcome: PartTerminated, Executed: 250 * time.Millisecond, Length: time.Second}
	if p.Progress() != 0.25 {
		t.Fatalf("progress %v, want 0.25", p.Progress())
	}
	full := PartRecord{Outcome: PartCompleted, Executed: 2 * time.Second, Length: time.Second}
	if full.Progress() != 1 {
		t.Fatal("progress must clamp to 1")
	}
	zero := PartRecord{Length: 0}
	if zero.Progress() != 1 {
		t.Fatal("zero-length part counts as complete")
	}
}

func TestJobRecordQoSAndDeadline(t *testing.T) {
	j := JobRecord{
		Finish:   900 * time.Millisecond,
		Deadline: time.Second,
		Parts: []PartRecord{
			{Outcome: PartCompleted, Executed: 10, Length: 10},
			{Outcome: PartDiscarded, Executed: 0, Length: 10},
		},
	}
	if !j.Met() {
		t.Fatal("job met its deadline")
	}
	if j.QoS() != 0.5 {
		t.Fatalf("QoS %v, want 0.5", j.QoS())
	}
	empty := JobRecord{Finish: 2, Deadline: 1}
	if empty.Met() {
		t.Fatal("late job must miss")
	}
	if empty.QoS() != 1 {
		t.Fatal("no optional parts means full QoS")
	}
}

func TestSummarize(t *testing.T) {
	jobs := []JobRecord{
		{Finish: 1, Deadline: 2, Parts: []PartRecord{{Outcome: PartCompleted, Executed: 1, Length: 1}}},
		{Finish: 3, Deadline: 2, Parts: []PartRecord{{Outcome: PartTerminated, Executed: 1, Length: 2}}},
		{Finish: 1, Deadline: 2, Parts: []PartRecord{{Outcome: PartDiscarded, Length: 2}}},
	}
	s := Summarize(jobs)
	if s.Jobs != 3 || s.DeadlineMisses != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.CompletedParts != 1 || s.TerminatedParts != 1 || s.DiscardedParts != 1 {
		t.Fatalf("part outcomes %+v", s)
	}
	want := (1.0 + 0.5 + 0.0) / 3
	if s.MeanQoS < want-1e-9 || s.MeanQoS > want+1e-9 {
		t.Fatalf("mean QoS %v, want %v", s.MeanQoS, want)
	}
	if Summarize(nil).Jobs != 0 {
		t.Fatal("empty summary")
	}
}

func TestModelStrings(t *testing.T) {
	for _, m := range []Model{ModelLiuLayland, ModelImprecise, ModelExtendedImprecise, ModelParallelExtended} {
		if m.String() == "unknown-model" {
			t.Fatalf("model %d missing label", m)
		}
	}
}

func TestOutcomeStrings(t *testing.T) {
	for _, o := range []PartOutcome{PartCompleted, PartTerminated, PartDiscarded} {
		if o.String() == "unknown" {
			t.Fatalf("outcome %d missing label", o)
		}
	}
}

// Property: utilization is always WCET/period and within (0, 1] for valid
// tasks.
func TestPropertyUtilizationBounds(t *testing.T) {
	f := func(m, w uint16, period uint16) bool {
		p := time.Duration(period%1000+1) * time.Millisecond
		md := time.Duration(m) * time.Microsecond
		wd := time.Duration(w) * time.Microsecond
		tk := Task{Name: "t", Mandatory: md, Windup: wd, Period: p}
		if err := tk.Validate(); err != nil {
			return true // invalid tasks are out of scope
		}
		u := tk.Utilization()
		return u > 0 && u <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SortedByRM is a permutation sorted by period.
func TestPropertySortedByRM(t *testing.T) {
	f := func(periods []uint16) bool {
		if len(periods) == 0 {
			return true
		}
		tasks := make([]Task, len(periods))
		for i, p := range periods {
			tasks[i] = Uniform("t", 1, 1, 0, 0, time.Duration(p%100+1)*time.Millisecond)
		}
		s := MustNewSet(tasks...)
		sorted := s.SortedByRM()
		if len(sorted) != len(tasks) {
			return false
		}
		for i := 1; i < len(sorted); i++ {
			if sorted[i].Period < sorted[i-1].Period {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringMethods(t *testing.T) {
	tk := Uniform("s", time.Millisecond, time.Millisecond, time.Second, 2, 10*time.Millisecond)
	if tk.String() == "" {
		t.Fatal("empty task string")
	}
	st := Summarize([]JobRecord{{Finish: 1, Deadline: 2}})
	if st.String() == "" {
		t.Fatal("empty stats string")
	}
	if PartOutcome(0).String() != "unknown" {
		t.Fatal("zero outcome label")
	}
}
