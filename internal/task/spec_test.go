package task

import (
	"testing"
	"time"
)

func TestParseSpecPaperTask(t *testing.T) {
	s, err := ParseSpec("tau1:m=250ms,w=250ms,T=1s,o=1s,np=8")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("%d tasks, want 1", s.Len())
	}
	tk := s.Tasks[0]
	if tk.Name != "tau1" || tk.Mandatory != 250*time.Millisecond ||
		tk.Windup != 250*time.Millisecond || tk.Period != time.Second {
		t.Fatalf("parsed %+v", tk)
	}
	if tk.NumOptional() != 8 || tk.Optional[0] != time.Second {
		t.Fatalf("optional parts %v", tk.Optional)
	}
}

func TestParseSpecMultiTask(t *testing.T) {
	s, err := ParseSpec(" a:m=10ms,w=5ms,T=100ms ; b:m=1ms,w=1ms,T=10ms ")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Tasks[0].Name != "a" || s.Tasks[1].Name != "b" {
		t.Fatalf("parsed %+v", s.Tasks)
	}
	if s.Tasks[0].NumOptional() != 0 {
		t.Fatal("np should default to 0")
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []string{
		"",                           // empty
		"noname",                     // no colon
		":m=1ms,w=1ms,T=10ms",        // empty name
		"a:m=1ms",                    // missing period
		"a:m=1ms,w=1ms,T=10ms,np=2",  // np without o
		"a:m=1ms,w=1ms,T=10ms,np=-1", // negative np
		"a:m=bogus,w=1ms,T=10ms",     // bad duration
		"a:m=1ms,w=1ms,T=10ms,x=1",   // unknown field
		"a:m=1ms w=1ms",              // not key=value
		"a:m=20ms,w=20ms,T=10ms",     // WCET > period
		"a:np=banana,m=1ms,w=1ms,T=10ms",
	}
	for _, spec := range cases {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}
