package task

import (
	"testing"
	"time"
)

func TestRMBandPrioritiesDistinctLevels(t *testing.T) {
	set := MustNewSet(
		Uniform("slow", time.Millisecond, time.Millisecond, 0, 0, 100*time.Millisecond),
		Uniform("fast", time.Millisecond, time.Millisecond, 0, 0, 10*time.Millisecond),
		Uniform("mid", time.Millisecond, time.Millisecond, 0, 0, 50*time.Millisecond),
	)
	prios, err := RMBandPriorities(set, 50, 98)
	if err != nil {
		t.Fatal(err)
	}
	// fast > mid > slow, fastest at the top of the band.
	if prios[1] != 98 {
		t.Fatalf("fastest task priority %d, want 98", prios[1])
	}
	if !(prios[1] > prios[2] && prios[2] > prios[0]) {
		t.Fatalf("priorities %v not RM-ordered", prios)
	}
	for _, p := range prios {
		if p < 50 || p > 98 {
			t.Fatalf("priority %d outside band [50, 98]", p)
		}
	}
}

func TestRMBandPrioritiesSharedLevels(t *testing.T) {
	// 1024 tasks into a 49-level band: levels are shared, monotonicity holds.
	gen, err := Generate(GenConfig{N: 1024, TotalUtilization: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	prios, err := RMBandPriorities(gen, 50, 98)
	if err != nil {
		t.Fatal(err)
	}
	for i, pi := range prios {
		if pi < 50 || pi > 98 {
			t.Fatalf("task %d priority %d outside band", i, pi)
		}
		for j, pj := range prios {
			if gen.Tasks[i].Period < gen.Tasks[j].Period && pi < pj {
				t.Fatalf("task %d (T=%v, prio %d) outranked by task %d (T=%v, prio %d)",
					i, gen.Tasks[i].Period, pi, j, gen.Tasks[j].Period, pj)
			}
		}
	}
}

func TestRMBandPrioritiesTieBreakIsDeclarationOrder(t *testing.T) {
	set := MustNewSet(
		Uniform("a", time.Millisecond, time.Millisecond, 0, 0, 10*time.Millisecond),
		Uniform("b", time.Millisecond, time.Millisecond, 0, 0, 10*time.Millisecond),
	)
	prios, err := RMBandPriorities(set, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	if prios[0] < prios[1] {
		t.Fatalf("equal periods must keep declaration order, got %v", prios)
	}
}

func TestRMBandPrioritiesErrors(t *testing.T) {
	if _, err := RMBandPriorities(nil, 1, 99); err == nil {
		t.Fatal("nil set must error")
	}
	set := MustNewSet(Uniform("a", 1, 1, 0, 0, time.Millisecond))
	if _, err := RMBandPriorities(set, 10, 9); err == nil {
		t.Fatal("empty band must error")
	}
}
