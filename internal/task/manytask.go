package task

import (
	"fmt"
	"sort"
)

// RMBandPriorities assigns rate-monotonic priorities within the inclusive
// band [lo, hi]: shorter periods receive larger values (higher SCHED_FIFO
// priority), declaration order breaks ties. When the set has more tasks than
// the band has levels, neighbouring ranks share a level — monotonicity is
// preserved (a strictly shorter period never gets a lower priority), which is
// what many-task deployments on the 99-level SCHED_FIFO substrate do in
// practice.
//
// The returned slice is parallel to s.Tasks.
func RMBandPriorities(s *Set, lo, hi int) ([]int, error) {
	if s == nil || s.Len() == 0 {
		return nil, ErrEmptyTaskSet
	}
	if lo > hi {
		return nil, fmt.Errorf("task: empty priority band [%d, %d]", lo, hi)
	}
	n := s.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return s.Tasks[order[a]].Period < s.Tasks[order[b]].Period
	})
	band := hi - lo + 1
	out := make([]int, n)
	for rank, idx := range order {
		// rank 0 (shortest period) -> hi; rank n-1 -> a value >= lo.
		out[idx] = hi - rank*band/n
	}
	return out, nil
}
