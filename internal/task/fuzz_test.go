package task

import (
	"strings"
	"testing"
)

// FuzzParseSpec: the spec parser must never panic, and every accepted spec
// must produce a structurally valid task set that round-trips its counts.
func FuzzParseSpec(f *testing.F) {
	f.Add("tau1:m=250ms,w=250ms,T=1s,o=1s,np=8")
	f.Add("a:m=1ms,w=1ms,T=10ms; b:m=2ms,w=2ms,T=20ms")
	f.Add("x:m=1ns,w=1ns,T=2ns")
	f.Add(";;;")
	f.Add("a:m=,w=,T=")
	f.Add("a:np=3,o=1s,m=1ms,w=1ms,T=1s")
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseSpec(spec)
		if err != nil {
			return
		}
		if s.Len() == 0 {
			t.Fatalf("accepted spec %q with no tasks", spec)
		}
		for _, tk := range s.Tasks {
			if err := tk.Validate(); err != nil {
				t.Fatalf("accepted invalid task from %q: %v", spec, err)
			}
			if strings.TrimSpace(tk.Name) == "" {
				t.Fatalf("accepted empty name from %q", spec)
			}
		}
		if s.Utilization() <= 0 {
			t.Fatalf("accepted zero-utilization set from %q", spec)
		}
	})
}
