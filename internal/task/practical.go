package task

import (
	"fmt"
	"time"
)

// Section is one stage of a practical imprecise task: a mandatory part
// followed by parallel optional parts that refine it.
type Section struct {
	// Mandatory is the stage's mandatory WCET.
	Mandatory time.Duration
	// Optional holds the stage's parallel optional part lengths.
	Optional []time.Duration
}

// PracticalTask is the practical imprecise computation model with multiple
// mandatory parts — the paper's stated future work (§VII, citing Chishiro &
// Yamasaki, ISORC 2013): a job is a sequence of sections, each a mandatory
// part followed by parallel optional parts with a per-section optional
// deadline, closed by a single wind-up part. With one section it reduces to
// the parallel-extended imprecise computation model.
type PracticalTask struct {
	Name     string
	Sections []Section
	// Windup is the final wind-up part's WCET.
	Windup time.Duration
	// Period is T = D.
	Period time.Duration
}

// Validate checks the structural constraints.
func (t PracticalTask) Validate() error {
	if len(t.Sections) == 0 {
		return fmt.Errorf("task %s: practical task needs at least one section", t.Name)
	}
	if t.Period <= 0 {
		return fmt.Errorf("task %s: period %v must be positive", t.Name, t.Period)
	}
	if t.Windup < 0 {
		return fmt.Errorf("task %s: negative wind-up", t.Name)
	}
	var mandatory time.Duration
	for i, s := range t.Sections {
		if s.Mandatory <= 0 {
			return fmt.Errorf("task %s: section %d mandatory must be positive", t.Name, i)
		}
		for k, o := range s.Optional {
			if o < 0 {
				return fmt.Errorf("task %s: section %d optional %d negative", t.Name, i, k)
			}
		}
		mandatory += s.Mandatory
	}
	if mandatory+t.Windup > t.Period {
		return fmt.Errorf("task %s: Σm+w = %v exceeds period %v", t.Name, mandatory+t.Windup, t.Period)
	}
	return nil
}

// TotalMandatory returns Σ_j m_j.
func (t PracticalTask) TotalMandatory() time.Duration {
	var sum time.Duration
	for _, s := range t.Sections {
		sum += s.Mandatory
	}
	return sum
}

// WCET returns Σ_j m_j + w: the real-time execution demand.
func (t PracticalTask) WCET() time.Duration { return t.TotalMandatory() + t.Windup }

// Utilization returns WCET/T.
func (t PracticalTask) Utilization() float64 { return float64(t.WCET()) / float64(t.Period) }

// NumOptional returns the total number of parallel optional parts across
// sections.
func (t PracticalTask) NumOptional() int {
	n := 0
	for _, s := range t.Sections {
		n += len(s.Optional)
	}
	return n
}

// Flatten collapses the practical task into an ordinary parallel-extended
// imprecise task with m = Σ m_j. Under semi-fixed-priority scheduling the
// mandatory parts of all sections execute back to back at the mandatory
// priority whenever every section's optional window is exhausted, so the
// flattened task has the same worst-case real-time interference pattern —
// the RMWP analysis (and the optional-deadline calculation) applies to it
// unchanged.
func (t PracticalTask) Flatten() Task {
	opts := make([]time.Duration, 0, t.NumOptional())
	for _, s := range t.Sections {
		opts = append(opts, s.Optional...)
	}
	return Task{
		Name:      t.Name,
		Mandatory: t.TotalMandatory(),
		Windup:    t.Windup,
		Optional:  opts,
		Period:    t.Period,
	}
}

// SectionDeadlines splits the interval from the release to the (relative)
// task optional deadline od into per-section optional deadlines: each
// section's window covers its mandatory part plus a share of the remaining
// slack proportional to its optional workload (even split when no section
// has optional work). The returned deadlines are relative to the release,
// strictly increasing, and the last equals od.
func (t PracticalTask) SectionDeadlines(od time.Duration) ([]time.Duration, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	mandatory := t.TotalMandatory()
	if od < mandatory {
		return nil, fmt.Errorf("task %s: optional deadline %v below total mandatory %v",
			t.Name, od, mandatory)
	}
	if od > t.Period {
		return nil, fmt.Errorf("task %s: optional deadline %v beyond period %v", t.Name, od, t.Period)
	}
	slack := od - mandatory
	var totalOpt time.Duration
	for _, s := range t.Sections {
		for _, o := range s.Optional {
			totalOpt += o
		}
	}
	out := make([]time.Duration, len(t.Sections))
	var cursor time.Duration
	for i, s := range t.Sections {
		var share time.Duration
		switch {
		case totalOpt > 0:
			var sectionOpt time.Duration
			for _, o := range s.Optional {
				sectionOpt += o
			}
			share = time.Duration(float64(slack) * float64(sectionOpt) / float64(totalOpt))
		default:
			share = slack / time.Duration(len(t.Sections))
		}
		cursor += s.Mandatory + share
		out[i] = cursor
	}
	// Absorb rounding so the final section deadline is exactly od.
	out[len(out)-1] = od
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			out[i] = out[i-1] + 1
		}
	}
	if out[len(out)-1] > od {
		return nil, fmt.Errorf("task %s: section windows do not fit optional deadline %v", t.Name, od)
	}
	return out, nil
}
