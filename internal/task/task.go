// Package task defines the parallel-extended imprecise computation model of
// the paper (§II): periodic tasks whose computation is split into a
// mandatory part, a set of parallel optional parts, and a second mandatory
// (wind-up) part. The mandatory and wind-up parts are real-time; the
// parallel optional parts only improve quality of service and may be
// completed, terminated, or discarded independently.
package task

import (
	"errors"
	"fmt"
	"time"
)

// Model identifies which computation model a task set is interpreted under.
type Model int

const (
	// ModelLiuLayland is the classic periodic model: each job runs its full
	// WCET (here m+w) with no optional component.
	ModelLiuLayland Model = iota + 1
	// ModelImprecise is the original imprecise computation model: mandatory
	// then optional, no wind-up part — so terminating the optional part
	// cannot be followed by guaranteed output assembly.
	ModelImprecise
	// ModelExtendedImprecise adds the wind-up part (mandatory/optional/
	// wind-up) with a single optional part.
	ModelExtendedImprecise
	// ModelParallelExtended is the paper's contribution: the optional part
	// is a set of parallel optional parts executed concurrently.
	ModelParallelExtended
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case ModelLiuLayland:
		return "liu-layland"
	case ModelImprecise:
		return "imprecise"
	case ModelExtendedImprecise:
		return "extended-imprecise"
	case ModelParallelExtended:
		return "parallel-extended-imprecise"
	default:
		return "unknown-model"
	}
}

// Task is one periodic parallel-extended imprecise task τ_i. The relative
// deadline D_i equals the period T_i (implicit-deadline model, paper §II-A).
type Task struct {
	// Name identifies the task in traces and reports.
	Name string
	// Mandatory is m_i, the WCET of the mandatory part.
	Mandatory time.Duration
	// Windup is w_i, the WCET of the wind-up part.
	Windup time.Duration
	// Optional holds the execution times o_{i,k} of the np_i parallel
	// optional parts. It may be empty (a pure Liu & Layland task).
	Optional []time.Duration
	// Period is T_i (= D_i).
	Period time.Duration
}

// Validate checks the structural constraints of the model.
func (t Task) Validate() error {
	switch {
	case t.Period <= 0:
		return fmt.Errorf("task %s: period %v must be positive", t.Name, t.Period)
	case t.Mandatory < 0 || t.Windup < 0:
		return fmt.Errorf("task %s: negative part length", t.Name)
	case t.Mandatory+t.Windup <= 0:
		return fmt.Errorf("task %s: mandatory+wind-up must be positive", t.Name)
	case t.Mandatory+t.Windup > t.Period:
		return fmt.Errorf("task %s: WCET %v exceeds period %v",
			t.Name, t.Mandatory+t.Windup, t.Period)
	}
	for k, o := range t.Optional {
		if o < 0 {
			return fmt.Errorf("task %s: optional part %d has negative length %v", t.Name, k, o)
		}
	}
	return nil
}

// WCET returns C_i = m_i + w_i. Optional parts are non-real-time and are
// excluded from the WCET by definition (paper §II-A).
func (t Task) WCET() time.Duration { return t.Mandatory + t.Windup }

// Deadline returns D_i = T_i.
func (t Task) Deadline() time.Duration { return t.Period }

// NumOptional returns np_i, the number of parallel optional parts.
func (t Task) NumOptional() int { return len(t.Optional) }

// Utilization returns U_i = C_i / T_i.
func (t Task) Utilization() float64 {
	return float64(t.WCET()) / float64(t.Period)
}

// OptionalUtilization returns U_i^o = Σ_k o_{i,k} / T_i, the QoS-side
// utilization of the parallel optional parts.
func (t Task) OptionalUtilization() float64 {
	var sum time.Duration
	for _, o := range t.Optional {
		sum += o
	}
	return float64(sum) / float64(t.Period)
}

// String implements fmt.Stringer.
func (t Task) String() string {
	return fmt.Sprintf("%s{m=%v, w=%v, np=%d, T=%v}",
		t.Name, t.Mandatory, t.Windup, len(t.Optional), t.Period)
}

// Uniform returns a task whose np parallel optional parts all have length o,
// the configuration of the paper's evaluation (§V-A: all o_{1,k} equal).
func Uniform(name string, m, w, o time.Duration, np int, period time.Duration) Task {
	opts := make([]time.Duration, np)
	for i := range opts {
		opts[i] = o
	}
	return Task{Name: name, Mandatory: m, Windup: w, Optional: opts, Period: period}
}

// ErrEmptyTaskSet is returned when an operation needs at least one task.
var ErrEmptyTaskSet = errors.New("task: empty task set")

// Set is a synchronous periodic task set Γ = {τ_1, ..., τ_n}: all tasks are
// released together at time zero.
type Set struct {
	Tasks []Task
}

// NewSet validates and returns a task set ordered as given.
func NewSet(tasks ...Task) (*Set, error) {
	if len(tasks) == 0 {
		return nil, ErrEmptyTaskSet
	}
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	s := &Set{Tasks: make([]Task, len(tasks))}
	copy(s.Tasks, tasks)
	return s, nil
}

// MustNewSet is NewSet for statically-valid task sets.
func MustNewSet(tasks ...Task) *Set {
	s, err := NewSet(tasks...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns n, the number of tasks.
func (s *Set) Len() int { return len(s.Tasks) }

// Utilization returns Σ U_i (NOT divided by the processor count; see
// SystemUtilization).
func (s *Set) Utilization() float64 {
	u := 0.0
	for _, t := range s.Tasks {
		u += t.Utilization()
	}
	return u
}

// SystemUtilization returns U = (1/M) Σ U_i on M processors (paper §II-A).
func (s *Set) SystemUtilization(m int) float64 {
	if m <= 0 {
		return 0
	}
	return s.Utilization() / float64(m)
}

// SortedByRM returns the tasks in rate-monotonic order: shortest period
// first, ties broken by declaration order. The receiver is not modified.
func (s *Set) SortedByRM() []Task {
	out := make([]Task, len(s.Tasks))
	copy(out, s.Tasks)
	// Stable insertion sort: task sets are small and declaration-order
	// tie-breaking matters for deterministic priority assignment.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Period < out[j-1].Period; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Hyperperiod returns the least common multiple of all task periods, the
// natural simulation horizon for a synchronous task set.
func (s *Set) Hyperperiod() time.Duration {
	l := int64(1)
	for _, t := range s.Tasks {
		l = lcm(l, int64(t.Period))
	}
	return time.Duration(l)
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int64) int64 {
	return a / gcd(a, b) * b
}
