// Package waiverdrift implements the live-waiver audit analyzer.
//
// The //rtseed:*-ok directives are load-bearing exceptions: each one asserts
// that a specific determinism/noalloc/eventhandle/exhaustive violation
// exists and is understood. As the hot paths keep getting rewritten, a
// waiver can outlive the violation it excused — and a stale waiver is worse
// than none, because it silently licenses the next, unrelated violation
// someone introduces on that line. This analyzer keeps the escape-hatch
// system honest by re-deriving, on every run, which waivers still shield a
// live finding:
//
//   - Every waiver-consuming analyzer is re-run in audit mode, where
//     Pass.Waived reports the finding anyway but records the directive that
//     would have suppressed it. A waiver directive no audit finding touched
//     is stale and flagged at its own position. nondeterministic-ok is
//     consumed by two tiers (syntactic determinism and taint-based
//     detflow): a live finding from either keeps the waiver.
//   - Placement is audited too: //rtseed:noalloc must sit on a function
//     declaration, //rtseed:kernelctx on a declaration or function literal,
//     //rtseed:kernelctx-entry on a declaration — anywhere else the
//     directive is dead weight that reads as protection.
//   - //rtseed:nondeterministic-ok outside the determinism-scoped packages
//     is misplaced: there is no contract to waive there.
//   - A //rtseed:kernelctx-entry is an entry to somewhere: if the annotated
//     function no longer reaches any //rtseed:kernelctx function over any
//     call-graph edge (including the conservative interface/dynamic tiers —
//     over-approximation errs toward keeping the blessing), the transition
//     it blessed is gone and the directive is stale.
//
// Unknown directive names and missing mandatory reasons are reported by the
// directive parser itself (see Directives.Problems, surfaced by the driver);
// this analyzer audits the well-formed ones.
package waiverdrift

import (
	"go/ast"
	"go/types"
	"strings"

	"rtseed/internal/lint"
	"rtseed/internal/lint/bodystep"
	"rtseed/internal/lint/callgraph"
	"rtseed/internal/lint/determinism"
	"rtseed/internal/lint/detflow"
	"rtseed/internal/lint/eventhandle"
	"rtseed/internal/lint/exhaustive"
	"rtseed/internal/lint/isoshare"
	"rtseed/internal/lint/noalloc"
	"rtseed/internal/lint/timeunits"
)

// Analyzer is the waiver-audit checker.
var Analyzer = &lint.Analyzer{
	Name: "waiverdrift",
	Doc: "flag stale and misplaced //rtseed: directives\n\n" +
		"Re-runs the waiver-consuming analyzers with waivers disabled and flags\n" +
		"every //rtseed:alloc-ok, handle-ok, nondeterministic-ok, partial-ok,\n" +
		"units-ok, bodystep-ok, and shared-ok that no longer shields a live\n" +
		"finding, plus directives attached to the wrong kind of code and\n" +
		"kernelctx-entry blessings that no longer reach kernel context.",
	RunModule: run,
}

// audited maps each waiver directive to the per-package analyzers whose
// findings it waives. nondeterministic-ok is consumed by two tiers — the
// syntactic determinism analyzer here and the taint-based detflow module
// analyzer below — so a waiver is live if either still finds a violation
// under it.
var audited = []struct {
	dir      string
	analyzer *lint.Analyzer
}{
	{lint.DirHandleOK, eventhandle.Analyzer},
	{lint.DirNondeterministic, determinism.Analyzer},
	{lint.DirPartialOK, exhaustive.Analyzer},
	{lint.DirUnitsOK, timeunits.Analyzer},
}

// auditedModule maps waiver directives consumed by module-level analyzers,
// which are audited once over the whole loaded set rather than per package.
// The audit runs share the module cache, so the call graph and function
// summaries are built once per rtseed-vet invocation, not once per auditor.
var auditedModule = []struct {
	dir      string
	analyzer *lint.Analyzer
}{
	{lint.DirAllocOK, noalloc.Analyzer},
	{lint.DirBodyStepOK, bodystep.Analyzer},
	{lint.DirNondeterministic, detflow.Analyzer},
	{lint.DirSharedOK, isoshare.Analyzer},
}

// inAuditScope reports whether an analyzer's audit pass runs on importPath.
// Fixture packages are always in scope so the audit itself is testable.
func inAuditScope(a *lint.Analyzer, importPath string) bool {
	return a.AppliesTo == nil || a.AppliesTo(importPath) ||
		strings.HasPrefix(importPath, "rtseed/fixture/")
}

func run(mp *lint.ModulePass) error {
	g := callgraph.Shared(mp)

	moduleUsed := map[*lint.Directive]bool{}
	for _, a := range auditedModule {
		_, u, err := lint.RunModuleAnalyzerAuditCached(a.analyzer, mp.Pkgs, mp.Cache())
		if err != nil {
			return err
		}
		for d := range u {
			moduleUsed[d] = true
		}
	}

	for _, pkg := range mp.Pkgs {
		used := map[*lint.Directive]bool{}
		ran := map[string]bool{}
		for _, a := range audited {
			if !inAuditScope(a.analyzer, pkg.ImportPath) {
				continue
			}
			_, u, err := lint.RunAnalyzerAudit(a.analyzer, pkg)
			if err != nil {
				return err
			}
			for d := range u {
				used[d] = true
			}
			ran[a.dir] = true
		}

		placement := placements(pkg)

		for _, d := range pkg.Directives.All() {
			switch d.Name {
			case lint.DirHandleOK, lint.DirPartialOK, lint.DirUnitsOK:
				if used[d] {
					continue
				}
				if !ran[d.Name] {
					mp.ReportfAt(d.Pos, "misplaced //rtseed:%s: package %s is outside the %s contract's scope",
						d.Name, pkg.ImportPath, analyzerFor(d.Name))
					continue
				}
				mp.ReportfAt(d.Pos, "stale //rtseed:%s: the %s finding it waives no longer exists (remove the waiver)",
					d.Name, analyzerFor(d.Name))
			case lint.DirNondeterministic:
				// Consumed by two tiers: the per-package syntactic
				// determinism analyzer and the module-level detflow taint
				// analyzer. Both share the determinism scope, so a waiver in
				// a package the per-package audit skipped is misplaced.
				if used[d] || moduleUsed[d] {
					continue
				}
				if !ran[d.Name] {
					mp.ReportfAt(d.Pos, "misplaced //rtseed:%s: package %s is outside the %s contract's scope",
						d.Name, pkg.ImportPath, analyzerFor(d.Name))
					continue
				}
				mp.ReportfAt(d.Pos, "stale //rtseed:%s: the %s finding it waives no longer exists (remove the waiver)",
					d.Name, analyzerFor(d.Name))
			case lint.DirAllocOK, lint.DirBodyStepOK, lint.DirSharedOK:
				// Module-analyzer waivers: the auditors self-scope, so
				// staleness is the only drift to catch here.
				if !moduleUsed[d] {
					mp.ReportfAt(d.Pos, "stale //rtseed:%s: the %s finding it waives no longer exists (remove the waiver)",
						d.Name, analyzerFor(d.Name))
				}
			case lint.DirNoalloc:
				if placement.onDecl[d] == nil {
					mp.ReportfAt(d.Pos, "misplaced //rtseed:noalloc: not attached to a function declaration")
				}
			case lint.DirKernelCtx:
				if placement.onDecl[d] == nil && !placement.onLit[d] {
					mp.ReportfAt(d.Pos, "misplaced //rtseed:kernelctx: not attached to a function declaration or literal")
				}
			case lint.DirKernelCtxEntry:
				decl := placement.onDecl[d]
				if decl == nil {
					mp.ReportfAt(d.Pos, "misplaced //rtseed:kernelctx-entry: not attached to a function declaration")
					continue
				}
				if !reachesKernelCtx(g, pkg, decl) {
					mp.ReportfAt(d.Pos, "stale //rtseed:kernelctx-entry: %s no longer reaches any //rtseed:kernelctx function",
						decl.Name.Name)
				}
			}
		}
	}
	return nil
}

// analyzerFor names the analyzers whose findings a waiver directive waives,
// slash-joined when the directive serves more than one tier.
func analyzerFor(dir string) string {
	var names []string
	for _, a := range audited {
		if a.dir == dir {
			names = append(names, a.analyzer.Name)
		}
	}
	for _, a := range auditedModule {
		if a.dir == dir {
			names = append(names, a.analyzer.Name)
		}
	}
	if len(names) == 0 {
		return "?"
	}
	return strings.Join(names, "/")
}

// placement records which declaration or literal each annotation-style
// directive of a package is attached to.
type placement struct {
	onDecl map[*lint.Directive]*ast.FuncDecl
	onLit  map[*lint.Directive]bool
}

// placements resolves every noalloc/kernelctx/kernelctx-entry directive to
// its carrier, if any. The pointers ForDecl/ForLit return are the same ones
// Directives.All yields, so lookup is identity-based.
func placements(pkg *lint.Package) placement {
	p := placement{
		onDecl: map[*lint.Directive]*ast.FuncDecl{},
		onLit:  map[*lint.Directive]bool{},
	}
	names := []string{lint.DirNoalloc, lint.DirKernelCtx, lint.DirKernelCtxEntry}
	for _, file := range pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				for _, name := range names {
					if d := pkg.Directives.ForDecl(pkg.Fset, n, name); d != nil {
						p.onDecl[d] = n
					}
				}
			case *ast.FuncLit:
				if d := pkg.Directives.ForLit(pkg.Fset, n, lint.DirKernelCtx); d != nil {
					p.onLit[d] = true
				}
			}
			return true
		})
	}
	return p
}

// reachesKernelCtx reports whether the function declared by decl reaches a
// //rtseed:kernelctx-annotated body over any call-graph edge.
func reachesKernelCtx(g *callgraph.Graph, pkg *lint.Package, decl *ast.FuncDecl) bool {
	fn, _ := pkg.TypesInfo.Defs[decl.Name].(*types.Func)
	start := g.NodeFor(fn)
	if start == nil {
		return false
	}
	visited := map[*callgraph.Node]bool{start: true}
	queue := []*callgraph.Node{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n != start && isKernelCtx(n) {
			return true
		}
		for _, e := range n.Out {
			if !visited[e.Callee] {
				visited[e.Callee] = true
				queue = append(queue, e.Callee)
			}
		}
	}
	return false
}

// isKernelCtx reports whether a node carries the kernelctx annotation.
func isKernelCtx(n *callgraph.Node) bool {
	if n.Decl != nil {
		return n.Pkg.Directives.ForDecl(n.Pkg.Fset, n.Decl, lint.DirKernelCtx) != nil
	}
	return n.Pkg.Directives.ForLit(n.Pkg.Fset, n.Lit, lint.DirKernelCtx) != nil
}
