package waiverdrift_test

import (
	"testing"

	"rtseed/internal/lint/analysistest"
	"rtseed/internal/lint/waiverdrift"
)

func TestWaiverDrift(t *testing.T) {
	analysistest.Run(t, waiverdrift.Analyzer, "../testdata/src/waiverdrift")
}
