// Package isoshare implements the parallel-isolation analyzer: it proves,
// statically, that the repository's fan-out sites are worker-count
// deterministic. The sweep executor's contract (see internal/sweep) is that
// fn must not share mutable state across calls — cell i's result lands in
// slot i, and the output is bit-identical to a sequential loop regardless
// of worker count. This analyzer checks the callers' side of that contract
// using whole-module function summaries (internal/lint/summary):
//
//   - A worker closure passed to sweep.Map or sweep.Each (including the
//     cluster layer's per-epoch machine steps, which are Each cells) must
//     not write package-level state — directly or through any function the
//     summary tier can see below it. The finding names the variable and
//     the call path down to the writing frame.
//   - A worker closure may write captured state only through a location
//     indexed by its own cell parameter: out[i] = v, sims[i].run(...), and
//     friends are each worker's private slot; total += v, m[k] = v, and
//     writes through captured pointers race across workers and make the
//     result depend on scheduling.
//   - The function doing the fan-out must merge results in canonical index
//     order: a `for ... range m` over a map anywhere in a fan-out
//     function's own body (worker literals aside) orders the merge by map
//     iteration, which varies run to run and worker count to worker count.
//
// The analyzer resolves writes through the direct call tiers only
// (Static/Go/Defer, like the summary tier itself): a worker that launders a
// shared write through an interface or a func value is not caught, which
// errs toward silence, not noise. internal/sweep itself is exempt in code —
// its out[i] slot protocol and error table are the mechanism under audit,
// not a client of it. Findings are waived with //rtseed:shared-ok <reason>.
package isoshare

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"rtseed/internal/lint"
	"rtseed/internal/lint/callgraph"
	"rtseed/internal/lint/summary"
)

// Analyzer is the parallel-isolation checker.
var Analyzer = &lint.Analyzer{
	Name: "isoshare",
	Doc: "prove worker closures share no mutable state and merges are index-ordered\n\n" +
		"Flags package-level or captured-variable writes reachable from a\n" +
		"sweep.Map/Each worker closure (captured writes indexed by the cell\n" +
		"parameter are each worker's own slot and pass), and map-ordered\n" +
		"result merges in fan-out functions. Waive with\n" +
		"//rtseed:shared-ok <reason>.",
	RunModule: run,
}

const sweepPkg = "rtseed/internal/sweep"

// inScope reports whether isoshare audits importPath: the simulation scope,
// minus the sweep executor itself (its slot protocol is the mechanism under
// audit), plus fixtures so the analyzer is testable.
func inScope(importPath string) bool {
	if importPath == sweepPkg {
		return false
	}
	return lint.InSimScope(importPath) || strings.HasPrefix(importPath, "rtseed/fixture/")
}

func run(mp *lint.ModulePass) error {
	sums := summary.Shared(mp)
	for _, pkg := range mp.Pkgs {
		if !inScope(pkg.ImportPath) {
			continue
		}
		pass := mp.PackagePass(pkg)
		for _, file := range pkg.Syntax {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				checkDecl(pass, sums, decl)
			}
		}
	}
	return nil
}

// checkDecl finds the fan-out calls in one declaration, checks each worker
// literal, and — if the declaration fans out at all — audits its merge
// loops for map ordering.
func checkDecl(pass *lint.Pass, sums *summary.Set, decl *ast.FuncDecl) {
	fansOut := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isFanOut(pass, call) {
			return true
		}
		fansOut = true
		if len(call.Args) > 0 {
			if lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit); ok {
				checkWorker(pass, sums, decl, lit)
			}
		}
		return true
	})
	if !fansOut {
		return
	}
	// Merge loops: a map range in the fan-out function's own body (not
	// inside worker literals) orders the merge by map iteration.
	var skip func(n ast.Node) bool
	skip = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo().Types[n.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					report(pass, decl, n.Pos(),
						"fan-out results are merged by ranging over %s, a map; iterate in canonical index order so the result is worker-count-independent",
						exprString(n.X))
				}
			}
		}
		return true
	}
	ast.Inspect(decl.Body, skip)
}

// isFanOut reports whether call is sweep.Map or sweep.Each.
func isFanOut(pass *lint.Pass, call *ast.CallExpr) bool {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != sweepPkg {
		return false
	}
	return fn.Name() == "Map" || fn.Name() == "Each"
}

// checkWorker audits one worker literal: package-level writes anywhere
// below it (via its summary) and captured writes in its own body and the
// calls it makes.
func checkWorker(pass *lint.Pass, sums *summary.Set, decl *ast.FuncDecl, lit *ast.FuncLit) {
	node := sums.Graph().LitNode(lit)
	if node == nil {
		return
	}
	sum := sums.Of(node)
	info := pass.TypesInfo()

	// Package-level writes: never worker-safe, however deep. Sorted by name
	// so same-position findings (several deep writes reported at the
	// literal) keep a stable order across runs.
	globals := make([]types.Object, 0, len(sum.GlobalWrites))
	for obj := range sum.GlobalWrites {
		globals = append(globals, obj)
	}
	sort.Slice(globals, func(i, j int) bool { return globals[i].Name() < globals[j].Name() })
	for _, obj := range globals {
		w := sum.GlobalWrites[obj]
		pos, suffix := lit.Pos(), ""
		if w.Via == nil {
			pos = w.Pos
		} else if path := sums.WritePath(node, obj); len(path) > 1 {
			suffix = " (via " + callgraph.FormatPath(path[1:]) + ")"
		}
		report(pass, decl, pos,
			"parallel worker closure writes package-level %s%s; workers share it and the result depends on scheduling",
			obj.Name(), suffix)
	}

	params := litParams(info, lit)
	// Captured writes: scan the body (nested literals included — they run
	// on the worker when invoked) for direct stores and for resolved calls
	// that write through a captured argument or receiver.
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkCapturedWrite(pass, decl, info, lit, params, lhs)
			}
		case *ast.IncDecStmt:
			checkCapturedWrite(pass, decl, info, lit, params, n.X)
		case *ast.CallExpr:
			callee, args := sums.ResolveCall(info, n)
			if callee == nil {
				return true
			}
			for i, a := range args {
				if callee.ParamWrites.Has(callee.ArgIndex(i)) {
					checkCapturedWrite(pass, decl, info, lit, params, a)
				}
			}
		}
		return true
	})
}

// checkCapturedWrite flags a write through expr when its root is a variable
// captured from outside the worker literal and the access path is not
// indexed by one of the worker's own parameters. A plain rebinding of a
// captured name is still a shared write (the variable itself is shared);
// package-level roots are the summary check's business, not this one's.
func checkCapturedWrite(pass *lint.Pass, decl *ast.FuncDecl, info *types.Info, lit *ast.FuncLit, params map[types.Object]bool, expr ast.Expr) {
	obj := rootObj(info, expr)
	if obj == nil || params[obj] || isPkgLevel(obj) {
		return
	}
	if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
		return // the worker's own local
	}
	if indexedByParam(info, params, expr) {
		return // out[i] = v: each worker owns slot i
	}
	report(pass, decl, expr.Pos(),
		"parallel worker closure writes captured %s without indexing by its cell parameter; workers share it and the result depends on scheduling",
		obj.Name())
}

// indexedByParam reports whether the access path of expr goes through an
// index expression whose index mentions one of the worker's parameters —
// the out[i] slot protocol that makes a captured write worker-private.
func indexedByParam(info *types.Info, params map[types.Object]bool, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok || found {
			return !found
		}
		ast.Inspect(ix.Index, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && params[info.ObjectOf(id)] {
				found = true
			}
			return !found
		})
		return !found
	})
	return found
}

// litParams collects the parameter objects of a function literal.
func litParams(info *types.Info, lit *ast.FuncLit) map[types.Object]bool {
	params := map[types.Object]bool{}
	if lit.Type.Params == nil {
		return params
	}
	for _, f := range lit.Type.Params.List {
		for _, name := range f.Names {
			if obj := info.Defs[name]; obj != nil {
				params[obj] = true
			}
		}
	}
	return params
}

// report emits a finding unless a //rtseed:shared-ok directive waives it at
// the position or for the whole enclosing declaration.
func report(pass *lint.Pass, decl *ast.FuncDecl, pos token.Pos, format string, args ...any) {
	if pass.WaivedIn(decl, pos, lint.DirSharedOK) {
		return
	}
	pass.Reportf(pos, format+" (//rtseed:shared-ok <reason> to waive)", args...)
}

// isPkgLevel reports whether obj is declared at package scope.
func isPkgLevel(obj types.Object) bool {
	if obj.Pkg() == nil {
		return false
	}
	return obj.Parent() == obj.Pkg().Scope()
}

// rootObj walks selector/index/star/slice chains to the base identifier's
// variable object, or nil.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return rootObj(info, e.X)
	case *ast.StarExpr:
		return rootObj(info, e.X)
	case *ast.UnaryExpr:
		return rootObj(info, e.X)
	case *ast.SelectorExpr:
		return rootObj(info, e.X)
	case *ast.IndexExpr:
		return rootObj(info, e.X)
	case *ast.SliceExpr:
		return rootObj(info, e.X)
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if _, ok := obj.(*types.Var); !ok {
			return nil
		}
		return obj
	}
	return nil
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return "the expression"
}
