package isoshare_test

import (
	"testing"

	"rtseed/internal/lint/analysistest"
	"rtseed/internal/lint/isoshare"
)

func TestIsoshare(t *testing.T) {
	analysistest.Run(t, isoshare.Analyzer, "../testdata/src/isoshare")
}
