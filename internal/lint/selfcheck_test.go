package lint_test

import (
	"testing"

	"rtseed/internal/lint/suite"
)

// TestSelfCheck runs the full rtseed-vet suite over the whole module, so a
// plain `go test ./...` catches invariant regressions without needing
// `make lint`. Skipped with -short: the suite recompiles the module via
// `go list -export` and takes a few seconds.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis is slow; run without -short or use make lint")
	}
	diags, err := suite.Run("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
