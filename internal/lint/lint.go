// Package lint is a self-contained static-analysis framework for the
// repository's own invariants: determinism of the simulation packages, the
// zero-allocation contract of functions annotated //rtseed:noalloc, and the
// discipline around generation-counted engine.Event handles.
//
// The framework deliberately mirrors the shape of golang.org/x/tools
// go/analysis (Analyzer, Pass, Reportf, analysistest-style fixtures) but is
// built only on the standard library: packages are enumerated with
// `go list -export -deps -json` and type-checked from source with imports
// resolved through the build cache's export data, so the module needs no
// third-party dependency to lint itself. See cmd/rtseed-vet for the driver
// and DESIGN.md §5 for the annotation grammar.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker. Exactly one of Run and
// RunModule is set: Run analyzes one package at a time, RunModule sees the
// whole loaded package set at once (the call-graph analyzers need
// cross-package edges).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -json output.
	Name string
	// Doc is a one-paragraph description shown by `rtseed-vet -help`.
	Doc string
	// AppliesTo optionally restricts the analyzer to some import paths.
	// A nil AppliesTo means the analyzer runs on every loaded package.
	// The driver consults it; test harnesses run the analyzer regardless.
	AppliesTo func(importPath string) bool
	// Run performs the analysis on one package.
	Run func(*Pass) error
	// RunModule performs a whole-program analysis over every loaded
	// package. Module analyzers see exactly the packages the driver loaded:
	// running rtseed-vet on a sub-pattern narrows their view accordingly.
	RunModule func(*ModulePass) error
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

// String formats the diagnostic the way `go vet` does.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	Directives *Directives
}

// NewPackage type-checks the given parsed files (which must carry comments)
// and assembles a Package. Imports are resolved through imp.
func NewPackage(fset *token.FileSet, importPath, dir string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		TypesInfo:  info,
		Directives: ParseDirectives(fset, files),
	}, nil
}

// A Pass connects one Analyzer run to one Package and collects its findings.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic

	// audit makes Waived/WaivedIn record the directive a finding would have
	// been waived by — in used — and then report the finding anyway. The
	// waiverdrift analyzer re-runs the other analyzers in this mode to
	// learn which waivers still shield a live violation.
	audit bool
	used  map[*Directive]bool
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Waived reports whether a finding at pos is waived by a directive of the
// given name on the same source line or on the line immediately above it.
// In audit mode the matching directive is recorded as used and the finding
// stands.
func (p *Pass) Waived(pos token.Pos, name string) bool {
	position := p.Pkg.Fset.Position(pos)
	dir := p.Pkg.Directives.at(position.Filename, position.Line, name)
	if dir == nil {
		dir = p.Pkg.Directives.at(position.Filename, position.Line-1, name)
	}
	if dir == nil {
		return false
	}
	if p.used != nil {
		p.used[dir] = true
	}
	return !p.audit
}

// WaivedIn is Waived extended with function-scope waivers: a directive in
// the doc comment of the enclosing function waives every finding inside it.
func (p *Pass) WaivedIn(decl *ast.FuncDecl, pos token.Pos, name string) bool {
	lineWaived := p.Waived(pos, name)
	var funcDir *Directive
	if decl != nil {
		funcDir = p.FuncDirective(decl, name)
	}
	if funcDir != nil && p.used != nil {
		p.used[funcDir] = true
	}
	if p.audit {
		return false
	}
	return lineWaived || funcDir != nil
}

// FuncDirective returns the directive of the given name attached to decl —
// in its doc comment or on the line immediately above the declaration — or
// nil if there is none.
func (p *Pass) FuncDirective(decl *ast.FuncDecl, name string) *Directive {
	return p.Pkg.Directives.ForDecl(p.Pkg.Fset, decl, name)
}

// CalleeFunc resolves the function or method a call expression invokes,
// or nil for builtins, conversions, and dynamic calls through variables.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.TypesInfo().Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.TypesInfo().Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// CalleeBuiltin resolves the builtin a call invokes (make, new, append, ...)
// or nil if the call is not a builtin call.
func (p *Pass) CalleeBuiltin(call *ast.CallExpr) *types.Builtin {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	b, _ := p.TypesInfo().Uses[id].(*types.Builtin)
	return b
}

// TypesInfo returns the package's type information.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.TypesInfo }

// InspectFuncs walks every top-level declaration of every file, reporting
// the enclosing function declaration (nil for package-level var/const/type
// initializers) alongside each visited node.
func (p *Pass) InspectFuncs(visit func(file *ast.File, decl *ast.FuncDecl, n ast.Node) bool) {
	for _, file := range p.Pkg.Syntax {
		for _, d := range file.Decls {
			decl, _ := d.(*ast.FuncDecl)
			ast.Inspect(d, func(n ast.Node) bool {
				if n == nil {
					return false
				}
				return visit(file, decl, n)
			})
		}
	}
}

// A ModuleCache shares expensive whole-module computations — the call
// graph, the function-summary set — between the module analyzers of one
// suite run (including waiverdrift's audit re-runs, which would otherwise
// rebuild everything a second time). Keys are chosen by the computing
// package; values are opaque to the framework.
type ModuleCache struct {
	entries map[string]any
}

// NewModuleCache returns an empty cache, one per driver run.
func NewModuleCache() *ModuleCache { return &ModuleCache{entries: map[string]any{}} }

// A ModulePass connects one module-level Analyzer run to the whole loaded
// package set and collects its findings.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package
	diags    *[]Diagnostic

	// audit and used mirror Pass's audit mode; PackagePass propagates them,
	// so module analyzers that report through per-package passes are
	// auditable the same way single-package ones are.
	audit bool
	used  map[*Directive]bool

	cache *ModuleCache
}

// Cache returns the run's module cache, creating a private one when the
// driver did not supply any (standalone RunModuleAnalyzer calls).
func (mp *ModulePass) Cache() *ModuleCache {
	if mp.cache == nil {
		mp.cache = NewModuleCache()
	}
	return mp.cache
}

// Shared returns the cached value under key, building and memoizing it on
// first use. The cache is keyed per driver run over one loaded package set,
// so builders may close over mp.Pkgs.
func (mp *ModulePass) Shared(key string, build func() any) any {
	c := mp.Cache()
	v, ok := c.entries[key]
	if !ok {
		v = build()
		c.entries[key] = v
	}
	return v
}

// Reportf records a finding at pos, resolved through pkg's file set.
func (mp *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	position := pkg.Fset.Position(pos)
	*mp.diags = append(*mp.diags, Diagnostic{
		Analyzer: mp.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportfAt records a finding at an already-resolved position (directives
// carry token.Position, not token.Pos).
func (mp *ModulePass) ReportfAt(position token.Position, format string, args ...any) {
	*mp.diags = append(*mp.diags, Diagnostic{
		Analyzer: mp.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// PackagePass builds a single-package Pass bound to this module run's
// analyzer and diagnostic sink, for module analyzers that mix per-package
// and whole-program checks.
func (mp *ModulePass) PackagePass(pkg *Package) *Pass {
	return &Pass{Analyzer: mp.Analyzer, Pkg: pkg, diags: mp.diags, audit: mp.audit, used: mp.used}
}

// RunAnalyzer applies a to pkg and returns its findings sorted by position.
// A module analyzer is run over the single-package set.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	if a.RunModule != nil {
		return RunModuleAnalyzer(a, []*Package{pkg})
	}
	var diags []Diagnostic
	pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
	}
	SortDiagnostics(diags)
	return diags, nil
}

// RunModuleAnalyzer applies a module analyzer to the whole loaded package
// set and returns its findings sorted by position.
func RunModuleAnalyzer(a *Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	return RunModuleAnalyzerCached(a, pkgs, nil)
}

// RunModuleAnalyzerCached is RunModuleAnalyzer with a shared module cache,
// so a driver running several module analyzers over the same package set
// builds the call graph and summaries once. A nil cache means private.
func RunModuleAnalyzerCached(a *Analyzer, pkgs []*Package, cache *ModuleCache) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &ModulePass{Analyzer: a, Pkgs: pkgs, diags: &diags, cache: cache}
	if err := a.RunModule(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	SortDiagnostics(diags)
	return diags, nil
}

// RunAnalyzerAudit applies a single-package analyzer to pkg with waivers
// disabled: every finding is reported even when a directive covers it, and
// the directives that would have waived one are returned. Stale-waiver
// auditing diffs that set against the package's declared waivers.
func RunAnalyzerAudit(a *Analyzer, pkg *Package) ([]Diagnostic, map[*Directive]bool, error) {
	var diags []Diagnostic
	used := map[*Directive]bool{}
	pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags, audit: true, used: used}
	if err := a.Run(pass); err != nil {
		return nil, nil, fmt.Errorf("%s (audit) on %s: %w", a.Name, pkg.ImportPath, err)
	}
	SortDiagnostics(diags)
	return diags, used, nil
}

// RunModuleAnalyzerAudit applies a module analyzer to the whole loaded
// package set with waivers disabled, returning the directives that would
// have waived a finding — the module-level counterpart of RunAnalyzerAudit.
func RunModuleAnalyzerAudit(a *Analyzer, pkgs []*Package) ([]Diagnostic, map[*Directive]bool, error) {
	return RunModuleAnalyzerAuditCached(a, pkgs, nil)
}

// RunModuleAnalyzerAuditCached is RunModuleAnalyzerAudit with a shared
// module cache (see RunModuleAnalyzerCached).
func RunModuleAnalyzerAuditCached(a *Analyzer, pkgs []*Package, cache *ModuleCache) ([]Diagnostic, map[*Directive]bool, error) {
	var diags []Diagnostic
	used := map[*Directive]bool{}
	pass := &ModulePass{Analyzer: a, Pkgs: pkgs, diags: &diags, audit: true, used: used, cache: cache}
	if err := a.RunModule(pass); err != nil {
		return nil, nil, fmt.Errorf("%s (audit): %w", a.Name, err)
	}
	SortDiagnostics(diags)
	return diags, used, nil
}

// SortDiagnostics orders findings by file, line, column, analyzer, message.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// IsInternalPkg reports whether importPath is rtseed/internal/<name> or a
// subpackage of it, for any of the given base names.
func IsInternalPkg(importPath string, names ...string) bool {
	for _, name := range names {
		prefix := "rtseed/internal/" + name
		if importPath == prefix || strings.HasPrefix(importPath, prefix+"/") {
			return true
		}
	}
	return false
}
