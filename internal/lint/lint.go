// Package lint is a self-contained static-analysis framework for the
// repository's own invariants: determinism of the simulation packages, the
// zero-allocation contract of functions annotated //rtseed:noalloc, and the
// discipline around generation-counted engine.Event handles.
//
// The framework deliberately mirrors the shape of golang.org/x/tools
// go/analysis (Analyzer, Pass, Reportf, analysistest-style fixtures) but is
// built only on the standard library: packages are enumerated with
// `go list -export -deps -json` and type-checked from source with imports
// resolved through the build cache's export data, so the module needs no
// third-party dependency to lint itself. See cmd/rtseed-vet for the driver
// and DESIGN.md §5 for the annotation grammar.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -json output.
	Name string
	// Doc is a one-paragraph description shown by `rtseed-vet -help`.
	Doc string
	// AppliesTo optionally restricts the analyzer to some import paths.
	// A nil AppliesTo means the analyzer runs on every loaded package.
	// The driver consults it; test harnesses run the analyzer regardless.
	AppliesTo func(importPath string) bool
	// Run performs the analysis on one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

// String formats the diagnostic the way `go vet` does.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	Directives *Directives
}

// NewPackage type-checks the given parsed files (which must carry comments)
// and assembles a Package. Imports are resolved through imp.
func NewPackage(fset *token.FileSet, importPath, dir string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		TypesInfo:  info,
		Directives: ParseDirectives(fset, files),
	}, nil
}

// A Pass connects one Analyzer run to one Package and collects its findings.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Waived reports whether a finding at pos is waived by a directive of the
// given name on the same source line or on the line immediately above it.
func (p *Pass) Waived(pos token.Pos, name string) bool {
	position := p.Pkg.Fset.Position(pos)
	return p.Pkg.Directives.at(position.Filename, position.Line, name) != nil ||
		p.Pkg.Directives.at(position.Filename, position.Line-1, name) != nil
}

// WaivedIn is Waived extended with function-scope waivers: a directive in
// the doc comment of the enclosing function waives every finding inside it.
func (p *Pass) WaivedIn(decl *ast.FuncDecl, pos token.Pos, name string) bool {
	if p.Waived(pos, name) {
		return true
	}
	return decl != nil && p.FuncDirective(decl, name) != nil
}

// FuncDirective returns the directive of the given name attached to decl —
// in its doc comment or on the line immediately above the declaration — or
// nil if there is none.
func (p *Pass) FuncDirective(decl *ast.FuncDecl, name string) *Directive {
	return p.Pkg.Directives.forDecl(p.Pkg.Fset, decl, name)
}

// CalleeFunc resolves the function or method a call expression invokes,
// or nil for builtins, conversions, and dynamic calls through variables.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.TypesInfo().Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.TypesInfo().Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// CalleeBuiltin resolves the builtin a call invokes (make, new, append, ...)
// or nil if the call is not a builtin call.
func (p *Pass) CalleeBuiltin(call *ast.CallExpr) *types.Builtin {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	b, _ := p.TypesInfo().Uses[id].(*types.Builtin)
	return b
}

// TypesInfo returns the package's type information.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.TypesInfo }

// InspectFuncs walks every top-level declaration of every file, reporting
// the enclosing function declaration (nil for package-level var/const/type
// initializers) alongside each visited node.
func (p *Pass) InspectFuncs(visit func(file *ast.File, decl *ast.FuncDecl, n ast.Node) bool) {
	for _, file := range p.Pkg.Syntax {
		for _, d := range file.Decls {
			decl, _ := d.(*ast.FuncDecl)
			ast.Inspect(d, func(n ast.Node) bool {
				if n == nil {
					return false
				}
				return visit(file, decl, n)
			})
		}
	}
}

// RunAnalyzer applies a to pkg and returns its findings sorted by position.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
	}
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders findings by file, line, column, analyzer, message.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// IsInternalPkg reports whether importPath is rtseed/internal/<name> or a
// subpackage of it, for any of the given base names.
func IsInternalPkg(importPath string, names ...string) bool {
	for _, name := range names {
		prefix := "rtseed/internal/" + name
		if importPath == prefix || strings.HasPrefix(importPath, prefix+"/") {
			return true
		}
	}
	return false
}
