package lint

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestSimScopeCoversInternalPackages asserts the scope table is total: every
// package directory under internal/ is either in SimScopePackages or in
// SimScopeExemptions with a written reason. A new internal package must pick
// a side before it builds green.
func TestSimScopeCoversInternalPackages(t *testing.T) {
	exempt := map[string]string{}
	for _, e := range SimScopeExemptions {
		if e.Reason == "" {
			t.Errorf("exemption for internal/%s carries no reason; exempting is a reviewed decision", e.Pkg)
		}
		if _, dup := exempt[e.Pkg]; dup {
			t.Errorf("internal/%s is exempted twice", e.Pkg)
		}
		exempt[e.Pkg] = e.Reason
	}

	entries, err := os.ReadDir("..")
	if err != nil {
		t.Fatalf("reading internal/: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		seen[name] = true
		inScope := InSimScope("rtseed/internal/" + name)
		_, isExempt := exempt[name]
		switch {
		case inScope && isExempt:
			t.Errorf("internal/%s is both in SimScopePackages and exempted; pick one", name)
		case !inScope && !isExempt:
			t.Errorf("internal/%s is neither in SimScopePackages nor in SimScopeExemptions; new packages must not silently dodge the determinism analyzers", name)
		}
	}
	for _, name := range SimScopePackages {
		if !seen[name] {
			t.Errorf("SimScopePackages names internal/%s, which does not exist", name)
		}
	}
	for name := range exempt {
		if !seen[name] {
			t.Errorf("SimScopeExemptions names internal/%s, which does not exist", name)
		}
	}
}

// TestSimScopeExemptRTNotImported keeps the rt exemption honest: internal/rt
// runs on the host clock and is outside the contract, so nothing inside the
// scope may import it — otherwise the exemption would leak wall-clock
// behavior into packages the analyzers certify as reproducible.
func TestSimScopeExemptRTNotImported(t *testing.T) {
	const banned = "rtseed/internal/rt"
	fset := token.NewFileSet()
	for _, name := range SimScopePackages {
		root := filepath.Join("..", name)
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				p, _ := strconv.Unquote(imp.Path.Value)
				if p == banned || strings.HasPrefix(p, banned+"/") {
					t.Errorf("%s imports %s; in-scope packages must not depend on the host-clock runtime", path, p)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking internal/%s: %v", name, err)
		}
	}
}
