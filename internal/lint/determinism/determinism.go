// Package determinism flags constructs that break the simulator's core
// guarantee — that a run is a pure function of its seed — inside the
// simulation packages. This is the syntactic tier: calls that are wrong at
// the call site regardless of where their values go — blocking on host
// timers (time.Sleep, time.NewTimer, ...), drawing from the process-global
// math/rand source, and reading the environment. Value-flow cases (a
// time.Now() result or a map's iteration order reaching results) belong to
// the detflow analyzer, which taint-tracks them and flags only values that
// actually escape. Findings from both are waived line-by-line or
// function-by-function with //rtseed:nondeterministic-ok <reason>.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"rtseed/internal/lint"
)

// Analyzer is the syntactic determinism checker.
var Analyzer = &lint.Analyzer{
	Name:      "determinism",
	Doc:       "flag host-timer blocking, global rand, and env reads in simulation packages",
	AppliesTo: InScope,
	Run:       run,
}

// InScope reports whether the determinism contract applies to importPath.
// The package list lives in lint.SimScopePackages — one scope table shared
// by every determinism-tier analyzer.
func InScope(importPath string) bool {
	return lint.InSimScope(importPath)
}

// wallClockFuncs are the package-level time functions that block on or arm
// the host's clock — side effects no dataflow can excuse. The value readers
// (Now, Since, Until) are the detflow analyzer's job: their results are
// only a problem when they reach results, and taint tracking decides that.
var wallClockFuncs = map[string]bool{
	"Sleep": true, "After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// envFuncs read the process environment.
var envFuncs = map[string]bool{"Getenv": true, "LookupEnv": true, "Environ": true}

func run(pass *lint.Pass) error {
	pass.InspectFuncs(func(file *ast.File, decl *ast.FuncDecl, n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			checkCall(pass, decl, call)
		}
		return true
	})
	return nil
}

func checkCall(pass *lint.Pass, decl *ast.FuncDecl, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil { // methods (e.g. on a seeded *rand.Rand) are fine
		return
	}
	pkgPath, name := fn.Pkg().Path(), fn.Name()
	var msg string
	switch {
	case pkgPath == "time" && wallClockFuncs[name]:
		msg = "blocks on the host clock; simulation code must use virtual engine.Time"
	case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !strings.HasPrefix(name, "New"):
		msg = "uses the global math/rand source; use a seeded engine.Rand (or rand.New) so runs reproduce"
	case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && strings.HasPrefix(name, "New") && clockSeeded(pass, call):
		msg = "takes a wall-clock seed; every run draws a different population — thread an explicit seed instead"
	case pkgPath == "os" && envFuncs[name]:
		msg = "reads the process environment; branching on it breaks seed-reproducibility"
	default:
		return
	}
	if pass.WaivedIn(decl, call.Pos(), lint.DirNondeterministic) {
		return
	}
	pass.Reportf(call.Pos(), "call to %s.%s %s", pkgPath, name, msg)
}

// clockSeeded reports whether any argument of a rand constructor call
// (rand.New, rand.NewSource, ...) syntactically contains a clock read —
// the rand.NewSource(time.Now().UnixNano()) idiom. The sampler itself is
// local and seeded, but the seed destroys reproducibility, so the
// constructor is the right place to flag it.
func clockSeeded(pass *lint.Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if fn := pass.CalleeFunc(inner); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "time" && fn.Name() == "Now" {
				found = true
			}
			return !found
		})
	}
	return found
}
