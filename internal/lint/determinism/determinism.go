// Package determinism flags constructs that break the simulator's core
// guarantee — that a run is a pure function of its seed — inside the
// simulation packages: wall-clock reads, the process-global math/rand
// source, environment-dependent values, and map iteration feeding results
// without a deterministic order. Findings are waived line-by-line or
// function-by-function with //rtseed:nondeterministic-ok <reason>.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rtseed/internal/lint"
)

// Analyzer is the determinism checker.
var Analyzer = &lint.Analyzer{
	Name:      "determinism",
	Doc:       "flag wall-clock, global rand, env reads, and unsorted map iteration in simulation packages",
	AppliesTo: InScope,
	Run:       run,
}

// scopedPackages are the rtseed/internal packages whose non-test code must
// be a pure function of its inputs. cmd/ front-ends and the trading demo
// may touch the real world; these may not.
var scopedPackages = []string{
	"engine", "kernel", "overhead", "analysis", "sweep", "sched",
	"task", "machine", "partition", "assign", "rt", "core", "trace",
}

// InScope reports whether the determinism contract applies to importPath.
func InScope(importPath string) bool {
	return lint.IsInternalPkg(importPath, scopedPackages...)
}

// wallClockFuncs are the package-level time functions that read or depend on
// the host's clock. time.Duration arithmetic and formatting stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// envFuncs read the process environment.
var envFuncs = map[string]bool{"Getenv": true, "LookupEnv": true, "Environ": true}

func run(pass *lint.Pass) error {
	pass.InspectFuncs(func(file *ast.File, decl *ast.FuncDecl, n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, decl, n)
		case *ast.RangeStmt:
			checkMapRange(pass, decl, n)
		}
		return true
	})
	return nil
}

func checkCall(pass *lint.Pass, decl *ast.FuncDecl, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil { // methods (e.g. on a seeded *rand.Rand) are fine
		return
	}
	pkgPath, name := fn.Pkg().Path(), fn.Name()
	var msg string
	switch {
	case pkgPath == "time" && wallClockFuncs[name]:
		msg = "reads the wall clock; simulation code must use virtual engine.Time"
	case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !strings.HasPrefix(name, "New"):
		msg = "uses the global math/rand source; use a seeded engine.Rand (or rand.New) so runs reproduce"
	case pkgPath == "os" && envFuncs[name]:
		msg = "reads the process environment; branching on it breaks seed-reproducibility"
	default:
		return
	}
	if pass.WaivedIn(decl, call.Pos(), lint.DirNondeterministic) {
		return
	}
	pass.Reportf(call.Pos(), "call to %s.%s %s", pkgPath, name, msg)
}

// checkMapRange flags `for ... := range m` over a map when the body appends
// to a variable declared outside the loop and no sort call over that
// variable follows the loop in the same function: the appended order is the
// map's randomized iteration order.
func checkMapRange(pass *lint.Pass, decl *ast.FuncDecl, rs *ast.RangeStmt) {
	tv, ok := pass.TypesInfo().Types[rs.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	sinks := appendSinks(pass, rs)
	if len(sinks) == 0 {
		return
	}
	if pass.WaivedIn(decl, rs.Pos(), lint.DirNondeterministic) {
		return
	}
	for _, sink := range sinks {
		if decl != nil && sortedAfter(pass, decl.Body, rs.End(), sink) {
			continue
		}
		pass.Reportf(rs.Pos(), "map iteration appends to %q in map order; sort %q afterwards (or sort the keys first)",
			sink.Name(), sink.Name())
		return // one finding per loop is enough
	}
}

// appendSinks returns the variables declared outside rs that the loop body
// appends to.
func appendSinks(pass *lint.Pass, rs *ast.RangeStmt) []*types.Var {
	var sinks []*types.Var
	seen := map[*types.Var]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			if b := pass.CalleeBuiltin(call); b == nil || b.Name() != "append" {
				continue
			}
			if i >= len(assign.Lhs) {
				continue
			}
			v := identVar(pass, assign.Lhs[i])
			if v == nil || v != identVar(pass, call.Args[0]) {
				continue
			}
			// Declared outside the range statement?
			if v.Pos() >= rs.Pos() && v.Pos() <= rs.End() {
				continue
			}
			if !seen[v] {
				seen[v] = true
				sinks = append(sinks, v)
			}
		}
		return true
	})
	return sinks
}

// sortedAfter reports whether body contains, after pos, a call into package
// sort or slices that takes v as an argument.
func sortedAfter(pass *lint.Pass, body *ast.BlockStmt, pos token.Pos, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		fn := pass.CalleeFunc(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if identVar(pass, arg) == v {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// identVar resolves expr to the variable it names, or nil.
func identVar(pass *lint.Pass, expr ast.Expr) *types.Var {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo().Uses[id]
	if obj == nil {
		obj = pass.TypesInfo().Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}
