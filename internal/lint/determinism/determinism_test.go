package determinism_test

import (
	"testing"

	"rtseed/internal/lint/analysistest"
	"rtseed/internal/lint/determinism"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "../testdata/src/determinism")
}

func TestScope(t *testing.T) {
	for path, want := range map[string]bool{
		"rtseed/internal/engine":      true,
		"rtseed/internal/kernel":      true,
		"rtseed/internal/sweep":       true,
		"rtseed/internal/trace":       true,
		"rtseed/internal/workload":    true,
		"rtseed/internal/report":      true,
		"rtseed/internal/lint":        false,
		"rtseed/internal/trading":     false,
		"rtseed/internal/rt":          false, // host-clock runner: exempt by design, see lint.SimScopeExemptions
		"rtseed/cmd/rtseed-overhead":  false,
		"rtseed/internal/engineering": false, // prefix of a scoped name must not match
	} {
		if got := determinism.InScope(path); got != want {
			t.Errorf("InScope(%q) = %v, want %v", path, got, want)
		}
	}
}
