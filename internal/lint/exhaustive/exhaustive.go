// Package exhaustive implements the enum-switch coverage analyzer.
//
// RT-Seed's behavior forks on small declared enums at every layer: thread
// lifecycle (kernel.State), the request protocol (kernel.requestKind), trace
// record kinds (trace.Kind), scheduler policies. A switch that silently
// ignores a newly added member is exactly how "add a trace kind" corrupts
// the analyzer and Perfetto decoders three packages away. This analyzer
// makes the compiler-invisible rule checkable: a switch over a module enum
// must either cover every declared member or carry a reasoned
// //rtseed:partial-ok <reason> on the switch statement.
//
// An enum, for this analyzer, is a named type declared in this module whose
// underlying type is an integer and that has at least two package-scope
// constants — the iota-block idiom. Members are matched by constant value,
// so aliases (two names for one value) count as one member. Sentinel
// members whose name ends in "max", "count", or "limit" (any case) bound
// the enum rather than belong to it and are not required. Unexported
// members of another package's enum are unreachable from the switch and are
// likewise not required. A default clause does not count as coverage — it
// is precisely the arm that hides missing members; and a case arm with a
// non-constant expression makes the switch inscrutable, so such switches
// are skipped entirely.
package exhaustive

import (
	"go/ast"
	"sort"
	"strings"

	"rtseed/internal/lint"
)

// Analyzer is the enum-switch coverage checker.
var Analyzer = &lint.Analyzer{
	Name: "exhaustive",
	Doc: "check that switches over module enums cover every declared member\n\n" +
		"A switch whose tag is a module-declared integer enum (a named type with\n" +
		"an iota constant block) must have a case for every member value, or wear\n" +
		"//rtseed:partial-ok <reason>. Default clauses do not count as coverage.",
	Run: run,
}

func run(pass *lint.Pass) error {
	pass.InspectFuncs(func(file *ast.File, decl *ast.FuncDecl, n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		tv, ok := pass.TypesInfo().Types[sw.Tag]
		if !ok || tv.Type == nil {
			return true
		}
		enumName, members := lint.EnumMembers(pass.Pkg.Types, tv.Type)
		if enumName == "" || members == nil {
			return true
		}

		covered := map[string]bool{}
		for _, stmt := range sw.Body.List {
			clause, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, expr := range clause.List {
				ctv, ok := pass.TypesInfo().Types[expr]
				if !ok || ctv.Value == nil {
					// A non-constant case arm: coverage is undecidable,
					// leave the switch alone.
					return true
				}
				covered[ctv.Value.ExactString()] = true
			}
		}

		var missing []lint.EnumMember
		for _, m := range members {
			if !covered[m.Value] {
				missing = append(missing, m)
			}
		}
		if len(missing) == 0 {
			return true
		}
		if pass.Waived(sw.Pos(), lint.DirPartialOK) {
			return true
		}
		sort.Slice(missing, func(i, j int) bool { return missing[i].Name < missing[j].Name })
		names := make([]string, len(missing))
		for i, m := range missing {
			names[i] = m.Name
		}
		pass.Reportf(sw.Pos(), "switch over %s misses %s (cover them or add //rtseed:partial-ok <reason>)",
			enumName, strings.Join(names, ", "))
		return true
	})
	return nil
}
