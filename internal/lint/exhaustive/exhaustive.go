// Package exhaustive implements the enum-switch coverage analyzer.
//
// RT-Seed's behavior forks on small declared enums at every layer: thread
// lifecycle (kernel.State), the request protocol (kernel.requestKind), trace
// record kinds (trace.Kind), scheduler policies. A switch that silently
// ignores a newly added member is exactly how "add a trace kind" corrupts
// the analyzer and Perfetto decoders three packages away. This analyzer
// makes the compiler-invisible rule checkable: a switch over a module enum
// must either cover every declared member or carry a reasoned
// //rtseed:partial-ok <reason> on the switch statement.
//
// An enum, for this analyzer, is a named type declared in this module whose
// underlying type is an integer and that has at least two package-scope
// constants — the iota-block idiom. Members are matched by constant value,
// so aliases (two names for one value) count as one member. Sentinel
// members whose name ends in "max", "count", or "limit" (any case) bound
// the enum rather than belong to it and are not required. Unexported
// members of another package's enum are unreachable from the switch and are
// likewise not required. A default clause does not count as coverage — it
// is precisely the arm that hides missing members; and a case arm with a
// non-constant expression makes the switch inscrutable, so such switches
// are skipped entirely.
package exhaustive

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"rtseed/internal/lint"
)

// Analyzer is the enum-switch coverage checker.
var Analyzer = &lint.Analyzer{
	Name: "exhaustive",
	Doc: "check that switches over module enums cover every declared member\n\n" +
		"A switch whose tag is a module-declared integer enum (a named type with\n" +
		"an iota constant block) must have a case for every member value, or wear\n" +
		"//rtseed:partial-ok <reason>. Default clauses do not count as coverage.",
	Run: run,
}

// member is one declared enum constant.
type member struct {
	name  string
	value string // exact constant representation, the dedup/coverage key
}

// enumMembers returns the required members of an enum type declared in pkg
// or one of its dependencies, or nil if typ is not an enum by this
// analyzer's definition.
func enumMembers(pkg *lint.Package, typ types.Type) (string, []member) {
	named, ok := types.Unalias(typ).(*types.Named)
	if !ok {
		return "", nil
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return "", nil
	}
	declPkg := obj.Pkg()
	if !strings.HasPrefix(declPkg.Path(), "rtseed/") {
		return "", nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return "", nil
	}
	foreign := declPkg != pkg.Types

	var members []member
	total := 0
	seen := map[string]bool{}
	scope := declPkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		total++
		if isSentinel(name) {
			continue
		}
		if foreign && !c.Exported() {
			continue
		}
		v := c.Val().ExactString()
		if seen[v] {
			continue
		}
		seen[v] = true
		members = append(members, member{name: name, value: v})
	}
	if total < 2 {
		return "", nil
	}
	return declPkg.Name() + "." + obj.Name(), members
}

// isSentinel reports whether an enum member name bounds the enum (kindMax,
// stateCount, ...) rather than belongs to it.
func isSentinel(name string) bool {
	lower := strings.ToLower(name)
	for _, suffix := range []string{"max", "count", "limit"} {
		if strings.HasSuffix(lower, suffix) {
			return true
		}
	}
	return false
}

func run(pass *lint.Pass) error {
	pass.InspectFuncs(func(file *ast.File, decl *ast.FuncDecl, n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		tv, ok := pass.TypesInfo().Types[sw.Tag]
		if !ok || tv.Type == nil {
			return true
		}
		enumName, members := enumMembers(pass.Pkg, tv.Type)
		if members == nil {
			return true
		}

		covered := map[string]bool{}
		for _, stmt := range sw.Body.List {
			clause, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, expr := range clause.List {
				ctv, ok := pass.TypesInfo().Types[expr]
				if !ok || ctv.Value == nil {
					// A non-constant case arm: coverage is undecidable,
					// leave the switch alone.
					return true
				}
				covered[ctv.Value.ExactString()] = true
			}
		}

		var missing []member
		for _, m := range members {
			if !covered[m.value] {
				missing = append(missing, m)
			}
		}
		if len(missing) == 0 {
			return true
		}
		if pass.Waived(sw.Pos(), lint.DirPartialOK) {
			return true
		}
		sort.Slice(missing, func(i, j int) bool { return missing[i].name < missing[j].name })
		names := make([]string, len(missing))
		for i, m := range missing {
			names[i] = m.name
		}
		pass.Reportf(sw.Pos(), "switch over %s misses %s (cover them or add //rtseed:partial-ok <reason>)",
			enumName, strings.Join(names, ", "))
		return true
	})
	return nil
}
