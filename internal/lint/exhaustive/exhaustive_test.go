package exhaustive_test

import (
	"testing"

	"rtseed/internal/lint/analysistest"
	"rtseed/internal/lint/exhaustive"
)

func TestExhaustive(t *testing.T) {
	analysistest.Run(t, exhaustive.Analyzer, "../testdata/src/exhaustive")
}
