package eventhandle_test

import (
	"testing"

	"rtseed/internal/lint/analysistest"
	"rtseed/internal/lint/eventhandle"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, eventhandle.Analyzer, "../testdata/src/eventhandle")
}
