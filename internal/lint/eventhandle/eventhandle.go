// Package eventhandle polices generation-counted engine.Event handles.
// A handle is a value snapshot of (node, generation): once the event fires
// or is cancelled the node recycles, and a held handle silently goes inert.
// Holding one across a recycle is only safe when every later use re-checks
// it (Event.Scheduled), so the analyzer flags the places where handles
// outlive a scope unchecked:
//
//   - storing a live handle into a struct field or package-level variable
//     whose declaration is not blessed with //rtseed:handle-ok <reason>;
//   - declaring a package-level engine.Event variable at all;
//   - using a handle after cancelling it in the same function, unless the
//     use is re-guarded by Scheduled or the variable was reassigned.
//
// Zeroing a stored handle (x = engine.Event{}) is the sanctioned way to
// drop one and is never flagged.
package eventhandle

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"rtseed/internal/lint"
)

// Analyzer is the event-handle discipline checker.
var Analyzer = &lint.Analyzer{
	Name: "eventhandle",
	Doc:  "flag engine.Event handles stored unchecked in fields or globals, and uses after Cancel",
	Run:  run,
}

// eventTypePath/Name identify the handle type.
const (
	eventTypePath = "rtseed/internal/engine"
	eventTypeName = "Event"
)

func isEventType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == eventTypeName && obj.Pkg() != nil && obj.Pkg().Path() == eventTypePath
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Pkg.Syntax {
		for _, d := range file.Decls {
			switch d := d.(type) {
			case *ast.GenDecl:
				if d.Tok == token.VAR {
					checkGlobalDecl(pass, d)
				}
			case *ast.FuncDecl:
				if d.Body != nil {
					checkStores(pass, d)
					checkUseAfterCancel(pass, d)
				}
			}
		}
	}
	return nil
}

// checkGlobalDecl flags package-level engine.Event variables: a global
// handle outlives every recycle and invites stale cancellation.
func checkGlobalDecl(pass *lint.Pass, decl *ast.GenDecl) {
	for _, spec := range decl.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			obj, ok := pass.TypesInfo().Defs[name].(*types.Var)
			if !ok || !isEventType(obj.Type()) {
				continue
			}
			if pass.Waived(name.Pos(), lint.DirHandleOK) {
				continue
			}
			pass.Reportf(name.Pos(), "package-level engine.Event %q holds a handle across recycles; keep handles local or annotate the declaration //rtseed:handle-ok with the checking discipline", name.Name)
		}
	}
}

// checkStores flags assignments and composite literals that persist a live
// handle into a struct field or package-level variable whose declaration is
// not annotated //rtseed:handle-ok.
func checkStores(pass *lint.Pass, decl *ast.FuncDecl) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break // x, y = f() — f cannot return a live handle pair worth special-casing
				}
				checkStore(pass, lhs, n.Rhs[i])
			}
		case *ast.CompositeLit:
			checkCompositeStore(pass, n)
		}
		return true
	})
}

func checkStore(pass *lint.Pass, lhs, rhs ast.Expr) {
	if !storesLiveEvent(pass, rhs) {
		return
	}
	target := persistentTarget(pass, lhs)
	if target == nil {
		return
	}
	if pass.Waived(lhs.Pos(), lint.DirHandleOK) || pass.Waived(target.Pos(), lint.DirHandleOK) {
		return
	}
	kind := "struct field"
	if target.Parent() == target.Pkg().Scope() {
		kind = "package-level variable"
	}
	pass.Reportf(lhs.Pos(), "engine.Event handle stored into %s %q; the handle survives the event's recycle — annotate the declaration //rtseed:handle-ok if every use re-checks Scheduled", kind, target.Name())
}

func checkCompositeStore(pass *lint.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo().Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	st, ok := types.Unalias(tv.Type).Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		var field *types.Var
		var value ast.Expr
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			field, _ = pass.TypesInfo().Uses[key].(*types.Var)
			value = kv.Value
		} else if i < st.NumFields() {
			field = st.Field(i)
			value = elt
		}
		if field == nil || !isEventType(field.Type()) || !storesLiveEvent(pass, value) {
			continue
		}
		if pass.Waived(value.Pos(), lint.DirHandleOK) || pass.Waived(field.Pos(), lint.DirHandleOK) {
			continue
		}
		pass.Reportf(value.Pos(), "engine.Event handle stored into struct field %q via composite literal; annotate the field //rtseed:handle-ok if every use re-checks Scheduled", field.Name())
	}
}

// persistentTarget resolves lhs to the struct field or package-level
// variable it writes, or nil when the destination is a plain local.
func persistentTarget(pass *lint.Pass, lhs ast.Expr) *types.Var {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		sel, ok := pass.TypesInfo().Selections[lhs]
		if ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
		}
		// Qualified package-level var (pkg.Var).
		if v, ok := pass.TypesInfo().Uses[lhs.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
	case *ast.Ident:
		v, ok := pass.TypesInfo().Uses[lhs].(*types.Var)
		if ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
	}
	return nil
}

// storesLiveEvent reports whether rhs is an engine.Event expression other
// than the zero literal engine.Event{} (which clears, not holds).
func storesLiveEvent(pass *lint.Pass, rhs ast.Expr) bool {
	tv, ok := pass.TypesInfo().Types[rhs]
	if !ok || tv.Type == nil || !isEventType(tv.Type) {
		return false
	}
	if lit, ok := ast.Unparen(rhs).(*ast.CompositeLit); ok && len(lit.Elts) == 0 {
		return false
	}
	return true
}

// Event kinds for the linear use-after-cancel scan, in source order.
const (
	opUse = iota
	opCancel
	opClear // reassignment or a Scheduled() re-check
)

type handleOp struct {
	kind int
	pos  token.Pos
}

// checkUseAfterCancel walks one function and flags local handles used after
// a Cancel/Free call without an intervening reassignment or Scheduled
// re-check. The scan is linear in source order — a deliberate approximation
// that matches the straight-line cancel-then-touch bug it exists to catch.
func checkUseAfterCancel(pass *lint.Pass, decl *ast.FuncDecl) {
	info := pass.TypesInfo()
	classified := map[*ast.Ident]int{}
	ops := map[*types.Var][]handleOp{}

	eventVar := func(expr ast.Expr) (*ast.Ident, *types.Var) {
		id, ok := ast.Unparen(expr).(*ast.Ident)
		if !ok {
			return nil, nil
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || !isEventType(v.Type()) {
			return nil, nil
		}
		return id, v
	}

	// First pass: classify the idents appearing in cancels, re-checks, and
	// assignments; everything else defaults to a plain use.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := pass.CalleeFunc(n)
			if fn != nil && (fn.Name() == "Cancel" || fn.Name() == "Free") {
				for _, arg := range n.Args {
					if id, _ := eventVar(arg); id != nil {
						classified[id] = opCancel
					}
				}
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "Scheduled" {
				if id, _ := eventVar(n.X); id != nil {
					classified[id] = opClear
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, _ := eventVar(lhs); id != nil {
					classified[id] = opClear
				}
			}
		}
		return true
	})

	// Second pass: gather every handle ident with its classification.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if _, v := eventVar(id); v != nil {
			kind, ok := classified[id]
			if !ok {
				kind = opUse
			}
			ops[v] = append(ops[v], handleOp{kind: kind, pos: id.Pos()})
		}
		return true
	})

	for v, seq := range ops {
		sort.Slice(seq, func(i, j int) bool { return seq[i].pos < seq[j].pos })
		cancelled := false
		for _, op := range seq {
			switch op.kind {
			case opCancel:
				cancelled = true
			case opClear:
				cancelled = false
			case opUse:
				if cancelled && !pass.Waived(op.pos, lint.DirHandleOK) {
					pass.Reportf(op.pos, "%q used after Cancel; the handle is inert (or worse, recycled) — re-check Scheduled or reassign it first", v.Name())
					cancelled = false // one report per cancellation is enough
				}
			}
		}
	}
}
