package lint

// scope.go is the single source of truth for the simulation-determinism
// scope: the set of rtseed/internal packages whose non-test code must be a
// pure function of its inputs. The determinism, detflow, and isoshare
// analyzers all consult InSimScope, so a package is either covered by all
// three tiers or deliberately exempt — never covered by one and silently
// skipped by another. TestSimScopeCoversInternalPackages asserts that every
// directory under internal/ appears in exactly one of the two tables below,
// so a new package cannot dodge the analyzers by omission.

// SimScopePackages are the rtseed/internal packages under the determinism
// contract. cmd/ front-ends may touch the real world; these may not.
var SimScopePackages = []string{
	"engine", "kernel", "overhead", "analysis", "sweep", "sched",
	"task", "machine", "partition", "assign", "core", "trace",
	"cluster", "workload", "list", "report",
}

// A ScopeExemption names an rtseed/internal package that is deliberately
// outside the determinism scope, with the reason on record.
type ScopeExemption struct {
	Pkg    string
	Reason string
}

// SimScopeExemptions lists every internal package the contract does not
// cover. Exempting a package is a reviewed decision, not a default: the
// scope test fails on any internal package missing from both tables, and
// TestSimScopeExemptRTNotImported keeps the rt exemption from leaking back
// into scope through an import.
var SimScopeExemptions = []ScopeExemption{
	{"rt", "executes on the host clock by design (wall-clock runner and wake-latency probes); the reproducible counterpart is the simulated kernel, and no in-scope package may import rt"},
	{"lint", "the analysis tooling itself; it inspects the tree rather than simulating anything"},
	{"prof", "wires -cpuprofile/-memprofile flags to runtime/pprof for the cmd/ binaries; host-file I/O is its purpose"},
	{"trading", "the demo trading substrate, including the live network feed; its deterministic replay path runs inside the scoped simulator packages"},
}

// InSimScope reports whether the determinism contract applies to importPath.
func InSimScope(importPath string) bool {
	return IsInternalPkg(importPath, SimScopePackages...)
}
