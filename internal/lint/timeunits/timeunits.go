// Package timeunits implements dimensional analysis over simulated-time
// arithmetic.
//
// The simulator works in four unit classes: absolute nanoseconds
// (engine.Time — an instant since simulation start), relative nanoseconds
// (time.Duration and module Duration newtypes), wheel ticks (virtual time
// quantized by 2^tickShift), and raw integers. The classes are declared by
// newtypes, but Go's type system cannot express their algebra: Time+Time
// compiles even though adding two instants is meaningless, and a tick count
// laundered through a uint64 assigns into a nanosecond field without
// complaint. This analyzer restores the algebra:
//
//   - adding two absolute times is flagged (instants add only with
//     durations: t.Add(d));
//   - any arithmetic or comparison mixing the tick domain with a
//     nanosecond domain is flagged;
//   - converting between unit classes outside a declared conversion helper
//     is flagged (tickOf, tick.start, Time.Add/Sub/Duration, At are the
//     sanctioned crossings — any single-argument function or method that
//     maps one unit class to another counts as a helper and its body is
//     exempt);
//   - a shift by the tickShift constant is recognized as the ns↔tick
//     conversion idiom and changes the class instead of flagging.
//
// Raw integers carry classes through dataflow: the CFG + worklist solver
// from internal/lint/dataflow propagates the class of `u := uint64(t)`
// to later uses of u, so laundering through locals is visible. Findings
// are waived with //rtseed:units-ok <reason>.
package timeunits

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rtseed/internal/lint"
	"rtseed/internal/lint/dataflow"
	"rtseed/internal/lint/determinism"
)

// Analyzer is the time-unit soundness checker.
var Analyzer = &lint.Analyzer{
	Name: "timeunits",
	Doc: "dimensional analysis over simulated-time arithmetic\n\n" +
		"Classifies values as abs-ns (engine.Time), rel-ns (time.Duration),\n" +
		"tick, or raw; flags abs+abs addition, tick/ns mixing, cross-unit\n" +
		"comparisons, and conversions outside declared helpers. Waive with\n" +
		"//rtseed:units-ok <reason>.",
	AppliesTo: determinism.InScope,
	Run:       run,
}

// Class is a unit class in the abstract domain.
type Class int

const (
	Unknown Class = iota // raw integers, everything non-temporal
	AbsNS                // an instant: nanoseconds since simulation start
	RelNS                // a duration: nanoseconds between instants
	Tick                 // virtual time quantized by 2^tickShift
)

func (c Class) String() string {
	switch c {
	case AbsNS:
		return "abs-ns"
	case RelNS:
		return "rel-ns"
	case Tick:
		return "tick"
	case Unknown:
		return "raw"
	}
	return "raw"
}

// ns reports whether the class is one of the nanosecond domains.
func (c Class) ns() bool { return c == AbsNS || c == RelNS }

// classOfType statically classifies a type. Module enums are excluded even
// when their name matches a unit newtype pattern: a named integer type with
// an iota constant block is a discrete kind, not a quantity.
func classOfType(t types.Type) Class {
	if t == nil {
		return Unknown
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return Unknown
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return Unknown
	}
	path, name := obj.Pkg().Path(), obj.Name()
	if path == "time" && name == "Duration" {
		return RelNS
	}
	if !strings.HasPrefix(path, "rtseed/") {
		return Unknown
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return Unknown
	}
	if enum, _ := lint.EnumMembers(nil, named); enum != "" {
		return Unknown
	}
	switch {
	case name == "Time":
		return AbsNS
	case name == "Duration":
		return RelNS
	case strings.EqualFold(name, "tick") || strings.HasSuffix(name, "Tick"):
		return Tick
	}
	return Unknown
}

// isConversionHelper reports whether fn is a declared unit-conversion
// helper: a module function or method with at most one parameter (plus an
// optional receiver), exactly one result, where the result and at least
// one input carry a unit class. This shape captures the sanctioned unit
// crossings — tickOf, tick.start, Time.Add/Sub/Duration, At — without
// naming them: a one-argument function whose signature maps unit to unit
// *is* a conversion. Helper bodies are exempt and their call sites take
// the signature's classes at face value. Two-parameter free functions are
// deliberately excluded: `f(a, b Time) Time` is indistinguishable by
// signature from the abs+abs mistakes this analyzer exists to catch, so
// combining helpers must be methods (`(t Time).Add(d)`).
func isConversionHelper(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || !strings.HasPrefix(fn.Pkg().Path(), "rtseed/") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Results().Len() != 1 || classOfType(sig.Results().At(0).Type()) == Unknown {
		return false
	}
	if sig.Params().Len() > 1 {
		return false
	}
	classedInputs := 0
	if recv := sig.Recv(); recv != nil && classOfType(recv.Type()) != Unknown {
		classedInputs++
	}
	if sig.Params().Len() == 1 && classOfType(sig.Params().At(0).Type()) != Unknown {
		classedInputs++
	}
	return classedInputs >= 1
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Pkg.Syntax {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo().Defs[decl.Name].(*types.Func); ok && isConversionHelper(fn) {
				continue // helper bodies implement the conversions
			}
			analyzeFunc(pass, decl, decl.Type, decl.Body)
			// Function literals have their own scopes and control flow;
			// analyze each independently (captured raw variables start
			// unclassified — intraprocedural).
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					analyzeFunc(pass, decl, lit.Type, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// checker evaluates expressions against a dataflow state, optionally
// reporting findings (only the post-solve replay reports; the solver's
// transfer passes run silent).
type checker struct {
	pass   *lint.Pass
	decl   *ast.FuncDecl // enclosing declaration, for function-scope waivers
	report bool
	// seen deduplicates findings per position: tuple assignments evaluate
	// their shared right-hand side once per binding.
	seen map[token.Pos]bool
}

func analyzeFunc(pass *lint.Pass, decl *ast.FuncDecl, fnType *ast.FuncType, body *ast.BlockStmt) {
	cfg := dataflow.BuildCFG(body)
	solveCk := &checker{pass: pass, decl: decl}
	prob := dataflow.Problem[dataflow.State[Class]]{
		Entry: func() dataflow.State[Class] { return dataflow.State[Class]{} },
		Copy:  func(s dataflow.State[Class]) dataflow.State[Class] { return s.Copy() },
		Join: func(dst, src dataflow.State[Class]) bool {
			// Conflicting classes at a join degrade to absent (Unknown)
			// rather than flagging: a φ-conflict is not a use.
			changed := false
			for k, v := range src {
				if cur, ok := dst[k]; ok {
					if cur != v {
						delete(dst, k)
						changed = true
					}
				} else {
					dst[k] = v
					changed = true
				}
			}
			return changed
		},
		Node: func(n ast.Node, s dataflow.State[Class]) { solveCk.transfer(n, s) },
	}
	in := dataflow.Forward(cfg, prob)
	// Second pass from the fixed point, now reporting. The report pass
	// replaces the transfer function wholesale so each node is applied
	// exactly once per replay.
	reportCk := &checker{pass: pass, decl: decl, report: true, seen: map[token.Pos]bool{}}
	reportProb := prob
	reportProb.Node = func(n ast.Node, s dataflow.State[Class]) { reportCk.transfer(n, s) }
	for _, b := range cfg.Blocks {
		state, ok := in[b]
		if !ok {
			continue
		}
		dataflow.Replay(b, state, reportProb, func(ast.Node, dataflow.State[Class]) {})
	}
}

// transfer applies one node's effect to the state, checking unit rules
// along the way when report is set.
func (c *checker) transfer(n ast.Node, s dataflow.State[Class]) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if op, ok := opAssign[n.Tok]; ok && len(n.Lhs) == 1 && len(n.Rhs) == 1 {
			// x op= y is x = x op y: run the binary rules on a synthesized
			// node so t += t flags like t = t + t does.
			syn := &ast.BinaryExpr{X: n.Lhs[0], OpPos: n.TokPos, Op: op, Y: n.Rhs[0]}
			c.assign(n.Lhs[0], syn, s)
			return
		}
		dataflow.ForEachAssign(n, func(lhs, rhs ast.Expr) { c.assign(lhs, rhs, s) })
	case *ast.DeclStmt:
		dataflow.ForEachAssign(n, func(lhs, rhs ast.Expr) { c.assign(lhs, rhs, s) })
	case *ast.IncDecStmt:
		c.eval(n.X, s)
	case *ast.ExprStmt:
		c.eval(n.X, s)
	case *ast.SendStmt:
		c.eval(n.Chan, s)
		c.eval(n.Value, s)
	case *ast.GoStmt:
		c.eval(n.Call, s)
	case *ast.DeferStmt:
		c.eval(n.Call, s)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			c.eval(r, s)
		}
	case *ast.RangeStmt:
		c.eval(n.X, s)
	case ast.Expr:
		// Control expressions attached by the CFG builder (if/for
		// conditions, switch tags, case expressions).
		c.eval(n, s)
	}
}

// opAssign maps compound-assignment tokens to their binary operator.
var opAssign = map[token.Token]token.Token{
	token.ADD_ASSIGN: token.ADD, token.SUB_ASSIGN: token.SUB,
	token.MUL_ASSIGN: token.MUL, token.QUO_ASSIGN: token.QUO,
	token.REM_ASSIGN: token.REM, token.AND_ASSIGN: token.AND,
	token.OR_ASSIGN: token.OR, token.XOR_ASSIGN: token.XOR,
	token.SHL_ASSIGN: token.SHL, token.SHR_ASSIGN: token.SHR,
	token.AND_NOT_ASSIGN: token.AND_NOT,
}

// assign applies one lhs = rhs binding: typed variables are checked against
// the incoming class, raw variables carry it forward through the state.
func (c *checker) assign(lhs, rhs ast.Expr, s dataflow.State[Class]) {
	if rhs == nil {
		s.Clear(c.pass.TypesInfo(), lhs)
		return
	}
	cls := c.eval(rhs, s)
	lhsCls := classOfType(c.pass.TypesInfo().TypeOf(lhs))
	if lhsCls != Unknown {
		// The variable's declared type is authoritative; a cross-class
		// assignment without a conversion is only expressible through raw
		// laundering, which eval flags at the conversion. Still guard the
		// direct case.
		if cls != Unknown && cls != lhsCls {
			c.flagf(lhs.Pos(), "assigning a %s value to %s (%s) without a conversion",
				cls, exprString(lhs), lhsCls)
		}
		return
	}
	if cls == Unknown {
		s.Clear(c.pass.TypesInfo(), lhs)
	} else {
		s.Set(c.pass.TypesInfo(), lhs, cls)
	}
}

// eval computes the unit class of an expression, reporting violations
// found inside it. Static (declared) classes win; dataflow classes fill in
// for raw-typed expressions.
func (c *checker) eval(e ast.Expr, s dataflow.State[Class]) Class {
	if e == nil {
		return Unknown
	}
	info := c.pass.TypesInfo()
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return Unknown // constants are polymorphic across units
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.eval(e.X, s)

	case *ast.Ident, *ast.SelectorExpr:
		if cls := classOfType(info.TypeOf(e)); cls != Unknown {
			return cls
		}
		if cls, ok := s.Get(info, e); ok {
			return cls
		}
		return Unknown

	case *ast.UnaryExpr:
		inner := c.eval(e.X, s)
		switch e.Op {
		case token.SUB, token.ADD, token.XOR:
			return inner
		}
		return classOfType(info.TypeOf(e))

	case *ast.StarExpr:
		c.eval(e.X, s)
		return classOfType(info.TypeOf(e))

	case *ast.IndexExpr:
		c.eval(e.X, s)
		c.eval(e.Index, s)
		return classOfType(info.TypeOf(e))

	case *ast.BinaryExpr:
		return c.binary(e, s)

	case *ast.CallExpr:
		return c.call(e, s)

	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				c.eval(kv.Value, s)
			} else {
				c.eval(el, s)
			}
		}
		return Unknown

	case *ast.KeyValueExpr:
		c.eval(e.Value, s)
		return Unknown

	case *ast.TypeAssertExpr:
		c.eval(e.X, s)
		return classOfType(info.TypeOf(e))

	case *ast.SliceExpr:
		c.eval(e.X, s)
		return Unknown

	case *ast.FuncLit:
		// Analyzed separately with a fresh state.
		return Unknown
	}
	return classOfType(info.TypeOf(e))
}

// isTickShift reports whether a shift-amount expression names the tickShift
// constant (directly or through a selector).
func isTickShift(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name == "tickShift"
	case *ast.SelectorExpr:
		return e.Sel.Name == "tickShift"
	case *ast.CallExpr: // uint(tickShift) and friends
		if len(e.Args) == 1 {
			return isTickShift(e.Args[0])
		}
	}
	return false
}

func (c *checker) binary(e *ast.BinaryExpr, s dataflow.State[Class]) Class {
	info := c.pass.TypesInfo()
	x := c.eval(e.X, s)

	// Shifts by tickShift are the declared ns↔tick conversion idiom.
	if e.Op == token.SHR || e.Op == token.SHL {
		if isTickShift(e.Y) {
			if e.Op == token.SHR && x.ns() {
				return Tick
			}
			if e.Op == token.SHL && x == Tick {
				return AbsNS
			}
		}
		return x // other shifts stay in the operand's domain (slot math)
	}

	y := c.eval(e.Y, s)

	// Rule: the tick domain never mixes with a nanosecond domain.
	if (x == Tick && y.ns()) || (x.ns() && y == Tick) {
		c.flagf(e.OpPos, "%s mixes tick and nanosecond units (%s %s %s); convert with tickOf or tick.start first",
			opName(e.Op), x, e.Op, y)
		return Unknown
	}

	switch e.Op {
	case token.ADD:
		if x == AbsNS && y == AbsNS {
			c.flagf(e.OpPos, "adding two absolute times (abs-ns + abs-ns); an instant only advances by a duration — use t.Add(d)")
			return Unknown
		}
		if x == AbsNS || y == AbsNS {
			return AbsNS
		}
		return joinSame(x, y)
	case token.SUB:
		switch {
		case x == AbsNS && y == AbsNS:
			return RelNS // instant - instant = duration
		case x == AbsNS:
			return AbsNS
		case y == AbsNS:
			c.flagf(e.OpPos, "subtracting an absolute time from a %s value", x)
			return Unknown
		}
		return joinSame(x, y)
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		if (x == AbsNS && y == RelNS) || (x == RelNS && y == AbsNS) {
			c.flagf(e.OpPos, "comparing across units (%s %s %s); convert one side first", x, e.Op, y)
		}
		return Unknown
	case token.MUL, token.QUO, token.REM:
		// Scaling and modulo escape the dimensional algebra (a duration
		// times a count is a duration; a duration over a duration is a
		// count); Go's static type is the best answer available.
		return classOfType(info.TypeOf(e))
	}
	return Unknown
}

// joinSame merges two classes for symmetric arithmetic: equal classes keep
// the class, an Unknown side defers to the other.
func joinSame(x, y Class) Class {
	switch {
	case x == y:
		return x
	case x == Unknown:
		return y
	case y == Unknown:
		return x
	}
	return Unknown
}

func (c *checker) call(e *ast.CallExpr, s dataflow.State[Class]) Class {
	info := c.pass.TypesInfo()

	// Conversion T(x): a cross-class conversion outside a helper body is a
	// finding — that is exactly the laundering this analyzer exists for.
	if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
		to := classOfType(tv.Type)
		from := c.eval(e.Args[0], s)
		if to != Unknown && from != Unknown && to != from {
			c.flagf(e.Pos(), "conversion reinterprets %s as %s (%s) outside a conversion helper",
				from, to, exprString(e.Fun))
			return Unknown
		}
		if to != Unknown {
			return to
		}
		return from // raw conversions (uint64(t)) keep the class flowing
	}

	// Builtins have no unit semantics; evaluate arguments for findings.
	if b := c.pass.CalleeBuiltin(e); b != nil {
		for _, a := range e.Args {
			c.eval(a, s)
		}
		return Unknown
	}

	fn := c.pass.CalleeFunc(e)
	var sig *types.Signature
	if fn != nil {
		sig, _ = fn.Type().(*types.Signature)
	} else if tv, ok := info.Types[e.Fun]; ok && tv.Type != nil {
		sig, _ = tv.Type.Underlying().(*types.Signature) // dynamic call
	}

	// Check argument classes against parameter classes.
	for i, a := range e.Args {
		argCls := c.eval(a, s)
		if sig == nil || argCls == Unknown {
			continue
		}
		var param *types.Var
		if i < sig.Params().Len() {
			param = sig.Params().At(i)
		} else if sig.Variadic() && sig.Params().Len() > 0 {
			param = sig.Params().At(sig.Params().Len() - 1)
		}
		if param == nil {
			continue
		}
		pType := param.Type()
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			if sl, ok := pType.(*types.Slice); ok {
				pType = sl.Elem()
			}
		}
		if pCls := classOfType(pType); pCls != Unknown && pCls != argCls {
			name := "function"
			if fn != nil {
				name = fn.Name()
			}
			c.flagf(a.Pos(), "passing a %s value where %s expects %s", argCls, name, pCls)
		}
	}

	if sig != nil && sig.Results().Len() == 1 {
		return classOfType(sig.Results().At(0).Type())
	}
	return Unknown
}

func (c *checker) flagf(pos token.Pos, format string, args ...any) {
	if !c.report || c.seen[pos] {
		return
	}
	c.seen[pos] = true
	if c.pass.WaivedIn(c.decl, pos, lint.DirUnitsOK) {
		return
	}
	c.pass.Reportf(pos, format+" (//rtseed:units-ok <reason> to waive)", args...)
}

func opName(op token.Token) string {
	switch op {
	case token.ADD:
		return "addition"
	case token.SUB:
		return "subtraction"
	case token.REM:
		return "modulo"
	case token.AND, token.OR, token.XOR, token.AND_NOT:
		return "bitwise arithmetic"
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		return "comparison"
	}
	return "arithmetic"
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return "expression"
}
