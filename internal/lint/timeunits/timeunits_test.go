package timeunits_test

import (
	"testing"

	"rtseed/internal/lint/analysistest"
	"rtseed/internal/lint/timeunits"
)

func TestTimeUnits(t *testing.T) {
	analysistest.Run(t, timeunits.Analyzer, "../testdata/src/timeunits")
}
