package dataflow

import "go/ast"

// Problem defines a forward dataflow problem over a CFG for a state type S.
// States are treated as values owned by the solver: Copy must produce an
// independent state, Join must merge src into dst in place and report
// whether dst changed, and Node must apply one node's transfer effect to s
// in place. Entry produces the state at function entry (typically binding
// parameters).
type Problem[S any] struct {
	Entry func() S
	Copy  func(S) S
	Join  func(dst, src S) bool
	Node  func(n ast.Node, s S)
}

// Forward solves the problem with a worklist iteration and returns the
// fixed-point IN state of every block. The iteration is deterministic: the
// worklist is processed in block-index order, so analyzers built on it
// report findings in a stable order.
func Forward[S any](c *CFG, p Problem[S]) map[*Block]S {
	in := make(map[*Block]S, len(c.Blocks))
	in[c.Entry] = p.Entry()

	// Deterministic worklist: a boolean membership set scanned in index
	// order. CFGs here are per-function and small; simplicity beats a
	// priority queue.
	pending := make([]bool, len(c.Blocks))
	pending[c.Entry.Index] = true
	for {
		b := (*Block)(nil)
		for i, p := range pending {
			if p {
				b = c.Blocks[i]
				break
			}
		}
		if b == nil {
			return in
		}
		pending[b.Index] = false

		state, ok := in[b]
		if !ok {
			continue
		}
		out := p.Copy(state)
		for _, n := range b.Nodes {
			p.Node(n, out)
		}
		for _, s := range b.Succs {
			if cur, ok := in[s]; ok {
				if p.Join(cur, out) {
					pending[s.Index] = true
				}
			} else {
				in[s] = p.Copy(out)
				pending[s.Index] = true
			}
		}
	}
}

// Replay re-runs the transfer function over one block from its fixed-point
// IN state, calling visit with the state as it stands *before* each node.
// Analyzers use it to inspect per-node facts (the solver itself only keeps
// per-block states). The state passed to visit is live — visit must not
// mutate it.
func Replay[S any](b *Block, in S, p Problem[S], visit func(n ast.Node, s S)) {
	s := p.Copy(in)
	for _, n := range b.Nodes {
		visit(n, s)
		p.Node(n, s)
	}
}
