package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"rtseed/internal/lint"
)

// collectBodies walks a file and hands every function body — declarations
// and literals — to fn.
func collectBodies(file *ast.File, fn func(pos token.Pos, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			fn(n.Pos(), n.Body)
		case *ast.FuncLit:
			fn(n.Pos(), n.Body)
		}
		return true
	})
}

// TestCFGInvariantsModuleWide builds a CFG for every function body in the
// module — declarations and literals alike — and asserts the structural
// invariants. The unit tests in cfg_test.go cover each statement form in
// isolation; this test covers every combination the real tree actually
// contains, so a construction bug that only bites on some nesting the
// fixtures never spell out still fails CI.
func TestCFGInvariantsModuleWide(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	pkgs, err := lint.Load("../../..", "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	bodies := 0
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			collectBodies(file, func(pos token.Pos, body *ast.BlockStmt) {
				c := BuildCFG(body)
				if err := CheckInvariants(c); err != nil {
					t.Errorf("%s: %v", pkg.Fset.Position(pos), err)
				}
				bodies++
			})
		}
	}
	// The module has hundreds of function bodies; a tiny count means the
	// load silently matched almost nothing and the test proved nothing.
	if bodies < 100 {
		t.Errorf("only %d function bodies checked; the module load looks wrong", bodies)
	}
	t.Logf("checked %d function bodies", bodies)
}

// FuzzCFGBuild throws arbitrary function bodies at the CFG builder: anything
// the Go parser accepts must build without panicking and satisfy the
// structural invariants. The seeds are the trickiest shapes from the unit
// tests — labeled break/continue, goto, fallthrough, panic edges — so the
// fuzzer starts from the interesting region of the grammar.
func FuzzCFGBuild(f *testing.F) {
	seeds := []string{
		``,
		`x := 1; if x > 0 { x = 2 } else { x = 3 }; _ = x`,
		`x := 1; if x > 0 { return }; _ = x`,
		`for i := 0; i < 3; i++ { if i == 1 { continue }; if i == 2 { break } }`,
		`for { }`,
		`s := []int{1}; for _, v := range s { _ = v }`,
		`x := 1; switch x { case 1: x = 2; fallthrough; case 2: x = 3; default: x = 4 }; _ = x`,
		`select { }`,
		`panic("x")`,
		`x := 1; if x > 0 { panic("x") }; _ = x`,
		"outer:\n\tfor i := 0; i < 3; i++ {\n\t\tfor j := 0; j < 3; j++ {\n\t\t\tif j == 1 {\n\t\t\t\tcontinue outer\n\t\t\t}\n\t\t\tif j == 2 {\n\t\t\t\tbreak outer\n\t\t\t}\n\t\t}\n\t}",
		"\ti := 0\nloop:\n\ti++\n\tif i < 3 {\n\t\tgoto loop\n\t}",
		`f := func() {}; defer f(); if true { defer f() }`,
		`go func() { for { select {} } }()`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		src := "package p\nfunc f() {\n" + body + "\n}\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "f.go", src, 0)
		if err != nil {
			t.Skip() // not a parseable body; the builder never sees those
		}
		collectBodies(file, func(pos token.Pos, b *ast.BlockStmt) {
			c := BuildCFG(b)
			if err := CheckInvariants(c); err != nil {
				t.Fatalf("invariants violated at %s: %v\nbody:\n%s", fset.Position(pos), err, body)
			}
		})
	})
}
