package dataflow

import (
	"go/ast"
	"go/types"
	"testing"
)

// findReturn returns the n-th ReturnStmt of the function in source order.
func findReturn(fd *ast.FuncDecl, n int) *ast.ReturnStmt {
	var found *ast.ReturnStmt
	i := 0
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		if r, ok := node.(*ast.ReturnStmt); ok {
			if i == n {
				found = r
			}
			i++
		}
		return true
	})
	return found
}

// defsAt solves reaching definitions and returns the facts in force just
// before the given node.
func defsAt(t *testing.T, info *types.Info, fd *ast.FuncDecl, target ast.Node) Defs {
	t.Helper()
	c := BuildCFG(fd.Body)
	if err := CheckInvariants(c); err != nil {
		t.Fatal(err)
	}
	in, p := ReachingDefs(c, info, fd.Type)
	var got Defs
	for _, b := range c.Blocks {
		state, ok := in[b]
		if !ok {
			continue
		}
		Replay(b, state, p, func(n ast.Node, s Defs) {
			if n == target {
				got = p.Copy(s)
			}
		})
	}
	if got == nil {
		t.Fatal("target node not found in any reachable block")
	}
	return got
}

func objByName(info *types.Info, name string) types.Object {
	for _, obj := range info.Defs {
		if obj != nil && obj.Name() == name {
			return obj
		}
	}
	return nil
}

func TestReachingDefsStraightLine(t *testing.T) {
	_, info, fd := parseFunc(t, `package p
func f() int {
	x := 1
	x = 2
	return x
}`, "f")
	d := defsAt(t, info, fd, findReturn(fd, 0))
	x := objByName(info, "x")
	if x == nil {
		t.Fatal("no object x")
	}
	if len(d[x]) != 1 {
		t.Fatalf("defs of x = %d, want 1 (the second assignment kills the first)", len(d[x]))
	}
}

func TestReachingDefsJoin(t *testing.T) {
	_, info, fd := parseFunc(t, `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}`, "f")
	d := defsAt(t, info, fd, findReturn(fd, 0))
	x := objByName(info, "x")
	if len(d[x]) != 2 {
		t.Fatalf("defs of x = %d, want 2 (both branches reach the return)", len(d[x]))
	}
}

func TestReachingDefsLoop(t *testing.T) {
	_, info, fd := parseFunc(t, `package p
func f(n int) int {
	x := 0
	for i := 0; i < n; i++ {
		x = i
	}
	return x
}`, "f")
	d := defsAt(t, info, fd, findReturn(fd, 0))
	x := objByName(info, "x")
	if len(d[x]) != 2 {
		t.Fatalf("defs of x = %d, want 2 (initial + loop body)", len(d[x]))
	}
}

func TestReachingDefsParamsBound(t *testing.T) {
	_, info, fd := parseFunc(t, `package p
func f(a int) (out int) {
	return a
}`, "f")
	d := defsAt(t, info, fd, findReturn(fd, 0))
	a := objByName(info, "a")
	out := objByName(info, "out")
	if len(d[a]) != 1 {
		t.Errorf("defs of param a = %d, want 1", len(d[a]))
	}
	if len(d[out]) != 1 {
		t.Errorf("defs of named result out = %d, want 1", len(d[out]))
	}
}

func TestTaintStatePropagation(t *testing.T) {
	_, info, fd := parseFunc(t, `package p
type s struct{ f, g int }
func f() int {
	var v s
	v.f = 1
	w := v
	return w.f
}`, "f")

	// Hand-rolled micro taint: mark v.f at its store, propagate through
	// plain assignments, and check w.f reads back tainted via the prefix
	// rule after w := v copies the whole struct.
	prob := Problem[State[bool]]{
		Entry: func() State[bool] { return State[bool]{} },
		Copy:  func(s State[bool]) State[bool] { return s.Copy() },
		Join:  func(dst, src State[bool]) bool { return dst.Merge(src) },
		Node: func(n ast.Node, s State[bool]) {
			ForEachAssign(n, func(lhs, rhs ast.Expr) {
				if rhs == nil {
					return
				}
				if bl, ok := rhs.(*ast.BasicLit); ok && bl.Value == "1" {
					s.Set(info, lhs, true)
					return
				}
				s.Assign(info, lhs, rhs)
			})
		},
	}
	c := BuildCFG(fd.Body)
	in := Forward(c, prob)
	ret := findReturn(fd, 0)
	tainted := false
	for _, b := range c.Blocks {
		state, ok := in[b]
		if !ok {
			continue
		}
		Replay(b, state, prob, func(n ast.Node, s State[bool]) {
			if n == ret {
				if l, ok := s.Get(info, ret.Results[0]); ok && l {
					tainted = true
				}
			}
		})
	}
	if !tainted {
		t.Error("w.f not tainted: struct-copy prefix propagation failed")
	}
}

func TestKeyOf(t *testing.T) {
	_, info, fd := parseFunc(t, `package p
type s struct{ f int }
func f(p *s) {
	x := 1
	_ = x
	_ = p.f
	_ = x + 1
}`, "f")
	var sels []*ast.SelectorExpr
	var binops []*ast.BinaryExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			sels = append(sels, n)
		case *ast.BinaryExpr:
			binops = append(binops, n)
		}
		return true
	})
	if len(sels) != 1 {
		t.Fatalf("got %d selectors", len(sels))
	}
	k, ok := KeyOf(info, sels[0])
	if !ok || k.Path != ".f" || k.Obj.Name() != "p" {
		t.Errorf("KeyOf(p.f) = %+v, %v; want obj p path .f", k, ok)
	}
	if len(binops) != 1 {
		t.Fatalf("got %d binops", len(binops))
	}
	if _, ok := KeyOf(info, binops[0]); ok {
		t.Error("KeyOf(x+1) should not be keyable")
	}
}
