package dataflow

import (
	"go/ast"
	"go/types"
)

// Key names one abstract storage location: a declared object, optionally
// narrowed to a field path below it ("" for the object itself, ".f" or
// ".f.g" for fields). Keys are comparable, so they index lattice states.
type Key struct {
	Obj  types.Object
	Path string
}

// KeyOf resolves an expression to a storage key: an identifier, or a chain
// of field selections rooted at one (x, x.f, x.f.g). Parens, &x and *x are
// transparent. The second result is false for anything else (calls,
// indexing, literals), which analyses treat as an unnamed value.
func KeyOf(info *types.Info, e ast.Expr) (Key, bool) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return KeyOf(info, e.X)
	case *ast.StarExpr:
		return KeyOf(info, e.X)
	case *ast.UnaryExpr:
		return KeyOf(info, e.X)
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil {
			return Key{}, false
		}
		if _, ok := obj.(*types.Var); !ok {
			return Key{}, false
		}
		return Key{Obj: obj}, true
	case *ast.SelectorExpr:
		// Only *field* selections extend a path; method values do not.
		sel, ok := info.Selections[e]
		if !ok || sel.Kind() != types.FieldVal {
			return Key{}, false
		}
		base, ok := KeyOf(info, e.X)
		if !ok {
			return Key{}, false
		}
		return Key{Obj: base.Obj, Path: base.Path + "." + e.Sel.Name}, true
	}
	return Key{}, false
}

// State is a taint/abstract-domain lattice state: a map from storage keys
// to analyzer-specific labels. The zero map is the bottom state.
type State[L any] map[Key]L

// Get looks up the label of an expression's key, falling back to enclosing
// prefixes: if x is labeled, x.f inherits the label. The second result is
// false when neither the key nor any prefix carries a label.
func (s State[L]) Get(info *types.Info, e ast.Expr) (L, bool) {
	var zero L
	k, ok := KeyOf(info, e)
	if !ok {
		return zero, false
	}
	for {
		if l, ok := s[k]; ok {
			return l, true
		}
		if k.Path == "" {
			return zero, false
		}
		// Drop the last path segment.
		i := len(k.Path) - 1
		for i > 0 && k.Path[i] != '.' {
			i--
		}
		k.Path = k.Path[:i]
	}
}

// Set labels an expression's key, reporting whether the expression was
// keyable at all.
func (s State[L]) Set(info *types.Info, e ast.Expr, l L) bool {
	k, ok := KeyOf(info, e)
	if !ok {
		return false
	}
	s[k] = l
	return true
}

// Clear removes an expression's key and every key underneath it (x clears
// x.f too).
func (s State[L]) Clear(info *types.Info, e ast.Expr) {
	k, ok := KeyOf(info, e)
	if !ok {
		return
	}
	delete(s, k)
	for other := range s {
		if other.Obj == k.Obj && len(other.Path) > len(k.Path) &&
			other.Path[:len(k.Path)] == k.Path && other.Path[len(k.Path)] == '.' {
			delete(s, other)
		}
	}
}

// Assign transfers labels for the assignment lhs = rhs. The old labels of
// lhs's key and everything below it are killed (strong update: lint-grade
// precision treats a named location as overwritten). When rhs is keyable,
// its label — or a prefix's — becomes lhs's label, and labels on keys
// *below* rhs are rebased below lhs, so a whole-struct copy carries field
// taint. Reports whether any label was transferred; when rhs is not
// keyable the caller evaluates it by other means.
func (s State[L]) Assign(info *types.Info, lhs, rhs ast.Expr) bool {
	klhs, ok := KeyOf(info, lhs)
	if !ok {
		return false
	}
	krhs, rok := KeyOf(info, rhs)

	// Collect the transfers before clearing: lhs and rhs may overlap.
	type kv struct {
		k Key
		l L
	}
	var moves []kv
	if rok {
		if l, ok := s.Get(info, rhs); ok {
			moves = append(moves, kv{klhs, l})
		}
		for k, l := range s {
			if k.Obj == krhs.Obj && len(k.Path) > len(krhs.Path) &&
				k.Path[:len(krhs.Path)] == krhs.Path && k.Path[len(krhs.Path)] == '.' {
				moves = append(moves, kv{Key{Obj: klhs.Obj, Path: klhs.Path + k.Path[len(krhs.Path):]}, l})
			}
		}
	}
	s.Clear(info, lhs)
	for _, m := range moves {
		s[m.k] = m.l
	}
	return len(moves) > 0
}

// Copy returns an independent copy of the state (labels are copied
// shallowly; analyzers use immutable label values).
func (s State[L]) Copy() State[L] {
	out := make(State[L], len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Merge unions src into s, reporting whether s changed. Conflicting labels
// keep the one already in s: labels describe "some path taints this key
// because ...", so any witness is as good as another.
func (s State[L]) Merge(src State[L]) bool {
	changed := false
	for k, v := range src {
		if _, ok := s[k]; !ok {
			s[k] = v
			changed = true
		}
	}
	return changed
}

// ForEachAssign decomposes an assignment-like node into (lhs, rhs) pairs
// and invokes fn for each. Tuple assignments from a single call
// (a, b := f()) pass the call as rhs for every lhs. Var declarations
// without initializers pass a nil rhs. Nodes that are not assignments are
// ignored.
func ForEachAssign(n ast.Node, fn func(lhs, rhs ast.Expr)) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				fn(n.Lhs[i], n.Rhs[i])
			}
		} else if len(n.Rhs) == 1 {
			for _, l := range n.Lhs {
				fn(l, n.Rhs[0])
			}
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				switch {
				case len(vs.Values) == len(vs.Names):
					fn(name, vs.Values[i])
				case len(vs.Values) == 1:
					fn(name, vs.Values[0])
				default:
					fn(name, nil)
				}
			}
		}
	}
}
