// Package dataflow is the third tier of the rtseed-vet analyzer stack: an
// intraprocedural dataflow layer built only on the standard library.
//
// Tier 1 (PR 2) is syntactic — pattern-match a call, report it. Tier 2
// (PR 5) is the whole-module call graph — reachability over functions.
// This package adds the missing value dimension: per-function control-flow
// graphs built from go/ast, a generic forward worklist solver over them,
// reaching definitions, and a small taint/abstract-domain toolkit keyed on
// types.Object plus field paths. The timeunits, detflow, and bodystep
// analyzers are built on top of it.
//
// The CFG builder is deliberately type-free: it consumes syntax alone, so
// it can run over anything that parses (including fuzz-generated bodies)
// and never depends on a loaded package.
package dataflow

import (
	"go/ast"
	"go/token"
)

// Block is a basic block: a maximal run of statements and control
// expressions that execute without internal control transfer. Nodes holds
// them in execution order; besides plain statements it includes the
// condition expressions of if/for and the tag of a switch, so a transfer
// function sees every evaluated expression exactly once.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block

	// kind is a debugging aid only ("entry", "exit", "if.then", ...).
	kind string
}

// CFG is the control-flow graph of one function body. Entry and Exit are
// synthetic: Entry leads to the first statement, and every return (plus
// falling off the end of the body) leads to Exit. Exit has no successors.
//
// Defer statements are collected in syntactic order into Defers and also
// appear as ordinary nodes in their block (so their call expression's
// operands are seen where they are evaluated); analyses that care about
// deferred *effects* replay Defers as happening on the Exit edge.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	Defers []*ast.DeferStmt
}

// Reachable returns the set of blocks reachable from Entry.
func (c *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{c.Entry: true}
	work := []*Block{c.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

// BuildCFG constructs the control-flow graph of a function body. body may be
// nil (a declaration without a body), in which case the graph is just
// Entry→Exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &builder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.cur = b.cfg.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edgeTo(b.cfg.Exit) // falling off the end of the body
	b.resolveGotos()
	return b.cfg
}

// loopFrame is one enclosing breakable/continuable statement. post is the
// break target; head is the continue target (nil for switch/select, which
// are breakable but not continuable).
type loopFrame struct {
	label string
	post  *Block
	head  *Block
}

type pendingGoto struct {
	from  *Block
	label string
	pos   token.Pos
}

type builder struct {
	cfg *CFG
	cur *Block // nil while the current point is unreachable

	loops  []loopFrame
	labels map[string]*Block // goto targets
	gotos  []pendingGoto

	// pendingLabel is set while entering the statement under a LabeledStmt,
	// so the loop/switch it labels registers the label on its frame.
	pendingLabel string

	// lastFallthrough is the block that held the most recent fallthrough
	// statement; switchStmt reads it to wire the edge into the next clause.
	lastFallthrough *Block
}

func (b *builder) newBlock(kind string) *Block {
	bl := &Block{Index: len(b.cfg.Blocks), kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, bl)
	return bl
}

// edgeTo adds an edge cur→dst if the current point is reachable.
func (b *builder) edgeTo(dst *Block) {
	if b.cur == nil {
		return
	}
	addEdge(b.cur, dst)
}

func addEdge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// startBlock makes dst the current block (without adding an edge).
func (b *builder) startBlock(dst *Block) { b.cur = dst }

// add appends a node to the current block, opening a fresh (unreachable)
// block first if control cannot reach here — unreachable code is still
// mapped so analyses can walk it.
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label is both a goto target and (when labeling a loop,
		// switch, or select) a break/continue anchor.
		head := b.newBlock("label." + s.Label.Name)
		b.edgeTo(head)
		b.startBlock(head)
		if b.labels == nil {
			b.labels = make(map[string]*Block)
		}
		b.labels[s.Label.Name] = head
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.edgeTo(b.cfg.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		b.switchStmt(s)

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)

	case *ast.SelectStmt:
		b.selectStmt(s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			// panic terminates the path without reaching Exit: a path that
			// ends in panic never "returns" anything.
			b.cur = nil
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assign, Decl, IncDec, Go, Send — straight-line effects.
		b.add(s)
	}
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) branch(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok {
	case token.BREAK:
		for i := len(b.loops) - 1; i >= 0; i-- {
			f := b.loops[i]
			if s.Label == nil || f.label == s.Label.Name {
				b.edgeTo(f.post)
				b.cur = nil
				return
			}
		}
		b.cur = nil // malformed (break outside loop); drop the path
	case token.CONTINUE:
		for i := len(b.loops) - 1; i >= 0; i-- {
			f := b.loops[i]
			if f.head == nil {
				continue // switch/select frames are not continuable
			}
			if s.Label == nil || f.label == s.Label.Name {
				b.edgeTo(f.head)
				b.cur = nil
				return
			}
		}
		b.cur = nil
	case token.GOTO:
		if s.Label != nil && b.cur != nil {
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name, pos: s.Pos()})
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// The edge into the next clause body is wired by switchStmt; record
		// where the fallthrough happened so it knows the source block.
		b.lastFallthrough = b.cur
		b.cur = nil
	}
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	b.takeLabel() // labels on if are goto-only anchors, already registered
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	condBlock := b.cur
	post := b.newBlock("if.post")

	then := b.newBlock("if.then")
	if condBlock != nil {
		addEdge(condBlock, then)
	}
	b.startBlock(then)
	b.stmtList(s.Body.List)
	b.edgeTo(post)

	if s.Else != nil {
		els := b.newBlock("if.else")
		if condBlock != nil {
			addEdge(condBlock, els)
		}
		b.startBlock(els)
		b.stmt(s.Else)
		b.edgeTo(post)
	} else if condBlock != nil {
		addEdge(condBlock, post)
	}
	b.startBlock(post)
	if len(post.Preds) == 0 {
		b.cur = nil
		post.kind = "if.post.unreachable"
	}
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	post := b.newBlock("for.post")
	contTarget := head
	var postBlock *Block
	if s.Post != nil {
		postBlock = b.newBlock("for.inc")
		postBlock.Nodes = append(postBlock.Nodes, s.Post)
		addEdge(postBlock, head)
		contTarget = postBlock
	}
	b.edgeTo(head)
	b.startBlock(head)
	if s.Cond != nil {
		b.add(s.Cond)
		addEdge(head, post) // condition false
	}
	body := b.newBlock("for.body")
	addEdge(head, body)
	b.startBlock(body)
	b.loops = append(b.loops, loopFrame{label: label, post: post, head: contTarget})
	b.stmtList(s.Body.List)
	b.loops = b.loops[:len(b.loops)-1]
	b.edgeTo(contTarget)
	b.startBlock(post)
	if len(post.Preds) == 0 {
		// for {} with no breaks: everything after is unreachable.
		b.cur = nil
	}
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock("range.head")
	post := b.newBlock("range.post")
	b.edgeTo(head)
	b.startBlock(head)
	b.add(s)            // the RangeStmt node carries X plus the Key/Value binding
	addEdge(head, post) // range may be empty
	body := b.newBlock("range.body")
	addEdge(head, body)
	b.startBlock(body)
	b.loops = append(b.loops, loopFrame{label: label, post: post, head: head})
	b.stmtList(s.Body.List)
	b.loops = b.loops[:len(b.loops)-1]
	b.edgeTo(head)
	b.startBlock(post)
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.cur
	post := b.newBlock("switch.post")
	b.loops = append(b.loops, loopFrame{label: label, post: post})

	var clauseBlocks []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		cb := b.newBlock("switch.case")
		if head != nil {
			addEdge(head, cb)
		}
		clauseBlocks = append(clauseBlocks, cb)
		clauses = append(clauses, cc)
	}
	for i, cc := range clauses {
		b.startBlock(clauseBlocks[i])
		// Case expressions are evaluated to choose the clause; attach them
		// to the clause block so their side effects are visible.
		for _, e := range cc.List {
			b.add(e)
		}
		b.lastFallthrough = nil
		b.stmtList(cc.Body)
		if b.lastFallthrough != nil && i+1 < len(clauseBlocks) {
			// The fallthrough statement ended its path (cur == nil); wire
			// the structural edge into the next clause's block.
			addEdge(b.lastFallthrough, clauseBlocks[i+1])
		}
		b.edgeTo(post)
	}
	if head != nil && !hasDefault {
		addEdge(head, post) // no case matched
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.startBlock(post)
	if len(post.Preds) == 0 {
		b.cur = nil
	}
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	head := b.cur
	post := b.newBlock("typeswitch.post")
	b.loops = append(b.loops, loopFrame{label: label, post: post})
	hasDefault := false
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		cb := b.newBlock("typeswitch.case")
		if head != nil {
			addEdge(head, cb)
		}
		b.startBlock(cb)
		b.stmtList(cc.Body)
		b.edgeTo(post)
	}
	if head != nil && !hasDefault {
		addEdge(head, post)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.startBlock(post)
	if len(post.Preds) == 0 {
		b.cur = nil
	}
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.cur
	post := b.newBlock("select.post")
	b.loops = append(b.loops, loopFrame{label: label, post: post})
	any := false
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		any = true
		cb := b.newBlock("select.case")
		if head != nil {
			addEdge(head, cb)
		}
		b.startBlock(cb)
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edgeTo(post)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.startBlock(post)
	if !any || len(post.Preds) == 0 {
		// select {} blocks forever.
		b.cur = nil
	}
}

func (b *builder) resolveGotos() {
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			addEdge(g.from, target)
		}
		// An unresolved label is a compile error in real code; for fuzzed
		// or malformed input we simply drop the edge.
	}
}
