package dataflow

import (
	"go/ast"
	"go/types"
)

// Defs is a reaching-definitions state: for each variable, the set of
// definition sites (assignments, declarations, range bindings, or the
// function's parameter list for parameters) that may reach this point.
type Defs map[types.Object]map[ast.Node]bool

func (d Defs) set(obj types.Object, site ast.Node) {
	if obj == nil {
		return
	}
	d[obj] = map[ast.Node]bool{site: true}
}

// ReachingProblem builds the reaching-definitions dataflow problem for one
// function. fnDecl's parameters and named results are bound at entry to the
// field that declares them. info resolves identifiers to objects.
func ReachingProblem(info *types.Info, fnType *ast.FuncType) Problem[Defs] {
	return Problem[Defs]{
		Entry: func() Defs {
			d := make(Defs)
			bind := func(fl *ast.FieldList) {
				if fl == nil {
					return
				}
				for _, f := range fl.List {
					for _, name := range f.Names {
						d.set(info.ObjectOf(name), f)
					}
				}
			}
			bind(fnType.Params)
			bind(fnType.Results)
			return d
		},
		Copy: func(d Defs) Defs {
			out := make(Defs, len(d))
			for obj, sites := range d {
				cp := make(map[ast.Node]bool, len(sites))
				for s := range sites {
					cp[s] = true
				}
				out[obj] = cp
			}
			return out
		},
		Join: func(dst, src Defs) bool {
			changed := false
			for obj, sites := range src {
				cur, ok := dst[obj]
				if !ok {
					cur = make(map[ast.Node]bool, len(sites))
					dst[obj] = cur
				}
				for s := range sites {
					if !cur[s] {
						cur[s] = true
						changed = true
					}
				}
			}
			return changed
		},
		Node: func(n ast.Node, d Defs) {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, l := range n.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						d.set(info.ObjectOf(id), n)
					}
				}
			case *ast.IncDecStmt:
				if id, ok := n.X.(*ast.Ident); ok {
					d.set(info.ObjectOf(id), n)
				}
			case *ast.DeclStmt:
				if gd, ok := n.Decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							for _, name := range vs.Names {
								d.set(info.ObjectOf(name), vs)
							}
						}
					}
				}
			case *ast.RangeStmt:
				if id, ok := n.Key.(*ast.Ident); ok {
					d.set(info.ObjectOf(id), n)
				}
				if id, ok := n.Value.(*ast.Ident); ok {
					d.set(info.ObjectOf(id), n)
				}
			case *ast.TypeSwitchStmt:
				if as, ok := n.Assign.(*ast.AssignStmt); ok {
					for _, l := range as.Lhs {
						if id, ok := l.(*ast.Ident); ok {
							d.set(info.ObjectOf(id), n)
						}
					}
				}
			}
		},
	}
}

// ReachingDefs solves reaching definitions over c and returns the IN state
// of every block. Pair with Replay (using the same Problem) to read the
// facts at a particular node.
func ReachingDefs(c *CFG, info *types.Info, fnType *ast.FuncType) (map[*Block]Defs, Problem[Defs]) {
	p := ReachingProblem(info, fnType)
	return Forward(c, p), p
}
