package dataflow

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseFunc parses src as a file and returns the named function plus type
// info. Sources must be import-free so no importer is needed.
func parseFunc(t *testing.T, src, name string) (*token.FileSet, *types.Info, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Types:      map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{Error: func(error) {}}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fset, info, fd
		}
	}
	t.Fatalf("no func %s", name)
	return nil, nil, nil
}

// CheckInvariants asserts the structural CFG invariants the module-wide
// self-check also relies on: entry/exit well-formed, edges bidirectionally
// consistent, every edge endpoint registered in Blocks.
func CheckInvariants(c *CFG) error {
	if c.Entry == nil || c.Exit == nil {
		return fmt.Errorf("missing entry or exit")
	}
	if len(c.Exit.Succs) != 0 {
		return fmt.Errorf("exit block has %d successors", len(c.Exit.Succs))
	}
	index := map[*Block]bool{}
	for i, b := range c.Blocks {
		if b == nil {
			return fmt.Errorf("nil block at %d", i)
		}
		if b.Index != i {
			return fmt.Errorf("block %d has Index %d", i, b.Index)
		}
		index[b] = true
	}
	if !index[c.Entry] || !index[c.Exit] {
		return fmt.Errorf("entry or exit not registered in Blocks")
	}
	count := func(list []*Block, want *Block) int {
		n := 0
		for _, b := range list {
			if b == want {
				n++
			}
		}
		return n
	}
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			if !index[s] {
				return fmt.Errorf("block %d: dangling successor", b.Index)
			}
			if count(s.Preds, b) != count(b.Succs, s) {
				return fmt.Errorf("edge %d->%d: succ/pred mismatch", b.Index, s.Index)
			}
		}
		for _, p := range b.Preds {
			if !index[p] {
				return fmt.Errorf("block %d: dangling predecessor", b.Index)
			}
		}
	}
	// Every block reported reachable must actually be reached by the walk
	// that Reachable performs (tautological by construction, but the walk
	// also verifies no nil successors are encountered).
	for b := range c.Reachable() {
		if !index[b] {
			return fmt.Errorf("reachable block not in Blocks")
		}
	}
	return nil
}

func buildFor(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	c := BuildCFG(fd.Body)
	if err := CheckInvariants(c); err != nil {
		t.Fatalf("invariants: %v\nbody:\n%s", err, body)
	}
	return c
}

func TestCFGShapes(t *testing.T) {
	cases := []struct {
		name string
		body string
		// wantExitPreds is the number of predecessors of Exit (distinct
		// return points plus fall-off-the-end), a cheap shape signature.
		wantExitPreds int
	}{
		{"empty", ``, 1},
		{"straightline", `x := 1; _ = x`, 1},
		{"ifelse", `x := 1; if x > 0 { x = 2 } else { x = 3 }; _ = x`, 1},
		{"earlyreturn", `x := 1; if x > 0 { return }; _ = x`, 2},
		{"forloop", `for i := 0; i < 3; i++ { _ = i }`, 1},
		{"forever", `for { }`, 0},
		{"foreverbreak", `for { break }`, 1},
		{"rangeloop", `s := []int{1}; for _, v := range s { _ = v }`, 1},
		{"switchdefault", `x := 1; switch x { case 1: x = 2; default: x = 3 }; _ = x`, 1},
		{"selectempty", `select { }`, 0},
		{"panics", `panic("x")`, 0},
		{"panicbranch", `x := 1; if x > 0 { panic("x") }; _ = x`, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := buildFor(t, tc.body)
			if got := len(c.Exit.Preds); got != tc.wantExitPreds {
				t.Errorf("exit preds = %d, want %d", got, tc.wantExitPreds)
			}
		})
	}
}

func TestCFGLoopEdges(t *testing.T) {
	c := buildFor(t, `for i := 0; i < 3; i++ { if i == 1 { continue }; if i == 2 { break } }`)
	// The loop head must be reachable and participate in a cycle.
	reach := c.Reachable()
	var head *Block
	for b := range reach {
		if b.kind == "for.head" {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no reachable for.head block")
	}
	if len(head.Preds) < 2 {
		t.Errorf("loop head has %d preds, want >= 2 (entry edge + back edge)", len(head.Preds))
	}
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	c := buildFor(t, `
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if j == 1 {
				continue outer
			}
			if j == 2 {
				break outer
			}
		}
	}`)
	if got := len(c.Exit.Preds); got != 1 {
		t.Errorf("exit preds = %d, want 1", got)
	}
	// break outer must bypass the inner loop's post block: the outer post
	// block has two predecessors (cond-false and the labeled break).
	var outerPosts []*Block
	for _, b := range c.Blocks {
		if b.kind == "for.post" && len(b.Preds) == 2 {
			outerPosts = append(outerPosts, b)
		}
	}
	if len(outerPosts) == 0 {
		t.Error("no for.post block with a labeled-break edge")
	}
}

func TestCFGGoto(t *testing.T) {
	c := buildFor(t, `
	i := 0
loop:
	i++
	if i < 3 {
		goto loop
	}`)
	var label *Block
	for _, b := range c.Blocks {
		if b.kind == "label.loop" {
			label = b
		}
	}
	if label == nil {
		t.Fatal("no label block")
	}
	if len(label.Preds) != 2 {
		t.Errorf("label block preds = %d, want 2 (fallthrough + goto)", len(label.Preds))
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	c := buildFor(t, `
	x := 1
	switch x {
	case 1:
		x = 2
		fallthrough
	case 2:
		x = 3
	}
	_ = x`)
	// The case-1 block must have an edge into the case-2 block.
	var caseBlocks []*Block
	for _, b := range c.Blocks {
		if b.kind == "switch.case" {
			caseBlocks = append(caseBlocks, b)
		}
	}
	if len(caseBlocks) != 2 {
		t.Fatalf("got %d case blocks, want 2", len(caseBlocks))
	}
	found := false
	for _, s := range caseBlocks[0].Succs {
		if s == caseBlocks[1] {
			found = true
		}
	}
	if !found {
		t.Error("no fallthrough edge from case 1 to case 2")
	}
}

func TestCFGDefersCollected(t *testing.T) {
	c := buildFor(t, `
	f := func() {}
	defer f()
	if true {
		defer f()
	}`)
	if len(c.Defers) != 2 {
		t.Errorf("got %d defers, want 2", len(c.Defers))
	}
}

func TestCFGNilBody(t *testing.T) {
	c := BuildCFG(nil)
	if err := CheckInvariants(c); err != nil {
		t.Fatal(err)
	}
	if len(c.Exit.Preds) != 1 {
		t.Errorf("exit preds = %d, want 1", len(c.Exit.Preds))
	}
}
