// Package noalloc enforces the zero-allocation contract of functions
// annotated //rtseed:noalloc — the engine's Schedule/Step/heap paths and
// the kernel's timer/sleep/dispatch/compute/service callbacks, whose
// steady-state allocation-freedom the benchmarks measure and
// TestScheduleStepZeroAlloc asserts at runtime. The analyzer moves that
// gate to the front-end: inside an annotated function it flags every
// construct that allocates or may allocate — make/new, heap composite
// literals, append growth, capturing closures, interface boxing, string
// concatenation, fmt calls, and go statements.
//
// Value-typed struct literals (replyMsg{...}, engine.Event{}) are not
// flagged: they live on the stack unless something else — which is flagged —
// makes them escape. Panic arguments are exempt: a panic is the cold path by
// definition, and its formatting cost is irrelevant to steady state.
// Amortized or cold-path allocations are waived with
// //rtseed:alloc-ok <reason> on the offending line.
//
// The analyzer is a module analyzer so it can consult whole-module function
// summaries (internal/lint/summary): a static call from an annotated
// function to an unannotated callee whose summary carries an allocation
// witness is flagged too, with the call path down to the allocating frame.
// Annotated callees are trusted — they are checked (and waived) themselves.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"rtseed/internal/lint"
	"rtseed/internal/lint/callgraph"
	"rtseed/internal/lint/summary"
)

// Analyzer is the zero-allocation checker.
var Analyzer = &lint.Analyzer{
	Name: "noalloc",
	Doc: "flag allocating constructs inside functions annotated //rtseed:noalloc\n\n" +
		"Checks the annotated body syntactically (make/new/append, heap\n" +
		"literals, boxing, fmt, go statements, capturing closures) and, via\n" +
		"whole-module function summaries, flags static calls to unannotated\n" +
		"callees that allocate anywhere below the call. Panic arguments are\n" +
		"exempt (cold path). Waive with //rtseed:alloc-ok <reason>.",
	RunModule: runModule,
}

// reportFunc reports a finding unless the line carries //rtseed:alloc-ok.
type reportFunc func(pos token.Pos, format string, args ...any)

func runModule(mp *lint.ModulePass) error {
	sums := summary.Shared(mp)
	for _, pkg := range mp.Pkgs {
		pass := mp.PackagePass(pkg)
		for _, file := range pkg.Syntax {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				if pass.FuncDirective(decl, lint.DirNoalloc) == nil {
					continue
				}
				checkFunc(pass, sums, decl)
			}
		}
	}
	return nil
}

func checkFunc(pass *lint.Pass, sums *summary.Set, decl *ast.FuncDecl) {
	report := func(pos token.Pos, format string, args ...any) {
		if !pass.Waived(pos, lint.DirAllocOK) {
			pass.Reportf(pos, format, args...)
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanicCall(pass, n) {
				return false // panic arguments are the cold path
			}
			checkCall(pass, sums, n, report)
		case *ast.FuncLit:
			if captured := capturedVars(pass, decl, n); len(captured) > 0 {
				report(n.Pos(), "closure captures %s and allocates; hoist it to a pre-allocated field or func value",
					strings.Join(captured, ", "))
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal allocates on the heap")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo().Types[n]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(n.Pos(), "slice literal allocates its backing array")
				case *types.Map:
					report(n.Pos(), "map literal allocates")
				}
			}
		case *ast.BinaryExpr:
			checkConcat(pass, n, report)
		case *ast.AssignStmt:
			checkAssignBoxing(pass, n, report)
		case *ast.ValueSpec:
			checkSpecBoxing(pass, n, report)
		case *ast.ReturnStmt:
			checkReturnBoxing(pass, decl, n, report)
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a new goroutine")
		}
		return true
	})
}

// isPanicCall reports whether call is the built-in panic.
func isPanicCall(pass *lint.Pass, call *ast.CallExpr) bool {
	b := pass.CalleeBuiltin(call)
	return b != nil && b.Name() == "panic"
}

func checkCall(pass *lint.Pass, sums *summary.Set, call *ast.CallExpr, report reportFunc) {
	if b := pass.CalleeBuiltin(call); b != nil {
		switch b.Name() {
		case "make":
			report(call.Pos(), "make allocates")
		case "new":
			report(call.Pos(), "new allocates")
		case "append":
			report(call.Pos(), "append may grow (reallocate) its backing array")
		}
		return
	}
	// Explicit conversion to an interface type boxes its operand.
	if tv, ok := pass.TypesInfo().Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && isConcrete(pass, call.Args[0]) {
			report(call.Pos(), "conversion boxes %s into %s", exprTypeName(pass, call.Args[0]), tv.Type)
		}
		return
	}
	if fn := pass.CalleeFunc(call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		report(call.Pos(), "fmt.%s allocates (formatting boxes its arguments)", fn.Name())
		return
	}
	checkSummaryAlloc(pass, sums, call, report)
	checkArgBoxing(pass, call, report)
}

// checkSummaryAlloc flags a static call to an unannotated callee whose
// summary carries an allocation witness: the annotated caller's zero-alloc
// contract does not survive the call. Annotated callees are trusted — their
// own bodies are checked directly, and their waivers are theirs to carry.
func checkSummaryAlloc(pass *lint.Pass, sums *summary.Set, call *ast.CallExpr, report reportFunc) {
	if sums == nil {
		return
	}
	callee, _ := sums.ResolveCall(pass.TypesInfo(), call)
	if callee == nil || callee.Alloc == nil || summary.NoallocAnnotated(callee.Node) {
		return
	}
	path := sums.AllocPath(callee.Node)
	if len(path) > 1 {
		report(call.Pos(), "call to %s allocates (%s, via %s)",
			callee.Node.Name(), callee.Alloc.What, callgraph.FormatPath(path))
		return
	}
	report(call.Pos(), "call to %s allocates (%s at line %d)",
		callee.Node.Name(), callee.Alloc.What, pass.Pkg.Fset.Position(callee.Alloc.Pos).Line)
}

// checkArgBoxing flags concrete arguments passed to interface-typed
// parameters: the implicit conversion heap-boxes the value.
func checkArgBoxing(pass *lint.Pass, call *ast.CallExpr, report reportFunc) {
	tv, ok := pass.TypesInfo().Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // a slice passed through s... is not boxed per element
			}
			paramType = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			paramType = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(paramType) && isConcrete(pass, arg) {
			report(arg.Pos(), "argument boxes %s into %s", exprTypeName(pass, arg), paramType)
		}
	}
}

func checkConcat(pass *lint.Pass, expr *ast.BinaryExpr, report reportFunc) {
	if expr.Op != token.ADD {
		return
	}
	tv, ok := pass.TypesInfo().Types[expr]
	if !ok || tv.Type == nil || tv.Value != nil { // constants fold at compile time
		return
	}
	if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
		// Report only the outermost + of a chain: the operands' own
		// BinaryExprs would double-report the same line.
		if inner, ok := ast.Unparen(expr.X).(*ast.BinaryExpr); ok && inner.Op == token.ADD {
			return
		}
		report(expr.Pos(), "string concatenation allocates")
	}
}

func checkAssignBoxing(pass *lint.Pass, assign *ast.AssignStmt, report reportFunc) {
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, lhs := range assign.Lhs {
		lhsTV, ok := pass.TypesInfo().Types[lhs]
		if !ok || lhsTV.Type == nil || !types.IsInterface(lhsTV.Type) {
			continue
		}
		if isConcrete(pass, assign.Rhs[i]) {
			report(assign.Rhs[i].Pos(), "assignment boxes %s into %s",
				exprTypeName(pass, assign.Rhs[i]), lhsTV.Type)
		}
	}
}

func checkSpecBoxing(pass *lint.Pass, spec *ast.ValueSpec, report reportFunc) {
	if spec.Type == nil {
		return
	}
	tv, ok := pass.TypesInfo().Types[spec.Type]
	if !ok || tv.Type == nil || !types.IsInterface(tv.Type) {
		return
	}
	for _, v := range spec.Values {
		if isConcrete(pass, v) {
			report(v.Pos(), "declaration boxes %s into %s", exprTypeName(pass, v), tv.Type)
		}
	}
}

func checkReturnBoxing(pass *lint.Pass, decl *ast.FuncDecl, ret *ast.ReturnStmt, report reportFunc) {
	fn, ok := pass.TypesInfo().Defs[decl.Name].(*types.Func)
	if !ok {
		return
	}
	results := fn.Type().(*types.Signature).Results()
	if len(ret.Results) != results.Len() {
		return // naked return or multi-value call passthrough
	}
	for i, r := range ret.Results {
		if types.IsInterface(results.At(i).Type()) && isConcrete(pass, r) {
			report(r.Pos(), "return boxes %s into %s", exprTypeName(pass, r), results.At(i).Type())
		}
	}
}

// capturedVars lists the names of variables declared in decl (including its
// receiver and parameters) that lit closes over, in source order. A closure
// that captures nothing compiles to a static function value and is free.
func capturedVars(pass *lint.Pass, decl *ast.FuncDecl, lit *ast.FuncLit) []string {
	type capture struct {
		name string
		pos  token.Pos
	}
	var caps []capture
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo().Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		// Captured: declared inside the enclosing function but outside the
		// literal. Package-level variables are shared, not captured.
		if v.Pos() < decl.Pos() || v.Pos() > decl.End() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		seen[v] = true
		caps = append(caps, capture{name: v.Name(), pos: v.Pos()})
		return true
	})
	sort.Slice(caps, func(i, j int) bool { return caps[i].pos < caps[j].pos })
	names := make([]string, len(caps))
	for i, c := range caps {
		names[i] = c.name
	}
	return names
}

// isConcrete reports whether expr has a concrete (non-interface, non-nil)
// type, i.e. whether converting it to an interface boxes a value.
func isConcrete(pass *lint.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo().Types[expr]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	return !types.IsInterface(tv.Type)
}

func exprTypeName(pass *lint.Pass, expr ast.Expr) string {
	tv, ok := pass.TypesInfo().Types[expr]
	if !ok || tv.Type == nil {
		return "value"
	}
	return tv.Type.String()
}
