package noalloc_test

import (
	"testing"

	"rtseed/internal/lint/analysistest"
	"rtseed/internal/lint/noalloc"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, noalloc.Analyzer, "../testdata/src/noalloc")
}
