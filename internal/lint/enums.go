package lint

import (
	"go/types"
	"strings"
)

// An EnumMember is one declared enum constant.
type EnumMember struct {
	Name  string
	Value string // exact constant representation, the dedup/coverage key
}

// EnumMembers discovers the declared members of a module enum type, shared
// by the exhaustive and timeunits analyzers.
//
// An enum, by this definition, is a named type declared in this module
// whose underlying type is an integer and that has at least two
// package-scope constants — the iota-block idiom. Members are deduplicated
// by constant value, so aliases (two names for one value) count as one
// member. Sentinel members whose name ends in "max", "count", or "limit"
// (any case) bound the enum rather than belong to it and are excluded.
// When from is non-nil and the enum is declared in a different package,
// unexported members are excluded too (they are unreachable from from).
//
// The first result names the enum ("kernel.State") and is "" when typ is
// not an enum; the member list may be empty even for an enum when every
// member is filtered out.
func EnumMembers(from *types.Package, typ types.Type) (string, []EnumMember) {
	named, ok := types.Unalias(typ).(*types.Named)
	if !ok {
		return "", nil
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return "", nil
	}
	declPkg := obj.Pkg()
	if !strings.HasPrefix(declPkg.Path(), "rtseed/") {
		return "", nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return "", nil
	}
	foreign := from != nil && declPkg != from

	var members []EnumMember
	total := 0
	seen := map[string]bool{}
	scope := declPkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		total++
		if isEnumSentinel(name) {
			continue
		}
		if foreign && !c.Exported() {
			continue
		}
		v := c.Val().ExactString()
		if seen[v] {
			continue
		}
		seen[v] = true
		members = append(members, EnumMember{Name: name, Value: v})
	}
	if total < 2 {
		return "", nil
	}
	return declPkg.Name() + "." + obj.Name(), members
}

// isEnumSentinel reports whether an enum member name bounds the enum
// (kindMax, stateCount, ...) rather than belongs to it.
func isEnumSentinel(name string) bool {
	lower := strings.ToLower(name)
	for _, suffix := range []string{"max", "count", "limit"} {
		if strings.HasSuffix(lower, suffix) {
			return true
		}
	}
	return false
}
