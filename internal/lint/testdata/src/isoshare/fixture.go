// Package isosharefix is the isoshare analyzer's fixture: worker closures
// handed to sweep.Map/Each must not write shared mutable state, and fan-out
// functions must merge results in canonical index order.
package isosharefix

import (
	"rtseed/internal/sweep"
)

var calls int

var registry = map[int]int{}

// Flagged: the worker bumps a package-level counter.
func countingWorkers(workers, n int) ([]int, error) {
	return sweep.Map(workers, n, func(i int) (int, error) {
		calls++ // want `parallel worker closure writes package-level calls; workers share it and the result depends on scheduling`
		return i * i, nil
	})
}

func bump() { calls++ }

// Flagged: the same write laundered through a helper; the finding carries
// the call path.
func countingViaHelper(workers, n int) ([]int, error) {
	return sweep.Map(workers, n, func(i int) (int, error) { // want `parallel worker closure writes package-level calls \(via isosharefix\.bump\); workers share it and the result depends on scheduling`
		bump()
		return i, nil
	})
}

// Flagged: a captured accumulator is a cross-worker race and its final
// value depends on scheduling.
func capturedTotal(workers, n int) (int, error) {
	total := 0
	err := sweep.Each(workers, n, func(i int) error {
		total += i // want `parallel worker closure writes captured total without indexing by its cell parameter`
		return nil
	})
	return total, err
}

// Flagged: a captured map write races even when the key is the cell index —
// map internals are shared.
func capturedMapIsStillAMap(workers, n int) error {
	return sweep.Each(workers, n, func(i int) error {
		registry[i] = i // want `parallel worker closure writes package-level registry`
		return nil
	})
}

// OK: the out[i] slot protocol — each worker writes only its own element.
func slotProtocol(workers, n int) ([]int, error) {
	out := make([]int, n)
	err := sweep.Each(workers, n, func(i int) error {
		out[i] = i * 2
		return nil
	})
	return out, err
}

type cell struct{ v int }

func (c *cell) run() { c.v++ }

// OK: mutating sims[i] through a method is still the slot protocol (the
// cluster layer's per-epoch machine step).
func slotMethod(workers int, cells []*cell) error {
	return sweep.Each(workers, len(cells), func(i int) error {
		cells[i].run()
		return nil
	})
}

// Flagged: writing through a captured pointer that is not indexed by the
// cell parameter shares one cell across all workers.
func sharedPointer(workers, n int, shared *cell) error {
	return sweep.Each(workers, n, func(i int) error {
		shared.v = i // want `parallel worker closure writes captured shared without indexing by its cell parameter`
		return nil
	})
}

// Flagged: merging fan-out results by ranging a map orders the merge by map
// iteration, which varies with worker count and run.
func mapMerge(workers, n int) (int, error) {
	res, err := sweep.Map(workers, n, func(i int) (int, error) { return i, nil })
	if err != nil {
		return 0, err
	}
	byKey := map[int]int{}
	for i, v := range res {
		byKey[i%3] += v
	}
	sum := 0
	for _, v := range byKey { // want `fan-out results are merged by ranging over byKey, a map; iterate in canonical index order`
		sum += v
	}
	return sum, nil
}

// OK: a waived merge — the reduction is order-insensitive and reviewed.
func waivedMerge(workers, n int) (int, error) {
	res, err := sweep.Map(workers, n, func(i int) (int, error) { return i, nil })
	if err != nil {
		return 0, err
	}
	byKey := map[int]int{}
	for i, v := range res {
		byKey[i%3] += v
	}
	sum := 0
	//rtseed:shared-ok integer sum is order-insensitive
	for _, v := range byKey {
		sum += v
	}
	return sum, nil
}
