// Package bodystepfix is the continuation-protocol analyzer's fixture: each
// flagged line carries a want expectation; the clean and waived functions
// document the accepted patterns. The fixture implements real kernel.Body
// continuations against the real kernel types — the analyzer matches on
// them, not on names.
package bodystepfix

import (
	"time"

	"rtseed/internal/kernel"
)

// Accepted: a well-formed periodic body — program-counter state machine,
// read-only TCB calls, derived values stored in fields, one constructed
// action per path.
type goodBody struct {
	pc    int
	jobs  int
	start time.Duration
}

func (b *goodBody) Step(c *kernel.TCB, r kernel.Resume) kernel.Next {
	switch b.pc {
	case 0:
		b.start = c.Now().Duration()
		b.pc = 1
		return kernel.Compute(time.Millisecond)
	case 1:
		b.jobs++
		b.pc = 0
		if b.jobs >= 3 {
			return kernel.Done()
		}
		return kernel.Sleep(time.Millisecond)
	}
	return kernel.Done()
}

// Flagged pattern 1: retaining the step's TCB in a field.
type retainBody struct {
	c  *kernel.TCB
	pc int
}

func (b *retainBody) Step(c *kernel.TCB, r kernel.Resume) kernel.Next {
	b.c = c // want `step's \*kernel\.TCB is stored in b\.c, which outlives the step`
	return kernel.Done()
}

// Flagged pattern 1b: retaining the Resume in a package variable, via the
// StepFunc form.
var lastResume kernel.Resume

func stashResume(c *kernel.TCB, r kernel.Resume) kernel.Next {
	lastResume = r // want `step's kernel\.Resume is stored in lastResume`
	return kernel.Done()
}

var _ kernel.Body = kernel.StepFunc(stashResume)

// Flagged pattern 1c: laundering the TCB through a local struct. The local
// store is fine; publishing the struct is the retention.
type holder struct{ c *kernel.TCB }

type launderBody struct{ h holder }

func (b *launderBody) Step(c *kernel.TCB, r kernel.Resume) kernel.Next {
	var tmp holder
	tmp.c = c // a local store stays within the step
	b.h = tmp // want `step's \*kernel\.TCB is stored in b\.h, which outlives the step`
	return kernel.Done()
}

// Flagged pattern 1d: a closure capturing the TCB escaping on a goroutine.
func goroutineLeak(c *kernel.TCB, r kernel.Resume) kernel.Next {
	go func() { // want `closure capturing the step's \*kernel\.TCB is handed to a new goroutine`
		_ = c.Now()
	}()
	return kernel.Done()
}

// Flagged pattern 1e: the TCB sent on a channel.
func channelLeak(ch chan<- *kernel.TCB) kernel.StepFunc {
	return func(c *kernel.TCB, r kernel.Resume) kernel.Next {
		ch <- c // want `step's \*kernel\.TCB is sent on a channel`
		return kernel.Done()
	}
}

// Flagged pattern 2: a path returning the zero kernel.Next.
func zeroPath(c *kernel.TCB, r kernel.Resume) kernel.Next {
	if r.First {
		return kernel.Compute(time.Millisecond)
	}
	return kernel.Next{} // want `may return the zero kernel\.Next`
}

// Flagged pattern 2b: the zero Next laundered through a variable that is
// only assigned on one branch.
func zeroVar(c *kernel.TCB, r kernel.Resume) kernel.Next {
	var n kernel.Next
	if r.First {
		n = kernel.Done()
	}
	return n // want `may return the zero kernel\.Next`
}

// Accepted: the (kernel.Next, bool) StepOptional protocol — done=true
// legitimizes the unexecuted zero Next, so multi-result functions are
// exempt from the exactly-one-action rule.
func stepOptionalStyle(c *kernel.TCB, r kernel.Resume, pc *int) (kernel.Next, bool) {
	if *pc == 0 {
		*pc = 1
		return kernel.Compute(time.Millisecond), false
	}
	return kernel.Next{}, true
}

// Accepted: a variable assigned a constructed action on every path.
func rebuiltVar(c *kernel.TCB, r kernel.Resume) kernel.Next {
	n := kernel.Next{}
	if r.First {
		n = kernel.Compute(time.Millisecond)
	} else {
		n = kernel.Done()
	}
	return n
}

// Flagged pattern 3: blocking TCB calls. The blocking API belongs to the
// goroutine executor; a continuation returns the action instead.
func blockingBody(c *kernel.TCB, r kernel.Resume) kernel.Next {
	c.Sleep(time.Millisecond) // want `\(\*kernel\.TCB\)\.Sleep blocks the simulated thread`
	return kernel.Done()
}

// Flagged pattern 3b: a blocking call behind a helper, found over the
// static call-graph edge from the continuation.
func spinHelper(c *kernel.TCB) {
	c.Yield() // want `\(\*kernel\.TCB\)\.Yield blocks the simulated thread`
}

func indirectBlocking(c *kernel.TCB, r kernel.Resume) kernel.Next {
	spinHelper(c)
	return kernel.Done()
}

// Flagged pattern 3c: a blocking call behind an interface method, found
// over the conservative interface edge.
type part interface{ Run(c *kernel.TCB) }

type spinPart struct{}

func (spinPart) Run(c *kernel.TCB) {
	c.Compute(time.Millisecond) // want `\(\*kernel\.TCB\)\.Compute blocks the simulated thread`
}

func interfaceBlocking(p part) kernel.StepFunc {
	return func(c *kernel.TCB, r kernel.Resume) kernel.Next {
		p.Run(c)
		return kernel.Done()
	}
}

// Accepted: the goroutine-form body API blocks by design. It returns no
// kernel.Next and no continuation reaches it, so it is out of scope.
func goroutineForm(c *kernel.TCB) {
	c.Sleep(time.Millisecond)
	c.Compute(time.Millisecond)
}

// Accepted escape hatch: a line-scoped waiver with a reason.
type waivedBody struct{ c *kernel.TCB }

func (b *waivedBody) Step(c *kernel.TCB, r kernel.Resume) kernel.Next {
	b.c = c //rtseed:bodystep-ok fixture: diagnostic hook retains the TCB deliberately
	return kernel.Done()
}

// Accepted escape hatch: a function-scoped waiver in the doc comment.
//
//rtseed:bodystep-ok fixture: prototype body still blocks during bring-up
func waivedFunc(c *kernel.TCB, r kernel.Resume) kernel.Next {
	c.Yield()
	return kernel.Done()
}
