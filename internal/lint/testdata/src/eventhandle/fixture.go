// Package evfix is the eventhandle analyzer's fixture, exercising the
// handle-holding and use-after-cancel rules against the real engine types.
package evfix

import (
	"time"

	"rtseed/internal/engine"
)

// holder persists handles without declaring a checking discipline.
type holder struct {
	ev engine.Event
}

// checked persists handles legitimately: the declaration is annotated.
type checked struct {
	ev engine.Event //rtseed:handle-ok re-validated via Scheduled before every use
}

// Flagged pattern 1: a package-level handle.
var stray engine.Event // want `package-level engine\.Event`

// Flagged pattern 2: storing a live handle into an unannotated field.
func storeField(h *holder, e *engine.Engine) {
	h.ev = e.After(time.Millisecond, 0, noop) // want `stored into struct field`
}

// Flagged pattern 3: the same store via a composite literal.
func storeComposite(e *engine.Engine) holder {
	return holder{ev: e.After(time.Millisecond, 0, noop)} // want `composite literal`
}

// Flagged pattern 4: touching a handle after cancelling it.
func useAfterCancel(e *engine.Engine) engine.Time {
	ev := e.After(time.Second, 0, noop)
	e.Cancel(ev)
	return ev.When() // want `used after Cancel`
}

// Clean: storing into an annotated field is the sanctioned pattern.
func storeChecked(c *checked, e *engine.Engine) {
	c.ev = e.After(time.Millisecond, 0, noop)
}

// Clean: zeroing a field drops the handle, it doesn't hold one.
func clearField(h *holder) {
	h.ev = engine.Event{}
}

// Clean: a Scheduled re-check gates the use.
func recheckAfterCancel(e *engine.Engine) engine.Time {
	ev := e.After(time.Second, 0, noop)
	e.Cancel(ev)
	if ev.Scheduled() {
		return ev.When()
	}
	return 0
}

// Clean: reassignment replaces the cancelled handle.
func reassignAfterCancel(e *engine.Engine) engine.Time {
	ev := e.After(time.Second, 0, noop)
	e.Cancel(ev)
	ev = e.After(2*time.Second, 0, noop)
	return ev.When()
}

// Accepted escape hatch: a use-site waiver with a reason.
func waivedUse(e *engine.Engine) bool {
	ev := e.After(time.Second, 0, noop)
	e.Cancel(ev)
	return ev == (engine.Event{}) //rtseed:handle-ok comparing against zero is position-independent
}

func noop() {}
