// Package timeunits exercises the timeunits analyzer: dimensional analysis
// over {abs-ns, rel-ns, tick, raw} with dataflow through raw locals.
package timeunits

import (
	"time"

	"rtseed/internal/engine"
)

// Time mirrors engine.Time: an absolute instant in nanoseconds.
type Time int64

// tick mirrors the engine's wheel tick.
type tick uint64

const tickShift = 12

// tickOf is a declared conversion helper: its body is exempt and its
// signature classifies its call sites.
func tickOf(t Time) tick { return tick(uint64(t) >> tickShift) }

// start is the inverse helper.
func (tk tick) start() Time { return Time(int64(tk) << tickShift) }

// at is the sanctioned rel→abs crossing.
func at(d time.Duration) Time { return Time(d) }

// add is the sanctioned instant+duration helper: receiver plus one
// parameter is helper-shaped, mirroring engine.Time.Add.
func (t Time) add(d time.Duration) Time { return t + Time(d) }

func take(t Time) {}

func takeDur(d time.Duration) {}

// --- flagged patterns ---

func addAbsAbs(a, b Time) Time {
	return a + b // want `adding two absolute times`
}

func addEngineAbsAbs(a, b engine.Time) engine.Time {
	return a + b // want `adding two absolute times`
}

func tickAddedToEngineTime(et engine.Time, tk tick) engine.Time {
	return et + engine.Time(tk) // want `conversion reinterprets tick as abs-ns`
}

// crossConvert is not helper-shaped (no unit result), so the conversion in
// its body is checked.
func crossConvert(t Time) {
	tk := tick(t) // want `conversion reinterprets abs-ns as tick`
	_ = tk
}

func launderedConvert(t Time) {
	u := uint64(t) // the raw local carries abs-ns through the dataflow
	tk := tick(u)  // want `conversion reinterprets abs-ns as tick`
	_ = tk
}

func compoundAbsAbs(a, b Time) Time {
	a += b // want `adding two absolute times`
	return a
}

func mixTickNs(t Time, tk tick) uint64 {
	return uint64(t) - uint64(tk) // want `subtraction mixes tick and nanosecond units`
}

func compareTickNs(t Time, tk tick) bool {
	return uint64(t) < uint64(tk) // want `comparison mixes tick and nanosecond units`
}

func compareAbsRel(t Time, d time.Duration) bool {
	return int64(t) < int64(d) // want `comparing across units`
}

func relAsAbs(t Time) {
	takeDur(time.Duration(t)) // want `conversion reinterprets abs-ns as rel-ns`
}

func shiftWithoutConvert(t Time) {
	take(t >> tickShift) // want `passing a tick value where take expects abs-ns`
}

// --- accepted patterns ---

func helpersCompose(a Time, d time.Duration) Time {
	b := a.add(d)
	_ = a.sub(b)
	return at(d)
}

// sub is another helper (abs,abs)→rel is not expressible with one param, so
// it pairs with the subtraction rule below.
func (t Time) sub(u Time) time.Duration { return time.Duration(t - u) }

func tickDomainMath(a, b Time) uint64 {
	// All in the tick domain: differences, slot masks, non-tickShift
	// shifts stay legal.
	da := tickOf(a)
	db := tickOf(b)
	delta := da - db
	slot := (delta >> 3) & 63
	return uint64(slot)
}

func shiftIdiom(t Time) tick {
	u := uint64(t) >> tickShift // the tickShift shift IS the conversion
	return tick(u)
}

func roundTrip(tk tick) Time {
	return tk.start()
}

func relArithmetic(d1, d2 time.Duration) time.Duration {
	d1 += d2       // compound rel+rel is fine too
	return d1 + d2 // rel+rel is fine
}

func scaling(d time.Duration, n int) time.Duration {
	return d * time.Duration(n) // scaling escapes the algebra
}

func joinedClassesDegrade(t Time, tk tick, b bool) uint64 {
	var u uint64
	if b {
		u = uint64(t)
	} else {
		u = uint64(tk)
	}
	return u // conflicting classes at the join degrade to raw: no finding
}

// phaseTick is an enum despite its Tick suffix: iota membership excludes it
// from unit classification.
type phaseTick int

const (
	phaseA phaseTick = iota
	phaseB
)

func enumNotAUnit(p phaseTick, d time.Duration) bool {
	return int64(p) < int64(d)
}

func waivedLine(a, b Time) Time {
	//rtseed:units-ok fixture: documents the line-scope waiver
	return a + b
}

//rtseed:units-ok fixture: documents the function-scope waiver
func waivedFunc(a, b Time) Time {
	return a + b
}
