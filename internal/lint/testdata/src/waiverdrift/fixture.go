// Fixture for the waiverdrift analyzer: waivers that still shield a live
// finding are accepted, waivers whose violation is gone are stale, and
// directives attached to the wrong kind of code are misplaced.
package fixture

import (
	"time"

	"rtseed/internal/engine"
	"rtseed/internal/kernel"
)

type phase int

const (
	phaseA phase = iota
	phaseB
	phaseC
)

// --- live waivers: accepted --------------------------------------------

// liveAlloc's waiver still shields a real allocation.
//
//rtseed:noalloc
func liveAlloc(n int) []int {
	//rtseed:alloc-ok fixture keeps this deliberate allocation
	buf := make([]int, n)
	return buf
}

// liveNondet's waiver still shields a real finding — the wall-clock value
// reaches the return, so the detflow tier keeps it live.
func liveNondet() int64 {
	//rtseed:nondeterministic-ok fixture keeps this wall-clock read
	return time.Now().UnixNano()
}

// liveUnits's waiver still shields a real abs+abs addition.
//
//rtseed:units-ok fixture keeps this deliberate unit mix
func liveUnits(a, b engine.Time) engine.Time {
	return a + b
}

// liveRetainer's waiver still shields a real TCB retention.
type liveRetainer struct{ c *kernel.TCB }

func (b *liveRetainer) Step(c *kernel.TCB, r kernel.Resume) kernel.Next {
	b.c = c //rtseed:bodystep-ok fixture keeps this deliberate retention
	return kernel.Done()
}

// livePartial's switch is still deliberately partial.
func livePartial(p phase) bool {
	//rtseed:partial-ok only phaseA matters to this helper
	switch p {
	case phaseA:
		return true
	}
	return false
}

// checked still persists live handles into its annotated field.
type checked struct {
	ev engine.Event //rtseed:handle-ok re-validated via Scheduled before every use
}

func storeChecked(c *checked, e *engine.Engine) {
	c.ev = e.After(time.Millisecond, 0, func() {})
}

// enqueue is kernel context; livePump still reaches it, so its blessing
// stays live.
//
//rtseed:kernelctx
func enqueue() {}

//rtseed:kernelctx-entry fixture pump, still transitioning into kernel context
func livePump() { enqueue() }

// --- stale waivers: flagged --------------------------------------------

// staleAlloc: the waived line no longer allocates.
//
//rtseed:noalloc
func staleAlloc(buf []int) int {
	//rtseed:alloc-ok the line below used to allocate // want `stale //rtseed:alloc-ok: the noalloc finding it waives no longer exists`
	return len(buf)
}

// staleNondet: nothing below touches the clock any more.
func staleNondet() int {
	//rtseed:nondeterministic-ok formerly read time.Now here // want `stale //rtseed:nondeterministic-ok: the determinism/detflow finding it waives no longer exists`
	return 42
}

// staleUnits: the arithmetic became a sanctioned helper call.
func staleUnits(a engine.Time, d time.Duration) engine.Time {
	//rtseed:units-ok formerly mixed units here // want `stale //rtseed:units-ok: the timeunits finding it waives no longer exists`
	return a.Add(d)
}

// staleBodyStep: the body became protocol-clean but kept its waiver.
func staleBodyStep(c *kernel.TCB, r kernel.Resume) kernel.Next {
	//rtseed:bodystep-ok formerly stored the TCB here // want `stale //rtseed:bodystep-ok: the bodystep finding it waives no longer exists`
	return kernel.Done()
}

// stalePartial: the switch became complete but kept its waiver.
func stalePartial(p phase) int {
	//rtseed:partial-ok outdated justification // want `stale //rtseed:partial-ok: the exhaustive finding it waives no longer exists`
	switch p {
	case phaseA:
		return 0
	case phaseB:
		return 1
	case phaseC:
		return 2
	}
	return -1
}

// stale handle-ok: the annotated field stopped holding engine.Event.
type retired struct {
	n int //rtseed:handle-ok obsolete discipline note // want `stale //rtseed:handle-ok: the eventhandle finding it waives no longer exists`
}

// stalePump's blessing leads nowhere: it no longer calls kernel code.
//
//rtseed:kernelctx-entry formerly the fixture pump // want `stale //rtseed:kernelctx-entry: stalePump no longer reaches any //rtseed:kernelctx function`
func stalePump() { plainHelper() }

func plainHelper() {}

// --- misplaced directives: flagged -------------------------------------

// noalloc on a variable declaration annotates nothing.
//
//rtseed:noalloc // want `misplaced //rtseed:noalloc: not attached to a function declaration`
var floating int

func misplacedCtx() int {
	//rtseed:kernelctx // want `misplaced //rtseed:kernelctx: not attached to a function declaration or literal`
	x := floating
	return x
}

//rtseed:kernelctx-entry blessing a type makes no sense // want `misplaced //rtseed:kernelctx-entry: not attached to a function declaration`
type notAFunc struct{}

var _ = retired{}
var _ = notAFunc{}
