package detflowfix

import "time"

// now is one frame of laundering: its callers never mention time directly.
// (It is itself a finding — the clock value is its return value.)
func now() time.Time { return time.Now() } // want `wall-clock value from time\.Now \(line \d+\) is returned to the caller`

// nowNow adds a second frame; flagged for the same reason, with the path.
func nowNow() time.Time { return now() } // want `wall-clock value from time\.Now \(line \d+, via detflowfix\.now\) is returned to the caller`

// Flagged: the clock value crosses one call frame before being returned.
func sampleOnce() time.Time {
	t := now()
	return t // want `wall-clock value from time\.Now \(line \d+, via detflowfix\.now\) is returned to the caller`
}

// Flagged: two frames of laundering; the message names the full call path.
func sampleTwice() time.Time {
	return nowNow() // want `wall-clock value from time\.Now \(line \d+, via detflowfix\.nowNow → detflowfix\.now\) is returned to the caller`
}

var retained []int64

// retain stores its argument where it outlives the call.
func retain(v int64) { retained = append(retained, v) }

// Flagged: the callee's summary shows the tainted argument escaping.
func leakThroughCallee() {
	d := time.Since(time.Unix(0, 0))
	retain(int64(d)) // want `wall-clock value from time\.Since \(line \d+\) is stored beyond this call by detflowfix\.retain`
}

// clamp returns its input on one path; taint flows through the summary's
// return-from-param bit, with the origin staying at the local source line.
func clamp(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}

// Flagged: taint survives a pass-through helper.
func throughClamp() int64 {
	v := int64(time.Now().UnixNano())
	return clamp(v) // want `wall-clock value from time\.Now \(line \d+\) is returned to the caller`
}

// scale neither stores nor returns its argument-derived taint: it returns
// a fresh constant, so its summary proves the call is a sanitizer.
func scale(v int64) int64 {
	_ = v
	return 42
}

// OK: the summary shows scale's result does not depend on its argument, so
// the conservative any-tainted-argument rule does not fire.
func throughScale() int64 {
	v := int64(time.Now().UnixNano())
	return scale(v)
}
