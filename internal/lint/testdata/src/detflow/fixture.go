// Package detflowfix is the detflow analyzer's fixture: nondeterministic
// values are flagged only when they reach a sink — a return, an escaping
// store, a channel send, or a trace emission.
package detflowfix

import (
	"math/rand"
	"os"
	"sort"
	"time"

	"rtseed/internal/trace"
)

type report struct {
	Elapsed time.Duration
	Label   string
}

// Flagged: wall clock into a returned result struct.
func measured() report {
	start := time.Now()
	r := report{Elapsed: time.Since(start)}
	return r // want `wall-clock value from time\.Since \(line \d+\) is returned to the caller`
}

// Flagged: wall clock stored through a pointer parameter.
func stamp(r *report, deadline time.Time) {
	r.Elapsed = time.Until(deadline) // want `wall-clock value from time\.Until \(line \d+\) is stored in r\.Elapsed`
}

var mode string

// Flagged: environment read into a package variable.
func loadMode() {
	mode = os.Getenv("RTSEED_MODE") // want `environment-dependent value from os\.Getenv \(line \d+\) is stored in mode`
}

// Flagged: global rand into a return value, laundered through locals.
func jitter(n int) int {
	j := rand.Intn(n)
	k := j * 2
	return k // want `globally-seeded random value from math/rand\.Intn \(line \d+\) is returned to the caller`
}

// Flagged: map iteration order reaching a returned slice.
func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out // want `map-iteration-ordered value from iteration over m \(line \d+\) is returned to the caller`
}

// Flagged: wall clock emitted to the trace.
func traceStamp(h *trace.Histogram, start time.Time) {
	h.Add(time.Since(start)) // want `wall-clock value from time\.Since \(line \d+\) is emitted to the trace via Add`
}

// Flagged: wall clock sent on a channel.
func publish(ch chan<- time.Time) {
	ch <- time.Now() // want `wall-clock value from time\.Now \(line \d+\) is sent on a channel`
}

// Accepted: the busy-wait pattern — the clock never escapes, so demoting
// this from the syntactic analyzer is the whole point of detflow.
func spinFor(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// Accepted: sorting re-establishes a deterministic order.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Accepted: order-insensitive reduction over a map.
func total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Accepted: aggregation into another map is order-insensitive.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Accepted: a locally seeded source is reproducible (rand.New is not the
// global source; Intn here is a method call on the local generator).
func seeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// Accepted escape hatch: a line-scoped waiver with a reason.
func waivedLine() time.Time {
	return time.Now() //rtseed:nondeterministic-ok fixture: wall clock feeds a log line
}

// Accepted escape hatch: a function-scoped waiver in the doc comment.
//
//rtseed:nondeterministic-ok fixture: measures real latency by design
func waivedFunc(release time.Time) time.Duration {
	return time.Since(release)
}
