// Fixture for the kernelctx analyzer: kernel-context functions reached from
// plain code, goroutines, and escaping function values are flagged; calls
// from kernel context or through blessed entries are accepted.
package fixture

// --- the protected set -------------------------------------------------

var queue []int

// enqueue mutates shared kernel state.
//
//rtseed:kernelctx
func enqueue(v int) { queue = append(queue, v) }

// dispatch is kernel context calling kernel context: accepted.
//
//rtseed:kernelctx
func dispatch() {
	enqueue(1)
	defer enqueue(2)
}

// pump is a blessed transition from plain code into kernel context.
//
//rtseed:kernelctx-entry the fixture event-loop pump, serialized by construction
func pump() {
	dispatch()
	enqueue(3)
}

// --- violations --------------------------------------------------------

// plainCaller calls into kernel context without a blessing.
func plainCaller() {
	enqueue(4) // want `enqueue is //rtseed:kernelctx but is called from plain code \(path: .*fixture\.plainCaller → fixture\.enqueue\)`
}

// plainDefer defers into kernel context: same violation, defer flavor.
func plainDefer() {
	defer dispatch() // want `dispatch is //rtseed:kernelctx but is called from plain code`
}

// spawner spawns kernel context on a fresh goroutine. Even though spawner
// itself is kernel context, the new goroutine is not.
//
//rtseed:kernelctx
func spawner() {
	go dispatch() // want `dispatch is //rtseed:kernelctx but is spawned on a new goroutine`
}

// escape hands a kernelctx function out as a value from plain code.
func escape() func(int) {
	return enqueue // want `enqueue is //rtseed:kernelctx but escapes as a function value in plain code`
}

// goLiteral is plain, and its go-spawned literal stays plain even though it
// is lexically inside nothing special — the call inside it is flagged.
func goLiteral() {
	go func() {
		enqueue(5) // want `enqueue is //rtseed:kernelctx but is called from plain code \(path: fixture\.goLiteral → fixture\.goLiteral\$1 → fixture\.enqueue\)`
	}()
}

// spawnFromEntry: even an entry may not spawn kernel context onto a new
// goroutine — the blessing covers synchronous transitions only.
//
//rtseed:kernelctx-entry fixture entry that still must not spawn goroutines
func spawnFromEntry() {
	go enqueue(6) // want `enqueue is //rtseed:kernelctx but is spawned on a new goroutine`
}

// --- accepted patterns -------------------------------------------------

// entryLiteral: a synchronous literal inside an entry inherits kernel
// context, so its calls are fine.
//
//rtseed:kernelctx-entry fixture entry exercising literal inheritance
func entryLiteral() {
	flush := func() { enqueue(7) }
	flush()
}

// kernelRef: kernel context may use a kernelctx function as a value (the
// kernel pre-allocates its callbacks).
//
//rtseed:kernelctx
func kernelRef() func(int) { return enqueue }

// annotatedLit: an annotated literal is kernel context wherever it ends up
// being invoked from; building it in plain code is fine.
func annotatedLit() func() {
	//rtseed:kernelctx
	cb := func() { enqueue(8) }
	return cb
}

// plainHelper never touches kernel context: never flagged.
func plainHelper() int { return len(queue) }

// --- continuation-body pattern ------------------------------------------

// stepBody is a continuation task body: its Step method IS the thread's
// host code and runs inside the kernel's dispatch, so Step is kernel
// context like any other kernelctx function.
type stepBody struct{ pc int }

// Step advances the body by one action.
//
//rtseed:kernelctx
func (b *stepBody) Step() {
	b.pc++
	enqueue(b.pc)
}

// executorStep: the executor driving a body's Step from kernel context is
// the intended call site — accepted.
//
//rtseed:kernelctx
func executorStep(b *stepBody) { b.Step() }

// plainStep: nothing outside the kernel may step a continuation body
// directly.
func plainStep(b *stepBody) {
	b.Step() // want `Step is //rtseed:kernelctx but is called from plain code`
}

// stepSpawner: a body's Step must never be spawned onto a goroutine — the
// whole point of the continuation executor is that no goroutine exists.
//
//rtseed:kernelctx
func stepSpawner(b *stepBody) {
	go b.Step() // want `Step is //rtseed:kernelctx but is spawned on a new goroutine`
}
