// Package determfix is the determinism analyzer's fixture: each flagged
// line carries a want expectation; the clean and waived functions document
// the accepted patterns.
package determfix

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

// Flagged pattern 1: wall-clock reads.
func wallClock() time.Duration {
	start := time.Now()      // want `time\.Now`
	return time.Since(start) // want `time\.Since`
}

// Flagged pattern 2: the process-global math/rand source.
func globalRand(n int) int {
	rand.Shuffle(n, func(i, j int) {}) // want `global math/rand`
	return rand.Intn(n)                // want `global math/rand`
}

// Clean: a locally seeded source is reproducible.
func seededRand(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// Flagged pattern 3: environment-dependent behavior.
func envBranch() bool {
	if os.Getenv("RTSEED_FAST") != "" { // want `environment`
		return true
	}
	_, ok := os.LookupEnv("RTSEED_TRACE") // want `environment`
	return ok
}

// Flagged pattern 4: map iteration feeding a result without a sort.
func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration`
		out = append(out, k)
	}
	return out
}

// Clean: the same loop followed by a sort of the sink.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Clean: order-insensitive aggregation into another map.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Flagged pattern 5: stamping a trace record with the wall clock. Trace
// bytes must be byte-identical across runs, so records carry virtual time.
func emitWallStamped(emit func(at int64, kind uint8)) {
	emit(time.Now().UnixNano(), 1) // want `time\.Now`
}

// Clean: the trace-emit idiom — the virtual-time instant is an input, so
// the record stream is a pure function of the simulation.
func emitVirtualStamped(emit func(at int64, kind uint8), now int64) {
	emit(now, 1)
}

// Accepted escape hatch: a line-scoped waiver with a reason.
func waivedLine() time.Time {
	return time.Now() //rtseed:nondeterministic-ok wall clock feeds a log line, not a result
}

// Accepted escape hatch: a function-scoped waiver in the doc comment.
//
//rtseed:nondeterministic-ok measures real wake-up latency by design
func waivedFunc(release time.Time) time.Duration {
	lag := time.Since(release)
	if lag < 0 {
		lag = 0
	}
	return lag
}
