// Package determfix is the syntactic determinism analyzer's fixture: each
// flagged line carries a want expectation; the clean and waived functions
// document the accepted patterns. Value-flow cases (clock reads or map
// order reaching results) live in the detflow fixture.
package determfix

import (
	"math/rand"
	"os"
	"time"
)

// Flagged pattern 1: blocking on or arming host timers.
func hostTimers(d time.Duration) {
	time.Sleep(d)         // want `time\.Sleep`
	t := time.NewTimer(d) // want `time\.NewTimer`
	defer t.Stop()
	<-time.After(d)        // want `time\.After`
	k := time.NewTicker(d) // want `time\.NewTicker`
	k.Stop()
}

// Clean: reading the clock is no longer a syntactic finding — whether the
// value matters is the detflow analyzer's call.
func readClock() time.Time {
	return time.Now()
}

// Flagged pattern 2: the process-global math/rand source.
func globalRand(n int) int {
	rand.Shuffle(n, func(i, j int) {}) // want `global math/rand`
	return rand.Intn(n)                // want `global math/rand`
}

// Clean: a locally seeded source is reproducible.
func seededRand(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// Flagged pattern 3: environment-dependent behavior.
func envBranch() bool {
	if os.Getenv("RTSEED_FAST") != "" { // want `environment`
		return true
	}
	_, ok := os.LookupEnv("RTSEED_TRACE") // want `environment`
	return ok
}

// Accepted escape hatch: a line-scoped waiver with a reason.
func waivedLine(d time.Duration) {
	time.Sleep(d) //rtseed:nondeterministic-ok fixture: pacing a host-facing demo loop
}

// Accepted escape hatch: a function-scoped waiver in the doc comment.
//
//rtseed:nondeterministic-ok fixture: arms a real timer by design
func waivedFunc(d time.Duration) *time.Timer {
	return time.NewTimer(d)
}

// Clean sampling idiom: a seeded inverse-CDF sampler is a pure function of
// (seed, shape) — the workload generator's pattern.
func inverseCDF(seed int64, shape float64) float64 {
	r := rand.New(rand.NewSource(seed))
	u := r.Float64()
	x := 1.0
	for i := 0; i < 8; i++ { // fixed-point refinement, still deterministic
		x = u * shape * x
	}
	return x
}

// Flagged sampling idiom: drawing inter-arrival gaps from the process-global
// source ties the workload to run order.
func globalGap() float64 {
	return rand.ExpFloat64() // want `global math/rand`
}

// Flagged sampling idiom: a wall-clock seed makes every run a different
// population even though the source itself is local.
func clockSeeded(n int) int {
	r := rand.New(rand.NewSource(time.Now().UnixNano())) // want `wall-clock seed`
	return r.Intn(n)
}
