// Fixture for the exhaustive analyzer: switches over declared iota enums
// must cover every member or carry //rtseed:partial-ok.
package fixture

import "rtseed/internal/trace"

// phase is a module enum: named integer type, iota constant block.
type phase int

const (
	phaseIdle phase = iota
	phaseMandatory
	phaseOptional
	phaseWindup

	phaseCount // sentinel, not a required member
)

// mode is an enum with a value alias: modeDefault names the same value as
// modeEager, so covering either one covers the member.
type mode uint8

const (
	modeEager mode = iota
	modeLazy
	modeDefault = modeEager
)

// notEnum has a single constant: not an iota block, never checked.
type notEnum int

const onlyValue notEnum = 0

// --- violations --------------------------------------------------------

func missingOne(p phase) int {
	switch p { // want `switch over fixture\.phase misses phaseWindup \(cover them or add //rtseed:partial-ok <reason>\)`
	case phaseIdle:
		return 0
	case phaseMandatory:
		return 1
	case phaseOptional:
		return 2
	}
	return -1
}

func defaultHides(p phase) int {
	switch p { // want `switch over fixture\.phase misses phaseMandatory, phaseOptional, phaseWindup`
	case phaseIdle:
		return 0
	default:
		// A default clause is not coverage: it is where missing members hide.
		return -1
	}
}

func crossPackage(k trace.Kind) bool {
	switch k { // want `switch over trace\.Kind misses KindBlock`
	case trace.KindReady, trace.KindDispatch, trace.KindPreempt,
		trace.KindSleep, trace.KindExit,
		trace.KindTimerArm, trace.KindTimerFire,
		trace.KindJobRelease, trace.KindMandStart,
		trace.KindOptFork, trace.KindOptStart, trace.KindOptEnd,
		trace.KindOptTerm, trace.KindOptDiscard,
		trace.KindWindupStart, trace.KindJobEnd,
		trace.KindDeadlineMet, trace.KindDeadlineMiss:
		return true
	}
	return false
}

// --- accepted patterns -------------------------------------------------

func complete(p phase) int {
	switch p {
	case phaseIdle:
		return 0
	case phaseMandatory:
		return 1
	case phaseOptional:
		return 2
	case phaseWindup:
		return 3
	}
	return -1
}

func sentinelNotRequired(p phase) bool {
	// phaseCount bounds the enum; covering the four real members suffices.
	switch p {
	case phaseIdle, phaseMandatory, phaseOptional, phaseWindup:
		return true
	}
	return false
}

func aliasCounts(m mode) int {
	// modeDefault == modeEager: the alias satisfies the member.
	switch m {
	case modeDefault:
		return 0
	case modeLazy:
		return 1
	}
	return -1
}

func waived(p phase) bool {
	//rtseed:partial-ok this helper only distinguishes the idle phase
	switch p {
	case phaseIdle:
		return true
	}
	return false
}

func nonConstantCase(p phase, dyn phase) bool {
	// A non-constant case arm makes coverage undecidable: skipped.
	switch p {
	case dyn:
		return true
	}
	return false
}

func singleConstType(n notEnum) bool {
	// One constant is not an enum: never checked.
	switch n {
	case onlyValue:
		return true
	}
	return false
}

func tagless(p phase) int {
	// No tag expression: not an enum switch.
	switch {
	case p == phaseIdle:
		return 0
	}
	return 1
}
