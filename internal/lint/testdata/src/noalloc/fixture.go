// Package noallocfix is the noalloc analyzer's fixture. Only functions
// annotated //rtseed:noalloc are checked; unannotated code may allocate
// freely.
package noallocfix

import (
	"fmt"
	"math/bits"
)

type item struct{ v int }

// Unannotated: allocation is legal here.
func unconstrained(n int) *item {
	return &item{v: n}
}

// Flagged pattern 1: explicit allocators.
//
//rtseed:noalloc
func hotAllocators(n int) int {
	buf := make([]int, n) // want `make allocates`
	p := new(item)        // want `new allocates`
	q := &item{v: n}      // want `&composite literal`
	s := []int{1, 2, 3}   // want `slice literal`
	m := map[int]int{}    // want `map literal`
	return len(buf) + p.v + q.v + s[0] + len(m)
}

// Flagged pattern 2: append growth.
//
//rtseed:noalloc
func hotAppend(xs []int, n int) []int {
	xs = append(xs, n) // want `append may grow`
	return xs
}

// Flagged pattern 3: capturing closures.
//
//rtseed:noalloc
func hotClosure(n int) func() int {
	f := func() int { return n } // want `closure captures n`
	return f
}

// Flagged pattern 4: interface boxing, explicit and implicit.
//
//rtseed:noalloc
func hotBoxing(n int) any {
	var x any = n // want `boxes int`
	y := any(x)
	sink(n) // want `boxes int`
	_ = y
	return n // want `boxes int`
}

func sink(v any) { _ = v }

// Flagged pattern 5: fmt and string building.
//
//rtseed:noalloc
func hotFormatting(a, b string) string {
	fmt.Println(a) // want `fmt\.Println allocates`
	return a + b   // want `string concatenation`
}

// Flagged pattern 6: spawning goroutines.
//
//rtseed:noalloc
func hotSpawn(done chan struct{}) {
	go waiter(done) // want `go statement`
}

func waiter(done chan struct{}) { <-done }

// Clean: index math, value-struct literals, channel ops, and calls through
// pre-bound func values don't allocate.
//
//rtseed:noalloc
func hotClean(xs []int, reply chan item, fn func()) int {
	sum := 0
	for i := range xs {
		sum += xs[i]
	}
	reply <- item{v: sum}
	fn()
	return sum
}

// Clean: the bitmap-runqueue idiom. Word indexing, mask updates, and the
// math/bits find-first-set intrinsics (Len64, LeadingZeros64,
// TrailingZeros64, RotateLeft64) compile to single instructions and must
// never be flagged — the O(1) scheduling core is built from exactly these.
//
//rtseed:noalloc
func hotBitmap(bitmap *[2]uint64, prio uint) int {
	bitmap[prio>>6] |= 1 << (prio & 63)
	if w := bitmap[1]; w != 0 {
		return bits.Len64(w) + 63
	}
	w := bitmap[0]
	bitmap[0] &^= 1 << uint(bits.Len64(w)-1)
	rot := bits.RotateLeft64(w, -int(prio&63))
	return 63 - bits.LeadingZeros64(w) + bits.TrailingZeros64(rot)
}

type traceRec struct{ seq, at, arg uint64 }

type traceRing struct {
	buf []traceRec
	w   int
}

// Clean: the trace-emit idiom. A value-struct store into a pre-sized ring
// with wraparound indexing, plus a call through a pre-bound observer func,
// never allocates — the tracing hot path is built from exactly this.
//
//rtseed:noalloc
func hotRingEmit(r *traceRing, observer func(traceRec), seq, at, arg uint64) {
	rec := traceRec{seq: seq, at: at, arg: arg}
	observer(rec)
	if r.w == len(r.buf) {
		r.w = 0
	}
	r.buf[r.w] = rec
	r.w++
}

// Accepted escape hatch: amortized growth waived with a reason.
//
//rtseed:noalloc
func hotWaived(free []*item, n *item) []*item {
	return append(free, n) //rtseed:alloc-ok amortized free-list growth; steady state reuses capacity
}

// --- continuation-body patterns ------------------------------------------

type action struct{ kind, dur int }

type contBody struct {
	pc      int
	pending func() action
}

// Clean: the continuation-body idiom. A Step that advances a program
// counter on pre-allocated state and returns a value-struct action
// allocates nothing — this is the shape every steady-state body must have.
//
//rtseed:noalloc
func (b *contBody) hotStepClean() action {
	b.pc++
	return action{kind: b.pc, dur: 2 * b.pc}
}

// Flagged: a continuation that builds a fresh capturing closure each step
// re-introduces a per-event allocation and defeats the inline executor.
//
//rtseed:noalloc
func (b *contBody) hotStepClosure() action {
	b.pending = func() action { return action{kind: b.pc} } // want `closure captures b`
	return b.pending()
}
