package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPackage mirrors the subset of `go list -json` fields the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *listError
}

type listError struct {
	Err string
}

// goList runs `go list -export -deps -json` for the given patterns in dir
// and returns the decoded package stream. -export makes the go tool compile
// every listed package and report the build-cache path of its export data,
// which is what lets the type checker resolve imports without installing
// any analysis dependency.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=Dir,ImportPath,Export,Standard,DepOnly,GoFiles,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from build-cache export data files.
type exportImporter struct {
	imp types.Importer
}

func (e *exportImporter) Import(path string) (*types.Package, error) { return e.imp.Import(path) }

// newExportImporter builds a types.Importer over the export data of the
// given listed packages.
func newExportImporter(fset *token.FileSet, pkgs []*listPackage) types.Importer {
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (is it reachable from the loaded patterns?)", path)
		}
		return os.Open(file)
	}
	return &exportImporter{imp: importer.ForCompiler(fset, "gc", lookup)}
}

// NewImporter returns a types.Importer that resolves every package reachable
// from the given patterns (evaluated in moduleDir) via build-cache export
// data. Fixture harnesses use it to type-check files that live outside the
// module proper (testdata is invisible to the go tool).
func NewImporter(fset *token.FileSet, moduleDir string, patterns ...string) (types.Importer, error) {
	pkgs, err := goList(moduleDir, patterns)
	if err != nil {
		return nil, err
	}
	return newExportImporter(fset, pkgs), nil
}

// Load enumerates the module packages matching patterns (relative to
// moduleDir), parses their non-test files with comments, and type-checks
// them with imports resolved through export data. Standard-library packages
// and pure dependencies are loaded for resolution but not returned.
func Load(moduleDir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(moduleDir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, listed)
	var out []*Package
	for _, lp := range listed {
		if lp.Standard || lp.DepOnly {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("load %s: %v", lp.ImportPath, err)
			}
			files = append(files, f)
		}
		pkg, err := NewPackage(fset, lp.ImportPath, lp.Dir, files, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}
