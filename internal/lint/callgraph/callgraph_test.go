package callgraph_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"rtseed/internal/lint"
	"rtseed/internal/lint/callgraph"
)

// mapImporter resolves the synthetic test packages by import path.
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p, nil
	}
	return nil, nil
}

// load type-checks one in-memory source file into a lint.Package.
func load(t *testing.T, fset *token.FileSet, imp mapImporter, importPath, src string) *lint.Package {
	t.Helper()
	file, err := parser.ParseFile(fset, importPath+"/src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", importPath, err)
	}
	pkg, err := lint.NewPackage(fset, importPath, "", []*ast.File{file}, imp)
	if err != nil {
		t.Fatalf("typecheck %s: %v", importPath, err)
	}
	imp[importPath] = pkg.Types
	return pkg
}

const srcA = `package a

type Worker struct{ n int }

func (w *Worker) Step() { w.n++ }

func Helper() {}

type Stepper interface{ Step() }
`

const srcB = `package b

import "example/a"

func direct() { a.Helper() }

func spawn() { go loop() }

func loop() {
	defer cleanup()
	w := &a.Worker{}
	w.Step()
}

func cleanup() {}

func takeRef() func() { return a.Helper }

func callValue(f func()) { f() }

func viaInterface(s a.Stepper) { s.Step() }

func literals() {
	f := func() { a.Helper() }
	f()
	func() {}()
	go func() { cleanup() }()
}
`

type edgeKey struct {
	caller, callee string
	kind           callgraph.EdgeKind
}

func buildTestGraph(t *testing.T) *callgraph.Graph {
	t.Helper()
	fset := token.NewFileSet()
	imp := mapImporter{}
	pa := load(t, fset, imp, "example/a", srcA)
	pb := load(t, fset, imp, "example/b", srcB)
	return callgraph.Build([]*lint.Package{pa, pb})
}

func edgeSet(g *callgraph.Graph) map[edgeKey]bool {
	set := map[edgeKey]bool{}
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			set[edgeKey{e.Caller.Name(), e.Callee.Name(), e.Kind}] = true
		}
	}
	return set
}

func TestBuildEdges(t *testing.T) {
	g := buildTestGraph(t)
	set := edgeSet(g)

	want := []edgeKey{
		// Direct calls, including cross-package and method calls.
		{"b.direct", "a.Helper", callgraph.Static},
		{"b.loop", "(*a.Worker).Step", callgraph.Static},
		// go and defer statements keep their own kinds.
		{"b.spawn", "b.loop", callgraph.Go},
		{"b.loop", "b.cleanup", callgraph.Defer},
		// Address taken without a call.
		{"b.takeRef", "a.Helper", callgraph.Ref},
		// Interface dispatch resolves conservatively to the implementation.
		{"b.viaInterface", "(*a.Worker).Step", callgraph.Interface},
		// Literals: assigned-then-called, immediately invoked, go-spawned.
		{"b.literals", "b.literals$1", callgraph.Dynamic},
		{"b.literals$1", "a.Helper", callgraph.Static},
		{"b.literals", "b.literals$2", callgraph.Static},
		{"b.literals", "b.literals$3", callgraph.Go},
		{"b.literals$3", "b.cleanup", callgraph.Static},
	}
	for _, k := range want {
		if !set[k] {
			t.Errorf("missing edge %s -%s-> %s", k.caller, k.kind, k.callee)
		}
	}

	// The func-value call site resolves by signature: callValue's f() must
	// reach the address-taken set, which includes a.Helper (returned as a
	// value by takeRef).
	if !set[edgeKey{"b.callValue", "a.Helper", callgraph.Dynamic}] {
		t.Errorf("missing dynamic edge b.callValue -> a.Helper")
	}
	// An immediately-invoked literal is NOT address-taken: no dynamic edge
	// may point at it.
	if set[edgeKey{"b.callValue", "b.literals$2", callgraph.Dynamic}] {
		t.Errorf("dynamic edge resolved to an immediately-invoked literal")
	}
}

func TestGoSpawnedLiteral(t *testing.T) {
	g := buildTestGraph(t)
	for _, n := range g.Nodes {
		switch n.Name() {
		case "b.literals$3":
			if !n.GoSpawned {
				t.Errorf("%s: want GoSpawned", n.Name())
			}
		case "b.literals$1", "b.literals$2":
			if n.GoSpawned {
				t.Errorf("%s: unexpected GoSpawned", n.Name())
			}
		}
	}
}

func TestCallerPath(t *testing.T) {
	g := buildTestGraph(t)
	var cleanup *callgraph.Node
	for _, n := range g.Nodes {
		if n.Name() == "b.cleanup" {
			cleanup = n
		}
	}
	if cleanup == nil {
		t.Fatal("b.cleanup node not found")
	}
	path := g.CallerPath(cleanup)
	got := callgraph.FormatPath(path)
	// Shortest direct chain: spawn -go-> loop -defer-> cleanup (the literal
	// chain literals -> literals$3 -> cleanup is equally long; accept both).
	if got != "b.spawn → b.loop → b.cleanup" && got != "b.literals → b.literals$3 → b.cleanup" {
		t.Errorf("CallerPath(b.cleanup) = %q", got)
	}
	if path[len(path)-1] != cleanup {
		t.Errorf("path must end at the queried node")
	}
}

func TestNodeLookup(t *testing.T) {
	g := buildTestGraph(t)
	names := map[string]bool{}
	for _, n := range g.Nodes {
		names[n.Name()] = true
	}
	for _, want := range []string{
		"a.Helper", "(*a.Worker).Step", "b.direct", "b.spawn", "b.loop",
		"b.cleanup", "b.takeRef", "b.callValue", "b.viaInterface",
		"b.literals", "b.literals$1", "b.literals$2", "b.literals$3",
	} {
		if !names[want] {
			t.Errorf("missing node %q (have %s)", want, strings.Join(sortedNames(g), ", "))
		}
	}
}

func sortedNames(g *callgraph.Graph) []string {
	out := make([]string, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		out = append(out, n.Name())
	}
	return out
}
