// Package callgraph builds a whole-program call graph over the packages the
// lint loader type-checked, on the standard library only. It is the
// foundation of the module-level analyzers (kernelctx, waiverdrift): where
// the per-package analyzers reason about one function body at a time, the
// graph answers "who can invoke this body, and from where".
//
// Resolution is deliberately layered by confidence:
//
//   - Static edges: direct calls whose callee the type checker names — plain
//     function calls, concrete method calls, and immediately-invoked
//     function literals. Go and Defer edges are Static edges that happen
//     through a go or defer statement (a Go edge matters: the callee runs on
//     a fresh goroutine, outside whatever execution context the caller had).
//   - Ref edges: a function or method referenced as a value without being
//     called — the address-taken set. A reference is not an invocation, but
//     it is how an invocation escapes static view, so the consumers treat it
//     as "may later be called from anywhere the value flows".
//   - Interface edges: a call through an interface method, conservatively
//     resolved to the matching method of every loaded concrete type that
//     implements the interface.
//   - Dynamic edges: a call through a func-typed value (field, variable,
//     parameter), conservatively resolved to every address-taken node with
//     an identical signature.
//
// Interface and Dynamic edges over-approximate heavily by construction;
// analyzers that must not cry wolf (kernelctx) restrict their verdicts to
// Static/Go/Defer/Ref edges and use the conservative tiers only for
// reachability questions (waiverdrift's stale-entry audit), where
// over-approximation errs toward silence.
//
// Function literals get their own nodes: a closure's body can run in a very
// different context from the function that lexically created it (the kernel
// pre-allocates its engine callbacks in setup code), so conflating the two
// would wreck context analyses. Nodes and edges are emitted in deterministic
// (file, position) order so diagnostics are stable run to run.
//
// Out of scope, documented rather than guessed at: package-level variable
// initializer expressions (no function body owns them) and bodies in
// packages outside the loaded set.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"rtseed/internal/lint"
)

// EdgeKind classifies how a caller reaches a callee.
type EdgeKind int

// Edge kinds, from most to least precise.
const (
	// Static is a direct call with a statically named callee.
	Static EdgeKind = iota + 1
	// Go is a direct call through a go statement: the callee body runs on
	// a new goroutine.
	Go
	// Defer is a direct call through a defer statement: the callee runs in
	// the caller's goroutine at function exit.
	Defer
	// Ref is a function value reference (address taken), not a call.
	Ref
	// Interface is a call through an interface method, resolved to a
	// concrete implementation conservatively.
	Interface
	// Dynamic is a call through a func-typed value, resolved by signature
	// identity against the address-taken set conservatively.
	Dynamic
)

// String implements fmt.Stringer.
func (k EdgeKind) String() string {
	switch k {
	case Static:
		return "static"
	case Go:
		return "go"
	case Defer:
		return "defer"
	case Ref:
		return "ref"
	case Interface:
		return "interface"
	case Dynamic:
		return "dynamic"
	default:
		return "unknown"
	}
}

// An Edge is one caller→callee connection, positioned at the call (or
// reference) site.
type Edge struct {
	Caller *Node
	Callee *Node
	Kind   EdgeKind
	Pos    token.Pos
}

// A Node is one function body: a declared function or method, or a function
// literal.
type Node struct {
	// Pkg is the package the body lives in.
	Pkg *lint.Package
	// Func is the declared function object; nil for literals.
	Func *types.Func
	// Decl is the declaration carrying the body; nil for literals.
	Decl *ast.FuncDecl
	// Lit is the function literal; nil for declarations.
	Lit *ast.FuncLit
	// Parent is the node whose body lexically contains Lit; nil for
	// declarations.
	Parent *Node
	// GoSpawned marks a literal that is the operand of a go statement: its
	// body always starts on a fresh goroutine.
	GoSpawned bool
	// Out and In are the node's edges, in build order (deterministic).
	Out []*Edge
	In  []*Edge

	litIndex  int
	litCount  int
	immCalled bool
}

// Name renders the node for diagnostics: "kernel.makeReady",
// "(*kernel.Kernel).preempt", or "kernel.NewThread$2" for the second literal
// created inside NewThread. Full import paths are shortened to the package
// name so findings stay readable.
func (n *Node) Name() string {
	if n.Func != nil {
		s := n.Func.FullName()
		if p := n.Func.Pkg(); p != nil && p.Path() != p.Name() {
			s = strings.ReplaceAll(s, p.Path()+".", p.Name()+".")
		}
		return s
	}
	return n.Parent.Name() + "$" + strconv.Itoa(n.litIndex)
}

// Pos returns the node's declaration position.
func (n *Node) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// A Graph is the call graph of one loaded package set.
type Graph struct {
	// Nodes lists every function body in deterministic (package, position)
	// order.
	Nodes []*Node

	byFunc map[string]*Node
	byLit  map[*ast.FuncLit]*Node
}

// funcKey names a declared function stably across type-checking universes.
// The loader type-checks each package from source but resolves its imports
// from export data, so the *types.Func a caller sees for a cross-package
// callee is a different object than the one created at the callee's own
// declaration — pointer identity does not hold. FullName (import path plus
// receiver-qualified name) does. The one ambiguity is multiple func init()
// declarations sharing a name; init is uncallable, so no edge resolution
// ever looks one up.
func funcKey(fn *types.Func) string { return fn.Origin().FullName() }

// NodeFor returns the node of a declared function, resolving generic
// instantiations to their origin declaration, or nil if fn's body is not in
// the loaded set.
func (g *Graph) NodeFor(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.byFunc[funcKey(fn)]
}

// LitNode returns the node of a function literal, or nil.
func (g *Graph) LitNode(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// CallerPath returns a shortest direct-invocation chain ending at n — the
// callers walked over Static/Go/Defer/Ref edges up to a body nothing in the
// loaded set invokes directly — for "how is this reached" diagnostics. The
// result starts at that root and ends at n; a node with no direct callers
// yields just [n].
func (g *Graph) CallerPath(n *Node) []*Node {
	type item struct {
		node *Node
		next *item
	}
	visited := map[*Node]bool{n: true}
	queue := []*item{{node: n}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		var callers []*Node
		for _, e := range it.node.In {
			//rtseed:partial-ok path reconstruction walks the direct tiers only; Interface/Dynamic edges over-approximate
			switch e.Kind {
			case Static, Go, Defer, Ref:
				if !visited[e.Caller] {
					callers = append(callers, e.Caller)
				}
			}
		}
		if len(callers) == 0 {
			// Root reached: unwind the chain.
			var path []*Node
			for x := it; x != nil; x = x.next {
				path = append(path, x.node)
			}
			return path
		}
		for _, c := range callers {
			visited[c] = true
			queue = append(queue, &item{node: c, next: it})
		}
	}
	return []*Node{n}
}

// FormatPath renders a caller path as "a → b → c".
func FormatPath(path []*Node) string {
	parts := make([]string, len(path))
	for i, n := range path {
		parts[i] = n.Name()
	}
	return strings.Join(parts, " → ")
}

// builder accumulates graph state across the construction passes.
type builder struct {
	g *Graph

	// marks tags call expressions reached through go/defer statements.
	marks map[*ast.CallExpr]EdgeKind
	// callPos records identifiers consumed as static call targets, so the
	// reference scan does not double-count them as address-taken.
	callPos map[*ast.Ident]bool

	dynCalls   []dynCall
	ifaceCalls []ifaceCall
}

type dynCall struct {
	owner *Node
	sig   *types.Signature
	kind  EdgeKind
	pos   token.Pos
}

type ifaceCall struct {
	owner *Node
	iface *types.Interface
	name  string
	kind  EdgeKind
	pos   token.Pos
}

// Shared returns the call graph of mp's loaded package set, built once per
// module cache and reused by every module analyzer in the run (kernelctx,
// bodystep, waiverdrift, and the summary consumers all need it).
func Shared(mp *lint.ModulePass) *Graph {
	return mp.Shared("callgraph", func() any { return Build(mp.Pkgs) }).(*Graph)
}

// Build constructs the call graph of the given packages.
func Build(pkgs []*lint.Package) *Graph {
	g := &Graph{byFunc: map[string]*Node{}, byLit: map[*ast.FuncLit]*Node{}}
	b := &builder{
		g:       g,
		marks:   map[*ast.CallExpr]EdgeKind{},
		callPos: map[*ast.Ident]bool{},
	}

	// Pass 1: a node per declared function body, so forward references
	// resolve no matter the file order.
	var declNodes []*Node
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[decl.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Pkg: pkg, Func: fn, Decl: decl}
				g.byFunc[funcKey(fn)] = n
				g.Nodes = append(g.Nodes, n)
				declNodes = append(declNodes, n)
			}
		}
	}

	// Pass 2: walk every body, creating literal nodes and the direct
	// (Static/Go/Defer) and Ref edges; dynamic and interface call sites are
	// collected for the conservative passes below.
	for _, n := range declNodes {
		b.walkBody(n, n.Decl.Body)
	}

	// Pass 3: conservative resolution. Interface calls go to every loaded
	// implementation; dynamic calls go to every address-taken body with an
	// identical signature.
	b.resolveInterfaceCalls(pkgs)
	b.resolveDynamicCalls()
	return g
}

// walkBody attributes everything inside body to owner, descending into
// nested literals with the literal's node as the new owner.
func (b *builder) walkBody(owner *Node, body ast.Node) {
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			lit := b.litNode(owner, x)
			b.walkBody(lit, x.Body)
			return false
		case *ast.GoStmt:
			b.marks[x.Call] = Go
		case *ast.DeferStmt:
			b.marks[x.Call] = Defer
		case *ast.CallExpr:
			b.call(owner, x)
		case *ast.Ident:
			b.ref(owner, x)
		}
		return true
	})
}

// litNode creates (once) the node of a literal owned by parent.
func (b *builder) litNode(parent *Node, lit *ast.FuncLit) *Node {
	if n := b.g.byLit[lit]; n != nil {
		return n
	}
	parent.litCount++
	n := &Node{Pkg: parent.Pkg, Lit: lit, Parent: parent, litIndex: parent.litCount}
	b.g.byLit[lit] = n
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

// call classifies one call expression and records the matching edge or
// deferred resolution request.
func (b *builder) call(owner *Node, call *ast.CallExpr) {
	kind := b.marks[call]
	if kind == 0 {
		kind = Static
	}
	info := owner.Pkg.TypesInfo
	fun := ast.Unparen(call.Fun)

	// Immediately-invoked literal.
	if lit, ok := fun.(*ast.FuncLit); ok {
		n := b.litNode(owner, lit)
		n.immCalled = true
		if kind == Go {
			n.GoSpawned = true
		}
		b.edge(owner, n, kind, call.Pos())
		return
	}

	// Builtins and conversions are not calls into function bodies.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return
		}
	}
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return
	}

	// Peel generic instantiation syntax f[T](...).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}

	var callee *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		callee = f
	case *ast.SelectorExpr:
		callee = f.Sel
		if sel, ok := info.Selections[f]; ok && sel.Kind() == types.MethodVal {
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				b.callPos[f.Sel] = true
				b.ifaceCalls = append(b.ifaceCalls, ifaceCall{
					owner: owner, iface: iface, name: f.Sel.Name, kind: kind, pos: call.Pos(),
				})
				return
			}
		}
	}
	if callee != nil {
		if fn, ok := info.Uses[callee].(*types.Func); ok {
			b.callPos[callee] = true
			if target := b.g.NodeFor(fn); target != nil {
				b.edge(owner, target, kind, call.Pos())
			}
			return
		}
	}

	// A call through a func-typed value: resolve by signature later, once
	// the address-taken set is complete.
	if tv, ok := info.Types[call.Fun]; ok && tv.Type != nil {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			b.dynCalls = append(b.dynCalls, dynCall{owner: owner, sig: sig, kind: kind, pos: call.Pos()})
		}
	}
}

// ref records a function or method referenced as a value.
func (b *builder) ref(owner *Node, id *ast.Ident) {
	if b.callPos[id] {
		return
	}
	fn, ok := owner.Pkg.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return
	}
	if target := b.g.NodeFor(fn); target != nil {
		b.edge(owner, target, Ref, id.Pos())
	}
}

func (b *builder) edge(caller, callee *Node, kind EdgeKind, pos token.Pos) {
	e := &Edge{Caller: caller, Callee: callee, Kind: kind, Pos: pos}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// resolveInterfaceCalls adds an Interface edge from each interface call site
// to the matching method of every loaded concrete type implementing the
// interface.
func (b *builder) resolveInterfaceCalls(pkgs []*lint.Package) {
	if len(b.ifaceCalls) == 0 {
		return
	}
	var concrete []types.Type
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if ok && !tn.IsAlias() {
				if _, isIface := tn.Type().Underlying().(*types.Interface); !isIface {
					concrete = append(concrete, tn.Type())
				}
			}
		}
	}
	for _, ic := range b.ifaceCalls {
		for _, t := range concrete {
			// The pointer method set includes the value method set, so one
			// Implements check on *T covers both receiver flavors.
			pt := types.NewPointer(t)
			if !types.Implements(t, ic.iface) && !types.Implements(pt, ic.iface) {
				continue
			}
			sel := types.NewMethodSet(pt).Lookup(nil, ic.name)
			if sel == nil {
				continue
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				if target := b.g.NodeFor(fn); target != nil {
					b.edge(ic.owner, target, Interface, ic.pos)
				}
			}
		}
	}
}

// resolveDynamicCalls adds a Dynamic edge from each func-value call site to
// every address-taken body whose signature is identical to the callee type.
func (b *builder) resolveDynamicCalls() {
	if len(b.dynCalls) == 0 {
		return
	}
	// Address-taken set: every Ref target plus every literal that is not
	// exclusively immediately invoked.
	var taken []*Node
	seen := map[*Node]bool{}
	for _, n := range b.g.Nodes {
		if n.Lit != nil && !n.immCalled && !seen[n] {
			seen[n] = true
			taken = append(taken, n)
		}
		for _, e := range n.Out {
			if e.Kind == Ref && !seen[e.Callee] {
				seen[e.Callee] = true
				taken = append(taken, e.Callee)
			}
		}
	}
	for _, dc := range b.dynCalls {
		want := stripRecv(dc.sig)
		for _, t := range taken {
			if types.Identical(want, stripRecv(t.signature())) {
				b.edge(dc.owner, t, Dynamic, dc.pos)
			}
		}
	}
}

// signature returns the node's function signature.
func (n *Node) signature() *types.Signature {
	if n.Func != nil {
		return n.Func.Type().(*types.Signature)
	}
	if tv, ok := n.Pkg.TypesInfo.Types[n.Lit]; ok && tv.Type != nil {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			return sig
		}
	}
	return types.NewSignatureType(nil, nil, nil, nil, nil, false)
}

// stripRecv drops the receiver so a method and the func value derived from
// it compare identical.
func stripRecv(sig *types.Signature) *types.Signature {
	if sig.Recv() == nil {
		return sig
	}
	return types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
}
