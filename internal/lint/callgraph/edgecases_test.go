package callgraph_test

import (
	"go/token"
	"testing"

	"rtseed/internal/lint"
	"rtseed/internal/lint/callgraph"
)

// These fixtures pin the call-graph shapes the summary layer leans on:
// method values, method expressions, bound methods stored in struct fields,
// and cross-package mutual recursion. Each case asserts the exact edges so
// a regression here fails before it silently weakens every summary consumer.

const srcM = `package m

type Counter struct{ n int }

func (c *Counter) Inc() { c.n++ }

func (c Counter) Get() int { return c.n }

// methodValue binds the receiver: the reference is Ref, the later call
// resolves by signature to the bound method.
func methodValue(c *Counter) {
	f := c.Inc
	f()
}

// methodExpr references the method without a receiver; the explicit-receiver
// call goes through a func(*Counter) value.
func methodExpr(c *Counter) {
	g := (*Counter).Inc
	g(c)
}

// valueMethodExpr does the same through the value receiver.
func valueMethodExpr(c Counter) int {
	h := Counter.Get
	return h(c)
}

type holder struct {
	fn func()
}

// storeBound parks a bound method in a struct field — the reference must
// survive the store.
func storeBound(c *Counter) holder {
	return holder{fn: c.Inc}
}

// callStored invokes whatever the field holds; with c.Inc address-taken the
// dynamic call must reach it.
func callStored(h holder) {
	h.fn()
}
`

// Packages p and q are mutually recursive across the package boundary: q
// imports p and calls into it statically, while p reaches back into q
// through interface dispatch (the only way a Go import DAG permits a
// cross-package cycle). The call graph must still contain the cycle.
const srcP = `package p

type Stepper interface{ Step(n int) }

func Drive(s Stepper, n int) {
	if n > 0 {
		s.Step(n - 1)
	}
}
`

const srcQ = `package q

import "example/p"

type Bouncer struct{}

func (Bouncer) Step(n int) { p.Drive(Bouncer{}, n) }
`

func TestMethodValueAndExpressionEdges(t *testing.T) {
	fset := token.NewFileSet()
	imp := mapImporter{}
	pm := load(t, fset, imp, "example/m", srcM)
	g := callgraph.Build([]*lint.Package{pm})
	set := edgeSet(g)

	for _, want := range []edgeKey{
		// Method value: Ref at the binding, Dynamic at the call (the bound
		// value's signature matches the receiver-stripped method).
		{"m.methodValue", "(*m.Counter).Inc", callgraph.Ref},
		{"m.methodValue", "(*m.Counter).Inc", callgraph.Dynamic},
		// Method expressions keep the Ref edge for both receiver forms.
		{"m.methodExpr", "(*m.Counter).Inc", callgraph.Ref},
		{"m.valueMethodExpr", "(m.Counter).Get", callgraph.Ref},
		// Bound method stored in a struct field: the store is a Ref from the
		// storing function…
		{"m.storeBound", "(*m.Counter).Inc", callgraph.Ref},
		// …and the call through the field resolves by signature to every
		// address-taken body that matches, Inc included.
		{"m.callStored", "(*m.Counter).Inc", callgraph.Dynamic},
	} {
		if !set[want] {
			t.Errorf("missing edge %s -%s-> %s", want.caller, want.kind, want.callee)
		}
	}

	// The bound-value call must not leak onto the value-receiver method:
	// Get's stripped signature is func() int, not func().
	if set[edgeKey{"m.callStored", "(m.Counter).Get", callgraph.Dynamic}] {
		t.Errorf("dynamic call through func() field resolved to Counter.Get (func() int)")
	}
}

func TestCrossPackageMutualRecursion(t *testing.T) {
	fset := token.NewFileSet()
	imp := mapImporter{}
	pp := load(t, fset, imp, "example/p", srcP)
	pq := load(t, fset, imp, "example/q", srcQ)
	g := callgraph.Build([]*lint.Package{pp, pq})
	set := edgeSet(g)

	if !set[edgeKey{"p.Drive", "(q.Bouncer).Step", callgraph.Interface}] {
		t.Fatalf("missing interface edge p.Drive -> q.Bouncer.Step")
	}
	if !set[edgeKey{"(q.Bouncer).Step", "p.Drive", callgraph.Static}] {
		t.Fatalf("missing static edge q.Bouncer.Step -> p.Drive")
	}

	// The cycle is real: Drive reaches itself through Step. CallerPath must
	// still terminate (visited-set, not depth) and end at the queried node.
	var drive *callgraph.Node
	for _, n := range g.Nodes {
		if n.Name() == "p.Drive" {
			drive = n
		}
	}
	if drive == nil {
		t.Fatal("p.Drive node not found")
	}
	path := g.CallerPath(drive)
	if len(path) == 0 || path[len(path)-1] != drive {
		t.Errorf("CallerPath(p.Drive) = %q; must end at p.Drive", callgraph.FormatPath(path))
	}
}
