package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// checkPkg typechecks import-free source under the given import path.
func checkPkg(t *testing.T, path, src string) *types.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg, err := (&types.Config{}).Check(path, fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return pkg
}

func TestEnumMembers(t *testing.T) {
	const src = `package p

type Kind int

const (
	KindA Kind = iota
	KindB
	KindAlias = KindA
	kindMax
)

type Lonely int

const OnlyOne Lonely = 0

type NotInt string

const SA NotInt = "a"
const SB NotInt = "b"

type Mixed int

const (
	MixedA Mixed = iota
	mixedB
	mixedCount
)
`
	pkg := checkPkg(t, "rtseed/internal/fake", src)
	foreign := checkPkg(t, "rtseed/internal/other", "package other")
	nonModule := checkPkg(t, "example.com/x", `package x
type E int
const (
	EA E = iota
	EB
)`)

	lookup := func(p *types.Package, name string) types.Type {
		obj := p.Scope().Lookup(name)
		if obj == nil {
			t.Fatalf("no type %s", name)
		}
		return obj.Type()
	}

	cases := []struct {
		name     string
		from     *types.Package
		typ      types.Type
		wantName string
		want     []string // member names
	}{
		{
			name:     "iota block with alias and sentinel",
			from:     pkg,
			typ:      lookup(pkg, "Kind"),
			wantName: "p.Kind",
			want:     []string{"KindA", "KindB"}, // alias deduped, kindMax excluded
		},
		{
			name: "single constant is not an enum",
			from: pkg,
			typ:  lookup(pkg, "Lonely"),
		},
		{
			name: "string-typed constants are not an enum",
			from: pkg,
			typ:  lookup(pkg, "NotInt"),
		},
		{
			name:     "foreign viewer drops unexported members",
			from:     foreign,
			typ:      lookup(pkg, "Mixed"),
			wantName: "p.Mixed",
			want:     []string{"MixedA"},
		},
		{
			name:     "nil viewer keeps unexported members",
			from:     nil,
			typ:      lookup(pkg, "Mixed"),
			wantName: "p.Mixed",
			want:     []string{"MixedA", "mixedB"},
		},
		{
			name: "non-module enum ignored",
			from: pkg,
			typ:  lookup(nonModule, "E"),
		},
		{
			name: "basic type is not an enum",
			from: pkg,
			typ:  types.Typ[types.Int],
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gotName, got := EnumMembers(tc.from, tc.typ)
			if gotName != tc.wantName {
				t.Errorf("name = %q, want %q", gotName, tc.wantName)
			}
			var names []string
			for _, m := range got {
				names = append(names, m.Name)
			}
			if len(names) != len(tc.want) {
				t.Fatalf("members = %v, want %v", names, tc.want)
			}
			for i := range names {
				if names[i] != tc.want[i] {
					t.Fatalf("members = %v, want %v", names, tc.want)
				}
			}
		})
	}
}
