// Package analysistest runs a lint.Analyzer over a fixture directory and
// checks its findings against `// want "regexp"` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library only.
//
// Fixtures live under internal/lint/testdata — a directory name the go tool
// ignores, so fixture files are compiled solely by this harness and never by
// `go build ./...` or rtseed-vet itself. Each flagged line carries a
// trailing comment
//
//	code() // want `regexp` `another`
//
// with one backquoted (or double-quoted) regexp per expected finding on
// that line. Every reported diagnostic must match an expectation on its
// line and every expectation must be matched by at least one diagnostic.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"rtseed/internal/lint"
)

// importerPatterns are the package patterns pre-loaded for fixture imports:
// the whole module plus the standard-library packages fixtures exercise.
var importerPatterns = []string{
	"./...", "fmt", "os", "time", "sort", "strings",
	"math/rand", "math/rand/v2", "slices", "context",
}

var wantRE = regexp.MustCompile("//\\s*want\\s+(.*)$")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run applies a to the fixture package in dir (relative to the caller's
// working directory) and reports mismatches against its want comments.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	moduleDir := findModuleRoot(t, dir)
	fset := token.NewFileSet()
	imp, err := lint.NewImporter(fset, moduleDir, importerPatterns...)
	if err != nil {
		t.Fatalf("building importer: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	importPath := "rtseed/fixture/" + filepath.Base(dir)
	pkg, err := lint.NewPackage(fset, importPath, dir, files, imp)
	if err != nil {
		t.Fatalf("typechecking fixture: %v", err)
	}
	if problems := pkg.Directives.Problems; len(problems) > 0 {
		for _, p := range problems {
			t.Errorf("malformed directive: %s", p)
		}
	}
	diags, err := lint.RunAnalyzer(a, pkg)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkExpectations(t, fset, files, diags)
}

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []lint.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, files)
	for i := range diags {
		d := &diags[i]
		matched := false
		for _, w := range wants {
			if w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitPatterns(m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitPatterns extracts the backquoted or double-quoted patterns from the
// tail of a want comment.
func splitPatterns(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '`' && quote != '"' {
			break
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			break
		}
		out = append(out, s[1:1+end])
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}

func findModuleRoot(t *testing.T, dir string) string {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	for d := abs; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		if filepath.Dir(d) == d {
			t.Fatalf("no go.mod above %s", abs)
			return ""
		}
	}
}
