// Package kernelctx implements the kernel-context discipline analyzer.
//
// RT-Seed's simulated kernel mutates shared scheduler state — run queues,
// the timing wheel, per-CPU trace rings — without locks, relying on every
// mutation happening inside the single-threaded simulation context. The Go
// compiler cannot see that rule; this analyzer can. Functions annotated
// //rtseed:kernelctx form the protected set, and the only legal ways in are
// other kernelctx functions and the blessed transitions annotated
// //rtseed:kernelctx-entry <reason> (the event-loop pump, quiescent setup
// code, serialized simulated-thread helpers).
//
// The verdict tiers mirror the call graph's confidence tiers:
//
//   - A Static or Defer edge from plain code into a kernelctx function is a
//     violation, reported with the full offending call path.
//   - A Go edge into a kernelctx function is always a violation, even from
//     kernelctx code: the spawned goroutine leaves the serialized context by
//     construction.
//   - A Ref edge from plain code is a violation too — handing out a
//     kernelctx function as a value lets it escape to arbitrary callers the
//     graph can no longer see.
//   - Interface and Dynamic edges are deliberately not judged: they
//     over-approximate, and a discipline check that cries wolf gets waived
//     into uselessness. Closures that flow through function values carry
//     the discipline by being annotated themselves.
//
// Context is computed per body: a declared function is kernelctx or entry by
// annotation; a function literal is kernelctx if annotated on its own line
// (or the line above), is always plain if go-spawned, and otherwise inherits
// its lexical parent's context — a closure built inside kernel code and
// invoked synchronously stays in context.
package kernelctx

import (
	"fmt"

	"rtseed/internal/lint"
	"rtseed/internal/lint/callgraph"
)

// Analyzer is the kernelctx discipline checker.
var Analyzer = &lint.Analyzer{
	Name: "kernelctx",
	Doc: "check that //rtseed:kernelctx functions are reached only from kernel context\n\n" +
		"Functions annotated //rtseed:kernelctx may only be called from other\n" +
		"kernelctx functions or from //rtseed:kernelctx-entry <reason> functions.\n" +
		"Calls from plain code, go statements targeting kernelctx functions, and\n" +
		"kernelctx function values escaping to plain code are findings; each one\n" +
		"prints the offending call path.",
	RunModule: run,
}

// context classifies one call-graph node for the discipline check.
type context int

const (
	plain context = iota
	kernel
	entry
)

// classifier computes and memoizes node contexts over one call graph.
type classifier struct {
	ctx map[*callgraph.Node]context
}

func (c *classifier) of(n *callgraph.Node) context {
	if ctx, ok := c.ctx[n]; ok {
		return ctx
	}
	// Mark before recursing: lexical parents cannot cycle, but the guard
	// keeps a malformed graph from hanging the analyzer.
	c.ctx[n] = plain
	ctx := c.classify(n)
	c.ctx[n] = ctx
	return ctx
}

func (c *classifier) classify(n *callgraph.Node) context {
	dirs := n.Pkg.Directives
	if n.Decl != nil {
		if dirs.ForDecl(n.Pkg.Fset, n.Decl, lint.DirKernelCtx) != nil {
			return kernel
		}
		if dirs.ForDecl(n.Pkg.Fset, n.Decl, lint.DirKernelCtxEntry) != nil {
			return entry
		}
		return plain
	}
	if dirs.ForLit(n.Pkg.Fset, n.Lit, lint.DirKernelCtx) != nil {
		return kernel
	}
	if n.GoSpawned {
		// A go-spawned literal starts on a fresh goroutine: it can never
		// inherit kernel context, only be annotated into it (handled above,
		// for literals handed to a serialized executor).
		return plain
	}
	if n.Parent != nil {
		// An entry's synchronous literals run inside the transition the
		// entry blessed, so they inherit kernel context, not entry status.
		if pc := c.of(n.Parent); pc != plain {
			return kernel
		}
	}
	return plain
}

func run(mp *lint.ModulePass) error {
	g := callgraph.Shared(mp)
	c := &classifier{ctx: map[*callgraph.Node]context{}}

	for _, n := range g.Nodes {
		for _, e := range n.Out {
			callee := e.Callee
			if c.of(callee) != kernel {
				continue
			}
			callerCtx := c.of(n)
			var verdict string
			//rtseed:partial-ok Interface/Dynamic edges are deliberately not judged (see package doc)
			switch e.Kind {
			case callgraph.Static, callgraph.Defer:
				if callerCtx == plain {
					verdict = fmt.Sprintf("%s is //rtseed:kernelctx but is called from plain code", callee.Name())
				}
			case callgraph.Go:
				verdict = fmt.Sprintf("%s is //rtseed:kernelctx but is spawned on a new goroutine, leaving kernel context", callee.Name())
			case callgraph.Ref:
				if callerCtx == plain && callee.Func != nil {
					verdict = fmt.Sprintf("%s is //rtseed:kernelctx but escapes as a function value in plain code", callee.Name())
				}
			}
			if verdict == "" {
				continue
			}
			path := append(g.CallerPath(n), callee)
			mp.Reportf(n.Pkg, e.Pos, "%s (path: %s)", verdict, callgraph.FormatPath(path))
		}
	}
	return nil
}
