package kernelctx_test

import (
	"testing"

	"rtseed/internal/lint/analysistest"
	"rtseed/internal/lint/kernelctx"
)

func TestKernelCtx(t *testing.T) {
	analysistest.Run(t, kernelctx.Analyzer, "../testdata/src/kernelctx")
}
