package suite

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"

	"rtseed/internal/lint"
)

// SARIF is the third output form rtseed-vet publishes (alongside -json and
// -stats): a SARIF 2.1.0 log GitHub code scanning ingests directly, so vet
// findings annotate pull requests without a translation step. Only the
// subset of the standard the suite needs is emitted — one run, one driver,
// one rule per analyzer, one result per finding with a single physical
// location — and schema.json publishes exactly that subset.

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// directivesRuleID tags malformed //rtseed: comment findings, which come
// from the directive parser rather than any one analyzer.
const directivesRuleID = "directives"

// PrintSARIF writes the findings as a SARIF 2.1.0 log. Artifact URIs are
// repository-relative (resolved against dir, the directory the packages
// were loaded from) so code scanning anchors annotations to checked-out
// paths; a finding outside dir keeps its loader path verbatim.
func PrintSARIF(w io.Writer, dir string, diags []lint.Diagnostic) error {
	var rules []sarifRule
	index := map[string]int{}
	addRule := func(id, doc string) {
		if _, ok := index[id]; ok {
			return
		}
		index[id] = len(rules)
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: doc}})
	}
	for _, a := range Analyzers {
		addRule(a.Name, firstLine(a.Doc))
	}
	addRule(directivesRuleID, "malformed or reasonless //rtseed: directive comments")

	results := []sarifResult{} // emit [], not null, on a clean tree
	for _, d := range diags {
		addRule(d.Analyzer, "") // future-proof: never emit a ruleId without its rule
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: index[d.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: sarifURI(dir, d.File)},
					Region:           sarifRegion{StartLine: max(d.Line, 1), StartColumn: max(d.Col, 1)},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "rtseed-vet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(log)
}

// sarifURI makes file relative to dir with forward slashes, the form code
// scanning matches against the checkout.
func sarifURI(dir, file string) string {
	if abs, err := filepath.Abs(dir); err == nil {
		if rel, err := filepath.Rel(abs, file); err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

// firstLine trims an analyzer Doc to its summary line for the rule table.
func firstLine(doc string) string {
	if i := strings.IndexByte(doc, '\n'); i >= 0 {
		return doc[:i]
	}
	return doc
}
